package enmc

import (
	"io"

	"enmc/internal/dram"
	"enmc/internal/telemetry"
)

// Tracer collects execution spans from the inference pipeline
// (Classify, TrainScreener) and the cycle-level simulator (Simulate)
// and exports them as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Pipeline spans are recorded in wall-clock time; simulator spans in
// simulated DRAM time. Use a separate Tracer per domain — Simulate
// rebases the tracer's timebase to the DRAM clock.
type Tracer struct {
	inner *telemetry.Tracer
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{inner: telemetry.NewTracer()} }

// WriteChromeTrace renders the recorded spans as Chrome trace-event
// JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error { return t.inner.WriteChromeTrace(w) }

// SpanCount returns the number of spans recorded so far.
func (t *Tracer) SpanCount() int { return t.inner.Len() }

// SetGlobalTracer installs tr as the process-wide tracer that every
// un-optioned Classify/TrainScreener call reports to (nil uninstalls)
// — how `enmc-bench -trace` captures the experiment harness without
// plumbing a tracer through every call site.
func SetGlobalTracer(tr *Tracer) {
	if tr == nil {
		telemetry.SetGlobal(nil)
		return
	}
	telemetry.SetGlobal(tr.inner)
}

// Option configures a Classify/ClassifyBatch/Simulate call.
type Option func(*callOpts)

type callOpts struct {
	tracer *telemetry.Tracer
}

func (o *callOpts) apply(opts []Option) {
	for _, fn := range opts {
		fn(o)
	}
	if o.tracer == nil {
		o.tracer = telemetry.Global()
	}
}

// WithTracer directs the call's spans to tr.
func WithTracer(tr *Tracer) Option {
	return func(o *callOpts) {
		if tr != nil {
			o.tracer = tr.inner
		}
	}
}

// Metrics is a point-in-time, JSON-marshalable snapshot of the
// process-wide telemetry registry: pipeline counters and latency/
// candidate histograms under "core.*", simulator DRAM command
// counters under "dram.*" (populated while EnableDRAMMetrics is on).
type Metrics = telemetry.Snapshot

// MetricsSnapshot captures the current state of every built-in
// instrument. Instruments are always live — after any Classify or
// ClassifyBatch the candidate-count and latency histograms are
// non-zero.
func MetricsSnapshot() Metrics { return telemetry.Default().Snapshot() }

// ResetMetrics zeroes every instrument (between-run isolation in
// long-lived processes and tests).
func ResetMetrics() { telemetry.Default().Reset() }

// EnableDRAMMetrics mirrors simulated DRAM commands (reads, writes,
// activates, precharges, refreshes, row hits/misses, bytes) into the
// registry as they issue. Off by default: the mirror costs an atomic
// pointer load per DRAM command even when nobody reads it.
func EnableDRAMMetrics() { dram.EnableMetrics(telemetry.Default()) }

// DisableDRAMMetrics stops the mirroring.
func DisableDRAMMetrics() { dram.DisableMetrics() }

// ServeDebug starts an HTTP observability endpoint on addr
// (host:port, ":0" picks a free port) exposing net/http/pprof
// profiles under /debug/pprof/, expvar under /debug/vars (including
// the registry snapshot as the "enmc" var), and the plain-JSON
// registry snapshot at /metrics. It returns the bound address; the
// server runs until the process exits.
func ServeDebug(addr string) (string, error) { return telemetry.ServeDebug(addr) }
