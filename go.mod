module enmc

go 1.22
