package enmc

// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (regenerating the experiment and reporting its
// headline number as a custom metric), plus ablation benchmarks for
// the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The full paper-scale regeneration lives in cmd/enmc-bench; the
// benchmarks here use moderately reduced workloads so the whole suite
// completes in minutes.

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/cpuhost"
	"enmc/internal/distributed"
	"enmc/internal/dram"
	ienmc "enmc/internal/enmc"
	"enmc/internal/experiments"
	"enmc/internal/funcsim"
	"enmc/internal/host"
	"enmc/internal/image"
	"enmc/internal/isa"
	"enmc/internal/metrics"
	"enmc/internal/nmp"
	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/server"
	"enmc/internal/system"
	"enmc/internal/telemetry"
	"enmc/internal/tensor"
	"enmc/internal/workload"
	"enmc/internal/xrand"
)

func quickQuality() experiments.QualityOptions {
	return experiments.QualityOptions{
		Seed: 42, LTarget: 512, MaxHidden: 128,
		TrainSamples: 384, TestSamples: 48, Epochs: 8,
		Sentences: 6, SentenceLen: 10,
	}
}

func quickPerf() experiments.PerfOptions {
	return experiments.PerfOptions{SampleRows: 2048}
}

// parseAvgSpeedup pulls the trailing average row's ENMC column out of
// a Fig. 13 table, for metric reporting.
func lastCellFloat(t *experiments.Table) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	row := t.Rows[len(t.Rows)-1]
	cell := strings.TrimSuffix(row[len(row)-1], "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2()
	}
}

func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3()
	}
}

func BenchmarkTable4Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4()
	}
}

func BenchmarkTable5AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5()
	}
}

func BenchmarkFig4Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4()
	}
}

func BenchmarkFig5aScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5a()
	}
}

func BenchmarkFig5bRoofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5b()
	}
}

func BenchmarkFig11QualityVsSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(quickQuality()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(quickQuality()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Performance(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig13(quickPerf())
		if err != nil {
			b.Fatal(err)
		}
		avg = lastCellFloat(t)
	}
	b.ReportMetric(avg, "ENMC-avg-speedup-x")
}

func BenchmarkFig14Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(quickPerf()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(quickPerf()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---

func ablationModel(b *testing.B) *workload.Instance {
	b.Helper()
	spec := workload.Spec{Name: "abl", Categories: 768, Hidden: 128, LatentRank: 32, ZipfS: 1.05}
	return workload.Generate(spec, workload.GenOptions{Seed: 17, Train: 384, Valid: 32, Test: 64})
}

// BenchmarkAblationLearnedVsProjected compares the trained screener
// (Algorithm 1) against the closed-form W̃ = (k/d)·W·Pᵀ seed.
func BenchmarkAblationLearnedVsProjected(b *testing.B) {
	inst := ablationModel(b)
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3}
	agreement := func(scr *core.Screener) float64 {
		var top1 []int
		var exact [][]int
		for _, h := range inst.Test {
			res := core.ClassifyApprox(inst.Classifier, scr, h, core.TopM(38))
			top1 = append(top1, res.Predict())
			exact = append(exact, []int{inst.Classifier.Predict(h)})
		}
		return metrics.TopKAgreement(top1, exact)
	}
	b.Run("learned", func(b *testing.B) {
		var agree float64
		for i := 0; i < b.N; i++ {
			scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 8, Seed: 4})
			if err != nil {
				b.Fatal(err)
			}
			agree = agreement(scr)
		}
		b.ReportMetric(agree, "top1-agreement")
	})
	b.Run("projected", func(b *testing.B) {
		var agree float64
		for i := 0; i < b.N; i++ {
			scr, err := core.ProjectedScreener(inst.Classifier, cfg)
			if err != nil {
				b.Fatal(err)
			}
			agree = agreement(scr)
		}
		b.ReportMetric(agree, "top1-agreement")
	})
}

// BenchmarkAblationSelection compares top-m search against threshold
// filtering at a matched average candidate budget.
func BenchmarkAblationSelection(b *testing.B) {
	inst := ablationModel(b)
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 8, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	const target = 38
	th := core.CalibrateThreshold(scr, inst.Valid, target)
	run := func(b *testing.B, sel core.Selection) {
		var agree float64
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, h := range inst.Test {
				if core.ClassifyApprox(inst.Classifier, scr, h, sel).Predict() == inst.Classifier.Predict(h) {
					hits++
				}
			}
			agree = float64(hits) / float64(len(inst.Test))
		}
		b.ReportMetric(agree, "top1-agreement")
	}
	b.Run("top-m", func(b *testing.B) { run(b, core.TopM(target)) })
	b.Run("threshold", func(b *testing.B) { run(b, core.Threshold(th)) })
}

// BenchmarkAblationQuantGranularity compares per-row against
// per-tensor quantization scales.
func BenchmarkAblationQuantGranularity(b *testing.B) {
	inst := ablationModel(b)
	for _, perTensor := range []bool{false, true} {
		name := "per-row"
		if perTensor {
			name = "per-tensor"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, PerTensor: perTensor, Seed: 3}
			var mse float64
			for i := 0; i < b.N; i++ {
				scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 8, Seed: 4})
				if err != nil {
					b.Fatal(err)
				}
				var total float64
				for _, h := range inst.Test {
					total += tensor.MSE(scr.Screen(h), inst.Classifier.Logits(h))
				}
				mse = total / float64(len(inst.Test))
			}
			b.ReportMetric(mse, "screen-MSE")
		})
	}
}

// BenchmarkAblationPipeline measures the dual-module overlap: the
// same screened task compiled with SyncS2E pipelining versus full
// BARRIER serialization.
func BenchmarkAblationPipeline(b *testing.B) {
	task := compiler.Task{Categories: 131072, Hidden: 512, Reduced: 128, Candidates: 8192, Batch: 4}
	for _, dual := range []bool{true, false} {
		name := "dual-module"
		if !dual {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			tgt := compiler.ENMCTarget()
			tgt.DualModule = dual
			// Per-item streaming: the pipeline overlap in question is
			// the Screener of item i+1 running under the Executor of
			// item i, which only exists when the weight sweep repeats
			// per item.
			tgt.WeightReuseAcrossBatch = false
			var cycles int64
			for i := 0; i < b.N; i++ {
				prog, err := compiler.Compile(task, ienmc.Default(), tgt, task.Split(64), compiler.ModeScreened)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := ienmc.New(ienmc.Default())
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(prog.Ops)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "rank-cycles")
		})
	}
}

// BenchmarkAblationBatchReuse measures weight restreaming vs reuse
// across a batch (TensorDIMM's small-queue penalty).
func BenchmarkAblationBatchReuse(b *testing.B) {
	task := compiler.Task{Categories: 131072, Hidden: 512, Reduced: 128, Candidates: 2621, Batch: 4}
	for _, reuse := range []bool{true, false} {
		name := "reuse"
		if !reuse {
			name = "restream"
		}
		b.Run(name, func(b *testing.B) {
			d := nmp.TensorDIMM()
			d.Target.WeightReuseAcrossBatch = reuse
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := system.Default(d).Run(task, compiler.ModeFull)
				if err != nil {
					b.Fatal(err)
				}
				sec = res.Seconds
			}
			b.ReportMetric(sec*1e6, "offload-us")
		})
	}
}

// --- micro-benchmarks of the hot kernels ---

func BenchmarkScreenInference(b *testing.B) {
	inst := ablationModel(b)
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 2, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.Screen(h)
	}
}

// BenchmarkClassifyTelemetry guards the telemetry-overhead contract:
// with the default nil tracer the instrumented approximate-classify
// path must allocate no more than the bare pipeline (compare the
// allocs/op columns of bare vs tracer-off under -benchmem; tracer-on
// shows the opt-in span cost).
func BenchmarkClassifyTelemetry(b *testing.B) {
	inst := ablationModel(b)
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 2, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Test[0]
	sel := core.TopM(16)

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ztilde := scr.Screen(h)
			cands := core.SelectCandidates(ztilde, sel)
			exact := inst.Classifier.LogitsRows(cands, h)
			for j, c := range cands {
				ztilde[c] = exact[j]
			}
		}
	})
	b.Run("tracer-off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ClassifyApproxTraced(inst.Classifier, scr, h, sel, nil)
		}
	})
	b.Run("tracer-on", func(b *testing.B) {
		tr := telemetry.NewTracer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ClassifyApproxTraced(inst.Classifier, scr, h, sel, tr)
		}
	})
}

func BenchmarkFullClassification(b *testing.B) {
	inst := ablationModel(b)
	h := inst.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Classifier.Logits(h)
	}
}

func BenchmarkINT4GEMV(b *testing.B) {
	r := workload.Generate(workload.Spec{Name: "q", Categories: 1024, Hidden: 128, LatentRank: 16, ZipfS: 1},
		workload.GenOptions{Seed: 1, Train: 1, Valid: 1, Test: 1})
	qm := quant.QuantizeMatrix(r.Classifier.W, quant.INT4)
	qx := quant.QuantizeVector(r.Test[0], quant.INT4)
	dst := make([]float32, 1024)
	b.SetBytes(qm.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.MatVec(dst, qx)
	}
}

// --- zero-allocation hot-path benchmarks (Table 2 serving shapes) ---
//
// These run the real software pipeline (not the cycle simulator) at
// the paper's dataset shapes with randomly initialized weights —
// numerics don't matter here, only kernel time and allocation
// behavior. The "into" variants are the arena-backed zero-allocation
// path a saturated server loops on; compare the allocs/op columns
// under -benchmem. cmd/enmc-bench -perf records the same shapes into
// a BENCH_<date>.json trajectory file.

type perfShape struct {
	name    string
	l, d, k int // categories, hidden, reduced
	m       int // top-m candidate budget (~2% of l)
}

var perfShapes = []perfShape{
	{name: "wiki-lstm-33k", l: 33278, d: 1500, k: 375, m: 666},
	{name: "amazon-670k", l: 670091, d: 512, k: 128, m: 13401},
}

// perfScreener builds a frozen screener with uniform random weights.
func perfScreener(b *testing.B, s perfShape) *core.Screener {
	b.Helper()
	r := xrand.New(1234)
	wt := tensor.NewMatrix(s.l, s.k)
	for i := range wt.Data {
		wt.Data[i] = r.Float32()*2 - 1
	}
	bt := make([]float32, s.l)
	for i := range bt {
		bt[i] = r.Float32()*2 - 1
	}
	scr := &core.Screener{
		Cfg: core.Config{Categories: s.l, Hidden: s.d, Reduced: s.k, Precision: quant.INT4, Seed: 7},
		P:   projection.New(s.k, s.d, 7),
		Wt:  wt,
		Bt:  bt,
	}
	scr.Freeze()
	return scr
}

// perfClassifier builds a random full classifier matching the shape.
func perfClassifier(b *testing.B, s perfShape) *core.Classifier {
	b.Helper()
	r := xrand.New(4321)
	w := tensor.NewMatrix(s.l, s.d)
	for i := range w.Data {
		w.Data[i] = r.Float32()*2 - 1
	}
	bias := make([]float32, s.l)
	for i := range bias {
		bias[i] = r.Float32()*2 - 1
	}
	cls, err := core.NewClassifier(w, bias)
	if err != nil {
		b.Fatal(err)
	}
	return cls
}

func perfHidden(s perfShape) []float32 {
	r := xrand.New(99)
	h := make([]float32, s.d)
	for i := range h {
		h[i] = r.Float32()*2 - 1
	}
	return h
}

func BenchmarkScreen(b *testing.B) {
	for _, s := range perfShapes {
		b.Run(s.name, func(b *testing.B) {
			scr := perfScreener(b, s)
			h := perfHidden(s)
			b.Run("alloc", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					scr.Screen(h)
				}
			})
			b.Run("into", func(b *testing.B) {
				sc := core.GetScratch()
				defer sc.Release()
				sc.MaxShards = 1
				dst := make([]float32, s.l)
				scr.ScreenInto(dst, h, sc)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					scr.ScreenInto(dst, h, sc)
				}
			})
		})
	}
}

func BenchmarkClassifyApprox(b *testing.B) {
	for _, s := range perfShapes {
		b.Run(s.name, func(b *testing.B) {
			scr := perfScreener(b, s)
			cls := perfClassifier(b, s)
			h := perfHidden(s)
			sel := core.TopM(s.m)
			b.Run("alloc", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					core.ClassifyApprox(cls, scr, h, sel)
				}
			})
			b.Run("into", func(b *testing.B) {
				sc := core.GetScratch()
				defer sc.Release()
				sc.MaxShards = 1
				core.ClassifyApproxInto(cls, scr, h, sel, sc)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.ClassifyApproxInto(cls, scr, h, sel, sc)
				}
			})
		})
	}
}

// BenchmarkServerThroughput drives the serving backend's batch path
// (the visit API over per-worker scratch arenas) at a moderate shape;
// one op is an 8-request batch with per-response top-5 extraction.
func BenchmarkServerThroughput(b *testing.B) {
	s := perfShape{name: "server-33k", l: 33278, d: 512, k: 128, m: 666}
	scr := perfScreener(b, s)
	cls := perfClassifier(b, s)
	backend, err := server.NewLocal(cls, scr)
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 8
	batch := make([][]float32, batchSize)
	r := xrand.New(77)
	for i := range batch {
		h := make([]float32, s.d)
		for j := range h {
			h[j] = r.Float32()*2 - 1
		}
		batch[i] = h
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := backend.ClassifyBatch(ctx, batch, s.m, 5); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*batchSize)/elapsed.Seconds(), "req/s")
	}
}

func BenchmarkDRAMStream(b *testing.B) {
	cfg := dram.DDR4_2400()
	cfg.Ranks = 1
	const bytes = 1 << 20
	b.SetBytes(bytes)
	for i := 0; i < b.N; i++ {
		ch, err := dram.NewChannel(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		ch.SubmitRange(0, bytes, false)
		ch.Drain()
	}
}

func BenchmarkEngineScreeningSweep(b *testing.B) {
	task := compiler.Task{Categories: 65536, Hidden: 512, Reduced: 128, Candidates: 1310, Batch: 1}
	prog, err := compiler.Compile(task, ienmc.Default(), compiler.ENMCTarget(), task.Split(64), compiler.ModeScreened)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := ienmc.New(ienmc.Default())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(prog.Ops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUModel(b *testing.B) {
	cpu := cpuhost.Xeon8280()
	for i := 0; i < b.N; i++ {
		cpu.TimeScreened(267744, 512, 128, 5354, 4, quant.INT4)
	}
}

func BenchmarkISAAssemble(b *testing.B) {
	src := "INIT reg_5, 1024\nLDR wgt_i4, 0x1000\nMUL_ADD_INT4 feat_i4, wgt_i4\nFILTER psum_i4\nRETURN\n"
	for i := 0; i < b.N; i++ {
		if _, err := isa.AssembleProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension benchmarks ---

func BenchmarkExtScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtScaleOut(quickPerf()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtHostInterface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtHostInterface(quickPerf()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtGPUCliff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtGPU(quickPerf()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedClassify(b *testing.B) {
	inst := ablationModel(b)
	shards, err := distributed.ShardClassifier(inst.Classifier, 4, inst.Train,
		core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3},
		core.TrainOptions{Epochs: 4, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	h := inst.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distributed.Classify(shards, h, 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHostCoexistence(b *testing.B) {
	hw := ienmc.Default()
	task := compiler.Task{Categories: 65536, Hidden: 512, Reduced: 128, Candidates: 1310, Batch: 1}
	prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(), task.Split(64), compiler.ModeScreened)
	if err != nil {
		b.Fatal(err)
	}
	var lat float64
	for i := 0; i < b.N; i++ {
		res, err := host.Coexistence(hw, prog, 500)
		if err != nil {
			b.Fatal(err)
		}
		lat = res.BusyLatency
	}
	b.ReportMetric(lat, "host-read-latency-cycles")
}

func BenchmarkFunctionalMachine(b *testing.B) {
	inst := ablationModel(b)
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 3}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 2, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	img, qh, err := image.BuildFull(inst.Classifier, scr, 0, 768, inst.Test[0])
	if err != nil {
		b.Fatal(err)
	}
	hw := ienmc.Default()
	task := compiler.Task{Categories: 768, Hidden: 128, Reduced: 32, Candidates: 8, Batch: 1}
	prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(),
		compiler.RankShare{Rows: 768, Candidates: 8}, compiler.ModeScreened)
	if err != nil {
		b.Fatal(err)
	}
	pre := []ienmc.Op{
		{I: isa.Init(isa.RegThreshold, uint64(math.Float32bits(1e30)))},
		{I: isa.Init(isa.RegFeatSize, uint64(math.Float32bits(qh.Scale)))},
	}
	full := append(append(pre, prog.Init...), prog.Ops...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := funcsim.New(hw, img)
		if err := m.Run(full); err != nil {
			b.Fatal(err)
		}
	}
}
