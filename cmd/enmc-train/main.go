// Command enmc-train distills an approximate screener from a
// serialized classifier and a feature file, completing the repo's
// deployment flow: train once, ship the screener image to inference
// hosts.
//
// Usage:
//
//	enmc-train -classifier cls.bin -features feats.bin -out scr.bin \
//	           [-k 128] [-bits 4] [-epochs 8] [-seed 1]
//	enmc-train -demo                      # generate a demo pair first
//	enmc-train -classifier cls.bin -features feats.bin \
//	           -registry ./models -version v2 -parent v1 \
//	           [-checkpoint-every 2] [-stop-after 4] [-probe 32]
//
// File formats are the binary formats of SaveClassifier /
// WriteFeatures (see internal/core). -demo writes demo-cls.bin and
// demo-feats.bin into the current directory so the flow can be tried
// without external data.
//
// With -registry the run is checkpointed: every -checkpoint-every
// epochs the screener state lands under <registry>/.ckpt/<version>/,
// an interrupted run (crash, or -stop-after for testing) resumes from
// the checkpoint on the next invocation with the same flags, and on
// completion the version is published atomically (classifier,
// screener, held-out probe set, checksummed manifest) for enmc-serve
// to hot-swap in.
package main

import (
	"flag"
	"fmt"
	"os"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/registry"
	"enmc/internal/workload"
)

func main() {
	clsPath := flag.String("classifier", "", "serialized classifier (SaveClassifier format)")
	featPath := flag.String("features", "", "serialized hidden-state samples (WriteFeatures format)")
	outPath := flag.String("out", "screener.bin", "output path for the trained screener")
	k := flag.Int("k", 0, "reduced dimension (default d/4)")
	bits := flag.Int("bits", 4, "screening precision: 2, 4 or 8")
	epochs := flag.Int("epochs", 8, "distillation epochs")
	seed := flag.Uint64("seed", 1, "projection/training seed")
	demo := flag.Bool("demo", false, "write demo-cls.bin and demo-feats.bin, then exit")

	regRoot := flag.String("registry", "", "publish into this versioned model registry instead of -out")
	version := flag.String("version", "", "registry version to publish (required with -registry)")
	parent := flag.String("parent", "", "parent version recorded in the manifest")
	ckptEvery := flag.Int("checkpoint-every", 2, "registry mode: checkpoint every N epochs")
	stopAfter := flag.Int("stop-after", 0, "registry mode: interrupt after N epochs (testing resume; 0 = run to completion)")
	probeCount := flag.Int("probe", 32, "registry mode: held-out probe samples reserved from the feature tail")
	flag.Parse()

	if *demo {
		writeDemo()
		return
	}
	if *clsPath == "" || *featPath == "" {
		fmt.Fprintln(os.Stderr, "usage: enmc-train -classifier cls.bin -features feats.bin [-out scr.bin | -registry dir -version v1]")
		os.Exit(2)
	}

	cls := loadClassifier(*clsPath)
	feats := loadFeatures(*featPath)
	fmt.Printf("classifier: %d classes × %d dims; %d training samples\n",
		cls.Categories(), cls.Hidden(), len(feats))

	kk := *k
	if kk <= 0 {
		kk = cls.Hidden() / 4
	}
	cfg := core.Config{
		Categories: cls.Categories(),
		Hidden:     cls.Hidden(),
		Reduced:    kk,
		Precision:  quant.Bits(*bits),
		Seed:       *seed,
	}

	if *regRoot != "" {
		if *version == "" {
			fmt.Fprintln(os.Stderr, "enmc-train: -registry needs -version")
			os.Exit(2)
		}
		trainToRegistry(cls, feats, cfg, *regRoot, *version, *parent, *epochs, *ckptEvery, *stopAfter, *probeCount, *seed)
		return
	}

	scr, stats, err := core.TrainScreener(cls, feats, cfg, core.TrainOptions{
		Epochs: *epochs,
		Seed:   *seed + 1,
		Logf: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	})
	fatalIf(err)
	fmt.Printf("converged: final MSE %.6g over %d epochs\n",
		stats.EpochLoss[len(stats.EpochLoss)-1], len(stats.EpochLoss))

	out, err := os.Create(*outPath)
	fatalIf(err)
	n, err := scr.WriteTo(out)
	fatalIf(err)
	fatalIf(out.Close())
	fmt.Printf("wrote %s (%.2f MB; %.1f%% of the classifier)\n",
		*outPath, float64(n)/(1<<20), 100*float64(scr.WeightBytes())/float64(cls.WeightBytes()))
}

// trainToRegistry runs the checkpointed training flow: resume from an
// existing checkpoint if one exists, stop early under -stop-after
// (leaving the checkpoint for the next invocation), publish into the
// registry on completion.
func trainToRegistry(cls *core.Classifier, feats [][]float32, cfg core.Config,
	root, version, parent string, epochs, ckptEvery, stopAfter, probeCount int, seed uint64) {
	store, err := registry.Open(root)
	fatalIf(err)
	if store.HasCheckpoint(version) {
		fmt.Printf("resuming %q from checkpoint %s\n", version, store.CheckpointDir(version))
	}
	m, published, err := store.TrainRun(cls, feats, registry.TrainSpec{
		Version: version,
		Parent:  parent,
		Cfg:     cfg,
		Opt: core.TrainOptions{
			Seed: seed + 1,
			Logf: func(format string, args ...interface{}) {
				fmt.Printf(format+"\n", args...)
			},
		},
		TotalEpochs:     epochs,
		CheckpointEvery: ckptEvery,
		StopAfter:       stopAfter,
		ProbeCount:      probeCount,
	})
	fatalIf(err)
	if !published {
		fmt.Printf("interrupted after -stop-after; checkpoint at %s — rerun to resume\n",
			store.CheckpointDir(version))
		return
	}
	fmt.Printf("published %s/%s (seq %d, %s, final MSE %.6g, probe %d)\n",
		root, m.Version, m.Seq, m.PrecisionString(), m.Train.FinalLoss, probeCount)
}

func loadClassifier(path string) *core.Classifier {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	cls, err := core.ReadClassifier(f)
	fatalIf(err)
	return cls
}

func loadFeatures(path string) [][]float32 {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	feats, err := core.ReadFeatures(f)
	fatalIf(err)
	return feats
}

func writeDemo() {
	spec := workload.Spec{Name: "demo", Categories: 2048, Hidden: 128, LatentRank: 32, ZipfS: 1.05}
	inst := workload.Generate(spec, workload.GenOptions{Seed: 7, Train: 512, Valid: 32, Test: 32})

	cf, err := os.Create("demo-cls.bin")
	fatalIf(err)
	_, err = inst.Classifier.WriteTo(cf)
	fatalIf(err)
	fatalIf(cf.Close())

	ff, err := os.Create("demo-feats.bin")
	fatalIf(err)
	_, err = core.WriteFeatures(ff, inst.Train)
	fatalIf(err)
	fatalIf(ff.Close())
	fmt.Println("wrote demo-cls.bin and demo-feats.bin; now run:")
	fmt.Println("  enmc-train -classifier demo-cls.bin -features demo-feats.bin -out demo-scr.bin")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
