// Command enmc-asm assembles and disassembles ENMC programs.
//
// Usage:
//
//	enmc-asm file.s            assemble, validate, print a listing
//	enmc-asm -                 read assembly from stdin
//	enmc-asm -run file.s       additionally execute the program on a
//	                           simulated ENMC rank and print stats
//	enmc-asm -run -trace f.s   also print a cycle trace per instruction
//
// The listing shows each instruction's 13-bit command word (the bits
// carried on A0–A12 of the PRECHARGE command, Fig. 8) and its DQ
// payload when present.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"enmc"
	"enmc/internal/isa"
)

func main() {
	run := flag.Bool("run", false, "execute the program on a simulated ENMC rank")
	trace := flag.Bool("trace", false, "with -run: print a per-instruction cycle trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: enmc-asm [-run] <file.s | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prog, err := isa.AssembleProgram(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-6s %-8s %-10s %s\n", "idx", "cmd", "dq", "instruction")
	for i, in := range prog {
		cmd, data, hasData := in.Encode()
		dq := "-"
		if hasData {
			dq = fmt.Sprintf("%#x", data)
		}
		fmt.Printf("%-6d %#06x %-10s %s\n", i, cmd, dq, in)
	}

	if *run {
		p, err := enmc.AssembleProgram(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *trace {
			fmt.Println("\ntrace (unit frontiers in DRAM cycles):")
			p.SetTrace(os.Stdout)
		}
		res, err := p.RunOnDIMM()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nexecuted in %d cycles (%.3f µs): %d INT4 MACs, %d FP32 MACs, %d DRAM reads, hit rate %.1f%%\n",
			res.Cycles, res.Seconds*1e6, res.INT4MACs, res.FP32MACs, res.DRAMReads, 100*res.RowHitRate)
	}
}
