// Command enmc-shard is one cluster shard worker: it owns a
// contiguous row-slice of the class space (shard -shard-index of
// -shard-count), screens it locally with its own approximate
// screener, and serves the compact shard API the enmc-serve cluster
// router scatter-gathers over (see internal/cluster).
//
// Usage:
//
//	enmc-shard -shard-index 0 -shard-count 3                    # demo model
//	enmc-shard -model-root ./models -shard-index 1 -shard-count 3
//	enmc-shard -classifier cls.bin -features feats.bin -shard-index 2 -shard-count 3
//
// The worker loads (or trains) the GLOBAL model, slices its own rows
// out of it, and trains the shard-local screener with an
// offset-derived seed — so every worker in a cluster derives
// bit-identical shard parameters to an in-process
// distributed.ShardClassifier split of the same model, and the
// router's merged top-k matches single-node classification.
//
// With -model-root the classifier (and held-out probe features, used
// for screener distillation unless -features overrides them) come
// from the PR-4 versioned registry; the manifest version is
// advertised in every shard reply so the router can surface version
// skew during a rolling per-shard update.
//
// Endpoints: POST /v1/shard/screen, GET /v1/shard/info, GET /v1/slo,
// GET /metrics (Prometheus text), GET /healthz, GET /readyz. A screen
// request carrying X-Enmc-Trace-Id/X-Enmc-Span-Id headers records its
// pipeline spans into a per-request tracer and returns them inline in
// the reply for the router to rebase into one distributed capture. SIGINT/SIGTERM fails readiness first (the
// router's probe loop ejects this replica), then drains in-flight
// screens and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"enmc/internal/cluster"
	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/registry"
	"enmc/internal/telemetry"
	"enmc/internal/workload"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	portFile := flag.String("port-file", "", "write the bound port here once listening (for scripts with -addr :0)")
	debugAddr := flag.String("debug-addr", "", "pprof/expvar/metrics listen address (empty: disabled)")

	shardIndex := flag.Int("shard-index", 0, "this worker's shard (row-slice) index")
	shardCount := flag.Int("shard-count", 1, "total shards in the cluster")

	clsPath := flag.String("classifier", "", "serialized GLOBAL classifier (SaveClassifier format)")
	featPath := flag.String("features", "", "features for shard screener training (WriteFeatures format)")
	modelRoot := flag.String("model-root", "", "versioned model registry root (classifier + probe from the registry)")
	modelVersion := flag.String("model-version", "", "registry version to serve (default newest)")
	label := flag.String("label", "", "model version label advertised in shard replies (non-registry mode)")

	logRequests := flag.Bool("log-requests", false, "emit one structured request-log record per shard RPC on stderr")
	logJSON := flag.Bool("log-json", false, "request log as JSON lines (implies -log-requests; default: text)")
	slowLog := flag.Duration("slow-log", 250*time.Millisecond, "request-log slow threshold: requests above this log at WARN")

	demoClasses := flag.Int("demo-classes", 4096, "demo model: class count")
	demoDim := flag.Int("demo-dim", 128, "demo model: hidden dimension")
	demoSeed := flag.Uint64("demo-seed", 7, "demo model: generation/training seed")
	epochs := flag.Int("epochs", 4, "shard screener distillation epochs")
	bits := flag.Int("bits", 4, "shard screening precision: 2, 4 or 8")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	wire := flag.String("wire", "binary", "screen reply codec: binary (accept+answer v2 frames) or json (refuse frames with 415, reply JSON)")
	flag.Parse()

	if *wire != "binary" && *wire != "json" {
		fatalIf(fmt.Errorf("-wire must be binary or json, got %q", *wire))
	}

	cls, feats, version := loadGlobal(*clsPath, *featPath, *modelRoot, *modelVersion,
		*demoClasses, *demoDim, *demoSeed)
	if *label != "" {
		version = *label
	}

	shard, err := distributed.ShardOne(cls, *shardCount, *shardIndex, feats, core.Config{
		Hidden:    cls.Hidden(),
		Reduced:   cls.Hidden() / 4,
		Precision: quant.Bits(*bits),
		Seed:      *demoSeed,
	}, core.TrainOptions{Epochs: *epochs, Seed: *demoSeed + 1})
	fatalIf(err)
	shard.Version = version

	worker, err := cluster.NewWorker(shard)
	fatalIf(err)
	if *wire == "json" {
		worker.ForceJSONWire()
	}
	if *logRequests || *logJSON {
		worker.SetRequestLog(telemetry.NewRequestLog(os.Stderr, telemetry.RequestLogOptions{
			JSON: *logJSON,
			Slow: *slowLog,
		}))
	}

	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr)
		fatalIf(err)
		log.Printf("debug endpoint on http://%s", dbg)
	}

	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		fatalIf(os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644))
	}
	httpSrv := &http.Server{Handler: worker.Handler()}
	go func() {
		info := worker.Info()
		log.Printf("shard %d/%d serving rows [%d,%d) of %d dims on %s (version %q)",
			*shardIndex, *shardCount, info.Offset, info.Offset+info.Classes, info.Hidden, ln.Addr(), version)
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("%s: draining (readiness down)", got)
	worker.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// loadGlobal resolves the global model this worker slices: registry
// version, explicit files, or a trained demo instance.
func loadGlobal(clsPath, featPath, modelRoot, modelVersion string, classes, dim int, seed uint64) (*core.Classifier, [][]float32, string) {
	var feats [][]float32
	if featPath != "" {
		f, err := os.Open(featPath)
		fatalIf(err)
		fs, err := core.ReadFeatures(f)
		fatalIf(err)
		fatalIf(f.Close())
		feats = fs
	}

	if modelRoot != "" {
		store, err := registry.Open(modelRoot)
		fatalIf(err)
		if modelVersion == "" {
			latest, err := store.Latest()
			fatalIf(err)
			modelVersion = latest.Version
		}
		loaded, err := store.Load(modelVersion)
		fatalIf(err)
		if feats == nil {
			feats = loaded.Probe
		}
		if len(feats) == 0 {
			fatalIf(fmt.Errorf("version %q ships no probe features; pass -features for shard screener training", modelVersion))
		}
		return loaded.Classifier, feats, loaded.Manifest.Version
	}

	if clsPath != "" {
		f, err := os.Open(clsPath)
		fatalIf(err)
		cls, err := core.ReadClassifier(f)
		fatalIf(err)
		fatalIf(f.Close())
		if len(feats) == 0 {
			fatalIf(fmt.Errorf("need -features alongside -classifier for shard screener training"))
		}
		return cls, feats, ""
	}

	log.Printf("no -classifier/-model-root given: training a %d×%d demo model", classes, dim)
	inst := workload.Generate(
		workload.Spec{Name: "shard-demo", Categories: classes, Hidden: dim, LatentRank: 32, ZipfS: 1.05},
		workload.GenOptions{Seed: seed, Train: 512, Valid: 32, Test: 32})
	return inst.Classifier, inst.Train, ""
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
