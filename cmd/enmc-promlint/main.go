// Command enmc-promlint is the CI verifier for the observability
// surface: it scrapes a live /metrics endpoint and lints the
// exposition with the same parser the telemetry tests use, and it
// checks a Chrome-trace capture (/debug/spans) for a propagated
// distributed trace.
//
// Usage:
//
//	enmc-promlint -metrics http://host:port/metrics
//	enmc-promlint -metrics URL -require "cluster_shard_rpc_total,server_http_requests"
//	enmc-promlint -spans http://host:port/debug/spans -min-pids 2
//	enmc-promlint -spans trace.json -min-pids 2
//
// -metrics fetches the URL, parses it as Prometheus text exposition
// 0.0.4, and validates histogram structure (cumulative buckets, +Inf,
// _count == +Inf). Each -require name (comma-separated, exposition
// spelling) must be present with a positive total — the "did the
// counters actually advance under load" assertion.
//
// -spans accepts a URL or a file of Chrome trace-event JSON and
// asserts that at least one trace ID has spans from -min-pids
// distinct process lanes — the proof that a trace context crossed
// process boundaries and the shard spans merged under the router's.
//
// Exit status: 0 all checks pass, 1 a check failed, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"enmc/internal/telemetry"
)

func main() {
	metricsURL := flag.String("metrics", "", "scrape and lint this Prometheus endpoint")
	require := flag.String("require", "", "comma-separated metric names that must be present with a positive total (with -metrics)")
	spansSrc := flag.String("spans", "", "Chrome trace JSON to check: URL or file path")
	minPIDs := flag.Int("min-pids", 2, "require one trace ID spanning at least this many process lanes (with -spans)")
	timeout := flag.Duration("timeout", 10*time.Second, "fetch timeout")
	flag.Parse()

	if *metricsURL == "" && *spansSrc == "" {
		fmt.Fprintln(os.Stderr, "need -metrics and/or -spans")
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	if *metricsURL != "" {
		if err := lintMetrics(*metricsURL, *require, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", *metricsURL, err)
			failed = true
		} else {
			fmt.Printf("ok: %s parses, validates%s\n", *metricsURL, requireNote(*require))
		}
	}
	if *spansSrc != "" {
		if err := lintSpans(*spansSrc, *minPIDs, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", *spansSrc, err)
			failed = true
		} else {
			fmt.Printf("ok: %s has a trace spanning >= %d processes\n", *spansSrc, *minPIDs)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func requireNote(require string) string {
	if require == "" {
		return ""
	}
	return fmt.Sprintf(", %d required metrics advanced", len(splitList(require)))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func lintMetrics(url, require string, timeout time.Duration) error {
	body, err := fetch(url, timeout)
	if err != nil {
		return err
	}
	defer body.Close()
	p, err := telemetry.ParsePrometheus(body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	var missing []string
	for _, name := range splitList(require) {
		// Sum every sample of the metric family (all label sets, and
		// _count for histograms given by bare name) and demand a
		// positive total: present-but-zero means it never advanced.
		total, seen := 0.0, false
		for _, s := range p.Samples {
			if s.Name == name || s.Name == name+"_count" {
				total += s.Value
				seen = true
			}
		}
		if !seen || total <= 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required metrics absent or zero: %s", strings.Join(missing, ", "))
	}
	return nil
}

// lintSpans parses Chrome trace-event JSON and requires one trace ID
// whose spans cover at least minPIDs distinct process lanes.
func lintSpans(src string, minPIDs int, timeout time.Duration) error {
	var body io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		b, err := fetch(src, timeout)
		if err != nil {
			return err
		}
		body = b
	} else {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		body = f
	}
	defer body.Close()

	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			Args struct {
				Trace string `json:"trace"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(body).Decode(&trace); err != nil {
		return fmt.Errorf("not Chrome trace JSON: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}

	pidsByTrace := map[string]map[int]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Args.Trace == "" {
			continue
		}
		if pidsByTrace[ev.Args.Trace] == nil {
			pidsByTrace[ev.Args.Trace] = map[int]bool{}
		}
		pidsByTrace[ev.Args.Trace][ev.PID] = true
	}
	if len(pidsByTrace) == 0 {
		return fmt.Errorf("no spans carry a trace ID (tracing off, or no traced requests)")
	}
	best := 0
	for _, pids := range pidsByTrace {
		if len(pids) > best {
			best = len(pids)
		}
	}
	if best < minPIDs {
		return fmt.Errorf("widest trace covers %d process(es), want >= %d (traces seen: %d)",
			best, minPIDs, len(pidsByTrace))
	}
	return nil
}

func fetch(url string, timeout time.Duration) (io.ReadCloser, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return resp.Body, nil
}
