// Command enmc-serve exposes ENMC classification as an HTTP/JSON
// service with dynamic micro-batching, bounded admission (429 +
// Retry-After past the queue cap), and graceful degradation of the
// screening budget under load (see internal/server).
//
// Usage:
//
//	enmc-serve                             # demo model, :8080
//	enmc-serve -classifier cls.bin -screener scr.bin -addr :8080
//	enmc-serve -shards 4                   # sharded demo backend
//	enmc-serve -debug-addr :6060           # pprof + /metrics sidecar
//
// Endpoints: POST /v1/classify, POST /v1/classify_batch, GET
// /healthz, GET /readyz. SIGINT/SIGTERM triggers the graceful
// sequence: readiness fails, intake stops (503), the queue drains,
// then the listener shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/server"
	"enmc/internal/telemetry"
	"enmc/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "pprof/expvar/metrics listen address (empty: disabled)")

	clsPath := flag.String("classifier", "", "serialized classifier (SaveClassifier format)")
	scrPath := flag.String("screener", "", "serialized screener (SaveScreener format)")
	featPath := flag.String("features", "", "serialized features for shard screener training (WriteFeatures format)")
	shards := flag.Int("shards", 1, "row-shard the class space across N local shards (sharded backend)")

	demoClasses := flag.Int("demo-classes", 4096, "demo model: class count")
	demoDim := flag.Int("demo-dim", 128, "demo model: hidden dimension")
	demoSeed := flag.Uint64("demo-seed", 7, "demo model: generation/training seed")
	epochs := flag.Int("epochs", 4, "demo/shard screener distillation epochs")
	bits := flag.Int("bits", 4, "demo/shard screening precision: 2, 4 or 8")

	maxBatch := flag.Int("max-batch", 32, "micro-batch flush size")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "micro-batch flush delay")
	queueCap := flag.Int("queue-cap", 256, "admission queue bound (429 past this)")
	flushWorkers := flag.Int("flush-workers", 2, "concurrent batch flushes")
	topM := flag.Int("m", 0, "screening budget TopM (default classes/64)")
	mFloor := flag.Int("m-floor", 0, "degradation floor for TopM (default TopM/4)")
	watermark := flag.Float64("watermark", 0.5, "queue-depth fraction where degradation starts")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	flag.Parse()

	cls, scr, feats := buildModel(*clsPath, *scrPath, *featPath, *demoClasses, *demoDim, *demoSeed, *epochs, *bits)
	backend := buildBackend(cls, scr, feats, *shards, *bits, *epochs, *demoSeed)

	srv, err := server.New(backend, server.Config{
		MaxBatch:     *maxBatch,
		MaxDelay:     *maxDelay,
		QueueCap:     *queueCap,
		FlushWorkers: *flushWorkers,
		TopM:         *topM,
		MFloor:       *mFloor,
		Watermark:    *watermark,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s (pprof, /metrics, /debug/vars)", dbg)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("serving %d classes × %d dims on %s (shards=%d queue=%d batch=%d/%s)",
			backend.Categories(), backend.Hidden(), *addr, *shards, *queueCap, *maxBatch, *maxDelay)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("%s: draining (readiness down, intake stopped)", got)
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// buildModel loads the classifier/screener pair from disk, or trains
// a synthetic demo pair when no paths are given. It also returns
// training features when available (needed for shard retraining).
func buildModel(clsPath, scrPath, featPath string, classes, dim int, seed uint64, epochs, bits int) (*core.Classifier, *core.Screener, [][]float32) {
	if clsPath != "" {
		f, err := os.Open(clsPath)
		fatalIf(err)
		cls, err := core.ReadClassifier(f)
		fatalIf(err)
		fatalIf(f.Close())
		var scr *core.Screener
		if scrPath != "" {
			g, err := os.Open(scrPath)
			fatalIf(err)
			scr, err = core.ReadScreener(g)
			fatalIf(err)
			fatalIf(g.Close())
		}
		var feats [][]float32
		if featPath != "" {
			h, err := os.Open(featPath)
			fatalIf(err)
			feats, err = core.ReadFeatures(h)
			fatalIf(err)
			fatalIf(h.Close())
		}
		if scr == nil {
			if len(feats) == 0 {
				fatalIf(fmt.Errorf("need -screener or -features alongside -classifier"))
			}
			scr = train(cls, feats, bits, epochs, seed)
		}
		return cls, scr, feats
	}

	log.Printf("no -classifier given: training a %d×%d demo model", classes, dim)
	inst := workload.Generate(
		workload.Spec{Name: "serve-demo", Categories: classes, Hidden: dim, LatentRank: 32, ZipfS: 1.05},
		workload.GenOptions{Seed: seed, Train: 512, Valid: 32, Test: 32})
	scr := train(inst.Classifier, inst.Train, bits, epochs, seed)
	return inst.Classifier, scr, inst.Train
}

func train(cls *core.Classifier, feats [][]float32, bits, epochs int, seed uint64) *core.Screener {
	scr, _, err := core.TrainScreener(cls, feats, core.Config{
		Categories: cls.Categories(),
		Hidden:     cls.Hidden(),
		Reduced:    cls.Hidden() / 4,
		Precision:  quant.Bits(bits),
		Seed:       seed,
	}, core.TrainOptions{Epochs: epochs, Seed: seed + 1})
	fatalIf(err)
	return scr
}

func buildBackend(cls *core.Classifier, scr *core.Screener, feats [][]float32, shards, bits, epochs int, seed uint64) server.Backend {
	if shards <= 1 {
		b, err := server.NewLocal(cls, scr)
		fatalIf(err)
		return b
	}
	if len(feats) == 0 {
		fatalIf(fmt.Errorf("-shards > 1 needs training features (-features, or demo mode)"))
	}
	set, err := distributed.ShardClassifier(cls, shards, feats, core.Config{
		Hidden:    cls.Hidden(),
		Reduced:   cls.Hidden() / 4,
		Precision: quant.Bits(bits),
		Seed:      seed,
	}, core.TrainOptions{Epochs: epochs, Seed: seed + 1})
	fatalIf(err)
	b, err := server.NewSharded(set)
	fatalIf(err)
	return b
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
