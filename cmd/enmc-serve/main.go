// Command enmc-serve exposes ENMC classification as an HTTP/JSON
// service with dynamic micro-batching, bounded admission (429 +
// Retry-After past the queue cap), and graceful degradation of the
// screening budget under load (see internal/server).
//
// Usage:
//
//	enmc-serve                             # demo model, :8080
//	enmc-serve -classifier cls.bin -screener scr.bin -addr :8080
//	enmc-serve -shards 4                   # sharded demo backend
//	enmc-serve -model-root ./models        # versioned registry + hot swap
//	enmc-serve -cluster "h1:9090,h2:9090;h3:9091,h4:9091"
//	                                       # scatter-gather router over
//	                                       # networked enmc-shard workers
//	                                       # (replicas ','-separated,
//	                                       # shards ';'-separated)
//	enmc-serve -debug-addr :6060           # pprof + /metrics sidecar
//	enmc-serve -trace -log-json            # distributed tracing +
//	                                       # JSON request log on stderr
//	enmc-serve -decode                     # streaming autoregressive
//	                                       # decode sessions on
//	                                       # POST /v1/decode (SSE/NDJSON)
//	enmc-serve -tenants tenants.json       # multi-tenant QoS: API-key
//	                                       # identity, per-tenant quotas,
//	                                       # weighted-fair classes,
//	                                       # pinned model versions
//
// Endpoints: POST /v1/classify, POST /v1/classify_batch, POST
// /v1/decode (with -decode), GET /v1/model, POST /v1/model/reload,
// GET /v1/slo, GET /v1/tenants, GET /metrics (Prometheus text), GET
// /healthz, GET /readyz.
//
// With -tenants the server resolves the X-Enmc-Api-Key header against
// an on-disk tenant config: each tenant gets a QoS class
// (interactive/standard/batch) scheduled by deficit-round-robin, a
// token-bucket rate quota (429 + real refill Retry-After), an optional
// concurrent decode-session cap, and an optional pinned model version
// (served alongside the active version when -model-root is set).
// SIGHUP re-reads the tenant config with zero dropped in-flight
// requests — a bad config keeps the previous one serving.
// SIGINT/SIGTERM triggers the graceful sequence: readiness fails,
// intake stops (503), the queue drains, then the listener shuts down.
//
// With -model-root the server serves from a versioned model registry
// (internal/registry): the initial version loads at startup
// (-model-version pins it; default newest), and SIGHUP or POST
// /v1/model/reload hot-swaps to a new version behind a canary gate —
// a candidate whose top-K agreement with the serving model on the
// held-out probe set falls below -canary-floor is rejected and the
// current version keeps serving (automatic rollback).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"enmc/internal/cluster"
	"enmc/internal/core"
	"enmc/internal/decode"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/registry"
	"enmc/internal/server"
	"enmc/internal/telemetry"
	"enmc/internal/tenant"
	"enmc/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "pprof/expvar/metrics listen address (empty: disabled)")
	debugPortFile := flag.String("debug-port-file", "", "write the debug listener's bound port here (for scripts with -debug-addr :0)")
	portFile := flag.String("port-file", "", "write the bound port here once listening (for scripts with -addr :0)")

	traceOn := flag.Bool("trace", false, "install a global tracer: per-request spans, trace-context propagation to cluster shards, /debug/spans export on the debug listener")
	logRequests := flag.Bool("log-requests", false, "emit one structured request-log record per /v1/* request on stderr")
	logJSON := flag.Bool("log-json", false, "request log as JSON lines (implies -log-requests; default: text)")
	slowLog := flag.Duration("slow-log", 250*time.Millisecond, "request-log slow threshold: requests above this log at WARN")
	sloWindow := flag.Duration("slo-window", 5*time.Minute, "SLO rolling window")
	sloAvail := flag.Float64("slo-availability", 0.999, "SLO availability objective (fraction of requests that must not 5xx)")
	sloLatency := flag.Duration("slo-latency", 250*time.Millisecond, "SLO latency objective")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "fraction of requests that must beat -slo-latency")

	clsPath := flag.String("classifier", "", "serialized classifier (SaveClassifier format)")
	scrPath := flag.String("screener", "", "serialized screener (SaveScreener format)")
	featPath := flag.String("features", "", "serialized features for shard screener training (WriteFeatures format)")
	shards := flag.Int("shards", 1, "row-shard the class space across N local shards (sharded backend)")

	clusterMap := flag.String("cluster", "", "route to networked enmc-shard workers: replica URLs comma-separated, shards semicolon-separated (e.g. 'h1:9090,h2:9090;h3:9091,h4:9091')")
	clusterTimeout := flag.Duration("cluster-timeout", 2*time.Second, "per-attempt shard RPC timeout")
	clusterAttempts := flag.Int("cluster-attempts", 0, "attempts per shard per query incl. failover (default: one per replica, min 2)")
	clusterHedge := flag.Duration("cluster-hedge", 0, "hedge a shard RPC onto another replica after this delay (floor under -cluster-hedge-quantile; 0 disables)")
	clusterHedgeQ := flag.Float64("cluster-hedge-quantile", 0, "adaptive hedging: hedge after this quantile of observed shard latency (0 disables)")
	clusterHealthEvery := flag.Duration("cluster-health-interval", 500*time.Millisecond, "per-replica /readyz probe period")
	clusterWire := flag.String("wire", "binary", "shard RPC codec: binary (negotiated, falls back per replica) or json (force JSON)")

	modelRoot := flag.String("model-root", "", "versioned model registry root (enables hot swap + /v1/model/reload)")
	modelVersion := flag.String("model-version", "", "registry version to serve at startup (default newest)")
	canaryFloor := flag.Float64("canary-floor", 0.9, "reject a reload whose probe top-K agreement falls below this (negative: disable)")
	canaryTopK := flag.Int("canary-topk", 5, "K for the canary top-K agreement")
	canaryProbe := flag.String("canary-probe", "", "probe feature file (WriteFeatures format; default: version's shipped probe)")

	demoClasses := flag.Int("demo-classes", 4096, "demo model: class count")
	demoDim := flag.Int("demo-dim", 128, "demo model: hidden dimension")
	demoSeed := flag.Uint64("demo-seed", 7, "demo model: generation/training seed")
	epochs := flag.Int("epochs", 4, "demo/shard screener distillation epochs")
	bits := flag.Int("bits", 4, "demo/shard screening precision: 2, 4 or 8")

	decodeOn := flag.Bool("decode", false, "enable streaming autoregressive decode sessions on POST /v1/decode")
	decodeMaxSessions := flag.Int("decode-max-sessions", 256, "decode session cap (429 past this)")
	decodeTTL := flag.Duration("decode-ttl", time.Minute, "idle decode sessions are evicted after this")
	decodeDeadline := flag.Duration("decode-deadline", 0, "per-token latency budget: the screening budget m degrades toward the floor before missing it (0: off)")
	decodeMaxLen := flag.Int("decode-maxlen", 64, "decode sequence length cap")
	decodeSeed := flag.Uint64("decode-seed", 1, "decoder dynamics seed")
	decodeWidth := flag.Int("decode-width", 8, "maximum beam width")
	decodeCache := flag.Int("decode-cache", 0, "candidate-cache slots per session (0: auto 4×m, negative: disable)")
	decodeVerify := flag.Int("decode-verify-every", 64, "exact-recompute cache verification period in steps (negative: off)")

	tenantsPath := flag.String("tenants", "", "tenant config JSON (multi-tenant QoS: API keys, classes, quotas, pins; SIGHUP re-reads)")
	shedFrac := flag.Float64("shed-frac", 0.75, "higher-class queue fraction past which lower classes are shed at admission")

	maxBatch := flag.Int("max-batch", 32, "micro-batch flush size")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "micro-batch flush delay")
	queueCap := flag.Int("queue-cap", 256, "admission queue bound (429 past this)")
	flushWorkers := flag.Int("flush-workers", 2, "concurrent batch flushes")
	topM := flag.Int("m", 0, "screening budget TopM (default classes/64)")
	mFloor := flag.Int("m-floor", 0, "degradation floor for TopM (default TopM/4)")
	watermark := flag.Float64("watermark", 0.5, "queue-depth fraction where degradation starts")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	flag.Parse()

	if *traceOn {
		// Install before Dial so the cluster router names its process
		// lanes and ships trace contexts on shard RPCs.
		telemetry.SetGlobal(telemetry.NewTracer())
	}

	var backend server.Backend
	var mgr *registry.Manager
	var router *cluster.Router
	var localCls *core.Classifier
	var localScr *core.Screener
	if *clusterMap != "" {
		if *clusterWire != "binary" && *clusterWire != "json" {
			fatalIf(fmt.Errorf("-wire must be binary or json, got %q", *clusterWire))
		}
		shardMap, err := cluster.ParseShardMap(*clusterMap)
		fatalIf(err)
		dialCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		router, err = cluster.Dial(dialCtx, cluster.RouterConfig{
			ShardMap:       shardMap,
			Timeout:        *clusterTimeout,
			MaxAttempts:    *clusterAttempts,
			HedgeAfter:     *clusterHedge,
			HedgeQuantile:  *clusterHedgeQ,
			HealthInterval: *clusterHealthEvery,
			WireJSON:       *clusterWire == "json",
		})
		cancel()
		fatalIf(err)
		defer router.Close()
		log.Printf("cluster router: %d shards, %d classes (version %q)",
			router.Shards(), router.Categories(), router.ModelVersion())
		backend = router
	} else if *modelRoot != "" {
		store, err := registry.Open(*modelRoot)
		fatalIf(err)
		var probe [][]float32
		if *canaryProbe != "" {
			f, err := os.Open(*canaryProbe)
			fatalIf(err)
			probe, err = core.ReadFeatures(f)
			fatalIf(err)
			fatalIf(f.Close())
		}
		mgr, err = registry.NewManager(store, *modelVersion, registry.Options{
			ProbeTopK:      *canaryTopK,
			AgreementFloor: *canaryFloor,
			Probe:          probe,
			Logf:           log.Printf,
		})
		fatalIf(err)
		backend = mgr.Swappable()
	} else {
		cls, scr, feats := buildModel(*clsPath, *scrPath, *featPath, *demoClasses, *demoDim, *demoSeed, *epochs, *bits)
		backend = buildBackend(cls, scr, feats, *shards, *bits, *epochs, *demoSeed)
		localCls, localScr = cls, scr
	}

	var tenants *tenant.Resolver
	if *tenantsPath != "" {
		var err error
		tenants, err = tenant.LoadResolver(*tenantsPath)
		fatalIf(err)
		names := tenants.Tenants()
		log.Printf("tenant config: %d tenants from %s", len(names), *tenantsPath)
	}

	var reqLog *telemetry.RequestLog
	if *logRequests || *logJSON {
		reqLog = telemetry.NewRequestLog(os.Stderr, telemetry.RequestLogOptions{
			JSON: *logJSON,
			Slow: *slowLog,
		})
	}
	slo := telemetry.NewSLO(telemetry.SLOConfig{
		Window:           *sloWindow,
		Availability:     *sloAvail,
		LatencyObjective: *sloLatency,
		LatencyTarget:    *sloLatencyTarget,
	})

	var pinnedBackend func(string) (server.Backend, error)
	if mgr != nil {
		pinnedBackend = mgr.BackendFor
	}
	srv, err := server.New(backend, server.Config{
		PinnedBackend: pinnedBackend,
		MaxBatch:      *maxBatch,
		MaxDelay:      *maxDelay,
		QueueCap:      *queueCap,
		FlushWorkers:  *flushWorkers,
		TopM:          *topM,
		MFloor:        *mFloor,
		Watermark:     *watermark,
		ShedFrac:      *shedFrac,
		Tenants:       tenants,
		RequestLog:    reqLog,
		SLO:           slo,
	})
	if err != nil {
		log.Fatal(err)
	}
	if mgr != nil {
		srv.SetReloader(mgr.Reload)
	}

	var decodeSvc *decode.Service
	if *decodeOn {
		dcfg := decode.Config{
			MaxSessions: *decodeMaxSessions,
			TTL:         *decodeTTL,
			TokenBudget: *decodeDeadline,
			TopM:        *topM,
			MFloor:      *mFloor,
			MaxWidth:    *decodeWidth,
		}
		switch {
		case mgr != nil:
			fatalIf(fmt.Errorf("-decode is not supported with -model-root (hot swap would invalidate session state)"))
		case router != nil:
			// The decoder dynamics need the classifier rows, which a
			// router never holds — regenerate the demo model the workers
			// were sharded from. Generate's RNG depends only on the seed,
			// so matching -demo-* flags reproduce the workers' classifier
			// bit-for-bit.
			if router.Categories() != *demoClasses || router.Hidden() != *demoDim {
				fatalIf(fmt.Errorf("-decode over -cluster: router serves %d×%d but -demo-classes/-demo-dim say %d×%d; point the demo flags at the cluster's model",
					router.Categories(), router.Hidden(), *demoClasses, *demoDim))
			}
			inst := workload.Generate(
				workload.Spec{Name: "serve-demo", Categories: *demoClasses, Hidden: *demoDim, LatentRank: 32, ZipfS: 1.05},
				workload.GenOptions{Seed: *demoSeed, Train: 1, Valid: 1, Test: 1})
			dec := workload.NewDecoderFor(inst.Classifier, *decodeSeed, *decodeMaxLen)
			decodeSvc = decode.NewService(dcfg, dec, func() decode.Scorer { return router.NewDecodeScorer() })
			log.Printf("decode sessions enabled over the cluster (per-token scatter, session affinity)")
		default:
			if localCls == nil || localScr == nil {
				fatalIf(fmt.Errorf("-decode needs a local classifier+screener"))
			}
			dec := workload.NewDecoderFor(localCls, *decodeSeed, *decodeMaxLen)
			decodeSvc = decode.NewService(dcfg, dec, func() decode.Scorer {
				return decode.NewLocalScorer(localCls, localScr, decode.LocalScorerConfig{
					CacheSlots:  *decodeCache,
					VerifyEvery: *decodeVerify,
				})
			})
			log.Printf("decode sessions enabled (local scorer, candidate cache)")
		}
		srv.SetDecode(decodeSvc)
	}

	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebugWith(*debugAddr, func() {
			slo.Publish(telemetry.Default())
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s (pprof, /metrics, /debug/vars, /debug/spans)", dbg)
		if *debugPortFile != "" {
			_, dbgPort, err := net.SplitHostPort(dbg)
			fatalIf(err)
			fatalIf(os.WriteFile(*debugPortFile, []byte(dbgPort+"\n"), 0o644))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		fatalIf(os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644))
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		log.Printf("serving %d classes × %d dims on %s (shards=%d queue=%d batch=%d/%s)",
			backend.Categories(), backend.Hidden(), ln.Addr(), *shards, *queueCap, *maxBatch, *maxDelay)
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		got := <-sig
		if got == syscall.SIGHUP {
			// SIGHUP = "re-read config": the tenant file (quotas, keys,
			// pins — zero dropped in-flight requests, bad config keeps
			// the previous generation serving) and, with -model-root,
			// the newest model version. A failed canary or load keeps
			// the current version serving — rollback is the default,
			// not an action.
			if tenants != nil {
				if err := tenants.Reload(); err != nil {
					log.Printf("SIGHUP tenant reload failed (previous config still serving): %v", err)
				} else {
					log.Printf("SIGHUP tenant reload: %d tenants", len(tenants.Tenants()))
				}
			}
			if mgr == nil {
				if tenants == nil {
					log.Printf("SIGHUP: no -model-root or -tenants configured, ignoring")
				}
				continue
			}
			go func() {
				active, err := mgr.Reload(context.Background(), "")
				if err != nil {
					log.Printf("SIGHUP reload failed (still serving %q): %v", active, err)
					return
				}
				log.Printf("SIGHUP reload: serving %q", active)
			}()
			continue
		}
		log.Printf("%s: draining (readiness down, intake stopped)", got)
		break
	}
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if decodeSvc != nil {
		// After Shutdown returns every in-flight stream has completed;
		// new sessions were already refused once draining began.
		decodeSvc.Shutdown()
	}
	log.Printf("drained cleanly")
}

// buildModel loads the classifier/screener pair from disk, or trains
// a synthetic demo pair when no paths are given. It also returns
// training features when available (needed for shard retraining).
func buildModel(clsPath, scrPath, featPath string, classes, dim int, seed uint64, epochs, bits int) (*core.Classifier, *core.Screener, [][]float32) {
	if clsPath != "" {
		f, err := os.Open(clsPath)
		fatalIf(err)
		cls, err := core.ReadClassifier(f)
		fatalIf(err)
		fatalIf(f.Close())
		var scr *core.Screener
		if scrPath != "" {
			g, err := os.Open(scrPath)
			fatalIf(err)
			scr, err = core.ReadScreener(g)
			fatalIf(err)
			fatalIf(g.Close())
		}
		var feats [][]float32
		if featPath != "" {
			h, err := os.Open(featPath)
			fatalIf(err)
			feats, err = core.ReadFeatures(h)
			fatalIf(err)
			fatalIf(h.Close())
		}
		if scr == nil {
			if len(feats) == 0 {
				fatalIf(fmt.Errorf("need -screener or -features alongside -classifier"))
			}
			scr = train(cls, feats, bits, epochs, seed)
		}
		return cls, scr, feats
	}

	log.Printf("no -classifier given: training a %d×%d demo model", classes, dim)
	inst := workload.Generate(
		workload.Spec{Name: "serve-demo", Categories: classes, Hidden: dim, LatentRank: 32, ZipfS: 1.05},
		workload.GenOptions{Seed: seed, Train: 512, Valid: 32, Test: 32})
	scr := train(inst.Classifier, inst.Train, bits, epochs, seed)
	return inst.Classifier, scr, inst.Train
}

func train(cls *core.Classifier, feats [][]float32, bits, epochs int, seed uint64) *core.Screener {
	scr, _, err := core.TrainScreener(cls, feats, core.Config{
		Categories: cls.Categories(),
		Hidden:     cls.Hidden(),
		Reduced:    cls.Hidden() / 4,
		Precision:  quant.Bits(bits),
		Seed:       seed,
	}, core.TrainOptions{Epochs: epochs, Seed: seed + 1})
	fatalIf(err)
	return scr
}

func buildBackend(cls *core.Classifier, scr *core.Screener, feats [][]float32, shards, bits, epochs int, seed uint64) server.Backend {
	if shards <= 1 {
		b, err := server.NewLocal(cls, scr)
		fatalIf(err)
		return b
	}
	if len(feats) == 0 {
		fatalIf(fmt.Errorf("-shards > 1 needs training features (-features, or demo mode)"))
	}
	set, err := distributed.ShardClassifier(cls, shards, feats, core.Config{
		Hidden:    cls.Hidden(),
		Reduced:   cls.Hidden() / 4,
		Precision: quant.Bits(bits),
		Seed:      seed,
	}, core.TrainOptions{Epochs: epochs, Seed: seed + 1})
	fatalIf(err)
	b, err := server.NewSharded(set)
	fatalIf(err)
	return b
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
