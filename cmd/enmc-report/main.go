// Command enmc-report is the benchmark-governance pipeline: it
// ingests the committed perf-trajectory files (BENCH_*.json, written
// by `enmc-bench -perf`) and load-test reports (`enmc-loadgen
// -log-json`, dropped by the smoke scripts), applies the validity
// gate (N interleaved passes, per-metric coefficient of variation,
// machine-fingerprint matching for trend ratios), and regenerates the
// committed BENCHMARK.md.
//
// Usage:
//
//	enmc-report                      # regenerate BENCHMARK.md in place
//	enmc-report -check               # CI stale gate: fail if the committed
//	                                 # report differs from a fresh rendering
//	                                 # or the gate rejects the corpus
//	enmc-report -bench 'BENCH_*.json,fresh.json' -out /tmp/preview.md
//
// Exit codes: 0 ok; 1 corpus rejected by the validity gate (or I/O
// error); 2 the committed report is stale (-check only).
package main

import (
	"flag"
	"fmt"
	"os"

	"enmc/internal/report"
)

func main() {
	bench := flag.String("bench", "BENCH_*.json", "comma-separated globs of perf-trajectory files (JSON arrays of PerfRecord)")
	loadgen := flag.String("loadgen", "benchdata/loadgen/*.json", "comma-separated globs of enmc-loadgen -log-json reports (empty: skip the section)")
	out := flag.String("out", "BENCHMARK.md", "report path to write (or, with -check, to compare against)")
	check := flag.Bool("check", false, "do not write: fail if -out differs from a fresh rendering (the CI stale-report gate)")
	minPasses := flag.Int("min-passes", 5, "validity gate: required interleaved passes per shape for governed records")
	noisyCV := flag.Float64("noisy-cv", 0.10, "validity gate: flag records whose max per-metric CV exceeds this")
	discardCV := flag.Float64("discard-cv", 0.35, "validity gate: drop records whose max per-metric CV exceeds this from trend tables")
	flag.Parse()

	cfg := report.GateConfig{MinPasses: *minPasses, NoisyCV: *noisyCV, DiscardCV: *discardCV}
	rep, err := report.Build(cfg, *bench, *loadgen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enmc-report: corpus rejected: %v\n", err)
		os.Exit(1)
	}
	rendered := rep.Render()

	if *check {
		if err := report.Check(rendered, *out); err != nil {
			fmt.Fprintf(os.Stderr, "enmc-report: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "enmc-report: %s is current (%d records, %d load reports)\n",
			*out, len(rep.Assessments), len(rep.Loads))
		return
	}
	if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "enmc-report: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "enmc-report: wrote %s (%d records, %d load reports)\n",
		*out, len(rep.Assessments), len(rep.Loads))
}
