package main

// Hot-path performance harness: -perf times the software classify
// pipeline at the paper's Table 2 serving shapes and appends a
// report.PerfRecord to a JSON trajectory file (BENCH_<date>.json), so
// kernel regressions show up as a diffable number series rather than
// anecdotes. -baseline compares the fresh run against the last record
// of a committed file and fails the process on a >maxreg slowdown —
// the CI tripwire. The same shapes are benchmarked by
// BenchmarkScreen/BenchmarkClassifyApprox in the repo root.
//
// Records are schema 1 (benchmark governance): each shape is timed
// over -passes interleaved passes and the record stores, per metric,
// both the minimum across passes (the reported ns/op) and the
// coefficient of variation of the per-pass minima — the run's own
// noise disclosure, which the enmc-report validity gate inspects
// before admitting the record to the committed trend tables. The
// record also carries the host CPU model so the report can refuse
// cross-machine trend ratios.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/report"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// perfShape is one serving workload: l categories, d hidden, k
// reduced, and a top-m candidate budget of about 2% of l (the paper's
// working point).
type perfShape struct {
	Name    string
	L, D, K int
	M       int
}

var perfShapes = []perfShape{
	{Name: "wiki-lstm-33k", L: 33278, D: 1500, K: 375, M: 666},
	{Name: "amazon-670k", L: 670091, D: 512, K: 128, M: 13401},
}

// buildPerfModel constructs a random frozen screener and classifier at
// the shape. Weights are uniform noise — the harness measures kernel
// time, not quality — but the construction is deterministic so runs
// are comparable.
func buildPerfModel(s perfShape) (*core.Classifier, *core.Screener, []float32) {
	r := xrand.New(1234)
	wt := tensor.NewMatrix(s.L, s.K)
	for i := range wt.Data {
		wt.Data[i] = r.Float32()*2 - 1
	}
	bt := make([]float32, s.L)
	for i := range bt {
		bt[i] = r.Float32()*2 - 1
	}
	scr := &core.Screener{
		Cfg: core.Config{Categories: s.L, Hidden: s.D, Reduced: s.K, Precision: quant.INT4, Seed: 7},
		P:   projection.New(s.K, s.D, 7),
		Wt:  wt,
		Bt:  bt,
	}
	scr.Freeze()

	w := tensor.NewMatrix(s.L, s.D)
	for i := range w.Data {
		w.Data[i] = r.Float32()*2 - 1
	}
	bias := make([]float32, s.L)
	for i := range bias {
		bias[i] = r.Float32()*2 - 1
	}
	cls, err := core.NewClassifier(w, bias)
	if err != nil {
		panic(err)
	}
	h := make([]float32, s.D)
	for i := range h {
		h[i] = r.Float32()*2 - 1
	}
	return cls, scr, h
}

// timeIt runs f repeatedly (after one warm-up call) until minTime has
// elapsed or maxIters runs, returning the fastest single call in ns.
// Minimum — not mean — because shared hosts suffer bursty steal time
// that inflates any averaging window unpredictably; the fastest
// observed iteration is the stable estimator of what the code costs,
// which is what a regression tripwire needs to compare across runs.
func timeIt(minTime time.Duration, maxIters int, f func()) float64 {
	f() // warm caches and scratch buffers
	start := time.Now()
	iters := 0
	best := time.Duration(1<<63 - 1)
	for time.Since(start) < minTime && iters < maxIters {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
		iters++
	}
	return float64(best.Nanoseconds())
}

// series accumulates one sample per interleaved pass for a metric and
// reports the governance pair: min across passes (the trend value)
// and the coefficient of variation of the per-pass samples (the noise
// disclosure).
type series []float64

func (s series) min() float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s series) cv() float64 {
	if len(s) < 2 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(s))) / mean
}

func perfShapeSet(filter string) []perfShape {
	if filter == "" {
		return perfShapes
	}
	var out []perfShape
	for _, s := range perfShapes {
		for _, want := range strings.Split(filter, ",") {
			if strings.Contains(s.Name, strings.TrimSpace(want)) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// cpuModel identifies the recording machine's processor so the report
// pipeline can refuse cross-machine trend comparisons. Linux exposes
// it in /proc/cpuinfo; elsewhere fall back to the architecture, which
// at least distinguishes an arm64 laptop from an amd64 runner.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return "unknown-" + runtime.GOOS + "-" + runtime.GOARCH
}

// runPerf measures every selected shape over `passes` interleaved
// passes and returns the schema-1 record.
func runPerf(label, filter string, passes int) report.PerfRecord {
	if passes < 1 {
		passes = 1
	}
	rec := report.PerfRecord{
		Schema:     report.PerfSchemaVersion,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	const minTime = 700 * time.Millisecond
	const maxIters = 25
	for _, s := range perfShapeSet(filter) {
		fmt.Fprintf(os.Stderr, "perf: building %s (l=%d d=%d k=%d m=%d)...\n", s.Name, s.L, s.D, s.K, s.M)
		cls, scr, h := buildPerfModel(s)
		sel := core.TopM(s.M)

		res := report.PerfResult{Shape: s.Name, L: s.L, D: s.D, K: s.K, M: s.M, Passes: passes}

		dst := make([]float32, s.L)
		sc := core.GetScratch()
		sc.MaxShards = 1
		const batchSize = 8
		batch := make([][]float32, batchSize)
		for i := range batch {
			batch[i] = h
		}
		var sink int
		// Several short passes over the metric set, keeping one sample
		// per pass per metric: contention storms on shared hosts outlast
		// any single timing window, so interleaving is what keeps one
		// storm from poisoning one metric while its neighbors measure
		// clean — and the spread across passes is the noise estimate the
		// validity gate audits.
		screen := make(series, 0, passes)
		classify := make(series, 0, passes)
		into := make(series, 0, passes)
		batchNs := make(series, 0, passes)
		for p := 0; p < passes; p++ {
			screen = append(screen, timeIt(minTime, maxIters, func() { scr.ScreenInto(dst, h, sc) }))
			classify = append(classify, timeIt(minTime, maxIters, func() { core.ClassifyApprox(cls, scr, h, sel) }))
			into = append(into, timeIt(minTime, maxIters, func() { core.ClassifyApproxInto(cls, scr, h, sel, sc) }))
			batchNs = append(batchNs, timeIt(minTime, 5, func() {
				_ = core.ClassifyBatchVisitCtx(context.Background(), cls, scr, batch, sel, nil,
					func(i int, r *core.Result, _ *core.Scratch) { sink += r.Predict() })
			}))
		}
		_ = sink
		res.ScreenNsOp = screen.min()
		res.ClassifyNsOp = classify.min()
		res.ClassifyIntoNsOp = into.min()
		res.AllocsOp = testing.AllocsPerRun(5, func() { core.ClassifyApproxInto(cls, scr, h, sel, sc) })
		sc.Release()
		res.BatchQPS = float64(batchSize) / (batchNs.min() / 1e9)
		res.CV = map[string]float64{
			report.MetricScreen:       screen.cv(),
			report.MetricClassify:     classify.cv(),
			report.MetricClassifyInto: into.cv(),
			report.MetricBatch:        batchNs.cv(),
		}

		fmt.Fprintf(os.Stderr, "perf: %-14s screen %8.2f ms  classify %8.2f ms  into %8.2f ms  allocs %g  batch %7.1f qps  (passes %d, max cv %.1f%%)\n",
			s.Name, res.ScreenNsOp/1e6, res.ClassifyNsOp/1e6, res.ClassifyIntoNsOp/1e6, res.AllocsOp, res.BatchQPS,
			passes, 100*maxCV(res.CV))
		rec.Results = append(rec.Results, res)
	}
	return rec
}

func maxCV(cv map[string]float64) float64 {
	var m float64
	for _, v := range cv {
		if v > m {
			m = v
		}
	}
	return m
}

// loadPerfFile reads a trajectory file (JSON array of PerfRecord).
func loadPerfFile(path string) ([]report.PerfRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []report.PerfRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// appendPerfFile appends rec to the trajectory at path, creating the
// file if needed — every harness run becomes one more dated, labeled
// entry in the committed number series rather than a replaced
// snapshot.
func appendPerfFile(path string, rec report.PerfRecord) error {
	recs, err := loadPerfFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	recs = append(recs, rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// comparePerf checks rec against the baseline trajectory: any
// matching shape whose hot metrics grew by more than maxReg fails.
// The per-shape baseline is the LAST record carrying that shape, not
// the file's last record — the trajectory interleaves kernel shapes
// (-perf) and wire shapes (-wire), and a wire-only append must not
// silently disable the kernel tripwire (or vice versa). The bound is
// generous on purpose — it is a cross-machine tripwire for
// order-of-magnitude regressions (an accidental O(n log n) → O(n²), a
// lost fast path), not a microbenchmark gate; same-machine trend
// discipline lives in enmc-report, which refuses cross-machine ratios
// outright.
func comparePerf(rec report.PerfRecord, baselinePath string, maxReg float64) error {
	base, err := loadPerfFile(baselinePath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("%s: empty baseline", baselinePath)
	}
	byShape := map[string]report.PerfResult{}
	labelByShape := map[string]string{}
	for _, brec := range base { // file order is oldest first: last wins
		for _, r := range brec.Results {
			byShape[r.Shape] = r
			labelByShape[r.Shape] = brec.Label
		}
	}
	var failures []string
	for _, cur := range rec.Results {
		b, ok := byShape[cur.Shape]
		if !ok {
			continue
		}
		check := func(metric string, got, want float64) {
			if want <= 0 {
				return
			}
			ratio := got / want
			status := "ok"
			if ratio > maxReg {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s %.2fx (limit %.2fx)", cur.Shape, metric, ratio, maxReg))
			}
			fmt.Fprintf(os.Stderr, "perf: %-14s %-20s %8.2f ms vs baseline(%s) %8.2f ms  = %.2fx  %s\n",
				cur.Shape, metric, got/1e6, labelByShape[cur.Shape], want/1e6, ratio, status)
		}
		check("screen_ns_op", cur.ScreenNsOp, b.ScreenNsOp)
		check("classify_into_ns_op", cur.ClassifyIntoNsOp, b.ClassifyIntoNsOp)
		check("wire_encode_ns_op", cur.WireEncodeNsOp, b.WireEncodeNsOp)
		check("wire_decode_ns_op", cur.WireDecodeNsOp, b.WireDecodeNsOp)
		check("decode_token_ns_op", cur.DecodeTokenNsOp, b.DecodeTokenNsOp)
		check("decode_cached_token_ns_op", cur.DecodeCachedTokenNsOp, b.DecodeCachedTokenNsOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression vs %s: %s", baselinePath, strings.Join(failures, "; "))
	}
	return nil
}
