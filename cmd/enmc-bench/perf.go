package main

// Hot-path performance harness: -perf times the software classify
// pipeline at the paper's Table 2 serving shapes and appends a
// PerfRecord to a JSON trajectory file (BENCH_<date>.json), so kernel
// regressions show up as a diffable number series rather than
// anecdotes. -baseline compares the fresh run against the last record
// of a committed file and fails the process on a >maxreg slowdown —
// the CI tripwire. The same shapes are benchmarked by
// BenchmarkScreen/BenchmarkClassifyApprox in the repo root.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// perfShape is one serving workload: l categories, d hidden, k
// reduced, and a top-m candidate budget of about 2% of l (the paper's
// working point).
type perfShape struct {
	Name    string
	L, D, K int
	M       int
}

var perfShapes = []perfShape{
	{Name: "wiki-lstm-33k", L: 33278, D: 1500, K: 375, M: 666},
	{Name: "amazon-670k", L: 670091, D: 512, K: 128, M: 13401},
}

// PerfResult is the measured hot-path profile of one shape.
type PerfResult struct {
	Shape            string  `json:"shape"`
	L                int     `json:"l"`
	D                int     `json:"d"`
	K                int     `json:"k"`
	M                int     `json:"m"`
	ScreenNsOp       float64 `json:"screen_ns_op"`
	ClassifyNsOp     float64 `json:"classify_ns_op"`
	ClassifyIntoNsOp float64 `json:"classify_into_ns_op"`
	AllocsOp         float64 `json:"allocs_op"` // steady-state ClassifyApproxInto
	BatchQPS         float64 `json:"batch_qps"` // ClassifyBatchVisitCtx, batch 8
}

// PerfRecord is one harness invocation; a trajectory file holds a
// JSON array of them, oldest first.
type PerfRecord struct {
	Date       string       `json:"date"`
	Label      string       `json:"label"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []PerfResult `json:"results"`
}

// buildPerfModel constructs a random frozen screener and classifier at
// the shape. Weights are uniform noise — the harness measures kernel
// time, not quality — but the construction is deterministic so runs
// are comparable.
func buildPerfModel(s perfShape) (*core.Classifier, *core.Screener, []float32) {
	r := xrand.New(1234)
	wt := tensor.NewMatrix(s.L, s.K)
	for i := range wt.Data {
		wt.Data[i] = r.Float32()*2 - 1
	}
	bt := make([]float32, s.L)
	for i := range bt {
		bt[i] = r.Float32()*2 - 1
	}
	scr := &core.Screener{
		Cfg: core.Config{Categories: s.L, Hidden: s.D, Reduced: s.K, Precision: quant.INT4, Seed: 7},
		P:   projection.New(s.K, s.D, 7),
		Wt:  wt,
		Bt:  bt,
	}
	scr.Freeze()

	w := tensor.NewMatrix(s.L, s.D)
	for i := range w.Data {
		w.Data[i] = r.Float32()*2 - 1
	}
	bias := make([]float32, s.L)
	for i := range bias {
		bias[i] = r.Float32()*2 - 1
	}
	cls, err := core.NewClassifier(w, bias)
	if err != nil {
		panic(err)
	}
	h := make([]float32, s.D)
	for i := range h {
		h[i] = r.Float32()*2 - 1
	}
	return cls, scr, h
}

// timeIt runs f repeatedly (after one warm-up call) until minTime has
// elapsed or maxIters runs, returning the fastest single call in ns.
// Minimum — not mean — because shared hosts suffer bursty steal time
// that inflates any averaging window unpredictably; the fastest
// observed iteration is the stable estimator of what the code costs,
// which is what a regression tripwire needs to compare across runs.
func timeIt(minTime time.Duration, maxIters int, f func()) float64 {
	f() // warm caches and scratch buffers
	start := time.Now()
	iters := 0
	best := time.Duration(1<<63 - 1)
	for time.Since(start) < minTime && iters < maxIters {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
		iters++
	}
	return float64(best.Nanoseconds())
}

// minNonZero treats zero as "not yet measured".
func minNonZero(cur, v float64) float64 {
	if cur == 0 || v < cur {
		return v
	}
	return cur
}

func perfShapeSet(filter string) []perfShape {
	if filter == "" {
		return perfShapes
	}
	var out []perfShape
	for _, s := range perfShapes {
		for _, want := range strings.Split(filter, ",") {
			if strings.Contains(s.Name, strings.TrimSpace(want)) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// runPerf measures every selected shape and returns the record.
func runPerf(label, filter string) PerfRecord {
	rec := PerfRecord{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	const minTime = 700 * time.Millisecond
	const maxIters = 25
	const passes = 3
	for _, s := range perfShapeSet(filter) {
		fmt.Fprintf(os.Stderr, "perf: building %s (l=%d d=%d k=%d m=%d)...\n", s.Name, s.L, s.D, s.K, s.M)
		cls, scr, h := buildPerfModel(s)
		sel := core.TopM(s.M)

		res := PerfResult{Shape: s.Name, L: s.L, D: s.D, K: s.K, M: s.M}

		dst := make([]float32, s.L)
		sc := core.GetScratch()
		sc.MaxShards = 1
		const batchSize = 8
		batch := make([][]float32, batchSize)
		for i := range batch {
			batch[i] = h
		}
		var sink int
		// Several short passes over the metric set, keeping the best of
		// each: contention storms on shared hosts outlast any single
		// timing window, so interleaving is what keeps one storm from
		// poisoning one metric while its neighbors measure clean.
		var batchNs float64
		for p := 0; p < passes; p++ {
			res.ScreenNsOp = minNonZero(res.ScreenNsOp, timeIt(minTime, maxIters, func() { scr.ScreenInto(dst, h, sc) }))
			res.ClassifyNsOp = minNonZero(res.ClassifyNsOp, timeIt(minTime, maxIters, func() { core.ClassifyApprox(cls, scr, h, sel) }))
			res.ClassifyIntoNsOp = minNonZero(res.ClassifyIntoNsOp, timeIt(minTime, maxIters, func() { core.ClassifyApproxInto(cls, scr, h, sel, sc) }))
			batchNs = minNonZero(batchNs, timeIt(minTime, 5, func() {
				_ = core.ClassifyBatchVisitCtx(context.Background(), cls, scr, batch, sel, nil,
					func(i int, r *core.Result, _ *core.Scratch) { sink += r.Predict() })
			}))
		}
		_ = sink
		res.AllocsOp = testing.AllocsPerRun(5, func() { core.ClassifyApproxInto(cls, scr, h, sel, sc) })
		sc.Release()
		res.BatchQPS = float64(batchSize) / (batchNs / 1e9)

		fmt.Fprintf(os.Stderr, "perf: %-14s screen %8.2f ms  classify %8.2f ms  into %8.2f ms  allocs %g  batch %7.1f qps\n",
			s.Name, res.ScreenNsOp/1e6, res.ClassifyNsOp/1e6, res.ClassifyIntoNsOp/1e6, res.AllocsOp, res.BatchQPS)
		rec.Results = append(rec.Results, res)
	}
	return rec
}

// loadPerfFile reads a trajectory file (JSON array of PerfRecord).
func loadPerfFile(path string) ([]PerfRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []PerfRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// appendPerfFile appends rec to the trajectory at path, creating the
// file if needed.
func appendPerfFile(path string, rec PerfRecord) error {
	recs, err := loadPerfFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	recs = append(recs, rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// comparePerf checks rec against the last record in the baseline
// trajectory: any matching shape whose classify_into_ns_op or
// screen_ns_op grew by more than maxReg fails. The bound is generous
// on purpose — it is a cross-machine tripwire for order-of-magnitude
// regressions (an accidental O(n log n) → O(n²), a lost fast path),
// not a microbenchmark gate.
func comparePerf(rec PerfRecord, baselinePath string, maxReg float64) error {
	base, err := loadPerfFile(baselinePath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("%s: empty baseline", baselinePath)
	}
	last := base[len(base)-1]
	byShape := map[string]PerfResult{}
	for _, r := range last.Results {
		byShape[r.Shape] = r
	}
	var failures []string
	for _, cur := range rec.Results {
		b, ok := byShape[cur.Shape]
		if !ok {
			continue
		}
		check := func(metric string, got, want float64) {
			if want <= 0 {
				return
			}
			ratio := got / want
			status := "ok"
			if ratio > maxReg {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s %.2fx (limit %.2fx)", cur.Shape, metric, ratio, maxReg))
			}
			fmt.Fprintf(os.Stderr, "perf: %-14s %-20s %8.2f ms vs baseline(%s) %8.2f ms  = %.2fx  %s\n",
				cur.Shape, metric, got/1e6, last.Label, want/1e6, ratio, status)
		}
		check("screen_ns_op", cur.ScreenNsOp, b.ScreenNsOp)
		check("classify_into_ns_op", cur.ClassifyIntoNsOp, b.ClassifyIntoNsOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression vs %s: %s", baselinePath, strings.Join(failures, "; "))
	}
	return nil
}
