package main

// Wire-codec benchmark harness: -wire measures the cluster screen RPC
// round trip in both codecs — binary frame (internal/cluster codec v2)
// and the JSON bodies the pre-v2 fallback path still speaks — and
// appends the result to the same governed trajectory as -perf. The
// acceptance comparison (binary vs JSON speedup and byte ratio) is
// WITHIN one record, so it stays valid across machines; the per-codec
// ns series over records is the usual same-fingerprint trend.
//
// The measured geometry is the amazon-670k serving shape as seen by
// one shard of a 3-way cluster split: the router encodes a request of
// 8 hidden vectors (d=512) and decodes a response carrying each
// item's per-shard top-m candidates (m = 13401/3) — the exact payload
// pair that crosses the wire once per shard per micro-batch.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"enmc/internal/cluster"
	"enmc/internal/report"
	"enmc/internal/xrand"
)

// wireShape is one RPC payload geometry: batch items of hidden floats
// out, perItem candidates per item back.
type wireShape struct {
	Name       string
	L, D, K, M int // reported like a perf shape; M is the per-shard budget
	Batch      int
	PerItem    int // candidates returned per item (worker top-m)
}

var wireShapes = []wireShape{
	{Name: "screen-rpc-670k-shard3", L: 670091, D: 512, K: 128, M: 13401 / 3, Batch: 8, PerItem: 13401 / 3},
}

// buildWirePayloads constructs a deterministic request batch and
// response at the shape — values are noise (the codec cost does not
// depend on them) but construction is seeded so runs are comparable.
func buildWirePayloads(s wireShape) ([][]float32, *cluster.ScreenResponse) {
	r := xrand.New(99)
	batch := make([][]float32, s.Batch)
	for i := range batch {
		h := make([]float32, s.D)
		for j := range h {
			h[j] = r.Float32()*2 - 1
		}
		batch[i] = h
	}
	resp := &cluster.ScreenResponse{
		Offset:  s.L / 3,
		Classes: s.L,
		Version: "sha256:wirebench",
		Items:   make([][]cluster.WireCandidate, s.Batch),
	}
	for i := range resp.Items {
		cands := make([]cluster.WireCandidate, s.PerItem)
		for j := range cands {
			cands[j] = cluster.WireCandidate{Class: s.L/3 + j, Logit: r.Float32()*20 - 10}
		}
		resp.Items[i] = cands
	}
	return batch, resp
}

// runWire measures every wire shape over `passes` interleaved passes
// and returns a schema-1 record for the governed trajectory.
func runWire(label string, passes int) report.PerfRecord {
	if passes < 1 {
		passes = 1
	}
	rec := report.PerfRecord{
		Schema:     report.PerfSchemaVersion,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	const minTime = 300 * time.Millisecond
	const maxIters = 200
	for _, s := range wireShapes {
		fmt.Fprintf(os.Stderr, "wire: building %s (batch=%d d=%d cands/item=%d)...\n", s.Name, s.Batch, s.D, s.PerItem)
		batch, resp := buildWirePayloads(s)
		req := cluster.ScreenRequest{Batch: batch, M: s.M}

		// Reference encodings, reused as decode inputs and measured for
		// the byte comparison. One RPC = one request + one response.
		binReq, err := cluster.AppendScreenRequest(nil, s.M, batch)
		if err != nil {
			panic(err)
		}
		binResp, err := cluster.AppendScreenResponse(nil, resp)
		if err != nil {
			panic(err)
		}
		jsonReq, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		jsonResp, err := json.Marshal(resp)
		if err != nil {
			panic(err)
		}

		res := report.PerfResult{
			Shape: s.Name, L: s.L, D: s.D, K: s.K, M: s.M, Passes: passes,
			WireBinaryBytes: len(binReq) + len(binResp),
			WireJSONBytes:   len(jsonReq) + len(jsonResp),
		}

		sc := cluster.GetWireScratch()
		buf := make([]byte, 0, len(binResp))
		enc := make(series, 0, passes)
		dec := make(series, 0, passes)
		jenc := make(series, 0, passes)
		jdec := make(series, 0, passes)
		for p := 0; p < passes; p++ {
			enc = append(enc, timeIt(minTime, maxIters, func() {
				buf, err = cluster.AppendScreenRequest(buf[:0], s.M, batch)
				if err != nil {
					panic(err)
				}
				buf, err = cluster.AppendScreenResponse(buf[:0], resp)
				if err != nil {
					panic(err)
				}
			}))
			dec = append(dec, timeIt(minTime, maxIters, func() {
				if _, _, err := cluster.DecodeScreenRequest(binReq, sc); err != nil {
					panic(err)
				}
				if _, err := cluster.DecodeScreenResponse(binResp, sc); err != nil {
					panic(err)
				}
			}))
			jenc = append(jenc, timeIt(minTime, maxIters, func() {
				if _, err := json.Marshal(req); err != nil {
					panic(err)
				}
				if _, err := json.Marshal(resp); err != nil {
					panic(err)
				}
			}))
			jdec = append(jdec, timeIt(minTime, maxIters, func() {
				var dr cluster.ScreenRequest
				if err := json.Unmarshal(jsonReq, &dr); err != nil {
					panic(err)
				}
				var dresp cluster.ScreenResponse
				if err := json.Unmarshal(jsonResp, &dresp); err != nil {
					panic(err)
				}
			}))
		}
		sc.Release()
		res.WireEncodeNsOp = enc.min()
		res.WireDecodeNsOp = dec.min()
		res.WireJSONEncodeNsOp = jenc.min()
		res.WireJSONDecodeNsOp = jdec.min()
		res.CV = map[string]float64{
			report.MetricWireEncode:     enc.cv(),
			report.MetricWireDecode:     dec.cv(),
			report.MetricWireJSONEncode: jenc.cv(),
			report.MetricWireJSONDecode: jdec.cv(),
		}

		speedup := (res.WireJSONEncodeNsOp + res.WireJSONDecodeNsOp) / (res.WireEncodeNsOp + res.WireDecodeNsOp)
		fmt.Fprintf(os.Stderr, "wire: %-22s bin enc %7.1f µs dec %7.1f µs  json enc %8.1f µs dec %8.1f µs  speedup %.1fx  bytes %d vs %d (%.1fx)  (passes %d, max cv %.1f%%)\n",
			s.Name, res.WireEncodeNsOp/1e3, res.WireDecodeNsOp/1e3,
			res.WireJSONEncodeNsOp/1e3, res.WireJSONDecodeNsOp/1e3, speedup,
			res.WireBinaryBytes, res.WireJSONBytes, float64(res.WireJSONBytes)/float64(res.WireBinaryBytes),
			passes, 100*maxCV(res.CV))
		rec.Results = append(rec.Results, res)
	}
	return rec
}
