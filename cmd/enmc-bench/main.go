// Command enmc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	enmc-bench [-run fig13] [-quick] [-seed 42]
//	enmc-bench -quick -trace pipeline.json -metrics -pprof localhost:6060
//
// With no -run filter every experiment executes in paper order.
// -quick shrinks the algorithm-level workloads for a fast smoke run.
//
// Observability: -trace captures the algorithm pipeline (screen /
// select / exact-recompute spans, training epochs) as Chrome
// trace-event JSON via the global tracer; -metrics dumps the
// telemetry registry as JSON to stderr after the run; -pprof serves
// /debug/pprof, /debug/vars and /metrics while the experiments run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"enmc"
	"enmc/internal/experiments"
	"enmc/internal/report"
)

func main() {
	run := flag.String("run", "", "comma-separated experiments to run (fig4,fig5a,fig5b,fig11,fig12,fig13,fig14,fig15,table2,table3,table4,table5,ablations,ext-scaleout,ext-host,ext-beam,ext-gpu); empty = all")
	quick := flag.Bool("quick", false, "shrink algorithm-level workloads for a fast smoke run")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Uint64("seed", 42, "random seed for workload generation")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON of the algorithm pipeline to this file")
	metrics := flag.Bool("metrics", false, "dump the telemetry registry as JSON to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar/metrics HTTP on this address (e.g. localhost:6060)")
	perf := flag.Bool("perf", false, "run the hot-path perf harness (Table 2 serving shapes) instead of the experiments")
	wire := flag.Bool("wire", false, "run the cluster wire-codec harness (binary frame vs JSON screen RPC) instead of the experiments")
	decodeBench := flag.Bool("decode", false, "run the streaming-decode harness (per-token screened decode, candidate cache on/off, agreement BLEU) instead of the experiments")
	bleuFloor := flag.Float64("bleu-floor", 0, "with -decode: fail when screened-vs-full agreement BLEU falls below this (0 disables the gate)")
	perfJSON := flag.String("json", "", "with -perf/-wire/-decode: append the PerfRecord to this JSON trajectory file (e.g. BENCH_2026-08-06.json)")
	perfLabel := flag.String("label", "dev", "with -perf/-wire/-decode: label stored in the PerfRecord")
	perfShapesFlag := flag.String("shapes", "", "with -perf: comma-separated substrings selecting shapes (empty = all)")
	baseline := flag.String("baseline", "", "with -perf/-wire/-decode: trajectory file whose latest per-shape results are the regression baseline")
	maxReg := flag.Float64("maxreg", 1.5, "with -baseline: fail when screen/classify/wire ns/op exceed baseline by this factor")
	perfPasses := flag.Int("passes", 5, "with -perf/-wire/-decode: interleaved timing passes per shape (governance requires >= 5 for committed records)")
	flag.Parse()

	if *perf || *wire || *decodeBench {
		var rec report.PerfRecord
		switch {
		case *wire:
			rec = runWire(*perfLabel, *perfPasses)
		case *decodeBench:
			rec = runDecodeBench(*perfLabel, *perfPasses)
		default:
			rec = runPerf(*perfLabel, *perfShapesFlag, *perfPasses)
		}
		out := json.NewEncoder(os.Stdout)
		out.SetIndent("", "  ")
		if err := out.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Compare before appending: -baseline and -json may name the
		// same trajectory file, and the regression check must run
		// against the previous last record, not the fresh one.
		compareErr := error(nil)
		if *baseline != "" {
			compareErr = comparePerf(rec, *baseline, *maxReg)
		}
		if *perfJSON != "" {
			if err := appendPerfFile(*perfJSON, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "perf: appended record to %s\n", *perfJSON)
		}
		if compareErr != nil {
			fmt.Fprintln(os.Stderr, compareErr)
			os.Exit(1)
		}
		if *decodeBench && *bleuFloor > 0 {
			for _, res := range rec.Results {
				if res.IsDecode() && res.DecodeAgreementBLEU < *bleuFloor {
					fmt.Fprintf(os.Stderr, "decode: %s agreement BLEU %.4f below floor %.4f — screened decoding no longer tracks full decoding\n",
						res.Shape, res.DecodeAgreementBLEU, *bleuFloor)
					os.Exit(1)
				}
			}
		}
		return
	}

	if *pprofAddr != "" {
		addr, err := enmc.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/\n", addr)
	}
	if *metrics {
		enmc.EnableDRAMMetrics()
	}
	var tracer *enmc.Tracer
	if *traceOut != "" {
		tracer = enmc.NewTracer()
		enmc.SetGlobalTracer(tracer)
		defer enmc.SetGlobalTracer(nil)
	}

	qo := experiments.QualityOptions{Seed: *seed}
	po := experiments.PerfOptions{}
	if *quick {
		qo.LTarget = 384
		qo.MaxHidden = 128
		qo.TrainSamples = 96
		qo.TestSamples = 48
		qo.Epochs = 4
		po.SampleRows = 2048
	}

	type exp struct {
		name string
		run  func() (*experiments.Table, error)
	}
	all := []exp{
		{"table2", wrap(experiments.Table2)},
		{"table3", wrap(experiments.Table3)},
		{"table4", wrap(experiments.Table4)},
		{"table5", wrap(experiments.Table5)},
		{"fig4", wrap(experiments.Fig4)},
		{"fig5a", wrap(experiments.Fig5a)},
		{"fig5b", wrap(experiments.Fig5b)},
		{"fig11", func() (*experiments.Table, error) { return experiments.Fig11(qo) }},
		{"fig12", func() (*experiments.Table, error) { return experiments.Fig12(qo) }},
		{"fig13", func() (*experiments.Table, error) { return experiments.Fig13(po) }},
		{"fig14", func() (*experiments.Table, error) { return experiments.Fig14(po) }},
		{"fig15", func() (*experiments.Table, error) { return experiments.Fig15(po) }},
		{"ablations", func() (*experiments.Table, error) { return experiments.Ablations(qo) }},
		{"ext-scaleout", func() (*experiments.Table, error) { return experiments.ExtScaleOut(po) }},
		{"ext-host", func() (*experiments.Table, error) { return experiments.ExtHostInterface(po) }},
		{"ext-beam", func() (*experiments.Table, error) { return experiments.ExtBeam(qo) }},
		{"ext-gpu", func() (*experiments.Table, error) { return experiments.ExtGPU(po) }},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}

	for _, e := range all {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t)
			fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s (load in chrome://tracing)\n", tracer.SpanCount(), *traceOut)
	}
	if *metrics {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(enmc.MetricsSnapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func wrap(f func() *experiments.Table) func() (*experiments.Table, error) {
	return func() (*experiments.Table, error) { return f(), nil }
}
