package main

// Streaming-decode benchmark harness: -decode measures one screened
// autoregressive decode step (screen → top-m exact → argmax → state
// update) with the cross-step candidate cache off and on, and appends
// the result to the same governed trajectory as -perf/-wire. The
// acceptance comparison (cached vs uncached speedup) is WITHIN one
// record, so it stays valid across machines.
//
// Unlike the kernel shapes, the decode shape needs a *trained*
// screener over a structured workload: the cache hit rate, the
// windowed candidate overlap behind it, and the screened-vs-full
// agreement BLEU are properties of real screening behavior, not of
// kernel time, and random weights would make all three meaningless.
// -bleu-floor turns the BLEU measurement into a quality gate: CI
// fails when screened decoding stops agreeing with full decoding.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"enmc/internal/core"
	"enmc/internal/decode"
	"enmc/internal/metrics"
	"enmc/internal/quant"
	"enmc/internal/report"
	"enmc/internal/workload"
)

// decodeShape is one decode workload: l classes, d hidden, k reduced,
// top-m screening budget, maxLen tokens per session.
type decodeShape struct {
	Name    string
	L, D, K int
	M       int
	MaxLen  int
}

// The shape sits in the regime the decode service targets: a
// screener strong enough (k = d/2) that its top-m survivors contain
// the exact argmax nearly every step — screened decoding only agrees
// with full decoding when that holds, and the agreement-BLEU gate
// exists to notice when it stops holding.
var decodeShapes = []decodeShape{
	{Name: "decode-demo-1k", L: 1024, D: 64, K: 32, M: 192, MaxLen: 32},
}

// overlapWindow matches the candidate cache's effective history depth
// (the auto-sized cache holds ~4×m slots, i.e. about four steps of
// survivors) — the overlap that predicts the hit rate is against the
// union of the last few steps, not just the previous one.
const overlapWindow = 4

func buildDecodeModel(s decodeShape) (*workload.Instance, *core.Screener, *workload.Decoder) {
	inst := workload.Generate(
		workload.Spec{Name: s.Name, Categories: s.L, Hidden: s.D, LatentRank: 16, ZipfS: 1},
		workload.GenOptions{Seed: 7, Train: 512, Valid: 32, Test: 16})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: s.L, Hidden: s.D, Reduced: s.K, Precision: quant.INT8, Seed: 7,
	}, core.TrainOptions{Epochs: 5, Seed: 8})
	if err != nil {
		panic(err)
	}
	return inst, scr, workload.NewDecoderFor(inst.Classifier, 7, s.MaxLen)
}

// runDecodeBench measures every decode shape over `passes` interleaved
// passes and returns a schema-1 record for the governed trajectory.
func runDecodeBench(label string, passes int) report.PerfRecord {
	if passes < 1 {
		passes = 1
	}
	rec := report.PerfRecord{
		Schema:     report.PerfSchemaVersion,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	const minTime = 300 * time.Millisecond
	const maxIters = 100
	ctx := context.Background()
	for _, s := range decodeShapes {
		fmt.Fprintf(os.Stderr, "decode: building %s (l=%d d=%d k=%d m=%d len=%d)...\n",
			s.Name, s.L, s.D, s.K, s.M, s.MaxLen)
		inst, scr, dec := buildDecodeModel(s)
		h0 := inst.Test[0]

		res := report.PerfResult{Shape: s.Name, L: s.L, D: s.D, K: s.K, M: s.M, Passes: passes}

		// One full greedy session through a scorer: the timed unit is
		// MaxLen screened steps including the state update, reported per
		// token. The cached scorer keeps its cache across iterations —
		// steady-state warmth is exactly what the cached number claims.
		h := make([]float32, dec.Hidden())
		hn := make([]float32, dec.Hidden())
		session := func(sc decode.Scorer) {
			dec.NormalizeStartInto(h, h0)
			for t := 0; t < dec.MaxLen(); t++ {
				st, err := sc.ScoreStep(ctx, h, s.M, 1)
				if err != nil {
					panic(err)
				}
				dec.StepInto(hn, h, st.Classes[0], t)
				h, hn = hn, h
			}
		}
		uncachedScorer := decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{CacheSlots: -1})
		cachedScorer := decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{VerifyEvery: -1})
		uncached := make(series, 0, passes)
		cached := make(series, 0, passes)
		for p := 0; p < passes; p++ {
			uncached = append(uncached, timeIt(minTime, maxIters, func() { session(uncachedScorer) }))
			cached = append(cached, timeIt(minTime, maxIters, func() { session(cachedScorer) }))
		}
		uncachedScorer.Close()
		cachedScorer.Close()
		steps := float64(dec.MaxLen())
		res.DecodeTokenNsOp = uncached.min() / steps
		res.DecodeCachedTokenNsOp = cached.min() / steps
		res.CV = map[string]float64{
			report.MetricDecodeToken:       uncached.cv(),
			report.MetricDecodeCachedToken: cached.cv(),
		}

		res.DecodeCacheHitRate = measureHitRate(ctx, inst, scr, dec, s.M)
		res.DecodeOverlap = measureDecodeOverlap(inst, scr, dec, s.M)
		res.DecodeAgreementBLEU = measureAgreementBLEU(ctx, inst, scr, dec, s.M)

		fmt.Fprintf(os.Stderr, "decode: %-14s tok %7.1f µs  cached %7.1f µs  speedup %.2fx  hit %.1f%%  overlap %.1f%%  bleu %.4f  (passes %d, max cv %.1f%%)\n",
			s.Name, res.DecodeTokenNsOp/1e3, res.DecodeCachedTokenNsOp/1e3,
			res.DecodeTokenNsOp/res.DecodeCachedTokenNsOp,
			100*res.DecodeCacheHitRate, 100*res.DecodeOverlap, res.DecodeAgreementBLEU,
			passes, 100*maxCV(res.CV))
		rec.Results = append(rec.Results, res)
	}
	return rec
}

// measureHitRate runs fresh cached sessions over the probe set and
// accumulates the scorer's own hit/miss accounting — one cold cache
// per sequence, so the number includes the warm-up misses a real
// session pays.
func measureHitRate(ctx context.Context, inst *workload.Instance, scr *core.Screener, dec *workload.Decoder, m int) float64 {
	var hits, misses int
	h := make([]float32, dec.Hidden())
	hn := make([]float32, dec.Hidden())
	for _, h0 := range inst.Test {
		sc := decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{VerifyEvery: -1})
		dec.NormalizeStartInto(h, h0)
		for t := 0; t < dec.MaxLen(); t++ {
			st, err := sc.ScoreStep(ctx, h, m, 1)
			if err != nil {
				panic(err)
			}
			hits += st.CacheHits
			misses += st.CacheMisses
			dec.StepInto(hn, h, st.Classes[0], t)
			h, hn = hn, h
		}
		sc.Close()
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// measureDecodeOverlap reports the mean fraction of each step's
// screener survivors already surfaced within the previous
// overlapWindow steps of the same sequence — the temporal locality
// the candidate cache converts into hits.
func measureDecodeOverlap(inst *workload.Instance, scr *core.Screener, dec *workload.Decoder, m int) float64 {
	sc := core.GetScratch()
	defer sc.Release()
	var sum float64
	var steps int
	for _, h0 := range inst.Test {
		var hist [][]int
		classify := func(h []float32) int {
			res := core.ClassifyApproxInto(inst.Classifier, scr, h, core.TopM(m), sc)
			if len(hist) > 0 {
				seen := map[int]bool{}
				for _, step := range hist {
					for _, c := range step {
						seen[c] = true
					}
				}
				shared := 0
				for _, c := range res.Candidates {
					if seen[c] {
						shared++
					}
				}
				sum += float64(shared) / float64(len(res.Candidates))
				steps++
			}
			hist = append(hist, append([]int(nil), res.Candidates...))
			if len(hist) > overlapWindow {
				hist = hist[1:]
			}
			return res.Predict()
		}
		dec.Decode(h0, dec.MaxLen(), classify)
	}
	if steps == 0 {
		return 0
	}
	return sum / float64(steps)
}

// measureAgreementBLEU decodes every probe sequence twice — screened
// (cached scorer, the serving path) and full (exact argmax over all l
// classes) — and scores the screened sequences against the full ones
// as corpus BLEU. This is the committed quality gate's number.
func measureAgreementBLEU(ctx context.Context, inst *workload.Instance, scr *core.Screener, dec *workload.Decoder, m int) float64 {
	var cands, refs [][]int
	for _, h0 := range inst.Test {
		sc := decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{})
		screened := dec.Decode(h0, dec.MaxLen(), func(h []float32) int {
			st, err := sc.ScoreStep(ctx, h, m, 1)
			if err != nil {
				panic(err)
			}
			return st.Classes[0]
		})
		sc.Close()
		full := dec.Decode(h0, dec.MaxLen(), inst.Classifier.Predict)
		cands = append(cands, screened)
		refs = append(refs, full)
	}
	return metrics.BLEU(cands, refs)
}
