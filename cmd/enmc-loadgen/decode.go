package main

// The -decode scenario: instead of request/response classification
// traffic, each "request" is a streaming /v1/decode session — open
// with a random h0, read token frames as they arrive, finish on the
// terminal done frame. The latency shape of a stream is different
// from a unary call, so the scenario measures what a stream consumer
// feels: TTFT (request start → first token frame), the inter-token
// gap distribution, and per-session token counts — plus the count of
// dropped streams (cut before their done frame), which the cluster
// failover smoke asserts is zero.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"enmc/internal/report"
)

// decodeResult is one session's observation.
type decodeResult struct {
	code       int // status of the opening response; 0 = transport error
	dropped    bool
	evicted    bool
	tokens     int
	ttft       time.Duration
	gaps       []time.Duration
	latency    time.Duration // whole-session wall time
	done       time.Time
	target     int
	retryAfter string
	bytesOut   int64
	bytesIn    int64
}

// decodeFrame is the superset of the server's token and done frames
// the scenario needs (schema in internal/server/decode.go).
type decodeFrame struct {
	Done    bool   `json:"done"`
	T       int    `json:"t"`
	Evicted bool   `json:"evicted"`
	Error   string `json:"error"`
}

func runDecode(client *http.Client, p *pool, hosts []string, dim, maxTokens int, mode string, width int,
	seed int64, rate float64, workers int, duration time.Duration,
	scenario string, failOnError, failOnDropped, logJSON bool) {
	var (
		mu      sync.Mutex
		results []decodeResult
	)
	record := func(r decodeResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	runStart := time.Now()
	deadline := runStart.Add(duration)
	var wg sync.WaitGroup
	if rate > 0 {
		// Open loop: sessions arrive at the configured rate no matter
		// how long earlier sessions stream for.
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		sem := make(chan struct{}, 4096)
		rng := rand.New(rand.NewSource(seed))
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for now := range ticker.C {
			if !now.Before(deadline) {
				break
			}
			body := decodePayload(rng, dim, mode, width, maxTokens)
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(issueDecode(client, p, body))
					<-sem
				}()
			default:
				record(decodeResult{code: 0}) // shed at the generator
			}
		}
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(id)))
				for time.Now().Before(deadline) {
					record(issueDecode(client, p, decodePayload(rng, dim, mode, width, maxTokens)))
				}
			}(w)
		}
	}
	wg.Wait()
	summarizeDecode(results, hosts, scenario, duration, runStart, failOnError, failOnDropped, logJSON)
}

func decodePayload(rng *rand.Rand, dim int, mode string, width, maxTokens int) []byte {
	h := make([]float32, dim)
	for i := range h {
		h[i] = float32(rng.NormFloat64())
	}
	v := map[string]interface{}{"h0": h, "stream": "ndjson"}
	if mode != "" {
		v["mode"] = mode
	}
	if width > 0 {
		v["width"] = width
	}
	if maxTokens > 0 {
		v["max_tokens"] = maxTokens
	}
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}

// issueDecode opens one session and consumes its stream to the end,
// timestamping every frame.
func issueDecode(client *http.Client, p *pool, body []byte) decodeResult {
	target, url := p.pick()
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return decodeResult{code: 0, latency: time.Since(start), done: time.Now(), target: target, bytesOut: int64(len(body))}
	}
	defer resp.Body.Close()
	r := decodeResult{
		code: resp.StatusCode, target: target,
		retryAfter: resp.Header.Get("Retry-After"),
		bytesOut:   int64(len(body)),
	}
	counted := &countReader{r: resp.Body}
	if resp.StatusCode == http.StatusOK {
		sawDone := false
		last := start
		sc := bufio.NewScanner(counted)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			now := time.Now()
			var f decodeFrame
			if err := json.Unmarshal(line, &f); err != nil {
				break // garbage mid-stream counts as a drop
			}
			if f.Done {
				sawDone = true
				r.evicted = f.Evicted
				break
			}
			if r.tokens == 0 {
				r.ttft = now.Sub(start)
			} else {
				r.gaps = append(r.gaps, now.Sub(last))
			}
			last = now
			r.tokens++
		}
		// A 200 whose stream ends (EOF, read error, bad frame) before
		// the terminal done frame was cut mid-flight.
		r.dropped = !sawDone
	}
	_, _ = io.Copy(io.Discard, counted)
	r.bytesIn = counted.n
	r.latency = time.Since(start)
	r.done = time.Now()
	return r
}

func summarizeDecode(results []decodeResult, hosts []string, scenario string, d time.Duration,
	runStart time.Time, failOnError, failOnDropped, logJSON bool) {
	var ok, dropped, evicted, tokens int
	var bytesOut, bytesIn int64
	var ttfts, gaps, sessLats []time.Duration
	tokMin, tokMax := 0, 0
	errByStatus := map[int]int{}
	for _, r := range results {
		bytesOut += r.bytesOut
		bytesIn += r.bytesIn
		if r.code != http.StatusOK {
			errByStatus[r.code]++
			continue
		}
		if r.dropped {
			dropped++
			continue
		}
		ok++
		tokens += r.tokens
		if r.evicted {
			evicted++
		}
		if r.tokens > 0 {
			ttfts = append(ttfts, r.ttft)
			if ok == 1 || r.tokens < tokMin {
				tokMin = r.tokens
			}
			if r.tokens > tokMax {
				tokMax = r.tokens
			}
		}
		gaps = append(gaps, r.gaps...)
		sessLats = append(sessLats, r.latency)
	}
	ms := func(v time.Duration) float64 { return float64(v) / float64(time.Millisecond) }
	sortDur := func(s []time.Duration) {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	sortDur(ttfts)
	sortDur(gaps)
	sortDur(sessLats)

	if logJSON {
		out := report.LoadReport{
			Schema:          report.LoadSchemaV2,
			Scenario:        scenario,
			Date:            runStart.UTC().Format("2006-01-02"),
			Requests:        len(results),
			DurationSeconds: d.Seconds(),
			OK:              ok,
			BytesOut:        bytesOut,
			BytesIn:         bytesIn,
			WireMBPerSec:    mbPerSec(bytesOut+bytesIn, d),
			Decode: &report.LoadDecode{
				Sessions:            len(results),
				OK:                  ok,
				DroppedStreams:      dropped,
				Evicted:             evicted,
				Tokens:              tokens,
				TokensPerSec:        float64(tokens) / d.Seconds(),
				TokensPerSessionMin: tokMin,
				TokensPerSessionMax: tokMax,
			},
		}
		if ok > 0 {
			out.Decode.TokensPerSessionMean = float64(tokens) / float64(ok)
		}
		if len(errByStatus) > 0 {
			out.Errors = map[string]int{}
			for c, n := range errByStatus {
				label := fmt.Sprintf("%d", c)
				if c == 0 {
					label = "transport"
				}
				out.Errors[label] = n
			}
		}
		if len(sessLats) > 0 {
			out.P50Ms, out.P90Ms = ms(quantile(sessLats, 0.50)), ms(quantile(sessLats, 0.90))
			out.P99Ms, out.MaxMs = ms(quantile(sessLats, 0.99)), ms(sessLats[len(sessLats)-1])
		}
		if len(ttfts) > 0 {
			out.Decode.TTFTP50Ms, out.Decode.TTFTP90Ms = ms(quantile(ttfts, 0.50)), ms(quantile(ttfts, 0.90))
			out.Decode.TTFTP99Ms, out.Decode.TTFTMaxMs = ms(quantile(ttfts, 0.99)), ms(ttfts[len(ttfts)-1])
		}
		if len(gaps) > 0 {
			out.Decode.GapP50Ms = ms(quantile(gaps, 0.50))
			out.Decode.GapP99Ms = ms(quantile(gaps, 0.99))
			out.Decode.GapMaxMs = ms(gaps[len(gaps)-1])
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			panic(err)
		}
	} else {
		fmt.Printf("decode sessions: %d over %s\n", len(results), d)
		fmt.Printf("  ok: %d (%d tokens, %.1f tok/s)  dropped: %d  evicted: %d\n",
			ok, tokens, float64(tokens)/d.Seconds(), dropped, evicted)
		codes := make([]int, 0, len(errByStatus))
		for c := range errByStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		if len(codes) == 0 {
			fmt.Printf("  errors: none\n")
		} else {
			fmt.Printf("  errors:")
			for _, c := range codes {
				label := fmt.Sprintf("%d %s", c, http.StatusText(c))
				if c == 0 {
					label = "transport/shed"
				}
				fmt.Printf("  [%s] %d (%.1f%%)", label, errByStatus[c], pct(errByStatus[c], len(results)))
			}
			fmt.Println()
		}
		if len(ttfts) > 0 {
			fmt.Printf("  ttft p50 %s  p90 %s  p99 %s  max %s\n",
				quantile(ttfts, 0.50), quantile(ttfts, 0.90), quantile(ttfts, 0.99), ttfts[len(ttfts)-1])
		}
		if len(gaps) > 0 {
			fmt.Printf("  inter-token gap p50 %s  p99 %s  max %s\n",
				quantile(gaps, 0.50), quantile(gaps, 0.99), gaps[len(gaps)-1])
		}
		if ok > 0 {
			fmt.Printf("  tokens/session mean %.1f  min %d  max %d\n",
				float64(tokens)/float64(ok), tokMin, tokMax)
		}
		if len(sessLats) > 0 {
			fmt.Printf("  session p50 %s  p99 %s  max %s\n",
				quantile(sessLats, 0.50), quantile(sessLats, 0.99), sessLats[len(sessLats)-1])
		}
		if n := len(results); n > 0 {
			fmt.Printf("  wire: %.0f B/req out  %.0f B/req in  %.2f MB/s\n",
				float64(bytesOut)/float64(n), float64(bytesIn)/float64(n), mbPerSec(bytesOut+bytesIn, d))
		}
	}

	if ok == 0 {
		fmt.Fprintln(os.Stderr, "no successful decode sessions")
		os.Exit(1)
	}
	if failOnError && len(errByStatus) > 0 {
		fmt.Fprintf(os.Stderr, "fail-on-error: %d sessions did not get 200\n", len(results)-ok-dropped)
		os.Exit(1)
	}
	if failOnDropped && dropped > 0 {
		fmt.Fprintf(os.Stderr, "fail-on-dropped: %d streams were cut before their done frame\n", dropped)
		os.Exit(1)
	}
}
