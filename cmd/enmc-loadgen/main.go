// Command enmc-loadgen drives an enmc-serve instance with synthetic
// traffic and reports throughput and latency percentiles — the
// harness that makes the serving layer's admission-control and
// degradation behavior observable.
//
// Two load models:
//
//	closed loop (default): -concurrency N workers, each issuing the
//	    next request as soon as the previous answers — throughput
//	    finds the server's capacity.
//	open loop: -rate R fires R requests/second regardless of
//	    completions (bounded outstanding) — the model that exposes
//	    queueing collapse and the 429 admission path.
//
// Usage:
//
//	enmc-loadgen -addr localhost:8080 -dim 128 -duration 10s -concurrency 16
//	enmc-loadgen -addr localhost:8080 -dim 128 -rate 2000 -duration 10s
//	enmc-loadgen -addr localhost:8080 -dim 128 -batch 64   # /v1/classify_batch
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type result struct {
	code     int // HTTP status; 0 for transport error
	latency  time.Duration
	degraded bool
	items    int // classifications carried (batch size or 1)
}

func main() {
	addr := flag.String("addr", "localhost:8080", "enmc-serve host:port")
	dim := flag.Int("dim", 128, "hidden dimension (must match the server)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
	batch := flag.Int("batch", 0, "send /v1/classify_batch with this many items (0: /v1/classify)")
	topK := flag.Int("topk", 5, "top_k to request")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 42, "feature generation seed")
	flag.Parse()

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency + 64},
	}
	url := "http://" + *addr + "/v1/classify"
	if *batch > 0 {
		url = "http://" + *addr + "/v1/classify_batch"
	}

	var (
		mu      sync.Mutex
		results []result
	)
	record := func(r result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	if *rate > 0 {
		openLoop(&wg, client, url, *dim, *batch, *topK, *seed, *rate, deadline, record)
	} else {
		closedLoop(&wg, client, url, *dim, *batch, *topK, *seed, *concurrency, deadline, record)
	}
	wg.Wait()
	report(results, *duration)
}

func closedLoop(wg *sync.WaitGroup, client *http.Client, url string, dim, batch, topK int, seed int64, workers int, deadline time.Time, record func(result)) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			for time.Now().Before(deadline) {
				record(issue(client, url, payload(rng, dim, batch, topK)))
			}
		}(w)
	}
}

func openLoop(wg *sync.WaitGroup, client *http.Client, url string, dim, batch, topK int, seed int64, rate float64, deadline time.Time, record func(result)) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// Bound outstanding requests so an unresponsive server degrades
	// to shed load here rather than unbounded goroutine growth.
	sem := make(chan struct{}, 4096)
	rng := rand.New(rand.NewSource(seed))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := range ticker.C {
		if !now.Before(deadline) {
			return
		}
		body := payload(rng, dim, batch, topK)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				record(issue(client, url, body))
				<-sem
			}()
		default:
			record(result{code: 0}) // shed at the generator
		}
	}
}

func payload(rng *rand.Rand, dim, batch, topK int) []byte {
	vec := func() []float32 {
		h := make([]float32, dim)
		for i := range h {
			h[i] = float32(rng.NormFloat64())
		}
		return h
	}
	var v interface{}
	if batch > 0 {
		b := make([][]float32, batch)
		for i := range b {
			b[i] = vec()
		}
		v = map[string]interface{}{"batch": b, "top_k": topK}
	} else {
		v = map[string]interface{}{"h": vec(), "top_k": topK}
	}
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}

func issue(client *http.Client, url string, body []byte) result {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return result{code: 0, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	r := result{code: resp.StatusCode, latency: time.Since(start), items: 1}
	if resp.StatusCode == http.StatusOK {
		var parsed struct {
			Degraded bool `json:"degraded"`
			Results  []struct {
				Class int `json:"class"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&parsed); err == nil {
			r.degraded = parsed.Degraded
			if n := len(parsed.Results); n > 0 {
				r.items = n
			}
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return r
}

func report(results []result, d time.Duration) {
	var ok, too, unavail, other, transport, degraded, items int
	var lats []time.Duration
	for _, r := range results {
		switch {
		case r.code == http.StatusOK:
			ok++
			items += r.items
			lats = append(lats, r.latency)
			if r.degraded {
				degraded++
			}
		case r.code == http.StatusTooManyRequests:
			too++
		case r.code == http.StatusServiceUnavailable:
			unavail++
		case r.code == 0:
			transport++
		default:
			other++
		}
	}
	fmt.Printf("requests: %d over %s\n", len(results), d)
	fmt.Printf("  ok: %d (%d classifications, %.1f/s)  degraded: %d (%.1f%%)\n",
		ok, items, float64(items)/d.Seconds(), degraded, pct(degraded, ok))
	fmt.Printf("  429 overload: %d (%.1f%%)  503 draining: %d  other: %d  transport/shed: %d\n",
		too, pct(too, len(results)), unavail, other, transport)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("  latency p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(lats, 0.50), quantile(lats, 0.90), quantile(lats, 0.99), lats[len(lats)-1])
	}
	if ok == 0 {
		fmt.Fprintln(os.Stderr, "no successful requests")
		os.Exit(1)
	}
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
