// Command enmc-loadgen drives an enmc-serve instance with synthetic
// traffic and reports throughput and latency percentiles — the
// harness that makes the serving layer's admission-control and
// degradation behavior observable.
//
// Two load models:
//
//	closed loop (default): -concurrency N workers, each issuing the
//	    next request as soon as the previous answers — throughput
//	    finds the server's capacity.
//	open loop: -rate R fires R requests/second regardless of
//	    completions (bounded outstanding) — the model that exposes
//	    queueing collapse and the 429 admission path.
//
// Usage:
//
//	enmc-loadgen -addr localhost:8080 -dim 128 -duration 10s -concurrency 16
//	enmc-loadgen -addr localhost:8080 -dim 128 -rate 2000 -duration 10s
//	enmc-loadgen -addr localhost:8080 -dim 128 -batch 64   # /v1/classify_batch
//	enmc-loadgen -targets "lb1:8080,lb2:8080" -dim 128     # round-robin a router pool
//	enmc-loadgen -addr localhost:8080 -dim 128 \
//	    -tenant-mix "a:interactive:8,b:batch:2"         # multi-tenant QoS:
//	                                                    # weighted tenant traffic
//	                                                    # (X-Enmc-Api-Key = tenant
//	                                                    # name), per-tenant
//	                                                    # req/ok/429/503/p50/p99
//	enmc-loadgen -addr localhost:8080 -dim 128 -decode -rate 20
//	                                                       # streaming /v1/decode
//	                                                       # sessions: TTFT and
//	                                                       # inter-token-gap
//	                                                       # percentiles, dropped-
//	                                                       # stream accounting
//
// With -targets (comma-separated host:port list) each request
// round-robins across the pool and the report adds a per-target
// latency/error breakdown — the harness for load-testing a set of
// cluster routers from one process.
//
// The report tracks the serving layer's observability contract too:
// how many responses echoed X-Request-Id (with per-target samples for
// cross-referencing server request logs) and whether 429s carried
// Retry-After. Bytes on the wire are accounted per request (body out;
// Content-Length in, counting the stream when the server chunks) and
// reported as B/req and MB/s, total and per target. -log-json emits
// the whole report as one JSON document on stdout for CI assertions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/report"
)

type result struct {
	code       int // HTTP status; 0 for transport error
	latency    time.Duration
	done       time.Time // completion timestamp (success-gap analysis)
	degraded   bool
	partial    bool   // response merged without some cluster shards
	items      int    // classifications carried (batch size or 1)
	target     int    // index into the target pool
	reqID      string // X-Request-Id echoed by the server
	retryAfter string // Retry-After on 429s (admission control)
	bytesOut   int64  // request body bytes sent
	bytesIn    int64  // response body bytes received
	tenant     int    // index into the -tenant-mix entries; -1 single-tenant
}

// countReader counts the bytes read through it — the fallback for
// responses the server streams without a Content-Length.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// pool round-robins requests across the target URLs.
type pool struct {
	urls []string
	next atomic.Uint64
}

func (p *pool) pick() (int, string) {
	i := int(p.next.Add(1)-1) % len(p.urls)
	return i, p.urls[i]
}

// mixEntry is one -tenant-mix entry: the tenant's name (sent as its
// API key), the class its traffic is expected to land in (reporting
// only — the server's tenant config is authoritative), and its draw
// weight.
type mixEntry struct {
	name, class string
	weight      int
}

// parseMix parses "a:interactive:8,b:batch:2". Weight defaults to 1;
// class may be empty ("a::3").
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		e := mixEntry{name: strings.TrimSpace(fields[0]), weight: 1}
		if e.name == "" {
			return nil, fmt.Errorf("tenant-mix entry %q: empty tenant name", part)
		}
		if len(fields) > 1 {
			e.class = strings.TrimSpace(fields[1])
		}
		if len(fields) > 2 {
			w, err := strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil || w < 1 {
				return nil, fmt.Errorf("tenant-mix entry %q: bad weight", part)
			}
			e.weight = w
		}
		if len(fields) > 3 {
			return nil, fmt.Errorf("tenant-mix entry %q: want name:class:weight", part)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tenant-mix")
	}
	return out, nil
}

// pickTenant draws a mix index proportional to the entry weights.
func pickTenant(rng *rand.Rand, mix []mixEntry) int {
	total := 0
	for _, e := range mix {
		total += e.weight
	}
	n := rng.Intn(total)
	for i, e := range mix {
		n -= e.weight
		if n < 0 {
			return i
		}
	}
	return len(mix) - 1
}

func main() {
	addr := flag.String("addr", "localhost:8080", "enmc-serve host:port")
	targets := flag.String("targets", "", "comma-separated host:port pool round-robined per request (overrides -addr)")
	dim := flag.Int("dim", 128, "hidden dimension (must match the server)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
	batch := flag.Int("batch", 0, "send /v1/classify_batch with this many items (0: /v1/classify)")
	topK := flag.Int("topk", 5, "top_k to request")
	tenantMix := flag.String("tenant-mix", "", `weighted multi-tenant traffic: comma-separated name:class:weight entries (e.g. "a:interactive:8,b:batch:2"); each request carries X-Enmc-Api-Key = the drawn tenant's name, and the report adds a per-tenant breakdown`)
	decodeOn := flag.Bool("decode", false, "drive streaming /v1/decode sessions instead of classify traffic (-rate = session arrivals/s, -concurrency = closed-loop session workers)")
	decodeTokens := flag.Int("decode-tokens", 0, "tokens to request per decode session (0: session's max length)")
	decodeMode := flag.String("decode-mode", "greedy", "decode session mode: greedy or beam")
	decodeWidth := flag.Int("decode-width", 0, "beam width for -decode-mode beam")
	failOnDropped := flag.Bool("fail-on-dropped", false, "exit 1 if any decode stream was cut before its done frame (cluster failover smoke: failover must re-pin, not drop)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 42, "feature generation seed")
	failOnError := flag.Bool("fail-on-error", false, "exit 1 if any request gets a non-200 answer (hot-swap smoke: below capacity, every request must succeed)")
	failOnPartial := flag.Bool("fail-on-partial", false, "exit 1 if any 200 was flagged partial (cluster smoke: with a healthy replica left per shard, no response may degrade)")
	logJSON := flag.Bool("log-json", false, "emit the report as one JSON document on stdout instead of text (machine-readable for CI and enmc-report ingestion)")
	scenario := flag.String("scenario", "", "scenario name stamped into the -log-json report (how enmc-report groups and titles load-test rows)")
	flag.Parse()

	var mix []mixEntry
	if *tenantMix != "" {
		var err error
		mix, err = parseMix(*tenantMix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *decodeOn {
			fmt.Fprintln(os.Stderr, "-tenant-mix applies to classify traffic, not -decode")
			os.Exit(2)
		}
	}

	path := "/v1/classify"
	if *batch > 0 {
		path = "/v1/classify_batch"
	}
	if *decodeOn {
		path = "/v1/decode"
	}
	hosts := []string{*addr}
	if *targets != "" {
		hosts = hosts[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				hosts = append(hosts, t)
			}
		}
		if len(hosts) == 0 {
			fmt.Fprintln(os.Stderr, "empty -targets list")
			os.Exit(2)
		}
	}
	p := &pool{urls: make([]string, len(hosts))}
	for i, h := range hosts {
		p.urls[i] = "http://" + h + path
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency + 64},
	}

	if *decodeOn {
		runDecode(client, p, hosts, *dim, *decodeTokens, *decodeMode, *decodeWidth,
			*seed, *rate, *concurrency, *duration,
			*scenario, *failOnError, *failOnDropped, *logJSON)
		return
	}

	var (
		mu      sync.Mutex
		results []result
	)
	record := func(r result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}

	runStart := time.Now()
	deadline := runStart.Add(*duration)
	var wg sync.WaitGroup
	if *rate > 0 {
		openLoop(&wg, client, p, mix, *dim, *batch, *topK, *seed, *rate, deadline, record)
	} else {
		closedLoop(&wg, client, p, mix, *dim, *batch, *topK, *seed, *concurrency, deadline, record)
	}
	wg.Wait()
	summarize(results, hosts, mix, *scenario, *duration, runStart, time.Now(), *failOnError, *failOnPartial, *logJSON)
}

func closedLoop(wg *sync.WaitGroup, client *http.Client, p *pool, mix []mixEntry, dim, batch, topK int, seed int64, workers int, deadline time.Time, record func(result)) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			for time.Now().Before(deadline) {
				tn, key := drawTenant(rng, mix)
				r := issue(client, p, payload(rng, dim, batch, topK), key)
				r.tenant = tn
				record(r)
			}
		}(w)
	}
}

// drawTenant picks this request's tenant identity from the mix: its
// index (for the per-tenant report) and its API key. No mix means the
// anonymous single-tenant run the loadgen always supported.
func drawTenant(rng *rand.Rand, mix []mixEntry) (int, string) {
	if len(mix) == 0 {
		return -1, ""
	}
	i := pickTenant(rng, mix)
	return i, mix[i].name
}

func openLoop(wg *sync.WaitGroup, client *http.Client, p *pool, mix []mixEntry, dim, batch, topK int, seed int64, rate float64, deadline time.Time, record func(result)) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// Bound outstanding requests so an unresponsive server degrades
	// to shed load here rather than unbounded goroutine growth.
	sem := make(chan struct{}, 4096)
	rng := rand.New(rand.NewSource(seed))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := range ticker.C {
		if !now.Before(deadline) {
			return
		}
		body := payload(rng, dim, batch, topK)
		tn, key := drawTenant(rng, mix)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := issue(client, p, body, key)
				r.tenant = tn
				record(r)
				<-sem
			}()
		default:
			record(result{code: 0, tenant: tn}) // shed at the generator
		}
	}
}

func payload(rng *rand.Rand, dim, batch, topK int) []byte {
	vec := func() []float32 {
		h := make([]float32, dim)
		for i := range h {
			h[i] = float32(rng.NormFloat64())
		}
		return h
	}
	var v interface{}
	if batch > 0 {
		b := make([][]float32, batch)
		for i := range b {
			b[i] = vec()
		}
		v = map[string]interface{}{"batch": b, "top_k": topK}
	} else {
		v = map[string]interface{}{"h": vec(), "top_k": topK}
	}
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}

func issue(client *http.Client, p *pool, body []byte, tenantKey string) result {
	target, url := p.pick()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantKey != "" {
		req.Header.Set("X-Enmc-Api-Key", tenantKey)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return result{code: 0, latency: time.Since(start), done: time.Now(), target: target, bytesOut: int64(len(body))}
	}
	defer resp.Body.Close()
	r := result{
		code: resp.StatusCode, latency: time.Since(start), done: time.Now(),
		items: 1, target: target,
		reqID:      resp.Header.Get("X-Request-Id"),
		retryAfter: resp.Header.Get("Retry-After"),
		bytesOut:   int64(len(body)),
	}
	// Bytes-on-wire accounting: trust Content-Length when the server
	// declared one, count the stream otherwise (chunked responses).
	// Either way the body is drained to EOF — also what lets the
	// transport return the connection to the keep-alive pool.
	counted := &countReader{r: resp.Body}
	if resp.StatusCode == http.StatusOK {
		var parsed struct {
			Degraded bool `json:"degraded"`
			Partial  bool `json:"partial"`
			Results  []struct {
				Class int `json:"class"`
			} `json:"results"`
		}
		if err := json.NewDecoder(counted).Decode(&parsed); err == nil {
			r.degraded = parsed.Degraded
			r.partial = parsed.Partial
			if n := len(parsed.Results); n > 0 {
				r.items = n
			}
		}
	}
	_, _ = io.Copy(io.Discard, counted)
	if resp.ContentLength >= 0 {
		r.bytesIn = resp.ContentLength
	} else {
		r.bytesIn = counted.n
	}
	return r
}

func summarize(results []result, hosts []string, mix []mixEntry, scenario string, d time.Duration, runStart, runEnd time.Time, failOnError, failOnPartial, logJSON bool) {
	var ok, degraded, partial, items int
	var bytesOut, bytesIn int64
	var lats []time.Duration
	var successTimes []time.Time
	errByStatus := map[int]int{} // status → count; 0 = transport error / generator shed
	perTarget := make([]targetStats, len(hosts))
	for _, r := range results {
		t := &perTarget[r.target]
		t.total++
		t.bytesOut += r.bytesOut
		t.bytesIn += r.bytesIn
		bytesOut += r.bytesOut
		bytesIn += r.bytesIn
		// Observability satellites: every server response should echo a
		// request ID; 429s should carry Retry-After. Track both so the
		// smoke can assert the contract end to end.
		if r.reqID != "" {
			t.withReqID++
			if len(t.sampleIDs) < 3 {
				t.sampleIDs = append(t.sampleIDs, r.reqID)
			}
		}
		if r.code == http.StatusTooManyRequests && r.retryAfter != "" {
			t.retry429++
			if t.retryVals == nil {
				t.retryVals = map[string]bool{}
			}
			t.retryVals[r.retryAfter] = true
		}
		if r.code == http.StatusOK {
			ok++
			items += r.items
			lats = append(lats, r.latency)
			successTimes = append(successTimes, r.done)
			t.ok++
			t.lats = append(t.lats, r.latency)
			if r.degraded {
				degraded++
			}
			if r.partial {
				partial++
				t.partial++
			}
			continue
		}
		errByStatus[r.code]++
	}
	perTenant := tenantBreakdown(results, mix)
	if logJSON {
		reportJSON(results, hosts, scenario, perTarget, perTenant, errByStatus, lats, successTimes,
			ok, degraded, partial, items, d, runStart, runEnd)
		finish(results, ok, partial, len(errByStatus), failOnError, failOnPartial)
		return
	}
	fmt.Printf("requests: %d over %s\n", len(results), d)
	fmt.Printf("  ok: %d (%d classifications, %.1f/s)  degraded: %d (%.1f%%)  partial: %d (%.1f%%)\n",
		ok, items, float64(items)/d.Seconds(), degraded, pct(degraded, ok), partial, pct(partial, ok))

	// Per-status error breakdown, ascending by status code (0 =
	// transport error or generator shed).
	codes := make([]int, 0, len(errByStatus))
	for c := range errByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	if len(codes) == 0 {
		fmt.Printf("  errors: none\n")
	} else {
		fmt.Printf("  errors:")
		for _, c := range codes {
			label := fmt.Sprintf("%d %s", c, http.StatusText(c))
			if c == 0 {
				label = "transport/shed"
			}
			fmt.Printf("  [%s] %d (%.1f%%)", label, errByStatus[c], pct(errByStatus[c], len(results)))
		}
		fmt.Println()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("  latency p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(lats, 0.50), quantile(lats, 0.90), quantile(lats, 0.99), lats[len(lats)-1])
	}
	if n := len(results); n > 0 {
		fmt.Printf("  wire: %.0f B/req out  %.0f B/req in  %.2f MB/s\n",
			float64(bytesOut)/float64(n), float64(bytesIn)/float64(n), mbPerSec(bytesOut+bytesIn, d))
	}

	// Request-ID echo coverage (every server response should carry one)
	// and Retry-After presence on 429s, summed over the pool.
	var withID, retry429 int
	for _, t := range perTarget {
		withID += t.withReqID
		retry429 += t.retry429
	}
	fmt.Printf("  request-id echoed: %d/%d  429-with-retry-after: %d\n", withID, len(results), retry429)

	// Max gap between successes, anchored at run start and end: a hot
	// swap (or drain bug) that stalls serving shows up here even when
	// every request eventually succeeds.
	if len(successTimes) > 0 {
		sort.Slice(successTimes, func(i, j int) bool { return successTimes[i].Before(successTimes[j]) })
		maxGap := successTimes[0].Sub(runStart)
		for i := 1; i < len(successTimes); i++ {
			if g := successTimes[i].Sub(successTimes[i-1]); g > maxGap {
				maxGap = g
			}
		}
		if g := runEnd.Sub(successTimes[len(successTimes)-1]); g > maxGap {
			maxGap = g
		}
		fmt.Printf("  max gap between successes: %s\n", maxGap.Round(time.Millisecond))
	}

	// Per-tenant breakdown of a -tenant-mix run: the QoS split.
	for _, tn := range perTenant {
		fmt.Printf("  tenant %-12s %-11s req %-6d ok %-6d 429 %-5d 503 %-4d other %-4d p50 %-9s p99 %s\n",
			tn.Tenant, tn.Class, tn.Requests, tn.OK, tn.Status429, tn.Status503, tn.OtherErrors,
			time.Duration(tn.P50Ms*float64(time.Millisecond)).Round(10*time.Microsecond),
			time.Duration(tn.P99Ms*float64(time.Millisecond)).Round(10*time.Microsecond))
	}

	// Per-target breakdown: only meaningful (and only printed) when a
	// -targets pool was given.
	if len(hosts) > 1 {
		for i, t := range perTarget {
			line := fmt.Sprintf("  target %-21s  req %d  ok %d  err %d", hosts[i], t.total, t.ok, t.total-t.ok)
			if t.partial > 0 {
				line += fmt.Sprintf("  partial %d", t.partial)
			}
			line += fmt.Sprintf("  req-id %d/%d", t.withReqID, t.total)
			if t.retry429 > 0 {
				line += fmt.Sprintf("  retry-after %d (%s)", t.retry429, strings.Join(sortedKeys(t.retryVals), ","))
			}
			if len(t.lats) > 0 {
				sort.Slice(t.lats, func(a, b int) bool { return t.lats[a] < t.lats[b] })
				line += fmt.Sprintf("  p50 %s  p99 %s", quantile(t.lats, 0.50), quantile(t.lats, 0.99))
			}
			line += fmt.Sprintf("  %.2f MB/s", mbPerSec(t.bytesOut+t.bytesIn, d))
			fmt.Println(line)
		}
	}

	finish(results, ok, partial, len(codes), failOnError, failOnPartial)
}

// finish applies the shared exit-code policy of both report formats.
func finish(results []result, ok, partial, errKinds int, failOnError, failOnPartial bool) {
	if ok == 0 {
		fmt.Fprintln(os.Stderr, "no successful requests")
		os.Exit(1)
	}
	if failOnError && errKinds > 0 {
		fmt.Fprintf(os.Stderr, "fail-on-error: %d requests did not get 200\n", len(results)-ok)
		os.Exit(1)
	}
	if failOnPartial && partial > 0 {
		fmt.Fprintf(os.Stderr, "fail-on-partial: %d responses were partial merges\n", partial)
		os.Exit(1)
	}
}

// tenantBreakdown folds the results into one report.LoadTenant per
// mix entry, in mix order.
func tenantBreakdown(results []result, mix []mixEntry) []report.LoadTenant {
	if len(mix) == 0 {
		return nil
	}
	out := make([]report.LoadTenant, len(mix))
	lats := make([][]time.Duration, len(mix))
	for i, e := range mix {
		out[i] = report.LoadTenant{Tenant: e.name, Class: e.class, Weight: e.weight}
	}
	for _, r := range results {
		if r.tenant < 0 || r.tenant >= len(mix) {
			continue
		}
		tn := &out[r.tenant]
		tn.Requests++
		switch r.code {
		case http.StatusOK:
			tn.OK++
			lats[r.tenant] = append(lats[r.tenant], r.latency)
			if r.degraded {
				tn.Degraded++
			}
		case http.StatusTooManyRequests:
			tn.Status429++
		case http.StatusServiceUnavailable:
			tn.Status503++
		default:
			tn.OtherErrors++
		}
	}
	ms := func(v time.Duration) float64 { return float64(v) / float64(time.Millisecond) }
	for i := range out {
		if len(lats[i]) == 0 {
			continue
		}
		sort.Slice(lats[i], func(a, b int) bool { return lats[i][a] < lats[i][b] })
		out[i].P50Ms = ms(quantile(lats[i], 0.50))
		out[i].P99Ms = ms(quantile(lats[i], 0.99))
	}
	return out
}

// reportJSON is the -log-json report: one machine-readable document on
// stdout with the aggregate stats plus the per-target request-ID and
// Retry-After observations CI smokes assert on. The document is a
// report.LoadReport — the type the enmc-report parser decodes — and
// carries the schema tag that parser checks, so a format change here
// without a matching bump there is caught instead of misread.
func reportJSON(results []result, hosts []string, scenario string, perTarget []targetStats, perTenant []report.LoadTenant, errByStatus map[int]int,
	lats []time.Duration, successTimes []time.Time,
	ok, degraded, partial, items int, d time.Duration, runStart, runEnd time.Time) {
	var bytesOut, bytesIn int64
	for _, t := range perTarget {
		bytesOut += t.bytesOut
		bytesIn += t.bytesIn
	}
	out := report.LoadReport{
		Schema:          report.LoadSchemaV2,
		Scenario:        scenario,
		Date:            runStart.UTC().Format("2006-01-02"),
		Requests:        len(results),
		DurationSeconds: d.Seconds(),
		OK:              ok,
		Classifications: items,
		PerSecond:       float64(items) / d.Seconds(),
		Degraded:        degraded,
		Partial:         partial,
		BytesOut:        bytesOut,
		BytesIn:         bytesIn,
		WireMBPerSec:    mbPerSec(bytesOut+bytesIn, d),
		Tenants:         perTenant,
	}
	if len(errByStatus) > 0 {
		out.Errors = map[string]int{}
		for c, n := range errByStatus {
			label := fmt.Sprintf("%d", c)
			if c == 0 {
				label = "transport"
			}
			out.Errors[label] = n
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(v time.Duration) float64 { return float64(v) / float64(time.Millisecond) }
		out.P50Ms, out.P90Ms = ms(quantile(lats, 0.50)), ms(quantile(lats, 0.90))
		out.P99Ms, out.MaxMs = ms(quantile(lats, 0.99)), ms(lats[len(lats)-1])
	}
	if len(successTimes) > 0 {
		sort.Slice(successTimes, func(i, j int) bool { return successTimes[i].Before(successTimes[j]) })
		maxGap := successTimes[0].Sub(runStart)
		for i := 1; i < len(successTimes); i++ {
			if g := successTimes[i].Sub(successTimes[i-1]); g > maxGap {
				maxGap = g
			}
		}
		if g := runEnd.Sub(successTimes[len(successTimes)-1]); g > maxGap {
			maxGap = g
		}
		out.MaxSuccessGapMs = float64(maxGap) / float64(time.Millisecond)
	}
	for i, t := range perTarget {
		jt := report.LoadTarget{
			Target: hosts[i], Requests: t.total, OK: t.ok, Errors: t.total - t.ok,
			Partial: t.partial, WithRequestID: t.withReqID, SampleRequestIDs: t.sampleIDs,
			RetryAfter429: t.retry429, RetryAfterValues: sortedKeys(t.retryVals),
			BytesOut: t.bytesOut, BytesIn: t.bytesIn,
			WireMBPerSec: mbPerSec(t.bytesOut+t.bytesIn, d),
		}
		if len(t.lats) > 0 {
			sort.Slice(t.lats, func(a, b int) bool { return t.lats[a] < t.lats[b] })
			jt.P50Ms = float64(quantile(t.lats, 0.50)) / float64(time.Millisecond)
			jt.P99Ms = float64(quantile(t.lats, 0.99)) / float64(time.Millisecond)
		}
		out.Targets = append(out.Targets, jt)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		panic(err)
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// targetStats accumulates the per-target breakdown of a -targets run,
// including the request-ID echo and 429 Retry-After observations.
type targetStats struct {
	total, ok, partial int
	withReqID          int
	sampleIDs          []string
	retry429           int
	retryVals          map[string]bool
	lats               []time.Duration
	bytesOut, bytesIn  int64
}

func mbPerSec(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
