// Command enmc-sim runs one cycle-level system simulation of a
// classification offload and prints timing, traffic and energy.
//
// Usage:
//
//	enmc-sim -design enmc -l 670091 -d 512 -batch 4
//	enmc-sim -design tensordimm -full -l 1000000 -d 512
//
// Designs: enmc, tensordimm, tensordimm-large, nda, chameleon.
package main

import (
	"flag"
	"fmt"
	"os"

	"enmc"
)

func main() {
	design := flag.String("design", "enmc", "NMP design: enmc, tensordimm, tensordimm-large, nda, chameleon")
	l := flag.Int("l", 267744, "categories")
	d := flag.Int("d", 512, "hidden dimension")
	k := flag.Int("k", 0, "reduced dimension (default d/4)")
	m := flag.Int("m", 0, "candidates per inference (default l/50)")
	batch := flag.Int("batch", 1, "batch size")
	sigmoid := flag.Bool("sigmoid", false, "multi-label (sigmoid) output")
	full := flag.Bool("full", false, "full classification instead of approximate screening")
	flag.Parse()

	task := enmc.SimTask{
		Categories:         *l,
		Hidden:             *d,
		Reduced:            *k,
		Candidates:         *m,
		Batch:              *batch,
		Sigmoid:            *sigmoid,
		FullClassification: *full,
	}
	res, err := enmc.Simulate(*design, task)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode := "approximate screening"
	if *full {
		mode = "full classification"
	}
	fmt.Printf("design:          %s (%s)\n", res.Design, mode)
	fmt.Printf("task:            l=%d d=%d batch=%d\n", *l, *d, *batch)
	fmt.Printf("offload time:    %.3f µs (%d rank cycles @ DDR4-2400)\n", res.Seconds*1e6, res.Cycles)
	fmt.Printf("per inference:   %.3f µs\n", res.Seconds*1e6/float64(*batch))
	fmt.Printf("rank traffic:    %.2f MB\n", float64(res.DRAMBytes)/(1<<20))
	fmt.Printf("energy:          %.3f mJ total\n", res.TotalJoules()*1e3)
	fmt.Printf("  DRAM static:   %.3f mJ\n", res.DRAMStaticJoules*1e3)
	fmt.Printf("  DRAM access:   %.3f mJ\n", res.DRAMAccessJoules*1e3)
	fmt.Printf("  logic:         %.3f mJ\n", res.LogicJoules*1e3)
}
