// Command enmc-sim runs one cycle-level system simulation of a
// classification offload and prints timing, traffic and energy.
//
// Usage:
//
//	enmc-sim -design enmc -l 670091 -d 512 -batch 4
//	enmc-sim -design tensordimm -full -l 1000000 -d 512
//	enmc-sim -trace out.json -metrics -json
//
// Designs: enmc, tensordimm, tensordimm-large, nda, chameleon.
//
// Observability:
//
//	-trace out.json  write the representative rank's execution as
//	                 Chrome trace-event JSON (chrome://tracing, Perfetto)
//	-metrics         dump the telemetry registry (incl. DRAM command
//	                 counters) as JSON to stderr after the run
//	-pprof addr      serve /debug/pprof, /debug/vars and /metrics on addr
//	-json            emit the full SimResult as JSON instead of text
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"enmc"
)

func main() {
	design := flag.String("design", "enmc", "NMP design: enmc, tensordimm, tensordimm-large, nda, chameleon")
	l := flag.Int("l", 267744, "categories")
	d := flag.Int("d", 512, "hidden dimension")
	k := flag.Int("k", 0, "reduced dimension (default d/4)")
	m := flag.Int("m", 0, "candidates per inference (default l/50)")
	batch := flag.Int("batch", 1, "batch size")
	sigmoid := flag.Bool("sigmoid", false, "multi-label (sigmoid) output")
	full := flag.Bool("full", false, "full classification instead of approximate screening")
	jsonOut := flag.Bool("json", false, "emit the full SimResult (incl. energy breakdown) as JSON")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON of the simulated rank to this file")
	metrics := flag.Bool("metrics", false, "dump the telemetry registry as JSON to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar/metrics HTTP on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := enmc.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/\n", addr)
	}
	if *metrics {
		enmc.EnableDRAMMetrics()
	}

	task := enmc.SimTask{
		Categories:         *l,
		Hidden:             *d,
		Reduced:            *k,
		Candidates:         *m,
		Batch:              *batch,
		Sigmoid:            *sigmoid,
		FullClassification: *full,
	}
	var opts []enmc.Option
	var tracer *enmc.Tracer
	if *traceOut != "" {
		tracer = enmc.NewTracer()
		opts = append(opts, enmc.WithTracer(tracer))
	}
	res, err := enmc.Simulate(*design, task, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s (load in chrome://tracing)\n", tracer.SpanCount(), *traceOut)
	}

	mode := "approximate screening"
	if *full {
		mode = "full classification"
	}
	if *jsonOut {
		out := struct {
			enmc.SimResult
			Mode        string  `json:"Mode"`
			TotalJoules float64 `json:"TotalJoules"`
		}{res, mode, res.TotalJoules()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("design:          %s (%s)\n", res.Design, mode)
		fmt.Printf("task:            l=%d d=%d batch=%d\n", *l, *d, *batch)
		fmt.Printf("offload time:    %.3f µs (%d rank cycles @ DDR4-2400)\n", res.Seconds*1e6, res.Cycles)
		fmt.Printf("per inference:   %.3f µs\n", res.Seconds*1e6/float64(*batch))
		fmt.Printf("rank traffic:    %.2f MB\n", float64(res.DRAMBytes)/(1<<20))
		fmt.Printf("energy:          %.3f mJ total\n", res.TotalJoules()*1e3)
		fmt.Printf("  DRAM static:   %.3f mJ\n", res.DRAMStaticJoules*1e3)
		fmt.Printf("  DRAM access:   %.3f mJ\n", res.DRAMAccessJoules*1e3)
		fmt.Printf("  logic:         %.3f mJ\n", res.LogicJoules*1e3)
		if len(res.PhaseCycles) > 0 {
			fmt.Printf("phase cycles (one rank, unit-busy):\n")
			for _, name := range []string{"feature-load", "screen", "filter", "exact-recompute", "activation", "output", "other"} {
				if c, ok := res.PhaseCycles[name]; ok {
					fmt.Printf("  %-16s %d\n", name+":", c)
				}
			}
		}
	}

	if *metrics {
		snap := enmc.MetricsSnapshot()
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
