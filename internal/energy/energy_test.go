package energy

import (
	"math"
	"testing"

	"enmc/internal/dram"
	"enmc/internal/enmc"
)

func TestTable5Totals(t *testing.T) {
	if got := ENMCLogic().TotalmW(); math.Abs(got-285.4) > 0.01 {
		t.Fatalf("Table 5 power total = %v, want 285.4", got)
	}
	if got := ENMCArea().Total(); math.Abs(got-0.442) > 0.001 {
		t.Fatalf("Table 5 area total = %v, want 0.442", got)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{1, 2, 3}
	if b.TotalJ() != 6 {
		t.Fatal("TotalJ")
	}
	b.Add(Breakdown{1, 1, 1})
	if b.DRAMStaticJ != 2 || b.LogicJ != 4 {
		t.Fatalf("Add: %+v", b)
	}
	s := b.Scale(2)
	if s.DRAMAccessJ != 6 {
		t.Fatalf("Scale: %+v", s)
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	stats := enmc.Stats{}
	stats.DRAM = dram.Stats{Cycles: 1000}
	a := Compute(stats, 1.0, ENMCLogic(), DDR4Energy())
	b := Compute(stats, 2.0, ENMCLogic(), DDR4Energy())
	if math.Abs(b.DRAMStaticJ-2*a.DRAMStaticJ) > 1e-12 {
		t.Fatal("static energy must scale with runtime")
	}
	if math.Abs(b.LogicJ-2*a.LogicJ) > 1e-12 {
		t.Fatal("always-on logic energy must scale with runtime")
	}
}

func TestAccessScalesWithTraffic(t *testing.T) {
	mk := func(bytes int64, acts int64) Breakdown {
		s := enmc.Stats{}
		s.DRAM = dram.Stats{BytesRead: bytes, Activates: acts, Cycles: 100}
		return Compute(s, 1.0, ENMCLogic(), DDR4Energy())
	}
	small := mk(1<<20, 100)
	big := mk(1<<24, 1600)
	if big.DRAMAccessJ <= small.DRAMAccessJ*10 {
		t.Fatalf("access energy did not scale: %v vs %v", big.DRAMAccessJ, small.DRAMAccessJ)
	}
}

func TestMACsChargedByBusyFraction(t *testing.T) {
	idle := enmc.Stats{}
	idle.DRAM = dram.Stats{Cycles: 1000}
	busy := idle
	busy.ScreenerBusy = 1000
	busy.ExecutorBusy = 1000

	eIdle := Compute(idle, 1.0, ENMCLogic(), DDR4Energy())
	eBusy := Compute(busy, 1.0, ENMCLogic(), DDR4Energy())
	diff := (eBusy.LogicJ - eIdle.LogicJ) * 1e3 // back to mW over 1s
	want := ENMCLogic().INT4MACmW + ENMCLogic().FP32MACmW
	if math.Abs(diff-want) > 0.01 {
		t.Fatalf("MAC busy charge = %v mW, want %v", diff, want)
	}
}

func TestBusyFractionClamped(t *testing.T) {
	s := enmc.Stats{ScreenerBusy: 5000, ExecutorBusy: 5000}
	s.DRAM = dram.Stats{Cycles: 1000}
	b := Compute(s, 1.0, ENMCLogic(), DDR4Energy())
	maxLogic := ENMCLogic().TotalmW() / 1e3
	if b.LogicJ > maxLogic+1e-9 {
		t.Fatalf("logic energy %v exceeds full-power bound %v", b.LogicJ, maxLogic)
	}
}
