// Package energy implements the energy model behind Fig. 14 and the
// area/power estimation of Tables 4 and 5. Energy splits into three
// components, exactly as the paper breaks it down:
//
//   - DRAM static: background + refresh power integrated over runtime,
//   - DRAM access: per-activate and per-bit transfer energy driven by
//     the dram package's activity counters,
//   - computation & control logic: the synthesized on-DIMM logic's
//     power, with MAC arrays charged by their busy fraction and the
//     always-on control/buffer/DRAM-controller blocks by wall time.
package energy

import "enmc/internal/enmc"

// LogicPower holds the synthesized block powers of Table 5 (mW at
// 400 MHz, TSMC 28 nm).
type LogicPower struct {
	INT4MACmW   float64 // full INT4 MAC array
	FP32MACmW   float64 // full FP32 MAC array
	ComputeBufW float64 // compute buffers (mW)
	ControlBufW float64 // control buffers (mW)
	CtrlmW      float64 // ENMC controller
	DRAMCtrlmW  float64 // on-DIMM DRAM controller
}

// ENMCLogic returns the Table 5 power breakdown.
func ENMCLogic() LogicPower {
	return LogicPower{
		INT4MACmW:   10.4,
		FP32MACmW:   58.0,
		ComputeBufW: 56.8,
		ControlBufW: 49.3,
		CtrlmW:      32.9,
		DRAMCtrlmW:  78.0,
	}
}

// TotalmW sums all blocks (Table 5 total: 285.4 mW).
func (p LogicPower) TotalmW() float64 {
	return p.INT4MACmW + p.FP32MACmW + p.ComputeBufW + p.ControlBufW + p.CtrlmW + p.DRAMCtrlmW
}

// AreaMM2 holds the Table 5 area breakdown (mm²).
type AreaMM2 struct {
	INT4MAC, FP32MAC, ComputeBuf, ControlBuf, Ctrl, DRAMCtrl float64
}

// ENMCArea returns the Table 5 areas (total 0.442 mm²).
func ENMCArea() AreaMM2 {
	return AreaMM2{
		INT4MAC:    0.013,
		FP32MAC:    0.145,
		ComputeBuf: 0.061,
		ControlBuf: 0.053,
		Ctrl:       0.035,
		DRAMCtrl:   0.135,
	}
}

// Total sums the block areas.
func (a AreaMM2) Total() float64 {
	return a.INT4MAC + a.FP32MAC + a.ComputeBuf + a.ControlBuf + a.Ctrl + a.DRAMCtrl
}

// DRAMEnergy parameterizes the memory-side energy. Defaults are
// representative DDR4 x8 numbers (activate energy per row cycle,
// transfer energy per bit including I/O, per-rank background power
// including periodic refresh).
type DRAMEnergy struct {
	StaticMWPerRank  float64 // background + refresh power per rank
	ActivateNJ       float64 // per ACT/PRE pair
	TransferPJPerBit float64
}

// DDR4Energy returns the default DDR4-2400 8Gb×8-rank parameters.
func DDR4Energy() DRAMEnergy {
	return DRAMEnergy{
		StaticMWPerRank:  396, // 8 chips × ~49.5 mW background+refresh
		ActivateNJ:       2.1,
		TransferPJPerBit: 12,
	}
}

// Breakdown is one run's energy split (joules), the Fig. 14 bars.
type Breakdown struct {
	DRAMStaticJ float64
	DRAMAccessJ float64
	LogicJ      float64
}

// TotalJ sums the components.
func (b Breakdown) TotalJ() float64 { return b.DRAMStaticJ + b.DRAMAccessJ + b.LogicJ }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.DRAMStaticJ += o.DRAMStaticJ
	b.DRAMAccessJ += o.DRAMAccessJ
	b.LogicJ += o.LogicJ
}

// Scale multiplies all components by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{b.DRAMStaticJ * f, b.DRAMAccessJ * f, b.LogicJ * f}
}

// Compute derives the energy of one rank-engine run.
//
// seconds is the run's wall time; stats are the engine's activity
// counters for that run. MAC arrays are charged by busy fraction,
// everything else by wall time.
func Compute(stats enmc.Stats, seconds float64, logic LogicPower, dramE DRAMEnergy) Breakdown {
	var b Breakdown
	// DRAM static: one rank's background power over the runtime.
	b.DRAMStaticJ = dramE.StaticMWPerRank / 1e3 * seconds

	// DRAM access energy from activity counters.
	d := stats.DRAM
	bits := float64(d.BytesRead+d.BytesWritten) * 8
	b.DRAMAccessJ = float64(d.Activates)*dramE.ActivateNJ*1e-9 +
		bits*dramE.TransferPJPerBit*1e-12

	// Logic: always-on blocks over wall time, MAC arrays by busy
	// fraction.
	cycles := float64(stats.DRAM.Cycles)
	if cycles <= 0 {
		cycles = 1
	}
	int4Busy := float64(stats.ScreenerBusy) / cycles
	fp32Busy := float64(stats.ExecutorBusy) / cycles
	if int4Busy > 1 {
		int4Busy = 1
	}
	if fp32Busy > 1 {
		fp32Busy = 1
	}
	alwaysOn := logic.ComputeBufW + logic.ControlBufW + logic.CtrlmW + logic.DRAMCtrlmW
	logicMW := alwaysOn + logic.INT4MACmW*int4Busy + logic.FP32MACmW*fp32Busy
	b.LogicJ = logicMW / 1e3 * seconds
	return b
}
