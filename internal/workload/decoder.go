package workload

import (
	"math"

	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// Decoder is a synthetic autoregressive dynamics used by the
// translation-quality experiment (Fig. 11(a)). Real NMT measures BLEU
// degradation caused by the approximate classifier picking a
// different word during greedy decoding, which then perturbs every
// later step; this decoder reproduces exactly that feedback loop:
//
//	h_{t+1} = tanh(g_r·R·h_t + g_e·emb(y_t) + drift_t)
//
// where R is a fixed random orthonormal-ish transition, emb(y) is the
// (normalized) classifier weight row of the emitted token, and drift
// is a deterministic per-step excitation shared by all decodes of the
// same sentence. Decoding the same sentence with the exact and the
// approximate classifier and comparing the token streams with BLEU
// measures the same quantity the paper plots.
type Decoder struct {
	inst  *Instance
	r     *tensor.Matrix // d×d transition
	drift []float32      // deterministic excitation stream, len d*maxLen
	gainR float32
	gainE float32
}

// NewDecoder derives a decoder from the instance, deterministically
// from seed. maxLen bounds the drift stream (and thus sentence
// length).
func NewDecoder(inst *Instance, seed uint64, maxLen int) *Decoder {
	d := inst.Spec.Hidden
	rng := xrand.New(seed ^ 0xdec0de)
	r := tensor.NewMatrix(d, d)
	inv := float32(1 / math.Sqrt(float64(d)))
	for i := range r.Data {
		r.Data[i] = rng.NormFloat32() * inv
	}
	drift := make([]float32, d*maxLen)
	for i := range drift {
		drift[i] = 0.4 * rng.NormFloat32()
	}
	return &Decoder{inst: inst, r: r, drift: drift, gainR: 0.8, gainE: 1.6}
}

// MaxLen returns the longest decodable sequence.
func (dec *Decoder) MaxLen() int { return len(dec.drift) / dec.inst.Spec.Hidden }

// Step advances the hidden state given the previously emitted token.
func (dec *Decoder) Step(h []float32, y, t int) []float32 {
	d := dec.inst.Spec.Hidden
	next := make([]float32, d)
	dec.r.MatVec(next, h)
	row := dec.inst.Classifier.W.Row(y)
	norm := float32(tensor.Norm2(row))
	if norm == 0 {
		norm = 1
	}
	dt := dec.drift[t*d : (t+1)*d]
	for j := range next {
		v := dec.gainR*next[j] + dec.gainE*row[j]/norm + dt[j]
		next[j] = float32(math.Tanh(float64(v)))
	}
	return next
}

// Decode greedily emits length tokens starting from h0, choosing each
// token with classify (which returns the argmax class for a hidden
// state). Different classify functions (exact vs screening vs
// baselines) decode the same trajectory family and can be compared
// token-by-token.
func (dec *Decoder) Decode(h0 []float32, length int, classify func(h []float32) int) []int {
	tokens, _ := dec.DecodeWithStates(h0, length, classify)
	return tokens
}

// DecodeWithStates is Decode but also returns the hidden state fed to
// the classifier at every step. Screener training uses these states
// so the screener sees the decoder's state distribution — exactly as
// the paper trains on the task's own hidden representations.
func (dec *Decoder) DecodeWithStates(h0 []float32, length int, classify func(h []float32) int) ([]int, [][]float32) {
	if length > dec.MaxLen() {
		length = dec.MaxLen()
	}
	h := make([]float32, len(h0))
	copy(h, h0)
	// Scale the start state into tanh's linear range.
	n := float32(tensor.Norm2(h))
	if n > 0 {
		tensor.Scale(h, 2/n)
	}
	out := make([]int, 0, length)
	states := make([][]float32, 0, length)
	for t := 0; t < length; t++ {
		states = append(states, h)
		y := classify(h)
		out = append(out, y)
		h = dec.Step(h, y, t)
	}
	return out, states
}
