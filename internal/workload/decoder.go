package workload

import (
	"math"

	"enmc/internal/core"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// Decoder is a synthetic autoregressive dynamics used by the
// translation-quality experiment (Fig. 11(a)). Real NMT measures BLEU
// degradation caused by the approximate classifier picking a
// different word during greedy decoding, which then perturbs every
// later step; this decoder reproduces exactly that feedback loop:
//
//	h_{t+1} = tanh(g_r·R·h_t + g_e·emb(y_t) + drift_t)
//
// where R is a fixed random orthonormal-ish transition, emb(y) is the
// (normalized) classifier weight row of the emitted token, and drift
// is a deterministic per-step excitation shared by all decodes of the
// same sentence. Decoding the same sentence with the exact and the
// approximate classifier and comparing the token streams with BLEU
// measures the same quantity the paper plots.
type Decoder struct {
	cls    *core.Classifier
	hidden int
	r      *tensor.Matrix // d×d transition
	drift  []float32      // deterministic excitation stream, len d*maxLen
	gainR  float32
	gainE  float32
}

// NewDecoder derives a decoder from the instance, deterministically
// from seed. maxLen bounds the drift stream (and thus sentence
// length).
func NewDecoder(inst *Instance, seed uint64, maxLen int) *Decoder {
	return NewDecoderFor(inst.Classifier, seed, maxLen)
}

// NewDecoderFor derives the decoder directly from a classifier — the
// serving path's constructor, where no Instance exists (the model may
// come from the registry, or be the demo model a cluster's workers
// sliced). Identical (seed, classifier) pairs yield bit-identical
// dynamics, which is what lets a cluster front-end regenerate the
// same decoder its shard workers' global model implies.
func NewDecoderFor(cls *core.Classifier, seed uint64, maxLen int) *Decoder {
	d := cls.Hidden()
	rng := xrand.New(seed ^ 0xdec0de)
	r := tensor.NewMatrix(d, d)
	inv := float32(1 / math.Sqrt(float64(d)))
	for i := range r.Data {
		r.Data[i] = rng.NormFloat32() * inv
	}
	drift := make([]float32, d*maxLen)
	for i := range drift {
		drift[i] = 0.4 * rng.NormFloat32()
	}
	return &Decoder{cls: cls, hidden: d, r: r, drift: drift, gainR: 0.8, gainE: 1.6}
}

// MaxLen returns the longest decodable sequence.
func (dec *Decoder) MaxLen() int { return len(dec.drift) / dec.hidden }

// Hidden returns the decoder's state dimension d.
func (dec *Decoder) Hidden() int { return dec.hidden }

// Step advances the hidden state given the previously emitted token.
func (dec *Decoder) Step(h []float32, y, t int) []float32 {
	next := make([]float32, dec.hidden)
	dec.StepInto(next, h, y, t)
	return next
}

// StepInto is Step writing into a caller-provided destination of
// length d — the allocation-free transition the decode service loops
// on. dst must not alias h.
func (dec *Decoder) StepInto(dst, h []float32, y, t int) {
	d := dec.hidden
	dec.r.MatVec(dst, h)
	row := dec.cls.W.Row(y)
	norm := float32(tensor.Norm2(row))
	if norm == 0 {
		norm = 1
	}
	dt := dec.drift[t*d : (t+1)*d]
	for j := range dst {
		v := dec.gainR*dst[j] + dec.gainE*row[j]/norm + dt[j]
		dst[j] = float32(math.Tanh(float64(v)))
	}
}

// NormalizeStartInto writes h0 scaled into tanh's linear range (norm
// 2) into dst — the shared start-state convention of every decode
// entry point.
func (dec *Decoder) NormalizeStartInto(dst, h0 []float32) {
	copy(dst, h0)
	n := float32(tensor.Norm2(dst))
	if n > 0 {
		tensor.Scale(dst, 2/n)
	}
}

// Decode greedily emits length tokens starting from h0, choosing each
// token with classify (which returns the argmax class for a hidden
// state). Different classify functions (exact vs screening vs
// baselines) decode the same trajectory family and can be compared
// token-by-token.
func (dec *Decoder) Decode(h0 []float32, length int, classify func(h []float32) int) []int {
	tokens, _ := dec.DecodeWithStates(h0, length, classify)
	return tokens
}

// DecodeWithStates is Decode but also returns the hidden state fed to
// the classifier at every step. Screener training uses these states
// so the screener sees the decoder's state distribution — exactly as
// the paper trains on the task's own hidden representations. The
// returned slices are caller-owned.
func (dec *Decoder) DecodeWithStates(h0 []float32, length int, classify func(h []float32) int) ([]int, [][]float32) {
	if length > dec.MaxLen() {
		length = dec.MaxLen()
	}
	h := make([]float32, len(h0))
	dec.NormalizeStartInto(h, h0)
	out := make([]int, 0, length)
	states := make([][]float32, 0, length)
	for t := 0; t < length; t++ {
		states = append(states, h)
		y := classify(h)
		out = append(out, y)
		h = dec.Step(h, y, t)
	}
	return out, states
}

// DecodeScratch owns the reusable storage of DecodeWithStatesInto:
// the token slice, a flat state arena and its per-step views, and the
// rolling hidden state. The zero value is ready to use; results alias
// the scratch and are overwritten by the next decode through it.
type DecodeScratch struct {
	tokens []int
	states []float32 // flat arena, length*d
	views  [][]float32
	cur    []float32 // rolling hidden state
}

// DecodeWithStatesInto is DecodeWithStates running entirely in the
// caller's scratch: zero allocations in steady state. The returned
// token and state slices alias ds and stay valid only until the next
// decode through the same scratch.
func (dec *Decoder) DecodeWithStatesInto(h0 []float32, length int, classify func(h []float32) int, ds *DecodeScratch) ([]int, [][]float32) {
	if length > dec.MaxLen() {
		length = dec.MaxLen()
	}
	d := dec.hidden
	if cap(ds.tokens) < length {
		ds.tokens = make([]int, length)
	}
	if cap(ds.states) < length*d {
		ds.states = make([]float32, length*d)
	}
	if cap(ds.views) < length {
		ds.views = make([][]float32, length)
	}
	if cap(ds.cur) < d {
		ds.cur = make([]float32, d)
	}
	tokens, arena, views := ds.tokens[:length], ds.states[:length*d], ds.views[:length]
	cur := ds.cur[:d]
	dec.NormalizeStartInto(cur, h0)
	for t := 0; t < length; t++ {
		slot := arena[t*d : (t+1)*d]
		copy(slot, cur)
		views[t] = slot
		y := classify(slot)
		tokens[t] = y
		// slot holds h_t, so the transition can write h_{t+1} over cur.
		dec.StepInto(cur, slot, y, t)
	}
	return tokens, views
}
