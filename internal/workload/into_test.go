package workload

import (
	"testing"

	"enmc/internal/tensor"
)

// intoSetup mirrors beamSetup but returns the pieces the Into tests
// share.
func intoSetup(t *testing.T) (*Instance, *Decoder) {
	t.Helper()
	spec := Spec{Name: "into", Categories: 160, Hidden: 32, LatentRank: 12, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 11, Train: 8, Valid: 4, Test: 4})
	dec := NewDecoder(inst, 5, 14)
	return inst, dec
}

func TestDecodeWithStatesIntoMatchesAllocating(t *testing.T) {
	inst, dec := intoSetup(t)
	classify := func(h []float32) int { return inst.Classifier.Predict(h) }
	var ds DecodeScratch
	for trial, h0 := range inst.Test {
		want, wantStates := dec.DecodeWithStates(h0, 12, classify)
		got, gotStates := dec.DecodeWithStatesInto(h0, 12, classify, &ds)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: token %d: got %d want %d", trial, i, got[i], want[i])
			}
		}
		for i := range wantStates {
			for j := range wantStates[i] {
				if gotStates[i][j] != wantStates[i][j] {
					t.Fatalf("trial %d: state %d[%d] differs", trial, i, j)
				}
			}
		}
	}
}

func TestBeamDecodeIntoMatchesAllocating(t *testing.T) {
	inst, dec := intoSetup(t)
	score := inst.ExactScorer(8)
	var bs BeamScratch
	for _, width := range []int{1, 2, 4} {
		for trial, h0 := range inst.Test {
			want := dec.BeamDecode(h0, 10, width, score)
			got := dec.BeamDecodeInto(h0, 10, width, score, &bs)
			if got.LogProb != want.LogProb {
				t.Fatalf("width %d trial %d: logprob %v != %v", width, trial, got.LogProb, want.LogProb)
			}
			if len(got.Tokens) != len(want.Tokens) {
				t.Fatalf("width %d trial %d: length mismatch", width, trial)
			}
			for i := range want.Tokens {
				if got.Tokens[i] != want.Tokens[i] {
					t.Fatalf("width %d trial %d: token %d: got %d want %d",
						width, trial, i, got.Tokens[i], want.Tokens[i])
				}
			}
		}
	}
}

func TestBeamDecodeIntoEdgeCases(t *testing.T) {
	inst, dec := intoSetup(t)
	score := inst.ExactScorer(4)
	var bs BeamScratch
	h0 := inst.Test[0]
	// Width below one clamps to one.
	got := dec.BeamDecodeInto(h0, 6, 0, score, &bs)
	if len(got.Tokens) != 6 {
		t.Fatalf("width 0: got %d tokens, want 6", len(got.Tokens))
	}
	// Length clamps to MaxLen.
	got = dec.BeamDecodeInto(h0, dec.MaxLen()+50, 2, score, &bs)
	if len(got.Tokens) != dec.MaxLen() {
		t.Fatalf("long decode: got %d tokens, want %d", len(got.Tokens), dec.MaxLen())
	}
	// An empty scorer collapses the beam to the zero hypothesis.
	empty := func(h []float32) ([]int, []float64) { return nil, nil }
	got = dec.BeamDecodeInto(h0, 4, 2, empty, &bs)
	if got.Tokens != nil || got.LogProb != 0 {
		t.Fatalf("empty scorer: want zero hypothesis, got %+v", got)
	}
}

func TestTopKLogProbsIntoReusesBuffers(t *testing.T) {
	z := []float32{1, 3, 2, -1}
	var buf tensor.TopKBuf
	classes := make([]int, 0, 4)
	lps := make([]float64, 0, 4)
	allocs := testing.AllocsPerRun(100, func() {
		classes, lps = TopKLogProbsInto(z, 3, &buf, classes, lps)
	})
	if allocs != 0 {
		t.Fatalf("TopKLogProbsInto allocated %v times per run", allocs)
	}
	if classes[0] != 1 || classes[1] != 2 || classes[2] != 0 {
		t.Fatalf("unexpected order: %v", classes)
	}
	if lps[0] >= 0 || lps[0] <= lps[1] || lps[1] <= lps[2] {
		t.Fatalf("log-probs not descending negatives: %v", lps)
	}
}

// TestDecodeIntoAllocFree is the PR-3-style allocs/op guard: with an
// allocation-free classify callback, greedy decode through a warmed
// scratch must not allocate at all.
func TestDecodeIntoAllocFree(t *testing.T) {
	inst, dec := intoSetup(t)
	classify := func(h []float32) int { return tensor.ArgMax(inst.Classifier.Logits(h)) }
	// Logits allocates; wrap it with a reused buffer instead.
	z := make([]float32, inst.Classifier.Categories())
	classifyFree := func(h []float32) int {
		inst.Classifier.W.MatVec(z, h)
		for i := range z {
			z[i] += inst.Classifier.B[i]
		}
		return tensor.ArgMax(z)
	}
	h0 := inst.Test[0]
	var ds DecodeScratch
	dec.DecodeWithStatesInto(h0, 12, classifyFree, &ds) // warm
	allocs := testing.AllocsPerRun(20, func() {
		dec.DecodeWithStatesInto(h0, 12, classifyFree, &ds)
	})
	if allocs != 0 {
		t.Fatalf("DecodeWithStatesInto allocated %v times per run", allocs)
	}
	// Sanity: the alloc-free classify agrees with the plain one.
	a := dec.Decode(h0, 12, classify)
	b := dec.Decode(h0, 12, classifyFree)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("classify wrappers disagree at %d", i)
		}
	}
}

// TestBeamIntoAllocFree guards the beam path: with an alloc-free
// scorer and a warmed scratch, beam decode must not allocate.
func TestBeamIntoAllocFree(t *testing.T) {
	inst, dec := intoSetup(t)
	z := make([]float32, inst.Classifier.Categories())
	var buf tensor.TopKBuf
	classes := make([]int, 0, 8)
	lps := make([]float64, 0, 8)
	score := func(h []float32) ([]int, []float64) {
		inst.Classifier.W.MatVec(z, h)
		for i := range z {
			z[i] += inst.Classifier.B[i]
		}
		classes, lps = TopKLogProbsInto(z, 4, &buf, classes, lps)
		return classes, lps
	}
	h0 := inst.Test[0]
	var bs BeamScratch
	dec.BeamDecodeInto(h0, 10, 4, score, &bs) // warm
	allocs := testing.AllocsPerRun(20, func() {
		dec.BeamDecodeInto(h0, 10, 4, score, &bs)
	})
	if allocs != 0 {
		t.Fatalf("BeamDecodeInto allocated %v times per run", allocs)
	}
}
