// Package workload defines the evaluated models and datasets of the
// paper's Table 2 — LSTM-W33K, Transformer-W268K, GNMT-E32K and
// XMLCNN-670K — plus the three synthetic scaling datasets S1M, S10M
// and S100M, and generates synthetic classifier instances with the
// statistical structure the screening method exploits.
//
// Substitution note (see DESIGN.md §1): the original evaluation uses
// pre-trained PyTorch models. Offline we instead generate classifiers
// with low-rank latent structure plus noise (W = A·B + E) and hidden
// vectors peaked toward a Zipf-sampled target class. This preserves
// the property screening relies on — approximate inner products rank
// the true top-K highly — while letting every size in Table 2 be
// instantiated deterministically from a seed.
package workload

import (
	"fmt"
	"math"

	"enmc/internal/core"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// FrontEnd summarizes the non-classification part of a model (input
// embedding plus hidden layers): parameter count and operations per
// inference. Used for the Fig. 4 breakdown, the Fig. 5(b) roofline
// and the end-to-end model of Fig. 15.
type FrontEnd struct {
	Params float64 // parameter count (elements, FP32)
	Ops    float64 // FLOPs per single inference (batch 1)
}

// Spec mirrors one row of Table 2.
type Spec struct {
	Name        string // abbreviation, e.g. "LSTM-W33K"
	Application string // NLP / NMT / Recommendation
	Dataset     string
	DatasetType string
	Categories  int    // l
	Hidden      int    // d
	ModelType   string // RNN / DNN / CNN
	FrontEnd    FrontEnd
	// LatentRank is the synthetic generator's latent dimensionality.
	LatentRank int
	// ZipfS is the popularity skew of target classes (s≈1 natural).
	ZipfS float64
}

// ClassificationParams returns the classifier parameter count l·d+l.
func (s Spec) ClassificationParams() float64 {
	return float64(s.Categories)*float64(s.Hidden) + float64(s.Categories)
}

// ClassificationOps returns FLOPs of the full classification layer
// for one inference (2 per MAC).
func (s Spec) ClassificationOps() float64 {
	return 2 * float64(s.Categories) * float64(s.Hidden)
}

// WeightBytes returns the FP32 classifier footprint in bytes — the
// Fig. 5(a) y-axis.
func (s Spec) WeightBytes() float64 { return s.ClassificationParams() * 4 }

// Scaled returns a copy with Categories divided by factor (minimum
// 64). Algorithm-level experiments materialize weights, so the
// headline sizes are scaled down while keeping d, rank and skew; the
// architecture-level simulators use the unscaled sizes since they
// never materialize W.
func (s Spec) Scaled(factor int) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	out.Categories = s.Categories / factor
	if out.Categories < 64 {
		out.Categories = 64
	}
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	return out
}

// Table2 returns the four evaluated workloads exactly as in the
// paper's Table 2. Front-end figures are architectural estimates for
// the named models (embedding + hidden layers), used only for the
// breakdown and end-to-end plots.
func Table2() []Spec {
	return []Spec{
		{
			Name: "LSTM-W33K", Application: "NLP",
			Dataset: "Wikitext-2", DatasetType: "Language Modeling",
			Categories: 33278, Hidden: 1500, ModelType: "RNN",
			// 2-layer LSTM (8·d² each) + input embedding l·d.
			FrontEnd: FrontEnd{
				Params: 2*8*1500*1500 + 33278*1500,
				Ops:    2 * 2 * 8 * 1500 * 1500,
			},
			LatentRank: 48, ZipfS: 1.05,
		},
		{
			Name: "Transformer-W268K", Application: "NLP",
			Dataset: "Wikitext-103", DatasetType: "Language Modeling",
			Categories: 267744, Hidden: 512, ModelType: "DNN",
			// 16 Transformer layers (≈12·d² each) + input embedding.
			FrontEnd: FrontEnd{
				Params: 16*12*512*512 + 267744*512,
				Ops:    2 * 16 * 12 * 512 * 512,
			},
			LatentRank: 64, ZipfS: 1.1,
		},
		{
			Name: "GNMT-E32K", Application: "NMT",
			Dataset: "WMT16, en-de", DatasetType: "Translation",
			Categories: 32317, Hidden: 1024, ModelType: "DNN",
			// 8 encoder + 8 decoder LSTM layers + two embeddings.
			FrontEnd: FrontEnd{
				Params: 16*8*1024*1024 + 2*32317*1024,
				Ops:    2 * 16 * 8 * 1024 * 1024,
			},
			LatentRank: 48, ZipfS: 1.0,
		},
		{
			Name: "XMLCNN-670K", Application: "Recommendation",
			Dataset: "Amazon-670k", DatasetType: "Multi-label Classification",
			Categories: 670091, Hidden: 512, ModelType: "CNN",
			// Small convolutional feature extractor; classification
			// dominates utterly, which is the paper's point.
			FrontEnd: FrontEnd{
				Params: 8e6,
				Ops:    2 * 8e6,
			},
			LatentRank: 64, ZipfS: 1.2,
		},
	}
}

// Synthetic returns the S1M/S10M/S100M scaling specs (Section 6.1):
// hidden 512 with the XMLCNN front-end held fixed, categories swept
// to 100 million.
func Synthetic() []Spec {
	base := Table2()[3] // XMLCNN front-end
	mk := func(name string, l int) Spec {
		s := base
		s.Name = name
		s.Dataset = "synthetic"
		s.DatasetType = "Scalability"
		s.Categories = l
		return s
	}
	return []Spec{
		mk("S1M", 1_000_000),
		mk("S10M", 10_000_000),
		mk("S100M", 100_000_000),
	}
}

// ByName finds a spec among Table2 and Synthetic.
func ByName(name string) (Spec, error) {
	for _, s := range append(Table2(), Synthetic()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown spec %q", name)
}

// Instance is a materialized synthetic workload: the full classifier
// plus hidden-vector sample sets, split for screener training,
// threshold calibration and evaluation.
type Instance struct {
	Spec       Spec
	Classifier *core.Classifier
	Train      [][]float32
	Valid      [][]float32
	Test       [][]float32
	// Labels[i] is the class the i-th Test feature was peaked toward
	// (the synthetic "ground truth").
	Labels []int
}

// GenOptions controls instance generation.
type GenOptions struct {
	Seed  uint64
	Train int // number of training samples (default 256)
	Valid int // default 64
	Test  int // default 128
	// PeakGain and NoiseStd shape how strongly hidden vectors point
	// at their target class (defaults 3.3 and 0.33, calibrated so the
	// exact classifier's perplexity sits in the tens — the regime of
	// the paper's LM workloads — and screening at scale 0.25/INT4
	// degrades it only marginally).
	PeakGain float32
	NoiseStd float32
}

func (o *GenOptions) defaults() {
	if o.Train <= 0 {
		o.Train = 256
	}
	if o.Valid <= 0 {
		o.Valid = 64
	}
	if o.Test <= 0 {
		o.Test = 128
	}
	if o.PeakGain == 0 {
		o.PeakGain = 3.3
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.33
	}
}

// Generate materializes a synthetic instance of the spec. Memory is
// l·d float32, so callers scale the spec down first for large l.
func Generate(spec Spec, opts GenOptions) *Instance {
	opts.defaults()
	r := xrand.New(opts.Seed ^ 0xec5c1a55)
	l, d := spec.Categories, spec.Hidden
	rank := spec.LatentRank
	if rank <= 0 {
		rank = 32
	}
	if rank > d {
		rank = d
	}

	a := tensor.NewMatrix(l, rank)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	b := tensor.NewMatrix(rank, d)
	inv := float32(1 / math.Sqrt(float64(rank)))
	for i := range b.Data {
		b.Data[i] = r.NormFloat32() * inv
	}
	w := tensor.MatMul(a, b)
	for i := range w.Data {
		w.Data[i] += 0.05 * r.NormFloat32()
	}
	bias := make([]float32, l)
	for i := range bias {
		bias[i] = 0.1 * r.NormFloat32()
	}
	cls, err := core.NewClassifier(w, bias)
	if err != nil {
		panic(err) // shapes are constructed consistently above
	}

	// Hidden states of trained front-ends concentrate on a
	// low-dimensional manifold — an empirical property the screening
	// method depends on (a learned W̃ can invert the random projection
	// on that manifold, which is why the paper sees near-lossless
	// quality at parameter scale 0.25). Model it: the bulk of the
	// noise lives in the latent rowspace, with a small isotropic
	// residue.
	noiseBasis := b

	zipf := newZipf(r, l, spec.ZipfS)
	sample := func(n int, labels *[]int) [][]float32 {
		coeff := make([]float32, noiseBasis.Rows)
		out := make([][]float32, n)
		for i := range out {
			c := zipf.Next()
			if labels != nil {
				*labels = append(*labels, c)
			}
			row := w.Row(c)
			norm := float32(tensor.Norm2(row))
			if norm == 0 {
				norm = 1
			}
			h := make([]float32, d)
			for j := range h {
				h[j] = opts.PeakGain*row[j]/norm + 0.2*opts.NoiseStd*r.NormFloat32()
			}
			// Structured (in-manifold) noise component, scaled so the
			// per-coordinate noise std stays ≈ NoiseStd: the rank
			// basis rows each carry per-coordinate variance ≈ 1/rank,
			// so coefficient std 0.9·NoiseStd yields ≈ 0.9·NoiseStd
			// of structured noise on top of the 0.2 isotropic residue.
			for bi := range coeff {
				coeff[bi] = 0.9 * opts.NoiseStd * r.NormFloat32()
			}
			for bi, cf := range coeff {
				tensor.Axpy(h, cf, noiseBasis.Row(bi))
			}
			out[i] = h
		}
		return out
	}

	inst := &Instance{Spec: spec, Classifier: cls}
	inst.Train = sample(opts.Train, nil)
	inst.Valid = sample(opts.Valid, nil)
	inst.Test = sample(opts.Test, &inst.Labels)
	return inst
}

// zipf draws class indices with probability ∝ 1/(rank+2)^s over a
// fixed random permutation, approximated by inverse-CDF sampling on
// a precomputed table when l is small and by rejection otherwise.
type zipf struct {
	rng  *xrand.RNG
	cdf  []float64 // cumulative, length min(l, 4096) over head classes
	head []int
	l    int
}

func newZipf(r *xrand.RNG, l int, s float64) *zipf {
	if s <= 0 {
		s = 1
	}
	headN := l
	if headN > 4096 {
		headN = 4096
	}
	perm := r.Perm(l)
	z := &zipf{rng: r, l: l, head: perm[:headN]}
	z.cdf = make([]float64, headN)
	var acc float64
	for i := 0; i < headN; i++ {
		acc += 1 / math.Pow(float64(i+2), s)
		z.cdf[i] = acc
	}
	for i := range z.cdf {
		z.cdf[i] /= acc
	}
	return z
}

// Next samples a class index: 90% from the Zipf head, 10% uniform
// over all classes (the long tail).
func (z *zipf) Next() int {
	if z.rng.Float64() < 0.1 {
		return z.rng.Intn(z.l)
	}
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.head[lo]
}
