package workload

import (
	"math"
	"sort"

	"enmc/internal/activation"
)

// Beam search over the synthetic decoder. The paper motivates
// approximate screening with exactly this use case: "in neural
// machine translation, we only use the top-K values of
// softmax-normalized probabilities to select the translated words,
// where K is the beam search size" — so screening needs the top-K
// accurate, not just the argmax.

// Hypothesis is one beam entry.
type Hypothesis struct {
	Tokens  []int
	LogProb float64
	state   []float32
}

// ScoreTopK returns, for a hidden state, the top-k classes and their
// log-probabilities. Implementations: exact softmax over full logits,
// or screening-based (softmax over the mixed vector).
type ScoreTopK func(h []float32) (classes []int, logProbs []float64)

// ExactScorer scores with the full classifier.
func (inst *Instance) ExactScorer(k int) ScoreTopK {
	return func(h []float32) ([]int, []float64) {
		z := inst.Classifier.Logits(h)
		return topKLogProbs(z, k)
	}
}

// topKLogProbs converts logits to the k best (class, logprob) pairs.
func topKLogProbs(z []float32, k int) ([]int, []float64) {
	lse := activation.LogSumExp(z)
	type cand struct {
		idx int
		lp  float64
	}
	cands := make([]cand, len(z))
	for i, v := range z {
		cands[i] = cand{i, float64(v) - lse}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lp > cands[b].lp })
	if k > len(cands) {
		k = len(cands)
	}
	classes := make([]int, k)
	lps := make([]float64, k)
	for i := 0; i < k; i++ {
		classes[i] = cands[i].idx
		lps[i] = cands[i].lp
	}
	return classes, lps
}

// BeamDecode runs beam search of the given width for length steps
// from h0, scoring each expansion with score. It returns the
// highest-log-probability hypothesis.
func (dec *Decoder) BeamDecode(h0 []float32, length, width int, score ScoreTopK) Hypothesis {
	if width < 1 {
		width = 1
	}
	if length > dec.MaxLen() {
		length = dec.MaxLen()
	}
	start := normalizeStart(h0)
	beam := []Hypothesis{{state: start}}

	for t := 0; t < length; t++ {
		var expanded []Hypothesis
		for _, hyp := range beam {
			classes, lps := score(hyp.state)
			for i, c := range classes {
				if i >= width {
					break
				}
				tokens := make([]int, len(hyp.Tokens)+1)
				copy(tokens, hyp.Tokens)
				tokens[len(hyp.Tokens)] = c
				expanded = append(expanded, Hypothesis{
					Tokens:  tokens,
					LogProb: hyp.LogProb + lps[i],
					state:   dec.Step(hyp.state, c, t),
				})
			}
		}
		sort.Slice(expanded, func(a, b int) bool { return expanded[a].LogProb > expanded[b].LogProb })
		if len(expanded) > width {
			expanded = expanded[:width]
		}
		beam = expanded
	}
	if len(beam) == 0 {
		return Hypothesis{}
	}
	return beam[0]
}

func normalizeStart(h0 []float32) []float32 {
	h := make([]float32, len(h0))
	copy(h, h0)
	var n float64
	for _, v := range h {
		n += float64(v) * float64(v)
	}
	if n > 0 {
		inv := float32(2 / math.Sqrt(n))
		for i := range h {
			h[i] *= inv
		}
	}
	return h
}

// ScorerFrom builds a ScoreTopK from any logits function — e.g. a
// screening-based classifier whose mixed vector is exact on the top
// candidates, which is precisely what beam search consumes.
func ScorerFrom(logits func(h []float32) []float32, k int) ScoreTopK {
	return func(h []float32) ([]int, []float64) {
		return topKLogProbs(logits(h), k)
	}
}
