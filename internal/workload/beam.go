package workload

import (
	"sort"

	"enmc/internal/activation"
	"enmc/internal/tensor"
)

// Beam search over the synthetic decoder. The paper motivates
// approximate screening with exactly this use case: "in neural
// machine translation, we only use the top-K values of
// softmax-normalized probabilities to select the translated words,
// where K is the beam search size" — so screening needs the top-K
// accurate, not just the argmax.

// Hypothesis is one beam entry.
type Hypothesis struct {
	Tokens  []int
	LogProb float64
	state   []float32
}

// ScoreTopK returns, for a hidden state, the top-k classes and their
// log-probabilities. Implementations: exact softmax over full logits,
// or screening-based (softmax over the mixed vector). Returned slices
// may alias scorer-owned storage valid until the next call.
type ScoreTopK func(h []float32) (classes []int, logProbs []float64)

// ExactScorer scores with the full classifier.
func (inst *Instance) ExactScorer(k int) ScoreTopK {
	return func(h []float32) ([]int, []float64) {
		z := inst.Classifier.Logits(h)
		return topKLogProbs(z, k)
	}
}

// topKLogProbs converts logits to the k best (class, logprob) pairs.
func topKLogProbs(z []float32, k int) ([]int, []float64) {
	var buf tensor.TopKBuf
	return TopKLogProbsInto(z, k, &buf, nil, nil)
}

// TopKLogProbsInto is topKLogProbs on the bounded heap in
// tensor.TopKInto — O(l log k) instead of the former full sort — with
// caller-provided storage: classes/lps are reused when their capacity
// suffices, so a scorer that keeps its buffers selects allocation-
// free. Ordering follows TopKInto: descending log-probability, ties
// toward lower class index.
func TopKLogProbsInto(z []float32, k int, buf *tensor.TopKBuf, classes []int, lps []float64) ([]int, []float64) {
	lse := activation.LogSumExp(z)
	idx := tensor.TopKInto(z, k, buf)
	if cap(classes) < len(idx) {
		classes = make([]int, len(idx))
	}
	if cap(lps) < len(idx) {
		lps = make([]float64, len(idx))
	}
	classes, lps = classes[:len(idx)], lps[:len(idx)]
	for i, c := range idx {
		classes[i] = c
		lps[i] = float64(z[c]) - lse
	}
	return classes, lps
}

// BeamScratch owns the reusable storage of BeamDecodeInto: the beam
// and expansion hypothesis headers plus flat token/state arenas they
// point into. The zero value is ready to use; the winning Hypothesis
// aliases the scratch and is overwritten by the next decode through
// it.
type BeamScratch struct {
	cur, next     []Hypothesis
	curTok        []int     // width × maxLen token arena for the beam
	nextTok       []int     // width² × maxLen token arena for expansions
	curState      []float32 // width × d state arena
	nextState     []float32 // width² × d state arena
	sorter        hypSorter
	width, length int
	dim           int
}

func (bs *BeamScratch) grow(width, length, dim int) {
	if width <= bs.width && length <= bs.length && dim <= bs.dim {
		return
	}
	bs.width, bs.length, bs.dim = width, length, dim
	bs.cur = make([]Hypothesis, 0, width)
	bs.next = make([]Hypothesis, 0, width*width)
	bs.curTok = make([]int, width*length)
	bs.nextTok = make([]int, width*width*length)
	bs.curState = make([]float32, width*dim)
	bs.nextState = make([]float32, width*width*dim)
}

// hypSorter orders hypotheses by descending log-probability — the
// same comparison BeamDecode always used, behind sort.Sort so the
// selection allocates nothing.
type hypSorter struct{ h []Hypothesis }

func (s *hypSorter) Len() int           { return len(s.h) }
func (s *hypSorter) Less(a, b int) bool { return s.h[a].LogProb > s.h[b].LogProb }
func (s *hypSorter) Swap(a, b int)      { s.h[a], s.h[b] = s.h[b], s.h[a] }

// BeamDecode runs beam search of the given width for length steps
// from h0, scoring each expansion with score. It returns the
// highest-log-probability hypothesis (caller-owned).
func (dec *Decoder) BeamDecode(h0 []float32, length, width int, score ScoreTopK) Hypothesis {
	var bs BeamScratch
	best := dec.BeamDecodeInto(h0, length, width, score, &bs)
	// Copy out of the scratch so the result outlives it.
	return Hypothesis{
		Tokens:  append([]int(nil), best.Tokens...),
		LogProb: best.LogProb,
		state:   append([]float32(nil), best.state...),
	}
}

// BeamDecodeInto is BeamDecode running entirely in the caller's
// scratch: hypothesis tokens and states live in flat arenas that are
// reused across steps (and across calls), so steady-state beam
// decoding allocates nothing. The returned Hypothesis aliases bs and
// stays valid only until the next decode through the same scratch.
func (dec *Decoder) BeamDecodeInto(h0 []float32, length, width int, score ScoreTopK, bs *BeamScratch) Hypothesis {
	if width < 1 {
		width = 1
	}
	if length > dec.MaxLen() {
		length = dec.MaxLen()
	}
	if length < 1 {
		length = 1
	}
	d := dec.hidden
	bs.grow(width, length, d)
	L := bs.length

	bs.cur = bs.cur[:1]
	start := bs.curState[:d]
	dec.NormalizeStartInto(start, h0)
	bs.cur[0] = Hypothesis{Tokens: bs.curTok[:0], state: start}

	for t := 0; t < length; t++ {
		bs.next = bs.next[:0]
		for _, hyp := range bs.cur {
			classes, lps := score(hyp.state)
			for i, c := range classes {
				if i >= width {
					break
				}
				e := len(bs.next)
				tok := bs.nextTok[e*L : e*L+t+1]
				copy(tok, hyp.Tokens)
				tok[t] = c
				st := bs.nextState[e*d : (e+1)*d]
				dec.StepInto(st, hyp.state, c, t)
				bs.next = append(bs.next, Hypothesis{
					Tokens:  tok,
					LogProb: hyp.LogProb + lps[i],
					state:   st,
				})
			}
		}
		if len(bs.next) == 0 {
			return Hypothesis{}
		}
		bs.sorter.h = bs.next
		sort.Sort(&bs.sorter)
		keep := len(bs.next)
		if keep > width {
			keep = width
		}
		// Survivors move back into the beam arenas: the expansion
		// arenas are rewritten next step.
		bs.cur = bs.cur[:keep]
		for i := 0; i < keep; i++ {
			src := bs.next[i]
			tok := bs.curTok[i*L : i*L+len(src.Tokens)]
			copy(tok, src.Tokens)
			st := bs.curState[i*d : (i+1)*d]
			copy(st, src.state)
			bs.cur[i] = Hypothesis{Tokens: tok, LogProb: src.LogProb, state: st}
		}
	}
	return bs.cur[0]
}

// ScorerFrom builds a ScoreTopK from any logits function — e.g. a
// screening-based classifier whose mixed vector is exact on the top
// candidates, which is precisely what beam search consumes.
func ScorerFrom(logits func(h []float32) []float32, k int) ScoreTopK {
	return func(h []float32) ([]int, []float64) {
		return topKLogProbs(logits(h), k)
	}
}
