package workload

import (
	"math"
	"testing"

	"enmc/internal/activation"
)

func beamSetup(t *testing.T) (*Instance, *Decoder) {
	t.Helper()
	spec := Spec{Name: "beam", Categories: 200, Hidden: 32, LatentRank: 12, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 8, Train: 8, Valid: 4, Test: 6})
	return inst, NewDecoder(inst, 3, 12)
}

func TestBeamWidthOneEqualsGreedy(t *testing.T) {
	inst, dec := beamSetup(t)
	score := inst.ExactScorer(1)
	greedy := dec.Decode(inst.Test[0], 10, inst.Classifier.Predict)
	beam := dec.BeamDecode(inst.Test[0], 10, 1, score)
	if len(beam.Tokens) != len(greedy) {
		t.Fatalf("lengths %d vs %d", len(beam.Tokens), len(greedy))
	}
	for i := range greedy {
		if beam.Tokens[i] != greedy[i] {
			t.Fatalf("beam-1 diverged from greedy at %d", i)
		}
	}
}

func TestWiderBeamNeverScoresWorse(t *testing.T) {
	inst, dec := beamSetup(t)
	for _, h := range inst.Test[:4] {
		one := dec.BeamDecode(h, 8, 1, inst.ExactScorer(1))
		four := dec.BeamDecode(h, 8, 4, inst.ExactScorer(4))
		if four.LogProb < one.LogProb-1e-9 {
			t.Fatalf("beam-4 logprob %v below beam-1 %v", four.LogProb, one.LogProb)
		}
	}
}

func TestBeamDeterministic(t *testing.T) {
	inst, dec := beamSetup(t)
	a := dec.BeamDecode(inst.Test[1], 8, 3, inst.ExactScorer(3))
	b := dec.BeamDecode(inst.Test[1], 8, 3, inst.ExactScorer(3))
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("beam search not deterministic")
		}
	}
}

func TestBeamEdgeCases(t *testing.T) {
	inst, dec := beamSetup(t)
	// Width 0 clamps to 1; length clamps to MaxLen.
	h := dec.BeamDecode(inst.Test[0], 100, 0, inst.ExactScorer(1))
	if len(h.Tokens) != dec.MaxLen() {
		t.Fatalf("length %d, want clamped %d", len(h.Tokens), dec.MaxLen())
	}
}

func TestTopKLogProbsIsDistribution(t *testing.T) {
	z := []float32{1, 3, 2, -1}
	classes, lps := topKLogProbs(z, 4)
	if classes[0] != 1 || classes[1] != 2 || classes[2] != 0 || classes[3] != 3 {
		t.Fatalf("order %v", classes)
	}
	var sum float64
	for _, lp := range lps {
		sum += math.Exp(lp)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum %v", sum)
	}
	// Consistent with direct softmax.
	p := make([]float32, 4)
	activation.Softmax(p, z)
	if math.Abs(math.Exp(lps[0])-float64(p[1])) > 1e-6 {
		t.Fatal("logprob disagrees with softmax")
	}
}
