package workload

import (
	"math"
	"testing"

	"enmc/internal/tensor"
)

func TestTable2MatchesPaper(t *testing.T) {
	specs := Table2()
	if len(specs) != 4 {
		t.Fatalf("Table 2 has %d rows", len(specs))
	}
	want := map[string][2]int{
		"LSTM-W33K":         {33278, 1500},
		"Transformer-W268K": {267744, 512},
		"GNMT-E32K":         {32317, 1024},
		"XMLCNN-670K":       {670091, 512},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected spec %q", s.Name)
		}
		if s.Categories != w[0] || s.Hidden != w[1] {
			t.Fatalf("%s: l=%d d=%d, want l=%d d=%d", s.Name, s.Categories, s.Hidden, w[0], w[1])
		}
	}
}

func TestSyntheticSpecs(t *testing.T) {
	syn := Synthetic()
	if len(syn) != 3 {
		t.Fatalf("synthetic specs = %d", len(syn))
	}
	if syn[0].Categories != 1_000_000 || syn[2].Categories != 100_000_000 {
		t.Fatal("synthetic category counts wrong")
	}
	// S100M at hidden 512 must be ≈190 GB as the paper states.
	gb := syn[2].WeightBytes() / (1 << 30)
	if gb < 180 || gb < 0 || gb > 200 {
		t.Fatalf("S100M footprint %.1f GB, want ≈190", gb)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("S10M")
	if err != nil || s.Categories != 10_000_000 {
		t.Fatalf("ByName(S10M) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestScaled(t *testing.T) {
	s := Table2()[3].Scaled(16)
	if s.Categories != 670091/16 {
		t.Fatalf("scaled categories = %d", s.Categories)
	}
	if s.Hidden != 512 {
		t.Fatal("scaling must not change hidden dim")
	}
	tiny := Spec{Categories: 100, Hidden: 8}.Scaled(1000)
	if tiny.Categories != 64 {
		t.Fatalf("scaling floor = %d", tiny.Categories)
	}
	if same := (Spec{Categories: 100}).Scaled(1); same.Categories != 100 {
		t.Fatal("factor 1 must be identity")
	}
}

func TestClassificationBreakdownShape(t *testing.T) {
	// The paper's Fig. 4 claim: classification dominates for the
	// recommendation workload far more than for LSTM-W33K.
	lstm := Table2()[0]
	xml := Table2()[3]
	fracLSTM := lstm.ClassificationParams() / (lstm.ClassificationParams() + lstm.FrontEnd.Params)
	fracXML := xml.ClassificationParams() / (xml.ClassificationParams() + xml.FrontEnd.Params)
	if fracXML < 0.9 {
		t.Fatalf("XMLCNN classification fraction %v, want > 0.9", fracXML)
	}
	if fracLSTM > fracXML {
		t.Fatal("LSTM classification fraction should be below XMLCNN")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "t", Categories: 128, Hidden: 32, LatentRank: 8, ZipfS: 1}
	a := Generate(spec, GenOptions{Seed: 5, Train: 8, Valid: 4, Test: 4})
	b := Generate(spec, GenOptions{Seed: 5, Train: 8, Valid: 4, Test: 4})
	for i := range a.Classifier.W.Data {
		if a.Classifier.W.Data[i] != b.Classifier.W.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	for i := range a.Test {
		for j := range a.Test[i] {
			if a.Test[i][j] != b.Test[i][j] {
				t.Fatal("same seed produced different samples")
			}
		}
	}
	c := Generate(spec, GenOptions{Seed: 6, Train: 8, Valid: 4, Test: 4})
	if a.Classifier.W.Data[0] == c.Classifier.W.Data[0] {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestGenerateShapesAndSplits(t *testing.T) {
	spec := Spec{Name: "t", Categories: 200, Hidden: 24, LatentRank: 8, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 1, Train: 10, Valid: 5, Test: 7})
	if inst.Classifier.Categories() != 200 || inst.Classifier.Hidden() != 24 {
		t.Fatal("classifier shape")
	}
	if len(inst.Train) != 10 || len(inst.Valid) != 5 || len(inst.Test) != 7 {
		t.Fatal("split sizes")
	}
	if len(inst.Labels) != 7 {
		t.Fatalf("labels = %d", len(inst.Labels))
	}
	for _, lab := range inst.Labels {
		if lab < 0 || lab >= 200 {
			t.Fatalf("label out of range: %d", lab)
		}
	}
}

func TestGeneratedFeaturesArePeaked(t *testing.T) {
	spec := Spec{Name: "t", Categories: 300, Hidden: 48, LatentRank: 16, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 2, Test: 60})
	// The labeled class should rank very highly under the full
	// classifier for most test samples.
	good := 0
	for i, h := range inst.Test {
		z := inst.Classifier.Logits(h)
		top := tensor.TopK(z, 10)
		for _, c := range top {
			if c == inst.Labels[i] {
				good++
				break
			}
		}
	}
	if good < 45 {
		t.Fatalf("only %d/60 labels in model top-10; features not peaked", good)
	}
}

func TestZipfSkew(t *testing.T) {
	spec := Spec{Name: "t", Categories: 1000, Hidden: 16, LatentRank: 4, ZipfS: 1.2}
	inst := Generate(spec, GenOptions{Seed: 3, Test: 400})
	counts := map[int]int{}
	for _, lab := range inst.Labels {
		counts[lab]++
	}
	// Skewed sampling: far fewer distinct classes than samples.
	if len(counts) > 350 {
		t.Fatalf("labels look uniform: %d distinct over 400 draws", len(counts))
	}
}

func TestDecoderDeterministicAndSensitive(t *testing.T) {
	spec := Spec{Name: "t", Categories: 150, Hidden: 32, LatentRank: 8, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 4, Test: 4})
	dec := NewDecoder(inst, 9, 20)
	exact := func(h []float32) int { return inst.Classifier.Predict(h) }

	a := dec.Decode(inst.Test[0], 15, exact)
	b := dec.Decode(inst.Test[0], 15, exact)
	if len(a) != 15 {
		t.Fatalf("decode length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decode not deterministic")
		}
	}

	// A classifier that disagrees early must change the trajectory.
	perturbed := dec.Decode(inst.Test[0], 15, func(h []float32) int {
		return (inst.Classifier.Predict(h) + 1) % 150
	})
	same := 0
	for i := range a {
		if a[i] == perturbed[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("perturbed classifier produced identical decode")
	}
}

func TestDecodeLengthClamped(t *testing.T) {
	spec := Spec{Name: "t", Categories: 64, Hidden: 16, LatentRank: 4, ZipfS: 1}
	inst := Generate(spec, GenOptions{Seed: 5, Test: 1})
	dec := NewDecoder(inst, 1, 5)
	out := dec.Decode(inst.Test[0], 99, func(h []float32) int { return 0 })
	if len(out) != 5 {
		t.Fatalf("decode length %d, want clamped to 5", len(out))
	}
}

func TestWeightBytes(t *testing.T) {
	s := Spec{Categories: 1000, Hidden: 100}
	want := float64(1000*100+1000) * 4
	if math.Abs(s.WeightBytes()-want) > 1 {
		t.Fatalf("WeightBytes = %v", s.WeightBytes())
	}
}
