// Package funcsim is a functional (value-level) machine for the ENMC
// DIMM: it interprets compiled instruction streams against a
// byte-addressable rank memory, actually moving data through the
// modeled buffers — LDR unpacks tiles from memory, MUL_ADD_INT4 runs
// the nibble MAC array into the partial-sum accumulators, FILTER
// dequantizes, thresholds and emits candidate indices, and the FP32
// executor path computes exact candidate logits.
//
// Together with the timing engine (internal/enmc, which charges
// cycles but does not interpret values) this completes the simulator:
// TestCompiledProgramComputesScreening proves that the instruction
// stream the compiler emits, run over the DRAM image the host writes,
// produces exactly the numbers core.Screener computes in software.
//
// One contract is made explicit here rather than in instruction
// operands: the PSUM bookkeeping. The hardware's controller sequences
// rows into the accumulators via its status registers (TileRows,
// counters); the machine mirrors that microstate, assuming the
// compiler's canonical streaming order (row-major tiles within
// 64-row output tiles). The dequantization scales and biases live in
// the metadata block after the packed weights, which the FILTER
// microcode reads — exactly how per-row scale factors reach
// comparator hardware.
package funcsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"enmc/internal/enmc"
	"enmc/internal/image"
	"enmc/internal/isa"
	"enmc/internal/quant"
)

// Machine executes ENMC programs functionally over a rank image.
type Machine struct {
	hw  enmc.Config
	img *image.FullImage

	// Status registers (INIT/QUERY target these).
	regs [isa.NumRegs]uint64

	// Screener state.
	featI4  []int8  // quantized projected feature (k nibbles)
	wgtTile []int8  // last-loaded weight tile (nibbles)
	psumI32 []int32 // integer accumulators, one per output row
	outTile int     // current 64-row output tile index
	// Outputs.
	Z          []float32 // dequantized screening outputs per shard row
	Candidates []int     // shard-local indices emitted by FILTER

	// Executor state.
	featF32   []float32 // current FP32 feature chunk
	chunkBase int       // byte offset of the chunk within a row
	psumF32   map[int]float32
	// ExactLogits maps shard-local row → exact logit computed by the
	// FP32 path.
	ExactLogits map[int]float32
	lastWgtRow  int // row of the last FP32 weight chunk load
}

// New builds a machine over a full rank image.
func New(hw enmc.Config, img *image.FullImage) *Machine {
	l := img.Rows
	return &Machine{
		hw:          hw,
		img:         img,
		psumI32:     make([]int32, 0, hw.BufBytes/4),
		Z:           make([]float32, 0, l),
		psumF32:     map[int]float32{},
		ExactLogits: map[int]float32{},
		featI4:      make([]int8, img.K),
		lastWgtRow:  -1,
	}
}

// Threshold returns the candidate threshold from the status register
// (float32 bits in RegThreshold).
func (m *Machine) Threshold() float32 {
	return math.Float32frombits(uint32(m.regs[isa.RegThreshold]))
}

// Run interprets the program. Instructions outside the screening /
// executor dataflow (BARRIER, NOP, RETURN, MOVE) are no-ops
// functionally.
func (m *Machine) Run(prog []enmc.Op) error {
	for i, op := range prog {
		if err := m.exec(op); err != nil {
			return fmt.Errorf("funcsim: op %d (%s): %w", i, op.I, err)
		}
	}
	return nil
}

func (m *Machine) exec(op enmc.Op) error {
	in := op.I
	nbytes := op.Bytes
	if nbytes <= 0 || nbytes > m.hw.BufBytes {
		nbytes = m.hw.BufBytes
	}
	mem := m.img.Mem

	switch in.Op {
	case isa.OpREG:
		if in.RW {
			if in.Reg == isa.RegBatch && in.Data > 1 {
				return fmt.Errorf("functional machine interprets batch-1 programs (got batch %d); batched screening repeats MACs per tile, which needs banked PSUM state the machine does not model", in.Data)
			}
			m.regs[in.Reg] = in.Data
		}

	case isa.OpLDR:
		addr := int(in.Data)
		switch in.Buf0 {
		case isa.BufFeatINT4:
			if addr+nbytes > len(mem) {
				return fmt.Errorf("feature load beyond image (%d+%d)", addr, nbytes)
			}
			copy(m.featI4, quant.UnpackINT4(mem[addr:addr+nbytes], min(m.img.K, nbytes*2)))
		case isa.BufWgtINT4:
			if addr+nbytes > len(mem) {
				return fmt.Errorf("weight load beyond image (%d+%d)", addr, nbytes)
			}
			m.wgtTile = quant.UnpackINT4(mem[addr:addr+nbytes], nbytes*2)
		case isa.BufFeatFP32:
			m.chunkBase = addr - int(m.img.Layout.FeatBase) - (m.img.K+1)/2
			if m.chunkBase < 0 {
				return fmt.Errorf("FP32 feature chunk before feature base")
			}
			m.featF32 = readFloats(mem, addr, nbytes/4)
		case isa.BufWgtFP32:
			off := addr - int(m.img.Layout.FullWBase)
			if off < 0 {
				return fmt.Errorf("FP32 weight load before FullWBase")
			}
			rowBytes := m.img.Hidden * 4
			m.lastWgtRow = off / rowBytes
			if off%rowBytes != m.chunkBase {
				return fmt.Errorf("weight chunk offset %d does not match feature chunk %d", off%rowBytes, m.chunkBase)
			}
		}

	case isa.OpMULADDINT4:
		// The MAC array consumes the loaded tile: whole rows of k
		// nibbles accumulate into consecutive PSUM entries.
		k := m.img.K
		if len(m.wgtTile)%k != 0 {
			return fmt.Errorf("weight tile of %d nibbles not row-aligned (k=%d)", len(m.wgtTile), k)
		}
		for r := 0; r+k <= len(m.wgtTile); r += k {
			var acc int32
			row := m.wgtTile[r : r+k]
			for j, w := range row {
				acc += int32(w) * int32(m.featI4[j])
			}
			m.psumI32 = append(m.psumI32, acc)
		}
		m.wgtTile = nil

	case isa.OpFILTER:
		// Dequantize the accumulated rows, apply bias, threshold.
		th := m.Threshold()
		featScale := math.Float32frombits(uint32(m.regs[isa.RegFeatSize]))
		k := m.img.K
		metaBase := int(m.img.Layout.ScrWBase) + (m.img.Rows*k+1)/2
		biasBase := metaBase + 4*m.img.Rows
		for i, acc := range m.psumI32 {
			row := m.outTile*(m.hw.BufBytes/4) + i
			if row >= m.img.Rows {
				break
			}
			scale := math.Float32frombits(binary.LittleEndian.Uint32(mem[metaBase+4*row:]))
			bias := math.Float32frombits(binary.LittleEndian.Uint32(mem[biasBase+4*row:]))
			z := float32(acc)*scale*featScale + bias
			m.Z = append(m.Z, z)
			if z >= th {
				m.Candidates = append(m.Candidates, row)
			}
		}
		m.psumI32 = m.psumI32[:0]
		m.outTile++

	case isa.OpMULADDFP32:
		if m.lastWgtRow < 0 {
			return fmt.Errorf("FP32 MULADD before a weight load")
		}
		rowBytes := m.img.Hidden * 4
		off := int(m.img.Layout.FullWBase) + m.lastWgtRow*rowBytes + m.chunkBase
		n := len(m.featF32)
		w := readFloats(mem, off, n)
		var acc float32
		for j := 0; j < n; j++ {
			acc += w[j] * m.featF32[j]
		}
		m.psumF32[m.lastWgtRow] += acc

	case isa.OpSOFTMAX, isa.OpSIGMOID:
		// Normalization happens over the PSUM; the machine keeps raw
		// logits so tests can compare against the classifier. Snapshot
		// them as final.
		for row, v := range m.psumF32 {
			m.ExactLogits[row] = v
		}

	default:
		// BARRIER, NOP, MOVE, RETURN, STR, CLR: no functional effect
		// at this abstraction level.
	}
	return nil
}

func readFloats(mem []byte, addr, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(mem[addr+4*i:]))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
