package funcsim

import (
	"math"
	"testing"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/enmc"
	"enmc/internal/image"
	"enmc/internal/isa"
	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/workload"
)

func setup(t *testing.T) (*core.Screener, *workload.Instance) {
	t.Helper()
	spec := workload.Spec{Name: "fs", Categories: 320, Hidden: 128, LatentRank: 24, ZipfS: 1}
	inst := workload.Generate(spec, workload.GenOptions{Seed: 31, Train: 256, Valid: 16, Test: 8})
	cfg := core.Config{Categories: 320, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 6}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return scr, inst
}

// TestCompiledProgramComputesScreening is the end-to-end functional
// proof: the instruction stream the compiler emits, interpreted over
// the DRAM image the host writes, reproduces core.Screener.Screen bit
// for bit — including the threshold filter's candidate set.
func TestCompiledProgramComputesScreening(t *testing.T) {
	scr, inst := setup(t)
	hw := enmc.Default()

	for _, h := range inst.Test[:4] {
		img, qh, err := image.BuildFull(inst.Classifier, scr, 0, 320, h)
		if err != nil {
			t.Fatal(err)
		}
		want := scr.Screen(h)
		th := want[tensor.TopK(want, 16)[15]] // threshold at the 16th value

		task := compiler.Task{Categories: 320, Hidden: 128, Reduced: 32, Candidates: 8, Batch: 1}
		prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(),
			compiler.RankShare{Rows: 320, Candidates: 8}, compiler.ModeScreened)
		if err != nil {
			t.Fatal(err)
		}

		m := New(hw, img)
		pre := []enmc.Op{
			{I: isa.Init(isa.RegThreshold, uint64(math.Float32bits(th)))},
			{I: isa.Init(isa.RegFeatSize, uint64(math.Float32bits(qh.Scale)))},
		}
		if err := m.Run(append(append(pre, prog.Init...), prog.Ops...)); err != nil {
			t.Fatal(err)
		}

		if len(m.Z) != 320 {
			t.Fatalf("machine produced %d outputs", len(m.Z))
		}
		for i := range want {
			if m.Z[i] != want[i] {
				t.Fatalf("row %d: machine %v != core %v", i, m.Z[i], want[i])
			}
		}
		wantCands := core.SelectCandidates(want, core.Threshold(th))
		if len(m.Candidates) != len(wantCands) {
			t.Fatalf("candidates %d vs %d", len(m.Candidates), len(wantCands))
		}
		for i := range wantCands {
			if m.Candidates[i] != wantCands[i] {
				t.Fatalf("candidate %d: %d vs %d", i, m.Candidates[i], wantCands[i])
			}
		}
	}
}

// TestCompiledExecutorComputesExactLogits: the FP32 path of the
// compiled program must produce the classifier's exact logits
// (serial-summation order) for every row it touches.
func TestCompiledExecutorComputesExactLogits(t *testing.T) {
	scr, inst := setup(t)
	hw := enmc.Default()
	h := inst.Test[0]
	img, qh, err := image.BuildFull(inst.Classifier, scr, 0, 320, h)
	if err != nil {
		t.Fatal(err)
	}
	task := compiler.Task{Categories: 320, Hidden: 128, Reduced: 32, Candidates: 12, Batch: 1}
	prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(),
		compiler.RankShare{Rows: 320, Candidates: 12}, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	m := New(hw, img)
	pre := []enmc.Op{
		{I: isa.Init(isa.RegThreshold, uint64(math.Float32bits(1e30)))},
		{I: isa.Init(isa.RegFeatSize, uint64(math.Float32bits(qh.Scale)))},
	}
	if err := m.Run(append(append(pre, prog.Init...), prog.Ops...)); err != nil {
		t.Fatal(err)
	}
	if len(m.ExactLogits) == 0 {
		t.Fatal("executor produced no logits")
	}
	// Chunked accumulation sums chunk sub-dots; recompute the same
	// way for bit-exact comparison.
	for row, got := range m.ExactLogits {
		w := inst.Classifier.W.Row(row)
		var want float32
		for c := 0; c < len(w); c += hw.BufBytes / 4 {
			end := c + hw.BufBytes/4
			if end > len(w) {
				end = len(w)
			}
			var acc float32
			for j := c; j < end; j++ {
				acc += w[j] * h[j]
			}
			want += acc
		}
		if got != want {
			t.Fatalf("row %d: executor %v != classifier %v", row, got, want)
		}
	}
}

func TestMachineRejectsBadPrograms(t *testing.T) {
	scr, inst := setup(t)
	img, _, err := image.BuildFull(inst.Classifier, scr, 0, 320, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	m := New(enmc.Default(), img)
	// FP32 MULADD without a weight load must fail.
	if err := m.Run([]enmc.Op{{I: isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32)}}); err == nil {
		t.Fatal("MULADD without weight load accepted")
	}
	// Weight load far beyond the image must fail.
	m2 := New(enmc.Default(), img)
	if err := m2.Run([]enmc.Op{{I: isa.Ldr(isa.BufWgtINT4, 1<<40)}}); err == nil {
		t.Fatal("out-of-image load accepted")
	}
}

func TestMachineRejectsBatchedPrograms(t *testing.T) {
	scr, inst := setup(t)
	img, _, err := image.BuildFull(inst.Classifier, scr, 0, 320, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	m := New(enmc.Default(), img)
	if err := m.Run([]enmc.Op{{I: isa.Init(isa.RegBatch, 4)}}); err == nil {
		t.Fatal("batched program accepted by the functional machine")
	}
}
