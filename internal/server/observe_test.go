package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"enmc/internal/telemetry"

	"net/http/httptest"
)

func newObsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRequestIDEcho: every /v1/* response carries X-Request-Id — 200s,
// rejections, and 503s alike — and a caller-supplied ID is echoed
// back instead of replaced.
func TestRequestIDEcho(t *testing.T) {
	s, ts := newObsServer(t, Config{MaxDelay: time.Millisecond})

	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if id := resp.Header.Get(telemetry.HeaderRequestID); len(id) != 16 {
		t.Fatalf("200 response X-Request-Id = %q, want minted 16-hex ID", id)
	}

	// Caller-supplied ID survives.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", bytes.NewReader(classifyBody(t, 8)))
	req.Header.Set(telemetry.HeaderRequestID, "caller-chose-this")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(telemetry.HeaderRequestID); id != "caller-chose-this" {
		t.Fatalf("echoed ID = %q, want caller's", id)
	}

	// Method rejection still carries an ID.
	resp, err = ts.Client().Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if resp.Header.Get(telemetry.HeaderRequestID) == "" {
		t.Fatal("405 response missing X-Request-Id")
	}

	// Draining 503 still carries an ID (the unavailable path writes
	// its own headers — the echo must come first).
	s.Drain()
	resp, err = postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d", resp.StatusCode)
	}
	if resp.Header.Get(telemetry.HeaderRequestID) == "" {
		t.Fatal("503 response missing X-Request-Id")
	}
}

// TestMetricsEndpoint: /metrics serves valid exposition text that the
// package's own parser accepts, with request counters present.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newObsServer(t, Config{MaxDelay: time.Millisecond})
	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	p, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("scrape invalid: %v", err)
	}
	if v, ok := p.Value("server_http_requests", nil); !ok || v < 1 {
		t.Errorf("server_http_requests = %g (found=%v), want >= 1", v, ok)
	}
	if _, ok := p.Value("server_http_classify_ns_bucket", map[string]string{"le": "+Inf"}); !ok {
		t.Error("classify latency histogram missing from scrape")
	}
	// SLO gauges publish at scrape time once traffic has flowed.
	if _, ok := p.Value("slo_error_budget_burn", map[string]string{"endpoint": "/v1/classify"}); !ok {
		t.Error("slo_error_budget_burn{endpoint=/v1/classify} missing from scrape")
	}
}

// TestSLOEndpoint: GET /v1/slo reports the rolling window, and errors
// move the burn rate.
func TestSLOEndpoint(t *testing.T) {
	_, ts := newObsServer(t, Config{MaxDelay: time.Millisecond})
	for i := 0; i < 3; i++ {
		resp, err := postClassify(ts, classifyBody(t, 8))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// A 400 is not an SLO error (client's fault), a 405 isn't either;
	// both still count as requests on their endpoint.
	resp, err := ts.Client().Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum telemetry.SLOSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.WindowSeconds <= 0 || sum.Availability <= 0 {
		t.Fatalf("summary missing config: %+v", sum)
	}
	var ep *telemetry.EndpointSLO
	for i := range sum.Endpoints {
		if sum.Endpoints[i].Endpoint == "/v1/classify" {
			ep = &sum.Endpoints[i]
		}
	}
	if ep == nil {
		t.Fatalf("no /v1/classify endpoint in %+v", sum.Endpoints)
	}
	if ep.Requests != 4 {
		t.Errorf("requests = %d, want 4", ep.Requests)
	}
	if ep.ErrorRate != 0 {
		t.Errorf("4xx counted as SLO error: rate = %g", ep.ErrorRate)
	}
	if ep.P99Ms <= 0 {
		t.Errorf("p99 = %g, want > 0", ep.P99Ms)
	}
}

// TestRequestLogEmitted: with a RequestLog configured, each /v1/*
// request produces one JSON record whose req_id matches the response
// header.
func TestRequestLogEmitted(t *testing.T) {
	var mu syncBuffer
	_, ts := newObsServer(t, Config{
		MaxDelay:   time.Millisecond,
		RequestLog: telemetry.NewRequestLog(&mu, telemetry.RequestLogOptions{JSON: true}),
	})
	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get(telemetry.HeaderRequestID)

	// The middleware logs after the handler returns; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for mu.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	var rec map[string]interface{}
	if err := json.Unmarshal(mu.Bytes(), &rec); err != nil {
		t.Fatalf("request log is not JSON: %v\n%s", err, mu.String())
	}
	if rec["req_id"] != wantID {
		t.Errorf("logged req_id = %v, response header %q", rec["req_id"], wantID)
	}
	if rec["path"] != "/v1/classify" || rec["status"] != float64(200) {
		t.Errorf("log record: %v", rec)
	}
	if rec["items"] != float64(1) || rec["batch"] != float64(1) {
		t.Errorf("serving metadata missing from log: %v", rec)
	}
}

// TestTraceSpanPerRequest: with a global tracer installed, each
// request records an HTTP span carrying a trace ID.
func TestTraceSpanPerRequest(t *testing.T) {
	tr := telemetry.NewTracer()
	telemetry.SetGlobal(tr)
	defer telemetry.SetGlobal(nil)

	_, ts := newObsServer(t, Config{MaxDelay: time.Millisecond})
	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var httpSpan *telemetry.Span
	for _, sp := range tr.Spans() {
		if sp.Name == "HTTP /v1/classify" {
			sp := sp
			httpSpan = &sp
		}
	}
	if httpSpan == nil {
		t.Fatal("no HTTP span recorded")
	}
	if httpSpan.TID != telemetry.TrackHTTP || len(httpSpan.Trace) != 32 {
		t.Fatalf("HTTP span = %+v, want TrackHTTP lane and 128-bit trace", *httpSpan)
	}
	if httpSpan.Dur <= 0 {
		t.Fatalf("span duration %d", httpSpan.Dur)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the slog handler writes
// from the serving goroutine while the test reads).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}
func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
func (b *syncBuffer) String() string { return string(b.Bytes()) }
