package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/decode"
	"enmc/internal/quant"
	"enmc/internal/telemetry"
	"enmc/internal/tenant"
	"enmc/internal/workload"
)

// versionedFake tags a fakeBackend with a model version, like a
// Swappable would.
type versionedFake struct {
	fakeBackend
	version string
}

func (v *versionedFake) ModelVersion() string { return v.version }

func tenantResolver(t *testing.T, f tenant.File) *tenant.Resolver {
	t.Helper()
	r, err := tenant.NewResolver(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func postJSON(t *testing.T, ts *httptest.Server, path, key string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(tenant.HeaderAPIKey, key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantRejection asserts the 429/503 contract: the expected status, a
// positive whole-second Retry-After, and a machine-readable reason.
func wantRejection(t *testing.T, resp *http.Response, status int, reason string) errorBody {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d without Retry-After", status)
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q not a positive whole-second value", ra)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if eb.Reason != reason {
		t.Fatalf("reason = %q, want %q (error: %s)", eb.Reason, reason, eb.Error)
	}
	if eb.Error == "" {
		t.Fatal("empty error message")
	}
	return eb
}

// TestTenantQuota429: a tenant over its token bucket gets 429 with
// the bucket's real refill time and reason "quota"; other tenants are
// unaffected; the rejection is attributed in /v1/tenants.
func TestTenantQuota429(t *testing.T) {
	res := tenantResolver(t, tenant.File{Tenants: []tenant.Spec{
		{Name: "tiny", Key: "k-tiny", Class: "interactive", Rate: 0.25, Burst: 1},
		{Name: "big", Key: "k-big", Class: "interactive", Rate: 1000},
	}})
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{Tenants: res, MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The labeled counters live on the shared telemetry registry (they
	// survive resolver reloads, and therefore test reruns in one
	// process) — baseline them and assert deltas.
	counter := func(name, ten string) int64 {
		return telemetry.Default().Counter(telemetry.LabeledName(
			name, map[string]string{"tenant": ten, "class": "interactive"})).Value()
	}
	baseTinyAdmitted := counter("tenant.admitted", "tiny")
	baseTinyThrottled := counter("tenant.throttled", "tiny")
	baseBigAdmitted := counter("tenant.admitted", "big")
	baseBigThrottled := counter("tenant.throttled", "big")

	body := ClassifyRequest{H: make([]float32, 8), TopK: 1}
	resp := postJSON(t, ts, "/v1/classify", "k-tiny", body)
	var ok ClassifyResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ok.Tenant != "tiny" || ok.QoSClass != "interactive" {
		t.Fatalf("response identity %q/%q", ok.Tenant, ok.QoSClass)
	}

	// Bucket empty; refill is 1 token / 4s, so Retry-After must be the
	// real wait (4s), not the configured generic hint (1s).
	resp = postJSON(t, ts, "/v1/classify", "k-tiny", body)
	eb := wantRejection(t, resp, http.StatusTooManyRequests, "quota")
	_ = eb
	resp2 := postJSON(t, ts, "/v1/classify", "k-tiny", body)
	ra := resp2.Header.Get("Retry-After")
	resp2.Body.Close()
	if secs, _ := strconv.Atoi(ra); secs < 2 {
		t.Fatalf("Retry-After %q, want the bucket's real refill time (>= 2s)", ra)
	}

	// The other tenant still sails through.
	resp = postJSON(t, ts, "/v1/classify", "k-big", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled tenant got %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Attribution: /v1/tenants reports tiny's throttles, big's admits.
	resp, err = ts.Client().Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tl TenantsResponse
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := map[string]tenant.Summary{}
	for _, sum := range tl.Tenants {
		got[sum.Tenant] = sum
	}
	if d := got["tiny"].Throttled - baseTinyThrottled; d < 2 {
		t.Fatalf("tiny throttled delta %d: %+v", d, got["tiny"])
	}
	if d := got["tiny"].Admitted - baseTinyAdmitted; d != 1 {
		t.Fatalf("tiny admitted delta %d: %+v", d, got["tiny"])
	}
	if d := got["big"].Admitted - baseBigAdmitted; d != 1 {
		t.Fatalf("big admitted delta %d: %+v", d, got["big"])
	}
	if d := got["big"].Throttled - baseBigThrottled; d != 0 {
		t.Fatalf("big throttled delta %d: %+v", d, got["big"])
	}
	if got["tiny"].SLO.WindowSeconds <= 0 {
		t.Fatal("tenant SLO window missing")
	}
}

// TestQuotaChargesBatchItems: /v1/classify_batch charges one token
// per item, so a batch larger than the remaining quota throttles.
func TestQuotaChargesBatchItems(t *testing.T) {
	res := tenantResolver(t, tenant.File{Tenants: []tenant.Spec{
		{Name: "cap", Key: "k", Rate: 0.5, Burst: 4},
	}})
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{Tenants: res})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := ClassifyBatchRequest{Batch: [][]float32{make([]float32, 8), make([]float32, 8), make([]float32, 8)}, TopK: 1}
	resp := postJSON(t, ts, "/v1/classify_batch", "k", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch of 3 against burst 4: %d", resp.StatusCode)
	}
	var br ClassifyBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if br.Tenant != "cap" || br.QoSClass != "standard" {
		t.Fatalf("batch identity %q/%q", br.Tenant, br.QoSClass)
	}
	// 1 token left; a 3-item batch must throttle.
	resp = postJSON(t, ts, "/v1/classify_batch", "k", batch)
	wantRejection(t, resp, http.StatusTooManyRequests, "quota")
}

// TestDrainingReasons: once drain begins, classify and classify_batch
// answer 503 with Retry-After and reason "draining".
func TestDrainingReasons(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()

	resp := postJSON(t, ts, "/v1/classify", "", ClassifyRequest{H: make([]float32, 8)})
	wantRejection(t, resp, http.StatusServiceUnavailable, "draining")
	resp = postJSON(t, ts, "/v1/classify_batch", "", ClassifyBatchRequest{Batch: [][]float32{make([]float32, 8)}})
	wantRejection(t, resp, http.StatusServiceUnavailable, "draining")
}

// saturateClass launches posters one at a time until the class queue
// is pinned full: the flush worker is parked inside the gated backend
// (fb.calls >= 1) and the queue has held `want` items continuously
// for 100ms. With the flush channel unbuffered that means the gather
// stage is blocked mid-send and the queue can no longer drain, so a
// subsequent synchronous probe must be rejected — never admitted and
// parked behind the gate. Returns how many posters were launched;
// each signals done when its request completes.
func saturateClass(t *testing.T, s *Server, fb *fakeBackend, class tenant.Class, want int, launch func()) int {
	t.Helper()
	launched := 0
	deadline := time.Now().Add(15 * time.Second)
	var stableSince time.Time
	for {
		if !time.Now().Before(deadline) {
			t.Fatalf("class %s queue never pinned at %d", class, want)
		}
		n := s.b.q.LenClass(class)
		switch {
		case n < want || fb.calls.Load() < 1:
			stableSince = time.Time{}
			if n < want {
				launched++
				launch()
			}
		case stableSince.IsZero():
			stableSince = time.Now()
		case time.Since(stableSince) > 100*time.Millisecond:
			return launched
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadReason: a full class queue answers 429 with reason
// "overloaded" (and still carries Retry-After — the contract the
// audit enforces on every 429/503 path).
func TestOverloadReason(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 1, FlushWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Open the gate even on a Fatal path, or ts.Close deadlocks on the
	// posters parked behind the gated backend.
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(fb.gate) }) }
	defer openGate()

	// Saturate: park flushes on the gate, fill the one-slot queue, and
	// only probe once the queue is pinned (cannot drain).
	body := ClassifyRequest{H: make([]float32, 8)}
	done := make(chan struct{}, 256)
	launched := saturateClass(t, s, fb, tenant.Standard, 1, func() {
		go func() {
			resp := postJSON(t, ts, "/v1/classify", "", body)
			resp.Body.Close()
			done <- struct{}{}
		}()
	})
	resp := postJSON(t, ts, "/v1/classify", "", body)
	wantRejection(t, resp, http.StatusTooManyRequests, "overloaded")
	openGate()
	for i := 0; i < launched; i++ {
		<-done
	}
	s.Drain()
}

// TestPinnedModelRouting: a tenant pinned to a model version is
// served by that version's backend — two distinct model_version
// values from one server — on both the micro-batched and the
// caller-batched paths.
func TestPinnedModelRouting(t *testing.T) {
	active := &versionedFake{fakeBackend: fakeBackend{hidden: 8, categories: 32}, version: "v2"}
	old := &versionedFake{fakeBackend: fakeBackend{hidden: 8, categories: 32}, version: "v1"}
	res := tenantResolver(t, tenant.File{Tenants: []tenant.Spec{
		{Name: "fresh", Key: "k-fresh", Class: "interactive"},
		{Name: "frozen", Key: "k-frozen", Class: "batch", ModelVersion: "v1"},
	}})
	s, err := New(active, Config{
		Tenants:  res,
		MaxDelay: time.Millisecond,
		PinnedBackend: func(version string) (Backend, error) {
			if version != "v1" {
				t.Fatalf("pin resolver asked for %q", version)
			}
			return old, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := ClassifyRequest{H: make([]float32, 8), TopK: 1}
	for _, tc := range []struct{ key, wantVer, wantTenant string }{
		{"k-fresh", "v2", "fresh"},
		{"k-frozen", "v1", "frozen"},
	} {
		resp := postJSON(t, ts, "/v1/classify", tc.key, body)
		var cr ClassifyResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.key, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cr.ModelVersion != tc.wantVer || cr.Tenant != tc.wantTenant {
			t.Fatalf("%s: served version %q tenant %q, want %q/%q",
				tc.key, cr.ModelVersion, cr.Tenant, tc.wantVer, tc.wantTenant)
		}
	}
	// Caller-formed batch takes the same pin.
	bresp := postJSON(t, ts, "/v1/classify_batch", "k-frozen",
		ClassifyBatchRequest{Batch: [][]float32{make([]float32, 8)}, TopK: 1})
	var br ClassifyBatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if br.ModelVersion != "v1" {
		t.Fatalf("batch endpoint served %q, want pinned v1", br.ModelVersion)
	}
	if old.calls.Load() == 0 {
		t.Fatal("pinned backend never invoked")
	}
}

// TestDecodeSessionTenantQuota: decode session opens count against
// the owner tenant's session cap; the cap rejects with 429 reason
// "session_quota"; closing the session (or its eviction) frees the
// slot.
func TestDecodeSessionTenantQuota(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "decode-tenant", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 11, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 96, Hidden: 32, Reduced: 8, Precision: quant.INT4, Seed: 3,
	}, core.TrainOptions{Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec := workload.NewDecoderFor(inst.Classifier, 7, 12)
	svc := decode.NewService(decode.Config{TopM: 12}, dec, func() decode.Scorer {
		return decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{})
	})
	defer svc.Shutdown()

	res := tenantResolver(t, tenant.File{Tenants: []tenant.Spec{
		{Name: "capped", Key: "k", Class: "interactive", MaxSessions: 1},
	}})
	s, err := New(&fakeBackend{hidden: 32, categories: 96}, Config{Tenants: res})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	s.SetDecode(svc)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	h0 := make([]float32, 32)
	open := DecodeRequest{H0: h0, MaxTokens: 1, Stream: "ndjson"}
	resp := postJSON(t, ts, "/v1/decode", "k", open)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first open: %d", resp.StatusCode)
	}
	_, done := readNDJSON(t, resp)
	if done.Session == "" || done.Finished {
		t.Fatalf("expected a live session, got %+v", done)
	}

	// The tenant is at its cap of 1.
	resp = postJSON(t, ts, "/v1/decode", "k", open)
	wantRejection(t, resp, http.StatusTooManyRequests, "session_quota")

	// Close frees the slot through the ownership hook.
	resp = postJSON(t, ts, "/v1/decode", "k", DecodeRequest{Session: done.Session, Close: true})
	resp.Body.Close()
	resp = postJSON(t, ts, "/v1/decode", "k", open)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open after close: %d", resp.StatusCode)
	}
	_, done2 := readNDJSON(t, resp)
	resp = postJSON(t, ts, "/v1/decode", "k", DecodeRequest{Session: done2.Session, Close: true})
	resp.Body.Close()
}

// TestDecodeServiceLimitReason: the service-wide session cap keeps
// its 429 but now carries reason "session_limit".
func TestDecodeServiceLimitReason(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "decode-limit", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 11, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 96, Hidden: 32, Reduced: 8, Precision: quant.INT4, Seed: 3,
	}, core.TrainOptions{Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec := workload.NewDecoderFor(inst.Classifier, 7, 12)
	svc := decode.NewService(decode.Config{TopM: 12, MaxSessions: 1}, dec, func() decode.Scorer {
		return decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{})
	})
	defer svc.Shutdown()
	s, err := New(&fakeBackend{hidden: 32, categories: 96}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	s.SetDecode(svc)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	open := DecodeRequest{H0: make([]float32, 32), MaxTokens: 1, Stream: "ndjson"}
	resp := postJSON(t, ts, "/v1/decode", "", open)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first open: %d", resp.StatusCode)
	}
	_, done := readNDJSON(t, resp)
	resp = postJSON(t, ts, "/v1/decode", "", open)
	wantRejection(t, resp, http.StatusTooManyRequests, "session_limit")
	resp = postJSON(t, ts, "/v1/decode", "", DecodeRequest{Session: done.Session, Close: true})
	resp.Body.Close()

	// The anonymous tenant's counter must be back at zero (the release
	// hook ran), so a fresh open succeeds.
	anon := s.Tenants().Resolve("")
	if anon.Sessions() != 0 {
		t.Fatalf("anonymous tenant still holds %d sessions after close", anon.Sessions())
	}
}

// TestWFQClassesSeparateQueues: saturating the batch class must not
// reject interactive admissions — the queues are per class.
func TestWFQClassesSeparateQueues(t *testing.T) {
	res := tenantResolver(t, tenant.File{Tenants: []tenant.Spec{
		{Name: "int", Key: "k-int", Class: "interactive"},
		{Name: "bat", Key: "k-bat", Class: "batch"},
	}})
	fb := &fakeBackend{hidden: 8, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{Tenants: res, MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 2, FlushWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Open the gate even on a Fatal path, or ts.Close deadlocks on the
	// posters parked behind the gated backend.
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(fb.gate) }) }
	defer openGate()

	body := ClassifyRequest{H: make([]float32, 8)}
	done := make(chan int, 256)
	// Saturate the batch class: with the backend gated the pipeline
	// holds 1 in-flight + 1 gathered + QueueCap queued, and once the
	// queue is pinned full it cannot drain until the gate opens.
	launched := saturateClass(t, s, fb, tenant.Batch, 2, func() {
		go func() {
			resp := postJSON(t, ts, "/v1/classify", "k-bat", body)
			resp.Body.Close()
			done <- resp.StatusCode
		}()
	})
	// The batch class is pinned full: a synchronous probe rejects
	// immediately.
	resp := postJSON(t, ts, "/v1/classify", "k-bat", body)
	wantRejection(t, resp, http.StatusTooManyRequests, "overloaded")
	// Interactive still admits (its own queue is empty). It will block
	// behind the gated backend, so check admission via a goroutine that
	// must NOT see 429.
	intDone := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts, "/v1/classify", "k-int", body)
		resp.Body.Close()
		intDone <- resp.StatusCode
	}()
	select {
	case code := <-intDone:
		t.Fatalf("interactive answered %d while gated; want admission (blocked)", code)
	case <-time.After(200 * time.Millisecond):
		// Still queued/blocked: admitted, not rejected.
	}
	openGate()
	if code := <-intDone; code != http.StatusOK {
		t.Fatalf("interactive final status %d", code)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	s.Drain()
}
