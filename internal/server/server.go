// Package server is the production serving layer over the ENMC
// inference facade: an HTTP/JSON classification service with dynamic
// micro-batching, bounded admission, per-request deadlines, and
// graceful degradation under load.
//
// Endpoints:
//
//	POST /v1/classify        {"h":[...], "top_k":5}  — single item,
//	     admitted into the micro-batching queue
//	POST /v1/classify_batch  {"batch":[[...],...], "top_k":5} — a
//	     caller-formed batch, run directly on the backend worker pool
//	     under the request's context (deadline threads down to
//	     core.ClassifyApprox item boundaries)
//	POST /v1/decode          {"h0":[...]} / {"session":"..."} — open or
//	     continue a streaming decode session (SSE or NDJSON frames,
//	     one per emitted token; see decode.go and internal/decode)
//	GET  /v1/tenants         — per-tenant QoS counters + SLO windows
//	GET  /healthz            — liveness (always 200 while serving)
//	GET  /readyz             — readiness (503 once Drain has begun)
//
// Load behavior: requests resolve to a tenant (X-Enmc-Api-Key against
// the hot-reloadable tenant config) whose priority class picks the
// admission queue — a deficit-round-robin weighted-fair scheduler
// across interactive/standard/batch (see internal/tenant). A full
// class queue answers 429 with Retry-After instead of queueing
// unboundedly; past the watermark the screening budget TopM shrinks
// toward MFloor class-aware (batch first, interactive last — see
// degrade.go), surfaced per-response as "m"/"degraded"/"class" and in
// telemetry. Every 429/503 carries Retry-After and a machine-readable
// "reason". Drain fails readiness first, stops intake (503), and
// completes every admitted request.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"enmc/internal/decode"
	"enmc/internal/telemetry"
	"enmc/internal/tenant"
)

// Per-endpoint instruments on the default telemetry registry.
// mSwapTotal/mCanaryRejected are handles to the lifecycle counters
// the registry manager owns (same names, same registry entries) so
// /v1/model can report them without an import cycle.
var (
	mClassifyNs      = telemetry.Default().Histogram("server.http.classify_ns", telemetry.LatencyBuckets())
	mClassifyBatchNs = telemetry.Default().Histogram("server.http.classify_batch_ns", telemetry.LatencyBuckets())
	mRequests        = telemetry.Default().Counter("server.http.requests")
	mStatus429       = telemetry.Default().Counter("server.http.status_429")
	mStatus5xx       = telemetry.Default().Counter("server.http.status_5xx")
	mSwapTotal       = telemetry.Default().Counter("registry.swap_total")
	mCanaryRejected  = telemetry.Default().Counter("registry.canary_rejected")
)

// Config tunes the serving layer. Zero values take the documented
// defaults in New.
type Config struct {
	// MaxBatch flushes the micro-batch queue at this many pending
	// items (default 32).
	MaxBatch int
	// MaxDelay flushes the queue when the batch has been open this
	// long (default 2ms) — the latency bound a single idle request
	// pays for batching.
	MaxDelay time.Duration
	// QueueCap bounds each priority class's admission queue; a full
	// class queue answers 429 (default 256).
	QueueCap int
	// FlushWorkers is the number of batches that may be in flight on
	// the backend concurrently (default 2).
	FlushWorkers int
	// TopM is the screening budget at idle (default Categories/64,
	// min 1).
	TopM int
	// MFloor is the degradation floor TopM shrinks toward under
	// pressure (default max(1, TopM/4)).
	MFloor int
	// Watermark is the queue-depth fraction of QueueCap past which
	// degradation engages (default 0.5).
	Watermark float64
	// MaxTopK caps the per-request top_k (default 64).
	MaxTopK int
	// MaxBatchItems caps a /v1/classify_batch request (default 1024).
	MaxBatchItems int
	// RetryAfter is the hint sent with 429/503 (default 1s).
	RetryAfter time.Duration
	// RequestLog emits one structured record per /v1/* request (nil:
	// request logging off — the nil receiver records nothing).
	RequestLog *telemetry.RequestLog
	// SLO is the rolling-window tracker behind GET /v1/slo and the
	// slo_* gauges on /metrics (nil: a default 5m/99.9% tracker).
	SLO *telemetry.SLO
	// Tenants resolves API keys to tenant identities (nil: a built-in
	// single-tenant resolver — every request is the anonymous
	// standard-class tenant with no quota).
	Tenants *tenant.Resolver
	// ClassWeights overrides the DRR quantum per priority class,
	// indexed like tenant.Classes (zero entries take
	// tenant.DefaultWeights: 8/4/1).
	ClassWeights [tenant.NumClasses]int
	// ShedFrac is the fraction of a higher class's queue capacity past
	// which lower classes are shed at admission (default 0.75).
	ShedFrac float64
	// PinnedBackend resolves a tenant's pinned model version to a
	// serving backend (typically registry.Manager.BackendFor). Nil
	// rejects pinned tenants' requests with an explanatory error.
	PinnedBackend func(version string) (Backend, error)
}

func (c *Config) defaults(categories int) {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.FlushWorkers <= 0 {
		c.FlushWorkers = 2
	}
	if c.TopM <= 0 {
		c.TopM = categories / 64
		if c.TopM < 1 {
			c.TopM = 1
		}
	}
	if c.MFloor <= 0 {
		c.MFloor = c.TopM / 4
		if c.MFloor < 1 {
			c.MFloor = 1
		}
	}
	if c.Watermark <= 0 || c.Watermark >= 1 {
		c.Watermark = 0.5
	}
	if c.MaxTopK <= 0 {
		c.MaxTopK = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ShedFrac <= 0 || c.ShedFrac >= 1 {
		c.ShedFrac = 0.75
	}
}

// ReloadFunc triggers a model reload: version "" means "newest
// available", a non-empty version pins the target. It returns the
// active version after the attempt — on a rejected canary or failed
// load the previous version keeps serving and the error says why.
type ReloadFunc func(ctx context.Context, version string) (active string, err error)

// Server is the HTTP serving layer. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg       Config
	backend   Backend
	b         *batcher
	ready     chan struct{} // closed when draining
	mux       *http.ServeMux
	handler   http.Handler // mux wrapped in the instrument middleware
	reloader  atomic.Pointer[ReloadFunc]
	decodeSvc atomic.Pointer[decode.Service]
	reqLog    *telemetry.RequestLog
	slo       *telemetry.SLO
	tenants   *tenant.Resolver
	tstats    *tenant.Stats
}

// New builds a Server over the backend and starts its batching
// goroutines. The server is immediately ready.
func New(backend Backend, cfg Config) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("server: nil backend")
	}
	cfg.defaults(backend.Categories())
	if cfg.MFloor > cfg.TopM {
		return nil, fmt.Errorf("server: MFloor %d exceeds TopM %d", cfg.MFloor, cfg.TopM)
	}
	slo := cfg.SLO
	if slo == nil {
		slo = telemetry.NewSLO(telemetry.SLOConfig{})
	}
	tenants := cfg.Tenants
	if tenants == nil {
		// Single-tenant fallback: everything resolves to the built-in
		// anonymous identity, so the tenancy path is uniform.
		var err error
		tenants, err = tenant.NewResolver(tenant.File{})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:     cfg,
		backend: backend,
		b:       newBatcher(cfg, backend),
		ready:   make(chan struct{}),
		mux:     http.NewServeMux(),
		reqLog:  cfg.RequestLog,
		slo:     slo,
		tenants: tenants,
		tstats:  tenant.NewStats(telemetry.Default(), telemetry.SLOConfig{}),
	}
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/classify_batch", s.handleClassifyBatch)
	s.mux.HandleFunc("/v1/decode", s.handleDecode)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/model/reload", s.handleModelReload)
	s.mux.HandleFunc("/v1/slo", s.handleSLO)
	s.mux.HandleFunc("/v1/tenants", s.handleTenants)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", telemetry.PrometheusHandler(telemetry.Default(),
		func() { s.slo.Publish(telemetry.Default()) }))
	s.handler = s.instrument(s.mux)
	return s, nil
}

// SetReloader installs the model-reload trigger behind POST
// /v1/model/reload (typically the registry manager's Reload). Safe
// to call while serving; nil uninstalls.
func (s *Server) SetReloader(f ReloadFunc) {
	if f == nil {
		s.reloader.Store(nil)
		return
	}
	s.reloader.Store(&f)
}

// Handler returns the HTTP handler serving all endpoints, wrapped in
// the observability middleware (request IDs, trace spans, SLO
// observation, request logging — see middleware.go).
func (s *Server) Handler() http.Handler { return s.handler }

// SLOTracker returns the server's rolling-window SLO tracker.
func (s *Server) SLOTracker() *telemetry.SLO { return s.slo }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// Drain performs the graceful-shutdown sequence: readiness fails
// first (so load balancers stop routing here), intake stops (new
// work gets 503 + Retry-After), and the call blocks until every
// already-admitted request has been answered. Idempotent; safe to
// call from a signal handler goroutine. The caller still owns the
// http.Server and should Shutdown it after Drain returns so in-
// flight response writes complete.
func (s *Server) Drain() {
	select {
	case <-s.ready:
	default:
		close(s.ready)
	}
	s.b.drain()
}

// --- request/response bodies ---

// ClassifyRequest is the /v1/classify body.
type ClassifyRequest struct {
	H    []float32 `json:"h"`
	TopK int       `json:"top_k"`
}

// ClassifyResponse is the /v1/classify body: the prediction plus the
// serving metadata (budget actually used, whether degradation was
// active, micro-batch size, queue wait) that makes degradation
// observable per-request.
type ClassifyResponse struct {
	Class     int         `json:"class"`
	TopK      []Candidate `json:"topk,omitempty"`
	M         int         `json:"m"`
	Degraded  bool        `json:"degraded"`
	BatchSize int         `json:"batch_size"`
	QueueUs   int64       `json:"queue_us"`
	// Tenant/QoSClass report the QoS identity the request was served
	// under — which weighted-fair queue it waited in and which rung of
	// the degradation ladder chose m.
	Tenant   string `json:"tenant,omitempty"`
	QoSClass string `json:"qos_class,omitempty"`
	// ModelVersion is the registry version that served this request
	// (empty for unversioned backends); during a hot swap it names
	// the model the batch actually ran on. VersionSkew reports a
	// sharded deployment mid-rolling-update.
	ModelVersion string `json:"model_version,omitempty"`
	VersionSkew  bool   `json:"version_skew,omitempty"`
	// Partial is true when part of the class space was unreachable
	// and the top-k is the merge of the surviving cluster shards;
	// MissingShards lists what was absent. Always false off-cluster.
	Partial       bool  `json:"partial"`
	MissingShards []int `json:"missing_shards,omitempty"`
}

// ClassifyBatchRequest is the /v1/classify_batch body.
type ClassifyBatchRequest struct {
	Batch [][]float32 `json:"batch"`
	TopK  int         `json:"top_k"`
}

// BatchItem is one result in a ClassifyBatchResponse.
type BatchItem struct {
	Class int         `json:"class"`
	TopK  []Candidate `json:"topk,omitempty"`
}

// ClassifyBatchResponse is the /v1/classify_batch body.
type ClassifyBatchResponse struct {
	Results       []BatchItem `json:"results"`
	M             int         `json:"m"`
	Degraded      bool        `json:"degraded"`
	Tenant        string      `json:"tenant,omitempty"`
	QoSClass      string      `json:"qos_class,omitempty"`
	ModelVersion  string      `json:"model_version,omitempty"`
	VersionSkew   bool        `json:"version_skew,omitempty"`
	Partial       bool        `json:"partial"`
	MissingShards []int       `json:"missing_shards,omitempty"`
}

// ModelStatusResponse is the GET /v1/model body: the active model
// identity plus lifecycle counters.
type ModelStatusResponse struct {
	Version       string   `json:"version"`
	Categories    int      `json:"categories"`
	Hidden        int      `json:"hidden"`
	ShardVersions []string `json:"shard_versions,omitempty"`
	VersionSkew   bool     `json:"version_skew,omitempty"`
	SwapTotal     int64    `json:"swap_total"`
	CanaryReject  int64    `json:"canary_rejected"`
	Draining      bool     `json:"draining"`
}

// ReloadRequest is the optional POST /v1/model/reload body; an empty
// body (or empty version) reloads to the newest registry version.
type ReloadRequest struct {
	Version string `json:"version"`
}

// ReloadResponse is the POST /v1/model/reload success body.
type ReloadResponse struct {
	Version string `json:"version"`
}

type errorBody struct {
	Error string `json:"error"`
	// Reason is the machine-readable rejection class, set on every
	// 429/503: "overloaded", "shed", "quota", "session_limit",
	// "session_quota", "draining", "backend".
	Reason string `json:"reason,omitempty"`
}

// --- handlers ---

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { mClassifyNs.Observe(float64(time.Since(start))) }()
	mRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.H) != s.backend.Hidden() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("feature length %d, want %d", len(body.H), s.backend.Hidden()))
		return
	}
	topK := s.clampTopK(body.TopK)
	ten := s.tenantFor(r)
	ts := s.tstats.For(ten)
	if !s.allowQuota(w, ten, ts, 1) {
		return
	}

	req := &request{
		ctx:        r.Context(),
		h:          body.H,
		topK:       topK,
		enq:        time.Now(),
		resp:       make(chan reply, 1),
		class:      ten.Class,
		tenantName: ten.Name,
		pinned:     ten.Pinned,
	}
	if tc, ok := telemetry.TraceCtxFrom(r.Context()); ok {
		req.tc = tc
	}
	if err := s.b.enqueue(req); err != nil {
		if err == ErrOverloaded || err == ErrShed {
			ts.Shed.Inc()
		}
		s.writeUnavailable(w, err)
		return
	}
	meta := metaFrom(r.Context())
	select {
	case rep := <-req.resp:
		if meta != nil {
			meta.items = 1
			meta.batch = rep.batch
			meta.queueNs = rep.queuedNs
			meta.version = rep.version
			meta.degraded = rep.degraded
			meta.partial = rep.partial.Partial
			meta.missing = rep.partial.MissingShards
			if rep.err != nil {
				meta.errMsg = rep.err.Error()
			}
		}
		if rep.err != nil {
			mStatus5xx.Inc()
			s.retryAfterHeader(w)
			writeErrorReason(w, http.StatusServiceUnavailable, "backend", rep.err.Error())
			return
		}
		ts.Admitted.Inc()
		if rep.degraded {
			ts.Degraded.Inc()
		}
		writeJSON(w, http.StatusOK, ClassifyResponse{
			Class:         rep.out.Class,
			TopK:          rep.out.TopK,
			M:             rep.m,
			Degraded:      rep.degraded,
			BatchSize:     rep.batch,
			QueueUs:       rep.queuedNs / 1e3,
			Tenant:        ten.Name,
			QoSClass:      string(ten.Class),
			ModelVersion:  rep.version,
			VersionSkew:   s.versionSkew(),
			Partial:       rep.partial.Partial,
			MissingShards: rep.partial.MissingShards,
		})
	case <-r.Context().Done():
		// The flush worker will still drain req.resp (buffered), so
		// nothing leaks; the client has gone or timed out.
		mStatus5xx.Inc()
		if meta != nil {
			meta.errMsg = r.Context().Err().Error()
		}
		writeError(w, http.StatusGatewayTimeout, r.Context().Err().Error())
	}
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { mClassifyBatchNs.Observe(float64(time.Since(start))) }()
	mRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.Draining() {
		s.writeUnavailable(w, ErrDraining)
		return
	}
	var body ClassifyBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(body.Batch) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(body.Batch), s.cfg.MaxBatchItems))
		return
	}
	for i, h := range body.Batch {
		if len(h) != s.backend.Hidden() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("item %d: feature length %d, want %d", i, len(h), s.backend.Hidden()))
			return
		}
	}
	topK := s.clampTopK(body.TopK)
	ten := s.tenantFor(r)
	ts := s.tstats.For(ten)
	// A caller-formed batch charges its item count against the quota —
	// one bucket token per classified item.
	if !s.allowQuota(w, ten, ts, float64(len(body.Batch))) {
		return
	}
	if s.b.shouldShed(ten.Class) {
		ts.Shed.Inc()
		mShed.Inc()
		s.writeUnavailable(w, ErrShed)
		return
	}

	// Caller-formed batches bypass the micro-batcher (they already
	// amortize) but share the class-aware degradation policy, and run
	// under the request's own context so a client deadline aborts
	// between items.
	backend := s.backend
	if ten.Pinned != "" {
		var perr error
		backend, perr = s.b.resolvePinned(ten.Pinned)
		if perr != nil {
			mStatus5xx.Inc()
			s.retryAfterHeader(w)
			writeErrorReason(w, http.StatusServiceUnavailable, "backend", perr.Error())
			return
		}
	}
	m, degraded := s.b.effectiveM(ten.Class)
	outs, version, partial, err := classifyTagged(r.Context(), backend, body.Batch, m, topK)
	if meta := metaFrom(r.Context()); meta != nil {
		meta.items = len(body.Batch)
		meta.version = version
		meta.degraded = degraded
		meta.partial = partial.Partial
		meta.missing = partial.MissingShards
		if err != nil {
			meta.errMsg = err.Error()
		}
	}
	if err != nil {
		mStatus5xx.Inc()
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	ts.Admitted.Inc()
	if degraded {
		ts.Degraded.Inc()
	}
	resp := ClassifyBatchResponse{
		Results: make([]BatchItem, len(outs)), M: m, Degraded: degraded,
		Tenant: ten.Name, QoSClass: string(ten.Class),
		ModelVersion: version, VersionSkew: s.versionSkew(),
		Partial: partial.Partial, MissingShards: partial.MissingShards,
	}
	for i, o := range outs {
		resp.Results[i] = BatchItem{Class: o.Class, TopK: o.TopK}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModel reports the active model: GET /v1/model.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := ModelStatusResponse{
		Version:      versionOf(s.backend),
		Categories:   s.backend.Categories(),
		Hidden:       s.backend.Hidden(),
		VersionSkew:  s.versionSkew(),
		SwapTotal:    mSwapTotal.Value(),
		CanaryReject: mCanaryRejected.Value(),
		Draining:     s.Draining(),
	}
	if sv, ok := shardVersionsOf(s.backend); ok {
		resp.ShardVersions = sv
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelReload triggers a hot swap: POST /v1/model/reload with
// an optional {"version": "..."} body. 200 carries the now-active
// version; 409 means the candidate was rejected (failed canary, bad
// checksum, load error) and the previous version is still serving;
// 501 means this server has no registry wired.
func (s *Server) handleModelReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	fp := s.reloader.Load()
	if fp == nil {
		writeError(w, http.StatusNotImplemented, "no model registry configured (-model-root)")
		return
	}
	var body ReloadRequest
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	active, err := (*fp)(r.Context(), body.Version)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Version: active})
}

// handleSLO reports the rolling-window SLO summary: GET /v1/slo.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.slo.Summary())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// --- helpers ---

// versionSkew reports whether the backend is serving mixed model
// versions (sharded rolling update in flight).
func (s *Server) versionSkew() bool {
	if sr, ok := s.backend.(SkewReporter); ok {
		return sr.VersionSkew()
	}
	return false
}

// shardVersionsOf unwraps to a per-shard version list when the
// backend (or the backend inside a Swappable) is sharded.
func shardVersionsOf(b Backend) ([]string, bool) {
	if sw, ok := b.(*Swappable); ok {
		b = sw.Current()
	}
	if sh, ok := b.(*Sharded); ok {
		return sh.ShardVersions(), true
	}
	return nil, false
}

func (s *Server) clampTopK(k int) int {
	if k <= 0 {
		k = 1
	}
	if k > s.cfg.MaxTopK {
		k = s.cfg.MaxTopK
	}
	if l := s.backend.Categories(); k > l {
		k = l
	}
	return k
}

// retryAfterHeader sets the configured Retry-After hint (whole
// seconds, min 1) — every 429/503 carries one.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// writeUnavailable maps admission errors: full class queue or load
// shed → 429, draining → 503, all with a Retry-After hint and a
// machine-readable reason.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	s.retryAfterHeader(w)
	code := http.StatusServiceUnavailable
	reason := "draining"
	switch err {
	case ErrOverloaded:
		code = http.StatusTooManyRequests
		reason = "overloaded"
		mStatus429.Inc()
	case ErrShed:
		code = http.StatusTooManyRequests
		reason = "shed"
		mStatus429.Inc()
	}
	writeErrorReason(w, code, reason, err.Error())
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeErrorReason(w http.ResponseWriter, code int, reason, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Reason: reason})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
