package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/tenant"
	"enmc/internal/workload"
)

// fakeBackend is a controllable Backend: when gate is non-nil every
// ClassifyBatch blocks until the gate closes (or the ctx dies),
// which lets tests hold the pipeline at a precise saturation point.
type fakeBackend struct {
	hidden     int
	categories int
	gate       chan struct{}

	calls atomic.Int64
	mu    sync.Mutex
	sizes []int
	ms    []int
}

func (f *fakeBackend) Hidden() int     { return f.hidden }
func (f *fakeBackend) Categories() int { return f.categories }

func (f *fakeBackend) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, error) {
	f.calls.Add(1)
	f.mu.Lock()
	f.sizes = append(f.sizes, len(batch))
	f.ms = append(f.ms, m)
	f.mu.Unlock()
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]Outcome, len(batch))
	for i := range out {
		c := i % f.categories
		out[i] = Outcome{Class: c, TopK: []Candidate{{Class: c, Logit: 1}}}
	}
	return out, nil
}

func classifyBody(t *testing.T, dim int) []byte {
	t.Helper()
	h := make([]float32, dim)
	for i := range h {
		h[i] = float32(i)
	}
	buf, err := json.Marshal(ClassifyRequest{H: h, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func postClassify(ts *httptest.Server, body []byte) (*http.Response, error) {
	return ts.Client().Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
}

// TestFlushOnTimeout: a lone request must not wait for the batch to
// fill — MaxDelay bounds its queueing and it flushes as a batch of 1.
func TestFlushOnTimeout(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{MaxBatch: 64, MaxDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.BatchSize != 1 {
		t.Fatalf("batch_size = %d, want 1", out.BatchSize)
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("flushed after %s: did not wait for MaxDelay", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("flush took %s", elapsed)
	}
}

// TestFlushOnSize: with a long MaxDelay, the only fast path out of
// the queue is filling the batch — MaxBatch concurrent requests must
// all return promptly in one flush.
func TestFlushOnSize(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{MaxBatch: 4, MaxDelay: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	var wg sync.WaitGroup
	sizes := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := postClassify(ts, classifyBody(t, 8))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			sizes[i] = out.BatchSize
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("size-triggered flush took %s", elapsed)
	}
	for i, sz := range sizes {
		if sz != 4 {
			t.Fatalf("request %d: batch_size = %d, want 4 (sizes %v)", i, sz, sizes)
		}
	}
}

// TestSaturation429: past the bounded queue the server must answer
// 429 with Retry-After — never hang or queue unboundedly — and the
// admitted requests must still complete once capacity frees up.
func TestSaturation429(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 2, FlushWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	baseRejected := mRejected.Value()
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := postClassify(ts, classifyBody(t, 8))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}

	// Wait until rejections are observable, then open the gate so the
	// admitted requests complete.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if mRejected.Value() > baseRejected {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	wg.Wait()
	s.Drain()

	var ok, too int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			too++
			if retryAfter[i] == "" {
				t.Fatalf("429 without Retry-After")
			}
		default:
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	if too == 0 {
		t.Fatalf("no 429 under saturation (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatalf("admitted requests did not complete")
	}
	if ok+too != n {
		t.Fatalf("ok=%d too=%d of %d", ok, too, n)
	}
}

// TestReadinessDuringDrain: Drain must fail /readyz first (while
// /healthz stays live), reject new work with 503, and complete every
// already-admitted request.
func TestReadinessDuringDrain(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/readyz") != http.StatusOK {
		t.Fatal("not ready before drain")
	}

	// Park one request inside the backend.
	inflight := make(chan int, 1)
	go func() {
		resp, err := postClassify(ts, classifyBody(t, 8))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	for fb.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Readiness flips while the in-flight request is still running.
	deadline := time.Now().Add(10 * time.Second)
	for get("/readyz") != http.StatusServiceUnavailable {
		if !time.Now().Before(deadline) {
			t.Fatal("readyz never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if get("/healthz") != http.StatusOK {
		t.Fatal("healthz failed during drain")
	}
	// New work is refused with 503 + Retry-After.
	resp, err := postClassify(ts, classifyBody(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	select {
	case <-drained:
		t.Fatal("drain finished with a request still gated")
	default:
	}
	close(fb.gate)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not finish")
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request failed during drain: %d", code)
	}
}

// TestDrainZeroFailures: every request admitted before drain begins
// must be answered 200; concurrent arrivals may only see 200, 429 or
// 503 — never a hang or another failure.
func TestDrainZeroFailures(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 50
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := postClassify(ts, classifyBody(t, 8))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	s.Drain()
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK && c != http.StatusTooManyRequests && c != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
}

// TestDegradationPolicy exercises the class-aware ladder directly:
// a class's own backlog shrinks only its own budget (full budget
// below the watermark, linear shrink above it, never below the
// floor), and a backlogged higher class floors every class below it
// while leaving classes above untouched.
func TestDegradationPolicy(t *testing.T) {
	cfg := Config{TopM: 16, MFloor: 2, QueueCap: 100, Watermark: 0.5}
	cfg.defaults(256)

	ix := tenant.Interactive.Index()
	bx := tenant.Batch.Index()

	// Rule 1: own-queue pressure, other classes idle.
	own := []struct {
		depth    int
		want     int
		degraded bool
	}{
		{0, 16, false},
		{50, 16, false},   // at the watermark: full budget
		{75, 9, true},     // halfway into the band
		{100, 2, true},    // full queue: floor
		{10_000, 2, true}, // beyond capacity still clamps to the floor
	}
	for _, c := range own {
		for _, class := range tenant.Classes {
			var depths [tenant.NumClasses]int
			depths[class.Index()] = c.depth
			m, degraded := effectiveMPolicy(cfg, depths, cfg.QueueCap, class)
			if m != c.want || degraded != c.degraded {
				t.Fatalf("class %s depth %d: m=%d degraded=%v, want m=%d degraded=%v",
					class, c.depth, m, degraded, c.want, c.degraded)
			}
			if m < cfg.MFloor {
				t.Fatalf("depth %d: budget %d under floor %d", c.depth, m, cfg.MFloor)
			}
		}
	}

	// Rule 2: an interactive backlog floors batch immediately but
	// leaves interactive's own budget governed by its own queue.
	var depths [tenant.NumClasses]int
	depths[ix] = 60 // past the watermark
	if m, degraded := effectiveMPolicy(cfg, depths, cfg.QueueCap, tenant.Batch); m != 2 || !degraded {
		t.Fatalf("batch under interactive pressure: m=%d degraded=%v, want floor 2", m, degraded)
	}
	if m, _ := effectiveMPolicy(cfg, depths, cfg.QueueCap, tenant.Interactive); m != 14 {
		t.Fatalf("interactive at depth 60: m=%d, want 14 (own linear shrink)", m)
	}

	// The asymmetric case that motivates the ladder: a batch flood
	// must not touch interactive quality at all.
	depths = [tenant.NumClasses]int{}
	depths[bx] = 100
	if m, degraded := effectiveMPolicy(cfg, depths, cfg.QueueCap, tenant.Interactive); m != 16 || degraded {
		t.Fatalf("interactive under batch flood: m=%d degraded=%v, want full budget", m, degraded)
	}
	if m, _ := effectiveMPolicy(cfg, depths, cfg.QueueCap, tenant.Batch); m != 2 {
		t.Fatalf("batch flood's own budget: m=%d, want floor 2", m)
	}
}

// TestShedPolicy: lower classes are shed at admission once a
// strictly-higher class's queue passes ShedFrac of capacity; the
// backlogged class itself is never shed by the rule.
func TestShedPolicy(t *testing.T) {
	cfg := Config{QueueCap: 100, ShedFrac: 0.75}
	cfg.defaults(64)
	// A bare batcher (no collector) so pushed depths stay put.
	b := &batcher{cfg: cfg, q: tenant.NewWFQ[*request](cfg.QueueCap, cfg.ClassWeights)}

	if b.shouldShed(tenant.Batch) || b.shouldShed(tenant.Interactive) {
		t.Fatal("shed with empty queues")
	}
	// Simulate an interactive backlog past the shed threshold.
	for i := 0; i < 80; i++ {
		if err := b.q.Push(tenant.Interactive, &request{class: tenant.Interactive}); err != nil {
			t.Fatal(err)
		}
	}
	if !b.shouldShed(tenant.Batch) || !b.shouldShed(tenant.Standard) {
		t.Fatal("lower classes not shed under interactive backlog")
	}
	if b.shouldShed(tenant.Interactive) {
		t.Fatal("the backlogged class shed itself")
	}
}

// TestClassifyDeadline: a request whose context expires while queued
// or gated must get 504, not hang.
func TestClassifyDeadline(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(fb.gate); s.Drain() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", bytes.NewReader(classifyBody(t, 8))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler hung past its deadline")
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
}

// TestBatchEndpointDeadline: /v1/classify_batch threads the request
// context into the backend, so an expired deadline aborts the batch.
func TestBatchEndpointDeadline(t *testing.T) {
	fb := &fakeBackend{hidden: 4, categories: 32, gate: make(chan struct{})}
	s, err := New(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(fb.gate); s.Drain() }()

	body, _ := json.Marshal(ClassifyBatchRequest{Batch: [][]float32{{1, 2, 3, 4}}, TopK: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/classify_batch", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch handler hung past its deadline")
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
}

// TestValidation covers the 4xx surface: wrong dimension, bad JSON,
// wrong method, oversized and empty batches.
func TestValidation(t *testing.T) {
	fb := &fakeBackend{hidden: 8, categories: 32}
	s, err := New(fb, Config{MaxBatchItems: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, v interface{}) int {
		buf, _ := json.Marshal(v)
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := post("/v1/classify", ClassifyRequest{H: make([]float32, 3)}); c != http.StatusBadRequest {
		t.Fatalf("wrong dim: %d", c)
	}
	if c := post("/v1/classify_batch", ClassifyBatchRequest{}); c != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", c)
	}
	big := ClassifyBatchRequest{Batch: make([][]float32, 5)}
	for i := range big.Batch {
		big.Batch[i] = make([]float32, 8)
	}
	if c := post("/v1/classify_batch", big); c != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", c)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: %d", resp.StatusCode)
	}
}

// TestEndToEndLocalBackend runs the full stack — HTTP, batcher,
// Local backend, core worker pool — over a real trained screener and
// checks the served prediction matches direct classification.
func TestEndToEndLocalBackend(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "serve-test", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 11, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 96, Hidden: 32, Reduced: 8, Precision: quant.INT4, Seed: 3,
	}, core.TrainOptions{Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewLocal(inst.Classifier, scr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(backend, Config{TopM: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	h := inst.Test[0]
	want := core.ClassifyApprox(inst.Classifier, scr, h, core.TopM(8)).Predict()

	buf, _ := json.Marshal(ClassifyRequest{H: h, TopK: 5})
	resp, err := postClassify(ts, buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Class != want {
		t.Fatalf("served class %d != direct %d", out.Class, want)
	}
	if len(out.TopK) != 5 {
		t.Fatalf("topk = %d", len(out.TopK))
	}
	if out.M != 8 || out.Degraded {
		t.Fatalf("m=%d degraded=%v at idle", out.M, out.Degraded)
	}

	// The batch endpoint serves the same answers.
	bbuf, _ := json.Marshal(ClassifyBatchRequest{Batch: inst.Test[:4], TopK: 3})
	bresp, err := ts.Client().Post(ts.URL+"/v1/classify_batch", "application/json", bytes.NewReader(bbuf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", bresp.StatusCode)
	}
	var bout ClassifyBatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&bout); err != nil {
		t.Fatal(err)
	}
	if len(bout.Results) != 4 {
		t.Fatalf("batch results = %d", len(bout.Results))
	}
	for i, r := range bout.Results {
		direct := core.ClassifyApprox(inst.Classifier, scr, inst.Test[i], core.TopM(8)).Predict()
		if r.Class != direct {
			t.Fatalf("batch item %d: served %d != direct %d", i, r.Class, direct)
		}
	}
}

// TestShardedBackendServes: the sharded backend answers through the
// identical handler surface.
func TestShardedBackendServes(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "serve-shard", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 17, Train: 128, Valid: 8, Test: 8})
	backend := shardedBackend(t, inst, 3)
	s, err := New(backend, Config{TopM: 9, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if backend.Categories() != 96 {
		t.Fatalf("sharded categories = %d", backend.Categories())
	}
	buf, _ := json.Marshal(ClassifyRequest{H: inst.Test[0], TopK: 4})
	resp, err := postClassify(ts, buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Class < 0 || out.Class >= 96 {
		t.Fatalf("class %d out of range", out.Class)
	}
	if len(out.TopK) == 0 {
		t.Fatal("no candidates")
	}
}

func shardedBackend(t *testing.T, inst *workload.Instance, n int) *Sharded {
	t.Helper()
	// Mirrors the distributed.ShardClassifier wiring in cmd/enmc-serve.
	shards, err := distributed.ShardClassifier(inst.Classifier, n, inst.Train, core.Config{
		Hidden: inst.Classifier.Hidden(), Reduced: 8, Precision: quant.INT4, Seed: 5,
	}, core.TrainOptions{Epochs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
