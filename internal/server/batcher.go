package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/telemetry"
)

// Admission errors. The HTTP layer maps ErrOverloaded to 429 (with
// Retry-After) and ErrDraining to 503.
var (
	// ErrOverloaded means the bounded admission queue is full.
	ErrOverloaded = errors.New("server: admission queue full")
	// ErrDraining means the server is shutting down and no longer
	// accepts work.
	ErrDraining = errors.New("server: draining")
)

// Batching and queue instruments on the default telemetry registry.
var (
	mQueueDepth = telemetry.Default().Gauge("server.queue.depth")
	mEnqueued   = telemetry.Default().Counter("server.queue.enqueued")
	mRejected   = telemetry.Default().Counter("server.queue.rejected")
	mExpired    = telemetry.Default().Counter("server.queue.expired")
	mQueueNs    = telemetry.Default().Histogram("server.queue.wait_ns", telemetry.LatencyBuckets())
	mFlushSize  = telemetry.Default().Histogram("server.batch.size", telemetry.CountBuckets())
	mFlushNs    = telemetry.Default().Histogram("server.batch.flush_ns", telemetry.LatencyBuckets())
	mBudget     = telemetry.Default().Gauge("server.batch.m")
	mDegraded   = telemetry.Default().Counter("server.batch.degraded")
)

// request is one queued single-item classification.
type request struct {
	ctx  context.Context
	h    []float32
	topK int
	enq  time.Time
	resp chan reply // buffered(1): the flush worker never blocks on it
	// tc is the request's distributed trace context (zero when
	// untraced). A flush adopts the first live request's tc — one
	// micro-batch serves many requests, so the batch-level fan-out is
	// attributed to the trace that opened it.
	tc telemetry.TraceCtx
}

// reply carries a request's outcome plus the serving metadata
// surfaced in the response body.
type reply struct {
	out      Outcome
	m        int
	degraded bool
	batch    int
	queuedNs int64
	version  string  // model version that served the batch
	partial  Partial // cluster degradation state (zero off-cluster)
	err      error
}

// batcher is the dynamic micro-batching queue: single requests are
// admitted into a bounded channel, a collector goroutine groups them
// into batches (flushing when MaxBatch accumulate or the oldest has
// waited MaxDelay), and a small pool of flush workers fans each
// batch into the backend's worker-pool ClassifyBatch.
type batcher struct {
	cfg     Config
	backend Backend

	mu     sync.RWMutex // serializes enqueue against close(queue)
	closed bool

	queue chan *request
	flush chan []*request
	wg    sync.WaitGroup // collector + flush workers
	depth atomic.Int64
}

func newBatcher(cfg Config, backend Backend) *batcher {
	b := &batcher{
		cfg:     cfg,
		backend: backend,
		queue:   make(chan *request, cfg.QueueCap),
		flush:   make(chan []*request),
	}
	b.wg.Add(1 + cfg.FlushWorkers)
	go b.collect()
	for i := 0; i < cfg.FlushWorkers; i++ {
		go b.flushWorker()
	}
	return b
}

// enqueue admits a request or rejects it immediately: ErrDraining
// once drain has begun, ErrOverloaded when the bounded queue is full.
func (b *batcher) enqueue(r *request) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.queue <- r:
		b.depth.Add(1)
		mQueueDepth.Add(1)
		mEnqueued.Inc()
		return nil
	default:
		mRejected.Inc()
		return ErrOverloaded
	}
}

// drain stops intake (subsequent enqueues fail with ErrDraining) and
// blocks until every already-admitted request has been flushed and
// replied to. Safe to call more than once.
func (b *batcher) drain() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// collect is the batching loop: it blocks for the first request,
// then gathers more until the batch is full or MaxDelay has elapsed
// since the batch opened, and hands the batch to a flush worker.
func (b *batcher) collect() {
	defer b.wg.Done()
	for {
		r, ok := <-b.queue
		if !ok {
			close(b.flush)
			return
		}
		b.popped(r)
		pending := []*request{r}
		timer := time.NewTimer(b.cfg.MaxDelay)
	gather:
		for len(pending) < b.cfg.MaxBatch {
			select {
			case r2, ok := <-b.queue:
				if !ok {
					timer.Stop()
					b.flush <- pending
					close(b.flush)
					return
				}
				b.popped(r2)
				pending = append(pending, r2)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.flush <- pending
	}
}

func (b *batcher) popped(r *request) {
	b.depth.Add(-1)
	mQueueDepth.Add(-1)
	mQueueNs.Observe(float64(time.Since(r.enq)))
}

func (b *batcher) flushWorker() {
	defer b.wg.Done()
	for batch := range b.flush {
		b.doFlush(batch)
	}
}

// doFlush classifies one collected batch. Requests whose context has
// already expired are answered with their context error without
// touching the model; the rest run under the batcher's own lifetime
// context so a graceful drain always completes admitted work.
func (b *batcher) doFlush(batch []*request) {
	start := time.Now()
	m, degraded := b.effectiveM()
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			mExpired.Inc()
			r.resp <- reply{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	hs := make([][]float32, len(live))
	maxK := 1
	fctx := context.Background()
	adopted := false
	for i, r := range live {
		hs[i] = r.h
		if r.topK > maxK {
			maxK = r.topK
		}
		// Batch-level trace adoption: the flush runs under the first
		// traced request in the batch, so cluster RPC spans land in a
		// trace (requests batched behind it share the timeline).
		if !adopted && r.tc.Valid() {
			fctx = telemetry.WithTraceCtx(fctx, r.tc)
			adopted = true
		}
	}
	outs, version, partial, err := classifyTagged(fctx, b.backend, hs, m, maxK)
	for i, r := range live {
		rep := reply{m: m, degraded: degraded, batch: len(live), queuedNs: start.Sub(r.enq).Nanoseconds(), version: version, partial: partial, err: err}
		if err == nil {
			rep.out = outs[i]
			if r.topK < len(rep.out.TopK) {
				rep.out.TopK = rep.out.TopK[:r.topK]
			}
		}
		r.resp <- rep
	}
	mFlushSize.Observe(float64(len(live)))
	mFlushNs.Observe(float64(time.Since(start)))
}
