package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/telemetry"
	"enmc/internal/tenant"
)

// Admission errors. The HTTP layer maps ErrOverloaded and ErrShed to
// 429 (with Retry-After) and ErrDraining to 503.
var (
	// ErrOverloaded means the request's class queue is full.
	ErrOverloaded = errors.New("server: admission queue full")
	// ErrShed means the class was turned away to protect a
	// higher-priority class's backlog (class-aware load shedding).
	ErrShed = errors.New("server: load shed for higher-priority traffic")
	// ErrDraining means the server is shutting down and no longer
	// accepts work.
	ErrDraining = errors.New("server: draining")
)

// Batching and queue instruments on the default telemetry registry.
var (
	mQueueDepth = telemetry.Default().Gauge("server.queue.depth")
	mEnqueued   = telemetry.Default().Counter("server.queue.enqueued")
	mRejected   = telemetry.Default().Counter("server.queue.rejected")
	mShed       = telemetry.Default().Counter("server.queue.shed")
	mExpired    = telemetry.Default().Counter("server.queue.expired")
	mQueueNs    = telemetry.Default().Histogram("server.queue.wait_ns", telemetry.LatencyBuckets())
	mFlushSize  = telemetry.Default().Histogram("server.batch.size", telemetry.CountBuckets())
	mFlushNs    = telemetry.Default().Histogram("server.batch.flush_ns", telemetry.LatencyBuckets())
	mBudget     = telemetry.Default().Gauge("server.batch.m")
	mDegraded   = telemetry.Default().Counter("server.batch.degraded")
)

// Per-class queue-depth gauges, indexed like tenant.Classes.
var mClassDepth = func() [tenant.NumClasses]*telemetry.Gauge {
	var g [tenant.NumClasses]*telemetry.Gauge
	for i, c := range tenant.Classes {
		g[i] = telemetry.Default().Gauge(telemetry.LabeledName("server.queue.class_depth",
			map[string]string{"class": string(c)}))
	}
	return g
}()

// request is one queued single-item classification.
type request struct {
	ctx  context.Context
	h    []float32
	topK int
	enq  time.Time
	resp chan reply // buffered(1): the flush worker never blocks on it
	// class is the owning tenant's priority class — the WFQ queue the
	// request waits in and the degradation policy applied to it.
	class tenant.Class
	// tenantName labels telemetry; pinned routes the flush to a pinned
	// model version ("" = active model).
	tenantName string
	pinned     string
	// tc is the request's distributed trace context (zero when
	// untraced). A flush adopts the first live request's tc — one
	// micro-batch serves many requests, so the batch-level fan-out is
	// attributed to the trace that opened it.
	tc telemetry.TraceCtx
}

// reply carries a request's outcome plus the serving metadata
// surfaced in the response body.
type reply struct {
	out      Outcome
	m        int
	degraded bool
	batch    int
	queuedNs int64
	version  string  // model version that served the batch
	partial  Partial // cluster degradation state (zero off-cluster)
	err      error
}

// batcher is the dynamic micro-batching scheduler: single requests
// are admitted into a per-class weighted-fair queue (deficit round
// robin — see internal/tenant), a collector goroutine drains it in
// DRR order into class-homogeneous batches (flushing when MaxBatch
// accumulate or the oldest has waited MaxDelay), and a small pool of
// flush workers fans each batch into the backend's worker-pool
// ClassifyBatch.
type batcher struct {
	cfg     Config
	backend Backend
	// pinnedBackend resolves a tenant's pinned model version (nil:
	// pinning unavailable — pinned requests fail).
	pinnedBackend func(version string) (Backend, error)

	q     *tenant.WFQ[*request]
	flush chan []*request
	wg    sync.WaitGroup // collector + flush workers
	depth atomic.Int64
}

func newBatcher(cfg Config, backend Backend) *batcher {
	b := &batcher{
		cfg:           cfg,
		backend:       backend,
		pinnedBackend: cfg.PinnedBackend,
		q:             tenant.NewWFQ[*request](cfg.QueueCap, cfg.ClassWeights),
		flush:         make(chan []*request),
	}
	b.wg.Add(1 + cfg.FlushWorkers)
	go b.collect()
	for i := 0; i < cfg.FlushWorkers; i++ {
		go b.flushWorker()
	}
	return b
}

// enqueue admits a request or rejects it immediately: ErrDraining
// once drain has begun, ErrShed when the ladder is protecting a
// higher class, ErrOverloaded when the request's class queue is full.
func (b *batcher) enqueue(r *request) error {
	if b.shouldShed(r.class) {
		mShed.Inc()
		return ErrShed
	}
	switch err := b.q.Push(r.class, r); err {
	case nil:
		b.depth.Add(1)
		mQueueDepth.Add(1)
		mClassDepth[r.class.Index()].Add(1)
		mEnqueued.Inc()
		return nil
	case tenant.ErrClosed:
		return ErrDraining
	default: // tenant.ErrQueueFull
		mRejected.Inc()
		return ErrOverloaded
	}
}

// drain stops intake (subsequent enqueues fail with ErrDraining) and
// blocks until every already-admitted request has been flushed and
// replied to. Safe to call more than once.
func (b *batcher) drain() {
	b.q.Close()
	b.wg.Wait()
}

// collect is the batching loop: DRR picks the class of the next
// flush, then the batch is gathered class-homogeneously (PopClass —
// the class borrows against future quanta for the batch's tail) until
// it is full or MaxDelay has elapsed, and handed to a flush worker. A
// flush never mixes classes, so one screening budget applies to the
// whole batch.
func (b *batcher) collect() {
	defer b.wg.Done()
	for {
		r, class, ok := b.q.Pop()
		if !ok {
			if _, open := <-b.q.Ready(); !open && b.q.Len() == 0 {
				close(b.flush)
				return
			}
			continue
		}
		b.popped(r)
		pending := []*request{r}
		if b.q.Closed() {
			// Draining: gather what is already queued, never wait.
			for len(pending) < b.cfg.MaxBatch {
				r2, ok := b.q.PopClass(class)
				if !ok {
					break
				}
				b.popped(r2)
				pending = append(pending, r2)
			}
			b.flush <- pending
			continue
		}
		timer := time.NewTimer(b.cfg.MaxDelay)
	gather:
		for len(pending) < b.cfg.MaxBatch {
			if r2, ok := b.q.PopClass(class); ok {
				b.popped(r2)
				pending = append(pending, r2)
				continue
			}
			// The class queue is momentarily empty: wait for another
			// arrival (any class signals Ready; only same-class items
			// join this batch) or the batch deadline.
			select {
			case _, open := <-b.q.Ready():
				if !open {
					break gather
				}
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		b.flush <- pending
	}
}

func (b *batcher) popped(r *request) {
	b.depth.Add(-1)
	mQueueDepth.Add(-1)
	mClassDepth[r.class.Index()].Add(-1)
	mQueueNs.Observe(float64(time.Since(r.enq)))
}

func (b *batcher) flushWorker() {
	defer b.wg.Done()
	for batch := range b.flush {
		b.doFlush(batch)
	}
}

// doFlush classifies one collected batch. Requests whose context has
// already expired are answered with their context error without
// touching the model; the rest run under the batcher's own lifetime
// context so a graceful drain always completes admitted work. The
// screening budget is the flush class's — batches are class-
// homogeneous by construction.
func (b *batcher) doFlush(batch []*request) {
	start := time.Now()
	m, degraded := b.effectiveM(batch[0].class)
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			mExpired.Inc()
			r.resp <- reply{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	fctx := context.Background()
	for _, r := range live {
		// Batch-level trace adoption: the flush runs under the first
		// traced request in the batch, so cluster RPC spans land in a
		// trace (requests batched behind it share the timeline).
		if r.tc.Valid() {
			fctx = telemetry.WithTraceCtx(fctx, r.tc)
			break
		}
	}
	// Partition by pinned model version (insertion-ordered; almost
	// always the single "" group serving the active model) so one
	// flush can serve tenants pinned to different registry versions.
	versions := []string{}
	groups := map[string][]*request{}
	for _, r := range live {
		if _, ok := groups[r.pinned]; !ok {
			versions = append(versions, r.pinned)
		}
		groups[r.pinned] = append(groups[r.pinned], r)
	}
	for _, ver := range versions {
		b.flushGroup(fctx, groups[ver], ver, m, degraded, start, len(live))
	}
	mFlushSize.Observe(float64(len(live)))
	mFlushNs.Observe(float64(time.Since(start)))
}

// flushGroup classifies the subset of a flush bound to one model
// version ("" = the active backend) and answers its requests.
func (b *batcher) flushGroup(fctx context.Context, group []*request, pinned string, m int, degraded bool, start time.Time, batchSize int) {
	backend := b.backend
	if pinned != "" {
		var err error
		backend, err = b.resolvePinned(pinned)
		if err != nil {
			for _, r := range group {
				r.resp <- reply{err: err}
			}
			return
		}
	}
	hs := make([][]float32, len(group))
	maxK := 1
	for i, r := range group {
		hs[i] = r.h
		if r.topK > maxK {
			maxK = r.topK
		}
	}
	outs, version, partial, err := classifyTagged(fctx, backend, hs, m, maxK)
	for i, r := range group {
		rep := reply{m: m, degraded: degraded, batch: batchSize, queuedNs: start.Sub(r.enq).Nanoseconds(), version: version, partial: partial, err: err}
		if err == nil {
			rep.out = outs[i]
			if r.topK < len(rep.out.TopK) {
				rep.out.TopK = rep.out.TopK[:r.topK]
			}
		}
		r.resp <- rep
	}
}

// resolvePinned maps a pinned model version to its serving backend.
func (b *batcher) resolvePinned(version string) (Backend, error) {
	if b.pinnedBackend == nil {
		return nil, errors.New("server: no pinned-model resolver configured (tenant pin requires -model-root)")
	}
	return b.pinnedBackend(version)
}
