package server

import (
	"context"
	"net/http"
	"strings"
	"time"

	"enmc/internal/telemetry"
	"enmc/internal/tenant"
)

// Observability middleware: every /v1/* request gets a request ID
// (echoed on X-Request-Id even for 429/5xx), a distributed trace
// context when tracing is on, an SLO observation, one TrackHTTP span,
// and one structured request-log record. Handlers report serving
// metadata (batch size, model version, fan-out outcome) back to the
// middleware through the reqMeta pointer stashed in the context.

// reqMeta is the per-request metadata channel between handlers and
// the instrument middleware. Handlers fill what they know; the
// middleware reads it after the handler returns.
type reqMeta struct {
	items    int
	batch    int
	queueNs  int64
	version  string
	degraded bool
	partial  bool
	missing  []int
	errMsg   string
	// tenant is the identity the middleware resolved from the API key
	// before invoking the handler — one resolution per request.
	tenant *tenant.Tenant
}

type reqMetaKey struct{}

// metaFrom returns the request's reqMeta, or nil outside the
// instrumented path (direct handler tests).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

// instrument wraps the mux with the per-request observability
// pipeline. Non-/v1/ paths (health probes, /metrics itself) pass
// through untouched so scrapes and probes never pollute the SLO.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()

		// Request identity: honor a caller-supplied ID (so a proxy's ID
		// survives), else mint one; echo it on every response including
		// rejections, before the handler can write a status.
		reqID := r.Header.Get(telemetry.HeaderRequestID)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set(telemetry.HeaderRequestID, reqID)

		ctx := r.Context()
		tr := telemetry.Global()
		var tc telemetry.TraceCtx
		var spanStart int64
		if tr.Enabled() {
			// Adopt a propagated trace when the caller sent one (the
			// service can itself be a hop), else start a fresh root.
			var ok bool
			if tc, ok = telemetry.ExtractTrace(r.Header); !ok {
				tc = telemetry.NewTraceCtx()
			}
			ctx = telemetry.WithTraceCtx(ctx, tc)
			spanStart = tr.Now()
		}

		meta := &reqMeta{tenant: s.tenants.Resolve(r.Header.Get(tenant.HeaderAPIKey))}
		ctx = context.WithValue(ctx, reqMetaKey{}, meta)
		sw := &telemetry.StatusRecorder{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.Status()
		latency := time.Since(start)
		s.slo.Observe(r.URL.Path, status, latency)
		// The tenant's own SLO window rolls alongside the global one.
		s.tstats.For(meta.tenant).Observe(r.URL.Path, status, latency)
		tenantName := meta.tenant.Name
		if meta.tenant.Anonymous() {
			// Back-compat: an explicit X-Enmc-Tenant label still tags
			// logs for callers without an API key.
			if h := r.Header.Get("X-Enmc-Tenant"); h != "" {
				tenantName = h
			}
		}
		if tr.Enabled() {
			tr.Add(telemetry.Span{
				Name:   "HTTP " + r.URL.Path,
				Cat:    "http",
				TID:    telemetry.TrackHTTP,
				Start:  spanStart,
				Dur:    tr.Now() - spanStart,
				Trace:  tc.TraceID,
				Tenant: tenantName,
			})
		}
		s.reqLog.Log(telemetry.RequestEvent{
			RequestID:     reqID,
			TraceID:       tc.TraceID,
			Tenant:        tenantName,
			Method:        r.Method,
			Path:          r.URL.Path,
			Status:        status,
			Latency:       latency,
			Items:         meta.items,
			BatchSize:     meta.batch,
			QueueNs:       meta.queueNs,
			ModelVersion:  meta.version,
			Degraded:      meta.degraded,
			Partial:       meta.partial,
			MissingShards: meta.missing,
			Err:           meta.errMsg,
		})
	})
}
