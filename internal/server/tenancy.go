package server

import (
	"net/http"
	"strconv"

	"enmc/internal/tenant"
)

// Tenancy glue: the middleware resolves X-Enmc-Api-Key once per
// request and stashes the identity in the request metadata; handlers
// charge quotas and attribute counters through it.

// tenantFor returns the request's resolved tenant: the middleware's
// resolution when present, else a direct lookup (direct-handler
// tests and non-instrumented paths).
func (s *Server) tenantFor(r *http.Request) *tenant.Tenant {
	if meta := metaFrom(r.Context()); meta != nil && meta.tenant != nil {
		return meta.tenant
	}
	return s.tenants.Resolve(r.Header.Get(tenant.HeaderAPIKey))
}

// Tenants returns the server's tenant resolver (the built-in
// single-tenant resolver when none was configured).
func (s *Server) Tenants() *tenant.Resolver { return s.tenants }

// allowQuota charges cost tokens against the tenant's rate quota. On
// refusal it answers 429 with the bucket's actual refill time as
// Retry-After and reason "quota", and reports false.
func (s *Server) allowQuota(w http.ResponseWriter, ten *tenant.Tenant, ts *tenant.TenantStats, cost float64) bool {
	ok, retry := ten.Allow(cost)
	if ok {
		return true
	}
	ts.Throttled.Inc()
	mStatus429.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeErrorReason(w, http.StatusTooManyRequests, "quota",
		"tenant "+ten.Name+" rate limit exceeded")
	return false
}

// TenantsResponse is the GET /v1/tenants body.
type TenantsResponse struct {
	Tenants []tenant.Summary `json:"tenants"`
}

// handleTenants reports every tracked tenant's QoS counters, live
// decode-session count, model pin, and rolling SLO window: GET
// /v1/tenants.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	live := map[string]*tenant.Tenant{}
	for _, t := range s.tenants.Tenants() {
		live[t.Name] = t
	}
	writeJSON(w, http.StatusOK, TenantsResponse{Tenants: s.tstats.Summaries(live)})
}
