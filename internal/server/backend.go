package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/telemetry"
)

// Candidate is one ranked class in a response, in global class
// numbering.
type Candidate struct {
	Class int     `json:"class"`
	Logit float32 `json:"logit"`
}

// Outcome is one request's classification result.
type Outcome struct {
	Class int
	TopK  []Candidate
}

// Partial describes a response computed without some shards: when
// every replica of a cluster shard is unreachable the router serves
// the merged top-k of the surviving shards instead of failing, and
// this records what was missing (PR 2's degrade-don't-fail policy
// extended across the network boundary).
type Partial struct {
	// Partial is true when at least one shard's candidates are
	// absent from the merge.
	Partial bool `json:"partial"`
	// MissingShards lists the unreachable shard ids.
	MissingShards []int `json:"missing_shards,omitempty"`
}

// PartialBackend is implemented by backends that can degrade to a
// partial merge when part of the class space is unreachable (the
// cluster router). The serving layer surfaces Partial per-response.
type PartialBackend interface {
	Backend
	ClassifyBatchPartial(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, Partial, error)
}

// Backend computes classifications for the serving layer. The three
// implementations are Local (single-node classifier + screener over
// the core worker pool), Sharded (class space split row-wise across
// in-process distributed shards, merged top-k) and cluster.Router
// (networked shard workers behind scatter-gather). All honor ctx
// cancellation between batch items.
type Backend interface {
	// ClassifyBatch classifies each hidden vector under screening
	// budget m, returning each item's top-k candidates (k capped by
	// the backend's class count).
	ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, error)
	// Hidden is the expected feature dimension d.
	Hidden() int
	// Categories is the global class count l.
	Categories() int
}

// Local serves a single-node classifier/screener pair.
type Local struct {
	Classifier *core.Classifier
	Screener   *core.Screener
}

// NewLocal validates that the screener matches the classifier's
// shape and returns a Local backend.
func NewLocal(cls *core.Classifier, scr *core.Screener) (*Local, error) {
	if cls == nil || scr == nil {
		return nil, fmt.Errorf("server: nil classifier or screener")
	}
	if scr.Cfg.Categories != cls.Categories() || scr.Cfg.Hidden != cls.Hidden() {
		return nil, fmt.Errorf("server: screener shape %dx%d does not match classifier %dx%d",
			scr.Cfg.Categories, scr.Cfg.Hidden, cls.Categories(), cls.Hidden())
	}
	return &Local{Classifier: cls, Screener: scr}, nil
}

// Hidden implements Backend.
func (l *Local) Hidden() int { return l.Classifier.Hidden() }

// Categories implements Backend.
func (l *Local) Categories() int { return l.Classifier.Categories() }

// ClassifyBatch implements Backend over core.ClassifyBatchVisitCtx:
// each item's Result stays in the worker's scratch arena and only the
// small Outcome (predicted class + top-k candidates) is copied out,
// instead of materializing an l-sized mixed-logit vector per item.
func (l *Local) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, error) {
	out := make([]Outcome, len(batch))
	err := core.ClassifyBatchVisitCtx(ctx, l.Classifier, l.Screener, batch, core.TopM(m), telemetry.Global(),
		func(i int, r *core.Result, sc *core.Scratch) {
			idx := sc.TopK(r.Mixed, topK)
			cands := make([]Candidate, len(idx))
			for j, c := range idx {
				cands[j] = Candidate{Class: c, Logit: r.Mixed[c]}
			}
			out[i] = Outcome{Class: r.Predict(), TopK: cands}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sharded serves a row-sharded class space: every shard screens
// locally and the merged global top-k is returned — the same handler
// surface as Local, so a frontend can scale out without clients
// noticing. Shards reload independently (ReplaceShard), so a rolling
// model update serves mixed versions mid-rollout; ModelVersion and
// VersionSkew surface that state.
type Sharded struct {
	mu         sync.RWMutex
	shards     []distributed.Shard
	hidden     int
	categories int
}

// NewSharded validates the shard set and returns a Sharded backend.
func NewSharded(shards []distributed.Shard) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("server: no shards")
	}
	total := 0
	for i, s := range shards {
		if s.Classifier == nil || s.Screener == nil {
			return nil, fmt.Errorf("server: shard %d incomplete", i)
		}
		total += s.Classifier.Categories()
	}
	return &Sharded{
		shards:     append([]distributed.Shard(nil), shards...),
		hidden:     shards[0].Classifier.Hidden(),
		categories: total,
	}, nil
}

// Hidden implements Backend.
func (s *Sharded) Hidden() int { return s.hidden }

// Categories implements Backend.
func (s *Sharded) Categories() int { return s.categories }

// Shards returns a snapshot of the current shard set.
func (s *Sharded) Shards() []distributed.Shard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]distributed.Shard(nil), s.shards...)
}

// ReplaceShard hot-swaps shard i with a retrained replacement — the
// independent per-shard reload path of a rolling model update. The
// replacement must cover exactly the same class rows (same offset
// and count) and hidden dimension; batches already holding the old
// snapshot finish on it, new admissions see the new shard.
func (s *Sharded) ReplaceShard(i int, sh distributed.Shard) error {
	if sh.Classifier == nil || sh.Screener == nil {
		return fmt.Errorf("server: replacement shard incomplete")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: shard index %d out of range [0,%d)", i, len(s.shards))
	}
	old := s.shards[i]
	if sh.Offset != old.Offset || sh.Classifier.Categories() != old.Classifier.Categories() ||
		sh.Classifier.Hidden() != old.Classifier.Hidden() {
		return fmt.Errorf("server: replacement shard %d shape/offset mismatch (offset %d rows %d vs offset %d rows %d)",
			i, sh.Offset, sh.Classifier.Categories(), old.Offset, old.Classifier.Categories())
	}
	// Copy-on-write: in-flight batches hold the old slice as an
	// immutable snapshot, so the swap never mixes versions (or races)
	// within a batch already running.
	next := append([]distributed.Shard(nil), s.shards...)
	next[i] = sh
	s.shards = next
	return nil
}

// ModelVersion implements Versioned: the single shard version when
// the deployment is uniform, or the distinct versions joined with
// "," while a rolling update is in flight.
func (s *Sharded) ModelVersion() string {
	vs := s.distinctVersions()
	return strings.Join(vs, ",")
}

// VersionSkew implements SkewReporter: true while shards disagree on
// their model version.
func (s *Sharded) VersionSkew() bool { return len(s.distinctVersions()) > 1 }

// ShardVersions returns each shard's version, shard-ordered.
func (s *Sharded) ShardVersions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Version
	}
	return out
}

func (s *Sharded) distinctVersions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var vs []string
	for _, sh := range s.shards {
		if !seen[sh.Version] {
			seen[sh.Version] = true
			vs = append(vs, sh.Version)
		}
	}
	sort.Strings(vs)
	return vs
}

// ClassifyBatch implements Backend: the screening budget m is split
// evenly across shards (ceiling division, so the merged candidate
// pool is at least m); per item, the shards are screened by
// ClassifyCtx's bounded worker pool rather than sequentially. The
// shard set is snapshotted once per batch, so a concurrent
// ReplaceShard never mixes versions within one item.
func (s *Sharded) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, error) {
	s.mu.RLock()
	shards := s.shards
	s.mu.RUnlock()
	per := (m + len(shards) - 1) / len(shards)
	if per < 1 {
		per = 1
	}
	out := make([]Outcome, len(batch))
	for i, h := range batch {
		cands, err := distributed.ClassifyCtx(ctx, shards, h, per, topK)
		if err != nil {
			return nil, err
		}
		ck := make([]Candidate, len(cands))
		for j, c := range cands {
			ck[j] = Candidate{Class: c.Class, Logit: c.Logit}
		}
		o := Outcome{TopK: ck}
		if len(cands) > 0 {
			o.Class = cands[0].Class
		}
		out[i] = o
	}
	return out, nil
}
