package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Versioned is implemented by backends that know which registry
// model version they serve. The serving layer surfaces it in
// /v1/model and as "model_version" on every response.
type Versioned interface {
	ModelVersion() string
}

// SkewReporter is implemented by backends whose shards can be on
// different model versions at once (independent shard reloads); the
// serving layer surfaces it per-response as "version_skew".
type SkewReporter interface {
	VersionSkew() bool
}

// taggedBackend lets a backend report exactly which model version
// served a batch — Swappable implements it so a response's
// model_version is the version that actually computed it, not
// whatever is active by the time the reply is written.
type taggedBackend interface {
	classifyBatchTagged(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, string, error)
}

// classifyTagged runs a batch and returns the serving model version
// and partial-degradation state alongside the outcomes. The version
// is exact for tagged backends and best-effort (read after the call)
// otherwise; Partial is populated for PartialBackend implementations
// (the cluster router) and zero for everything else.
func classifyTagged(ctx context.Context, b Backend, batch [][]float32, m, topK int) ([]Outcome, string, Partial, error) {
	if tb, ok := b.(taggedBackend); ok {
		outs, version, err := tb.classifyBatchTagged(ctx, batch, m, topK)
		return outs, version, Partial{}, err
	}
	if pb, ok := b.(PartialBackend); ok {
		outs, partial, err := pb.ClassifyBatchPartial(ctx, batch, m, topK)
		return outs, versionOf(b), partial, err
	}
	outs, err := b.ClassifyBatch(ctx, batch, m, topK)
	return outs, versionOf(b), Partial{}, err
}

// versionOf reports b's model version, or "" for unversioned
// backends.
func versionOf(b Backend) string {
	if v, ok := b.(Versioned); ok {
		return v.ModelVersion()
	}
	return ""
}

// slot is one installed backend plus its drain bookkeeping. refs
// starts at 1 (the installation reference); every in-flight batch
// holds one more. When the slot has been swapped out AND its last
// batch finishes, refs hits zero and retire fires exactly once —
// the "old version retired only after its last reference drains"
// ordering the lifecycle manager logs and tests assert on.
type slot struct {
	backend Backend
	version string
	refs    atomic.Int64
	retire  func(version string)
}

func (s *slot) release() {
	if s.refs.Add(-1) == 0 && s.retire != nil {
		s.retire(s.version)
	}
}

// Swappable wraps a Backend behind an atomically swappable,
// reference-counted slot: Swap installs a new model for all future
// admissions while in-flight batches finish on the version they
// started on. The acquire path is a read-lock plus one atomic add —
// nothing on it allocates, so the steady-state classify path stays
// allocation-free.
type Swappable struct {
	mu  sync.RWMutex
	cur *slot
}

// NewSwappable wraps backend as the initial version.
func NewSwappable(backend Backend, version string) (*Swappable, error) {
	if backend == nil {
		return nil, fmt.Errorf("server: nil backend")
	}
	s := &Swappable{cur: &slot{backend: backend, version: version}}
	s.cur.refs.Store(1)
	return s, nil
}

// acquire pins the current slot for one batch. The read lock makes
// the load+refcount pair atomic against Swap, so retire can never
// fire while a batch that observed the slot is still running.
func (s *Swappable) acquire() *slot {
	s.mu.RLock()
	sl := s.cur
	sl.refs.Add(1)
	s.mu.RUnlock()
	return sl
}

// Swap atomically installs a new backend for all future admissions
// and returns the previous version. In-flight batches finish on the
// old backend; onRetire (optional) runs once its last reference
// drains. The new backend must match the current shapes — the
// serving layer validated requests and sized its budgets against
// them, so a shape-changing swap needs a new server, not a hot swap.
func (s *Swappable) Swap(backend Backend, version string, onRetire func(version string)) (prev string, err error) {
	if backend == nil {
		return "", fmt.Errorf("server: swap to nil backend")
	}
	next := &slot{backend: backend, version: version}
	next.refs.Store(1)

	s.mu.Lock()
	old := s.cur
	if backend.Hidden() != old.backend.Hidden() || backend.Categories() != old.backend.Categories() {
		s.mu.Unlock()
		return "", fmt.Errorf("server: swap shape %dx%d does not match serving %dx%d",
			backend.Categories(), backend.Hidden(), old.backend.Categories(), old.backend.Hidden())
	}
	// The callback belongs to the slot being swapped OUT: it fires
	// when the old version's last reference drains. Written under the
	// lock, before the installation reference is dropped, so the
	// draining release always observes it.
	old.retire = onRetire
	s.cur = next
	s.mu.Unlock()

	old.release() // drop the installation reference; retire fires at drain
	return old.version, nil
}

// ClassifyBatch implements Backend: the whole batch runs on one
// pinned model version.
func (s *Swappable) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, error) {
	outs, _, err := s.classifyBatchTagged(ctx, batch, m, topK)
	return outs, err
}

func (s *Swappable) classifyBatchTagged(ctx context.Context, batch [][]float32, m, topK int) ([]Outcome, string, error) {
	sl := s.acquire()
	defer sl.release()
	outs, err := sl.backend.ClassifyBatch(ctx, batch, m, topK)
	return outs, sl.version, err
}

// Hidden implements Backend.
func (s *Swappable) Hidden() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.backend.Hidden()
}

// Categories implements Backend.
func (s *Swappable) Categories() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.backend.Categories()
}

// ModelVersion implements Versioned: the Swap-installed version, or
// the inner backend's own when the slot has none.
func (s *Swappable) ModelVersion() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cur.version != "" {
		return s.cur.version
	}
	return versionOf(s.cur.backend)
}

// VersionSkew implements SkewReporter by delegating to the inner
// backend (a wrapped Sharded can be mid-rollout even when the
// wrapper itself swaps atomically).
func (s *Swappable) VersionSkew() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sr, ok := s.cur.backend.(SkewReporter); ok {
		return sr.VersionSkew()
	}
	return false
}

// Current returns the active backend (unpinned — for introspection,
// not for classification).
func (s *Swappable) Current() Backend {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.backend
}
