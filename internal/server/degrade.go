package server

import (
	"enmc/internal/telemetry"
	"enmc/internal/tenant"
)

// Per-class effective-budget gauges, indexed like tenant.Classes.
var mClassBudget = func() [tenant.NumClasses]*telemetry.Gauge {
	var g [tenant.NumClasses]*telemetry.Gauge
	for i, c := range tenant.Classes {
		g[i] = telemetry.Default().Gauge(telemetry.LabeledName("server.batch.class_m",
			map[string]string{"class": string(c)}))
	}
	return g
}()

// Class-aware graceful degradation. The screening budget m is the
// paper's accuracy/latency dial (fewer screened candidates ⇒
// proportionally fewer exact recompute rows), and the ladder spends
// it by priority class instead of globally:
//
//  1. A class's own backlog shrinks only that class's budget: past
//     Watermark×QueueCap on its own queue, m falls linearly from TopM
//     to MFloor at capacity — exactly the old global policy, scoped
//     per class.
//  2. A higher-priority class's backlog degrades lower classes first:
//     when any strictly-higher class is past its watermark, lower
//     classes drop straight to MFloor, and past ShedFrac of capacity
//     they are shed outright at admission (429 + Retry-After).
//
// The asymmetry is the point: a batch flood fills only the batch
// queue, so batch traffic absorbs the 429s and budget cuts while
// interactive requests see full quality, and an interactive surge
// degrades batch before it touches interactive.

// classPressure is one consistent snapshot of per-class queue depth
// against the shared per-class capacity.
func effectiveMPolicy(cfg Config, depths [tenant.NumClasses]int, capPer int, c tenant.Class) (int, bool) {
	m := cfg.TopM
	idx := c.Index()
	wm := int(cfg.Watermark * float64(capPer))

	// Rule 2: a backlogged higher class floors every class below it.
	for i := 0; i < idx; i++ {
		if depths[i] > wm {
			return cfg.MFloor, cfg.MFloor < m
		}
	}

	// Rule 1: own-queue linear shrink past the watermark.
	depth := depths[idx]
	if depth <= wm || cfg.MFloor >= m {
		return m, false
	}
	span := capPer - wm
	frac := 1.0
	if span > 0 {
		frac = float64(depth-wm) / float64(span)
		if frac > 1 {
			frac = 1
		}
	}
	m -= int(frac * float64(m-cfg.MFloor))
	if m < cfg.MFloor {
		m = cfg.MFloor
	}
	return m, true
}

// effectiveM applies the ladder to the next flush of class c, from a
// single locked snapshot of the class queues. The chosen budget and
// any degradation event are surfaced in telemetry (server.batch.m,
// server.batch.class_m{class=...}, server.batch.degraded) and in
// every response body so clients can observe quality, not just
// latency.
func (b *batcher) effectiveM(c tenant.Class) (int, bool) {
	depths, capPer := b.q.Depths()
	m, degraded := effectiveMPolicy(b.cfg, depths, capPer, c)
	mBudget.Set(float64(m))
	mClassBudget[c.Index()].Set(float64(m))
	if degraded {
		mDegraded.Inc()
	}
	return m, degraded
}

// shouldShed reports whether class c must be turned away at admission
// to protect a strictly-higher class whose queue is past ShedFrac of
// capacity. The highest backlogged class itself is never shed by this
// rule — it is bounded by its own queue capacity (ErrOverloaded).
func (b *batcher) shouldShed(c tenant.Class) bool {
	idx := c.Index()
	if idx == 0 {
		return false
	}
	depths, capPer := b.q.Depths()
	limit := int(b.cfg.ShedFrac * float64(capPer))
	for i := 0; i < idx; i++ {
		if depths[i] > limit {
			return true
		}
	}
	return false
}
