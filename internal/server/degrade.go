package server

// effectiveM is the graceful-degradation policy: the screening
// budget for the next flush given current queue pressure. Below the
// watermark the configured TopM is used unchanged; above it the
// budget shrinks linearly toward MFloor as the queue approaches
// capacity, trading a little candidate recall for per-item latency —
// the knob the paper's screening/recompute split uniquely exposes
// (fewer candidates ⇒ proportionally fewer exact rows).
//
// The returned bool reports whether degradation is active; both the
// budget and the event count are surfaced in telemetry
// (server.batch.m, server.batch.degraded) and in every response body
// so clients can observe quality, not just latency.
func (b *batcher) effectiveM() (int, bool) {
	m := b.cfg.TopM
	depth := int(b.depth.Load())
	wm := int(b.cfg.Watermark * float64(b.cfg.QueueCap))
	if depth <= wm || b.cfg.MFloor >= m {
		mBudget.Set(float64(m))
		return m, false
	}
	span := b.cfg.QueueCap - wm
	frac := 1.0
	if span > 0 {
		frac = float64(depth-wm) / float64(span)
		if frac > 1 {
			frac = 1
		}
	}
	m -= int(frac * float64(m-b.cfg.MFloor))
	if m < b.cfg.MFloor {
		m = b.cfg.MFloor
	}
	mBudget.Set(float64(m))
	mDegraded.Inc()
	return m, true
}
