package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

// TestSwappableHotSwapUnderTraffic: sustained concurrent traffic
// through the full HTTP stack while the model is swapped mid-run —
// every request must succeed, and each response names the version
// that actually served it (only v1 before the swap completes, only
// v2 after, never anything else).
func TestSwappableHotSwapUnderTraffic(t *testing.T) {
	old := &fakeBackend{hidden: 8, categories: 32}
	sw, err := NewSwappable(old, "v1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sw, Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers, perWorker = 8, 40
	var swapped atomic.Bool
	var failures, staleAfterSwap atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := postClassify(ts, classifyBody(t, 8))
				if err != nil {
					failures.Add(1)
					return
				}
				var out ClassifyResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				switch out.ModelVersion {
				case "v1", "v2":
				default:
					failures.Add(1)
				}
				// A request issued strictly after the swap returned
				// must never be served by the old model.
				if swapped.Load() && out.ModelVersion == "v1" {
					staleAfterSwap.Add(1)
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	next := &fakeBackend{hidden: 8, categories: 32}
	prev, err := sw.Swap(next, "v2", nil)
	if err != nil {
		t.Fatal(err)
	}
	swapped.Store(true)
	if prev != "v1" {
		t.Fatalf("prev = %q, want v1", prev)
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests during hot swap", n)
	}
	// Requests admitted before the swap may legitimately finish on v1
	// after it, but only for as long as in-flight batches drain; a
	// micro-batch lives ~MaxDelay, so anything admitted post-swap is
	// served by v2. Batches pinned pre-swap overlap the swapped flag
	// only within one flush, so allow that window.
	if sw.ModelVersion() != "v2" {
		t.Fatalf("active version %q, want v2", sw.ModelVersion())
	}
	if next.calls.Load() == 0 {
		t.Fatal("new backend never served")
	}
}

// TestSwappableRetireAfterDrain: the old version must be retired
// exactly once, and only after its last in-flight batch finishes —
// never while a batch that pinned it is still running.
func TestSwappableRetireAfterDrain(t *testing.T) {
	gated := &fakeBackend{hidden: 4, categories: 8, gate: make(chan struct{})}
	sw, err := NewSwappable(gated, "v1")
	if err != nil {
		t.Fatal(err)
	}

	// Park a batch inside the old backend.
	batchDone := make(chan error, 1)
	go func() {
		_, err := sw.ClassifyBatch(context.Background(), [][]float32{make([]float32, 4)}, 1, 1)
		batchDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for gated.calls.Load() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("batch never reached backend")
		}
		time.Sleep(time.Millisecond)
	}

	var retired atomic.Int64
	retiredVersion := make(chan string, 2)
	prev, err := sw.Swap(&fakeBackend{hidden: 4, categories: 8}, "v2", func(v string) {
		retired.Add(1)
		retiredVersion <- v
	})
	if err != nil {
		t.Fatal(err)
	}
	if prev != "v1" {
		t.Fatalf("prev = %q", prev)
	}

	// The gated batch still holds a reference: retire must not fire.
	time.Sleep(20 * time.Millisecond)
	if retired.Load() != 0 {
		t.Fatal("retired while a batch was in flight on the old version")
	}

	close(gated.gate)
	if err := <-batchDone; err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-retiredVersion:
		if v != "v1" {
			t.Fatalf("retired %q, want v1", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retire never fired after drain")
	}
	if retired.Load() != 1 {
		t.Fatalf("retire fired %d times", retired.Load())
	}
}

// TestSwapShapeMismatch: a candidate with a different shape must be
// rejected and the old version must keep serving.
func TestSwapShapeMismatch(t *testing.T) {
	sw, err := NewSwappable(&fakeBackend{hidden: 8, categories: 32}, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Swap(&fakeBackend{hidden: 16, categories: 32}, "v2", nil); err == nil {
		t.Fatal("hidden-dim mismatch accepted")
	}
	if _, err := sw.Swap(&fakeBackend{hidden: 8, categories: 64}, "v2", nil); err == nil {
		t.Fatal("category-count mismatch accepted")
	}
	if _, err := sw.Swap(nil, "v2", nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	if sw.ModelVersion() != "v1" {
		t.Fatalf("version changed to %q after rejected swaps", sw.ModelVersion())
	}
	if _, err := sw.ClassifyBatch(context.Background(), [][]float32{make([]float32, 8)}, 1, 1); err != nil {
		t.Fatalf("old version stopped serving: %v", err)
	}
}

// TestModelEndpoint: GET /v1/model reports the active version and
// shapes; non-GET is rejected.
func TestModelEndpoint(t *testing.T) {
	sw, err := NewSwappable(&fakeBackend{hidden: 8, categories: 32}, "v7")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sw, Config{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ModelStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version != "v7" || out.Categories != 32 || out.Hidden != 8 || out.Draining {
		t.Fatalf("status = %+v", out)
	}

	post, err := ts.Client().Post(ts.URL+"/v1/model", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/model: %d", post.StatusCode)
	}
}

// TestReloadEndpoint covers the reload trigger surface: 501 with no
// registry wired, 200 with the new active version on success, 409
// with the old version still serving on a rejected candidate.
func TestReloadEndpoint(t *testing.T) {
	sw, err := NewSwappable(&fakeBackend{hidden: 8, categories: 32}, "v1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sw, Config{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body []byte) (*http.Response, error) {
		return ts.Client().Post(ts.URL+"/v1/model/reload", "application/json", bytes.NewReader(body))
	}

	// No reloader installed → 501.
	resp, err := post(nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no reloader: status = %d, want 501", resp.StatusCode)
	}

	var gotVersion string
	s.SetReloader(func(_ context.Context, version string) (string, error) {
		gotVersion = version
		if version == "bad" {
			return "v1", ErrOverloaded // any error: candidate rejected
		}
		if version == "" {
			version = "v2"
		}
		if _, err := sw.Swap(&fakeBackend{hidden: 8, categories: 32}, version, nil); err != nil {
			return "", err
		}
		return version, nil
	})

	// Empty body → newest version.
	resp, err = post(nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Version != "v2" || gotVersion != "" {
		t.Fatalf("reload: status=%d version=%q requested=%q", resp.StatusCode, rr.Version, gotVersion)
	}

	// Pinned version in the body.
	resp, err = post([]byte(`{"version":"v9"}`))
	if err != nil {
		t.Fatal(err)
	}
	rr = ReloadResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Version != "v9" || gotVersion != "v9" {
		t.Fatalf("pinned reload: status=%d version=%q requested=%q", resp.StatusCode, rr.Version, gotVersion)
	}

	// Rejected candidate → 409, old version still serving.
	resp, err = post([]byte(`{"version":"bad"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejected reload: status = %d, want 409", resp.StatusCode)
	}
	if sw.ModelVersion() != "v9" {
		t.Fatalf("active version %q after rejected reload, want v9", sw.ModelVersion())
	}

	// GET is not allowed.
	get, err := ts.Client().Get(ts.URL + "/v1/model/reload")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d", get.StatusCode)
	}
}

// TestShardedReplaceAndSkew: independent shard reloads must validate
// row coverage, surface version skew while shards disagree, and keep
// serving correct answers throughout.
func TestShardedReplaceAndSkew(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "swap-shard", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 23, Train: 128, Valid: 8, Test: 8})
	b := shardedBackend(t, inst, 3)

	// Tag the initial deployment uniformly.
	shards := b.Shards()
	for i := range shards {
		shards[i].Version = "v1"
		if err := b.ReplaceShard(i, shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if b.VersionSkew() || b.ModelVersion() != "v1" {
		t.Fatalf("uniform deployment: skew=%v version=%q", b.VersionSkew(), b.ModelVersion())
	}

	// Roll one shard forward: skew appears.
	upgraded := shards[1]
	upgraded.Version = "v2"
	if err := b.ReplaceShard(1, upgraded); err != nil {
		t.Fatal(err)
	}
	if !b.VersionSkew() {
		t.Fatal("no skew mid-rollout")
	}
	if b.ModelVersion() != "v1,v2" {
		t.Fatalf("mixed version = %q, want v1,v2", b.ModelVersion())
	}
	if sv := b.ShardVersions(); sv[0] != "v1" || sv[1] != "v2" || sv[2] != "v1" {
		t.Fatalf("shard versions = %v", sv)
	}

	// Still serves mid-rollout.
	outs, err := b.ClassifyBatch(context.Background(), inst.Test[:2], 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || len(outs[0].TopK) == 0 {
		t.Fatalf("bad outcomes mid-rollout: %+v", outs)
	}

	// Bad replacements are rejected.
	wrongOffset := shards[2]
	wrongOffset.Offset++
	if err := b.ReplaceShard(2, wrongOffset); err == nil {
		t.Fatal("offset mismatch accepted")
	}
	if err := b.ReplaceShard(0, distributed.Shard{}); err == nil {
		t.Fatal("incomplete shard accepted")
	}
	if err := b.ReplaceShard(99, shards[0]); err == nil {
		t.Fatal("out-of-range index accepted")
	}

	// Finish the rollout: skew clears.
	for i := range shards {
		sh := b.Shards()[i]
		sh.Version = "v2"
		if err := b.ReplaceShard(i, sh); err != nil {
			t.Fatal(err)
		}
	}
	if b.VersionSkew() || b.ModelVersion() != "v2" {
		t.Fatalf("post-rollout: skew=%v version=%q", b.VersionSkew(), b.ModelVersion())
	}
}

// TestSwappableLocalEquivalence: a Swappable-wrapped Local backend
// must serve bit-identical predictions to the bare backend, and the
// steady-state classify path through the wrapper must not allocate.
func TestSwappableLocalEquivalence(t *testing.T) {
	inst := workload.Generate(
		workload.Spec{Name: "swap-local", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 31, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 96, Hidden: 32, Reduced: 8, Precision: quant.INT4, Seed: 3,
	}, core.TrainOptions{Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(inst.Classifier, scr)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwappable(local, "v1")
	if err != nil {
		t.Fatal(err)
	}

	want, err := local.ClassifyBatch(context.Background(), inst.Test, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, version, err := sw.classifyBatchTagged(context.Background(), inst.Test, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v1" {
		t.Fatalf("version = %q", version)
	}
	for i := range want {
		if got[i].Class != want[i].Class {
			t.Fatalf("item %d: wrapped %d != bare %d", i, got[i].Class, want[i].Class)
		}
	}
}
