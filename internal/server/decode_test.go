package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/decode"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

// decodeFixture builds a server with a real decode service behind
// /v1/decode (small trained model, local scorer) and a fake classify
// backend — decode traffic never touches the batcher.
func decodeFixture(t *testing.T, cfg decode.Config) (*Server, *httptest.Server, *workload.Instance) {
	t.Helper()
	inst := workload.Generate(
		workload.Spec{Name: "decode-serve", Categories: 96, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 11, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 96, Hidden: 32, Reduced: 8, Precision: quant.INT4, Seed: 3,
	}, core.TrainOptions{Epochs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TopM == 0 {
		cfg.TopM = 12
	}
	dec := workload.NewDecoderFor(inst.Classifier, 7, 12)
	svc := decode.NewService(cfg, dec, func() decode.Scorer {
		return decode.NewLocalScorer(inst.Classifier, scr, decode.LocalScorerConfig{})
	})
	t.Cleanup(svc.Shutdown)
	s, err := New(&fakeBackend{hidden: 32, categories: 96}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain() })
	s.SetDecode(svc)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, inst
}

func postDecode(t *testing.T, ts *httptest.Server, req DecodeRequest) *http.Response {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/decode", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readNDJSON parses an ndjson decode stream into token frames plus
// the terminal done object.
func readNDJSON(t *testing.T, resp *http.Response) ([]DecodeFrame, DecodeDone) {
	t.Helper()
	defer resp.Body.Close()
	var frames []DecodeFrame
	var done DecodeDone
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad ndjson line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var f DecodeFrame
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done.Done {
		t.Fatal("stream ended without a done frame")
	}
	return frames, done
}

// TestDecodeNDJSONGreedy: a full greedy session over ndjson — one
// frame per token, a terminal done object, tokens consistent, and the
// finished session's slot freed immediately.
func TestDecodeNDJSONGreedy(t *testing.T) {
	s, ts, inst := decodeFixture(t, decode.Config{})
	maxLen := s.DecodeService().MaxLen()
	resp := postDecode(t, ts, DecodeRequest{H0: inst.Test[0], Stream: "ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	frames, done := readNDJSON(t, resp)
	if len(frames) != maxLen {
		t.Fatalf("streamed %d frames, want %d", len(frames), maxLen)
	}
	if !done.Finished || done.Steps != maxLen {
		t.Fatalf("done = %+v", done)
	}
	if len(done.Tokens) != maxLen {
		t.Fatalf("done carries %d tokens, want %d", len(done.Tokens), maxLen)
	}
	for i, f := range frames {
		if f.T != i || f.Token != done.Tokens[i] || f.Session != done.Session {
			t.Fatalf("frame %d inconsistent: %+v vs tokens %v", i, f, done.Tokens)
		}
		if f.M <= 0 {
			t.Fatalf("frame %d has non-positive m: %+v", i, f)
		}
	}
	if done.CacheHitRate <= 0 {
		t.Fatalf("expected a warm candidate cache, hit rate %v", done.CacheHitRate)
	}
	// Finished sessions are auto-closed: continuing must 404.
	resp = postDecode(t, ts, DecodeRequest{Session: done.Session, Stream: "ndjson"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("continue after finish: status = %d, want 404", resp.StatusCode)
	}
}

// TestDecodeSSEFrames: the default stream is SSE — event-typed frames
// with data: payloads that parse back to the same schema.
func TestDecodeSSEFrames(t *testing.T) {
	_, ts, inst := decodeFixture(t, decode.Config{})
	resp := postDecode(t, ts, DecodeRequest{H0: inst.Test[1], Mode: "beam", Width: 3, MaxTokens: 4})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	var events []string
	var payloads [][]byte
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events = append(events, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			payloads = append(payloads, []byte(strings.TrimPrefix(line, "data: ")))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 || len(payloads) != 5 {
		t.Fatalf("got %d events / %d payloads, want 4 tokens + done", len(events), len(payloads))
	}
	for i := 0; i < 4; i++ {
		if events[i] != "token" {
			t.Fatalf("event %d = %q", i, events[i])
		}
		var f DecodeFrame
		if err := json.Unmarshal(payloads[i], &f); err != nil {
			t.Fatal(err)
		}
		if f.T != i {
			t.Fatalf("frame %d has t=%d", i, f.T)
		}
	}
	if events[4] != "done" {
		t.Fatalf("terminal event = %q", events[4])
	}
	var done DecodeDone
	if err := json.Unmarshal(payloads[4], &done); err != nil {
		t.Fatal(err)
	}
	if done.Steps != 4 || done.Finished {
		t.Fatalf("done = %+v (partial stream must not be finished)", done)
	}
	// Continue the same session to the end over ndjson.
	resp2 := postDecode(t, ts, DecodeRequest{Session: done.Session, Stream: "ndjson"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("continue status = %d", resp2.StatusCode)
	}
	_, done2 := readNDJSON(t, resp2)
	if !done2.Finished || done2.Steps != 12 {
		t.Fatalf("continued done = %+v", done2)
	}
}

// TestDecodeSessionLimit: MaxSessions exhausted answers 429 with a
// Retry-After hint, and closing a session frees the slot.
func TestDecodeSessionLimit(t *testing.T) {
	_, ts, inst := decodeFixture(t, decode.Config{MaxSessions: 1})
	resp := postDecode(t, ts, DecodeRequest{H0: inst.Test[0], MaxTokens: 1, Stream: "ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first open: status = %d", resp.StatusCode)
	}
	_, done := readNDJSON(t, resp)

	resp = postDecode(t, ts, DecodeRequest{H0: inst.Test[1], Stream: "ndjson"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second open: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	resp = postDecode(t, ts, DecodeRequest{Session: done.Session, Close: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status = %d", resp.StatusCode)
	}
	var closed DecodeDone
	if err := json.NewDecoder(resp.Body).Decode(&closed); err != nil {
		t.Fatal(err)
	}
	if !closed.Closed {
		t.Fatalf("close response = %+v", closed)
	}
	resp = postDecode(t, ts, DecodeRequest{H0: inst.Test[2], MaxTokens: 1, Stream: "ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open after close: status = %d", resp.StatusCode)
	}
	readNDJSON(t, resp)
}

// TestDecodeErrorStatuses covers the non-streaming failure mappings:
// no service → 501, unknown session → 404, bad mode → 400, draining →
// 503 for new sessions.
func TestDecodeErrorStatuses(t *testing.T) {
	bare, err := New(&fakeBackend{hidden: 8, categories: 32}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Drain()
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp := postDecode(t, tsBare, DecodeRequest{H0: make([]float32, 8)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no service: status = %d, want 501", resp.StatusCode)
	}

	s, ts, inst := decodeFixture(t, decode.Config{})
	resp = postDecode(t, ts, DecodeRequest{Session: "nope", Stream: "ndjson"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status = %d, want 404", resp.StatusCode)
	}
	resp = postDecode(t, ts, DecodeRequest{Session: "nope", Close: true})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("close unknown: status = %d, want 404", resp.StatusCode)
	}
	resp = postDecode(t, ts, DecodeRequest{H0: inst.Test[0], Mode: "viterbi"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status = %d, want 400", resp.StatusCode)
	}
	resp = postDecode(t, ts, DecodeRequest{H0: inst.Test[0][:4]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad h0 dim: status = %d, want 400", resp.StatusCode)
	}

	go s.Drain()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp = postDecode(t, ts, DecodeRequest{H0: inst.Test[0]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining open: status = %d, want 503", resp.StatusCode)
	}
}
