package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"enmc/internal/decode"
	"enmc/internal/telemetry"
)

var mDecodeNs = telemetry.Default().Histogram("server.http.decode_ns", telemetry.LatencyBuckets())

// DecodeRequest is the POST /v1/decode body. An empty Session opens a
// new session from H0; a non-empty one continues (or, with Close,
// ends) an existing session.
type DecodeRequest struct {
	Session string    `json:"session,omitempty"`
	H0      []float32 `json:"h0,omitempty"`
	// Mode is "greedy" (default) or "beam".
	Mode  string `json:"mode,omitempty"`
	Width int    `json:"width,omitempty"`
	// MaxTokens bounds this request's stream; <=0 decodes to the
	// session's end.
	MaxTokens int `json:"max_tokens,omitempty"`
	// Stream is "sse" (default: text/event-stream with one
	// "token" event per frame and a final "done" event) or "ndjson"
	// (one JSON object per line, last object has "done":true).
	Stream string `json:"stream,omitempty"`
	// Close ends the session instead of decoding.
	Close bool `json:"close,omitempty"`
}

// DecodeFrame is one streamed token event.
type DecodeFrame struct {
	Session  string  `json:"session"`
	T        int     `json:"t"`
	Token    int     `json:"token"`
	LogProb  float64 `json:"logprob"`
	M        int     `json:"m"`
	Degraded bool    `json:"degraded,omitempty"`
}

// DecodeDone is the stream's terminal event (and the response body
// for Close requests).
type DecodeDone struct {
	Session string `json:"session"`
	Done    bool   `json:"done"`
	Steps   int    `json:"steps"`
	// Tokens is the full sequence so far — for beam sessions the best
	// hypothesis, which may disagree with earlier provisional frames.
	Tokens   []int `json:"tokens,omitempty"`
	Finished bool  `json:"finished"`
	Evicted  bool  `json:"evicted,omitempty"`
	Closed   bool  `json:"closed,omitempty"`
	// CacheHitRate is the session's cumulative candidate-cache hit
	// rate (0 when the scorer has no cache, e.g. cluster mode).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// LogProb is the best hypothesis's cumulative log-probability
	// (beam sessions).
	LogProb float64 `json:"logprob,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// SetDecode installs (or, with nil, uninstalls) the streaming decode
// service behind POST /v1/decode. Safe to call while serving.
func (s *Server) SetDecode(svc *decode.Service) {
	if svc == nil {
		s.decodeSvc.Store(nil)
		return
	}
	s.decodeSvc.Store(svc)
}

// DecodeService returns the installed decode service (nil when decode
// is not enabled).
func (s *Server) DecodeService() *decode.Service { return s.decodeSvc.Load() }

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { mDecodeNs.Observe(float64(time.Since(start))) }()
	mRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	svc := s.decodeSvc.Load()
	if svc == nil {
		writeError(w, http.StatusNotImplemented, "decode service not enabled (-decode)")
		return
	}
	var body DecodeRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}

	if body.Close {
		if body.Session == "" {
			writeError(w, http.StatusBadRequest, "close requires a session id")
			return
		}
		if err := svc.Close(body.Session); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, DecodeDone{Session: body.Session, Done: true, Closed: true})
		return
	}

	var sess *decode.Session
	if body.Session == "" {
		if s.Draining() {
			s.writeUnavailable(w, ErrDraining)
			return
		}
		mode := decode.Mode(body.Mode)
		if mode == "" {
			mode = decode.Greedy
		}
		// A new session is one admission: it charges the owner tenant's
		// rate quota and counts against its concurrent-session cap until
		// the session leaves the service (close, eviction, shutdown).
		ten := s.tenantFor(r)
		ts := s.tstats.For(ten)
		if !s.allowQuota(w, ten, ts, 1) {
			return
		}
		if !ten.AcquireSession() {
			ts.Throttled.Inc()
			mStatus429.Inc()
			s.retryAfterHeader(w)
			writeErrorReason(w, http.StatusTooManyRequests, "session_quota",
				fmt.Sprintf("tenant %s at its session cap (%d)", ten.Name, ten.MaxSessions()))
			return
		}
		var err error
		sess, err = svc.OpenOwned(mode, body.Width, body.H0, ten.ReleaseSession)
		switch {
		case err == nil:
			ts.Admitted.Inc()
		case errors.Is(err, decode.ErrSessionLimit):
			ten.ReleaseSession()
			ts.Throttled.Inc()
			mStatus429.Inc()
			s.retryAfterHeader(w)
			writeErrorReason(w, http.StatusTooManyRequests, "session_limit", err.Error())
			return
		default:
			ten.ReleaseSession()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		var err error
		sess, err = svc.Get(body.Session)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
	}

	n := body.MaxTokens
	if n <= 0 || n > svc.MaxLen() {
		n = svc.MaxLen()
	}
	sse := body.Stream != "ndjson"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	frames := 0
	emit := func(tok decode.Token) error {
		// The first write commits the 200; everything before that can
		// still surface as a proper status code.
		err := writeFrame(w, enc, sse, "token", DecodeFrame{
			Session: sess.ID, T: tok.Step, Token: tok.Token,
			LogProb: tok.LogProb, M: tok.M, Degraded: tok.Degraded,
		})
		if err != nil {
			return err
		}
		frames++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	finished, runErr := sess.Run(r.Context(), n, emit)
	if meta := metaFrom(r.Context()); meta != nil {
		meta.items = frames
		if runErr != nil {
			meta.errMsg = runErr.Error()
		}
	}
	if frames == 0 {
		// Nothing streamed yet: map the failure onto a real status.
		switch {
		case errors.Is(runErr, decode.ErrBusy):
			writeError(w, http.StatusConflict, runErr.Error())
			return
		case errors.Is(runErr, decode.ErrEvicted):
			writeError(w, http.StatusGone, runErr.Error())
			return
		}
	}
	done := DecodeDone{
		Session:  sess.ID,
		Done:     true,
		Steps:    sess.Step(),
		Tokens:   sess.Tokens(),
		Finished: finished,
		Evicted:  errors.Is(runErr, decode.ErrEvicted),
		LogProb:  sess.BestLogProb(),
	}
	if hits, misses := sess.CacheStats(); hits+misses > 0 {
		done.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if runErr != nil && !done.Evicted {
		done.Error = runErr.Error()
	}
	if err := writeFrame(w, enc, sse, "done", done); err == nil && flusher != nil {
		flusher.Flush()
	}
	// A finished session is spent — free its slot immediately instead
	// of waiting out the TTL.
	if finished {
		_ = svc.Close(sess.ID)
	}
}

func writeFrame(w http.ResponseWriter, enc *json.Encoder, sse bool, event string, v any) error {
	if sse {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: ", event); err != nil {
			return err
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		_, err := fmt.Fprint(w, "\n")
		return err
	}
	return enc.Encode(v)
}
