package distributed

import (
	"context"
	"testing"

	"enmc/internal/core"
)

func TestClassifyCtxCanceled(t *testing.T) {
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 2, inst.Train, trainCfg(), core.TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClassifyCtx(ctx, shards, inst.Test[0], 4, 3); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A live context classifies normally through the same path.
	merged, err := ClassifyCtx(context.Background(), shards, inst.Test[0], 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("top-k = %d, want 3", len(merged))
	}
}

func TestClassifyCtxErrorPaths(t *testing.T) {
	ctx := context.Background()
	if _, err := ClassifyCtx(ctx, nil, make([]float32, 4), 1, 1); err == nil {
		t.Fatal("empty shards accepted")
	}
	// A shard missing its screener must error by index, not panic.
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 2, inst.Train, trainCfg(), core.TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	broken := []Shard{shards[0], {Offset: shards[1].Offset, Classifier: shards[1].Classifier}}
	if _, err := ClassifyCtx(ctx, broken, inst.Test[0], 4, 3); err == nil {
		t.Fatal("incomplete shard accepted")
	}
}
