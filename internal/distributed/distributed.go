// Package distributed implements the scale-out extension the paper
// sketches in its related-work discussion: "our design can scale-out
// from single-node to distributed nodes, where each node keeps an
// approximate screener". Classes are sharded row-wise across nodes;
// every node screens its shard locally on its own ENMC memory system,
// recomputes its local candidates exactly, and ships only the
// candidate (index, logit) pairs to an aggregator that merges the
// global top-k — the same decomposition capacity-driven
// recommendation inference uses (Lui et al., ISPASS 2021).
//
// Two layers are provided: a functional layer (Shard/Classify) that
// proves the sharded computation is equivalent to single-node
// classification, and a performance layer (Config.Run) that models
// per-node ENMC simulation plus the scatter/gather network.
package distributed

import (
	"context"
	"fmt"
	"sort"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/system"
	"enmc/internal/tensor"
)

// --- functional layer ---

// Shard is one node's slice of the class space: a classifier over
// rows [Offset, Offset+Classifier.Categories) of the global problem,
// with its own locally trained screener.
type Shard struct {
	Offset     int
	Classifier *core.Classifier
	Screener   *core.Screener
	// Version names the model artifact this shard serves (registry
	// version string; empty for unversioned shards). Shards reload
	// independently in a rolling update, so a deployment can be on
	// mixed versions mid-rollout — the serving layer surfaces that
	// skew per-response.
	Version string
}

// Candidate is a merged result entry in global class numbering.
type Candidate struct {
	Class int
	Logit float32
}

// Classify screens every shard locally with a per-shard top-m budget,
// recomputes local candidates exactly, and merges the global top-k,
// descending by exact logit.
func Classify(shards []Shard, h []float32, perShardM, topK int) ([]Candidate, error) {
	return ClassifyCtx(context.Background(), shards, h, perShardM, topK)
}

// ClassifyCtx is Classify with cancellation honored between shards:
// once ctx is done no further shard is screened and the call returns
// ctx.Err() — the abort path a serving frontend uses when the client
// deadline expires mid-scatter.
func ClassifyCtx(ctx context.Context, shards []Shard, h []float32, perShardM, topK int) ([]Candidate, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("distributed: no shards")
	}
	var merged []Candidate
	for i, s := range shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.Classifier == nil || s.Screener == nil {
			return nil, fmt.Errorf("distributed: shard %d incomplete", i)
		}
		res := core.ClassifyApprox(s.Classifier, s.Screener, h, core.TopM(perShardM))
		for j, c := range res.Candidates {
			merged = append(merged, Candidate{Class: s.Offset + c, Logit: res.Exact[j]})
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Logit != merged[b].Logit {
			return merged[a].Logit > merged[b].Logit
		}
		return merged[a].Class < merged[b].Class
	})
	if topK > 0 && len(merged) > topK {
		merged = merged[:topK]
	}
	return merged, nil
}

// ShardClassifier splits a global classifier into n row-contiguous
// shards and trains a screener per shard on the given samples.
func ShardClassifier(cls *core.Classifier, n int, samples [][]float32, cfg core.Config, opt core.TrainOptions) ([]Shard, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distributed: non-positive shard count %d", n)
	}
	l := cls.Categories()
	if n > l {
		return nil, fmt.Errorf("distributed: more shards (%d) than classes (%d)", n, l)
	}
	shards := make([]Shard, 0, n)
	per := (l + n - 1) / n
	for off := 0; off < l; off += per {
		end := off + per
		if end > l {
			end = l
		}
		sub := &tensor.Matrix{
			Rows: end - off,
			Cols: cls.Hidden(),
			Data: cls.W.Data[off*cls.Hidden() : end*cls.Hidden()],
		}
		subCls, err := core.NewClassifier(sub, cls.B[off:end])
		if err != nil {
			return nil, err
		}
		shardCfg := cfg
		shardCfg.Categories = end - off
		shardCfg.Seed = cfg.Seed + uint64(off)
		scr, _, err := core.TrainScreener(subCls, samples, shardCfg, opt)
		if err != nil {
			return nil, err
		}
		shards = append(shards, Shard{Offset: off, Classifier: subCls, Screener: scr})
	}
	return shards, nil
}

// --- performance layer ---

// Config describes a multi-node deployment.
type Config struct {
	Nodes int
	// System is the per-node ENMC memory system (the Table 3 8×8
	// topology by default).
	System system.Config
	// LinkBandwidthGBs is the per-node network bandwidth (e.g. 12.5
	// for 100 GbE).
	LinkBandwidthGBs float64
	// LinkLatencySec is the one-way message latency.
	LinkLatencySec float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("distributed: non-positive node count")
	}
	if c.LinkBandwidthGBs <= 0 || c.LinkLatencySec < 0 {
		return fmt.Errorf("distributed: bad network parameters")
	}
	return nil
}

// Result reports a distributed offload.
type Result struct {
	Nodes          int
	PerNodeSeconds float64 // slowest node's local classification
	ScatterSeconds float64 // broadcast of the query features
	GatherSeconds  float64 // candidate collection at the aggregator
	TotalSeconds   float64
	// EnergyJoules sums all nodes' memory-system energy.
	EnergyJoules float64
}

// Run shards the task across nodes and models one batched offload.
func (c Config) Run(task compiler.Task, mode compiler.Mode) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	shard := task
	shard.Categories = ceilDiv(task.Categories, c.Nodes)
	shard.Candidates = ceilDiv(task.Candidates, c.Nodes)
	if shard.Candidates > shard.Categories {
		shard.Candidates = shard.Categories
	}

	nodeRes, err := c.System.Run(shard, mode)
	if err != nil {
		return Result{}, err
	}

	out := Result{Nodes: c.Nodes, PerNodeSeconds: nodeRes.Seconds}
	bw := c.LinkBandwidthGBs * 1e9

	// Scatter: the query batch's hidden vectors go to every node.
	scatterBytes := float64(task.Batch) * float64(task.Hidden) * 4
	out.ScatterSeconds = c.LinkLatencySec + scatterBytes/bw

	// Gather: each node returns (index, logit) pairs for its local
	// candidates; the aggregator's fan-in serializes the streams.
	gatherBytes := float64(c.Nodes) * float64(task.Batch) * float64(shard.Candidates) * 8
	out.GatherSeconds = c.LinkLatencySec + gatherBytes/bw

	out.TotalSeconds = out.PerNodeSeconds + out.ScatterSeconds + out.GatherSeconds
	out.EnergyJoules = nodeRes.Energy.TotalJ() * float64(c.Nodes)
	return out, nil
}

// ScaleOutEfficiency runs the task on 1..maxNodes nodes and returns
// the parallel efficiency curve speedup(n)/n — the quantity that
// shows where the network starts to dominate.
func (c Config) ScaleOutEfficiency(task compiler.Task, mode compiler.Mode, maxNodes int) ([]float64, error) {
	single := c
	single.Nodes = 1
	base, err := single.Run(task, mode)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, maxNodes)
	for n := 1; n <= maxNodes; n++ {
		cn := c
		cn.Nodes = n
		r, err := cn.Run(task, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, base.TotalSeconds/r.TotalSeconds/float64(n))
	}
	return out, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
