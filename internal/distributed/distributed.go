// Package distributed implements the scale-out extension the paper
// sketches in its related-work discussion: "our design can scale-out
// from single-node to distributed nodes, where each node keeps an
// approximate screener". Classes are sharded row-wise across nodes;
// every node screens its shard locally on its own ENMC memory system,
// recomputes its local candidates exactly, and ships only the
// candidate (index, logit) pairs to an aggregator that merges the
// global top-k — the same decomposition capacity-driven
// recommendation inference uses (Lui et al., ISPASS 2021).
//
// Two layers are provided: a functional layer (Shard/Classify) that
// proves the sharded computation is equivalent to single-node
// classification, and a performance layer (Config.Run) that models
// per-node ENMC simulation plus the scatter/gather network.
package distributed

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/system"
	"enmc/internal/tensor"
)

// --- functional layer ---

// Shard is one node's slice of the class space: a classifier over
// rows [Offset, Offset+Classifier.Categories) of the global problem,
// with its own locally trained screener.
type Shard struct {
	Offset     int
	Classifier *core.Classifier
	Screener   *core.Screener
	// Version names the model artifact this shard serves (registry
	// version string; empty for unversioned shards). Shards reload
	// independently in a rolling update, so a deployment can be on
	// mixed versions mid-rollout — the serving layer surfaces that
	// skew per-response.
	Version string
}

// Candidate is a merged result entry in global class numbering.
type Candidate struct {
	Class int
	Logit float32
}

// Classify screens every shard locally with a per-shard top-m budget,
// recomputes local candidates exactly, and merges the global top-k,
// descending by exact logit.
func Classify(shards []Shard, h []float32, perShardM, topK int) ([]Candidate, error) {
	return ClassifyCtx(context.Background(), shards, h, perShardM, topK)
}

// ClassifyCtx is Classify with cancellation honored between shards:
// once ctx is done no further shard is screened and the call returns
// ctx.Err() — the abort path a serving frontend uses when the client
// deadline expires mid-scatter.
//
// Shards are screened by a bounded pool of workers (at most
// GOMAXPROCS, at most one per shard) instead of sequentially; the
// merged result is bit-identical to the sequential scan because every
// shard contributes exactly the same candidate list and Merge orders
// the union deterministically (descending exact logit, ties by
// ascending class).
func ClassifyCtx(ctx context.Context, shards []Shard, h []float32, perShardM, topK int) ([]Candidate, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("distributed: no shards")
	}
	for i, s := range shards {
		if s.Classifier == nil || s.Screener == nil {
			return nil, fmt.Errorf("distributed: shard %d incomplete", i)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		return classifySequential(ctx, shards, h, perShardM, topK)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Indexed slots keep the gather order independent of worker
	// scheduling; each worker claims the next unscanned shard.
	perShard := make([][]Candidate, len(shards))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) || ctx.Err() != nil {
					return
				}
				perShard[i] = shardCandidates(shards[i], h, perShardM)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, c := range perShard {
		total += len(c)
	}
	merged := make([]Candidate, 0, total)
	for _, c := range perShard {
		merged = append(merged, c...)
	}
	return Merge(merged, topK), nil
}

// classifySequential is the reference single-goroutine scan the
// parallel fan-out must stay bit-identical to (pinned by test).
func classifySequential(ctx context.Context, shards []Shard, h []float32, perShardM, topK int) ([]Candidate, error) {
	var merged []Candidate
	for _, s := range shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		merged = append(merged, shardCandidates(s, h, perShardM)...)
	}
	return Merge(merged, topK), nil
}

// shardCandidates screens one shard and globalizes its exact
// candidate pairs — the unit of work both scan orders share.
func shardCandidates(s Shard, h []float32, perShardM int) []Candidate {
	res := core.ClassifyApprox(s.Classifier, s.Screener, h, core.TopM(perShardM))
	out := make([]Candidate, len(res.Candidates))
	for j, c := range res.Candidates {
		out[j] = Candidate{Class: s.Offset + c, Logit: res.Exact[j]}
	}
	return out
}

// Merge ranks a gathered candidate pool descending by exact logit
// (ties broken by ascending class) and truncates to topK (topK <= 0
// keeps everything). It mutates and returns cands. This is the
// aggregator step shared by the in-process scatter (ClassifyCtx) and
// the networked cluster router.
func Merge(cands []Candidate, topK int) []Candidate {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Logit != cands[b].Logit {
			return cands[a].Logit > cands[b].Logit
		}
		return cands[a].Class < cands[b].Class
	})
	if topK > 0 && len(cands) > topK {
		cands = cands[:topK]
	}
	return cands
}

// MergeDedup is Merge over untrusted replies: in-process shards are
// disjoint by construction, but a networked shard map can overlap (a
// misconfigured router, a double reply), so duplicate class entries
// collapse to their highest logit before ranking.
func MergeDedup(cands []Candidate, topK int) []Candidate {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Class != cands[b].Class {
			return cands[a].Class < cands[b].Class
		}
		return cands[a].Logit > cands[b].Logit
	})
	uniq := cands[:0]
	for _, c := range cands {
		if len(uniq) == 0 || c.Class != uniq[len(uniq)-1].Class {
			uniq = append(uniq, c)
		}
	}
	return Merge(uniq, topK)
}

// ShardCount reports how many non-empty row shards splitting l
// classes n ways produces (ceiling-division row slices can leave the
// tail shards empty when n does not divide l evenly).
func ShardCount(l, n int) int {
	per := (l + n - 1) / n
	return (l + per - 1) / per
}

// ShardRange returns the class rows [off, end) shard i owns when l
// classes are split across n shards — the row map every process in a
// cluster (workers and router alike) must agree on.
func ShardRange(l, n, i int) (off, end int, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("distributed: non-positive shard count %d", n)
	}
	if n > l {
		return 0, 0, fmt.Errorf("distributed: more shards (%d) than classes (%d)", n, l)
	}
	if i < 0 || i >= ShardCount(l, n) {
		return 0, 0, fmt.Errorf("distributed: shard index %d out of range [0,%d)", i, ShardCount(l, n))
	}
	per := (l + n - 1) / n
	off = i * per
	end = off + per
	if end > l {
		end = l
	}
	return off, end, nil
}

// ShardOne builds shard i of an n-way split: the row-slice
// sub-classifier plus a screener trained locally on the given
// samples. The per-shard seed is derived from the row offset, so a
// worker process building only its own shard produces bit-identical
// parameters to ShardClassifier building all of them.
func ShardOne(cls *core.Classifier, n, i int, samples [][]float32, cfg core.Config, opt core.TrainOptions) (Shard, error) {
	off, end, err := ShardRange(cls.Categories(), n, i)
	if err != nil {
		return Shard{}, err
	}
	sub := &tensor.Matrix{
		Rows: end - off,
		Cols: cls.Hidden(),
		Data: cls.W.Data[off*cls.Hidden() : end*cls.Hidden()],
	}
	subCls, err := core.NewClassifier(sub, cls.B[off:end])
	if err != nil {
		return Shard{}, err
	}
	shardCfg := cfg
	shardCfg.Categories = end - off
	shardCfg.Seed = cfg.Seed + uint64(off)
	scr, _, err := core.TrainScreener(subCls, samples, shardCfg, opt)
	if err != nil {
		return Shard{}, err
	}
	return Shard{Offset: off, Classifier: subCls, Screener: scr}, nil
}

// ShardClassifier splits a global classifier into n row-contiguous
// shards and trains a screener per shard on the given samples.
func ShardClassifier(cls *core.Classifier, n int, samples [][]float32, cfg core.Config, opt core.TrainOptions) ([]Shard, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distributed: non-positive shard count %d", n)
	}
	l := cls.Categories()
	if n > l {
		return nil, fmt.Errorf("distributed: more shards (%d) than classes (%d)", n, l)
	}
	count := ShardCount(l, n)
	shards := make([]Shard, 0, count)
	for i := 0; i < count; i++ {
		sh, err := ShardOne(cls, n, i, samples, cfg, opt)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// --- performance layer ---

// Config describes a multi-node deployment.
type Config struct {
	Nodes int
	// System is the per-node ENMC memory system (the Table 3 8×8
	// topology by default).
	System system.Config
	// LinkBandwidthGBs is the per-node network bandwidth (e.g. 12.5
	// for 100 GbE).
	LinkBandwidthGBs float64
	// LinkLatencySec is the one-way message latency.
	LinkLatencySec float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("distributed: non-positive node count")
	}
	if c.LinkBandwidthGBs <= 0 || c.LinkLatencySec < 0 {
		return fmt.Errorf("distributed: bad network parameters")
	}
	return nil
}

// Result reports a distributed offload.
type Result struct {
	Nodes          int
	PerNodeSeconds float64 // slowest node's local classification
	ScatterSeconds float64 // broadcast of the query features
	GatherSeconds  float64 // candidate collection at the aggregator
	TotalSeconds   float64
	// EnergyJoules sums all nodes' memory-system energy.
	EnergyJoules float64
}

// Run shards the task across nodes and models one batched offload.
func (c Config) Run(task compiler.Task, mode compiler.Mode) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	shard := task
	shard.Categories = ceilDiv(task.Categories, c.Nodes)
	shard.Candidates = ceilDiv(task.Candidates, c.Nodes)
	if shard.Candidates > shard.Categories {
		shard.Candidates = shard.Categories
	}

	nodeRes, err := c.System.Run(shard, mode)
	if err != nil {
		return Result{}, err
	}

	out := Result{Nodes: c.Nodes, PerNodeSeconds: nodeRes.Seconds}
	bw := c.LinkBandwidthGBs * 1e9

	// Scatter: the query batch's hidden vectors go to every node.
	scatterBytes := float64(task.Batch) * float64(task.Hidden) * 4
	out.ScatterSeconds = c.LinkLatencySec + scatterBytes/bw

	// Gather: each node returns (index, logit) pairs for its local
	// candidates; the aggregator's fan-in serializes the streams.
	gatherBytes := float64(c.Nodes) * float64(task.Batch) * float64(shard.Candidates) * 8
	out.GatherSeconds = c.LinkLatencySec + gatherBytes/bw

	out.TotalSeconds = out.PerNodeSeconds + out.ScatterSeconds + out.GatherSeconds
	out.EnergyJoules = nodeRes.Energy.TotalJ() * float64(c.Nodes)
	return out, nil
}

// ScaleOutEfficiency runs the task on 1..maxNodes nodes and returns
// the parallel efficiency curve speedup(n)/n — the quantity that
// shows where the network starts to dominate.
func (c Config) ScaleOutEfficiency(task compiler.Task, mode compiler.Mode, maxNodes int) ([]float64, error) {
	single := c
	single.Nodes = 1
	base, err := single.Run(task, mode)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, maxNodes)
	for n := 1; n <= maxNodes; n++ {
		cn := c
		cn.Nodes = n
		r, err := cn.Run(task, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, base.TotalSeconds/r.TotalSeconds/float64(n))
	}
	return out, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
