package distributed

import (
	"testing"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/nmp"
	"enmc/internal/quant"
	"enmc/internal/system"
	"enmc/internal/workload"
)

func testInstance(t *testing.T) *workload.Instance {
	t.Helper()
	spec := workload.Spec{Name: "dist", Categories: 480, Hidden: 64, LatentRank: 16, ZipfS: 1}
	return workload.Generate(spec, workload.GenOptions{Seed: 13, Train: 256, Valid: 16, Test: 24})
}

func trainCfg() core.Config {
	return core.Config{Categories: 480, Hidden: 64, Reduced: 16, Precision: quant.INT4, Seed: 2}
}

func TestShardClassifierSplits(t *testing.T) {
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 4, inst.Train, trainCfg(), core.TrainOptions{Epochs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("shards = %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Classifier.Categories()
	}
	if total != 480 {
		t.Fatalf("shards cover %d classes", total)
	}
	if _, err := ShardClassifier(inst.Classifier, 0, inst.Train, trainCfg(), core.TrainOptions{}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := ShardClassifier(inst.Classifier, 481, inst.Train, trainCfg(), core.TrainOptions{}); err == nil {
		t.Fatal("more shards than classes accepted")
	}
}

// TestShardedMatchesSingleNode: the distributed classification must
// recover the same global top classes as a single-node screener with
// the same total budget (both approximate the same exact layer, so we
// compare both against exact).
func TestShardedMatchesSingleNode(t *testing.T) {
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 4, inst.Train, trainCfg(), core.TrainOptions{Epochs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, h := range inst.Test {
		merged, err := Classify(shards, h, 12, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) != 5 {
			t.Fatalf("merged top-k = %d", len(merged))
		}
		exact := inst.Classifier.Predict(h)
		if merged[0].Class == exact {
			hits++
		}
		// Exact logits must be carried through the merge.
		full := inst.Classifier.Logits(h)
		for _, c := range merged {
			if full[c.Class] != c.Logit {
				t.Fatalf("merged logit for class %d not exact", c.Class)
			}
		}
		// Descending order.
		for i := 1; i < len(merged); i++ {
			if merged[i].Logit > merged[i-1].Logit {
				t.Fatal("merge not sorted")
			}
		}
	}
	if hits < len(inst.Test)*8/10 {
		t.Fatalf("distributed top-1 recovery %d/%d", hits, len(inst.Test))
	}
}

func TestClassifyValidation(t *testing.T) {
	if _, err := Classify(nil, nil, 1, 1); err == nil {
		t.Fatal("empty shards accepted")
	}
	if _, err := Classify([]Shard{{}}, make([]float32, 4), 1, 1); err == nil {
		t.Fatal("incomplete shard accepted")
	}
}

func perfConfig() Config {
	sys := system.Default(nmp.ENMC())
	sys.SampleRows = 1024
	return Config{
		Nodes:            4,
		System:           sys,
		LinkBandwidthGBs: 12.5,
		LinkLatencySec:   5e-6,
	}
}

func TestRunPerformance(t *testing.T) {
	task := compiler.Task{Categories: 1_000_000, Hidden: 512, Reduced: 128, Candidates: 20000, Batch: 1}
	cfg := perfConfig()
	res, err := cfg.Run(task, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 || res.PerNodeSeconds <= 0 {
		t.Fatalf("empty result %+v", res)
	}
	if res.TotalSeconds < res.PerNodeSeconds {
		t.Fatal("network time went negative")
	}
	// Four nodes must beat one node on a large workload.
	one := cfg
	one.Nodes = 1
	r1, err := one.Run(task, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds >= r1.TotalSeconds {
		t.Fatalf("4 nodes (%v s) not faster than 1 (%v s)", res.TotalSeconds, r1.TotalSeconds)
	}
}

func TestScaleOutEfficiencyDecays(t *testing.T) {
	task := compiler.Task{Categories: 2_000_000, Hidden: 512, Reduced: 128, Candidates: 40000, Batch: 1}
	eff, err := perfConfig().ScaleOutEfficiency(task, compiler.ModeScreened, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff) != 8 {
		t.Fatalf("efficiency points = %d", len(eff))
	}
	if eff[0] < 0.99 || eff[0] > 1.01 {
		t.Fatalf("single-node efficiency %v, want 1", eff[0])
	}
	// Efficiency must decay as the network grows relative to compute.
	if eff[7] >= eff[0] {
		t.Fatalf("efficiency did not decay: %v", eff)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := perfConfig()
	bad.Nodes = 0
	if _, err := bad.Run(compiler.Task{Categories: 10, Hidden: 4, Reduced: 2, Candidates: 1, Batch: 1}, compiler.ModeScreened); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = perfConfig()
	bad.LinkBandwidthGBs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}
