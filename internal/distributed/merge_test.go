package distributed

import (
	"context"
	"runtime"
	"testing"
	"time"

	"enmc/internal/core"
)

// TestMergeOrderingAndTies: the aggregator must rank descending by
// exact logit with exact ties broken by ascending class — the
// deterministic order both the in-process scatter and the networked
// router rely on for bit-identical merges.
func TestMergeOrderingAndTies(t *testing.T) {
	in := []Candidate{
		{Class: 7, Logit: 1.5},
		{Class: 3, Logit: 2.0},
		{Class: 9, Logit: 2.0}, // exact tie with class 3
		{Class: 1, Logit: -4.0},
	}
	got := Merge(in, 0)
	want := []Candidate{{3, 2.0}, {9, 2.0}, {7, 1.5}, {1, -4.0}}
	if len(got) != len(want) {
		t.Fatalf("merged %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Truncation respects the same order.
	top := Merge(append([]Candidate(nil), want...), 2)
	if len(top) != 2 || top[0] != want[0] || top[1] != want[1] {
		t.Fatalf("top-2 = %+v", top)
	}
}

// TestMergeEmpty: an empty (or nil) gather pool merges to an empty
// top-k — the shape a shard replying with zero candidates produces.
func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil, 5); len(got) != 0 {
		t.Fatalf("merge(nil) = %+v", got)
	}
	if got := MergeDedup([]Candidate{}, 5); len(got) != 0 {
		t.Fatalf("mergeDedup(empty) = %+v", got)
	}
}

// TestMergeDedupDuplicateClasses: duplicate class indices across
// shard replies (a mis-wired networked shard map) collapse to the
// highest logit before ranking.
func TestMergeDedupDuplicateClasses(t *testing.T) {
	in := []Candidate{
		{Class: 5, Logit: 0.5},
		{Class: 2, Logit: 0.7},
		{Class: 5, Logit: 1.0}, // same class, higher logit, other "shard"
		{Class: 2, Logit: 0.7}, // exact duplicate pair
	}
	got := MergeDedup(in, 0)
	want := []Candidate{{5, 1.0}, {2, 0.7}}
	if len(got) != len(want) {
		t.Fatalf("deduped to %d candidates (%+v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deduped[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestClassifyCtxParallelMatchesSequential pins the satellite
// requirement: the bounded concurrent shard fan-out must stay
// bit-identical to the sequential reference scan.
func TestClassifyCtxParallelMatchesSequential(t *testing.T) {
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 4, inst.Train, trainCfg(), core.TrainOptions{Epochs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, h := range inst.Test {
		for _, topK := range []int{1, 5, 0} {
			par, err := ClassifyCtx(ctx, shards, h, 12, topK)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := classifySequential(ctx, shards, h, 12, topK)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("topK=%d: parallel %d candidates, sequential %d", topK, len(par), len(seq))
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("topK=%d: candidate %d differs: parallel %+v, sequential %+v", topK, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestClassifyCtxCancelMidFanout: cancellation while shard workers
// are in flight must return ctx.Err() and leak no goroutines.
func TestClassifyCtxCancelMidFanout(t *testing.T) {
	inst := testInstance(t)
	shards, err := ShardClassifier(inst.Classifier, 6, inst.Train, trainCfg(), core.TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	sawCancel := false
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // races the fan-out: lands before, during, or after
		res, err := ClassifyCtx(ctx, shards, inst.Test[i%len(inst.Test)], 8, 5)
		switch err {
		case nil:
			if len(res) == 0 {
				t.Fatal("nil error but empty result")
			}
		case context.Canceled:
			sawCancel = true
		default:
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	}
	if !sawCancel {
		t.Log("cancellation never landed mid-classify (timing); leak check still valid")
	}
	// The bounded workers must all have exited: poll because the last
	// worker may still be returning when ClassifyCtx does.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardRangeAndShardOne: a worker building only its own slice
// must agree with ShardClassifier building all of them — offsets,
// shapes, and bit-identical screener parameters.
func TestShardRangeAndShardOne(t *testing.T) {
	inst := testInstance(t)
	all, err := ShardClassifier(inst.Classifier, 3, inst.Train, trainCfg(), core.TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := inst.Classifier.Categories()
	covered := 0
	for i, want := range all {
		off, end, err := ShardRange(l, 3, i)
		if err != nil {
			t.Fatal(err)
		}
		if off != want.Offset || end-off != want.Classifier.Categories() {
			t.Fatalf("ShardRange(%d) = [%d,%d), ShardClassifier shard covers [%d,%d)",
				i, off, end, want.Offset, want.Offset+want.Classifier.Categories())
		}
		covered += end - off
		one, err := ShardOne(inst.Classifier, 3, i, inst.Train, trainCfg(), core.TrainOptions{Epochs: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if one.Offset != want.Offset {
			t.Fatalf("ShardOne(%d) offset %d, want %d", i, one.Offset, want.Offset)
		}
		// Screener parameters must be bit-identical (same derived seed).
		a, b := one.Screener.Wt.Data, want.Screener.Wt.Data
		if len(a) != len(b) {
			t.Fatalf("shard %d screener size %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("shard %d screener weight %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
	if covered != l {
		t.Fatalf("shards cover %d of %d classes", covered, l)
	}
	if _, _, err := ShardRange(l, 3, 3); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, _, err := ShardRange(l, 0, 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
}
