package activation

import (
	"math"
	"testing"

	"enmc/internal/xrand"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	r := xrand.New(1)
	z := make([]float32, 100)
	for i := range z {
		z[i] = r.NormFloat32() * 5
	}
	p := make([]float32, len(z))
	Softmax(p, z)
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum %v", sum)
	}
}

func TestSoftmaxMonotone(t *testing.T) {
	z := []float32{1, 3, 2}
	p := make([]float32, 3)
	Softmax(p, z)
	if !(p[1] > p[2] && p[2] > p[0]) {
		t.Fatalf("softmax order violated: %v", p)
	}
}

func TestSoftmaxStableUnderShift(t *testing.T) {
	z := []float32{1000, 1001, 999}
	p := make([]float32, 3)
	Softmax(p, z)
	for _, v := range p {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", p)
		}
	}
	zs := []float32{0, 1, -1}
	ps := make([]float32, 3)
	Softmax(ps, zs)
	for i := range p {
		if math.Abs(float64(p[i]-ps[i])) > 1e-6 {
			t.Fatalf("softmax not shift-invariant: %v vs %v", p, ps)
		}
	}
}

func TestSoftmaxAliasesInPlace(t *testing.T) {
	z := []float32{0, 1, 2}
	Softmax(z, z)
	var sum float64
	for _, v := range z {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatal("in-place softmax broken")
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil, nil) // must not panic
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float32{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-9 {
		t.Fatalf("LogSumExp = %v, want ln 2", got)
	}
	// Huge values must not overflow.
	got = LogSumExp([]float32{1e4, 1e4})
	if math.Abs(got-(1e4+math.Log(2))) > 1e-3 {
		t.Fatalf("LogSumExp big = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(empty) should be -inf")
	}
}

func TestSigmoid(t *testing.T) {
	z := []float32{0, 100, -100}
	p := make([]float32, 3)
	Sigmoid(p, z)
	if math.Abs(float64(p[0])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", p[0])
	}
	if p[1] < 0.999 || p[2] > 0.001 {
		t.Fatalf("sigmoid saturation: %v", p)
	}
}

func TestTaylorExpAccurate(t *testing.T) {
	for _, x := range []float32{0, -0.1, -0.5, -1, 0.3, -5, -20, 2.7} {
		got := float64(TaylorExp(x))
		want := math.Exp(float64(x))
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("TaylorExp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSoftmaxSFUCloseToExact(t *testing.T) {
	r := xrand.New(2)
	z := make([]float32, 64)
	for i := range z {
		z[i] = r.NormFloat32()
	}
	exact := make([]float32, 64)
	Softmax(exact, z)
	sfu := make([]float32, 64)
	SoftmaxSFU(sfu, z)
	var sum float64
	for i := range sfu {
		sum += float64(sfu[i])
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("SFU softmax sum %v", sum)
	}
	// Argmax must agree — that's what candidate selection needs.
	bestExact, bestSFU := 0, 0
	for i := range z {
		if exact[i] > exact[bestExact] {
			bestExact = i
		}
		if sfu[i] > sfu[bestSFU] {
			bestSFU = i
		}
	}
	if bestExact != bestSFU {
		t.Fatal("SFU softmax changed argmax")
	}
}

func TestSoftmaxSFUDegenerate(t *testing.T) {
	// All arguments far below zero clamp to 0 except the max; the SFU
	// must still emit a distribution.
	z := []float32{-100, 0, -100}
	p := make([]float32, 3)
	SoftmaxSFU(p, z)
	var sum float64
	for _, v := range p {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("degenerate SFU sum = %v (%v)", sum, p)
	}
}
