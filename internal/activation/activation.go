// Package activation implements the non-linear output functions of
// the classification layer — softmax and sigmoid — plus the Taylor
// approximation of exp the ENMC Executor's special-function unit uses
// (the paper approximates exp with a 4th-order Taylor expansion,
// Section 6.2).
package activation

import (
	"math"

	"enmc/internal/tensor"
)

// Softmax writes softmax(z) into dst with the standard max-shift for
// numerical stability. dst and z may alias.
func Softmax(dst, z []float32) {
	if len(dst) != len(z) {
		panic("activation: Softmax length mismatch")
	}
	if len(z) == 0 {
		return
	}
	m := z[tensor.ArgMax(z)]
	var sum float64
	for i, v := range z {
		e := math.Exp(float64(v - m))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(sum_i exp(z_i)) with the max-shift trick;
// it is the normalizer used by perplexity computations.
func LogSumExp(z []float32) float64 {
	if len(z) == 0 {
		return math.Inf(-1)
	}
	m := float64(z[tensor.ArgMax(z)])
	var sum float64
	for _, v := range z {
		sum += math.Exp(float64(v) - m)
	}
	return m + math.Log(sum)
}

// Sigmoid writes 1/(1+exp(-z)) element-wise into dst.
func Sigmoid(dst, z []float32) {
	if len(dst) != len(z) {
		panic("activation: Sigmoid length mismatch")
	}
	for i, v := range z {
		dst[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

const ln2 = 0.6931471805599453

// TaylorExp evaluates the Executor SFU's exp approximation: range
// reduction exp(x) = 2ⁿ · p(r) with n = round(x/ln2) and r ∈
// [-ln2/2, ln2/2], where p is the 4th-order Taylor expansion
// 1 + r + r²/2 + r³/6 + r⁴/24 (the polynomial core the paper cites;
// the reduction keeps the polynomial inside its accurate domain and
// the result monotone, as a hardware shift-and-polynomial unit does).
func TaylorExp(x float32) float32 {
	n := math.Round(float64(x) / ln2)
	r := float64(x) - n*ln2
	r2 := r * r
	p := 1 + r + r2/2 + r2*r/6 + r2*r2/24
	return float32(math.Ldexp(p, int(n)))
}

// SoftmaxSFU is Softmax computed the way the Executor hardware does:
// max-shift, SFU exponentials, then normalization. It exists so the
// quality experiments can include the hardware's approximation error.
func SoftmaxSFU(dst, z []float32) {
	if len(dst) != len(z) {
		panic("activation: SoftmaxSFU length mismatch")
	}
	if len(z) == 0 {
		return
	}
	m := z[tensor.ArgMax(z)]
	var sum float64
	for i, v := range z {
		e := TaylorExp(v - m)
		dst[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}
