// Package decode is the streaming autoregressive serving layer: it
// turns the single-shot screening classifier into a stateful decode
// service. A session owns the decoder hidden state, an optional beam,
// a pooled core.Scratch, and a hot-class candidate cache that packs
// the classes the screener keeps surviving into a compact arena —
// consecutive tokens share most of their candidate set, so the exact
// recompute stage can run over rows that are already cache-resident
// instead of gathering scattered rows of the full l×d matrix every
// step.
//
// The cache is a locality optimization, never a value approximation:
// cached logits are produced by the same deterministic dot-product
// kernel over byte-identical row copies, so cached decoding is
// bit-identical to uncached decoding by construction — and it is
// *verified*, not assumed: every VerifyEvery steps the session
// recomputes the candidate logits from the classifier and compares
// them bit-for-bit, resetting the cache on any mismatch.
package decode

import "enmc/internal/telemetry"

var (
	reg = telemetry.Default()

	mCacheHit       = reg.Counter("decode.cache_hit")
	mCacheMiss      = reg.Counter("decode.cache_miss")
	mCacheVerified  = reg.Counter("decode.cache_verified")
	mCacheVerifyBad = reg.Counter("decode.cache_verify_fail")

	mSessionsActive  = reg.Gauge("decode.sessions_active")
	mSessionsOpened  = reg.Counter("decode.sessions_opened")
	mSessionsEvicted = reg.Counter("decode.sessions_evicted")
	mSessionLimit    = reg.Counter("decode.session_limit")

	mTokens       = reg.Counter("decode.tokens_total")
	mTokenNs      = reg.Histogram("decode.token_ns", telemetry.LatencyBuckets())
	mDeadlineDown = reg.Counter("decode.deadline_degraded")
	mDeadlineMiss = reg.Counter("decode.deadline_miss")
)
