package decode

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/workload"
)

// Mode selects the search the session runs.
type Mode string

const (
	Greedy Mode = "greedy"
	Beam   Mode = "beam"
)

var (
	// ErrBusy: another request is pumping this session right now.
	ErrBusy = errors.New("decode: session busy")
	// ErrEvicted: the session was TTL-evicted or closed mid-stream.
	ErrEvicted = errors.New("decode: session evicted")
	// ErrSessionLimit: the service is at max-session admission.
	ErrSessionLimit = errors.New("decode: session limit reached")
	// ErrNotFound: no session with that ID.
	ErrNotFound = errors.New("decode: no such session")
)

// Token is one emitted decode frame.
type Token struct {
	Step     int
	Token    int
	LogProb  float64
	M        int
	Degraded bool
}

// Session is one decode stream: it owns the hidden state (and beam),
// the scorer (with its pooled scratch and candidate cache), and the
// per-token deadline ladder. A session is pumped by at most one
// request at a time (Run returns ErrBusy otherwise); the TTL sweeper
// evicts it between pumps, or flags it for the in-flight pump to
// notice.
type Session struct {
	ID string

	svc    *Service
	dec    *workload.Decoder
	scorer Scorer
	mode   Mode
	width  int

	mu     sync.Mutex
	h      []float32
	hNext  []float32
	tokens []int
	beam   *beamState
	step   int

	// Deadline ladder state: an EWMA of step latency drives the
	// candidate budget m between mFloor and topM.
	m      int
	topM   int
	mFloor int
	budget time.Duration
	ewma   float64

	cacheHits   int64
	cacheMisses int64

	lastUsed atomic.Int64 // unix nanos
	evicted  atomic.Bool
	// active is the pump state machine: 0 idle, 1 pumping, -1 dead.
	// All transitions are CAS-guarded, which is what lets the TTL
	// sweeper evict without ever blocking on a session whose emit is
	// stalled on a slow client.
	active   atomic.Int32
	doneOnce sync.Once

	// releaseOwner returns the session's slot to its owner's quota
	// (per-tenant session accounting); nil for unowned sessions. The
	// service calls it exactly once, when the session leaves the
	// session map (close, TTL eviction, or shutdown).
	releaseOwner func()
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// finalize releases the scorer exactly once. Only the winner of the
// idle→dead CAS calls it, so the scorer is never closed while a pump
// could still be using it.
func (s *Session) finalize() {
	s.doneOnce.Do(func() {
		s.scorer.Close()
		mSessionsActive.Add(-1)
	})
}

// evict flags the session dead and finalizes it if no pump is in
// flight; otherwise the pump's exit path finalizes. Exactly one side
// wins the idle→dead CAS.
func (s *Session) evict() {
	s.evicted.Store(true)
	if s.active.CompareAndSwap(0, -1) {
		s.finalize()
	}
}

// Step returns how many tokens the session has emitted.
func (s *Session) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// Tokens returns a copy of the emitted sequence — for beam sessions,
// the current best hypothesis.
func (s *Session) Tokens() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.tokens...)
}

// CacheStats returns cumulative candidate-cache hits and misses.
func (s *Session) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHits, s.cacheMisses
}

// Finished reports whether the decoder's drift stream is exhausted.
func (s *Session) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step >= s.dec.MaxLen()
}

// Run pumps up to n tokens through the session, invoking emit for
// each. It returns finished=true when the decoder's MaxLen is
// reached. ErrBusy means another pump holds the session; ErrEvicted
// means the sweeper (or Close) took it mid-stream — the emitted
// prefix is still valid.
func (s *Session) Run(ctx context.Context, n int, emit func(Token) error) (finished bool, err error) {
	if !s.active.CompareAndSwap(0, 1) {
		if s.active.Load() == -1 {
			return false, ErrEvicted
		}
		return false, ErrBusy
	}
	defer func() {
		s.active.CompareAndSwap(1, 0)
		if s.evicted.Load() && s.active.CompareAndSwap(0, -1) {
			s.finalize()
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted.Load() {
		return false, ErrEvicted
	}
	s.touch()
	for i := 0; i < n; i++ {
		if s.step >= s.dec.MaxLen() {
			return true, nil
		}
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if s.evicted.Load() {
			return false, ErrEvicted
		}
		t0 := time.Now()
		tok, err := s.stepOnce(ctx)
		if err != nil {
			return false, err
		}
		s.observe(time.Since(t0))
		mTokens.Inc()
		if err := emit(tok); err != nil {
			return false, err
		}
		s.touch()
	}
	return s.step >= s.dec.MaxLen(), nil
}

// observe feeds one step latency into the deadline ladder: when the
// smoothed latency eats >80% of the per-token budget the candidate
// budget m drops a notch toward the floor (degrading screening
// quality before missing the token deadline); when it falls back
// under 40% m recovers toward the configured top-m. An actual
// overrun is counted separately.
func (s *Session) observe(lat time.Duration) {
	mTokenNs.Observe(float64(lat.Nanoseconds()))
	if s.budget <= 0 {
		return
	}
	const alpha = 0.3
	if s.ewma == 0 {
		s.ewma = float64(lat.Nanoseconds())
	} else {
		s.ewma = (1-alpha)*s.ewma + alpha*float64(lat.Nanoseconds())
	}
	if lat > s.budget {
		mDeadlineMiss.Inc()
	}
	b := float64(s.budget.Nanoseconds())
	switch {
	case s.ewma > 0.8*b && s.m > s.mFloor:
		s.m = s.m * 3 / 4
		if s.m < s.mFloor {
			s.m = s.mFloor
		}
		mDeadlineDown.Inc()
	case s.ewma < 0.4*b && s.m < s.topM:
		s.m = s.m*4/3 + 1
		if s.m > s.topM {
			s.m = s.topM
		}
	}
}

func (s *Session) stepOnce(ctx context.Context) (Token, error) {
	if s.mode == Beam {
		return s.stepBeam(ctx)
	}
	sc, err := s.scorer.ScoreStep(ctx, s.h, s.m, 1)
	if err != nil {
		return Token{}, err
	}
	if len(sc.Classes) == 0 {
		return Token{}, errors.New("decode: scorer returned no classes")
	}
	y, lp := sc.Classes[0], sc.LogProbs[0]
	s.cacheHits += int64(sc.CacheHits)
	s.cacheMisses += int64(sc.CacheMisses)
	s.dec.StepInto(s.hNext, s.h, y, s.step)
	s.h, s.hNext = s.hNext, s.h
	s.tokens = append(s.tokens, y)
	tok := Token{Step: s.step, Token: y, LogProb: lp, M: sc.M, Degraded: s.m < s.topM}
	s.step++
	return tok, nil
}

// beamState keeps the live hypotheses in flat arenas, expanded and
// pruned in place each step. The emitted frame is the best
// hypothesis's newest token; the stream's final sequence is the best
// hypothesis at the last step (so earlier frames are provisional, as
// in any streamed beam search — documented in the API).
type beamState struct {
	width, d, maxLen int
	n                int       // live hypotheses
	tokens           []int     // width × maxLen
	states           []float32 // width × d
	lps              []float64 // cumulative per hypothesis

	nextTokens []int
	nextStates []float32
	nextLps    []float64

	cands []beamCand
}

type beamCand struct {
	parent, class int
	lp, stepLp    float64
}

func newBeamState(width, d, maxLen int) *beamState {
	return &beamState{
		width: width, d: d, maxLen: maxLen, n: 1,
		tokens:     make([]int, width*maxLen),
		states:     make([]float32, width*d),
		lps:        make([]float64, width),
		nextTokens: make([]int, width*maxLen),
		nextStates: make([]float32, width*d),
		nextLps:    make([]float64, width),
		cands:      make([]beamCand, 0, width*width),
	}
}

func (s *Session) stepBeam(ctx context.Context) (Token, error) {
	b := s.beam
	b.cands = b.cands[:0]
	for i := 0; i < b.n; i++ {
		sc, err := s.scorer.ScoreStep(ctx, b.states[i*b.d:(i+1)*b.d], s.m, b.width)
		if err != nil {
			return Token{}, err
		}
		s.cacheHits += int64(sc.CacheHits)
		s.cacheMisses += int64(sc.CacheMisses)
		for j, c := range sc.Classes {
			if j >= b.width {
				break
			}
			b.cands = append(b.cands, beamCand{
				parent: i, class: c,
				lp: b.lps[i] + sc.LogProbs[j], stepLp: sc.LogProbs[j],
			})
		}
	}
	if len(b.cands) == 0 {
		return Token{}, errors.New("decode: beam collapsed")
	}
	// Deterministic order: score desc, ties by parent then class.
	sort.Slice(b.cands, func(a, c int) bool {
		x, y := b.cands[a], b.cands[c]
		if x.lp != y.lp {
			return x.lp > y.lp
		}
		if x.parent != y.parent {
			return x.parent < y.parent
		}
		return x.class < y.class
	})
	keep := len(b.cands)
	if keep > b.width {
		keep = b.width
	}
	t := s.step
	for r := 0; r < keep; r++ {
		c := b.cands[r]
		copy(b.nextTokens[r*b.maxLen:r*b.maxLen+t], b.tokens[c.parent*b.maxLen:c.parent*b.maxLen+t])
		b.nextTokens[r*b.maxLen+t] = c.class
		s.dec.StepInto(b.nextStates[r*b.d:(r+1)*b.d], b.states[c.parent*b.d:(c.parent+1)*b.d], c.class, t)
		b.nextLps[r] = c.lp
	}
	b.tokens, b.nextTokens = b.nextTokens, b.tokens
	b.states, b.nextStates = b.nextStates, b.states
	b.lps, b.nextLps = b.nextLps, b.lps
	b.n = keep

	best := b.cands[0]
	s.step++
	// Mirror the best hypothesis into s.tokens so Tokens()/done frames
	// see it without knowing about the beam.
	s.tokens = append(s.tokens[:0], b.tokens[:s.step]...)
	return Token{Step: t, Token: best.class, LogProb: best.stepLp, M: s.m, Degraded: s.m < s.topM}, nil
}

// BestLogProb returns the cumulative log-probability of the best
// hypothesis (greedy: sum of emitted log-probs is not tracked — beam
// only; greedy returns 0).
func (s *Session) BestLogProb() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.beam != nil && s.beam.n > 0 {
		return s.beam.lps[0]
	}
	return 0
}
