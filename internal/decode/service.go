package decode

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"enmc/internal/workload"
)

// Config tunes the decode service. Zero values select defaults.
type Config struct {
	// MaxSessions is the admission limit; Open returns
	// ErrSessionLimit (HTTP 429 upstream) beyond it. Default 256.
	MaxSessions int
	// TTL evicts sessions idle longer than this. Default 60s.
	TTL time.Duration
	// SweepEvery is the eviction scan period. Default TTL/4.
	SweepEvery time.Duration
	// TokenBudget is the per-token deadline driving the degradation
	// ladder; 0 disables the ladder.
	TokenBudget time.Duration
	// TopM is the candidate budget at full quality. Default 24.
	TopM int
	// MFloor bounds how far the ladder may degrade m.
	// Default max(4, TopM/4).
	MFloor int
	// MaxWidth caps requested beam widths. Default 8.
	MaxWidth int
}

func (c *Config) defaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.TTL <= 0 {
		c.TTL = 60 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.TTL / 4
	}
	if c.TopM <= 0 {
		c.TopM = 24
	}
	if c.MFloor <= 0 {
		c.MFloor = c.TopM / 4
		if c.MFloor < 4 {
			c.MFloor = 4
		}
	}
	if c.MFloor > c.TopM {
		c.MFloor = c.TopM
	}
	if c.MaxWidth <= 0 {
		c.MaxWidth = 8
	}
}

// Service is the session manager: admission, lookup, TTL eviction,
// drain. One Service fronts one decoder + scorer family.
type Service struct {
	cfg       Config
	dec       *workload.Decoder
	newScorer func() Scorer

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewService builds a service over a decoder; newScorer is invoked
// once per session (each session owns its scorer's mutable state).
func NewService(cfg Config, dec *workload.Decoder, newScorer func() Scorer) *Service {
	cfg.defaults()
	s := &Service{
		cfg:       cfg,
		dec:       dec,
		newScorer: newScorer,
		sessions:  make(map[string]*Session),
		stop:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.sweep()
	return s
}

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// MaxLen returns the decoder's maximum sequence length.
func (s *Service) MaxLen() int { return s.dec.MaxLen() }

// Hidden returns the decoder's hidden dimension.
func (s *Service) Hidden() int { return s.dec.Hidden() }

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Open admits a new session seeded from h0. Width is clamped to
// [1, MaxWidth] and ignored for greedy sessions.
func (s *Service) Open(mode Mode, width int, h0 []float32) (*Session, error) {
	return s.OpenOwned(mode, width, h0, nil)
}

// OpenOwned is Open with an owner-accounting hook: release, when
// non-nil, is invoked exactly once when the session leaves the
// service (explicit close, TTL eviction, or shutdown) — never on a
// failed open. It lets a caller count live sessions against a
// per-tenant quota without missing evictions the caller never sees.
func (s *Service) OpenOwned(mode Mode, width int, h0 []float32, release func()) (*Session, error) {
	if mode != Greedy && mode != Beam {
		return nil, fmt.Errorf("decode: unknown mode %q", mode)
	}
	if len(h0) != s.dec.Hidden() {
		return nil, fmt.Errorf("decode: h0 has %d dims, want %d", len(h0), s.dec.Hidden())
	}
	if width < 1 {
		width = 1
	}
	if width > s.cfg.MaxWidth {
		width = s.cfg.MaxWidth
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrEvicted
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		mSessionLimit.Inc()
		return nil, ErrSessionLimit
	}
	d := s.dec.Hidden()
	sess := &Session{
		ID:     newSessionID(),
		svc:    s,
		dec:    s.dec,
		scorer: s.newScorer(),
		mode:   mode,
		width:  width,
		m:      s.cfg.TopM,
		topM:   s.cfg.TopM,
		mFloor: s.cfg.MFloor,
		budget: s.cfg.TokenBudget,
	}
	if mode == Beam {
		sess.beam = newBeamState(width, d, s.dec.MaxLen())
		s.dec.NormalizeStartInto(sess.beam.states[:d], h0)
	} else {
		sess.h = make([]float32, d)
		sess.hNext = make([]float32, d)
		s.dec.NormalizeStartInto(sess.h, h0)
	}
	sess.releaseOwner = release
	sess.touch()
	s.sessions[sess.ID] = sess
	mSessionsOpened.Inc()
	mSessionsActive.Add(1)
	return sess, nil
}

// released runs a removed session's owner hook (exactly once per
// session: every removal path deletes from the map first).
func released(sess *Session) {
	if sess.releaseOwner != nil {
		sess.releaseOwner()
	}
}

// Get looks a session up by ID.
func (s *Service) Get(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// Close removes and finalizes a session. An in-flight pump notices
// the eviction flag at its next token and exits with ErrEvicted.
func (s *Service) Close(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	sess.evict()
	released(sess)
	return nil
}

// Active returns the number of admitted sessions.
func (s *Service) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown evicts every session and stops the sweeper. Safe to call
// more than once.
func (s *Service) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	victims := make([]*Session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		victims = append(victims, sess)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	close(s.stop)
	for _, sess := range victims {
		sess.evict()
		released(sess)
	}
	s.wg.Wait()
}

// sweep is the TTL evictor. It never blocks on a session: eviction is
// flag + CAS, and a pump that holds the session finalizes it itself.
func (s *Service) sweep() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		deadline := time.Now().Add(-s.cfg.TTL).UnixNano()
		s.mu.Lock()
		var victims []*Session
		for id, sess := range s.sessions {
			if sess.lastUsed.Load() < deadline {
				victims = append(victims, sess)
				delete(s.sessions, id)
			}
		}
		s.mu.Unlock()
		for _, sess := range victims {
			sess.evict()
			released(sess)
			mSessionsEvicted.Inc()
		}
	}
}
