package decode

import (
	"context"
	"math"
	"sort"

	"enmc/internal/activation"
	"enmc/internal/core"
	"enmc/internal/tensor"
)

// StepScore is one decode step's classifier output: the top-k classes
// of the mixed (screened + exact-on-candidates) logit vector in
// descending order — Classes[0] is the greedy token — with their
// log-probabilities under the mixed softmax. Slices alias
// scorer-owned storage and stay valid only until the next ScoreStep.
type StepScore struct {
	Classes  []int
	LogProbs []float64
	// M is the candidate budget actually used this step (the deadline
	// ladder may have degraded it below the configured top-m).
	M int
	// CacheHits/CacheMisses report the candidate cache's behaviour on
	// this step (zero when the scorer has no cache, e.g. cluster mode).
	CacheHits, CacheMisses int
}

// Scorer produces per-token scores for a decode session. m is the
// candidate budget (top-m survivors recomputed exactly), k how many
// ranked classes the caller needs (1 for greedy, beam width for beam
// search). Implementations are single-session: they own mutable
// per-step state and must not be shared across goroutines.
type Scorer interface {
	ScoreStep(ctx context.Context, h []float32, m, k int) (StepScore, error)
	Close()
}

// LocalScorer runs the full screening pipeline in-process: screen →
// select top-m → exact recompute (through the hot-class candidate
// cache) → merge → rank. Its greedy token is bit-identical to
// core.ClassifyApproxInto + Result.Predict for the same (h, m): the
// stages run in the same order with the same kernels, and the cache
// only relocates bytes (see rowCache).
type LocalScorer struct {
	cls *core.Classifier
	scr *core.Screener
	sc  *core.Scratch

	cache        *rowCache
	lazyCacheMul int
	verifyEvery  int
	step         int

	mixed   []float32
	exact   []float32
	ref     []float32
	classes []int
	lps     []float64
	buf     tensor.TopKBuf
}

// LocalScorerConfig tunes a LocalScorer. Zero values select sensible
// defaults.
type LocalScorerConfig struct {
	// CacheSlots sizes the candidate cache arena (rows). 0 → 4× the
	// largest m the session will use, set lazily on first step.
	// Negative disables the cache entirely (the exact recompute then
	// gathers from the classifier every step — the uncached reference
	// path the bit-identity tests compare against).
	CacheSlots int
	// VerifyEvery recomputes the candidate logits from the classifier
	// every n-th step and compares bit-for-bit with the cached values;
	// a mismatch resets the cache and uses the reference. 0 → 64.
	// Negative disables verification.
	VerifyEvery int
}

// NewLocalScorer builds a scorer over an in-process model. Call Close
// to return the pooled scratch.
func NewLocalScorer(cls *core.Classifier, scr *core.Screener, cfg LocalScorerConfig) *LocalScorer {
	s := &LocalScorer{
		cls:         cls,
		scr:         scr,
		sc:          core.GetScratch(),
		verifyEvery: cfg.VerifyEvery,
		mixed:       make([]float32, cls.Categories()),
	}
	if s.verifyEvery == 0 {
		s.verifyEvery = 64
	}
	switch {
	case cfg.CacheSlots < 0:
		// Cache disabled: every step gathers from the classifier.
	case cfg.CacheSlots == 0:
		// Sized on first step, once the session's m is known.
		s.lazyCacheMul = 4
	default:
		s.cache = newRowCache(cls, cfg.CacheSlots)
	}
	return s
}

func (s *LocalScorer) Close() {
	if s.sc != nil {
		s.sc.Release()
		s.sc = nil
	}
}

// ScoreStep implements Scorer.
func (s *LocalScorer) ScoreStep(_ context.Context, h []float32, m, k int) (StepScore, error) {
	if s.cache == nil && s.lazyCacheMul > 0 {
		s.cache = newRowCache(s.cls, s.lazyCacheMul*m)
		s.lazyCacheMul = 0
	}
	// Stages mirror core.classifyInto exactly — screen, select top-m,
	// ascending-index exact recompute, merge — so the mixed vector
	// (and hence the greedy argmax and any top-k of it) matches the
	// single-shot serving path bit for bit.
	s.scr.ScreenInto(s.mixed, h, s.sc)
	cands := core.SelectCandidatesInto(s.mixed, core.TopM(m), s.sc)
	sort.Ints(cands)
	if cap(s.exact) < len(cands) {
		s.exact = make([]float32, len(cands))
	}
	exact := s.exact[:len(cands)]

	var hits, misses int
	if s.cache != nil {
		hits, misses = s.cache.logitsInto(exact, cands, h)
		s.step++
		if s.verifyEvery > 0 && s.step%s.verifyEvery == 0 {
			s.verify(exact, cands, h)
		}
	} else {
		s.cls.LogitsRowsInto(exact, cands, h)
	}
	for j, c := range cands {
		s.mixed[c] = exact[j]
	}

	lse := activation.LogSumExp(s.mixed)
	idx := tensor.TopKInto(s.mixed, k, &s.buf)
	if cap(s.classes) < len(idx) {
		s.classes = make([]int, len(idx))
		s.lps = make([]float64, len(idx))
	}
	classes, lps := s.classes[:len(idx)], s.lps[:len(idx)]
	for i, c := range idx {
		classes[i] = c
		lps[i] = float64(s.mixed[c]) - lse
	}
	return StepScore{
		Classes: classes, LogProbs: lps,
		M: m, CacheHits: hits, CacheMisses: misses,
	}, nil
}

// verify recomputes the candidate logits straight from the classifier
// and compares bit-for-bit with what the cache produced. Agreement is
// the invariant the whole cached path rests on; a mismatch (which
// would indicate cache corruption or an aliasing bug, not float
// noise — the kernels are deterministic) resets the cache and repairs
// the step from the reference values.
func (s *LocalScorer) verify(exact []float32, cands []int, h []float32) {
	if cap(s.ref) < len(cands) {
		s.ref = make([]float32, len(cands))
	}
	ref := s.ref[:len(cands)]
	s.cls.LogitsRowsInto(ref, cands, h)
	for j := range ref {
		if math.Float32bits(ref[j]) != math.Float32bits(exact[j]) {
			mCacheVerifyBad.Inc()
			s.cache.reset()
			copy(exact, ref)
			return
		}
	}
	mCacheVerified.Inc()
}
