package decode

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/metrics"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

// testModel builds a trained screening stack and a decoder over it —
// the probe corpus is inst.Test.
func testModel(t testing.TB) (*workload.Instance, *core.Screener, *workload.Decoder) {
	t.Helper()
	inst := workload.Generate(
		workload.Spec{Name: "decode-test", Categories: 192, Hidden: 32, LatentRank: 8, ZipfS: 1},
		workload.GenOptions{Seed: 17, Train: 128, Valid: 8, Test: 8})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 192, Hidden: 32, Reduced: 16, Precision: quant.INT8, Seed: 3,
	}, core.TrainOptions{Epochs: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec := workload.NewDecoderFor(inst.Classifier, 7, 24)
	return inst, scr, dec
}

func newTestService(inst *workload.Instance, scr *core.Screener, dec *workload.Decoder, cacheSlots int) *Service {
	return NewService(Config{TopM: 24}, dec, func() Scorer {
		return NewLocalScorer(inst.Classifier, scr, LocalScorerConfig{CacheSlots: cacheSlots, VerifyEvery: 4})
	})
}

func pumpAll(t *testing.T, svc *Service, mode Mode, width int, h0 []float32) ([]int, int64, int64) {
	t.Helper()
	sess, err := svc.Open(mode, width, h0)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := sess.Run(context.Background(), svc.MaxLen(), func(Token) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !fin {
		t.Fatal("session did not finish")
	}
	toks := sess.Tokens()
	hits, misses := sess.CacheStats()
	if err := svc.Close(sess.ID); err != nil {
		t.Fatal(err)
	}
	return toks, hits, misses
}

// TestCachedBitIdentity is the tentpole invariant: greedy decoding
// through the candidate cache must emit the exact token sequence of
// (a) uncached screened decoding and (b) the single-shot
// ClassifyApproxInto serving path — on every probe sentence — while
// the cache demonstrates a >50% hit rate.
func TestCachedBitIdentity(t *testing.T) {
	inst, scr, dec := testModel(t)
	cached := newTestService(inst, scr, dec, 0)
	uncached := newTestService(inst, scr, dec, -1)
	defer cached.Shutdown()
	defer uncached.Shutdown()

	sc := core.GetScratch()
	defer sc.Release()
	ref := func(h []float32) int {
		return core.ClassifyApproxInto(inst.Classifier, scr, h, core.TopM(24), sc).Predict()
	}

	var hits, misses int64
	for i, h0 := range inst.Test {
		got, h, m := pumpAll(t, cached, Greedy, 1, h0)
		hits, misses = hits+h, misses+m
		plain, _, _ := pumpAll(t, uncached, Greedy, 1, h0)
		want := dec.Decode(h0, dec.MaxLen(), ref)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("probe %d: cached token %d = %d, reference %d", i, j, got[j], want[j])
			}
			if plain[j] != want[j] {
				t.Fatalf("probe %d: uncached token %d = %d, reference %d", i, j, plain[j], want[j])
			}
		}
	}
	rate := float64(hits) / float64(hits+misses)
	t.Logf("cache hit rate %.1f%% (%d hits / %d misses)", 100*rate, hits, misses)
	if rate < 0.5 {
		t.Fatalf("cache hit rate %.2f below the 50%% acceptance bar", rate)
	}
}

// TestBeamWidthOneMatchesGreedy: a width-1 beam session walks the
// same path as a greedy session.
func TestBeamWidthOneMatchesGreedy(t *testing.T) {
	inst, scr, dec := testModel(t)
	svc := newTestService(inst, scr, dec, 0)
	defer svc.Shutdown()
	for _, h0 := range inst.Test {
		g, _, _ := pumpAll(t, svc, Greedy, 1, h0)
		b, _, _ := pumpAll(t, svc, Beam, 1, h0)
		for j := range g {
			if g[j] != b[j] {
				t.Fatalf("token %d: greedy %d beam %d", j, g[j], b[j])
			}
		}
	}
}

// TestBeamSessionFrames: a beam session emits one frame per step and
// finishes with the best hypothesis exposed through Tokens().
func TestBeamSessionFrames(t *testing.T) {
	inst, scr, dec := testModel(t)
	svc := newTestService(inst, scr, dec, 0)
	defer svc.Shutdown()
	sess, err := svc.Open(Beam, 4, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	fin, err := sess.Run(context.Background(), svc.MaxLen(), func(tok Token) error {
		if tok.Step != frames {
			t.Fatalf("frame %d has step %d", frames, tok.Step)
		}
		frames++
		return nil
	})
	if err != nil || !fin {
		t.Fatalf("run: fin=%v err=%v", fin, err)
	}
	if frames != dec.MaxLen() {
		t.Fatalf("emitted %d frames, want %d", frames, dec.MaxLen())
	}
	if got := sess.Tokens(); len(got) != dec.MaxLen() {
		t.Fatalf("best hypothesis has %d tokens, want %d", len(got), dec.MaxLen())
	}
	if sess.BestLogProb() >= 0 {
		t.Fatalf("best logprob %v not negative", sess.BestLogProb())
	}
}

// TestCandidateOverlap measures the property the cache exploits: the
// classes a decode step's screener selects are mostly classes recent
// steps already selected. The cache holds ~4×m rows — several steps
// of survivor history — so the relevant overlap is against the union
// of a recent-step window, not just t−1.
func TestCandidateOverlap(t *testing.T) {
	inst, scr, dec := testModel(t)
	one, _ := measureOverlap(inst, scr, dec, 24, 1)
	win, steps := measureOverlap(inst, scr, dec, 24, 4)
	t.Logf("candidate overlap over %d steps: %.1f%% vs previous step, %.1f%% vs 4-step window",
		steps, 100*one, 100*win)
	if win < 0.5 {
		t.Fatalf("windowed overlap %.2f too low for the cache to pay off", win)
	}
}

// measureOverlap decodes the probe corpus and returns the mean
// fraction of step-t candidates selected within the previous `window`
// steps.
func measureOverlap(inst *workload.Instance, scr *core.Screener, dec *workload.Decoder, m, window int) (float64, int) {
	sc := core.GetScratch()
	defer sc.Release()
	var sum float64
	var steps int
	for _, h0 := range inst.Test {
		var hist [][]int
		classify := func(h []float32) int {
			res := core.ClassifyApproxInto(inst.Classifier, scr, h, core.TopM(m), sc)
			if len(hist) > 0 {
				seen := map[int]bool{}
				for _, step := range hist {
					for _, c := range step {
						seen[c] = true
					}
				}
				shared := 0
				for _, c := range res.Candidates {
					if seen[c] {
						shared++
					}
				}
				sum += float64(shared) / float64(len(res.Candidates))
				steps++
			}
			hist = append(hist, append([]int(nil), res.Candidates...))
			if len(hist) > window {
				hist = hist[1:]
			}
			return res.Predict()
		}
		dec.Decode(h0, dec.MaxLen(), classify)
	}
	return sum / float64(steps), steps
}

// BenchmarkCandidateOverlap reports the overlap as a benchmark metric
// so the property is measured, not assumed, wherever benches run.
func BenchmarkCandidateOverlap(b *testing.B) {
	inst, scr, dec := testModel(b)
	var overlap float64
	for i := 0; i < b.N; i++ {
		overlap, _ = measureOverlap(inst, scr, dec, 24, 4)
	}
	b.ReportMetric(overlap, "overlap")
}

// TestAgreementBLEU compares screened greedy decoding against
// full-classifier decoding on the probe corpus. The committed CI
// floor lives in the Makefile decode-bleu gate; here we assert a
// lenient sanity bound.
func TestAgreementBLEU(t *testing.T) {
	inst, scr, dec := testModel(t)
	svc := newTestService(inst, scr, dec, 0)
	defer svc.Shutdown()
	var cands, refs [][]int
	for _, h0 := range inst.Test {
		got, _, _ := pumpAll(t, svc, Greedy, 1, h0)
		full := dec.Decode(h0, dec.MaxLen(), inst.Classifier.Predict)
		cands = append(cands, got)
		refs = append(refs, full)
	}
	bleu := metrics.BLEU(cands, refs)
	t.Logf("agreement BLEU %.4f", bleu)
	if bleu < 0.5 {
		t.Fatalf("agreement BLEU %.3f below sanity floor 0.5", bleu)
	}
}

// stubScorer lets the ladder tests dial step latency.
type stubScorer struct {
	sleep  time.Duration
	closed bool
}

func (s *stubScorer) ScoreStep(_ context.Context, h []float32, m, k int) (StepScore, error) {
	if s.sleep > 0 {
		time.Sleep(s.sleep)
	}
	classes := make([]int, k)
	lps := make([]float64, k)
	for i := range classes {
		classes[i] = i
		lps[i] = -float64(i + 1)
	}
	return StepScore{Classes: classes, LogProbs: lps, M: m}, nil
}
func (s *stubScorer) Close() { s.closed = true }

// TestDeadlineLadder: slow steps walk m down to the floor; fast steps
// recover it back to top-m.
func TestDeadlineLadder(t *testing.T) {
	inst, _, dec := testModel(t)
	stub := &stubScorer{sleep: 2 * time.Millisecond}
	svc := NewService(Config{TopM: 32, MFloor: 8, TokenBudget: time.Millisecond}, dec, func() Scorer { return stub })
	defer svc.Shutdown()
	sess, err := svc.Open(Greedy, 1, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background(), 16, func(Token) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if sess.m != 8 {
		t.Fatalf("m = %d after sustained overrun, want floor 8", sess.m)
	}
	// Budget that every step easily meets: m recovers.
	stub.sleep = 0
	sess.budget = time.Second
	if _, err := sess.Run(context.Background(), 8, func(Token) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if sess.m != 32 {
		t.Fatalf("m = %d after recovery, want 32", sess.m)
	}
}

// TestVerifyCatchesCorruption plants a corrupted row in the cache and
// checks the periodic bit-exact verification repairs the step and
// resets the cache.
func TestVerifyCatchesCorruption(t *testing.T) {
	inst, scr, _ := testModel(t)
	s := NewLocalScorer(inst.Classifier, scr, LocalScorerConfig{CacheSlots: 64, VerifyEvery: 1})
	defer s.Close()
	h := inst.Test[0]
	if _, err := s.ScoreStep(context.Background(), h, 24, 1); err != nil {
		t.Fatal(err)
	}
	before := mCacheVerifyBad.Value()
	// Corrupt every cached row; the next verified step must notice.
	for i := range s.cache.rows {
		s.cache.rows[i] += 1
	}
	got, err := s.ScoreStep(context.Background(), h, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mCacheVerifyBad.Value() != before+1 {
		t.Fatal("verification did not flag the corrupted cache")
	}
	// reset() leaves all slots free.
	for _, y := range s.cache.class {
		if y != -1 {
			t.Fatal("cache was not reset after mismatch")
		}
	}
	// The repaired step must agree with the uncached reference.
	ref := NewLocalScorer(inst.Classifier, scr, LocalScorerConfig{CacheSlots: -1})
	defer ref.Close()
	want, err := ref.ScoreStep(context.Background(), h, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Classes[0] != want.Classes[0] {
		t.Fatalf("repaired step token %d, reference %d", got.Classes[0], want.Classes[0])
	}
}

// TestSessionAdmission: the MaxSessions limit turns into
// ErrSessionLimit, and closing a session frees a slot.
func TestSessionAdmission(t *testing.T) {
	inst, _, dec := testModel(t)
	svc := NewService(Config{MaxSessions: 2}, dec, func() Scorer { return &stubScorer{} })
	defer svc.Shutdown()
	a, err := svc.Open(Greedy, 1, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(Greedy, 1, inst.Test[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(Greedy, 1, inst.Test[2]); err != ErrSessionLimit {
		t.Fatalf("third open: %v, want ErrSessionLimit", err)
	}
	if err := svc.Close(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(Greedy, 1, inst.Test[2]); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if _, err := svc.Get("nope"); err != ErrNotFound {
		t.Fatalf("lookup of unknown id: %v", err)
	}
}

// TestRunBusy: a second pump on the same session is rejected, not
// queued.
func TestRunBusy(t *testing.T) {
	inst, _, dec := testModel(t)
	svc := NewService(Config{}, dec, func() Scorer { return &stubScorer{sleep: 5 * time.Millisecond} })
	defer svc.Shutdown()
	sess, err := svc.Open(Greedy, 1, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := sess.Run(context.Background(), 4, func(tok Token) error {
			if tok.Step == 0 {
				close(started)
			}
			return nil
		})
		done <- err
	}()
	<-started
	if _, err := sess.Run(context.Background(), 1, func(Token) error { return nil }); err != ErrBusy {
		t.Fatalf("concurrent run: %v, want ErrBusy", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestEvictionMidDecode: evicting a session with a pump in flight
// stops the pump with ErrEvicted and finalizes the scorer exactly
// once.
func TestEvictionMidDecode(t *testing.T) {
	inst, _, dec := testModel(t)
	stub := &stubScorer{sleep: time.Millisecond}
	svc := NewService(Config{}, dec, func() Scorer { return stub })
	defer svc.Shutdown()
	sess, err := svc.Open(Greedy, 1, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := sess.Run(context.Background(), dec.MaxLen(), func(tok Token) error {
			if tok.Step == 0 {
				close(started)
			}
			return nil
		})
		done <- err
	}()
	<-started
	if err := svc.Close(sess.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrEvicted {
		t.Fatalf("pump ended with %v, want ErrEvicted", err)
	}
	if !stub.closed {
		t.Fatal("scorer not finalized after eviction")
	}
	if _, err := sess.Run(context.Background(), 1, func(Token) error { return nil }); err != ErrEvicted {
		t.Fatalf("run after eviction: %v, want ErrEvicted", err)
	}
}

// TestTTLEviction: idle sessions are swept; the evicted counter and
// active gauge move.
func TestTTLEviction(t *testing.T) {
	inst, _, dec := testModel(t)
	svc := NewService(Config{TTL: 20 * time.Millisecond, SweepEvery: 5 * time.Millisecond},
		dec, func() Scorer { return &stubScorer{} })
	defer svc.Shutdown()
	sess, err := svc.Open(Greedy, 1, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.Active() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not evicted within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := svc.Get(sess.ID); err != ErrNotFound {
		t.Fatalf("evicted session still resolvable: %v", err)
	}
}

// TestSessionHammer is the -race stress: concurrent sessions decoding
// while the sweeper evicts aggressively and contexts cancel
// mid-stream. Every scorer must be closed exactly once and the
// service must drain cleanly.
func TestSessionHammer(t *testing.T) {
	inst, scr, dec := testModel(t)
	var opened, closed atomic.Int64
	svc := NewService(
		Config{MaxSessions: 32, TTL: 10 * time.Millisecond, SweepEvery: 2 * time.Millisecond, TopM: 16},
		dec, func() Scorer {
			opened.Add(1)
			return &countingScorer{inner: NewLocalScorer(inst.Classifier, scr, LocalScorerConfig{}), onClose: func() { closed.Add(1) }}
		})
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
			defer cancel()
			sess, err := svc.Open(Greedy, 1, inst.Test[i%len(inst.Test)])
			if err != nil {
				return // admission limit — fine
			}
			sess.Run(ctx, dec.MaxLen(), func(tok Token) error {
				if tok.Step == 3 && i%3 == 0 {
					cancel() // client hangs up mid-stream
				}
				time.Sleep(time.Millisecond)
				return nil
			})
			if i%2 == 0 {
				svc.Close(sess.ID)
			}
		}(i)
	}
	wg.Wait()
	svc.Shutdown()
	if opened.Load() != closed.Load() {
		t.Fatalf("scorer leak: %d opened, %d closed", opened.Load(), closed.Load())
	}
	if svc.Active() != 0 {
		t.Fatalf("%d sessions survive shutdown", svc.Active())
	}
}

type countingScorer struct {
	inner   Scorer
	onClose func()
}

func (c *countingScorer) ScoreStep(ctx context.Context, h []float32, m, k int) (StepScore, error) {
	return c.inner.ScoreStep(ctx, h, m, k)
}
func (c *countingScorer) Close() {
	c.inner.Close()
	c.onClose()
}
