package decode

import (
	"enmc/internal/core"
	"enmc/internal/tensor"
)

// rowCache is the hot-class candidate cache: a packed arena of
// classifier rows for the classes the screener keeps selecting.
// Successive decode steps share most of their candidate set (the
// overlap is measured by BenchmarkCandidateOverlap before being
// exploited here), so after a step or two the exact-recompute stage
// runs almost entirely over a compact slots×d block that stays
// cache-resident, instead of gathering scattered rows of the full
// l×d weight matrix.
//
// The cache is direct-mapped: class y lives in slot y % slots or
// nowhere. The lookup is one integer compare — an associative design
// (map + LRU) was measured to spend more per candidate on hashing and
// bookkeeping than the d-length dot product it fronts, which at
// decode's one-candidate-at-a-time grain inverts the win. Collisions
// cost extra misses, never wrong answers.
//
// Invariant: a cached row is a byte-for-byte copy of the classifier
// row, and the logit kernel (tensor.Dot, then += bias) is the same
// deterministic arithmetic core.Classifier.LogitsRowsInto performs —
// so cached logits are bit-identical to uncached ones. The cache can
// change *where* the bytes are read from, never *what* is computed.
type rowCache struct {
	cls   *core.Classifier
	d     int
	class []int     // slot → class, -1 when free
	rows  []float32 // slots × d packed row arena
	bias  []float32 // slot → bias
}

func newRowCache(cls *core.Classifier, slots int) *rowCache {
	if slots < 1 {
		slots = 1
	}
	if slots > cls.Categories() {
		slots = cls.Categories()
	}
	c := &rowCache{
		cls:   cls,
		d:     cls.Hidden(),
		class: make([]int, slots),
		rows:  make([]float32, slots*cls.Hidden()),
		bias:  make([]float32, slots),
	}
	for i := range c.class {
		c.class[i] = -1
	}
	return c
}

// reset drops every cached row — the verification path calls this on
// any bit mismatch so a corrupted cache can never influence more than
// one (already corrected) step.
func (c *rowCache) reset() {
	for i := range c.class {
		c.class[i] = -1
	}
}

// ensure returns the slot for class y, filling it on a miss. The
// second result reports a hit.
func (c *rowCache) ensure(y int) (int, bool) {
	s := y % len(c.class)
	if c.class[s] == y {
		return s, true
	}
	c.class[s] = y
	copy(c.rows[s*c.d:(s+1)*c.d], c.cls.W.Row(y))
	c.bias[s] = c.cls.B[y]
	return s, false
}

// logitsInto computes dst[j] = <W[cands[j]], h> + B[cands[j]] through
// the packed arena, returning the step's hit/miss split. It is the
// cached twin of core.Classifier.LogitsRowsInto.
func (c *rowCache) logitsInto(dst []float32, cands []int, h []float32) (hits, misses int) {
	for j, y := range cands {
		s, hit := c.ensure(y)
		if hit {
			hits++
		} else {
			misses++
		}
		dst[j] = tensor.Dot(c.rows[s*c.d:(s+1)*c.d], h)
		dst[j] += c.bias[s]
	}
	mCacheHit.Add(int64(hits))
	mCacheMiss.Add(int64(misses))
	return hits, misses
}
