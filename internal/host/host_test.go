package host

import (
	"testing"

	"enmc/internal/compiler"
	"enmc/internal/enmc"
	"enmc/internal/isa"
)

func testProg(t *testing.T) (*compiler.Program, enmc.Config) {
	t.Helper()
	hw := enmc.Default()
	task := compiler.Task{Categories: 65536, Hidden: 512, Reduced: 128, Candidates: 1310, Batch: 1}
	prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(), task.Split(64), compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	return prog, hw
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.ReservedFraction = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("reserved fraction 1 accepted")
	}
	bad = Default()
	bad.PollIntervalCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero poll interval accepted")
	}
}

func TestRunAccounting(t *testing.T) {
	prog, hw := testProg(t)
	res, err := Run(Default(), hw, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineCycles <= 0 {
		t.Fatal("engine did no work")
	}
	if res.DescriptorCycles <= 0 || res.PollCycles < 0 || res.ReturnCycles <= 0 {
		t.Fatalf("host costs missing: %+v", res)
	}
	if res.TotalCycles < res.EngineCycles {
		t.Fatal("total below engine time")
	}
	// For a streaming classification, the engines — not the host
	// interface — must be the bottleneck (the design goal).
	if res.HostBusFraction > 0.5 {
		t.Fatalf("host bus fraction %.2f: interface bottlenecks the offload", res.HostBusFraction)
	}
}

func TestPollingCostScalesWithInterval(t *testing.T) {
	prog, hw := testProg(t)
	fast := Default()
	fast.PollIntervalCycles = 100
	slow := Default()
	slow.PollIntervalCycles = 10000
	rf, err := Run(fast, hw, prog)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slow, hw, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rf.PollCycles <= rs.PollCycles {
		t.Fatalf("tighter polling should cost more: %d vs %d", rf.PollCycles, rs.PollCycles)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	ins := []isa.Instruction{
		isa.Init(isa.RegVocab, 33278),
		isa.Query(isa.RegCandCount),
		isa.Ldr(isa.BufWgtINT4, 0xabcd),
		isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32),
		isa.Simple(isa.OpRETURN),
	}
	for _, in := range ins {
		p := Packetize(in)
		if p.RowAddressBits > 0x1fff {
			t.Fatalf("%v: packet exceeds 13 row-address bits", in)
		}
		got, err := Unpacketize(p)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if got != in {
			t.Fatalf("packet round trip: %v vs %v", got, in)
		}
	}
}

func TestReservedSlotsRaiseBusDemand(t *testing.T) {
	prog, hw := testProg(t)
	open := Default()
	open.ReservedFraction = 0
	tight := Default()
	tight.ReservedFraction = 0.8
	ro, err := Run(open, hw, prog)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(tight, hw, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rt.HostBusFraction <= ro.HostBusFraction {
		t.Fatal("reserving slots for regular traffic must raise the bus fraction")
	}
}

func TestCoexistence(t *testing.T) {
	prog, hw := testProg(t)
	res, err := Coexistence(hw, prog, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleLatency <= 0 || res.BusyLatency <= 0 {
		t.Fatalf("latencies missing: %+v", res)
	}
	// Contention costs something, but the host must still be served
	// with bounded latency (well under a refresh interval).
	if res.BusyLatency < res.IdleLatency {
		t.Fatalf("busy latency %v below idle %v", res.BusyLatency, res.IdleLatency)
	}
	if res.BusyLatency > 2000 {
		t.Fatalf("host reads starved during offload: %v cycles", res.BusyLatency)
	}
	// Occasional probes barely slow the offload.
	if res.OffloadSlowdown > 1.2 {
		t.Fatalf("probes slowed the offload by %vx", res.OffloadSlowdown)
	}
	if _, err := Coexistence(hw, prog, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}
