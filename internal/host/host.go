// Package host models the host-processor side of the ENMC execution
// flow (paper Fig. 10 and Section 6.2: "we simulate a simple host
// model that only issues ENMC instructions regularly according to the
// status registers").
//
// The host talks to every rank's ENMC engine over the channel's
// command/address bus: task descriptors (INIT writes) go down as
// PRECHARGE-framed commands with DQ payloads, progress is observed by
// polling QUERY, and results come back over the shared data bus. The
// per-rank inner loops are expanded by the on-DIMM instruction
// generator, not streamed from the host — the command bus could never
// feed eight ranks one instruction at a time, which is exactly why
// the controller has a generator. This package accounts for the
// host-visible costs and reports whether the channel interface, not
// the engines, bounds the offload.
package host

import (
	"fmt"

	"enmc/internal/compiler"
	"enmc/internal/dram"
	"enmc/internal/enmc"
	"enmc/internal/isa"
)

// Config describes the host interface to one memory channel.
type Config struct {
	// RanksPerChannel engines share the channel bus (Table 3: 8).
	RanksPerChannel int
	// CmdCycles is command-bus cycles per ENMC instruction packet
	// (one PRECHARGE slot).
	CmdCycles int64
	// PayloadCycles is extra data-bus cycles when a packet carries a
	// DQ payload (one burst).
	PayloadCycles int64
	// PollIntervalCycles is how often the host QUERYs the status
	// registers while an offload runs.
	PollIntervalCycles int64
	// ReservedFraction of command-bus slots is left for regular
	// memory requests, which the ENMC DIMM keeps serving (the
	// compatibility requirement of Section 5.3).
	ReservedFraction float64
	// BurstBytes and BurstCycles describe the shared data bus used by
	// RETURN traffic.
	BurstBytes  int64
	BurstCycles int64
}

// Default returns the Table 3 host interface.
func Default() Config {
	return Config{
		RanksPerChannel:    8,
		CmdCycles:          1,
		PayloadCycles:      4,
		PollIntervalCycles: 1000,
		ReservedFraction:   0.2,
		BurstBytes:         64,
		BurstCycles:        4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.RanksPerChannel <= 0:
		return fmt.Errorf("host: non-positive rank count")
	case c.CmdCycles <= 0 || c.PayloadCycles < 0:
		return fmt.Errorf("host: non-positive packet cycles")
	case c.PollIntervalCycles <= 0:
		return fmt.Errorf("host: non-positive poll interval")
	case c.ReservedFraction < 0 || c.ReservedFraction >= 1:
		return fmt.Errorf("host: reserved fraction %v out of [0,1)", c.ReservedFraction)
	case c.BurstBytes <= 0 || c.BurstCycles <= 0:
		return fmt.Errorf("host: non-positive burst geometry")
	}
	return nil
}

// Result reports the host-side accounting of one channel's offload.
type Result struct {
	// EngineCycles is the per-rank engine runtime (they run in
	// parallel; the slowest bounds it — symmetric here).
	EngineCycles int64
	// DescriptorCycles is command-bus time to deliver every rank's
	// INIT descriptors.
	DescriptorCycles int64
	// PollCycles is command-bus time spent polling status registers.
	PollCycles int64
	// ReturnCycles is shared-data-bus time for all ranks' output
	// buffers.
	ReturnCycles int64
	// TotalCycles is the offload wall time seen by the host.
	TotalCycles int64
	// HostBusFraction is the share of the offload during which the
	// channel interface (descriptors + polls + returns) was busy; a
	// value near 1 means the host link, not the engines, bounds the
	// system.
	HostBusFraction float64
}

// Run executes one rank's compiled program on the engine and folds in
// the host-interface costs for a full channel of identical ranks.
func Run(cfg Config, hw enmc.Config, prog *compiler.Program) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eng, err := enmc.New(hw)
	if err != nil {
		return Result{}, err
	}
	if _, err := eng.Run(prog.Init); err != nil {
		return Result{}, err
	}
	res, err := eng.Run(prog.Ops)
	if err != nil {
		return Result{}, err
	}

	var out Result
	out.EngineCycles = res.Cycles

	// Descriptor delivery: each INIT is a PRECHARGE packet plus a DQ
	// payload burst, for every rank on the channel.
	perDesc := int64(0)
	for _, op := range prog.Init {
		perDesc += cfg.CmdCycles
		if op.I.HasData {
			perDesc += cfg.PayloadCycles
		}
	}
	out.DescriptorCycles = perDesc * int64(cfg.RanksPerChannel)

	// Polling: one QUERY packet per poll interval per rank.
	polls := res.Cycles / cfg.PollIntervalCycles
	out.PollCycles = polls * cfg.CmdCycles * int64(cfg.RanksPerChannel)

	// Return traffic: every rank's output buffers cross the shared
	// data bus.
	totalReturn := res.Stats.ReturnBytes * int64(cfg.RanksPerChannel)
	bursts := (totalReturn + cfg.BurstBytes - 1) / cfg.BurstBytes
	out.ReturnCycles = bursts * cfg.BurstCycles

	// The command bus only offers (1 − reserved) of its slots.
	busDemand := float64(out.DescriptorCycles+out.PollCycles+out.ReturnCycles) / (1 - cfg.ReservedFraction)

	out.TotalCycles = out.EngineCycles + out.DescriptorCycles
	if int64(busDemand) > out.TotalCycles {
		out.TotalCycles = int64(busDemand)
	}
	out.HostBusFraction = busDemand / float64(out.TotalCycles)
	return out, nil
}

// DescriptorPacket frames one instruction the way Section 5.3
// describes: the 13-bit command word rides the row-address lines of a
// PRECHARGE command and the payload follows on DQ. Exposed so tests
// (and curious users) can inspect the wire format.
type DescriptorPacket struct {
	RowAddressBits uint16 // A0–A12
	HasDQ          bool
	DQ             uint64
}

// Packetize frames an instruction.
func Packetize(in isa.Instruction) DescriptorPacket {
	cmd, data, hasData := in.Encode()
	return DescriptorPacket{RowAddressBits: cmd, HasDQ: hasData, DQ: data}
}

// Unpacketize decodes a packet back into an instruction.
func Unpacketize(p DescriptorPacket) (isa.Instruction, error) {
	return isa.Decode(p.RowAddressBits, p.DQ, p.HasDQ)
}

// CoexistenceResult reports how regular host memory requests fare
// while an ENMC offload streams on the same rank — the Section 5.3
// compatibility requirement ("regular memory requests can also be
// served with our ENMC DIMM").
type CoexistenceResult struct {
	IdleLatency     float64 // mean host-read latency on an idle rank (cycles)
	BusyLatency     float64 // mean latency while screening streams
	OffloadSlowdown float64 // offload cycles with probes / without
}

// Coexistence replays a compiled program's DRAM traffic on a rank and
// injects a periodic host read, measuring the host's latency under
// contention and the slowdown the probes inflict on the offload.
func Coexistence(hw enmc.Config, prog *compiler.Program, periodCycles int64) (CoexistenceResult, error) {
	if periodCycles <= 0 {
		return CoexistenceResult{}, fmt.Errorf("host: non-positive probe period")
	}
	// Collect the offload's memory accesses.
	type access struct {
		addr  uint64
		bytes int64
	}
	var stream []access
	for _, op := range prog.Ops {
		if op.I.Op == isa.OpLDR {
			n := int64(op.Bytes)
			if n <= 0 {
				n = int64(hw.BufBytes)
			}
			stream = append(stream, access{op.I.Data, n})
		}
	}
	if len(stream) == 0 {
		return CoexistenceResult{}, fmt.Errorf("host: program has no loads")
	}

	// Idle-rank baseline latency.
	idleCh, err := dram.NewChannel(hw.DRAM, true)
	if err != nil {
		return CoexistenceResult{}, err
	}
	probeAddr := prog.Layout.OutBase + 1<<20
	idleReq := idleCh.Submit(probeAddr, false)
	idleCh.Drain()
	idle := float64(idleReq.Done)

	run := func(probes bool) (offload int64, busyLat float64, err error) {
		ch, err := dram.NewChannel(hw.DRAM, true)
		if err != nil {
			return 0, 0, err
		}
		var latSum float64
		var latN int
		nextProbe := periodCycles
		var pending []*dram.Request
		var pendingAt []int64
		for _, a := range stream {
			ch.SubmitRange(a.addr, a.bytes, false)
			for probes && ch.Now() >= nextProbe {
				pending = append(pending, ch.Submit(probeAddr, false))
				pendingAt = append(pendingAt, nextProbe)
				nextProbe += periodCycles
			}
		}
		done := ch.Drain()
		for i, p := range pending {
			latSum += float64(p.Done - pendingAt[i])
			latN++
		}
		if latN > 0 {
			busyLat = latSum / float64(latN)
		}
		return done, busyLat, nil
	}

	clean, _, err := run(false)
	if err != nil {
		return CoexistenceResult{}, err
	}
	withProbes, busy, err := run(true)
	if err != nil {
		return CoexistenceResult{}, err
	}
	return CoexistenceResult{
		IdleLatency:     idle,
		BusyLatency:     busy,
		OffloadSlowdown: float64(withProbes) / float64(clean),
	}, nil
}
