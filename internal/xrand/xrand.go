// Package xrand provides small, fast, deterministic random number
// generators used throughout the ENMC reproduction.
//
// Every experiment in this repository must be bit-reproducible across
// runs and platforms, so instead of math/rand (whose stream is not
// guaranteed stable across Go releases for all helpers) we implement
// SplitMix64 for seeding and xoshiro256** for bulk generation. Both
// are public-domain algorithms by Blackman & Vigna.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; use
// New to construct one from a seed.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, following
// the reference initialization recipe for xoshiro.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method (deterministic given the stream).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// NormFloat32 is NormFloat64 narrowed to float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place, calling swap for
// each exchange, mirroring math/rand's contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator from the current stream.
// Deriving rather than sharing keeps parallel workers reproducible
// regardless of interleaving.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }
