package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn bucket %d badly skewed: %d/100000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	// Child stream must differ from continuing the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream correlates with parent: %d matches", same)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 4x32 schoolbook recomputation.
		const mask = 1<<32 - 1
		aL, aH := a&mask, a>>32
		bL, bH := b&mask, b>>32
		ll := aL * bL
		lh := aL * bH
		hl := aH * bL
		hh := aH * bH
		carry := (ll>>32 + lh&mask + hl&mask) >> 32
		wantHi := hh + lh>>32 + hl>>32 + carry
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
