// Package compiler implements ENMC's programming support (paper
// Section 5.4, Fig. 9): it tiles a classification task over the
// on-DIMM buffer sizes and emits the per-rank ENMC instruction stream
// the engine executes. The same compiler also targets the baseline
// NMP designs (NDA, Chameleon, TensorDIMM), which run the identical
// algorithm but on homogeneous FP32 datapaths without the dual-module
// pipeline — precisely the contrast the paper's Fig. 13 draws.
package compiler

import (
	"fmt"

	"enmc/internal/enmc"
	"enmc/internal/isa"
)

// Task describes one batched classification offload.
type Task struct {
	Categories int // l, total classes (across all ranks)
	Hidden     int // d
	Reduced    int // k
	Candidates int // m per inference (across all ranks)
	Batch      int
	// Sigmoid selects the multi-label activation instead of softmax
	// (the recommendation workloads).
	Sigmoid bool
}

// Validate reports task errors.
func (t Task) Validate() error {
	if t.Categories <= 0 || t.Hidden <= 0 || t.Reduced <= 0 {
		return fmt.Errorf("compiler: non-positive dimensions l=%d d=%d k=%d", t.Categories, t.Hidden, t.Reduced)
	}
	if t.Candidates < 0 || t.Candidates > t.Categories {
		return fmt.Errorf("compiler: candidates %d out of range", t.Candidates)
	}
	if t.Batch <= 0 {
		return fmt.Errorf("compiler: non-positive batch")
	}
	return nil
}

// Mode selects which pipeline is compiled.
type Mode int

// Compilation modes.
const (
	// ModeScreened is the paper's pipeline: INT4/FP32 screening plus
	// candidates-only classification.
	ModeScreened Mode = iota
	// ModeFull is conventional full classification (what TensorDIMM
	// natively runs in Fig. 14/15).
	ModeFull
)

// Target describes the hardware the program is compiled for.
type Target struct {
	Name string
	// ScreenOnINT4 routes screening through the INT4 Screener unit
	// (ENMC). Homogeneous baselines execute screening on their FP32
	// datapath instead.
	ScreenOnINT4 bool
	// DualModule enables the Screener→Executor pipeline overlap
	// (SyncS2E annotations instead of full BARRIERs).
	DualModule bool
	// WeightReuseAcrossBatch reuses a streamed weight tile for every
	// batch item (requires enough buffering for per-item partial
	// sums; small-queue designs like TensorDIMM restream instead —
	// the buffer-overflow traffic Fig. 14 attributes energy to).
	WeightReuseAcrossBatch bool
}

// ENMCTarget is the paper's design.
func ENMCTarget() Target {
	return Target{Name: "ENMC", ScreenOnINT4: true, DualModule: true, WeightReuseAcrossBatch: true}
}

// RankShare is the slice of the task owned by one rank (the compiler
// splits classes row-wise across all ranks in the system).
type RankShare struct {
	Rows       int // classifier rows stored and screened on this rank
	Candidates int // candidate rows recomputed on this rank, per inference
}

// Split divides the task evenly over totalRanks.
func (t Task) Split(totalRanks int) RankShare {
	if totalRanks <= 0 {
		panic("compiler: non-positive rank count")
	}
	return RankShare{
		Rows:       ceil(t.Categories, totalRanks),
		Candidates: ceil(t.Candidates, totalRanks),
	}
}

// Layout is the per-rank address map the compiler assumes; the host
// writes it into the status registers during initialization.
type Layout struct {
	ScrWBase  uint64 // quantized screening weights (row-major tiles)
	FullWBase uint64 // FP32 classifier rows
	FeatBase  uint64 // input features (INT4 then FP32 copies)
	OutBase   uint64 // spill/output region
}

// LayoutFor exposes the per-rank address map Compile assumes for a
// shard of rows classifier rows with INT4 screening weights and the
// default hardware's burst alignment. The image package uses it to
// build DRAM images that agree with compiled programs.
func LayoutFor(t Task, rows int) Layout {
	share := RankShare{Rows: rows, Candidates: max(t.Candidates, 1)}
	return layoutFor(t, enmc.Default(), share, 0.5)
}

// layoutFor packs the rank's regions back to back.
func layoutFor(t Task, hw enmc.Config, share RankShare, screenBytesPerElem float64) Layout {
	align := func(x uint64) uint64 {
		b := uint64(hw.DRAM.BurstBytes)
		return (x + b - 1) / b * b
	}
	scrBytes := uint64(float64(share.Rows*t.Reduced)*screenBytesPerElem) + uint64(share.Rows*8)
	fullBytes := uint64(share.Rows) * uint64(t.Hidden) * 4
	featBytes := uint64(t.Batch) * (uint64(t.Reduced) + uint64(t.Hidden)*4)
	var l Layout
	l.ScrWBase = 0
	l.FullWBase = align(l.ScrWBase + scrBytes)
	l.FeatBase = align(l.FullWBase + fullBytes)
	l.OutBase = align(l.FeatBase + featBytes)
	return l
}

// Program is a compiled per-rank instruction stream plus the
// bookkeeping the host and the experiment harness need.
type Program struct {
	Target Target
	Mode   Mode
	Task   Task
	Share  RankShare
	Layout Layout
	Ops    []enmc.Op
	// Init is the status-register preamble (INIT instructions).
	Init []enmc.Op
}

type emitter struct {
	ops []enmc.Op
	hw  enmc.Config
	// phase tags every emitted op for the engine's per-phase cycle
	// attribution and span naming; setPhase switches sections.
	phase enmc.Phase
}

func (e *emitter) setPhase(p enmc.Phase) { e.phase = p }

func (e *emitter) emit(in isa.Instruction) { e.ops = append(e.ops, enmc.Op{I: in, Phase: e.phase}) }

// emitB emits with an explicit payload size (partial tiles).
func (e *emitter) emitB(in isa.Instruction, bytes int) {
	e.ops = append(e.ops, enmc.Op{I: in, Bytes: bytes, Phase: e.phase})
}

func (e *emitter) emitSyncB(in isa.Instruction, bytes int) {
	e.ops = append(e.ops, enmc.Op{I: in, SyncS2E: true, Bytes: bytes, Phase: e.phase})
}

// Compile produces the per-rank program for the task on the target.
func Compile(t Task, hw enmc.Config, target Target, share RankShare, mode Mode) (*Program, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	// Screening weights are stored INT4-packed for every target (the
	// memory format is the algorithm's); what differs is the datapath
	// that consumes them. Homogeneous designs dequantize into their
	// FP32 lanes and become compute-bound — the paper's stated
	// limitation of prior NMPs.
	const screenBytes = 0.5
	lay := layoutFor(t, hw, share, screenBytes)
	p := &Program{Target: target, Mode: mode, Task: t, Share: share, Layout: lay}

	p.Init = initProgram(t, lay)

	e := &emitter{hw: hw}
	switch mode {
	case ModeScreened:
		compileScreened(e, t, target, share, lay, screenBytes)
	case ModeFull:
		compileFull(e, t, target, share, lay)
	default:
		return nil, fmt.Errorf("compiler: unknown mode %d", mode)
	}
	p.Ops = e.ops
	return p, nil
}

// initProgram writes the task parameters into the status registers
// (the INIT sequence of Fig. 9(b)).
func initProgram(t Task, lay Layout) []enmc.Op {
	mk := func(r isa.Reg, v uint64) enmc.Op { return enmc.Op{I: isa.Init(r, v), Phase: enmc.PhaseInit} }
	return []enmc.Op{
		mk(isa.RegFeatAddr, lay.FeatBase),
		mk(isa.RegScrWAddr, lay.ScrWBase),
		mk(isa.RegFullWAddr, lay.FullWBase),
		mk(isa.RegOutAddr, lay.OutBase),
		mk(isa.RegVocab, uint64(t.Categories)),
		mk(isa.RegHidden, uint64(t.Hidden)),
		mk(isa.RegReduced, uint64(t.Reduced)),
		mk(isa.RegBatch, uint64(t.Batch)),
	}
}

// compileScreened emits the two-phase pipeline for every batch item.
func compileScreened(e *emitter, t Task, target Target, share RankShare, lay Layout, screenBytes float64) {
	buf := e.hw.BufBytes
	psumOutputs := buf / 4 // accumulator entries per PSUM tile

	screenUnitWeightOp := isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4)
	screenLoadBuf := isa.BufWgtINT4
	featLoadBuf := isa.BufFeatINT4
	filterBuf := isa.BufPsumINT4
	// An INT4 tile of B bytes holds 2·B nibble operands, which the
	// Screener consumes in one MULADD_INT4. A homogeneous datapath
	// dequantizes the same tile into FP32 lanes, where one MULADD_FP32
	// covers only B/4 operands — 8 compute ops per tile. That 8×
	// op-count blowup is exactly why the paper says prior NMPs
	// "hardly meet the throughput requirement in the screening phase".
	if !target.ScreenOnINT4 {
		screenUnitWeightOp = isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32)
		screenLoadBuf = isa.BufWgtFP32
		featLoadBuf = isa.BufFeatFP32
		filterBuf = isa.BufPsumFP32
	}
	// emitScreenMACs charges the compute for one packed tile of
	// `tile` bytes on the screening datapath.
	emitScreenMACs := func(tile int) {
		if target.ScreenOnINT4 {
			e.emitB(screenUnitWeightOp, tile)
			return
		}
		totalElems := tile * 2 // dequantized nibble operands
		per := buf / 4         // FP32 operands per compute op
		for done := 0; done < totalElems; done += per {
			e.emitB(screenUnitWeightOp, min(per, totalElems-done)*4)
		}
	}

	items := t.Batch
	reuse := target.WeightReuseAcrossBatch

	emitScreen := func(applyPerItem int) {
		// Screening features for the item(s).
		e.setPhase(enmc.PhaseFeature)
		featBytes := int(float64(t.Reduced) * screenBytes)
		if featBytes < 1 {
			featBytes = 1
		}
		for off := 0; off < featBytes; off += buf {
			e.emitB(isa.Ldr(featLoadBuf, lay.FeatBase+uint64(off)), min(buf, featBytes-off))
		}
		// Stream the rank's screening weight tiles.
		e.setPhase(enmc.PhaseScreen)
		outTiles := ceil(share.Rows, psumOutputs)
		bytesPerOutTile := int(float64(psumOutputs*t.Reduced) * screenBytes)
		addr := lay.ScrWBase
		for ot := 0; ot < outTiles; ot++ {
			e.setPhase(enmc.PhaseScreen)
			for off := 0; off < bytesPerOutTile; off += buf {
				tile := min(buf, bytesPerOutTile-off)
				e.emitB(isa.Ldr(screenLoadBuf, addr), tile)
				addr += uint64(tile)
				for r := 0; r < applyPerItem; r++ {
					emitScreenMACs(tile)
				}
			}
			e.setPhase(enmc.PhaseFilter)
			for r := 0; r < applyPerItem; r++ {
				e.emit(isa.Filter(filterBuf))
			}
		}
	}

	emitExec := func(item int) {
		// Candidates-only classification: chunk-outer so the feature
		// chunk is reused across candidate rows.
		e.setPhase(enmc.PhaseExact)
		rowBytes := t.Hidden * 4
		chunks := ceil(rowBytes, buf)
		first := true
		for c := 0; c < chunks; c++ {
			chunkBytes := min(buf, rowBytes-c*buf)
			// The FP32 feature copy sits after the packed INT4 one
			// ((k+1)/2 bytes).
			featAddr := lay.FeatBase + uint64((t.Reduced+1)/2) + uint64(c*buf)
			in := isa.Ldr(isa.BufFeatFP32, featAddr)
			if first && target.DualModule {
				e.emitSyncB(in, chunkBytes)
				first = false
			} else if first {
				e.emit(isa.Simple(isa.OpBARRIER))
				e.emitB(in, chunkBytes)
				first = false
			} else {
				e.emitB(in, chunkBytes)
			}
			for cand := 0; cand < share.Candidates; cand++ {
				// Candidate rows cluster: screener candidates come
				// from the Zipf-hot head of the class space, which
				// the host lays out contiguously, so the gather has
				// DRAM-row locality. Vary the base per item.
				row := (item*31 + cand) % max(share.Rows, 1)
				wAddr := lay.FullWBase + uint64(row)*uint64(rowBytes) + uint64(c*buf)
				e.emitB(isa.Ldr(isa.BufWgtFP32, wAddr), chunkBytes)
				e.emitB(isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32), chunkBytes)
			}
		}
		e.setPhase(enmc.PhaseActivation)
		if t.Sigmoid {
			e.emit(isa.Simple(isa.OpSIGMOID))
		} else {
			e.emit(isa.Simple(isa.OpSOFTMAX))
		}
		e.setPhase(enmc.PhaseOutput)
		e.emit(isa.Move(isa.BufOutput, isa.BufPsumFP32))
		e.emit(isa.Simple(isa.OpRETURN))
	}

	if reuse {
		// One weight sweep feeds all batch items' screens, then the
		// executor drains each item's candidates.
		emitScreen(items)
		for it := 0; it < items; it++ {
			emitExec(it)
		}
	} else {
		for it := 0; it < items; it++ {
			emitScreen(1)
			emitExec(it)
		}
	}
	e.setPhase(enmc.PhaseOther)
	e.emit(isa.Simple(isa.OpBARRIER))
}

// compileFull emits conventional full classification: every weight
// row is streamed through the FP32 datapath (the TensorDIMM-style
// baseline operation of Fig. 14/15).
func compileFull(e *emitter, t Task, target Target, share RankShare, lay Layout) {
	buf := e.hw.BufBytes
	psumOutputs := buf / 4
	chunks := ceil(t.Hidden*4, buf)
	rowBytes := t.Hidden * 4

	sweep := func(applyPerItem int) {
		outTiles := ceil(share.Rows, psumOutputs)
		for ot := 0; ot < outTiles; ot++ {
			baseRow := ot * psumOutputs
			rows := min(psumOutputs, share.Rows-baseRow)
			e.setPhase(enmc.PhaseExact)
			for c := 0; c < chunks; c++ {
				chunkBytes := min(buf, rowBytes-c*buf)
				e.emitB(isa.Ldr(isa.BufFeatFP32, lay.FeatBase+uint64(c*buf)), chunkBytes)
				for r := 0; r < rows; r++ {
					wAddr := lay.FullWBase + uint64(baseRow+r)*uint64(rowBytes) + uint64(c*buf)
					e.emitB(isa.Ldr(isa.BufWgtFP32, wAddr), chunkBytes)
					for a := 0; a < applyPerItem; a++ {
						e.emitB(isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32), chunkBytes)
					}
				}
			}
			outBytes := rows * 4
			e.setPhase(enmc.PhaseActivation)
			if t.Sigmoid {
				e.emitB(isa.Simple(isa.OpSIGMOID), outBytes)
			} else {
				e.emitB(isa.Simple(isa.OpSOFTMAX), outBytes)
			}
			e.setPhase(enmc.PhaseOutput)
			e.emitB(isa.Move(isa.BufOutput, isa.BufPsumFP32), outBytes)
			e.emitB(isa.Simple(isa.OpRETURN), outBytes)
		}
	}

	if target.WeightReuseAcrossBatch {
		sweep(t.Batch)
	} else {
		for it := 0; it < t.Batch; it++ {
			sweep(1)
		}
	}
	e.setPhase(enmc.PhaseOther)
	e.emit(isa.Simple(isa.OpBARRIER))
}

func ceil(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
