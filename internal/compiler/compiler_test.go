package compiler

import (
	"testing"
	"testing/quick"

	"enmc/internal/enmc"
	"enmc/internal/isa"
	"enmc/internal/xrand"
)

func testTask() Task {
	return Task{Categories: 8192, Hidden: 512, Reduced: 128, Candidates: 128, Batch: 1}
}

func hw() enmc.Config {
	c := enmc.Default()
	c.DRAM.Rows = 4096
	return c
}

func TestTaskValidate(t *testing.T) {
	if err := testTask().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testTask()
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("batch 0 accepted")
	}
	bad = testTask()
	bad.Candidates = bad.Categories + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("too many candidates accepted")
	}
}

func TestSplit(t *testing.T) {
	share := testTask().Split(64)
	if share.Rows != 128 || share.Candidates != 2 {
		t.Fatalf("share = %+v", share)
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	task := testTask()
	share := task.Split(64)
	p, err := Compile(task, hw(), ENMCTarget(), share, ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Layout
	if !(l.ScrWBase < l.FullWBase && l.FullWBase < l.FeatBase && l.FeatBase < l.OutBase) {
		t.Fatalf("layout regions overlap: %+v", l)
	}
	// Full weights region must hold share.Rows × d × 4 bytes.
	if l.FeatBase-l.FullWBase < uint64(share.Rows*task.Hidden*4) {
		t.Fatal("full-weight region too small")
	}
}

func TestAllInstructionsValid(t *testing.T) {
	task := testTask()
	task.Batch = 2
	for _, mode := range []Mode{ModeScreened, ModeFull} {
		p, err := Compile(task, hw(), ENMCTarget(), task.Split(64), mode)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range append(p.Init, p.Ops...) {
			if err := op.I.Validate(); err != nil {
				t.Fatalf("mode %d op %d: %v", mode, i, err)
			}
		}
	}
}

func TestInitProgramSetsRegisters(t *testing.T) {
	task := testTask()
	p, err := Compile(task, hw(), ENMCTarget(), task.Split(64), ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	e, err := enmc.New(hw())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(p.Init); err != nil {
		t.Fatal(err)
	}
	if e.Reg(isa.RegVocab) != uint64(task.Categories) {
		t.Fatal("vocab register not initialized")
	}
	if e.Reg(isa.RegReduced) != uint64(task.Reduced) {
		t.Fatal("reduced register not initialized")
	}
}

func TestScreenedUsesINT4OnENMC(t *testing.T) {
	task := testTask()
	p, _ := Compile(task, hw(), ENMCTarget(), task.Split(64), ModeScreened)
	int4, fp32, syncs := 0, 0, 0
	for _, op := range p.Ops {
		switch op.I.Op {
		case isa.OpMULADDINT4:
			int4++
		case isa.OpMULADDFP32:
			fp32++
		}
		if op.SyncS2E {
			syncs++
		}
	}
	if int4 == 0 || fp32 == 0 {
		t.Fatalf("expected both phases: int4=%d fp32=%d", int4, fp32)
	}
	if syncs != task.Batch {
		t.Fatalf("syncs = %d, want one per batch item", syncs)
	}
}

func TestHomogeneousTargetScreensOnFP32(t *testing.T) {
	task := testTask()
	tgt := Target{Name: "TensorDIMM", WeightReuseAcrossBatch: true}
	p, err := Compile(task, hw(), tgt, task.Split(64), ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range p.Ops {
		if op.I.Op == isa.OpMULADDINT4 {
			t.Fatal("homogeneous target must not use INT4 MACs")
		}
		if op.SyncS2E {
			t.Fatal("non-dual-module target emitted SyncS2E")
		}
	}
}

func TestBatchRestreamingMultipliesLoads(t *testing.T) {
	task := testTask()
	task.Batch = 4
	countLoads := func(reuse bool) int {
		tgt := ENMCTarget()
		tgt.WeightReuseAcrossBatch = reuse
		p, err := Compile(task, hw(), tgt, task.Split(64), ModeScreened)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, op := range p.Ops {
			if op.I.Op == isa.OpLDR && (op.I.Buf0 == isa.BufWgtINT4 || op.I.Buf0 == isa.BufWgtFP32) {
				n++
			}
		}
		return n
	}
	withReuse := countLoads(true)
	without := countLoads(false)
	// Screening weights restreamed per item ≈ more loads; executor
	// candidate loads are per-item in both cases.
	if without < withReuse*2 {
		t.Fatalf("restreaming loads %d not ≫ reused %d", without, withReuse)
	}
}

func TestFullModeStreamsEverything(t *testing.T) {
	task := testTask()
	share := task.Split(64)
	p, err := Compile(task, hw(), ENMCTarget(), share, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	var bytes int64
	for _, op := range p.Ops {
		if op.I.Op == isa.OpLDR && op.I.Buf0 == isa.BufWgtFP32 {
			bytes += 256
		}
	}
	want := int64(share.Rows) * int64(task.Hidden) * 4
	if bytes < want {
		t.Fatalf("full mode streamed %d weight bytes, need ≥ %d", bytes, want)
	}
}

// TestScreenedBeatsFullOnEngine runs both compiled programs through
// the engine: the screened pipeline must be several times faster —
// the paper's whole point.
func TestScreenedBeatsFullOnEngine(t *testing.T) {
	task := testTask()
	share := task.Split(64)

	run := func(mode Mode) int64 {
		p, err := Compile(task, hw(), ENMCTarget(), share, mode)
		if err != nil {
			t.Fatal(err)
		}
		e, err := enmc.New(hw())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(p.Ops)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	screened := run(ModeScreened)
	full := run(ModeFull)
	if full < screened*4 {
		t.Fatalf("screened %d vs full %d: speedup below 4×", screened, full)
	}
}

func TestSigmoidTask(t *testing.T) {
	task := testTask()
	task.Sigmoid = true
	p, err := Compile(task, hw(), ENMCTarget(), task.Split(64), ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	hasSigmoid, hasSoftmax := false, false
	for _, op := range p.Ops {
		if op.I.Op == isa.OpSIGMOID {
			hasSigmoid = true
		}
		if op.I.Op == isa.OpSOFTMAX {
			hasSoftmax = true
		}
	}
	if !hasSigmoid || hasSoftmax {
		t.Fatal("sigmoid task must use SIGMOID, not SOFTMAX")
	}
}

// TestWeightTrafficConservation is the property that anchors every
// performance result: for random tasks, the bytes of screening
// weights a compiled program loads must equal the shard's packed
// weight footprint exactly — no tile may be dropped or double-loaded.
func TestWeightTrafficConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		task := Task{
			Categories: 512 + r.Intn(8192),
			Hidden:     64 * (1 + r.Intn(8)),
			Batch:      1 + r.Intn(3),
		}
		task.Reduced = task.Hidden / (2 << r.Intn(3)) // d/2, d/4, d/8
		if task.Reduced < 1 {
			task.Reduced = 1
		}
		task.Candidates = 1 + r.Intn(task.Categories/4)
		ranks := 1 << r.Intn(7)
		share := task.Split(ranks)

		p, err := Compile(task, hw(), ENMCTarget(), share, ModeScreened)
		if err != nil {
			t.Log(err)
			return false
		}
		var screenBytes, candBytes int64
		for _, op := range p.Ops {
			if op.I.Op != isa.OpLDR {
				continue
			}
			n := int64(op.Bytes)
			if n == 0 {
				n = int64(hw().BufBytes)
			}
			switch op.I.Buf0 {
			case isa.BufWgtINT4:
				screenBytes += n
			case isa.BufWgtFP32:
				candBytes += n
			}
		}
		// Screening weights: ceil over out-tiles of 64 rows, each
		// rows×k/2 bytes, loaded exactly once (ENMC reuses across
		// the batch).
		psum := hw().BufBytes / 4
		outTiles := (share.Rows + psum - 1) / psum
		wantScreen := int64(outTiles) * int64(psum) * int64(task.Reduced) / 2
		if screenBytes != wantScreen {
			t.Logf("screen bytes %d, want %d (rows=%d k=%d)", screenBytes, wantScreen, share.Rows, task.Reduced)
			return false
		}
		// Candidate weights: candidates × row bytes per batch item.
		wantCand := int64(task.Batch) * int64(share.Candidates) * int64(task.Hidden) * 4
		if candBytes != wantCand {
			t.Logf("cand bytes %d, want %d", candBytes, wantCand)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFullModeTrafficConservation: full classification must stream
// every FP32 weight byte of the shard exactly once (with reuse).
func TestFullModeTrafficConservation(t *testing.T) {
	task := Task{Categories: 4096, Hidden: 384, Reduced: 96, Candidates: 64, Batch: 3}
	share := task.Split(16)
	p, err := Compile(task, hw(), ENMCTarget(), share, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	var bytes int64
	for _, op := range p.Ops {
		if op.I.Op == isa.OpLDR && op.I.Buf0 == isa.BufWgtFP32 {
			n := int64(op.Bytes)
			if n == 0 {
				n = int64(hw().BufBytes)
			}
			bytes += n
		}
	}
	want := int64(share.Rows) * int64(task.Hidden) * 4
	if bytes != want {
		t.Fatalf("full-mode weight bytes %d, want %d", bytes, want)
	}
}
