package core

import (
	"bytes"
	"testing"

	"enmc/internal/quant"
)

func TestScreenerRoundTrip(t *testing.T) {
	cls, samples := testModel(t, 120, 64, 40)
	cfg := testConfig(120, 64)
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := scr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadScreener(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != scr.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", got.Cfg, scr.Cfg)
	}
	// The restored screener must produce bit-identical outputs.
	for _, h := range samples[:8] {
		a, b := scr.Screen(h), got.Screen(h)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("screen output diverged at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
	// Master weights survive (training could resume).
	for i := range scr.Wt.Data {
		if got.Wt.Data[i] != scr.Wt.Data[i] {
			t.Fatal("master weights corrupted")
		}
	}
}

func TestScreenerRoundTripINT8PerTensor(t *testing.T) {
	cls, samples := testModel(t, 60, 32, 20)
	cfg := Config{Categories: 60, Hidden: 32, Reduced: 8, Precision: quant.INT8, PerTensor: true, Seed: 5}
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScreener(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cfg.PerTensor || got.Cfg.Precision != quant.INT8 {
		t.Fatalf("flags lost: %+v", got.Cfg)
	}
	h := samples[0]
	a, b := scr.Screen(h), got.Screen(h)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("INT8 screen output diverged")
		}
	}
}

func TestClassifierRoundTrip(t *testing.T) {
	cls, samples := testModel(t, 80, 32, 4)
	var buf bytes.Buffer
	if _, err := cls.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range samples {
		a, b := cls.Logits(h), got.Logits(h)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("classifier logits diverged after round trip")
			}
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := ReadScreener(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadClassifier(bytes.NewReader([]byte("ENMCCLS1"))); err == nil {
		t.Fatal("truncated classifier accepted")
	}
	// Screener with corrupted header dimensions.
	cls, samples := testModel(t, 20, 16, 4)
	scr, _, err := TrainScreener(cls, samples, testConfig(20, 16), TrainOptions{Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[9] = 0xff // scribble on Categories
	if _, err := ReadScreener(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted header accepted")
	}
	// Truncated payload.
	var buf2 bytes.Buffer
	if _, err := scr.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScreener(bytes.NewReader(buf2.Bytes()[:buf2.Len()/2])); err == nil {
		t.Fatal("truncated screener accepted")
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	_, samples := testModel(t, 20, 16, 12)
	var buf bytes.Buffer
	if _, err := WriteFeatures(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("count %d", len(got))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != samples[i][j] {
				t.Fatal("feature values corrupted")
			}
		}
	}
	// Ragged input rejected.
	bad := [][]float32{make([]float32, 4), make([]float32, 5)}
	if _, err := WriteFeatures(&buf, bad); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := WriteFeatures(&buf, nil); err == nil {
		t.Fatal("empty features accepted")
	}
	if _, err := ReadFeatures(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}
