package core

import (
	"bytes"
	"testing"

	"enmc/internal/quant"
	"enmc/internal/xrand"
)

func TestScreenerRoundTrip(t *testing.T) {
	cls, samples := testModel(t, 120, 64, 40)
	cfg := testConfig(120, 64)
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := scr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadScreener(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != scr.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", got.Cfg, scr.Cfg)
	}
	// The restored screener must produce bit-identical outputs.
	for _, h := range samples[:8] {
		a, b := scr.Screen(h), got.Screen(h)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("screen output diverged at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
	// Master weights survive (training could resume).
	for i := range scr.Wt.Data {
		if got.Wt.Data[i] != scr.Wt.Data[i] {
			t.Fatal("master weights corrupted")
		}
	}
}

func TestScreenerRoundTripINT8PerTensor(t *testing.T) {
	cls, samples := testModel(t, 60, 32, 20)
	cfg := Config{Categories: 60, Hidden: 32, Reduced: 8, Precision: quant.INT8, PerTensor: true, Seed: 5}
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScreener(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cfg.PerTensor || got.Cfg.Precision != quant.INT8 {
		t.Fatalf("flags lost: %+v", got.Cfg)
	}
	h := samples[0]
	a, b := scr.Screen(h), got.Screen(h)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("INT8 screen output diverged")
		}
	}
}

func TestClassifierRoundTrip(t *testing.T) {
	cls, samples := testModel(t, 80, 32, 4)
	var buf bytes.Buffer
	if _, err := cls.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range samples {
		a, b := cls.Logits(h), got.Logits(h)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("classifier logits diverged after round trip")
			}
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := ReadScreener(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadClassifier(bytes.NewReader([]byte("ENMCCLS1"))); err == nil {
		t.Fatal("truncated classifier accepted")
	}
	// Screener with corrupted header dimensions.
	cls, samples := testModel(t, 20, 16, 4)
	scr, _, err := TrainScreener(cls, samples, testConfig(20, 16), TrainOptions{Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[9] = 0xff // scribble on Categories
	if _, err := ReadScreener(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted header accepted")
	}
	// Truncated payload.
	var buf2 bytes.Buffer
	if _, err := scr.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScreener(bytes.NewReader(buf2.Bytes()[:buf2.Len()/2])); err == nil {
		t.Fatal("truncated screener accepted")
	}
}

// TestWriteToDoesNotMutate: serializing an unfrozen screener must
// not install QW as a side effect (the WeightBytes bug class) — and
// must still emit exactly the bytes the frozen screener would.
func TestWriteToDoesNotMutate(t *testing.T) {
	cls, _ := testModel(t, 40, 32, 4)
	scr, err := ProjectedScreener(cls, testConfig(40, 32))
	if err != nil {
		t.Fatal(err)
	}
	var frozen bytes.Buffer
	if _, err := scr.WriteTo(&frozen); err != nil {
		t.Fatal(err)
	}

	scr.QW = nil // unfrozen: the state right after construction/training mutation
	var unfrozen bytes.Buffer
	if _, err := scr.WriteTo(&unfrozen); err != nil {
		t.Fatal(err)
	}
	if scr.QW != nil {
		t.Fatal("WriteTo froze its receiver as a side effect")
	}
	if !bytes.Equal(frozen.Bytes(), unfrozen.Bytes()) {
		t.Fatal("unfrozen WriteTo bytes differ from the frozen serialization")
	}
}

// synthScreener builds a frozen screener with deterministic
// pseudo-random weights directly (no training), so the round-trip
// property test can sweep precisions and odd shapes cheaply.
func synthScreener(t *testing.T, l, d, k int, bits quant.Bits, perTensor bool, seed uint64) *Screener {
	t.Helper()
	scr, err := newScreener(Config{
		Categories: l, Hidden: d, Reduced: k,
		Precision: bits, PerTensor: perTensor, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(seed + 13)
	for i := range scr.Wt.Data {
		scr.Wt.Data[i] = r.NormFloat32()
	}
	for i := range scr.Bt {
		scr.Bt[i] = 0.25 * r.NormFloat32()
	}
	scr.Freeze()
	return scr
}

// TestSerializeRoundTripProperty sweeps every supported precision ×
// odd (non-power-of-two, non-multiple-of-4) shapes and checks the
// round trip is bit-identical: config, master weights, and screen
// outputs on random inputs.
func TestSerializeRoundTripProperty(t *testing.T) {
	shapes := []struct{ l, d, k int }{
		{7, 11, 3},   // tiny, everything odd
		{33, 17, 5},  // rows%4 != 0 exercises the SWAR panel tail
		{61, 32, 31}, // k just under a power of two
	}
	for _, bits := range []quant.Bits{quant.INT2, quant.INT4, quant.INT8} {
		for _, perTensor := range []bool{false, true} {
			for _, sh := range shapes {
				scr := synthScreener(t, sh.l, sh.d, sh.k, bits, perTensor, uint64(sh.l*sh.d)+uint64(bits))
				var buf bytes.Buffer
				n, err := scr.WriteTo(&buf)
				if err != nil {
					t.Fatalf("INT%d %dx%dx%d: %v", bits, sh.l, sh.d, sh.k, err)
				}
				if n != int64(buf.Len()) {
					t.Fatalf("INT%d %dx%dx%d: reported %d bytes, wrote %d", bits, sh.l, sh.d, sh.k, n, buf.Len())
				}
				got, err := ReadScreener(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("INT%d %dx%dx%d: %v", bits, sh.l, sh.d, sh.k, err)
				}
				if got.Cfg != scr.Cfg {
					t.Fatalf("config mismatch: %+v vs %+v", got.Cfg, scr.Cfg)
				}
				for i := range scr.Wt.Data {
					if got.Wt.Data[i] != scr.Wt.Data[i] {
						t.Fatalf("INT%d %dx%dx%d: master weights corrupted", bits, sh.l, sh.d, sh.k)
					}
				}
				r := xrand.New(uint64(sh.d))
				for trial := 0; trial < 3; trial++ {
					h := make([]float32, sh.d)
					for i := range h {
						h[i] = r.NormFloat32()
					}
					a, b := scr.Screen(h), got.Screen(h)
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("INT%d perTensor=%v %dx%dx%d: screen diverged at %d",
								bits, perTensor, sh.l, sh.d, sh.k, i)
						}
					}
				}
			}
		}
	}
}

// TestScreenerTruncatedStream: every proper prefix of a valid
// serialization must fail cleanly (error, no panic, never a bogus
// screener).
func TestScreenerTruncatedStream(t *testing.T) {
	scr := synthScreener(t, 7, 11, 3, quant.INT4, false, 3)
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadScreener(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", cut, len(full))
		}
	}
	if _, err := ReadScreener(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestSerializeBadMagicAndVersion: a wrong magic and a bumped format
// version byte must both be rejected, for screener and classifier.
func TestSerializeBadMagicAndVersion(t *testing.T) {
	scr := synthScreener(t, 8, 12, 4, quant.INT8, false, 4)
	var buf bytes.Buffer
	if _, err := scr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	b[7] = '2' // "ENMCSCR1" -> "ENMCSCR2": a future format version
	if _, err := ReadScreener(bytes.NewReader(b)); err == nil {
		t.Fatal("bumped screener format version accepted")
	}
	copy(b, "XXXXXXXX")
	if _, err := ReadScreener(bytes.NewReader(b)); err == nil {
		t.Fatal("bad screener magic accepted")
	}

	cls, _ := testModel(t, 10, 8, 1)
	var cbuf bytes.Buffer
	if _, err := cls.WriteTo(&cbuf); err != nil {
		t.Fatal(err)
	}
	cb := append([]byte(nil), cbuf.Bytes()...)
	cb[7] = '9' // "ENMCCLS1" -> "ENMCCLS9"
	if _, err := ReadClassifier(bytes.NewReader(cb)); err == nil {
		t.Fatal("bumped classifier format version accepted")
	}
	for cut := 0; cut < cbuf.Len(); cut += 7 {
		if _, err := ReadClassifier(bytes.NewReader(cbuf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated classifier at %d accepted", cut)
		}
	}
}

// TestTrainInitFrom: warm-starting from a checkpointed screener must
// copy (not alias) the donor's weights and validate the config.
func TestTrainInitFrom(t *testing.T) {
	cls, samples := testModel(t, 30, 16, 24)
	cfg := testConfig(30, 16)
	first, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	donorW := append([]float32(nil), first.Wt.Data...)

	resumed, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 2, Seed: 9, InitFrom: first})
	if err != nil {
		t.Fatal(err)
	}
	// The donor is untouched; the resumed screener moved on from it.
	for i := range donorW {
		if first.Wt.Data[i] != donorW[i] {
			t.Fatal("InitFrom mutated the donor screener")
		}
	}
	if &resumed.Wt.Data[0] == &first.Wt.Data[0] {
		t.Fatal("InitFrom aliased the donor weights")
	}

	// Mismatched config is rejected.
	badCfg := cfg
	badCfg.Seed++
	if _, _, err := TrainScreener(cls, samples, badCfg, TrainOptions{Epochs: 1, InitFrom: first}); err == nil {
		t.Fatal("InitFrom with mismatched config accepted")
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	_, samples := testModel(t, 20, 16, 12)
	var buf bytes.Buffer
	if _, err := WriteFeatures(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("count %d", len(got))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != samples[i][j] {
				t.Fatal("feature values corrupted")
			}
		}
	}
	// Ragged input rejected.
	bad := [][]float32{make([]float32, 4), make([]float32, 5)}
	if _, err := WriteFeatures(&buf, bad); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := WriteFeatures(&buf, nil); err == nil {
		t.Fatal("empty features accepted")
	}
	if _, err := ReadFeatures(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}
