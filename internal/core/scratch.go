package core

import (
	"runtime"
	"sync"

	"enmc/internal/quant"
	"enmc/internal/tensor"
)

// Scratch is a per-worker arena for the approximate-classification
// hot path. A query at Amazon-670K scale needs an l-sized logits
// vector (~2.7 MB), a projected feature, a quantized feature, a
// candidate-selection heap and an exact-logits buffer; allocating
// those per request turns a saturated server into a garbage
// generator. A Scratch owns all of them and is recycled through a
// sync.Pool, so the steady-state classify path allocates nothing.
//
// Ownership rules (see DESIGN.md §4):
//
//   - Whoever calls GetScratch calls Release — typically once per
//     worker goroutine around a batch of queries, not per query.
//   - Results produced through a Scratch (ClassifyApproxInto, the
//     ClassifyBatchVisitCtx callback) alias the arena: they are valid
//     only until the next pipeline call on the same Scratch or its
//     Release, whichever comes first. Copy out anything you keep.
//   - A Scratch is single-goroutine; concurrency comes from checking
//     out one per worker, never from sharing.
type Scratch struct {
	// MaxShards caps intra-query parallelism for pipelines run
	// through this scratch: 1 forces the fully serial — and
	// allocation-free — path, 0 picks a GOMAXPROCS-based shard count
	// for large category counts. Batch drivers set it so that
	// (workers × shards) ≈ GOMAXPROCS; a saturated server therefore
	// runs serial per-query kernels while a single idle query fans
	// its GEMV across every core.
	MaxShards int

	projected []float32    // P·h, length k
	q         quant.Vector // quantized projected feature
	mixed     []float32    // screen/mixed logits for arena-backed results, length l
	exact     []float32    // exact candidate logits, length m
	cands     []int        // threshold-selection candidate storage
	sel       tensor.TopKBuf
	shardSel  []tensor.TopKBuf // per-shard partial heaps (parallel top-m)
	shardIdx  [][]int          // per-shard winner lists fed to the merge
	post      tensor.TopKBuf   // post-classify selection, see (*Scratch).TopK
	res       Result           // arena-backed result header
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch checks a Scratch out of the process-wide pool. MaxShards
// is reset to 0 (auto); everything else keeps its grown capacity.
func GetScratch() *Scratch {
	sc := scratchPool.Get().(*Scratch)
	sc.MaxShards = 0
	return sc
}

// Release returns the scratch to the pool. The caller must not touch
// the scratch — or any arena-backed Result obtained through it —
// afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

// TopK selects the k largest entries of x (descending, ties toward
// lower index) using the scratch's post-classify selection buffer —
// for consumers that rank an arena-backed Result's mixed logits, e.g.
// the serving layer's per-response top-k. The returned slice is valid
// until the next TopK call on this scratch.
func (s *Scratch) TopK(x []float32, k int) []int {
	return tensor.TopKInto(x, k, &s.post)
}

// growF32 returns buf resized to n, reallocating only when capacity
// is insufficient.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// shardMinRows is the minimum GEMV rows per shard worth a goroutine:
// below this the spawn/join overhead beats the win.
const shardMinRows = 65536

// shardCount picks the intra-query shard count for a rows-sized GEMV
// or selection sweep under the scratch's MaxShards cap.
func (s *Scratch) shardCount(rows int) int {
	p := runtime.GOMAXPROCS(0)
	if s.MaxShards > 0 && p > s.MaxShards {
		p = s.MaxShards
	}
	if p <= 1 || rows < 2*shardMinRows {
		return 1
	}
	if n := rows / shardMinRows; n < p {
		p = n
	}
	return p
}

// shardBufs returns n per-shard TopK buffers and the n-length winner-
// list holder, growing the backing slices as needed.
func (s *Scratch) shardBufs(n int) ([]tensor.TopKBuf, [][]int) {
	if cap(s.shardSel) < n {
		s.shardSel = make([]tensor.TopKBuf, n)
		s.shardIdx = make([][]int, n)
	}
	return s.shardSel[:n], s.shardIdx[:n]
}
