package core

import (
	"math"
	"testing"

	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// testModel builds a small synthetic classifier with low-rank latent
// structure (W = A·B + noise) plus feature vectors drawn so that
// logits concentrate — the geometry screening exploits.
func testModel(t testing.TB, l, d, nSamples int) (*Classifier, [][]float32) {
	t.Helper()
	r := xrand.New(99)
	const rank = 8
	a := tensor.NewMatrix(l, rank)
	b := tensor.NewMatrix(rank, d)
	for i := range a.Data {
		a.Data[i] = r.NormFloat32()
	}
	for i := range b.Data {
		b.Data[i] = r.NormFloat32() / float32(math.Sqrt(rank))
	}
	w := tensor.MatMul(a, b)
	for i := range w.Data {
		w.Data[i] += 0.05 * r.NormFloat32()
	}
	bias := make([]float32, l)
	for i := range bias {
		bias[i] = 0.1 * r.NormFloat32()
	}
	cls, err := NewClassifier(w, bias)
	if err != nil {
		t.Fatal(err)
	}
	// Hidden states are peaked toward a target class's weight row plus
	// noise, mimicking real trained front-ends whose logits
	// concentrate on few categories.
	samples := make([][]float32, nSamples)
	for i := range samples {
		h := make([]float32, d)
		c := r.Intn(l)
		row := w.Row(c)
		norm := float32(tensor.Norm2(row))
		for j := range h {
			h[j] = 2.5*row[j]/norm + 0.6*r.NormFloat32()
		}
		samples[i] = h
	}
	return cls, samples
}

func testConfig(l, d int) Config {
	return Config{Categories: l, Hidden: d, Reduced: d / 4, Precision: quant.INT4, Seed: 7}
}

func TestNewClassifierValidates(t *testing.T) {
	if _, err := NewClassifier(tensor.NewMatrix(3, 2), make([]float32, 2)); err == nil {
		t.Fatal("expected bias-length error")
	}
}

func TestLogitsRowsMatchesFull(t *testing.T) {
	cls, samples := testModel(t, 50, 16, 1)
	full := cls.Logits(samples[0])
	rows := []int{0, 7, 49}
	sub := cls.LogitsRows(rows, samples[0])
	for j, r := range rows {
		if sub[j] != full[r] {
			t.Fatalf("row %d mismatch", r)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Categories: 10, Hidden: 8, Reduced: 2, Precision: quant.INT4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Categories: 0, Hidden: 8, Reduced: 2, Precision: quant.INT4},
		{Categories: 10, Hidden: 8, Reduced: 9, Precision: quant.INT4},
		{Categories: 10, Hidden: 8, Reduced: 2, Precision: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
}

func TestParamAndCostScale(t *testing.T) {
	c := Config{Categories: 100, Hidden: 512, Reduced: 128, Precision: quant.INT4}
	if got := c.ParamScale(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("ParamScale = %v", got)
	}
	// The paper's operating point: 0.25 scale at INT4 → ~3.1%.
	if got := c.CostScale(); math.Abs(got-0.03125) > 1e-9 {
		t.Fatalf("CostScale = %v", got)
	}
}

func TestProjectedScreenerApproximates(t *testing.T) {
	cls, samples := testModel(t, 100, 64, 4)
	scr, err := ProjectedScreener(cls, testConfig(100, 64))
	if err != nil {
		t.Fatal(err)
	}
	// The analytic screener must be positively correlated with the
	// exact logits.
	for _, h := range samples {
		z := cls.Logits(h)
		zt := scr.ScreenFloat(h)
		if corr(z, zt) < 0.5 {
			t.Fatalf("projected screener correlation %v too low", corr(z, zt))
		}
	}
}

func TestTrainScreenerConverges(t *testing.T) {
	cls, samples := testModel(t, 100, 64, 48)
	scr, stats, err := TrainScreener(cls, samples, testConfig(100, 64), TrainOptions{Epochs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats.EpochLoss[0], stats.EpochLoss[len(stats.EpochLoss)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if scr.QW == nil {
		t.Fatal("screener not frozen after training")
	}
}

func TestTrainedBeatsProjected(t *testing.T) {
	cls, samples := testModel(t, 120, 64, 64)
	cfg := testConfig(120, 64)
	trained, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	projected, err := ProjectedScreener(cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trainedMSE, projectedMSE float64
	for _, h := range samples {
		z := cls.Logits(h)
		trainedMSE += tensor.MSE(trained.ScreenFloat(h), z)
		projectedMSE += tensor.MSE(projected.ScreenFloat(h), z)
	}
	if trainedMSE >= projectedMSE {
		t.Fatalf("trained MSE %v not better than projected %v", trainedMSE, projectedMSE)
	}
}

func TestTrainValidation(t *testing.T) {
	cls, samples := testModel(t, 20, 16, 4)
	if _, _, err := TrainScreener(cls, samples, testConfig(40, 16), TrainOptions{}); err == nil {
		t.Fatal("mismatched config should error")
	}
	if _, _, err := TrainScreener(cls, nil, testConfig(20, 16), TrainOptions{}); err == nil {
		t.Fatal("no samples should error")
	}
	bad := [][]float32{make([]float32, 7)}
	if _, _, err := TrainScreener(cls, bad, testConfig(20, 16), TrainOptions{}); err == nil {
		t.Fatal("bad sample dimension should error")
	}
}

func TestScreenPanicsBeforeFreeze(t *testing.T) {
	scr, err := newScreener(testConfig(10, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic before Freeze")
		}
	}()
	scr.Screen(make([]float32, 16))
}

func TestSelectCandidates(t *testing.T) {
	z := []float32{0.5, 3, -1, 3, 2}
	top := SelectCandidates(z, TopM(2))
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopM = %v", top)
	}
	th := SelectCandidates(z, Threshold(2))
	if len(th) != 3 {
		t.Fatalf("Threshold = %v", th)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	cls, samples := testModel(t, 200, 64, 40)
	scr, _, err := TrainScreener(cls, samples[:24], testConfig(200, 64), TrainOptions{Epochs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	valid := samples[24:]
	const target = 10
	th := CalibrateThreshold(scr, valid, target)
	var total int
	for _, h := range valid {
		total += len(SelectCandidates(scr.Screen(h), Threshold(th)))
	}
	avg := float64(total) / float64(len(valid))
	if avg < target/2 || avg > target*2 {
		t.Fatalf("calibrated threshold yields %v candidates on average, want ≈ %d", avg, target)
	}
}

func TestClassifyApproxMergesExactValues(t *testing.T) {
	cls, samples := testModel(t, 150, 64, 30)
	scr, _, err := TrainScreener(cls, samples, testConfig(150, 64), TrainOptions{Epochs: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := samples[0]
	res := ClassifyApprox(cls, scr, h, TopM(12))
	if len(res.Candidates) != 12 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	full := cls.Logits(h)
	for j, c := range res.Candidates {
		if res.Mixed[c] != full[c] || res.Exact[j] != full[c] {
			t.Fatalf("candidate %d not exact", c)
		}
	}
}

func TestClassifyApproxAllCandidatesEqualsFull(t *testing.T) {
	cls, samples := testModel(t, 80, 32, 20)
	scr, _, err := TrainScreener(cls, samples, testConfig(80, 32), TrainOptions{Epochs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h := samples[1]
	res := ClassifyApprox(cls, scr, h, TopM(80))
	full := cls.Logits(h)
	for i := range full {
		if res.Mixed[i] != full[i] {
			t.Fatalf("m=l should reproduce full logits exactly at %d", i)
		}
	}
	if res.Predict() != cls.Predict(h) {
		t.Fatal("prediction mismatch at m=l")
	}
}

// TestScreeningRecall verifies the core hypothesis: with a modest
// candidate budget, screening recovers the true top-1 almost always.
func TestScreeningRecall(t *testing.T) {
	cls, samples := testModel(t, 300, 64, 260)
	cfg := Config{Categories: 300, Hidden: 64, Reduced: 32, Precision: quant.INT4, Seed: 7}
	scr, _, err := TrainScreener(cls, samples[:200], cfg, TrainOptions{Epochs: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	test := samples[200:]
	for _, h := range test {
		res := ClassifyApprox(cls, scr, h, TopM(30)) // 10% budget
		if res.Predict() == cls.Predict(h) {
			hits++
		}
	}
	recall := float64(hits) / float64(len(test))
	if recall < 0.8 {
		t.Fatalf("top-1 recall %v with 10%% candidate budget", recall)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Mixed: []float32{0, 5, 2}}
	if r.Predict() != 1 {
		t.Fatal("Predict")
	}
	top := r.TopPredictions(2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopPredictions = %v", top)
	}
	p := r.Probabilities()
	if tensor.ArgMax(p) != 1 {
		t.Fatal("Probabilities argmax")
	}
}

func TestClassifyBatch(t *testing.T) {
	cls, samples := testModel(t, 60, 32, 10)
	scr, _, err := TrainScreener(cls, samples, testConfig(60, 32), TrainOptions{Epochs: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := ClassifyBatch(cls, scr, samples[:4], TopM(5))
	if len(out) != 4 {
		t.Fatalf("batch results = %d", len(out))
	}
	for _, r := range out {
		if len(r.Candidates) != 5 {
			t.Fatal("batch candidate count")
		}
	}
}

func TestCostAccounting(t *testing.T) {
	full := FullClassificationCost(1000, 512)
	if full.FP32MACs != 512000 {
		t.Fatalf("full MACs = %v", full.FP32MACs)
	}
	approx := ApproxClassificationCost(1000, 512, 128, 20, quant.INT4)
	if approx.Bytes >= full.Bytes {
		t.Fatalf("approx bytes %v not below full %v", approx.Bytes, full.Bytes)
	}
	// INT4 screening weights are 1/32 the size of FP32 full weights
	// per element ratio k/d=1/4 -> overall ~1/32; check < 1/10.
	if approx.Bytes > full.Bytes/5 {
		t.Fatalf("approx traffic reduction too weak: %v vs %v", approx.Bytes, full.Bytes)
	}
	if full.Intensity() > 1 {
		t.Fatalf("full classification should be memory-bound, intensity %v", full.Intensity())
	}
	scaled := full.ScaleBy(4)
	if scaled.FP32MACs != full.FP32MACs*4 {
		t.Fatal("ScaleBy")
	}
	var acc OpCount
	acc.Add(full)
	acc.Add(approx)
	if acc.FP32MACs != full.FP32MACs+approx.FP32MACs {
		t.Fatal("Add")
	}
}

func TestScreenerWeightBytes(t *testing.T) {
	cls, samples := testModel(t, 64, 32, 8)
	cfg := testConfig(64, 32)
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if scr.WeightBytes() >= cls.WeightBytes() {
		t.Fatal("screener should be much smaller than classifier")
	}
}

func corr(a, b []float32) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// TestTrainWorkerCountInvariant: the parallel target precomputation
// must be bit-identical for any worker count.
func TestTrainWorkerCountInvariant(t *testing.T) {
	cls, samples := testModel(t, 90, 48, 32)
	cfg := testConfig(90, 48)
	train := func(workers int) *Screener {
		scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 3, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return scr
	}
	a, b := train(1), train(7)
	for i := range a.Wt.Data {
		if a.Wt.Data[i] != b.Wt.Data[i] {
			t.Fatalf("weights diverge with worker count at %d", i)
		}
	}
}

// TestQuantAwareTrainingHelpsAtINT2: straight-through-estimator
// distillation must reduce the deployed (quantized) screening error
// at the aggressive INT2 precision compared with post-training
// quantization.
func TestQuantAwareTrainingHelpsAtINT2(t *testing.T) {
	cls, samples := testModel(t, 200, 64, 160)
	cfg := Config{Categories: 200, Hidden: 64, Reduced: 32, Precision: quant.INT2, Seed: 7}
	mse := func(qat bool) float64 {
		scr, _, err := TrainScreener(cls, samples[:128], cfg, TrainOptions{
			Epochs: 10, Seed: 3, QuantAware: qat,
		})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, h := range samples[128:] {
			total += tensor.MSE(scr.Screen(h), cls.Logits(h))
		}
		return total
	}
	post := mse(false)
	qat := mse(true)
	if qat >= post {
		t.Fatalf("QAT MSE %v not below post-training %v at INT2", qat, post)
	}
}

// TestScreenBatchMatchesScreen: the weight-stationary batch kernel
// must be bit-identical to per-vector screening.
func TestScreenBatchMatchesScreen(t *testing.T) {
	cls, samples := testModel(t, 150, 64, 12)
	scr, _, err := TrainScreener(cls, samples, testConfig(150, 64), TrainOptions{Epochs: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	batch := samples[:6]
	got := scr.ScreenBatch(batch)
	for b, h := range batch {
		want := scr.Screen(h)
		for i := range want {
			if got[b][i] != want[i] {
				t.Fatalf("batch %d row %d: %v vs %v", b, i, got[b][i], want[i])
			}
		}
	}
}

func TestSigmoidProbabilities(t *testing.T) {
	r := &Result{Mixed: []float32{0, 100, -100}}
	p := r.SigmoidProbabilities()
	if p[0] < 0.49 || p[0] > 0.51 || p[1] < 0.99 || p[2] > 0.01 {
		t.Fatalf("sigmoid probabilities = %v", p)
	}
}
