package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/quant"
	"enmc/internal/telemetry"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// Training instruments on the default telemetry registry.
var (
	mTrainEpochs  = telemetry.Default().Counter("core.train.epochs")
	mTrainEpochNs = telemetry.Default().Histogram("core.train.epoch_ns", telemetry.LatencyBuckets())
	mTrainLoss    = telemetry.Default().Gauge("core.train.last_epoch_loss")
)

// TrainOptions controls Algorithm 1, the SGD distillation of the
// screener against the frozen full classifier.
type TrainOptions struct {
	// Epochs is the number of passes over the sample set. The paper
	// reports convergence "in several training epochs"; defaults to 5.
	Epochs int
	// BatchSize is the SGD minibatch size s in Eq. 4. Defaults to 16.
	BatchSize int
	// LearningRate is the normalized-LMS step size µ ∈ (0, 1]. The
	// update is scaled by 1/(mean ||P·h||² + ε), which keeps SGD
	// stable regardless of feature magnitude. Defaults to 0.5.
	LearningRate float32
	// Seed shuffles the sample order.
	Seed uint64
	// Workers parallelizes the target precomputation (the exact
	// logits z = W·h per sample, the dominant cost at large l·d).
	// Only the embarrassingly parallel per-sample work is split, so
	// results are bit-identical for any worker count. Defaults to
	// GOMAXPROCS.
	Workers int
	// InitProjected starts from the analytic least-squares seed
	// W̃ = (k/d)·W·Pᵀ instead of zeros (see ProjectedScreener).
	InitProjected bool
	// InitFrom warm-starts from an existing screener's master
	// weights (copied, the donor is not mutated) — the resume hook
	// checkpointed training uses to continue a run across processes.
	// The donor's Config must equal cfg exactly (same projection
	// seed, so P is identical). Takes precedence over InitProjected.
	InitFrom *Screener
	// Tracer receives one span per training epoch (and one for the
	// target precomputation); nil falls back to the global tracer.
	Tracer *telemetry.Tracer
	// QuantAware enables straight-through-estimator fine-tuning: the
	// first two thirds of the epochs train the float master as usual,
	// then the forward pass switches to the quantized weights
	// (re-quantized per minibatch) while gradients keep updating the
	// float master — the distillation ends up minimizing the error of
	// the datapath that will actually run. Matters at aggressive
	// precisions (INT2); at INT4 post-training quantization is already
	// near-lossless (Fig. 12b).
	QuantAware bool
	// Logf, when non-nil, receives one line per epoch.
	Logf func(format string, args ...interface{})
}

func (o *TrainOptions) defaults() {
	if o.Epochs <= 0 {
		o.Epochs = 5
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
}

// TrainStats reports the distillation trajectory.
type TrainStats struct {
	// EpochLoss is the mean of ||z − ẑ||²/l after each epoch,
	// measured on the float (unquantized) screener.
	EpochLoss []float64
}

// TrainScreener runs Algorithm 1: initialize P, then minimize
// L = mean ||(W·h + b) − (W̃·P·h + b̃)||² over the samples with
// minibatch SGD, holding W, b and P fixed. The returned screener is
// frozen (quantized) and ready for inference.
func TrainScreener(cls *Classifier, samples [][]float32, cfg Config, opt TrainOptions) (*Screener, *TrainStats, error) {
	opt.defaults()
	if cls.Categories() != cfg.Categories || cls.Hidden() != cfg.Hidden {
		return nil, nil, fmt.Errorf("core: classifier %dx%d does not match config l=%d d=%d",
			cls.Categories(), cls.Hidden(), cfg.Categories, cfg.Hidden)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: no training samples")
	}
	for i, h := range samples {
		if len(h) != cfg.Hidden {
			return nil, nil, fmt.Errorf("core: sample %d has dimension %d, want %d", i, len(h), cfg.Hidden)
		}
	}

	var scr *Screener
	var err error
	switch {
	case opt.InitFrom != nil:
		if opt.InitFrom.Cfg != cfg {
			return nil, nil, fmt.Errorf("core: InitFrom config %+v does not match %+v", opt.InitFrom.Cfg, cfg)
		}
		scr, err = newScreener(cfg)
		if err == nil {
			copy(scr.Wt.Data, opt.InitFrom.Wt.Data)
			copy(scr.Bt, opt.InitFrom.Bt)
		}
	case opt.InitProjected:
		scr, err = ProjectedScreener(cls, cfg)
	default:
		scr, err = newScreener(cfg)
	}
	if err != nil {
		return nil, nil, err
	}

	l, k := cfg.Categories, cfg.Reduced
	rng := xrand.New(opt.Seed)
	stats := &TrainStats{}
	tr := opt.Tracer
	if tr == nil {
		tr = telemetry.Global()
	}
	precomputeStart := tr.Now()

	// Precompute projections and exact targets once: both are
	// constant across epochs because W, b and P are frozen. The
	// per-sample work is independent, so it fans out across workers
	// with bit-identical results.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	proj := make([][]float32, len(samples))
	targets := make([][]float32, len(samples))
	var wg sync.WaitGroup
	var next int64 = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(samples) {
					return
				}
				proj[i] = scr.Project(samples[i])
				targets[i] = cls.Logits(samples[i])
			}
		}()
	}
	wg.Wait()
	tr.AddSince("train.precompute-targets", telemetry.TrackPipeline, precomputeStart)

	gradW := tensor.NewMatrix(l, k)
	gradB := make([]float32, l)
	zhat := make([]float32, l)
	resid := make([]float32, l)

	for epoch := 0; epoch < opt.Epochs; epoch++ {
		epochStart := time.Now()
		epochTick := tr.Now()
		// QAT fine-tuning kicks in for the final third of training.
		qatActive := opt.QuantAware && epoch >= opt.Epochs*2/3
		order := rng.Perm(len(samples))
		var epochSSE float64
		for start := 0; start < len(order); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]

			for i := range gradW.Data {
				gradW.Data[i] = 0
			}
			for i := range gradB {
				gradB[i] = 0
			}
			var qw *quant.Matrix
			if qatActive {
				if cfg.PerTensor {
					qw = quant.QuantizeMatrixPerTensor(scr.Wt, cfg.Precision)
				} else {
					qw = quant.QuantizeMatrix(scr.Wt, cfg.Precision)
				}
			}
			var phNorm float64
			for _, si := range batch {
				ph := proj[si]
				if qw != nil {
					// STE forward: quantized weights and feature.
					qw.MatVec(zhat, quant.QuantizeVector(ph, cfg.Precision))
				} else {
					scr.Wt.MatVec(zhat, ph)
				}
				tensor.Add(zhat, zhat, scr.Bt)
				tensor.Sub(resid, targets[si], zhat) // r = z − ẑ
				for c := 0; c < l; c++ {
					r := resid[c]
					epochSSE += float64(r) * float64(r)
					if r != 0 {
						tensor.Axpy(gradW.Row(c), r, ph)
						gradB[c] += r
					}
				}
				n := tensor.Norm2(ph)
				phNorm += n * n
			}
			// Normalized-LMS step: divide by mean squared projected
			// feature norm so the step is scale-free and stable. The
			// QAT phase fine-tunes with a smaller step: the STE
			// gradient carries quantization noise, and large steps
			// would amplify it.
			bs := float32(len(batch))
			lr := opt.LearningRate
			if qatActive {
				lr *= 0.2
			}
			step := lr / (float32(phNorm)/bs + 1e-8)
			for i := range scr.Wt.Data {
				scr.Wt.Data[i] += step * gradW.Data[i] / bs
			}
			// Bias has unit "feature", so its NLMS normalizer is 1.
			biasStep := lr / bs
			for i := range scr.Bt {
				scr.Bt[i] += biasStep * gradB[i]
			}
		}
		loss := epochSSE / float64(len(samples)) / float64(l)
		stats.EpochLoss = append(stats.EpochLoss, loss)
		mTrainEpochs.Inc()
		mTrainEpochNs.Observe(float64(time.Since(epochStart)))
		mTrainLoss.Set(loss)
		if tr.Enabled() {
			tr.AddSince(fmt.Sprintf("train.epoch.%d", epoch+1), telemetry.TrackPipeline, epochTick)
		}
		if opt.Logf != nil {
			opt.Logf("epoch %d: screener MSE %.6g", epoch+1, loss)
		}
	}

	scr.Freeze()
	return scr, stats, nil
}

// ProjectedScreener builds the analytic (non-learned) screener
// W̃ = (k/d)·W·Pᵀ, b̃ = b — the closed-form least-squares solution
// under isotropic features, since E[P·Pᵀ] = (d/k)·I for the
// Achlioptas distribution. It serves as the learned-vs-projected
// ablation and as an optional SGD warm start.
func ProjectedScreener(cls *Classifier, cfg Config) (*Screener, error) {
	if cls.Categories() != cfg.Categories || cls.Hidden() != cfg.Hidden {
		return nil, fmt.Errorf("core: classifier %dx%d does not match config l=%d d=%d",
			cls.Categories(), cls.Hidden(), cfg.Categories, cfg.Hidden)
	}
	scr, err := newScreener(cfg)
	if err != nil {
		return nil, err
	}
	l, d, k := cfg.Categories, cfg.Hidden, cfg.Reduced
	scale := float32(k) / float32(d)
	// W̃[c][i] = (k/d) Σ_j W[c][j]·P[i][j]; exploit P's ternary rows.
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			switch scr.P.At(i, j) {
			case 1:
				for c := 0; c < l; c++ {
					scr.Wt.Data[c*k+i] += cls.W.Data[c*d+j]
				}
			case -1:
				for c := 0; c < l; c++ {
					scr.Wt.Data[c*k+i] -= cls.W.Data[c*d+j]
				}
			}
		}
	}
	tensor.Scale(scr.Wt.Data, scale*scr.P.Scale)
	copy(scr.Bt, cls.B)
	scr.Freeze()
	return scr, nil
}
