package core

import "enmc/internal/quant"

// OpCount tallies the work of one inference: multiply-accumulate
// operations (by precision) and the bytes of weight data that must be
// fetched. Weight traffic dominates at extreme category counts, which
// is the premise of the whole paper (Fig. 5).
type OpCount struct {
	FP32MACs float64 // full-precision multiply-accumulates
	IntMACs  float64 // fixed-point multiply-accumulates
	AddOps   float64 // plain additions (projection, bias, merge)
	SFUOps   float64 // special-function evaluations (exp/sigmoid)
	Bytes    float64 // weight + parameter bytes streamed from memory
}

// Add accumulates other into c.
func (c *OpCount) Add(other OpCount) {
	c.FP32MACs += other.FP32MACs
	c.IntMACs += other.IntMACs
	c.AddOps += other.AddOps
	c.SFUOps += other.SFUOps
	c.Bytes += other.Bytes
}

// ScaleBy multiplies all tallies by n (e.g. batch size).
func (c OpCount) ScaleBy(n float64) OpCount {
	return OpCount{
		FP32MACs: c.FP32MACs * n,
		IntMACs:  c.IntMACs * n,
		AddOps:   c.AddOps * n,
		SFUOps:   c.SFUOps * n,
		Bytes:    c.Bytes * n,
	}
}

// TotalOps returns all arithmetic operations (each MAC counted as 2
// FLOPs-equivalent, matching roofline convention).
func (c OpCount) TotalOps() float64 {
	return 2*(c.FP32MACs+c.IntMACs) + c.AddOps + c.SFUOps
}

// Intensity returns operations per byte, the roofline x-axis.
func (c OpCount) Intensity() float64 {
	if c.Bytes == 0 {
		return 0
	}
	return c.TotalOps() / c.Bytes
}

// FullClassificationCost is the exact layer: l·d FP32 MACs, softmax
// over l outputs, and the full W + b stream.
func FullClassificationCost(l, d int) OpCount {
	return OpCount{
		FP32MACs: float64(l) * float64(d),
		AddOps:   float64(l), // bias
		SFUOps:   float64(l), // softmax exponentials
		Bytes:    float64(l)*float64(d)*4 + float64(l)*4,
	}
}

// ScreeningCost is the approximate phase: the ternary projection
// (k·d/3 expected non-zero adds), l·k fixed-point MACs, and the
// quantized W̃ stream plus scales/bias. The projection matrix itself
// is tiny (2-bit) and cached on-chip, so it contributes parameters
// once, not per inference; we charge its stream anyway to stay
// conservative.
func ScreeningCost(l, d, k int, bits quant.Bits) OpCount {
	return OpCount{
		IntMACs: float64(l) * float64(k),
		AddOps:  float64(k) * float64(d) / 3,
		Bytes: float64(l)*float64(k)*float64(bits)/8 + // quantized W̃
			float64(l)*8 + // per-row scale + bias
			float64(k)*float64(d)/4, // 2-bit P
	}
}

// CandidateCost is the exact recomputation of m candidates: m·d FP32
// MACs and m weight rows streamed.
func CandidateCost(m, d int) OpCount {
	return OpCount{
		FP32MACs: float64(m) * float64(d),
		AddOps:   float64(m),
		SFUOps:   float64(m),
		Bytes:    float64(m)*float64(d)*4 + float64(m)*4,
	}
}

// ApproxClassificationCost is screening + candidates-only
// classification, the end-to-end approximate pipeline.
func ApproxClassificationCost(l, d, k, m int, bits quant.Bits) OpCount {
	c := ScreeningCost(l, d, k, bits)
	c.Add(CandidateCost(m, d))
	return c
}
