package core

import (
	"context"
	"testing"
	"time"
)

func trainedTestScreener(t testing.TB, cls *Classifier, samples [][]float32, cfg Config) *Screener {
	t.Helper()
	scr, _, err := TrainScreener(cls, samples, cfg, TrainOptions{Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return scr
}

func TestClassifyApproxCtxCanceled(t *testing.T) {
	cls, samples := testModel(t, 64, 32, 16)
	scr := trainedTestScreener(t, cls, samples, testConfig(64, 32))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClassifyApproxCtx(ctx, cls, scr, samples[0], TopM(4)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, err := ClassifyApproxCtx(context.Background(), cls, scr, samples[0], TopM(4))
	if err != nil || res == nil {
		t.Fatalf("live context: res=%v err=%v", res, err)
	}
}

func TestClassifyBatchCtxMatchesBatch(t *testing.T) {
	cls, samples := testModel(t, 64, 32, 24)
	scr := trainedTestScreener(t, cls, samples, testConfig(64, 32))
	want := ClassifyBatch(cls, scr, samples, TopM(6))
	got, err := ClassifyBatchCtx(context.Background(), cls, scr, samples, TopM(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Predict() != want[i].Predict() {
			t.Fatalf("item %d: predict %d != %d", i, got[i].Predict(), want[i].Predict())
		}
	}
}

// TestClassifyBatchCtxEarlyReturn proves cancellation aborts a batch
// between items: a pre-canceled context returns immediately with no
// results, and a cancel racing a large in-flight batch surfaces
// context.Canceled instead of running to completion.
func TestClassifyBatchCtxEarlyReturn(t *testing.T) {
	cls, samples := testModel(t, 256, 64, 16)
	scr := trainedTestScreener(t, cls, samples, testConfig(256, 64))

	// Large batch of shared vectors: big enough that full completion
	// takes visible time, cheap to construct.
	batch := make([][]float32, 20000)
	for i := range batch {
		batch[i] = samples[i%len(samples)]
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := ClassifyBatchCtx(ctx, cls, scr, batch, TopM(8), nil)
	if err != context.Canceled {
		t.Fatalf("pre-canceled: err = %v", err)
	}
	if res != nil {
		t.Fatalf("pre-canceled: got %d results", len(res))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-canceled batch still took %s", elapsed)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	if _, err := ClassifyBatchCtx(ctx2, cls, scr, batch, TopM(8), nil); err != context.Canceled {
		// A fast machine may legitimately finish first; only a wrong
		// error value is a failure.
		if err != nil {
			t.Fatalf("mid-flight cancel: err = %v", err)
		}
	}
}
