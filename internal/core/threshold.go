package core

import "enmc/internal/tensor"

// ThresholdController adapts the Screener's candidate threshold
// online so the average candidate count tracks a target — the
// host-side control loop the paper's threshold filtering implies: the
// threshold register is preloaded per task, and production systems
// re-tune it as the input distribution drifts.
//
// The controller is a hybrid of two estimators:
//
//   - an EMA of the target-th order statistic of each observed
//     screening vector, which snaps the threshold into the right
//     neighbourhood immediately (and from any cold start), and
//   - an integral correction on the admitted-count error, which
//     removes the bias the quantile EMA leaves when the logit bulk
//     shifts between inferences (per-inference quantiles alone admit
//     far more than m on average for heavy inter-inference variance).
type ThresholdController struct {
	// Target is the desired mean candidates per inference.
	Target int
	// Alpha is the EMA weight of a new observation (default 0.1).
	Alpha float32
	// Gain is the integral gain on the count error (default 0.05).
	Gain float32

	qEMA      float32
	spreadEMA float32
	corr      float32
	started   bool
}

// NewThresholdController starts from an initial calibration; the
// first observation replaces it outright, so a cold start (zero
// value) is fine too.
func NewThresholdController(initial float32, target int) *ThresholdController {
	return &ThresholdController{Target: target, qEMA: initial, started: initial != 0}
}

// Threshold returns the current threshold value (write it into
// RegThreshold or use Selection()).
func (c *ThresholdController) Threshold() float32 { return c.qEMA + c.corr }

// Observe feeds one inference's approximate logits into the
// controller and returns the candidate count the *current* threshold
// admitted (before the update), so callers can drive selection and
// adaptation in one pass.
func (c *ThresholdController) Observe(ztilde []float32) int {
	th := c.Threshold()
	admitted := 0
	for _, v := range ztilde {
		if v >= th {
			admitted++
		}
	}
	target := c.Target
	if target < 1 {
		target = 1
	}
	kq := target
	if kq > len(ztilde) {
		kq = len(ztilde)
	}
	top := tensor.TopK(ztilde, kq)
	q := ztilde[top[len(top)-1]]
	spread := ztilde[top[0]] - q
	if spread < 0 {
		spread = 0
	}

	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.1
	}
	if !c.started {
		c.qEMA = q
		c.spreadEMA = spread
		c.started = true
	} else {
		c.qEMA = (1-alpha)*c.qEMA + alpha*q
		c.spreadEMA = (1-alpha)*c.spreadEMA + alpha*spread
	}

	// Integral correction: too many admitted → raise, too few →
	// lower, with the relative error clamped so one outlier inference
	// cannot slam the threshold.
	gain := c.Gain
	if gain == 0 {
		gain = 0.05
	}
	err := float32(admitted-target) / float32(target)
	if err > 4 {
		err = 4
	}
	if err < -1 {
		err = -1
	}
	c.corr += gain * err * (c.spreadEMA + 1e-6)
	return admitted
}

// Selection returns the controller's current threshold selection.
func (c *ThresholdController) Selection() Selection { return Threshold(c.Threshold()) }
