package core

import (
	"fmt"
	"sort"
	"sync"

	"enmc/internal/tensor"
)

// SelectionMethod distinguishes the two candidate-estimation
// strategies the paper supports (Section 4.2): top-m search and
// threshold filtering (the hardware comparator array).
type SelectionMethod int

// Candidate selection strategies.
const (
	SelectTopM SelectionMethod = iota
	SelectThreshold
)

func (m SelectionMethod) String() string {
	switch m {
	case SelectTopM:
		return "top-m"
	case SelectThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("SelectionMethod(%d)", int(m))
	}
}

// Selection configures candidate selection over approximate logits.
type Selection struct {
	Method    SelectionMethod
	M         int     // for SelectTopM: number of candidates
	Threshold float32 // for SelectThreshold: keep z̃ᵢ ≥ Threshold
}

// TopM returns a top-m selection.
func TopM(m int) Selection { return Selection{Method: SelectTopM, M: m} }

// Threshold returns a threshold selection.
func Threshold(t float32) Selection {
	return Selection{Method: SelectThreshold, Threshold: t}
}

// SelectCandidates picks the candidate indices from approximate
// logits according to the selection policy.
func SelectCandidates(ztilde []float32, sel Selection) []int {
	switch sel.Method {
	case SelectTopM:
		return tensor.TopK(ztilde, sel.M)
	case SelectThreshold:
		return tensor.AboveThreshold(ztilde, sel.Threshold)
	default:
		panic(fmt.Sprintf("core: unknown selection method %d", sel.Method))
	}
}

// SelectCandidatesInto is SelectCandidates with scratch-backed
// storage: the returned slice aliases sc and is overwritten by the
// next selection through it. For large category counts the top-m
// search shards across goroutines (each shard keeps its own partial
// heap over a disjoint row range, and the shard winners are merged),
// returning exactly the serial result — the global top-m is a subset
// of the shard winners and the (value, index) comparator is a total
// order.
func SelectCandidatesInto(ztilde []float32, sel Selection, sc *Scratch) []int {
	switch sel.Method {
	case SelectTopM:
		return sc.selectTopM(ztilde, sel.M)
	case SelectThreshold:
		sc.cands = tensor.AboveThresholdInto(sc.cands, ztilde, sel.Threshold)
		return sc.cands
	default:
		panic(fmt.Sprintf("core: unknown selection method %d", sel.Method))
	}
}

func (sc *Scratch) selectTopM(ztilde []float32, m int) []int {
	shards := sc.shardCount(len(ztilde))
	if shards <= 1 {
		return tensor.TopKInto(ztilde, m, &sc.sel)
	}
	bufs, lists := sc.shardBufs(shards)
	chunk := (len(ztilde) + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(ztilde) {
			hi = len(ztilde)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			lists[s] = tensor.TopKRange(ztilde, lo, hi, m, &bufs[s])
		}(s, lo, hi)
	}
	wg.Wait()
	return tensor.TopKMerge(ztilde, lists, m, &sc.sel)
}

// CalibrateThreshold tunes a threshold on validation features so the
// expected candidate count is targetM per inference — the paper's
// "threshold value can be tuned on validation sets". It pools all
// validation approximate logits and returns the value whose global
// exceedance rate matches targetM/l.
func CalibrateThreshold(scr *Screener, validation [][]float32, targetM int) float32 {
	if len(validation) == 0 {
		panic("core: CalibrateThreshold with no validation samples")
	}
	if targetM <= 0 {
		targetM = 1
	}
	pooled := make([]float32, 0, len(validation)*scr.Cfg.Categories)
	for _, h := range validation {
		pooled = append(pooled, scr.Screen(h)...)
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] > pooled[j] })
	rank := targetM * len(validation)
	if rank >= len(pooled) {
		rank = len(pooled) - 1
	}
	return pooled[rank]
}
