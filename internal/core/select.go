package core

import (
	"fmt"
	"sort"

	"enmc/internal/tensor"
)

// SelectionMethod distinguishes the two candidate-estimation
// strategies the paper supports (Section 4.2): top-m search and
// threshold filtering (the hardware comparator array).
type SelectionMethod int

// Candidate selection strategies.
const (
	SelectTopM SelectionMethod = iota
	SelectThreshold
)

func (m SelectionMethod) String() string {
	switch m {
	case SelectTopM:
		return "top-m"
	case SelectThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("SelectionMethod(%d)", int(m))
	}
}

// Selection configures candidate selection over approximate logits.
type Selection struct {
	Method    SelectionMethod
	M         int     // for SelectTopM: number of candidates
	Threshold float32 // for SelectThreshold: keep z̃ᵢ ≥ Threshold
}

// TopM returns a top-m selection.
func TopM(m int) Selection { return Selection{Method: SelectTopM, M: m} }

// Threshold returns a threshold selection.
func Threshold(t float32) Selection {
	return Selection{Method: SelectThreshold, Threshold: t}
}

// SelectCandidates picks the candidate indices from approximate
// logits according to the selection policy.
func SelectCandidates(ztilde []float32, sel Selection) []int {
	switch sel.Method {
	case SelectTopM:
		return tensor.TopK(ztilde, sel.M)
	case SelectThreshold:
		return tensor.AboveThreshold(ztilde, sel.Threshold)
	default:
		panic(fmt.Sprintf("core: unknown selection method %d", sel.Method))
	}
}

// CalibrateThreshold tunes a threshold on validation features so the
// expected candidate count is targetM per inference — the paper's
// "threshold value can be tuned on validation sets". It pools all
// validation approximate logits and returns the value whose global
// exceedance rate matches targetM/l.
func CalibrateThreshold(scr *Screener, validation [][]float32, targetM int) float32 {
	if len(validation) == 0 {
		panic("core: CalibrateThreshold with no validation samples")
	}
	if targetM <= 0 {
		targetM = 1
	}
	pooled := make([]float32, 0, len(validation)*scr.Cfg.Categories)
	for _, h := range validation {
		pooled = append(pooled, scr.Screen(h)...)
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] > pooled[j] })
	rank := targetM * len(validation)
	if rank >= len(pooled) {
		rank = len(pooled) - 1
	}
	return pooled[rank]
}
