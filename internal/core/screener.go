package core

import (
	"fmt"
	"sync"

	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/tensor"
)

// Config describes a screening module (paper Eq. 3): z̃ = W̃·(P·h) + b̃
// with P ∈ sqrt(3/k)·{−1,0,1}^{k×d} and W̃ ∈ R^{l×k}, executed at a
// reduced fixed-point precision.
type Config struct {
	Categories int        // l: number of classes
	Hidden     int        // d: hidden dimension
	Reduced    int        // k: projected dimension (k ≪ d)
	Precision  quant.Bits // screening precision; ENMC hardware uses INT4
	PerTensor  bool       // per-tensor instead of per-row quantization scales (ablation)
	Seed       uint64     // seed for the projection matrix P
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Categories <= 0 || c.Hidden <= 0 || c.Reduced <= 0 {
		return fmt.Errorf("core: non-positive dimensions l=%d d=%d k=%d", c.Categories, c.Hidden, c.Reduced)
	}
	if c.Reduced > c.Hidden {
		return fmt.Errorf("core: reduced dimension k=%d exceeds hidden d=%d", c.Reduced, c.Hidden)
	}
	switch c.Precision {
	case quant.INT2, quant.INT4, quant.INT8:
	default:
		return fmt.Errorf("core: unsupported screening precision %d", c.Precision)
	}
	return nil
}

// ParamScale reports the screener parameter-count ratio k/d — the
// x-axis of Fig. 12(a); the paper selects 0.25.
func (c Config) ParamScale() float64 {
	return float64(c.Reduced) / float64(c.Hidden)
}

// CostScale reports the screening compute/traffic overhead relative
// to full classification: (k/d)·(bits/32). At the paper's operating
// point (scale 0.25, INT4) this is 3.125%, matching the 3.1%
// screening overhead quoted in Section 7.1.
func (c Config) CostScale() float64 {
	return c.ParamScale() * float64(c.Precision) / 32
}

// Screener holds the trained screening module. Wt and Bt are the
// float32 master parameters (what SGD updates); QW is the quantized
// deployment copy the hardware streams.
type Screener struct {
	Cfg Config
	P   *projection.Sparse
	Wt  *tensor.Matrix // l×k float master weights
	Bt  []float32      // l float bias
	QW  *quant.Matrix  // quantized W̃ used at inference
}

// newScreener allocates an untrained screener with zero weights.
func newScreener(cfg Config) (*Screener, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Screener{
		Cfg: cfg,
		P:   projection.New(cfg.Reduced, cfg.Hidden, cfg.Seed),
		Wt:  tensor.NewMatrix(cfg.Categories, cfg.Reduced),
		Bt:  make([]float32, cfg.Categories),
	}, nil
}

// Freeze (re)quantizes the master weights into the deployment copy.
// Call after training or after mutating Wt directly.
func (s *Screener) Freeze() {
	s.QW = s.quantized()
}

// quantized builds the deployment copy from the master weights
// without installing it — the receiver is left untouched, so
// read-only paths (serialization of an unfrozen screener) can get
// exactly what Freeze would deploy with no side effect.
func (s *Screener) quantized() *quant.Matrix {
	if s.Cfg.PerTensor {
		return quant.QuantizeMatrixPerTensor(s.Wt, s.Cfg.Precision)
	}
	return quant.QuantizeMatrix(s.Wt, s.Cfg.Precision)
}

// Project computes the reduced feature P·h.
func (s *Screener) Project(h []float32) []float32 {
	return s.P.ApplyNew(h)
}

// Screen computes the approximate logits z̃ = W̃·(P·h) + b̃ on the
// quantized datapath, exactly as the Screener hardware does: the
// projected feature is quantized to the screening precision, the
// integer MAC array accumulates, and the bias is added in float.
func (s *Screener) Screen(h []float32) []float32 {
	sc := GetScratch()
	defer sc.Release()
	z := make([]float32, s.Cfg.Categories)
	s.ScreenInto(z, h, sc)
	return z
}

// ScreenInto is Screen with a caller-provided destination (length l)
// and scratch arena: the projection, quantization and GEMV all run in
// reused buffers, so the steady-state cost is zero allocations. For
// large category counts the GEMV is sharded row-wise across
// goroutines (up to sc.MaxShards); every shard writes a disjoint dst
// range with the same per-row integer math, so the output is
// bit-identical to the serial kernel.
func (s *Screener) ScreenInto(dst, h []float32, sc *Scratch) {
	if len(h) != s.Cfg.Hidden {
		panic(fmt.Sprintf("core: Screen hidden %d != %d", len(h), s.Cfg.Hidden))
	}
	if len(dst) != s.Cfg.Categories {
		panic(fmt.Sprintf("core: Screen dst %d != %d", len(dst), s.Cfg.Categories))
	}
	if s.QW == nil {
		panic("core: Screen called before Freeze")
	}
	sc.projected = growF32(sc.projected, s.Cfg.Reduced)
	s.P.Apply(sc.projected, h)
	quant.QuantizeVectorInto(&sc.q, sc.projected, s.Cfg.Precision)
	shards := sc.shardCount(s.Cfg.Categories)
	if shards <= 1 {
		s.QW.MatVec(dst, &sc.q)
	} else {
		var wg sync.WaitGroup
		chunk := (s.QW.Rows + shards - 1) / shards
		for lo := 0; lo < s.QW.Rows; lo += chunk {
			hi := lo + chunk
			if hi > s.QW.Rows {
				hi = s.QW.Rows
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				s.QW.MatVecRange(dst, &sc.q, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	tensor.Add(dst, dst, s.Bt)
}

// ScreenFloat computes z̃ on the float32 master weights (no
// quantization), used by the Fig. 12(b) quantization ablation.
func (s *Screener) ScreenFloat(h []float32) []float32 {
	ph := s.Project(h)
	z := make([]float32, s.Cfg.Categories)
	s.Wt.MatVec(z, ph)
	tensor.Add(z, z, s.Bt)
	return z
}

// WeightBytes reports the deployed screener footprint: quantized W̃,
// per-row scales, float bias, and the 2-bit projection matrix. The
// size is computed from the configuration alone — a reporting getter
// must not quantize an unfrozen screener as a side effect, so QW is
// left untouched; the value matches what Freeze would deploy exactly.
func (s *Screener) WeightBytes() int64 {
	qBytes := (int64(s.Cfg.Categories)*int64(s.Cfg.Reduced)*int64(s.Cfg.Precision) + 7) / 8
	return qBytes + int64(s.Cfg.Categories)*4 + int64(len(s.Bt))*4 + s.P.Bytes()
}

// ScreenBatch computes approximate logits for a batch of hidden
// vectors with one weight-stationary sweep over W̃ — bit-identical to
// calling Screen per vector, but each quantized weight row is visited
// once for the whole batch, mirroring the hardware's batched
// streaming.
func (s *Screener) ScreenBatch(hs [][]float32) [][]float32 {
	if s.QW == nil {
		panic("core: ScreenBatch called before Freeze")
	}
	qs := make([]*quant.Vector, len(hs))
	for i, h := range hs {
		if len(h) != s.Cfg.Hidden {
			panic(fmt.Sprintf("core: ScreenBatch hidden %d != %d", len(h), s.Cfg.Hidden))
		}
		qs[i] = quant.QuantizeVector(s.Project(h), s.Cfg.Precision)
	}
	out := make([][]float32, len(hs))
	for i := range out {
		out[i] = make([]float32, s.Cfg.Categories)
	}
	s.QW.MatVecBatch(out, qs)
	for i := range out {
		tensor.Add(out[i], out[i], s.Bt)
	}
	return out
}
