// Package core implements the paper's primary contribution: the
// approximate-screening method for extreme classification
// (Section 4). A lightweight Screener — a sparse random projection P
// followed by a learned reduced-dimension, quantized weight matrix W̃
// — approximates the full classifier's logits; the most important
// outputs (candidates) are then recomputed exactly against the full
// weight matrix W, and the final pre-softmax vector mixes accurate
// candidate values with approximate values everywhere else.
package core

import (
	"fmt"

	"enmc/internal/activation"
	"enmc/internal/tensor"
)

// Classifier is the full (exact) classification layer: z = W·h + b
// with W ∈ R^{l×d}, followed by a normalization (paper Eq. 1–2).
type Classifier struct {
	W *tensor.Matrix // l×d weight matrix
	B []float32      // l bias
}

// NewClassifier validates shapes and wraps them.
func NewClassifier(w *tensor.Matrix, b []float32) (*Classifier, error) {
	if len(b) != w.Rows {
		return nil, fmt.Errorf("core: bias length %d != categories %d", len(b), w.Rows)
	}
	return &Classifier{W: w, B: b}, nil
}

// Categories returns l, the output dimension.
func (c *Classifier) Categories() int { return c.W.Rows }

// Hidden returns d, the hidden dimension.
func (c *Classifier) Hidden() int { return c.W.Cols }

// Logits computes the full pre-softmax output z = W·h + b.
func (c *Classifier) Logits(h []float32) []float32 {
	z := make([]float32, c.W.Rows)
	c.W.MatVec(z, h)
	tensor.Add(z, z, c.B)
	return z
}

// LogitsRows computes exact logits only for the given candidate rows
// — the candidates-only classification kernel (paper Fig. 6(c)).
func (c *Classifier) LogitsRows(rows []int, h []float32) []float32 {
	z := make([]float32, len(rows))
	c.LogitsRowsInto(z, rows, h)
	return z
}

// LogitsRowsInto is LogitsRows with a caller-provided destination of
// length len(rows) — the destination-reuse variant the allocation-
// free classify path runs on.
func (c *Classifier) LogitsRowsInto(dst []float32, rows []int, h []float32) {
	c.W.MatVecRows(dst, rows, h)
	for j, r := range rows {
		dst[j] += c.B[r]
	}
}

// Probabilities computes softmax(W·h + b).
func (c *Classifier) Probabilities(h []float32) []float32 {
	z := c.Logits(h)
	activation.Softmax(z, z)
	return z
}

// Predict returns the argmax class of the full classifier.
func (c *Classifier) Predict(h []float32) int {
	return tensor.ArgMax(c.Logits(h))
}

// WeightBytes reports the FP32 footprint of the classifier weights,
// the quantity Fig. 5(a) plots against category count.
func (c *Classifier) WeightBytes() int64 {
	return c.W.Bytes() + int64(len(c.B))*4
}
