package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// bigScreener builds a frozen screener large enough to clear the
// shardMinRows gate, with random weights (no training — these tests
// only care about numerics, not quality).
func bigScreener(t testing.TB, l, d, k int) *Screener {
	t.Helper()
	r := xrand.New(31)
	wt := tensor.NewMatrix(l, k)
	for i := range wt.Data {
		wt.Data[i] = r.Float32()*2 - 1
	}
	bt := make([]float32, l)
	for i := range bt {
		bt[i] = r.Float32()*2 - 1
	}
	s := &Screener{
		Cfg: Config{Categories: l, Hidden: d, Reduced: k, Precision: quant.INT4, Seed: 7},
		P:   projection.New(k, d, 7),
		Wt:  wt,
		Bt:  bt,
	}
	s.Freeze()
	return s
}

func randHidden(r *xrand.RNG, d int) []float32 {
	h := make([]float32, d)
	for i := range h {
		h[i] = r.Float32()*2 - 1
	}
	return h
}

// TestScreenIntoShardedBitIdentical forces the parallel GEMV path
// (GOMAXPROCS is raised for the test — this box may have one core)
// and checks it against the serial kernel bit-for-bit.
func TestScreenIntoShardedBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const l, d, k = 2 * shardMinRows, 64, 16
	scr := bigScreener(t, l, d, k)
	h := randHidden(xrand.New(33), d)

	serial := GetScratch()
	serial.MaxShards = 1
	want := make([]float32, l)
	scr.ScreenInto(want, h, serial)
	serial.Release()

	sharded := GetScratch()
	defer sharded.Release()
	if got := sharded.shardCount(l); got < 2 {
		t.Fatalf("shardCount(%d) = %d, want parallel", l, got)
	}
	got := make([]float32, l)
	scr.ScreenInto(got, h, sharded)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: sharded %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestSelectTopMShardedBitIdentical forces the sharded top-m search
// and checks the merged winners equal the serial selection exactly,
// on a vector dense with ties.
func TestSelectTopMShardedBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	r := xrand.New(35)
	n := 2*shardMinRows + 123
	z := make([]float32, n)
	for i := range z {
		z[i] = float32(r.Intn(1000)) // many ties
	}
	for _, m := range []int{1, 64, 4096} {
		want := tensor.TopK(z, m)
		sc := GetScratch()
		if sc.shardCount(n) < 2 {
			t.Fatalf("shardCount(%d) not parallel", n)
		}
		got := SelectCandidatesInto(z, TopM(m), sc)
		if len(got) != len(want) {
			t.Fatalf("m=%d: len %d != %d", m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d pos %d: sharded %d != serial %d", m, i, got[i], want[i])
			}
		}
		sc.Release()
	}
}

// TestWeightBytesNoFreezeSideEffect pins the fix for the reporting
// getter that used to quantize an unfrozen screener as a side effect:
// WeightBytes must leave QW nil and still report exactly the deployed
// footprint.
func TestWeightBytesNoFreezeSideEffect(t *testing.T) {
	for _, bits := range []quant.Bits{quant.INT2, quant.INT4, quant.INT8} {
		scr, err := newScreener(Config{Categories: 37, Hidden: 16, Reduced: 5, Precision: bits, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		before := scr.WeightBytes()
		if scr.QW != nil {
			t.Fatalf("%v: WeightBytes froze the screener", bits)
		}
		scr.Freeze()
		after := scr.QW.Bytes() + int64(len(scr.QW.Scales))*4 + int64(len(scr.Bt))*4 + scr.P.Bytes()
		if before != after {
			t.Fatalf("%v: WeightBytes %d != deployed %d", bits, before, after)
		}
	}
}

func approxModel(t testing.TB) (*Classifier, *Screener, []float32) {
	t.Helper()
	cls, samples := testModel(t, 512, 64, 1)
	scr, _, err := TrainScreener(cls, samples, testConfig(512, 64), TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return cls, scr, samples[0]
}

// TestClassifyApproxIntoMatchesClassifyApprox checks the arena-backed
// pipeline returns exactly what the allocating one does, under both
// selection policies, across repeated reuse of one scratch.
func TestClassifyApproxIntoMatchesClassifyApprox(t *testing.T) {
	cls, scr, h := approxModel(t)
	sc := GetScratch()
	defer sc.Release()
	for _, sel := range []Selection{TopM(16), Threshold(0.5), TopM(3)} {
		want := ClassifyApprox(cls, scr, h, sel)
		got := ClassifyApproxInto(cls, scr, h, sel, sc)
		if len(got.Mixed) != len(want.Mixed) || len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("%v: shape mismatch", sel)
		}
		for i := range want.Mixed {
			if got.Mixed[i] != want.Mixed[i] {
				t.Fatalf("%v: mixed[%d] %v != %v", sel, i, got.Mixed[i], want.Mixed[i])
			}
		}
		for i := range want.Candidates {
			if got.Candidates[i] != want.Candidates[i] || got.Exact[i] != want.Exact[i] {
				t.Fatalf("%v: candidate %d mismatch", sel, i)
			}
		}
	}
}

// TestClassifyApproxIntoZeroAlloc is the allocation contract of the
// hot path: with a warmed scratch pinned to the serial kernels
// (MaxShards=1 — the saturated-server configuration), steady-state
// classification must not allocate at all.
func TestClassifyApproxIntoZeroAlloc(t *testing.T) {
	cls, scr, h := approxModel(t)
	sc := GetScratch()
	defer sc.Release()
	sc.MaxShards = 1
	sel := TopM(16)
	ClassifyApproxInto(cls, scr, h, sel, sc) // warm the arena
	allocs := testing.AllocsPerRun(50, func() {
		ClassifyApproxInto(cls, scr, h, sel, sc)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ClassifyApproxInto allocates %v/op, want 0", allocs)
	}
}

// TestClassifyBatchVisitCtxMatchesBatch checks the zero-copy batch
// driver delivers every item, in order, with the same numbers as the
// materializing API.
func TestClassifyBatchVisitCtxMatchesBatch(t *testing.T) {
	cls, samples := testModel(t, 256, 32, 9)
	scr, _, err := TrainScreener(cls, samples, testConfig(256, 32), TrainOptions{Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sel := TopM(12)
	want := ClassifyBatch(cls, scr, samples, sel)

	type snap struct {
		pred  int
		cands []int
		top1  float32
	}
	got := make([]*snap, len(samples))
	err = ClassifyBatchVisitCtx(context.Background(), cls, scr, samples, sel, nil,
		func(i int, r *Result, sc *Scratch) {
			got[i] = &snap{
				pred:  r.Predict(),
				cands: append([]int(nil), r.Candidates...),
				top1:  r.Mixed[sc.TopK(r.Mixed, 1)[0]],
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		g := got[i]
		if g == nil {
			t.Fatalf("item %d not visited", i)
		}
		if g.pred != w.Predict() {
			t.Fatalf("item %d: pred %d != %d", i, g.pred, w.Predict())
		}
		if len(g.cands) != len(w.Candidates) {
			t.Fatalf("item %d: candidate count", i)
		}
		for j := range g.cands {
			if g.cands[j] != w.Candidates[j] {
				t.Fatalf("item %d: candidates differ", i)
			}
		}
		if g.top1 != w.Mixed[w.TopPredictions(1)[0]] {
			t.Fatalf("item %d: top-1 logit differs", i)
		}
	}
}

// TestClassifyBatchVisitCtxCancelled checks a pre-cancelled context
// stops the visit driver, reports the error, and bumps the
// cancelled-batch counter.
func TestClassifyBatchVisitCtxCancelled(t *testing.T) {
	cls, samples := testModel(t, 128, 32, 4)
	scr, _, err := TrainScreener(cls, samples, testConfig(128, 32), TrainOptions{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := mBatchCancelled.Value()
	visited := 0
	err = ClassifyBatchVisitCtx(ctx, cls, scr, samples, TopM(4), nil,
		func(int, *Result, *Scratch) { visited++ })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Fatalf("visited %d items under a dead context", visited)
	}
	if mBatchCancelled.Value() != before+1 {
		t.Fatal("cancelled batch not counted")
	}
}

// TestClassifyBatchCtxCancelledTelemetry pins the satellite fix: a
// cancelled ClassifyBatchCtx must record batch telemetry rather than
// vanish from the dashboards.
func TestClassifyBatchCtxCancelledTelemetry(t *testing.T) {
	cls, samples := testModel(t, 128, 32, 4)
	scr, _, err := TrainScreener(cls, samples, testConfig(128, 32), TrainOptions{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	beforeCancelled := mBatchCancelled.Value()
	beforeBatches := mBatchNs.Count()
	res, err := ClassifyBatchCtx(ctx, cls, scr, samples, TopM(4), nil)
	if err != context.Canceled || res != nil {
		t.Fatalf("ClassifyBatchCtx = %v, %v", res, err)
	}
	if mBatchCancelled.Value() != beforeCancelled+1 {
		t.Fatal("cancelled batch not counted")
	}
	if mBatchNs.Count() != beforeBatches+1 {
		t.Fatal("cancelled batch did not observe batch_ns")
	}
}

// TestScratchPoolRace hammers the scratch pool from every public
// entry point at once; run under -race (make check / make ci) this
// verifies the pool recycling and the sharded kernels are data-race
// free.
func TestScratchPoolRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cls, samples := testModel(t, 256, 32, 8)
	scr, _, err := TrainScreener(cls, samples, testConfig(256, 32), TrainOptions{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sel := TopM(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				switch g % 3 {
				case 0:
					ClassifyBatch(cls, scr, samples, sel)
				case 1:
					if err := ClassifyBatchVisitCtx(context.Background(), cls, scr, samples, sel, nil,
						func(i int, r *Result, sc *Scratch) { _ = r.Predict() }); err != nil {
						t.Error(err)
					}
				default:
					sc := GetScratch()
					for _, h := range samples {
						ClassifyApproxInto(cls, scr, h, sel, sc)
					}
					sc.Release()
				}
			}
		}(g)
	}
	wg.Wait()
}
