package core

import "testing"

// TestThresholdControllerConverges: starting from a badly calibrated
// threshold, the controller must settle near the target candidate
// count within one pass over the stream.
func TestThresholdControllerConverges(t *testing.T) {
	cls, samples := testModel(t, 300, 64, 300)
	scr, _, err := TrainScreener(cls, samples[:200], testConfig(300, 64), TrainOptions{Epochs: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const target = 15
	// Deliberately mis-calibrated start: everything passes.
	ctl := NewThresholdController(-1e9, target)

	stream := samples[200:]
	var tail float64
	var tailN int
	for round := 0; round < 8; round++ {
		for _, h := range stream {
			admitted := ctl.Observe(scr.Screen(h))
			if round >= 6 {
				tail += float64(admitted)
				tailN++
			}
		}
	}
	avg := tail / float64(tailN)
	if avg < target/2 || avg > target*2 {
		t.Fatalf("controller settled at %.1f candidates, target %d", avg, target)
	}
}

// TestThresholdControllerColdStart: a zero-value start snaps to the
// first observation's quantile instead of crawling.
func TestThresholdControllerColdStart(t *testing.T) {
	ctl := NewThresholdController(0, 2)
	z := []float32{10, 8, 6, 4, 2}
	ctl.Observe(z)
	if th := ctl.Threshold(); th < 7.5 || th > 8.5 {
		t.Fatalf("cold start threshold %v, want ≈ the 2nd largest (8)", th)
	}
	// Selection reflects the current threshold (the integral step may
	// have nudged it past the 2nd value already).
	if got := SelectCandidates(z, ctl.Selection()); len(got) < 1 || len(got) > 2 {
		t.Fatalf("selection admitted %d", len(got))
	}
}

// TestThresholdControllerTracksDrift: when the logit scale shifts,
// the threshold follows at the EMA rate.
func TestThresholdControllerTracksDrift(t *testing.T) {
	ctl := NewThresholdController(0, 1)
	ctl.Alpha = 0.5
	low := []float32{1, 0.5, 0}
	high := []float32{101, 100.5, 100}
	ctl.Observe(low) // snaps to 1
	for i := 0; i < 20; i++ {
		ctl.Observe(high)
	}
	if ctl.Threshold() < 90 {
		t.Fatalf("threshold %v did not follow the drift to ~101", ctl.Threshold())
	}
	// Target larger than the vector clamps safely.
	ctl2 := NewThresholdController(0, 99)
	ctl2.Observe([]float32{3, 1})
	if th := ctl2.Threshold(); th < 0.5 || th > 1.5 {
		t.Fatalf("clamped quantile = %v, want ≈ min value", th)
	}
}
