package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"enmc/internal/projection"
	"enmc/internal/quant"
	"enmc/internal/tensor"
)

// Binary serialization for trained artifacts, so a deployment flow
// can train once and ship the screener image to inference hosts: the
// quantized weights (one byte per element at every precision),
// per-row scales, the float bias, the float master weights (so
// distillation can resume), and the projection matrix reconstructed
// deterministically from its seed.
//
// All integers are little-endian. Each artifact starts with a magic
// and a version byte so mismatches fail loudly instead of decoding
// garbage.

const (
	screenerMagic   = "ENMCSCR1"
	classifierMagic = "ENMCCLS1"
)

// WriteTo serializes the screener. Serializing is read-only: an
// unfrozen screener (QW == nil) is quantized into a local copy for
// the write — the same bytes Freeze would deploy — and the receiver
// is left exactly as it was (same bug class as WeightBytes once
// freezing as a side effect of a getter).
func (s *Screener) WriteTo(w io.Writer) (int64, error) {
	qw := s.QW
	if qw == nil {
		qw = s.quantized()
	}
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if err := writeAll(cw,
		[]byte(screenerMagic),
		uint32(s.Cfg.Categories), uint32(s.Cfg.Hidden), uint32(s.Cfg.Reduced),
		uint32(s.Cfg.Precision), boolByte(s.Cfg.PerTensor), s.Cfg.Seed,
	); err != nil {
		return cw.n, err
	}
	// Quantized weights, one byte per element (valid for every
	// supported precision; the INT4 nibble-packing is a DRAM-image
	// concern, not a file-format one).
	q := make([]byte, len(qw.Q))
	for i, v := range qw.Q {
		q[i] = byte(v)
	}
	if err := writeAll(cw, uint32(len(q)), q); err != nil {
		return cw.n, err
	}
	if err := writeFloats(cw, qw.Scales); err != nil {
		return cw.n, err
	}
	if err := writeFloats(cw, s.Bt); err != nil {
		return cw.n, err
	}
	// Master float weights (optional but kept: retraining resumes).
	if err := writeFloats(cw, s.Wt.Data); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadScreener deserializes a screener written by WriteTo.
func ReadScreener(r io.Reader) (*Screener, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(screenerMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading screener magic: %w", err)
	}
	if string(magic) != screenerMagic {
		return nil, fmt.Errorf("core: bad screener magic %q", magic)
	}
	var l, d, k, prec uint32
	var perTensor byte
	var seed uint64
	if err := readAll(br, &l, &d, &k, &prec, &perTensor, &seed); err != nil {
		return nil, err
	}
	cfg := Config{
		Categories: int(l), Hidden: int(d), Reduced: int(k),
		Precision: quant.Bits(prec), PerTensor: perTensor != 0, Seed: seed,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var qLen uint32
	if err := readAll(br, &qLen); err != nil {
		return nil, err
	}
	if int(qLen) != int(l)*int(k) {
		return nil, fmt.Errorf("core: quantized weight length %d, want %d", qLen, int(l)*int(k))
	}
	qBytes := make([]byte, qLen)
	if _, err := io.ReadFull(br, qBytes); err != nil {
		return nil, err
	}
	q := make([]int8, qLen)
	for i, b := range qBytes {
		q[i] = int8(b)
	}
	scales, err := readFloats(br, int(l))
	if err != nil {
		return nil, err
	}
	bias, err := readFloats(br, int(l))
	if err != nil {
		return nil, err
	}
	master, err := readFloats(br, int(l)*int(k))
	if err != nil {
		return nil, err
	}

	scr := &Screener{
		Cfg: cfg,
		P:   projection.New(cfg.Reduced, cfg.Hidden, cfg.Seed),
		Wt:  &tensor.Matrix{Rows: cfg.Categories, Cols: cfg.Reduced, Data: master},
		Bt:  bias,
		QW: &quant.Matrix{
			Bits: cfg.Precision, Rows: cfg.Categories, Cols: cfg.Reduced,
			Scales: scales, Q: q,
		},
	}
	scr.QW.BuildAccel()
	return scr, nil
}

// WriteTo serializes the full classifier (large: l×d float32).
func (c *Classifier) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if err := writeAll(cw, []byte(classifierMagic), uint32(c.W.Rows), uint32(c.W.Cols)); err != nil {
		return cw.n, err
	}
	if err := writeFloats(cw, c.W.Data); err != nil {
		return cw.n, err
	}
	if err := writeFloats(cw, c.B); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadClassifier deserializes a classifier written by WriteTo.
func ReadClassifier(r io.Reader) (*Classifier, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(classifierMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading classifier magic: %w", err)
	}
	if string(magic) != classifierMagic {
		return nil, fmt.Errorf("core: bad classifier magic %q", magic)
	}
	var rows, cols uint32
	if err := readAll(br, &rows, &cols); err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 || uint64(rows)*uint64(cols) > 1<<33 {
		return nil, fmt.Errorf("core: implausible classifier shape %dx%d", rows, cols)
	}
	data, err := readFloats(br, int(rows)*int(cols))
	if err != nil {
		return nil, err
	}
	bias, err := readFloats(br, int(rows))
	if err != nil {
		return nil, err
	}
	return NewClassifier(&tensor.Matrix{Rows: int(rows), Cols: int(cols), Data: data}, bias)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeAll(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeFloats(w io.Writer, xs []float32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 4*1024)
	for off := 0; off < len(xs); {
		n := 0
		for ; n < len(buf)/4 && off+n < len(xs); n++ {
			binary.LittleEndian.PutUint32(buf[n*4:], math.Float32bits(xs[off+n]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

func readFloats(r io.Reader, want int) ([]float32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != want {
		return nil, fmt.Errorf("core: float block length %d, want %d", n, want)
	}
	out := make([]float32, n)
	buf := make([]byte, 4*1024)
	for off := 0; off < int(n); {
		chunk := len(buf) / 4
		if rem := int(n) - off; rem < chunk {
			chunk = rem
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += chunk
	}
	return out, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

const featuresMagic = "ENMCFEA1"

// WriteFeatures serializes a set of hidden-state vectors (all the
// same dimension) — the training-sample interchange format for
// enmc-train.
func WriteFeatures(w io.Writer, features [][]float32) (int64, error) {
	if len(features) == 0 {
		return 0, fmt.Errorf("core: no features to write")
	}
	d := len(features[0])
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if err := writeAll(cw, []byte(featuresMagic), uint32(len(features)), uint32(d)); err != nil {
		return cw.n, err
	}
	for i, f := range features {
		if len(f) != d {
			return cw.n, fmt.Errorf("core: feature %d has dimension %d, want %d", i, len(f), d)
		}
		if err := writeFloats(cw, f); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// ReadFeatures deserializes a feature set written by WriteFeatures.
func ReadFeatures(r io.Reader) ([][]float32, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(featuresMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading features magic: %w", err)
	}
	if string(magic) != featuresMagic {
		return nil, fmt.Errorf("core: bad features magic %q", magic)
	}
	var n, d uint32
	if err := readAll(br, &n, &d); err != nil {
		return nil, err
	}
	if n == 0 || d == 0 || uint64(n)*uint64(d) > 1<<32 {
		return nil, fmt.Errorf("core: implausible feature block %dx%d", n, d)
	}
	out := make([][]float32, n)
	for i := range out {
		f, err := readFloats(br, int(d))
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
