package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/activation"
	"enmc/internal/telemetry"
	"enmc/internal/tensor"
)

// Pipeline instruments on the default telemetry registry. They are
// always live: recording is a few atomic ops with no allocations, so
// the hot path pays nothing measurable when nobody reads them.
var (
	mClassifyCount = telemetry.Default().Counter("core.classify.count")
	mClassifyNs    = telemetry.Default().Histogram("core.classify.latency_ns", telemetry.LatencyBuckets())
	mScreenNs      = telemetry.Default().Histogram("core.classify.screen_ns", telemetry.LatencyBuckets())
	mSelectNs      = telemetry.Default().Histogram("core.classify.select_ns", telemetry.LatencyBuckets())
	mExactNs       = telemetry.Default().Histogram("core.classify.exact_ns", telemetry.LatencyBuckets())
	mCandidates    = telemetry.Default().Histogram("core.classify.candidates", telemetry.CountBuckets())
	mBatchNs       = telemetry.Default().Histogram("core.classify.batch_ns", telemetry.LatencyBuckets())
	mBatchSize     = telemetry.Default().Histogram("core.classify.batch_size", telemetry.CountBuckets())
)

// Result is the outcome of screening-based classification: the mixed
// pre-softmax vector (approximate everywhere, exact at candidates)
// plus bookkeeping the evaluation needs.
type Result struct {
	// Mixed holds approximate logits with candidate entries replaced
	// by exact values (paper Fig. 6, step 5).
	Mixed []float32
	// Candidates are the indices recomputed exactly.
	Candidates []int
	// Exact holds the exact logits for Candidates, aligned by index.
	Exact []float32
}

// Probabilities normalizes the mixed vector with softmax.
func (r *Result) Probabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Softmax(p, r.Mixed)
	return p
}

// Predict returns the argmax over the mixed vector.
func (r *Result) Predict() int { return tensor.ArgMax(r.Mixed) }

// TopPredictions returns the top-k classes of the mixed vector.
func (r *Result) TopPredictions(k int) []int { return tensor.TopK(r.Mixed, k) }

// ClassifyApprox runs the full inference pipeline of Section 4.2:
// screen, select candidates, recompute candidates exactly against the
// full classifier, and merge. Stage latencies and the candidate count
// land in the telemetry registry; spans are recorded only when a
// global tracer is installed.
func ClassifyApprox(cls *Classifier, scr *Screener, h []float32, sel Selection) *Result {
	return classifyApprox(cls, scr, h, sel, telemetry.Global(), telemetry.TrackPipeline)
}

// ClassifyApproxTraced is ClassifyApprox with an explicit tracer for
// per-stage spans (nil falls back to pure metrics).
func ClassifyApproxTraced(cls *Classifier, scr *Screener, h []float32, sel Selection, tr *telemetry.Tracer) *Result {
	return classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline)
}

func classifyApprox(cls *Classifier, scr *Screener, h []float32, sel Selection, tr *telemetry.Tracer, tid int) *Result {
	t0 := time.Now()
	ztilde := scr.Screen(h)
	t1 := time.Now()
	cands := SelectCandidates(ztilde, sel)
	t2 := time.Now()
	exact := cls.LogitsRows(cands, h)
	mixed := ztilde // screening output is consumed; reuse as the mixed vector
	for j, c := range cands {
		mixed[c] = exact[j]
	}
	t3 := time.Now()

	mClassifyCount.Inc()
	mScreenNs.Observe(float64(t1.Sub(t0)))
	mSelectNs.Observe(float64(t2.Sub(t1)))
	mExactNs.Observe(float64(t3.Sub(t2)))
	mClassifyNs.Observe(float64(t3.Sub(t0)))
	mCandidates.Observe(float64(len(cands)))
	if tr != nil {
		base := tr.Now() - t3.Sub(t0).Nanoseconds()
		tr.Add(telemetry.Span{Name: "screen", Cat: "classify", TID: tid, Start: base, Dur: t1.Sub(t0).Nanoseconds()})
		tr.Add(telemetry.Span{Name: "select", Cat: "classify", TID: tid, Start: base + t1.Sub(t0).Nanoseconds(), Dur: t2.Sub(t1).Nanoseconds()})
		tr.Add(telemetry.Span{Name: "exact-recompute", Cat: "classify", TID: tid, Start: base + t2.Sub(t0).Nanoseconds(), Dur: t3.Sub(t2).Nanoseconds()})
	}
	return &Result{Mixed: mixed, Candidates: cands, Exact: exact}
}

// ClassifyBatch applies ClassifyApprox to a batch of hidden vectors,
// fanning out over a bounded worker pool (GOMAXPROCS workers). Output
// order matches the input and is bit-identical to the serial loop —
// every item's pipeline is independent and read-only over the model.
func ClassifyBatch(cls *Classifier, scr *Screener, batch [][]float32, sel Selection) []*Result {
	return ClassifyBatchTraced(cls, scr, batch, sel, telemetry.Global())
}

// ClassifyBatchTraced is ClassifyBatch with an explicit tracer; each
// worker's spans land on its own pipeline track.
func ClassifyBatchTraced(cls *Classifier, scr *Screener, batch [][]float32, sel Selection, tr *telemetry.Tracer) []*Result {
	start := time.Now()
	out := make([]*Result, len(batch))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i, h := range batch {
			out[i] = classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(batch) {
						return
					}
					out[i] = classifyApprox(cls, scr, batch[i], sel, tr, tid)
				}
			}(telemetry.TrackPipeline + w)
		}
		wg.Wait()
	}
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(len(batch)))
	return out
}

// ClassifyApproxCtx is ClassifyApprox with a cancellation point: it
// returns ctx.Err() without touching the model when the context is
// already done. A single item's pipeline (one screen matmul plus a
// few candidate rows) is the finest abort granularity the math
// offers, so the check sits at item boundaries rather than inside
// the matmul.
func ClassifyApproxCtx(ctx context.Context, cls *Classifier, scr *Screener, h []float32, sel Selection) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return classifyApprox(cls, scr, h, sel, telemetry.Global(), telemetry.TrackPipeline), nil
}

// ClassifyBatchCtx is ClassifyBatch with cancellation honored between
// batch items: once ctx is done no further item starts (in-flight
// items finish — they are short and read-only), and the call returns
// ctx.Err() with a nil slice. Serving stacks use this so a client
// disconnect or deadline stops burning CPU mid-batch.
func ClassifyBatchCtx(ctx context.Context, cls *Classifier, scr *Screener, batch [][]float32, sel Selection, tr *telemetry.Tracer) ([]*Result, error) {
	start := time.Now()
	out := make([]*Result, len(batch))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	done := ctx.Done()
	if workers <= 1 {
		for i, h := range batch {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
			out[i] = classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(batch) {
						return
					}
					out[i] = classifyApprox(cls, scr, batch[i], sel, tr, tid)
				}
			}(telemetry.TrackPipeline + w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(len(batch)))
	return out, nil
}

// SigmoidProbabilities normalizes the mixed vector element-wise with
// the logistic function — the multi-label output the recommendation
// workloads use (paper Section 4.1: "our method is capable to other
// non-linear functions used in classification such as sigmoid").
func (r *Result) SigmoidProbabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Sigmoid(p, r.Mixed)
	return p
}
