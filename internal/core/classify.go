package core

import (
	"enmc/internal/activation"
	"enmc/internal/tensor"
)

// Result is the outcome of screening-based classification: the mixed
// pre-softmax vector (approximate everywhere, exact at candidates)
// plus bookkeeping the evaluation needs.
type Result struct {
	// Mixed holds approximate logits with candidate entries replaced
	// by exact values (paper Fig. 6, step 5).
	Mixed []float32
	// Candidates are the indices recomputed exactly.
	Candidates []int
	// Exact holds the exact logits for Candidates, aligned by index.
	Exact []float32
}

// Probabilities normalizes the mixed vector with softmax.
func (r *Result) Probabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Softmax(p, r.Mixed)
	return p
}

// Predict returns the argmax over the mixed vector.
func (r *Result) Predict() int { return tensor.ArgMax(r.Mixed) }

// TopPredictions returns the top-k classes of the mixed vector.
func (r *Result) TopPredictions(k int) []int { return tensor.TopK(r.Mixed, k) }

// ClassifyApprox runs the full inference pipeline of Section 4.2:
// screen, select candidates, recompute candidates exactly against the
// full classifier, and merge.
func ClassifyApprox(cls *Classifier, scr *Screener, h []float32, sel Selection) *Result {
	ztilde := scr.Screen(h)
	cands := SelectCandidates(ztilde, sel)
	exact := cls.LogitsRows(cands, h)
	mixed := ztilde // screening output is consumed; reuse as the mixed vector
	for j, c := range cands {
		mixed[c] = exact[j]
	}
	return &Result{Mixed: mixed, Candidates: cands, Exact: exact}
}

// ClassifyBatch applies ClassifyApprox to a batch of hidden vectors.
func ClassifyBatch(cls *Classifier, scr *Screener, batch [][]float32, sel Selection) []*Result {
	out := make([]*Result, len(batch))
	for i, h := range batch {
		out[i] = ClassifyApprox(cls, scr, h, sel)
	}
	return out
}

// SigmoidProbabilities normalizes the mixed vector element-wise with
// the logistic function — the multi-label output the recommendation
// workloads use (paper Section 4.1: "our method is capable to other
// non-linear functions used in classification such as sigmoid").
func (r *Result) SigmoidProbabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Sigmoid(p, r.Mixed)
	return p
}
