package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/activation"
	"enmc/internal/telemetry"
	"enmc/internal/tensor"
)

// Pipeline instruments on the default telemetry registry. They are
// always live: recording is a few atomic ops with no allocations, so
// the hot path pays nothing measurable when nobody reads them.
var (
	mClassifyCount  = telemetry.Default().Counter("core.classify.count")
	mClassifyNs     = telemetry.Default().Histogram("core.classify.latency_ns", telemetry.LatencyBuckets())
	mScreenNs       = telemetry.Default().Histogram("core.classify.screen_ns", telemetry.LatencyBuckets())
	mSelectNs       = telemetry.Default().Histogram("core.classify.select_ns", telemetry.LatencyBuckets())
	mExactNs        = telemetry.Default().Histogram("core.classify.exact_ns", telemetry.LatencyBuckets())
	mCandidates     = telemetry.Default().Histogram("core.classify.candidates", telemetry.CountBuckets())
	mBatchNs        = telemetry.Default().Histogram("core.classify.batch_ns", telemetry.LatencyBuckets())
	mBatchSize      = telemetry.Default().Histogram("core.classify.batch_size", telemetry.CountBuckets())
	mBatchCancelled = telemetry.Default().Counter("core.classify.batch_cancelled")
)

// Result is the outcome of screening-based classification: the mixed
// pre-softmax vector (approximate everywhere, exact at candidates)
// plus bookkeeping the evaluation needs.
type Result struct {
	// Mixed holds approximate logits with candidate entries replaced
	// by exact values (paper Fig. 6, step 5).
	Mixed []float32
	// Candidates are the indices recomputed exactly.
	Candidates []int
	// Exact holds the exact logits for Candidates, aligned by index.
	Exact []float32
}

// Probabilities normalizes the mixed vector with softmax.
func (r *Result) Probabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Softmax(p, r.Mixed)
	return p
}

// Predict returns the argmax over the mixed vector.
func (r *Result) Predict() int { return tensor.ArgMax(r.Mixed) }

// TopPredictions returns the top-k classes of the mixed vector.
func (r *Result) TopPredictions(k int) []int { return tensor.TopK(r.Mixed, k) }

// ClassifyApprox runs the full inference pipeline of Section 4.2:
// screen, select candidates, recompute candidates exactly against the
// full classifier, and merge. Stage latencies and the candidate count
// land in the telemetry registry; spans are recorded only when a
// global tracer is installed.
func ClassifyApprox(cls *Classifier, scr *Screener, h []float32, sel Selection) *Result {
	return classifyApprox(cls, scr, h, sel, telemetry.Global(), telemetry.TrackPipeline, 0)
}

// ClassifyApproxTraced is ClassifyApprox with an explicit tracer for
// per-stage spans (nil falls back to pure metrics).
func ClassifyApproxTraced(cls *Classifier, scr *Screener, h []float32, sel Selection, tr *telemetry.Tracer) *Result {
	return classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline, 0)
}

// classifyApprox runs one query with pooled intermediates and returns
// a caller-owned Result (its slices are freshly allocated; everything
// else came from and went back to the scratch pool).
func classifyApprox(cls *Classifier, scr *Screener, h []float32, sel Selection, tr *telemetry.Tracer, tid, maxShards int) *Result {
	sc := GetScratch()
	defer sc.Release()
	sc.MaxShards = maxShards
	mixed := make([]float32, scr.Cfg.Categories)
	cands, exact := classifyInto(cls, scr, h, sel, mixed, sc, tr, tid)
	return &Result{
		Mixed:      mixed,
		Candidates: append([]int(nil), cands...),
		Exact:      append([]float32(nil), exact...),
	}
}

// ClassifyApproxInto is ClassifyApprox running entirely in sc's
// arena: zero allocations in steady state. The returned Result is
// arena-backed — its slices alias sc and are overwritten by the next
// pipeline call on the same scratch (and invalid after sc.Release),
// so copy out anything you keep. This is the kernel a saturated
// server loops on, one scratch per worker.
func ClassifyApproxInto(cls *Classifier, scr *Screener, h []float32, sel Selection, sc *Scratch) *Result {
	sc.mixed = growF32(sc.mixed, scr.Cfg.Categories)
	cands, exact := classifyInto(cls, scr, h, sel, sc.mixed, sc, telemetry.Global(), telemetry.TrackPipeline)
	sc.res = Result{Mixed: sc.mixed, Candidates: cands, Exact: exact}
	return &sc.res
}

// classifyInto is the pipeline engine: screen into mixed, select
// candidates, recompute them exactly, merge into mixed. The returned
// candidate/exact slices alias sc. All stage telemetry is recorded
// here.
func classifyInto(cls *Classifier, scr *Screener, h []float32, sel Selection, mixed []float32, sc *Scratch, tr *telemetry.Tracer, tid int) (cands []int, exact []float32) {
	t0 := time.Now()
	scr.ScreenInto(mixed, h, sc)
	t1 := time.Now()
	cands = SelectCandidatesInto(mixed, sel, sc)
	// Ascending-index recompute order: the exact gather touches one
	// classifier row per candidate out of an l×d matrix far larger
	// than cache, and a monotone walk keeps it page-local instead of
	// hopping the address space in score order. No caller depends on
	// candidate order — Exact stays j-aligned with Candidates.
	sort.Ints(cands)
	t2 := time.Now()
	sc.exact = growF32(sc.exact, len(cands))
	exact = sc.exact
	cls.LogitsRowsInto(exact, cands, h)
	for j, c := range cands {
		mixed[c] = exact[j]
	}
	t3 := time.Now()

	mClassifyCount.Inc()
	mScreenNs.Observe(float64(t1.Sub(t0)))
	mSelectNs.Observe(float64(t2.Sub(t1)))
	mExactNs.Observe(float64(t3.Sub(t2)))
	mClassifyNs.Observe(float64(t3.Sub(t0)))
	mCandidates.Observe(float64(len(cands)))
	if tr != nil {
		base := tr.Now() - t3.Sub(t0).Nanoseconds()
		tr.Add(telemetry.Span{Name: "screen", Cat: "classify", TID: tid, Start: base, Dur: t1.Sub(t0).Nanoseconds()})
		tr.Add(telemetry.Span{Name: "select", Cat: "classify", TID: tid, Start: base + t1.Sub(t0).Nanoseconds(), Dur: t2.Sub(t1).Nanoseconds()})
		tr.Add(telemetry.Span{Name: "exact-recompute", Cat: "classify", TID: tid, Start: base + t2.Sub(t0).Nanoseconds(), Dur: t3.Sub(t2).Nanoseconds()})
	}
	return cands, exact
}

// batchShardBudget splits GOMAXPROCS between inter-item workers and
// intra-query GEMV shards: a full batch runs serial per-query kernels
// on every core, a short batch lets each worker fan its screening
// sweep across the idle cores.
func batchShardBudget(items int) (workers, maxShards int) {
	p := runtime.GOMAXPROCS(0)
	workers = p
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	maxShards = p / workers
	if maxShards < 1 {
		maxShards = 1
	}
	return workers, maxShards
}

// ClassifyBatch applies ClassifyApprox to a batch of hidden vectors,
// fanning out over a bounded worker pool (GOMAXPROCS workers). Output
// order matches the input and is bit-identical to the serial loop —
// every item's pipeline is independent and read-only over the model.
func ClassifyBatch(cls *Classifier, scr *Screener, batch [][]float32, sel Selection) []*Result {
	return ClassifyBatchTraced(cls, scr, batch, sel, telemetry.Global())
}

// ClassifyBatchTraced is ClassifyBatch with an explicit tracer; each
// worker's spans land on its own pipeline track.
func ClassifyBatchTraced(cls *Classifier, scr *Screener, batch [][]float32, sel Selection, tr *telemetry.Tracer) []*Result {
	start := time.Now()
	out := make([]*Result, len(batch))
	workers, maxShards := batchShardBudget(len(batch))
	if workers <= 1 {
		for i, h := range batch {
			out[i] = classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline, 0)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(batch) {
						return
					}
					out[i] = classifyApprox(cls, scr, batch[i], sel, tr, tid, maxShards)
				}
			}(telemetry.TrackPipeline + w)
		}
		wg.Wait()
	}
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(len(batch)))
	return out
}

// ClassifyApproxCtx is ClassifyApprox with a cancellation point: it
// returns ctx.Err() without touching the model when the context is
// already done. A single item's pipeline (one screen matmul plus a
// few candidate rows) is the finest abort granularity the math
// offers, so the check sits at item boundaries rather than inside
// the matmul.
func ClassifyApproxCtx(ctx context.Context, cls *Classifier, scr *Screener, h []float32, sel Selection) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return classifyApprox(cls, scr, h, sel, telemetry.Global(), telemetry.TrackPipeline, 0), nil
}

// observeCancelledBatch records the work a batch performed before its
// context was cancelled: without it, load-shedding makes dashboards
// undercount both wall time burned and items actually classified.
func observeCancelledBatch(start time.Time, completed int) {
	mBatchCancelled.Inc()
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(completed))
}

// ClassifyBatchCtx is ClassifyBatch with cancellation honored between
// batch items: once ctx is done no further item starts (in-flight
// items finish — they are short and read-only), and the call returns
// ctx.Err() with a nil slice. Serving stacks use this so a client
// disconnect or deadline stops burning CPU mid-batch. Cancelled
// batches still observe batch_ns/batch_size (with the completed item
// count) and bump the core.classify.batch_cancelled counter.
func ClassifyBatchCtx(ctx context.Context, cls *Classifier, scr *Screener, batch [][]float32, sel Selection, tr *telemetry.Tracer) ([]*Result, error) {
	start := time.Now()
	out := make([]*Result, len(batch))
	workers, maxShards := batchShardBudget(len(batch))
	done := ctx.Done()
	if workers <= 1 {
		for i, h := range batch {
			select {
			case <-done:
				observeCancelledBatch(start, i)
				return nil, ctx.Err()
			default:
			}
			out[i] = classifyApprox(cls, scr, h, sel, tr, telemetry.TrackPipeline, 0)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(batch) {
						return
					}
					out[i] = classifyApprox(cls, scr, batch[i], sel, tr, tid, maxShards)
				}
			}(telemetry.TrackPipeline + w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			completed := 0
			for _, r := range out {
				if r != nil {
					completed++
				}
			}
			observeCancelledBatch(start, completed)
			return nil, err
		}
	}
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(len(batch)))
	return out, nil
}

// ClassifyBatchVisitCtx is the zero-copy batch driver for serving
// stacks: instead of materializing caller-owned Results (an l-sized
// allocation per item — megabytes of garbage per request at extreme
// scale), it invokes visit(i, res, sc) on the worker goroutine with
// an arena-backed Result. The Result and anything reached through it
// are recycled as soon as visit returns, so visit must copy out what
// it keeps; sc is the worker's scratch, handy for scratch-backed
// post-processing such as sc.TopK over res.Mixed. visit runs
// concurrently across workers (for distinct items i), so it must not
// touch shared state without synchronization beyond writing i-indexed
// outputs. Cancellation and telemetry follow ClassifyBatchCtx.
func ClassifyBatchVisitCtx(ctx context.Context, cls *Classifier, scr *Screener, batch [][]float32, sel Selection, tr *telemetry.Tracer, visit func(i int, res *Result, sc *Scratch)) error {
	start := time.Now()
	workers, maxShards := batchShardBudget(len(batch))
	done := ctx.Done()
	var completed atomic.Int64
	runWorker := func(tid int, next *int64) {
		sc := GetScratch()
		defer sc.Release()
		sc.MaxShards = maxShards
		for {
			select {
			case <-done:
				return
			default:
			}
			i := int(atomic.AddInt64(next, 1))
			if i >= len(batch) {
				return
			}
			sc.mixed = growF32(sc.mixed, scr.Cfg.Categories)
			cands, exact := classifyInto(cls, scr, batch[i], sel, sc.mixed, sc, tr, tid)
			sc.res = Result{Mixed: sc.mixed, Candidates: cands, Exact: exact}
			visit(i, &sc.res, sc)
			completed.Add(1)
		}
	}
	var next int64 = -1
	if workers <= 1 {
		runWorker(telemetry.TrackPipeline, &next)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				runWorker(tid, &next)
			}(telemetry.TrackPipeline + w)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		observeCancelledBatch(start, int(completed.Load()))
		return err
	}
	mBatchNs.Observe(float64(time.Since(start)))
	mBatchSize.Observe(float64(len(batch)))
	return nil
}

// SigmoidProbabilities normalizes the mixed vector element-wise with
// the logistic function — the multi-label output the recommendation
// workloads use (paper Section 4.1: "our method is capable to other
// non-linear functions used in classification such as sigmoid").
func (r *Result) SigmoidProbabilities() []float32 {
	p := make([]float32, len(r.Mixed))
	activation.Sigmoid(p, r.Mixed)
	return p
}
