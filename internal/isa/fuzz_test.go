package isa

import "testing"

// FuzzDecode drives arbitrary 13-bit command words (plus payload
// flags) through the decoder: it must never panic, and everything it
// accepts must re-encode to the same wire bits.
func FuzzDecode(f *testing.F) {
	for _, in := range []Instruction{
		Init(RegVocab, 12345),
		Query(RegStatus),
		Ldr(BufWgtINT4, 0xffff),
		Compute(isaOpMULADDFP32(), BufFeatFP32, BufWgtFP32),
		Simple(OpBARRIER),
	} {
		cmd, data, hasData := in.Encode()
		f.Add(cmd, data, hasData)
	}
	f.Add(uint16(0x1fff), uint64(0), false)
	f.Add(uint16(31), uint64(1), true)

	f.Fuzz(func(t *testing.T, cmd uint16, data uint64, hasData bool) {
		in, err := Decode(cmd, data, hasData)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		cmd2, data2, hasData2 := in.Encode()
		if cmd2 != cmd&0x1fff {
			// Encode canonicalizes unused operand bits for some
			// opcodes; a second decode must be a fixed point.
			in2, err := Decode(cmd2, data2, hasData2)
			if err != nil || in2 != in {
				t.Fatalf("decode(%#x) not idempotent: %v vs %v (%v)", cmd, in, in2, err)
			}
			return
		}
		if hasData && data2 != data {
			t.Fatalf("payload lost: %#x vs %#x", data2, data)
		}
	})
}

// FuzzAssemble drives arbitrary text through the assembler: it must
// never panic, and accepted lines must survive a
// disassemble/reassemble round trip.
func FuzzAssemble(f *testing.F) {
	for _, s := range []string{
		"INIT reg_7, 42",
		"LDR wgt_i4, 0x100",
		"MUL_ADD_INT4 feat_i4, wgt_i4",
		"SOFTMAX",
		"garbage here",
		"",
		"# comment",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		in, err := Assemble(line)
		if err != nil {
			return
		}
		again, err := Assemble(in.String())
		if err != nil {
			t.Fatalf("disassembly %q of %q does not reassemble: %v", in.String(), line, err)
		}
		if again != in {
			t.Fatalf("round trip changed instruction: %v vs %v", again, in)
		}
	})
}

// isaOpMULADDFP32 avoids an unused-import dance in the seed corpus.
func isaOpMULADDFP32() Opcode { return OpMULADDFP32 }
