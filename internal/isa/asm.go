package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one line of ENMC assembly into an instruction.
// Syntax mirrors the paper's listings:
//
//	INIT reg_7, 42          QUERY reg_7
//	LDR feat_i4, 0x1000     STR out, 0x2000
//	MOVE out, psum_f32      MUL_ADD_INT4 feat_i4, wgt_i4
//	FILTER psum_i4          SOFTMAX   BARRIER   RETURN   CLR
//
// Comments start with '#' or '//'. Buffers accept either the symbolic
// names above or buffer_N.
func Assemble(line string) (Instruction, error) {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return Instruction{}, errEmptyLine
	}
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	mnemonic := strings.ToUpper(fields[0])
	args := fields[1:]

	switch mnemonic {
	case "INIT":
		if len(args) != 2 {
			return Instruction{}, fmt.Errorf("isa: INIT wants reg, value: %q", line)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, err
		}
		v, err := parseUint(args[1])
		if err != nil {
			return Instruction{}, err
		}
		return Init(r, v), nil
	case "QUERY":
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("isa: QUERY wants reg: %q", line)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return Query(r), nil
	case "LDR", "STR":
		if len(args) != 2 {
			return Instruction{}, fmt.Errorf("isa: %s wants buffer, addr: %q", mnemonic, line)
		}
		b, err := parseBuf(args[0])
		if err != nil {
			return Instruction{}, err
		}
		a, err := parseUint(args[1])
		if err != nil {
			return Instruction{}, err
		}
		if mnemonic == "LDR" {
			return Ldr(b, a), nil
		}
		return Str(b, a), nil
	case "FILTER":
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("isa: FILTER wants buffer: %q", line)
		}
		b, err := parseBuf(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return Filter(b), nil
	case "MOVE", "MUL_ADD_INT4", "MUL_ADD_FP32", "ADD_INT4", "MUL_INT4", "ADD_FP32", "MUL_FP32":
		if len(args) != 2 {
			return Instruction{}, fmt.Errorf("isa: %s wants two buffers: %q", mnemonic, line)
		}
		b0, err := parseBuf(args[0])
		if err != nil {
			return Instruction{}, err
		}
		b1, err := parseBuf(args[1])
		if err != nil {
			return Instruction{}, err
		}
		op := map[string]Opcode{
			"MOVE": OpMOVE, "MUL_ADD_INT4": OpMULADDINT4, "MUL_ADD_FP32": OpMULADDFP32,
			"ADD_INT4": OpADDINT4, "MUL_INT4": OpMULINT4, "ADD_FP32": OpADDFP32, "MUL_FP32": OpMULFP32,
		}[mnemonic]
		return Compute(op, b0, b1), nil
	case "SOFTMAX", "SIGMOID", "BARRIER", "NOP", "RETURN", "CLR":
		if len(args) != 0 {
			return Instruction{}, fmt.Errorf("isa: %s takes no operands: %q", mnemonic, line)
		}
		op := map[string]Opcode{
			"SOFTMAX": OpSOFTMAX, "SIGMOID": OpSIGMOID, "BARRIER": OpBARRIER,
			"NOP": OpNOP, "RETURN": OpRETURN, "CLR": OpCLR,
		}[mnemonic]
		return Simple(op), nil
	default:
		return Instruction{}, fmt.Errorf("isa: unknown mnemonic %q", mnemonic)
	}
}

// errEmptyLine signals a blank/comment-only line to AssembleProgram.
var errEmptyLine = fmt.Errorf("isa: empty line")

// AssembleProgram assembles a multi-line source, skipping blank lines
// and comments; errors carry the 1-based line number.
func AssembleProgram(src string) ([]Instruction, error) {
	var out []Instruction
	for n, line := range strings.Split(src, "\n") {
		in, err := Assemble(line)
		if err == errEmptyLine {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", n+1, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// Disassemble renders a program as text that Assemble round-trips.
func Disassemble(prog []Instruction) string {
	var sb strings.Builder
	for _, in := range prog {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "reg_") {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	n, err := strconv.Atoi(s[4:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return Reg(n), nil
}

func parseBuf(s string) (Buffer, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	for b, name := range bufNames {
		if s == name {
			return b, nil
		}
	}
	if strings.HasPrefix(s, "buffer_") {
		n, err := strconv.Atoi(s[7:])
		if err == nil && Buffer(n).Valid() {
			return Buffer(n), nil
		}
	}
	return 0, fmt.Errorf("isa: bad buffer %q", s)
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("isa: bad value %q", s)
	}
	return v, nil
}
