// Package isa defines the ENMC instruction set of the paper's
// Table 1 and the binary encoding of Fig. 8: a 13-bit command word
// carried on the row-address lines A0–A12 of a PRECHARGE command,
// optionally followed by 64 bits on the DQ bus for values that do not
// fit (addresses, register data).
//
// Layouts (bit 0 = A0, least significant):
//
//	generic      [ opcode:5 | operand0:4 | operand1:4 ]
//	reg access   [ opcode:5 | rw:1 | reg:5 | unused:2 ]
//
// INIT and QUERY share one opcode and are distinguished by the RW
// bit, exactly as Fig. 8(b) shows.
package isa

import "fmt"

// Opcode identifies an ENMC instruction (5 bits).
type Opcode uint8

// The instruction set of Table 1. MULADDFP32 is opcode 2 and the
// register-access opcode is 9, matching the worked examples in
// Fig. 8; the remaining assignments fill the 5-bit space.
const (
	OpNOP        Opcode = 0
	OpMULADDINT4 Opcode = 1
	OpMULADDFP32 Opcode = 2
	OpADDINT4    Opcode = 3
	OpMULINT4    Opcode = 4
	OpADDFP32    Opcode = 5
	OpMULFP32    Opcode = 6
	OpFILTER     Opcode = 7
	OpSOFTMAX    Opcode = 8
	OpREG        Opcode = 9 // INIT (write) / QUERY (read)
	OpSIGMOID    Opcode = 10
	OpLDR        Opcode = 11
	OpSTR        Opcode = 12
	OpMOVE       Opcode = 13
	OpBARRIER    Opcode = 14
	OpRETURN     Opcode = 15
	OpCLR        Opcode = 16
)

var opNames = map[Opcode]string{
	OpNOP:        "NOP",
	OpMULADDINT4: "MUL_ADD_INT4",
	OpMULADDFP32: "MUL_ADD_FP32",
	OpADDINT4:    "ADD_INT4",
	OpMULINT4:    "MUL_INT4",
	OpADDFP32:    "ADD_FP32",
	OpMULFP32:    "MUL_FP32",
	OpFILTER:     "FILTER",
	OpSOFTMAX:    "SOFTMAX",
	OpREG:        "REG",
	OpSIGMOID:    "SIGMOID",
	OpLDR:        "LDR",
	OpSTR:        "STR",
	OpMOVE:       "MOVE",
	OpBARRIER:    "BARRIER",
	OpRETURN:     "RETURN",
	OpCLR:        "CLR",
}

func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Valid reports whether o names a defined instruction.
func (o Opcode) Valid() bool { _, ok := opNames[o]; return ok }

// Buffer identifies an on-DIMM buffer (4 bits). The Screener owns the
// INT4 trio, the Executor the FP32 trio plus the output buffer, and
// the index buffer carries candidate indices between them.
type Buffer uint8

// On-DIMM buffers (Fig. 7).
const (
	BufFeatINT4 Buffer = 0 // Screener feature buffer
	BufWgtINT4  Buffer = 1 // Screener weight buffer
	BufPsumINT4 Buffer = 2 // Screener partial sums
	BufIndex    Buffer = 3 // candidate indices (threshold filter output)
	BufFeatFP32 Buffer = 4 // Executor feature buffer
	BufWgtFP32  Buffer = 5 // Executor weight buffer
	BufPsumFP32 Buffer = 6 // Executor partial sums
	BufOutput   Buffer = 7 // output buffer returned to the host
)

var bufNames = map[Buffer]string{
	BufFeatINT4: "feat_i4",
	BufWgtINT4:  "wgt_i4",
	BufPsumINT4: "psum_i4",
	BufIndex:    "index",
	BufFeatFP32: "feat_f32",
	BufWgtFP32:  "wgt_f32",
	BufPsumFP32: "psum_f32",
	BufOutput:   "out",
}

func (b Buffer) String() string {
	if n, ok := bufNames[b]; ok {
		return n
	}
	return fmt.Sprintf("buf%d", uint8(b))
}

// Valid reports whether b names a defined buffer.
func (b Buffer) Valid() bool { _, ok := bufNames[b]; return ok }

// Reg identifies a status register in the ENMC controller (5 bits).
type Reg uint8

// Status register file (Section 5.2: "addresses and sizes of input
// features, vocabulary, and screening weight", plus counters).
const (
	RegFeatAddr   Reg = 0  // DRAM address of input features
	RegFeatSize   Reg = 1  // feature bytes per input
	RegScrWAddr   Reg = 2  // DRAM address of screening weights
	RegScrWSize   Reg = 3  // screening weight bytes
	RegFullWAddr  Reg = 4  // DRAM address of full classifier weights
	RegVocab      Reg = 5  // number of categories l
	RegHidden     Reg = 6  // hidden dimension d
	RegReduced    Reg = 7  // reduced dimension k
	RegThreshold  Reg = 8  // candidate threshold (float32 bits)
	RegBatch      Reg = 9  // current batch id
	RegCandCount  Reg = 10 // candidates found so far
	RegInstrCount Reg = 11 // instructions retired
	RegStatus     Reg = 12 // component busy/done flags
	RegTileRows   Reg = 13 // rows per screening tile
	RegOutAddr    Reg = 14 // DRAM address for spilled outputs
)

// NumRegs is the size of the status register file.
const NumRegs = 32

func (r Reg) String() string { return fmt.Sprintf("reg_%d", uint8(r)) }

// Valid reports whether r is addressable (5 bits).
func (r Reg) Valid() bool { return r < NumRegs }
