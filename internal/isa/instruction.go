package isa

import "fmt"

// Instruction is one decoded ENMC instruction.
type Instruction struct {
	Op   Opcode
	Buf0 Buffer // first buffer operand (compute, LDR/STR, MOVE, FILTER)
	Buf1 Buffer // second buffer operand (compute, MOVE)
	RW   bool   // register access: true = INIT (write), false = QUERY
	Reg  Reg    // register operand
	// Data rides the DQ bus: the DRAM address for LDR/STR, the value
	// for INIT. HasData distinguishes "address 0" from "no payload".
	HasData bool
	Data    uint64
}

// Convenience constructors for the common instructions.

// Init writes value into a status register.
func Init(r Reg, value uint64) Instruction {
	return Instruction{Op: OpREG, RW: true, Reg: r, HasData: true, Data: value}
}

// Query reads a status register.
func Query(r Reg) Instruction { return Instruction{Op: OpREG, Reg: r} }

// Ldr loads BurstBytes from addr into a buffer.
func Ldr(buf Buffer, addr uint64) Instruction {
	return Instruction{Op: OpLDR, Buf0: buf, HasData: true, Data: addr}
}

// Str stores a buffer to addr.
func Str(buf Buffer, addr uint64) Instruction {
	return Instruction{Op: OpSTR, Buf0: buf, HasData: true, Data: addr}
}

// Move copies buffer src to dst.
func Move(dst, src Buffer) Instruction { return Instruction{Op: OpMOVE, Buf0: dst, Buf1: src} }

// Compute builds a two-buffer compute instruction.
func Compute(op Opcode, a, b Buffer) Instruction { return Instruction{Op: op, Buf0: a, Buf1: b} }

// Filter runs the threshold filter over a buffer.
func Filter(buf Buffer) Instruction { return Instruction{Op: OpFILTER, Buf0: buf} }

// Simple builds a no-operand instruction (BARRIER, NOP, RETURN, CLR,
// SOFTMAX, SIGMOID).
func Simple(op Opcode) Instruction { return Instruction{Op: op} }

// needsBuffers reports how many buffer operands the opcode takes.
func (op Opcode) numBuffers() int {
	switch op {
	case OpMULADDINT4, OpMULADDFP32, OpADDINT4, OpMULINT4, OpADDFP32, OpMULFP32, OpMOVE:
		return 2
	case OpLDR, OpSTR, OpFILTER:
		return 1
	default:
		return 0
	}
}

// hasPayload reports whether the opcode carries DQ data.
func (op Opcode) hasPayload() bool {
	switch op {
	case OpLDR, OpSTR:
		return true
	default:
		return false
	}
}

// Validate checks operand ranges and payload presence.
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	switch n := in.Op.numBuffers(); n {
	case 2:
		if !in.Buf0.Valid() || !in.Buf1.Valid() {
			return fmt.Errorf("isa: %s has invalid buffer operands %d,%d", in.Op, in.Buf0, in.Buf1)
		}
	case 1:
		if !in.Buf0.Valid() {
			return fmt.Errorf("isa: %s has invalid buffer operand %d", in.Op, in.Buf0)
		}
	}
	if in.Op == OpREG {
		if !in.Reg.Valid() {
			return fmt.Errorf("isa: register %d out of range", in.Reg)
		}
		if in.RW && !in.HasData {
			return fmt.Errorf("isa: INIT requires data")
		}
	}
	if in.Op.hasPayload() && !in.HasData {
		return fmt.Errorf("isa: %s requires a DQ payload", in.Op)
	}
	return nil
}

// Encode packs the instruction into the 13-bit command word plus the
// optional 64-bit DQ payload (Fig. 8).
func (in Instruction) Encode() (cmd uint16, data uint64, hasData bool) {
	cmd = uint16(in.Op) & 0x1f
	if in.Op == OpREG {
		if in.RW {
			cmd |= 1 << 5
		}
		cmd |= uint16(in.Reg&0x1f) << 6
	} else {
		cmd |= uint16(in.Buf0&0x0f) << 5
		cmd |= uint16(in.Buf1&0x0f) << 9
	}
	return cmd, in.Data, in.HasData
}

// Decode unpacks a command word (plus payload) into an Instruction.
func Decode(cmd uint16, data uint64, hasData bool) (Instruction, error) {
	if cmd > 0x1fff {
		return Instruction{}, fmt.Errorf("isa: command word %#x exceeds 13 bits", cmd)
	}
	in := Instruction{Op: Opcode(cmd & 0x1f), HasData: hasData, Data: data}
	if !in.Op.Valid() {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d in %#x", cmd&0x1f, cmd)
	}
	if in.Op == OpREG {
		in.RW = cmd>>5&1 == 1
		in.Reg = Reg(cmd >> 6 & 0x1f)
	} else {
		in.Buf0 = Buffer(cmd >> 5 & 0x0f)
		in.Buf1 = Buffer(cmd >> 9 & 0x0f)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// String disassembles the instruction in the paper's mnemonics, e.g.
// "MUL_ADD_FP32 feat_f32, wgt_f32" or "INIT reg_7, 0x2a".
func (in Instruction) String() string {
	switch {
	case in.Op == OpREG && in.RW:
		return fmt.Sprintf("INIT %s, %#x", in.Reg, in.Data)
	case in.Op == OpREG:
		return fmt.Sprintf("QUERY %s", in.Reg)
	case in.Op.numBuffers() == 2:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Buf0, in.Buf1)
	case in.Op == OpLDR || in.Op == OpSTR:
		return fmt.Sprintf("%s %s, %#x", in.Op, in.Buf0, in.Data)
	case in.Op.numBuffers() == 1:
		return fmt.Sprintf("%s %s", in.Op, in.Buf0)
	default:
		return in.Op.String()
	}
}
