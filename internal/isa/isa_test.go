package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"enmc/internal/xrand"
)

// TestTable1Coverage checks that every instruction of the paper's
// Table 1 exists in the ISA.
func TestTable1Coverage(t *testing.T) {
	table1 := []Opcode{
		OpREG, // INIT + QUERY
		OpLDR, OpSTR, OpMOVE,
		OpADDINT4, OpMULINT4, OpADDFP32, OpMULFP32,
		OpMULADDINT4, OpMULADDFP32,
		OpFILTER, OpSIGMOID, OpSOFTMAX,
		OpBARRIER, OpNOP, OpRETURN, OpCLR,
	}
	for _, op := range table1 {
		if !op.Valid() {
			t.Fatalf("Table 1 opcode %d missing", op)
		}
	}
}

func TestCommandWordIs13Bits(t *testing.T) {
	ops := []Instruction{
		Init(RegThreshold, 0xdeadbeef),
		Query(RegStatus),
		Ldr(BufWgtINT4, 0x123456),
		Compute(OpMULADDFP32, BufFeatFP32, BufWgtFP32),
		Simple(OpSOFTMAX),
		Move(BufOutput, BufPsumFP32),
		Filter(BufPsumINT4),
	}
	for _, in := range ops {
		cmd, _, _ := in.Encode()
		if cmd > 0x1fff {
			t.Fatalf("%s encodes to %#x > 13 bits", in, cmd)
		}
	}
}

func TestFig8Encodings(t *testing.T) {
	// Fig. 8(a): MUL_ADD_FP32 buffer_0, buffer_1 → opcode 2.
	in := Compute(OpMULADDFP32, Buffer(0), Buffer(1))
	cmd, _, _ := in.Encode()
	if cmd&0x1f != 2 {
		t.Fatalf("MUL_ADD_FP32 opcode field = %d, want 2", cmd&0x1f)
	}
	if cmd>>5&0xf != 0 || cmd>>9&0xf != 1 {
		t.Fatalf("buffer fields wrong in %#x", cmd)
	}
	// Fig. 8(b): QUERY reg_7 → opcode 9, RD, reg 7.
	q := Query(Reg(7))
	cmd, _, _ = q.Encode()
	if cmd&0x1f != 9 || cmd>>5&1 != 0 || cmd>>6&0x1f != 7 {
		t.Fatalf("QUERY reg_7 encodes to %#x", cmd)
	}
	// Fig. 8(c): INIT reg_7, v → opcode 9, WT, reg 7, data on DQ.
	i := Init(Reg(7), 99)
	cmd, data, hasData := i.Encode()
	if cmd&0x1f != 9 || cmd>>5&1 != 1 || cmd>>6&0x1f != 7 {
		t.Fatalf("INIT reg_7 encodes to %#x", cmd)
	}
	if !hasData || data != 99 {
		t.Fatal("INIT payload missing")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var in Instruction
		switch r.Intn(5) {
		case 0:
			in = Init(Reg(r.Intn(NumRegs)), r.Uint64())
		case 1:
			in = Query(Reg(r.Intn(NumRegs)))
		case 2:
			in = Ldr(Buffer(r.Intn(8)), r.Uint64())
		case 3:
			ops := []Opcode{OpMULADDINT4, OpMULADDFP32, OpADDINT4, OpMULINT4, OpADDFP32, OpMULFP32, OpMOVE}
			in = Compute(ops[r.Intn(len(ops))], Buffer(r.Intn(8)), Buffer(r.Intn(8)))
		default:
			ops := []Opcode{OpSOFTMAX, OpSIGMOID, OpBARRIER, OpNOP, OpRETURN, OpCLR}
			in = Simple(ops[r.Intn(len(ops))])
		}
		cmd, data, hasData := in.Encode()
		got, err := Decode(cmd, data, hasData)
		if err != nil {
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(0x4000, 0, false); err == nil {
		t.Fatal("14-bit command accepted")
	}
	if _, err := Decode(uint16(31), 0, false); err == nil { // opcode 31 undefined
		t.Fatal("undefined opcode accepted")
	}
	// LDR without payload must fail validation.
	cmd, _, _ := Ldr(BufFeatINT4, 0).Encode()
	if _, err := Decode(cmd, 0, false); err == nil {
		t.Fatal("LDR without payload accepted")
	}
}

func TestValidate(t *testing.T) {
	good := []Instruction{
		Init(RegVocab, 5), Query(RegVocab), Ldr(BufOutput, 1),
		Compute(OpADDFP32, BufPsumFP32, BufWgtFP32), Simple(OpBARRIER),
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
	}
	bad := []Instruction{
		{Op: Opcode(20)},
		{Op: OpMOVE, Buf0: Buffer(15), Buf1: BufOutput},
		{Op: OpREG, RW: true, Reg: RegVocab}, // INIT without data
		{Op: OpLDR, Buf0: BufFeatINT4},       // LDR without data
		{Op: OpREG, Reg: Reg(33)},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("bad instruction %d accepted", i)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
# screening inner loop
INIT reg_8, 0x42
LDR wgt_i4, 0x1000
LDR feat_i4, 0x2000
MUL_ADD_INT4 feat_i4, wgt_i4
FILTER psum_i4
BARRIER
MUL_ADD_FP32 feat_f32, wgt_f32   // executor
SOFTMAX
MOVE out, psum_f32
RETURN
QUERY reg_10
CLR
`
	prog, err := AssembleProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 12 {
		t.Fatalf("assembled %d instructions", len(prog))
	}
	text := Disassemble(prog)
	again, err := AssembleProgram(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(again) != len(prog) {
		t.Fatal("round-trip length mismatch")
	}
	for i := range prog {
		if prog[i] != again[i] {
			t.Fatalf("instruction %d: %v vs %v", i, prog[i], again[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FROB reg_1",
		"INIT reg_1",
		"INIT reg_99, 5",
		"LDR nowhere, 5",
		"SOFTMAX out",
		"MOVE out",
		"LDR out, zzz",
	}
	for _, line := range bad {
		if _, err := Assemble(line); err == nil {
			t.Fatalf("%q assembled without error", line)
		}
	}
	if _, err := AssembleProgram("NOP\nBADOP\n"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("program error missing line number: %v", err)
	}
}

func TestBufferRegisterNames(t *testing.T) {
	if BufOutput.String() != "out" || !BufOutput.Valid() {
		t.Fatal("buffer naming")
	}
	if Buffer(12).Valid() {
		t.Fatal("buffer 12 should be invalid")
	}
	if Reg(31).String() != "reg_31" || !Reg(31).Valid() || Reg(32).Valid() {
		t.Fatal("register naming/validity")
	}
	if Opcode(29).String() == "" {
		t.Fatal("unknown opcode String")
	}
}
