package tenant

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fill pushes n items of class c, failing the test on any error.
func fill(t *testing.T, q *WFQ[int], c Class, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := q.Push(c, i); err != nil {
			t.Fatalf("Push(%s, %d): %v", c, i, err)
		}
	}
}

// drainCount pops everything, tallying per class.
func drainCount(q *WFQ[int]) (counts [NumClasses]int, order []Class) {
	for {
		_, c, ok := q.Pop()
		if !ok {
			return counts, order
		}
		counts[c.Index()]++
		order = append(order, c)
	}
}

// Work conservation: with only one class backlogged, every pop serves
// it — idle classes donate their capacity and Pop never returns
// ok=false while anything is queued.
func TestWFQWorkConservation(t *testing.T) {
	for _, c := range Classes {
		q := NewWFQ[int](64, DefaultWeights)
		fill(t, q, c, 50)
		counts, _ := drainCount(q)
		if counts[c.Index()] != 50 {
			t.Fatalf("class %s: drained %d of 50", c, counts[c.Index()])
		}
		if q.Len() != 0 {
			t.Fatalf("class %s: %d items stranded", c, q.Len())
		}
	}
}

// Work conservation also holds after PopClass has driven a class's
// deficit deeply negative: the debt delays that class but must never
// strand items of any class.
func TestWFQWorkConservationAfterBorrow(t *testing.T) {
	q := NewWFQ[int](128, DefaultWeights)
	fill(t, q, Batch, 40)
	// Borrow hard: drain 32 batch items directly (a full micro-batch
	// gather), leaving batch's deficit around -32 at weight 1.
	for i := 0; i < 32; i++ {
		if _, ok := q.PopClass(Batch); !ok {
			t.Fatalf("PopClass(Batch) ran dry at %d", i)
		}
	}
	fill(t, q, Interactive, 3)
	counts, _ := drainCount(q)
	if counts[Batch.Index()] != 8 || counts[Interactive.Index()] != 3 {
		t.Fatalf("drained %v, want 8 batch + 3 interactive", counts)
	}
}

// Starvation freedom: with every class saturated by an adversarial
// producer, the lowest class still drains at ~its weight share, and
// its inter-service gap is bounded.
func TestWFQStarvationFreedom(t *testing.T) {
	weights := DefaultWeights // 8:4:1
	q := NewWFQ[int](512, weights)
	for _, c := range Classes {
		fill(t, q, c, 512)
	}
	// Serve a long, fully-backlogged run; every class stays non-empty
	// throughout so the drain shares should match the weights exactly.
	const rounds = 260 // 20 full rotations of weight-sum 13
	var counts [NumClasses]int
	lastBatch := -1
	maxGap := 0
	for i := 0; i < rounds; i++ {
		_, c, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop ran dry at %d with backlog", i)
		}
		counts[c.Index()]++
		if c == Batch {
			if lastBatch >= 0 && i-lastBatch > maxGap {
				maxGap = i - lastBatch
			}
			lastBatch = i
		}
	}
	if counts[Batch.Index()] == 0 {
		t.Fatal("batch starved under full backlog")
	}
	// Exact DRR shares under permanent backlog: weight/sum per rotation.
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	for i, c := range Classes {
		want := rounds * weights[i] / wsum
		if counts[i] < want-weights[i] || counts[i] > want+weights[i] {
			t.Errorf("class %s served %d, want ~%d (weight %d/%d)", c, counts[i], want, weights[i], wsum)
		}
	}
	// Batch is visited once per rotation; between two batch pops at
	// most one full rotation of higher-class quanta (8+4) plus
	// scheduling slack may elapse.
	if maxGap > wsum+NumClasses {
		t.Errorf("batch inter-service gap %d exceeds one rotation (%d)", maxGap, wsum+NumClasses)
	}
}

// Deficit accounting under adversarial arrivals: producers that
// alternate bursts and silences must not let any class accumulate
// credit while idle, and totals must conserve (pushed == popped).
func TestWFQDeficitAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewWFQ[int](1024, DefaultWeights)
	var pushed, popped [NumClasses]int
	for step := 0; step < 2000; step++ {
		// Adversary: bursty pushes into random classes, including long
		// silences for interactive so its deficit would balloon if idle
		// credit accumulated.
		if rng.Intn(3) > 0 {
			c := Classes[rng.Intn(NumClasses)]
			if step%97 < 60 && c == Interactive {
				c = Batch // starve interactive of arrivals for stretches
			}
			burst := rng.Intn(8)
			for i := 0; i < burst; i++ {
				if err := q.Push(c, step); err == nil {
					pushed[c.Index()]++
				}
			}
		}
		for i := rng.Intn(5); i > 0; i-- {
			if _, c, ok := q.Pop(); ok {
				popped[c.Index()]++
			}
		}
	}
	counts, _ := drainCount(q)
	for i := range counts {
		popped[i] += counts[i]
	}
	if pushed != popped {
		t.Fatalf("conservation violated: pushed %v popped %v", pushed, popped)
	}
	// After a burst arrives on a long-idle class it must be served
	// within one rotation, not after "stored" credit is repaid by
	// others: deficit reset on empty guarantees the first interactive
	// pop happens within NumClasses pops of its arrival.
	q2 := NewWFQ[int](64, DefaultWeights)
	fill(t, q2, Batch, 60)
	for i := 0; i < 30; i++ { // let batch spend a while alone
		q2.Pop()
	}
	fill(t, q2, Interactive, 1)
	for i := 0; i < NumClasses+1; i++ {
		_, c, ok := q2.Pop()
		if !ok {
			t.Fatal("ran dry early")
		}
		if c == Interactive {
			return
		}
	}
	t.Fatal("interactive arrival waited more than one rotation")
}

func TestWFQBounds(t *testing.T) {
	q := NewWFQ[int](2, DefaultWeights)
	fill(t, q, Standard, 2)
	if err := q.Push(Standard, 9); err != ErrQueueFull {
		t.Fatalf("Push over cap: %v, want ErrQueueFull", err)
	}
	// Other classes have their own bound.
	if err := q.Push(Batch, 1); err != nil {
		t.Fatalf("Push other class: %v", err)
	}
	q.Close()
	if err := q.Push(Batch, 2); err != ErrClosed {
		t.Fatalf("Push after close: %v, want ErrClosed", err)
	}
	// Drain still works after close.
	counts, _ := drainCount(q)
	if counts[Standard.Index()] != 2 || counts[Batch.Index()] != 1 {
		t.Fatalf("post-close drain %v", counts)
	}
	// A buffered signal may still be pending; after at most one value
	// the channel must report closed.
	deadline := time.After(time.Second)
	for {
		select {
		case _, open := <-q.Ready():
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("Ready not closed")
		}
	}
}

func TestWFQPopClassEmpty(t *testing.T) {
	q := NewWFQ[int](4, DefaultWeights)
	if _, ok := q.PopClass(Interactive); ok {
		t.Fatal("PopClass on empty queue returned ok")
	}
	depths, capPer := q.Depths()
	if depths != [NumClasses]int{} || capPer != 4 {
		t.Fatalf("Depths() = %v cap %d", depths, capPer)
	}
}

// Race hammer: concurrent producers on every class, one DRR consumer,
// and a config-reload thread flipping quotas through a Resolver — the
// shape of live traffic during SIGHUP. Run with -race.
func TestWFQConcurrentHammer(t *testing.T) {
	q := NewWFQ[int](256, DefaultWeights)
	res, err := NewResolver(File{Tenants: []Spec{
		{Name: "a", Key: "ka", Class: "interactive", Rate: 1e6},
		{Name: "b", Key: "kb", Class: "batch", Rate: 1e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const perProducer = 400
	var wg sync.WaitGroup
	accepted := make([]int, NumClasses*2)
	for pi := 0; pi < NumClasses*2; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			c := Classes[pi%NumClasses]
			ten := res.Resolve("ka")
			if c == Batch {
				ten = res.Resolve("kb")
			}
			n := 0
			for i := 0; i < perProducer; i++ {
				ten.Allow(1)
				if err := q.Push(c, i); err == nil {
					n++
				}
			}
			accepted[pi] = n
		}(pi)
	}

	// Reload thread: swap configs while producers resolve and consume.
	// Its own WaitGroup — it outlives the producers and stops only
	// after they finish.
	stopReload := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		flip := false
		for {
			select {
			case <-stopReload:
				return
			default:
			}
			f := File{Tenants: []Spec{
				{Name: "a", Key: "ka", Class: "interactive", Rate: 1e6},
				{Name: "b", Key: "kb", Class: "batch", Rate: 1e6},
			}}
			if flip {
				f.Tenants[1].Rate = 5
				f.Tenants[1].MaxSessions = 2
			}
			flip = !flip
			if err := res.ReplaceConfig(f); err != nil {
				t.Errorf("ReplaceConfig: %v", err)
				return
			}
		}
	}()

	// Consumer: DRR pops (mixing in PopClass gathers) until producers
	// finish and the queue drains.
	done := make(chan struct{})
	var consumed int
	go func() {
		defer close(done)
		for {
			item, c, ok := q.Pop()
			_ = item
			if !ok {
				select {
				case _, open := <-q.Ready():
					if !open && q.Len() == 0 {
						return
					}
					continue
				case <-time.After(2 * time.Second):
					return
				}
			}
			consumed++
			// Gather a few more of the same class, batcher-style.
			for g := 0; g < 3; g++ {
				if _, ok := q.PopClass(c); ok {
					consumed++
				} else {
					break
				}
			}
		}
	}()

	wg2 := make(chan struct{})
	go func() { wg.Wait(); close(wg2) }()
	select {
	case <-wg2:
	case <-time.After(10 * time.Second):
		t.Fatal("producers wedged")
	}
	close(stopReload)
	reloadWG.Wait()
	q.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer wedged")
	}
	want := 0
	for _, n := range accepted {
		want += n
	}
	if consumed != want {
		t.Fatalf("consumed %d of %d accepted", consumed, want)
	}
}
