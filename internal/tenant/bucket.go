package tenant

import (
	"sync"
	"time"
)

// Bucket is a token bucket: capacity `burst` tokens, refilled at
// `rate` tokens/second. Take is mutex-guarded (one tenant's admission
// path, not the classify hot path) and, on rejection, computes the
// actual wait until the requested tokens will exist — the value the
// serving layer puts in Retry-After, so a throttled client learns the
// real backoff instead of a fixed hint.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewBucket builds a bucket starting full. rate must be > 0; burst
// values below 1 are clamped to 1 (a bucket that can never fire is a
// config error, not a feature).
func NewBucket(rate float64, burst int) *Bucket {
	b := float64(burst)
	if b < 1 {
		// Default burst: one second's refill, at least one token.
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &Bucket{rate: rate, burst: b, tokens: b, now: time.Now}
}

// Take removes n tokens if available. On refusal it reports how long
// until n tokens will have accumulated — the Retry-After value.
func (b *Bucket) Take(n float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	// Need (n - tokens) more tokens at `rate` per second. Even a
	// request larger than the burst gets a finite (if hopeless) hint;
	// the caller's validation should have rejected it earlier.
	need := n - b.tokens
	wait := time.Duration(need / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Rate returns the configured refill rate (tokens/second).
func (b *Bucket) Rate() float64 { return b.rate }

// Burst returns the bucket capacity.
func (b *Bucket) Burst() float64 { return b.burst }
