package tenant

import (
	"testing"
	"time"
)

// fakeClock gives tests a hand-cranked bucket clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time                    { return f.t }
func (f *fakeClock) advance(d time.Duration) time.Time { f.t = f.t.Add(d); return f.t }

func newTestBucket(rate float64, burst int) (*Bucket, *fakeClock) {
	b := NewBucket(rate, burst)
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	b.now = fc.now
	return b, fc
}

func TestBucketStartsFullAndRefills(t *testing.T) {
	b, fc := newTestBucket(10, 5)
	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(1); !ok {
			t.Fatalf("take %d from full bucket refused", i)
		}
	}
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("take from empty bucket admitted")
	}
	// 1 token at 10/s: 100ms.
	if wait != 100*time.Millisecond {
		t.Fatalf("retry wait %v, want 100ms", wait)
	}
	fc.advance(100 * time.Millisecond)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("take after exact refill refused")
	}
}

func TestBucketClampsToBurst(t *testing.T) {
	b, fc := newTestBucket(100, 3)
	b.Take(3) // empty it
	fc.advance(time.Hour)
	// An hour's refill still caps at burst.
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(1); !ok {
			t.Fatalf("take %d after long idle refused", i)
		}
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("burst clamp violated: 4th take admitted")
	}
}

func TestBucketRetryAfterIsRealRefillTime(t *testing.T) {
	b, _ := newTestBucket(0.5, 1) // one token every 2s
	b.Take(1)
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait != 2*time.Second {
		t.Fatalf("retry wait %v, want 2s (1 token at 0.5/s)", wait)
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	// No burst: defaults to one second's refill...
	b := NewBucket(7, 0)
	if b.Burst() != 7 {
		t.Fatalf("default burst %v, want rate (7)", b.Burst())
	}
	// ...but never below one token, even at fractional rates.
	b = NewBucket(0.2, 0)
	if b.Burst() != 1 {
		t.Fatalf("default burst %v, want 1", b.Burst())
	}
}

func TestTenantAllowCeilsRetrySeconds(t *testing.T) {
	ten := &Tenant{Name: "x", Class: Batch, bucket: NewBucket(0.4, 1)}
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	ten.bucket.now = fc.now
	if ok, _ := ten.Allow(1); !ok {
		t.Fatal("first take refused")
	}
	ok, retry := ten.Allow(1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	// 1 token at 0.4/s = 2.5s, ceiled to 3 whole seconds.
	if retry != 3 {
		t.Fatalf("Retry-After %d, want 3", retry)
	}
}
