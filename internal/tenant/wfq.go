package tenant

import "sync"

// WFQ is a deficit-round-robin weighted-fair queue across the
// priority classes: one bounded FIFO per class, drained one item at a
// time in DRR order. It replaces a single admission channel in front
// of a micro-batcher, so the drain share of each class under backlog
// is proportional to its weight while idle classes donate their
// capacity (work conservation) and even the lowest class can never
// starve (its quantum accrues on every scheduler visit).
//
// DRR with unit item cost: the scheduler keeps a cursor over the
// classes and a per-class deficit counter. Arriving at a class adds
// its quantum (weight) to the deficit; while the class is non-empty
// and has deficit >= 1, each pop costs 1. The cursor only advances
// when the class runs out of deficit or items, and a class that
// empties has its deficit reset — credit does not accumulate while
// there is nothing to spend it on, which is what bounds any class's
// burst at (weight + 1) items per full rotation.
//
// PopClass supports the batcher's class-homogeneous micro-batches:
// once DRR has picked the class of the next flush, the batcher keeps
// draining that class (possibly past its deficit, which then goes
// negative and is repaid out of future quanta) so a flush never mixes
// screening budgets across classes.
type WFQ[T any] struct {
	mu      sync.Mutex
	queues  [NumClasses][]T
	deficit [NumClasses]float64
	weights [NumClasses]int
	capPer  int // per-class queue bound
	depth   int // total queued items
	cursor  int
	closed  bool

	// ready is the wakeup channel: buffered(1), signaled on every Push
	// and closed by Close, so a blocked consumer always wakes for new
	// work and for drain.
	ready chan struct{}
}

// NewWFQ builds a scheduler with the given per-class queue bound.
// Weights must all be >= 1 (zero entries take DefaultWeights).
func NewWFQ[T any](capPerClass int, weights [NumClasses]int) *WFQ[T] {
	if capPerClass <= 0 {
		capPerClass = 256
	}
	for i, w := range weights {
		if w <= 0 {
			weights[i] = DefaultWeights[i]
		}
	}
	return &WFQ[T]{
		capPer:  capPerClass,
		weights: weights,
		ready:   make(chan struct{}, 1),
	}
}

// Ready returns the wakeup channel: it receives after pushes and is
// closed when the queue is closed. One consumer (the batcher's
// collector) selects on it.
func (q *WFQ[T]) Ready() <-chan struct{} { return q.ready }

// Push admits an item to its class queue: ErrClosed after Close,
// ErrQueueFull at the class bound.
func (q *WFQ[T]) Push(c Class, item T) error {
	i := c.Index()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if len(q.queues[i]) >= q.capPer {
		q.mu.Unlock()
		return ErrQueueFull
	}
	q.queues[i] = append(q.queues[i], item)
	q.depth++
	q.mu.Unlock()
	select {
	case q.ready <- struct{}{}:
	default:
	}
	return nil
}

// Pop removes the next item in DRR order. ok is false only when every
// class queue is empty — the scheduler is work-conserving: any
// backlog anywhere is always poppable immediately.
func (q *WFQ[T]) Pop() (item T, c Class, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.depth == 0 {
		return item, c, false
	}
	// Terminates: depth > 0 means some class is non-empty, and every
	// arrival at a non-empty class adds its quantum (>= 1) to that
	// class's deficit, so after finitely many rotations (bounded by
	// the deepest PopClass debt over the smallest weight) one class
	// can afford a pop. These are arithmetic-only iterations under the
	// lock — a handful of rotations at worst.
	for {
		i := q.cursor
		if len(q.queues[i]) == 0 {
			q.deficit[i] = 0
			q.advance()
			continue
		}
		if q.deficit[i] >= 1 {
			q.deficit[i]--
			return q.popLocked(i), Classes[i], true
		}
		q.advance()
	}
}

// PopClass removes the next item of a specific class, charging its
// deficit (which may go negative — the batcher gathering a micro-
// batch borrows against the class's future quanta). ok is false when
// that class's queue is empty.
func (q *WFQ[T]) PopClass(c Class) (item T, ok bool) {
	i := c.Index()
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queues[i]) == 0 {
		return item, false
	}
	q.deficit[i]--
	return q.popLocked(i), true
}

// advance moves the cursor to the next class and grants that class
// its quantum — exactly once per arrival, which is what bounds the
// deficit at weight+1 and makes every class's wait finite.
func (q *WFQ[T]) advance() {
	q.cursor = (q.cursor + 1) % NumClasses
	q.deficit[q.cursor] += float64(q.weights[q.cursor])
}

func (q *WFQ[T]) popLocked(i int) T {
	item := q.queues[i][0]
	var zero T
	q.queues[i][0] = zero // release the reference for GC
	q.queues[i] = q.queues[i][1:]
	if len(q.queues[i]) == 0 {
		// Reset both the backing array (so the slice does not pin an
		// ever-growing arena) and the deficit (classic DRR: credit
		// vanishes when the queue empties).
		q.queues[i] = nil
		if q.deficit[i] > 0 {
			q.deficit[i] = 0
		}
	}
	q.depth--
	return item
}

// Close stops intake. Queued items remain poppable (the batcher
// drains them); Ready is closed so a blocked consumer wakes.
func (q *WFQ[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.ready)
}

// Closed reports whether Close has been called.
func (q *WFQ[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the total queued depth.
func (q *WFQ[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// LenClass returns one class's queued depth.
func (q *WFQ[T]) LenClass(c Class) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queues[c.Index()])
}

// Depths returns every class's queue depth, priority-ordered, plus
// the shared per-class capacity — one locked snapshot for the
// degradation policy, which needs a consistent view across classes.
func (q *WFQ[T]) Depths() (depths [NumClasses]int, capPer int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.queues {
		depths[i] = len(q.queues[i])
	}
	return depths, q.capPer
}
