package tenant

import (
	"sort"
	"sync"
	"time"

	"enmc/internal/telemetry"
)

// Stats owns the per-tenant instruments: four labeled counters on the
// shared telemetry registry (tenant.admitted / tenant.shed /
// tenant.throttled / tenant.degraded, labeled by tenant and class, so
// /metrics can attribute pressure behavior to the class that absorbed
// it) plus one rolling SLO window per tenant behind /v1/tenants.
// Entries are created lazily on first sight of a (name, class) pair
// and survive config reloads — a tenant's history does not reset when
// its quota changes.
type Stats struct {
	reg    *telemetry.Registry
	sloCfg telemetry.SLOConfig

	mu  sync.Mutex
	per map[string]*TenantStats // key: name + "\x00" + class
}

// TenantStats is one tenant's instrument set.
type TenantStats struct {
	Name  string
	Class Class

	// Admitted counts requests accepted into the scheduler (or served
	// directly). Shed counts pressure rejections — class queue full or
	// the degradation ladder turning the class away. Throttled counts
	// token-bucket (quota) rejections. Degraded counts requests served
	// with a shrunken screening budget (m below the configured TopM).
	Admitted  *telemetry.Counter
	Shed      *telemetry.Counter
	Throttled *telemetry.Counter
	Degraded  *telemetry.Counter

	// SLO is the tenant's own rolling availability/latency window —
	// the per-tenant view /v1/tenants serves.
	SLO *telemetry.SLO
}

// NewStats builds a Stats over reg (nil: the default registry).
// sloCfg zero-values take telemetry's defaults.
func NewStats(reg *telemetry.Registry, sloCfg telemetry.SLOConfig) *Stats {
	if reg == nil {
		reg = telemetry.Default()
	}
	return &Stats{reg: reg, sloCfg: sloCfg, per: map[string]*TenantStats{}}
}

// For returns (creating on first use) the instrument set for a
// tenant identity.
func (s *Stats) For(t *Tenant) *TenantStats {
	return s.forNameClass(t.Name, t.Class)
}

func (s *Stats) forNameClass(name string, class Class) *TenantStats {
	key := name + "\x00" + string(class)
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.per[key]
	if !ok {
		labels := map[string]string{"tenant": name, "class": string(class)}
		ts = &TenantStats{
			Name:      name,
			Class:     class,
			Admitted:  s.reg.Counter(telemetry.LabeledName("tenant.admitted", labels)),
			Shed:      s.reg.Counter(telemetry.LabeledName("tenant.shed", labels)),
			Throttled: s.reg.Counter(telemetry.LabeledName("tenant.throttled", labels)),
			Degraded:  s.reg.Counter(telemetry.LabeledName("tenant.degraded", labels)),
			SLO:       telemetry.NewSLO(s.sloCfg),
		}
		s.per[key] = ts
	}
	return ts
}

// Observe records one finished request into the tenant's SLO window.
func (ts *TenantStats) Observe(endpoint string, status int, latency time.Duration) {
	ts.SLO.Observe(endpoint, status, latency)
}

// Summary is the JSON shape of one tenant's /v1/tenants entry.
type Summary struct {
	Tenant    string               `json:"tenant"`
	Class     Class                `json:"class"`
	Admitted  int64                `json:"admitted"`
	Shed      int64                `json:"shed"`
	Throttled int64                `json:"throttled"`
	Degraded  int64                `json:"degraded"`
	Sessions  int64                `json:"decode_sessions,omitempty"`
	Pinned    string               `json:"pinned_model,omitempty"`
	SLO       telemetry.SLOSummary `json:"slo"`
}

// Summaries renders every tracked tenant's summary, name-sorted.
// live maps tenant name to its current resolved identity (for the
// session count and pin); tenants no longer in the config still
// report their counters.
func (s *Stats) Summaries(live map[string]*Tenant) []Summary {
	s.mu.Lock()
	all := make([]*TenantStats, 0, len(s.per))
	for _, ts := range s.per {
		all = append(all, ts)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Class < all[j].Class
	})
	out := make([]Summary, 0, len(all))
	for _, ts := range all {
		sum := Summary{
			Tenant:    ts.Name,
			Class:     ts.Class,
			Admitted:  ts.Admitted.Value(),
			Shed:      ts.Shed.Value(),
			Throttled: ts.Throttled.Value(),
			Degraded:  ts.Degraded.Value(),
			SLO:       ts.SLO.Summary(),
		}
		if t, ok := live[ts.Name]; ok && t.Class == ts.Class {
			sum.Sessions = t.Sessions()
			sum.Pinned = t.Pinned
		}
		out = append(out, sum)
	}
	return out
}
