package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Tenant is one resolved identity: the immutable runtime state built
// from a Spec. Lookups return the same *Tenant until the next config
// reload; state that must survive a reload (the decode-session count)
// lives behind pointers carried over by name.
type Tenant struct {
	Name   string
	Class  Class
	Pinned string // registry model version, "" = active model

	// bucket is nil for unlimited tenants.
	bucket *Bucket

	// sessions counts the tenant's live decode sessions; shared with
	// the Tenant object of the same name across config reloads so a
	// quota flip never loses track of in-flight sessions.
	sessions    *atomic.Int64
	maxSessions int

	// anonymous marks the built-in fallback identity (no Default
	// entry configured).
	anonymous bool
}

// Allow charges cost tokens against the tenant's rate quota. For
// unlimited tenants it always admits.
func (t *Tenant) Allow(cost float64) (ok bool, retryAfter int) {
	if t.bucket == nil {
		return true, 0
	}
	ok, wait := t.bucket.Take(cost)
	if ok {
		return true, 0
	}
	secs := int(wait.Seconds() + 0.999) // ceil; Retry-After is whole seconds
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// AcquireSession counts one decode session against the tenant's
// session cap; false means the cap is reached. Release with
// ReleaseSession exactly once per successful acquire.
func (t *Tenant) AcquireSession() bool {
	if t.maxSessions <= 0 {
		t.sessions.Add(1)
		return true
	}
	for {
		cur := t.sessions.Load()
		if cur >= int64(t.maxSessions) {
			return false
		}
		if t.sessions.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ReleaseSession returns a session slot.
func (t *Tenant) ReleaseSession() { t.sessions.Add(-1) }

// Sessions returns the tenant's live decode-session count.
func (t *Tenant) Sessions() int64 { return t.sessions.Load() }

// MaxSessions returns the tenant's decode-session cap (0 = uncapped).
func (t *Tenant) MaxSessions() int { return t.maxSessions }

// Anonymous reports whether this is the built-in fallback identity.
func (t *Tenant) Anonymous() bool { return t.anonymous }

// table is one immutable resolved config generation.
type table struct {
	byKey map[string]*Tenant
	def   *Tenant
	all   []*Tenant // name-sorted, def/anonymous excluded
}

// Resolver maps API keys to tenants against the current config
// generation. Resolve is one atomic pointer load — safe on the
// admission path — while Reload re-reads the config file and swaps
// the whole generation in atomically (hot reload under live traffic).
type Resolver struct {
	path string
	cur  atomic.Pointer[table]

	// reloadMu serializes Reload so concurrent SIGHUPs can't interleave
	// the read-carry-swap sequence.
	reloadMu sync.Mutex
}

// NewResolver builds a resolver from an already-parsed config (tests,
// embedded defaults). The file is validated.
func NewResolver(f File) (*Resolver, error) {
	r := &Resolver{}
	t, err := buildTable(f, nil)
	if err != nil {
		return nil, err
	}
	r.cur.Store(t)
	return r, nil
}

// LoadResolver reads, validates and installs the config at path; the
// path is retained for Reload.
func LoadResolver(path string) (*Resolver, error) {
	r := &Resolver{path: path}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reload re-reads the config file and atomically swaps the resolved
// table. On any error the previous generation keeps serving. Session
// counters are carried over by tenant name, so a reload never loses
// track of live decode sessions; rate buckets restart full at the new
// rate (a quota flip takes effect immediately).
func (r *Resolver) Reload() error {
	if r.path == "" {
		return fmt.Errorf("tenant: resolver has no config path")
	}
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	raw, err := os.ReadFile(r.path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	var f File
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("tenant: %s: %w", r.path, err)
	}
	t, err := buildTable(f, r.cur.Load())
	if err != nil {
		return fmt.Errorf("tenant: %s: %w", r.path, err)
	}
	r.cur.Store(t)
	return nil
}

// ReplaceConfig swaps in an already-parsed config (tests and
// embedding servers without a file on disk).
func (r *Resolver) ReplaceConfig(f File) error {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	t, err := buildTable(f, r.cur.Load())
	if err != nil {
		return err
	}
	r.cur.Store(t)
	return nil
}

func buildTable(f File, prev *table) (*table, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	// Carry decode-session counters across the reload by name.
	carried := map[string]*atomic.Int64{}
	if prev != nil {
		for _, t := range prev.all {
			carried[t.Name] = t.sessions
		}
		if prev.def != nil {
			carried[prev.def.Name] = prev.def.sessions
		}
	}
	build := func(s Spec, anonymous bool) *Tenant {
		class, _ := ParseClass(s.Class)
		t := &Tenant{
			Name:        s.Name,
			Class:       class,
			Pinned:      s.ModelVersion,
			maxSessions: s.MaxSessions,
			anonymous:   anonymous,
		}
		if s.Rate > 0 {
			t.bucket = NewBucket(s.Rate, s.Burst)
		}
		if sess, ok := carried[s.Name]; ok {
			t.sessions = sess
		} else {
			t.sessions = &atomic.Int64{}
		}
		return t
	}
	tab := &table{byKey: make(map[string]*Tenant, len(f.Tenants))}
	for _, s := range f.Tenants {
		t := build(s, false)
		tab.byKey[s.Key] = t
		tab.all = append(tab.all, t)
	}
	sort.Slice(tab.all, func(i, j int) bool { return tab.all[i].Name < tab.all[j].Name })
	if f.Default != nil {
		d := *f.Default
		if d.Name == "" {
			d.Name = "default"
		}
		tab.def = build(d, false)
	} else {
		tab.def = build(Spec{Name: "anonymous"}, true)
	}
	return tab, nil
}

// Resolve maps an API key (the X-Enmc-Api-Key header value) to a
// tenant. Unknown or empty keys resolve to the config's default
// tenant, or the built-in anonymous identity when none is configured.
func (r *Resolver) Resolve(key string) *Tenant {
	t := r.cur.Load()
	if key != "" {
		if ten, ok := t.byKey[key]; ok {
			return ten
		}
	}
	return t.def
}

// Tenants returns the current generation's named tenants plus the
// default identity, name-sorted — the /v1/tenants listing.
func (r *Resolver) Tenants() []*Tenant {
	t := r.cur.Load()
	out := make([]*Tenant, 0, len(t.all)+1)
	out = append(out, t.all...)
	out = append(out, t.def)
	return out
}
