// Package tenant is the multi-tenant QoS layer between HTTP admission
// and batch execution: per-tenant identity resolved from an API key
// against a hot-reloadable on-disk config, token-bucket rate limiting
// whose rejections carry the bucket's actual refill time, a
// deficit-round-robin weighted-fair scheduler across priority classes
// (interactive / standard / batch), and per-tenant telemetry + SLO
// windows.
//
// The design premise comes straight from the paper: the screening
// budget m is a per-query accuracy/latency dial, so under pressure the
// server should spend it per tenant *class* — shed or shrink-TopM for
// batch traffic first, and touch interactive traffic only as a last
// resort — instead of shrinking it globally and letting one abusive
// batch client degrade every interactive user.
package tenant

import (
	"errors"
	"fmt"
)

// HeaderAPIKey is the request header carrying the tenant's API key.
const HeaderAPIKey = "X-Enmc-Api-Key"

// Class is a priority class of service. Classes order strictly:
// Interactive > Standard > Batch.
type Class string

const (
	// Interactive is latency-sensitive user-facing traffic: served
	// first, degraded last.
	Interactive Class = "interactive"
	// Standard is the default class for unclassified tenants.
	Standard Class = "standard"
	// Batch is throughput-oriented offline traffic: first to be shed
	// or degraded under pressure.
	Batch Class = "batch"
)

// Classes lists every class in strict priority order (highest first).
// Index into per-class arrays with Class.Index.
var Classes = [...]Class{Interactive, Standard, Batch}

// NumClasses is the number of priority classes.
const NumClasses = len(Classes)

// Index returns the class's position in Classes (0 = highest
// priority). Unknown classes map to Standard's index.
func (c Class) Index() int {
	switch c {
	case Interactive:
		return 0
	case Batch:
		return 2
	default:
		return 1
	}
}

// ParseClass validates a config string. The empty string means
// Standard.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case Interactive, Standard, Batch:
		return Class(s), nil
	case "":
		return Standard, nil
	default:
		return "", fmt.Errorf("tenant: unknown class %q (want interactive, standard or batch)", s)
	}
}

// DefaultWeights is the DRR quantum per class, highest priority
// first: when every class is backlogged, interactive drains 8
// requests for every 4 standard and 1 batch.
var DefaultWeights = [NumClasses]int{8, 4, 1}

// Errors surfaced to the serving layer, which maps them onto HTTP
// statuses (429 with Retry-After for quota and shed rejections).
var (
	// ErrQueueFull: the class's admission queue is at capacity.
	ErrQueueFull = errors.New("tenant: class queue full")
	// ErrClosed: the scheduler is draining; no new admissions.
	ErrClosed = errors.New("tenant: scheduler closed")
)

// Spec is one tenant entry of the on-disk config file: the API key it
// is resolved by, its priority class, its token-bucket quota, and the
// optional registry model version its traffic is pinned to.
type Spec struct {
	// Name identifies the tenant in telemetry, logs and reports.
	Name string `json:"name"`
	// Key is the X-Enmc-Api-Key value that resolves to this tenant.
	Key string `json:"key"`
	// Class is "interactive", "standard" or "batch" (default standard).
	Class string `json:"class,omitempty"`
	// Rate is the token-bucket refill in requests/second; 0 means
	// unlimited (no bucket).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (default: max(1, ceil(Rate))).
	Burst int `json:"burst,omitempty"`
	// ModelVersion pins this tenant's traffic to a registry version;
	// empty serves the active model.
	ModelVersion string `json:"model_version,omitempty"`
	// MaxSessions caps this tenant's concurrent decode sessions; 0
	// means no per-tenant cap (the service-wide cap still applies).
	MaxSessions int `json:"max_sessions,omitempty"`
}

// File is the on-disk tenant config: a list of keyed tenants plus the
// policy for requests whose key is unknown or absent.
type File struct {
	Tenants []Spec `json:"tenants"`
	// Default, when present, is the tenant unknown/absent keys resolve
	// to (its Key field is ignored). When nil, unknown traffic gets
	// the built-in anonymous tenant: standard class, no quota, no pin.
	Default *Spec `json:"default,omitempty"`
}

// Validate checks the file for duplicate keys/names and bad classes.
func (f *File) Validate() error {
	keys := map[string]int{}
	names := map[string]int{}
	for i, t := range f.Tenants {
		if t.Name == "" {
			return fmt.Errorf("tenant: tenants[%d] has no name", i)
		}
		if t.Key == "" {
			return fmt.Errorf("tenant: tenant %q has no key", t.Name)
		}
		if j, dup := keys[t.Key]; dup {
			return fmt.Errorf("tenant: tenants[%d] and [%d] share key %q", j, i, t.Key)
		}
		if j, dup := names[t.Name]; dup {
			return fmt.Errorf("tenant: tenants[%d] and [%d] share name %q", j, i, t.Name)
		}
		keys[t.Key], names[t.Name] = i, i
		if _, err := ParseClass(t.Class); err != nil {
			return fmt.Errorf("tenant %q: %w", t.Name, err)
		}
		if t.Rate < 0 {
			return fmt.Errorf("tenant %q: negative rate", t.Name)
		}
	}
	if f.Default != nil {
		if _, err := ParseClass(f.Default.Class); err != nil {
			return fmt.Errorf("tenant default: %w", err)
		}
		if f.Default.Rate < 0 {
			return fmt.Errorf("tenant default: negative rate")
		}
	}
	return nil
}
