package tenant

import (
	"os"
	"path/filepath"
	"testing"

	"enmc/internal/telemetry"
)

func testFile() File {
	return File{
		Tenants: []Spec{
			{Name: "acme", Key: "k-acme", Class: "interactive", Rate: 100, Burst: 10, ModelVersion: "v1", MaxSessions: 2},
			{Name: "bulk", Key: "k-bulk", Class: "batch", Rate: 5},
		},
		Default: &Spec{Name: "public", Class: "standard", Rate: 50},
	}
}

func TestResolveKnownUnknownAndDefault(t *testing.T) {
	r, err := NewResolver(testFile())
	if err != nil {
		t.Fatal(err)
	}
	acme := r.Resolve("k-acme")
	if acme.Name != "acme" || acme.Class != Interactive || acme.Pinned != "v1" {
		t.Fatalf("acme resolved as %+v", acme)
	}
	if got := r.Resolve("nonsense"); got.Name != "public" || got.Class != Standard {
		t.Fatalf("unknown key resolved as %q/%s", got.Name, got.Class)
	}
	if got := r.Resolve(""); got.Name != "public" {
		t.Fatalf("empty key resolved as %q", got.Name)
	}
	// Same generation returns the same identity pointer.
	if r.Resolve("k-acme") != acme {
		t.Fatal("repeat resolve returned a different *Tenant")
	}
}

func TestResolveAnonymousFallback(t *testing.T) {
	r, err := NewResolver(File{Tenants: []Spec{{Name: "a", Key: "k"}}})
	if err != nil {
		t.Fatal(err)
	}
	anon := r.Resolve("")
	if !anon.Anonymous() || anon.Class != Standard {
		t.Fatalf("fallback = %+v", anon)
	}
	if ok, _ := anon.Allow(1); !ok {
		t.Fatal("anonymous tenant should be unlimited")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		f    File
	}{
		{"no name", File{Tenants: []Spec{{Key: "k"}}}},
		{"no key", File{Tenants: []Spec{{Name: "a"}}}},
		{"dup key", File{Tenants: []Spec{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}}},
		{"dup name", File{Tenants: []Spec{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}}},
		{"bad class", File{Tenants: []Spec{{Name: "a", Key: "k", Class: "platinum"}}}},
		{"negative rate", File{Tenants: []Spec{{Name: "a", Key: "k", Rate: -1}}}},
		{"bad default class", File{Default: &Spec{Class: "gold"}}},
	}
	for _, tc := range cases {
		if _, err := NewResolver(tc.f); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReloadCarriesSessionsAndFlipsQuota(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[{"name":"acme","key":"k","class":"interactive","rate":100,"max_sessions":5}]}`)
	r, err := LoadResolver(path)
	if err != nil {
		t.Fatal(err)
	}
	acme := r.Resolve("k")
	if !acme.AcquireSession() || !acme.AcquireSession() {
		t.Fatal("session acquire under cap refused")
	}

	// Flip the quota and cap; sessions must carry, identity refreshes.
	write(`{"tenants":[{"name":"acme","key":"k","class":"interactive","rate":1,"burst":1,"max_sessions":2}]}`)
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	acme2 := r.Resolve("k")
	if acme2 == acme {
		t.Fatal("reload did not produce a new generation")
	}
	if acme2.Sessions() != 2 {
		t.Fatalf("sessions after reload = %d, want 2 carried over", acme2.Sessions())
	}
	if acme2.AcquireSession() {
		t.Fatal("3rd session admitted over the new cap of 2")
	}
	// Release through the OLD handle — same shared counter.
	acme.ReleaseSession()
	if !acme2.AcquireSession() {
		t.Fatal("session refused after release freed a slot")
	}
	// New bucket: burst 1 at 1/s — second request throttles with a
	// whole-second hint.
	acme2.Allow(1)
	ok, retry := acme2.Allow(1)
	if ok || retry < 1 {
		t.Fatalf("quota flip not applied: ok=%v retry=%d", ok, retry)
	}
}

func TestReloadKeepsServingOnBadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"a","key":"k"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadResolver(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`{not json`,
		`{"tenants":[{"name":"a"}]}`, // missing key
		`{"tenants":[{"name":"a","key":"k","plan":"x"}]}`, // unknown field
	}
	for _, s := range bad {
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := r.Reload(); err == nil {
			t.Errorf("reload accepted %q", s)
		}
		if got := r.Resolve("k"); got.Name != "a" {
			t.Fatalf("previous generation lost after bad reload: %q", got.Name)
		}
	}
}

func TestTenantsListing(t *testing.T) {
	r, err := NewResolver(testFile())
	if err != nil {
		t.Fatal(err)
	}
	all := r.Tenants()
	if len(all) != 3 {
		t.Fatalf("Tenants() len = %d, want 3", len(all))
	}
	if all[0].Name != "acme" || all[1].Name != "bulk" || all[2].Name != "public" {
		t.Fatalf("order: %s, %s, %s", all[0].Name, all[1].Name, all[2].Name)
	}
}

func TestStatsLazyAndStable(t *testing.T) {
	r, _ := NewResolver(testFile())
	st := NewStats(telemetry.NewRegistry(), telemetry.SLOConfig{})
	acme := r.Resolve("k-acme")
	ts := st.For(acme)
	ts.Admitted.Inc()
	ts.Shed.Add(2)
	if got := st.For(acme); got != ts {
		t.Fatal("For returned a new instrument set for the same tenant")
	}
	// Survives a reload: same (name, class) maps to the same counters.
	if err := r.ReplaceConfig(testFile()); err != nil {
		t.Fatal(err)
	}
	ts2 := st.For(r.Resolve("k-acme"))
	if ts2 != ts {
		t.Fatal("reload reset the tenant's instruments")
	}
	live := map[string]*Tenant{}
	for _, t2 := range r.Tenants() {
		live[t2.Name] = t2
	}
	sums := st.Summaries(live)
	if len(sums) != 1 || sums[0].Tenant != "acme" || sums[0].Admitted != 1 || sums[0].Shed != 2 {
		t.Fatalf("summaries: %+v", sums)
	}
	if sums[0].Pinned != "v1" {
		t.Fatalf("summary pin %q", sums[0].Pinned)
	}
}
