package enmc

import (
	"math"
	"testing"
)

func sampleStats() Stats {
	s := Stats{
		Instructions: 1000,
		INT4MACOps:   200000,
		FP32MACOps:   40000,
		FilterOps:    8000,
		SFUOps:       400,
		BufMoves:     4096,
		ReturnBytes:  1024,
		ScreenerBusy: 60000,
		ExecutorBusy: 30000,
	}
	s.DRAM.Reads = 5000
	s.DRAM.Writes = 100
	s.DRAM.RowHits = 4500
	s.DRAM.RowMisses = 600
	s.DRAM.BytesRead = 5000 * 64
	s.DRAM.BytesWritten = 100 * 64
	s.DRAM.DataBusBusy = 20400
	s.DRAM.Cycles = 120000
	s.Phases[PhaseScreen] = 50000
	s.Phases[PhaseFilter] = 10000
	s.Phases[PhaseExact] = 25000
	s.Phases[PhaseActivation] = 5000
	return s
}

// TestStatsScalePreservesRates checks the sampled-simulation
// extrapolation contract: scaling all activity by f preserves every
// derived rate (busy fractions, row-hit rate, bandwidth, per-phase
// shares), because cycle-like fields scale alongside the counters.
func TestStatsScalePreservesRates(t *testing.T) {
	s := sampleStats()
	const f = 7.5
	out := s.Scale(f)

	relClose := func(name string, got, want float64) {
		t.Helper()
		if want == 0 {
			if got != 0 {
				t.Errorf("%s = %g, want 0", name, got)
			}
			return
		}
		if math.Abs(got-want)/math.Abs(want) > 1e-3 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}

	// Counters scale linearly.
	if out.Instructions != int64(1000*f) {
		t.Errorf("Instructions = %d, want %d", out.Instructions, int64(1000*f))
	}
	if out.DRAM.Cycles != int64(120000*f) {
		t.Errorf("DRAM.Cycles = %d, want %d", out.DRAM.Cycles, int64(120000*f))
	}

	// Derived rates are invariant.
	relClose("row-hit rate", out.DRAM.HitRate(), s.DRAM.HitRate())
	relClose("bandwidth", out.DRAM.Bandwidth(), s.DRAM.Bandwidth())
	relClose("screener busy fraction",
		float64(out.ScreenerBusy)/float64(out.DRAM.Cycles),
		float64(s.ScreenerBusy)/float64(s.DRAM.Cycles))
	relClose("executor busy fraction",
		float64(out.ExecutorBusy)/float64(out.DRAM.Cycles),
		float64(s.ExecutorBusy)/float64(s.DRAM.Cycles))

	// Phase attribution scales with the busy totals, preserving each
	// phase's share.
	if out.Phases.Total() == 0 {
		t.Fatal("scaled phase cycles vanished")
	}
	for p := Phase(0); p < NumPhases; p++ {
		relClose("phase "+p.String(),
			float64(out.Phases[p])/float64(out.Phases.Total()),
			float64(s.Phases[p])/float64(s.Phases.Total()))
	}
}

func TestStatsScaleIdentity(t *testing.T) {
	s := sampleStats()
	out := s.Scale(1)
	if out != s {
		t.Errorf("Scale(1) changed stats:\n got %+v\nwant %+v", out, s)
	}
}

func TestPhaseCyclesByName(t *testing.T) {
	var p PhaseCycles
	p[PhaseScreen] = 10
	p[PhaseExact] = 20
	m := p.ByName()
	if len(m) != 2 || m["screen"] != 10 || m["exact-recompute"] != 20 {
		t.Errorf("ByName = %v", m)
	}
	if p.Total() != 30 {
		t.Errorf("Total = %d, want 30", p.Total())
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "invalid" {
			t.Errorf("phase %d has bad name %q", p, name)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
}
