package enmc

// Phase labels the pipeline stage an instruction belongs to. The
// compiler tags every emitted Op; the engine attributes unit-busy
// cycles to the tag (Stats.PhaseCycles) and names tracer spans with
// it, which is what turns a flat instruction stream into a readable
// Chrome trace.
type Phase uint8

// Pipeline phases, in rough program order.
const (
	PhaseOther      Phase = iota // untagged / hand-written programs
	PhaseInit                    // status-register preamble
	PhaseFeature                 // screening-feature loads
	PhaseScreen                  // INT4 (or baseline FP32) screening sweep
	PhaseFilter                  // comparator-array candidate filtering
	PhaseExact                   // candidates-only exact recompute
	PhaseActivation              // softmax/sigmoid SFU pass
	PhaseOutput                  // output-buffer moves and host returns
	NumPhases                    // array bound, not a phase
)

func (p Phase) String() string {
	switch p {
	case PhaseOther:
		return "other"
	case PhaseInit:
		return "init"
	case PhaseFeature:
		return "feature-load"
	case PhaseScreen:
		return "screen"
	case PhaseFilter:
		return "filter"
	case PhaseExact:
		return "exact-recompute"
	case PhaseActivation:
		return "activation"
	case PhaseOutput:
		return "output"
	default:
		return "invalid"
	}
}

// PhaseCycles is the per-phase attribution of unit-busy cycles.
type PhaseCycles [NumPhases]int64

// Total sums all phases.
func (p PhaseCycles) Total() int64 {
	var t int64
	for _, v := range p {
		t += v
	}
	return t
}

// ByName returns the attribution as a name→cycles map (dropping empty
// phases), the form reports and JSON dumps want.
func (p PhaseCycles) ByName() map[string]int64 {
	out := make(map[string]int64)
	for i, v := range p {
		if v != 0 {
			out[Phase(i).String()] = v
		}
	}
	return out
}
