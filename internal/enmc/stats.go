package enmc

// Scale multiplies all activity counters by f, used by sampled
// simulation to extrapolate a measurement window to the full
// workload. Cycle-like fields scale too, so derived rates (busy
// fractions, bandwidth) are preserved.
func (s Stats) Scale(f float64) Stats {
	si := func(v int64) int64 { return int64(float64(v) * f) }
	out := Stats{
		Instructions: si(s.Instructions),
		INT4MACOps:   si(s.INT4MACOps),
		FP32MACOps:   si(s.FP32MACOps),
		FilterOps:    si(s.FilterOps),
		SFUOps:       si(s.SFUOps),
		BufMoves:     si(s.BufMoves),
		ReturnBytes:  si(s.ReturnBytes),
		ScreenerBusy: si(s.ScreenerBusy),
		ExecutorBusy: si(s.ExecutorBusy),
	}
	for i, v := range s.Phases {
		out.Phases[i] = si(v)
	}
	out.DRAM = s.DRAM
	out.DRAM.Reads = si(s.DRAM.Reads)
	out.DRAM.Writes = si(s.DRAM.Writes)
	out.DRAM.Activates = si(s.DRAM.Activates)
	out.DRAM.Precharges = si(s.DRAM.Precharges)
	out.DRAM.Refreshes = si(s.DRAM.Refreshes)
	out.DRAM.RowHits = si(s.DRAM.RowHits)
	out.DRAM.RowMisses = si(s.DRAM.RowMisses)
	out.DRAM.BytesRead = si(s.DRAM.BytesRead)
	out.DRAM.BytesWritten = si(s.DRAM.BytesWritten)
	out.DRAM.DataBusBusy = si(s.DRAM.DataBusBusy)
	out.DRAM.Cycles = si(s.DRAM.Cycles)
	return out
}
