// Package enmc implements the cycle-level model of the ENMC DIMM
// micro-architecture (paper Section 5 and Fig. 7): per-rank logic
// consisting of an ENMC controller (status registers, instruction
// FIFO, decoder, generator), a simplified DRAM controller driving the
// rank's devices, a Screener (INT4 MAC array + threshold filter) and
// an Executor (FP32 MAC array + special-function unit + output
// buffer).
//
// The engine executes ENMC instruction streams produced by the
// compiler package. It is a timing and activity simulator in the
// tradition of Ramulator-based NMP studies: DRAM accesses are timed
// by the cycle-accurate dram package, compute instructions occupy
// their unit for the cycles a sized MAC array needs, and the two
// units overlap exactly as the dual-module pipeline allows.
// Functional correctness of the algorithm itself is validated by the
// core package; the engine validates and accounts for every
// instruction but does not interpret data values.
package enmc

import (
	"fmt"
	"io"

	"enmc/internal/dram"
	"enmc/internal/isa"
	"enmc/internal/telemetry"
)

// Config sizes the per-rank ENMC logic; defaults follow Table 3.
type Config struct {
	DRAM dram.Config // the rank's devices (configure Ranks=1)
	// ClockRatio is DRAM clock cycles per ENMC logic cycle. The logic
	// runs at 400 MHz against a 1200 MHz DDR4-2400 memory clock → 3.
	ClockRatio int
	INT4MACs   int // Screener MAC array width (Table 3: 128)
	FP32MACs   int // Executor MAC array width (Table 3: 16)
	BufBytes   int // per-buffer capacity (Table 3: 256 B)
	// FilterWidth is the comparator-array width (comparisons/cycle).
	FilterWidth int
	// SFUWidth is special-function evaluations per cycle.
	SFUWidth int
}

// Default returns the paper's ENMC configuration for one rank.
func Default() Config {
	d := dram.DDR4_2400()
	d.Ranks = 1
	return Config{
		DRAM:        d,
		ClockRatio:  3,
		INT4MACs:    128,
		FP32MACs:    16,
		BufBytes:    256,
		FilterWidth: 16,
		SFUWidth:    4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	switch {
	case c.ClockRatio <= 0:
		return fmt.Errorf("enmc: non-positive clock ratio")
	case c.INT4MACs <= 0 || c.FP32MACs <= 0:
		return fmt.Errorf("enmc: non-positive MAC counts")
	case c.BufBytes < c.DRAM.BurstBytes:
		return fmt.Errorf("enmc: buffer (%dB) smaller than a DRAM burst (%dB)", c.BufBytes, c.DRAM.BurstBytes)
	case c.FilterWidth <= 0 || c.SFUWidth <= 0:
		return fmt.Errorf("enmc: non-positive filter/SFU width")
	}
	return nil
}

// Op is one instruction in an engine program, annotated with the
// cross-unit dependency the hardware's instruction generator
// enforces: an Op with SyncS2E waits until all previously issued
// Screener work completes before the Executor proceeds (candidates
// must be known before candidate-only compute starts). BARRIER in the
// ISA syncs *both* units; SyncS2E is one-directional and is what
// keeps the dual-module pipeline flowing across batch items.
type Op struct {
	I       isa.Instruction
	SyncS2E bool
	// Bytes is the payload size of the op: transfer length for
	// LDR/STR/MOVE/RETURN, operand bytes for compute/FILTER/SFU ops.
	// 0 means a full buffer. The compiler sets it for partial tiles
	// (e.g. a 2 KB weight row streamed through a 4 KB buffer) so
	// neither traffic nor MAC work is over-charged.
	Bytes int
	// Phase tags the pipeline stage for cycle attribution and span
	// naming (PhaseOther for hand-written programs).
	Phase Phase
}

// payload resolves the op's effective byte count.
func (o Op) payload(bufBytes int) int {
	if o.Bytes > 0 && o.Bytes < bufBytes {
		return o.Bytes
	}
	return bufBytes
}

// Stats tallies engine activity for the performance and energy
// models.
type Stats struct {
	Instructions int64
	INT4MACOps   int64 // individual INT4 multiply-accumulates
	FP32MACOps   int64
	FilterOps    int64 // comparator evaluations
	SFUOps       int64 // special-function evaluations
	BufMoves     int64 // buffer-to-buffer transfers (bytes)
	ReturnBytes  int64 // bytes returned to the host
	DRAM         dram.Stats
	// Busy cycles per unit, in DRAM clock cycles.
	ScreenerBusy int64
	ExecutorBusy int64
	// Phases attributes the unit-busy cycles above to pipeline
	// phases, using the compiler's Op tags.
	Phases PhaseCycles
}

// Result summarizes one program execution.
type Result struct {
	Cycles  int64 // total elapsed DRAM clock cycles
	Seconds float64
	Stats   Stats
}

// spanTrack coalesces back-to-back same-name spans on one trace
// track, so a 4096-load streaming sweep renders as a handful of solid
// bars instead of drowning the viewer in burst-sized slivers.
type spanTrack struct {
	tid   int
	open  bool
	name  string
	start int64
	end   int64
	bytes int64
}

// Engine simulates one rank's ENMC logic.
type Engine struct {
	cfg    Config
	ch     *dram.Channel
	trace  io.Writer
	tracer *telemetry.Tracer
	tracks [3]spanTrack // screener, executor, dram

	regs [isa.NumRegs]uint64

	ctrlTime     int64 // controller decode frontier (dram cycles)
	screenerFree int64
	executorFree int64
	// Double-buffer backpressure: completion time of the
	// before-previous compute on each unit; a new load for a unit may
	// not start earlier (only two tile buffers exist).
	screenerPrev [2]int64
	executorPrev [2]int64

	stats Stats
}

// New builds an idle engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch, err := dram.NewChannel(cfg.DRAM, true)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, ch: ch}, nil
}

// Reg returns a status register value (QUERY from the host side).
func (e *Engine) Reg(r isa.Reg) uint64 { return e.regs[r] }

// SetTrace directs a per-instruction execution trace to w (nil
// disables tracing). Each line carries the unit frontiers after the
// instruction, in DRAM cycles — the waveform-level view a bring-up
// engineer wants.
func (e *Engine) SetTrace(w io.Writer) { e.trace = w }

// SetTracer records structured spans on tr (nil disables): one
// coalesced span per pipeline-phase burst on the Screener, Executor
// and DRAM tracks, in DRAM-cycle ticks. The tracer's timebase is set
// from the DRAM clock so the exported Chrome trace displays in real
// time.
func (e *Engine) SetTracer(tr *telemetry.Tracer) {
	e.tracer = tr
	e.tracks = [3]spanTrack{
		{tid: telemetry.TrackScreener},
		{tid: telemetry.TrackExecutor},
		{tid: telemetry.TrackDRAM},
	}
	if tr != nil {
		// ticks (DRAM cycles) per microsecond.
		tr.SetTimebase(1 / (e.cfg.DRAM.CyclesToSeconds(1) * 1e6))
		tr.SetThreadName(telemetry.TrackScreener, "screener")
		tr.SetThreadName(telemetry.TrackExecutor, "executor")
		tr.SetThreadName(telemetry.TrackDRAM, "dram")
	}
}

// span records [start,end) on a track, merging into the open span
// when it abuts with the same name.
func (e *Engine) span(track int, name string, start, end, bytes int64) {
	if e.tracer == nil || end <= start {
		return
	}
	t := &e.tracks[track]
	if t.open && t.name == name && start <= t.end {
		if end > t.end {
			t.end = end
		}
		t.bytes += bytes
		return
	}
	e.flushSpan(track)
	*t = spanTrack{tid: t.tid, open: true, name: name, start: start, end: end, bytes: bytes}
}

func (e *Engine) flushSpan(track int) {
	t := &e.tracks[track]
	if !t.open {
		return
	}
	e.tracer.Add(telemetry.Span{
		Name: t.name, Cat: "sim", TID: t.tid,
		Start: t.start, Dur: t.end - t.start, Bytes: t.bytes,
	})
	t.open = false
}

func (e *Engine) flushSpans() {
	if e.tracer == nil {
		return
	}
	for i := range e.tracks {
		e.flushSpan(i)
	}
}

// enmcCycles converts n ENMC logic cycles to DRAM cycles.
func (e *Engine) enmcCycles(n int64) int64 { return n * int64(e.cfg.ClockRatio) }

// unitFor maps a buffer to the unit that owns it.
func bufUnit(b isa.Buffer) int {
	switch b {
	case isa.BufFeatINT4, isa.BufWgtINT4, isa.BufPsumINT4, isa.BufIndex:
		return 0 // Screener
	default:
		return 1 // Executor
	}
}

// Run executes the program to completion and returns timing/activity.
// Engines are reusable: each Run continues from the current DRAM
// clock (call Elapsed for cumulative time).
func (e *Engine) Run(prog []Op) (Result, error) {
	start := e.maxTime()
	for i, op := range prog {
		if err := op.I.Validate(); err != nil {
			return Result{}, fmt.Errorf("enmc: op %d: %w", i, err)
		}
		if op.SyncS2E && e.screenerFree > e.executorFree {
			e.executorFree = e.screenerFree
		}
		e.exec(op)
		if e.trace != nil {
			fmt.Fprintf(e.trace, "%6d  ctrl=%-10d scr=%-10d exe=%-10d dram=%-10d %s\n",
				i, e.ctrlTime, e.screenerFree, e.executorFree, e.ch.Horizon(), op.I)
		}
	}
	end := e.maxTime()
	e.ch.AdvanceTo(end)
	e.flushSpans()
	res := Result{Cycles: end - start, Seconds: e.cfg.DRAM.CyclesToSeconds(end - start)}
	e.stats.DRAM = e.ch.Stats()
	res.Stats = e.stats
	return res, nil
}

// Elapsed returns the total DRAM cycles since engine creation.
func (e *Engine) Elapsed() int64 { return e.maxTime() }

func (e *Engine) maxTime() int64 {
	t := e.ctrlTime
	if e.screenerFree > t {
		t = e.screenerFree
	}
	if e.executorFree > t {
		t = e.executorFree
	}
	if n := e.ch.Horizon(); n > t {
		t = n
	}
	return t
}

// exec dispatches one instruction.
func (e *Engine) exec(op Op) {
	in := op.I
	nbytes := op.payload(e.cfg.BufBytes)
	e.stats.Instructions++
	// Decoding costs one ENMC cycle of controller time.
	e.ctrlTime += e.enmcCycles(1)

	switch in.Op {
	case isa.OpNOP:
		// Decode cost only.

	case isa.OpREG:
		if in.RW {
			e.regs[in.Reg] = in.Data
		}
		e.regs[isa.RegInstrCount]++

	case isa.OpLDR:
		e.load(in.Buf0, in.Data, nbytes, op.Phase)

	case isa.OpSTR:
		e.store(in.Buf0, in.Data, nbytes, op.Phase)

	case isa.OpMOVE:
		// Buffer-to-buffer transfer on the unit owning the source,
		// one ENMC cycle per 64 B lane.
		unit := bufUnit(in.Buf1)
		cycles := e.enmcCycles(int64((nbytes + 63) / 64))
		e.occupy(unit, e.ctrlTime, cycles, op.Phase)
		e.stats.BufMoves += int64(nbytes)

	case isa.OpMULADDINT4, isa.OpADDINT4, isa.OpMULINT4:
		elems := int64(nbytes * 2) // packed nibbles
		cycles := e.enmcCycles(ceilDiv(elems, int64(e.cfg.INT4MACs)))
		e.computeOn(0, cycles, op.Phase)
		e.stats.INT4MACOps += elems

	case isa.OpMULADDFP32, isa.OpADDFP32, isa.OpMULFP32:
		elems := int64(nbytes / 4)
		cycles := e.enmcCycles(ceilDiv(elems, int64(e.cfg.FP32MACs)))
		e.computeOn(1, cycles, op.Phase)
		e.stats.FP32MACOps += elems

	case isa.OpFILTER:
		elems := int64(nbytes / 4) // int32 partial sums
		cycles := e.enmcCycles(ceilDiv(elems, int64(e.cfg.FilterWidth)))
		// The comparator array sits with whichever unit owns the
		// filtered PSUM: the Screener on ENMC, the FP32 datapath on
		// homogeneous baselines.
		e.computeOn(bufUnit(in.Buf0), cycles, op.Phase)
		e.stats.FilterOps += elems

	case isa.OpSOFTMAX, isa.OpSIGMOID:
		elems := int64(nbytes / 4)
		cycles := e.enmcCycles(ceilDiv(elems, int64(e.cfg.SFUWidth)))
		e.computeOn(1, cycles, op.Phase)
		e.stats.SFUOps += elems

	case isa.OpBARRIER:
		t := e.maxTime()
		e.ctrlTime = t
		e.screenerFree = t
		e.executorFree = t

	case isa.OpRETURN:
		// Output buffer travels to the host over the channel; the
		// host-side link is not this rank's bottleneck, so charge the
		// executor a drain latency and count the bytes.
		cycles := e.enmcCycles(int64((nbytes + 63) / 64))
		e.occupy(1, e.ctrlTime, cycles, op.Phase)
		e.stats.ReturnBytes += int64(nbytes)

	case isa.OpCLR:
		t := e.maxTime()
		e.ctrlTime = t
		e.screenerFree = t
		e.executorFree = t
		for i := range e.regs {
			e.regs[i] = 0
		}

	default:
		panic(fmt.Sprintf("enmc: unhandled opcode %v", in.Op))
	}
}

// load streams one tile of nbytes from DRAM into buf.
func (e *Engine) load(buf isa.Buffer, addr uint64, nbytes int, phase Phase) {
	unit := bufUnit(buf)
	// The DRAM request cannot be issued before the instruction is
	// decoded.
	gate := e.ctrlTime
	// Double-buffer backpressure: with two tile buffers, the load for
	// tile n may not begin before tile n-2's compute finished.
	if unit == 0 {
		if e.screenerPrev[0] > gate {
			gate = e.screenerPrev[0]
		}
	} else {
		if e.executorPrev[0] > gate {
			gate = e.executorPrev[0]
		}
	}
	if e.ch.Now() < gate {
		e.ch.AdvanceTo(gate)
	}
	reqs := e.ch.SubmitRange(addr, int64(nbytes), false)
	e.ch.Drain()
	var done int64
	for _, r := range reqs {
		if r.Done > done {
			done = r.Done
		}
	}
	// The consuming unit cannot start its next compute before the
	// data arrived; model by raising the unit's ready frontier.
	if unit == 0 {
		if done > e.screenerFree {
			e.screenerFree = done
		}
	} else {
		if done > e.executorFree {
			e.executorFree = done
		}
	}
	if e.tracer != nil {
		e.span(2, dramReadName[phase], gate, done, int64(nbytes))
	}
}

// store writes one buffer back to DRAM (e.g. PSUM spill).
func (e *Engine) store(buf isa.Buffer, addr uint64, nbytes int, phase Phase) {
	unit := bufUnit(buf)
	if e.ch.Now() < e.ctrlTime {
		e.ch.AdvanceTo(e.ctrlTime)
	}
	issueAt := e.ch.Now()
	reqs := e.ch.SubmitRange(addr, int64(nbytes), true)
	e.ch.Drain()
	var done int64
	for _, r := range reqs {
		if r.Done > done {
			done = r.Done
		}
	}
	if unit == 0 {
		if done > e.screenerFree {
			e.screenerFree = done
		}
	} else {
		if done > e.executorFree {
			e.executorFree = done
		}
	}
	if e.tracer != nil {
		e.span(2, dramWriteName[phase], issueAt, done, int64(nbytes))
	}
}

// Pre-built span names so the traced path allocates nothing per op.
var dramReadName, dramWriteName [NumPhases]string

func init() {
	for i := range dramReadName {
		dramReadName[i] = "dram.read." + Phase(i).String()
		dramWriteName[i] = "dram.write." + Phase(i).String()
	}
}

// computeOn occupies a unit for a compute instruction and updates the
// double-buffer history.
func (e *Engine) computeOn(unit int, cycles int64, phase Phase) {
	var frees *int64
	var prev *[2]int64
	if unit == 0 {
		frees, prev = &e.screenerFree, &e.screenerPrev
	} else {
		frees, prev = &e.executorFree, &e.executorPrev
	}
	start := *frees
	if e.ctrlTime > start {
		start = e.ctrlTime
	}
	end := start + cycles
	*frees = end
	prev[0] = prev[1]
	prev[1] = end
	if unit == 0 {
		e.stats.ScreenerBusy += cycles
	} else {
		e.stats.ExecutorBusy += cycles
	}
	e.stats.Phases[phase] += cycles
	e.span(unit, phase.String(), start, end, 0)
}

// occupy blocks a unit for a fixed latency starting no earlier than
// at.
func (e *Engine) occupy(unit int, at, cycles int64, phase Phase) {
	var frees *int64
	if unit == 0 {
		frees = &e.screenerFree
	} else {
		frees = &e.executorFree
	}
	start := *frees
	if at > start {
		start = at
	}
	*frees = start + cycles
	if unit == 0 {
		e.stats.ScreenerBusy += cycles
	} else {
		e.stats.ExecutorBusy += cycles
	}
	e.stats.Phases[phase] += cycles
	e.span(unit, phase.String(), start, *frees, 0)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
