package enmc

import (
	"bytes"
	"strings"
	"testing"

	"enmc/internal/isa"
)

func testCfg() Config {
	c := Default()
	c.DRAM.Rows = 1024
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.INT4MACs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	bad = Default()
	bad.BufBytes = 8
	if err := bad.Validate(); err == nil {
		t.Fatal("buffer smaller than burst accepted")
	}
}

func TestDefaultMatchesTable3(t *testing.T) {
	c := Default()
	if c.INT4MACs != 128 || c.FP32MACs != 16 || c.BufBytes != 256 {
		t.Fatalf("Table 3 mismatch: %+v", c)
	}
	// 400 MHz logic vs 1200 MHz DRAM clock.
	if c.ClockRatio != 3 {
		t.Fatalf("clock ratio = %d", c.ClockRatio)
	}
}

func TestBasicProgram(t *testing.T) {
	e, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	prog := []Op{
		{I: isa.Init(isa.RegVocab, 1000)},
		{I: isa.Ldr(isa.BufFeatINT4, 0)},
		{I: isa.Ldr(isa.BufWgtINT4, 4096)},
		{I: isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4)},
		{I: isa.Filter(isa.BufPsumINT4)},
		{I: isa.Ldr(isa.BufWgtFP32, 8192), SyncS2E: true},
		{I: isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32)},
		{I: isa.Simple(isa.OpSOFTMAX)},
		{I: isa.Move(isa.BufOutput, isa.BufPsumFP32)},
		{I: isa.Simple(isa.OpRETURN)},
		{I: isa.Simple(isa.OpBARRIER)},
	}
	res, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	s := res.Stats
	if s.Instructions != int64(len(prog)) {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if s.INT4MACOps != 512 { // 256 B of nibbles
		t.Fatalf("INT4 MACs = %d", s.INT4MACOps)
	}
	if s.FP32MACOps != 64 {
		t.Fatalf("FP32 MACs = %d", s.FP32MACOps)
	}
	if s.FilterOps != 64 || s.SFUOps != 64 {
		t.Fatalf("filter/SFU = %d/%d", s.FilterOps, s.SFUOps)
	}
	if s.DRAM.Reads != 3*4 { // three 256 B loads, 4 bursts each
		t.Fatalf("DRAM reads = %d", s.DRAM.Reads)
	}
	if e.Reg(isa.RegVocab) != 1000 {
		t.Fatal("INIT did not write register")
	}
}

func TestInvalidInstructionRejected(t *testing.T) {
	e, _ := New(testCfg())
	_, err := e.Run([]Op{{I: isa.Instruction{Op: isa.OpLDR, Buf0: isa.BufFeatINT4}}})
	if err == nil {
		t.Fatal("LDR without payload accepted")
	}
}

func TestCLRResetsRegisters(t *testing.T) {
	e, _ := New(testCfg())
	if _, err := e.Run([]Op{{I: isa.Init(isa.RegVocab, 7)}, {I: isa.Simple(isa.OpCLR)}}); err != nil {
		t.Fatal(err)
	}
	if e.Reg(isa.RegVocab) != 0 {
		t.Fatal("CLR did not reset registers")
	}
}

// TestDualModuleOverlap verifies the paper's key architectural claim:
// running the Screener and Executor in parallel (SyncS2E) beats full
// BARRIER serialization.
func TestDualModuleOverlap(t *testing.T) {
	mkProg := func(dual bool) []Op {
		var ops []Op
		emit := func(i isa.Instruction) { ops = append(ops, Op{I: i}) }
		// Two "items": screen item, then executor work for the item;
		// the screener of item 2 can overlap the executor of item 1.
		for item := 0; item < 2; item++ {
			for tile := 0; tile < 32; tile++ {
				emit(isa.Ldr(isa.BufWgtINT4, uint64(item*32+tile)*256))
				emit(isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4))
			}
			emit(isa.Filter(isa.BufPsumINT4))
			if dual {
				ops = append(ops, Op{I: isa.Ldr(isa.BufWgtFP32, 1<<20), SyncS2E: true})
			} else {
				emit(isa.Simple(isa.OpBARRIER))
				emit(isa.Ldr(isa.BufWgtFP32, 1<<20))
			}
			for c := 0; c < 32; c++ {
				emit(isa.Compute(isa.OpMULADDFP32, isa.BufFeatFP32, isa.BufWgtFP32))
			}
		}
		ops = append(ops, Op{I: isa.Simple(isa.OpBARRIER)})
		return ops
	}

	eDual, _ := New(testCfg())
	dual, err := eDual.Run(mkProg(true))
	if err != nil {
		t.Fatal(err)
	}
	eSer, _ := New(testCfg())
	serial, err := eSer.Run(mkProg(false))
	if err != nil {
		t.Fatal(err)
	}
	if dual.Cycles >= serial.Cycles {
		t.Fatalf("dual-module %d cycles not faster than serialized %d", dual.Cycles, serial.Cycles)
	}
}

// TestComputeBoundBackpressure: with a single INT4 MAC the engine is
// compute-bound and elapsed time must scale with MAC work, not memory.
func TestComputeBoundBackpressure(t *testing.T) {
	fast := testCfg()
	slow := testCfg()
	slow.INT4MACs = 1

	prog := func() []Op {
		var ops []Op
		for tile := 0; tile < 64; tile++ {
			ops = append(ops,
				Op{I: isa.Ldr(isa.BufWgtINT4, uint64(tile)*256)},
				Op{I: isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4)})
		}
		ops = append(ops, Op{I: isa.Simple(isa.OpBARRIER)})
		return ops
	}

	eFast, _ := New(fast)
	rFast, _ := eFast.Run(prog())
	eSlow, _ := New(slow)
	rSlow, _ := eSlow.Run(prog())
	// 512 MACs per tile on 1 MAC at 1/3 DRAM clock = 1536 dram
	// cycles per tile vs ~16 for the load: hugely compute-bound.
	if rSlow.Cycles < rFast.Cycles*10 {
		t.Fatalf("compute-bound run %d not ≫ memory-bound %d", rSlow.Cycles, rFast.Cycles)
	}
}

// TestStreamingIsMemoryBound: at Table 3 widths the screener keeps up
// with the rank bandwidth, so elapsed ≈ DRAM stream time.
func TestStreamingIsMemoryBound(t *testing.T) {
	e, _ := New(testCfg())
	var ops []Op
	const tiles = 256
	for tile := 0; tile < tiles; tile++ {
		ops = append(ops,
			Op{I: isa.Ldr(isa.BufWgtINT4, uint64(tile)*256)},
			Op{I: isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4)})
	}
	ops = append(ops, Op{I: isa.Simple(isa.OpBARRIER)})
	res, err := e.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	// Pure stream time: tiles×4 bursts × 4 cycles each = tiles×16.
	pure := int64(tiles * 16)
	if res.Cycles > pure*3/2 {
		t.Fatalf("streaming run %d cycles, pure stream %d — not memory-bound", res.Cycles, pure)
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	e, _ := New(testCfg())
	r1, err := e.Run([]Op{{I: isa.Ldr(isa.BufWgtINT4, 0)}, {I: isa.Simple(isa.OpBARRIER)}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run([]Op{{I: isa.Ldr(isa.BufWgtINT4, 256)}, {I: isa.Simple(isa.OpBARRIER)}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles <= 0 || r2.Cycles <= 0 {
		t.Fatal("per-run cycles must be positive")
	}
	if e.Elapsed() < r1.Cycles+r2.Cycles {
		t.Fatalf("elapsed %d < %d+%d", e.Elapsed(), r1.Cycles, r2.Cycles)
	}
}

func TestSecondsConversion(t *testing.T) {
	e, _ := New(testCfg())
	res, _ := e.Run([]Op{{I: isa.Ldr(isa.BufWgtINT4, 0)}, {I: isa.Simple(isa.OpBARRIER)}})
	want := float64(res.Cycles) / (testCfg().DRAM.ClockMHz * 1e6)
	if res.Seconds != want {
		t.Fatalf("seconds = %v, want %v", res.Seconds, want)
	}
}

func TestTrace(t *testing.T) {
	e, _ := New(testCfg())
	var buf bytes.Buffer
	e.SetTrace(&buf)
	prog := []Op{
		{I: isa.Ldr(isa.BufWgtINT4, 0)},
		{I: isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4)},
		{I: isa.Simple(isa.OpBARRIER)},
	}
	if _, err := e.Run(prog); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("trace lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "MUL_ADD_INT4") || !strings.Contains(lines[1], "scr=") {
		t.Fatalf("trace line malformed: %q", lines[1])
	}
	// Disabling stops output.
	e.SetTrace(nil)
	if _, err := e.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("trace kept writing after disable: %d lines", got)
	}
}

func TestPartialPayloadScalesWork(t *testing.T) {
	e, _ := New(testCfg())
	res, err := e.Run([]Op{
		{I: isa.Ldr(isa.BufWgtINT4, 0), Bytes: 64},
		{I: isa.Compute(isa.OpMULADDINT4, isa.BufFeatINT4, isa.BufWgtINT4), Bytes: 64},
		{I: isa.Simple(isa.OpBARRIER)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.INT4MACOps != 128 { // 64 bytes → 128 nibbles
		t.Fatalf("partial tile MACs = %d", res.Stats.INT4MACOps)
	}
	if res.Stats.DRAM.Reads != 1 {
		t.Fatalf("partial tile bursts = %d", res.Stats.DRAM.Reads)
	}
}

func TestStoreAndMoveOps(t *testing.T) {
	e, _ := New(testCfg())
	res, err := e.Run([]Op{
		{I: isa.Ldr(isa.BufPsumFP32, 0)},
		{I: isa.Move(isa.BufOutput, isa.BufPsumFP32)},
		{I: isa.Str(isa.BufPsumFP32, 4096)},
		{I: isa.Simple(isa.OpBARRIER)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DRAM.Writes != 4 { // 256 B spill = 4 bursts
		t.Fatalf("DRAM writes = %d", res.Stats.DRAM.Writes)
	}
	if res.Stats.BufMoves != 256 {
		t.Fatalf("buffer moves = %d bytes", res.Stats.BufMoves)
	}
	if res.Stats.DRAM.BytesWritten != 256 {
		t.Fatalf("bytes written = %d", res.Stats.DRAM.BytesWritten)
	}
}

func TestStatsScaleMethod(t *testing.T) {
	s := Stats{
		Instructions: 10, INT4MACOps: 100, FP32MACOps: 50, FilterOps: 8,
		SFUOps: 4, BufMoves: 256, ReturnBytes: 64, ScreenerBusy: 30, ExecutorBusy: 20,
	}
	s.DRAM.Reads = 40
	s.DRAM.BytesRead = 2560
	s.DRAM.Cycles = 1000
	got := s.Scale(2.5)
	if got.Instructions != 25 || got.INT4MACOps != 250 || got.DRAM.Reads != 100 {
		t.Fatalf("scaled stats wrong: %+v", got)
	}
	if got.DRAM.Cycles != 2500 {
		t.Fatalf("scaled cycles = %d", got.DRAM.Cycles)
	}
	// Busy fraction preserved under scaling.
	before := float64(s.ScreenerBusy) / float64(s.DRAM.Cycles)
	after := float64(got.ScreenerBusy) / float64(got.DRAM.Cycles)
	if before != after {
		t.Fatalf("busy fraction changed: %v vs %v", before, after)
	}
}
