package report

// The validity gate: decides which ingested records are trustworthy
// enough to appear as trend points and which corpora are rejected
// outright. Policy (documented for humans in BENCHMARKING.md):
//
//   - schema >= 1 records MUST carry >= MinPasses interleaved passes
//     and a CV disclosure per shape; violating either rejects the
//     corpus (these are produced by our own harness — a short run is
//     an operator error, not a data point).
//   - a record whose worst per-metric CV exceeds DiscardCV is dropped
//     from the trend tables (the host was too noisy for the minima to
//     mean anything); between NoisyCV and DiscardCV it stays but is
//     flagged.
//   - legacy records (schema 0, pre-governance) are admitted but
//     labeled: they carry no noise statistics to judge.
//   - unknown future schemas reject the corpus (same reasoning as the
//     loadgen schema tag).
//
// Cross-machine refusal is not a gate class — it is applied at render
// time per record pair (see Comparable) because a record can be valid
// on its own yet incomparable to its neighbor.

import (
	"fmt"
	"sort"
)

// GateConfig are the governance thresholds. Zero values select the
// defaults so callers can construct it partially.
type GateConfig struct {
	MinPasses int     // required interleaved passes for schema>=1 (default 5)
	NoisyCV   float64 // flag threshold on max per-metric CV (default 0.10)
	DiscardCV float64 // discard threshold on max per-metric CV (default 0.35)
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MinPasses == 0 {
		c.MinPasses = 5
	}
	if c.NoisyCV == 0 {
		c.NoisyCV = 0.10
	}
	if c.DiscardCV == 0 {
		c.DiscardCV = 0.35
	}
	return c
}

// Class is the gate's verdict on one record.
type Class int

const (
	ClassOK        Class = iota // schema>=1, CV under the noisy threshold
	ClassLegacy                 // schema 0: admitted, no noise statistics
	ClassFlagged                // admitted, but max CV in (NoisyCV, DiscardCV]
	ClassDiscarded              // max CV > DiscardCV: excluded from trends
)

func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassLegacy:
		return "legacy"
	case ClassFlagged:
		return "flagged"
	case ClassDiscarded:
		return "discarded"
	}
	return "unknown"
}

// Admitted reports whether the record may appear in trend tables.
func (c Class) Admitted() bool { return c != ClassDiscarded }

// ShapeAssessment is the gate's verdict on one shape's result within
// a record. Noise is judged per shape, not per record: a run can be
// clean on the small shape while the large shape's working set
// suffers a bandwidth storm, and discarding the clean measurement
// along with the noisy one would throw away valid data.
type ShapeAssessment struct {
	Shape   string
	Class   Class
	MaxCV   float64 // worst per-metric CV; -1 when unrecorded
	Reasons []string
}

// Assessment is the gate's full output for one record.
type Assessment struct {
	Src     SourceRecord
	Class   Class   // worst class across shapes (summary/disclosure row)
	MaxCV   float64 // worst per-metric CV across shapes; -1 when unrecorded
	Reasons []string
	Shapes  []ShapeAssessment // in record result order
}

// ShapeClass returns the verdict for one shape (ClassDiscarded with
// no entry never happens: every result gets a ShapeAssessment).
func (a Assessment) ShapeClass(shape string) ShapeAssessment {
	for _, s := range a.Shapes {
		if s.Shape == shape {
			return s
		}
	}
	return ShapeAssessment{Shape: shape, Class: a.Class, MaxCV: a.MaxCV}
}

// severity orders classes for the worst-of reduction.
func severity(c Class) int {
	switch c {
	case ClassOK:
		return 0
	case ClassLegacy:
		return 1
	case ClassFlagged:
		return 2
	default:
		return 3
	}
}

// ApplyGate classifies every record. A returned error means the
// corpus as a whole is invalid and no report should be produced from
// it (CI check mode fails).
func ApplyGate(cfg GateConfig, recs []SourceRecord) ([]Assessment, error) {
	cfg = cfg.withDefaults()
	if len(recs) == 0 {
		return nil, fmt.Errorf("empty benchmark corpus: no trajectory records matched")
	}
	out := make([]Assessment, 0, len(recs))
	for _, sr := range recs {
		a := Assessment{Src: sr, MaxCV: -1}
		switch {
		case sr.Rec.Schema == 0:
			a.Class = ClassLegacy
			a.Reasons = append(a.Reasons, "pre-governance record: passes and CV unrecorded")
			for _, res := range sr.Rec.Results {
				a.Shapes = append(a.Shapes, ShapeAssessment{Shape: res.Shape, Class: ClassLegacy, MaxCV: -1})
			}
		case sr.Rec.Schema > PerfSchemaVersion:
			return nil, fmt.Errorf("%s: unknown record schema %d (this tool understands <= %d)",
				sr.Ref(), sr.Rec.Schema, PerfSchemaVersion)
		default: // schema 1
			for _, res := range sr.Rec.Results {
				if res.Passes < cfg.MinPasses {
					return nil, fmt.Errorf("%s: shape %s ran %d interleaved passes, governance requires >= %d",
						sr.Ref(), res.Shape, res.Passes, cfg.MinPasses)
				}
				if len(res.CV) == 0 {
					return nil, fmt.Errorf("%s: shape %s carries no CV disclosure (schema %d requires it)",
						sr.Ref(), res.Shape, sr.Rec.Schema)
				}
				sa := ShapeAssessment{Shape: res.Shape, MaxCV: -1}
				for _, m := range sortedCVKeys(res.CV) {
					if cv := res.CV[m]; cv > sa.MaxCV {
						sa.MaxCV = cv
					}
				}
				switch {
				case sa.MaxCV > cfg.DiscardCV:
					sa.Class = ClassDiscarded
					sa.Reasons = append(sa.Reasons,
						fmt.Sprintf("%s: max CV %.1f%% exceeds discard threshold %.1f%%: host too noisy, excluded from trends",
							res.Shape, 100*sa.MaxCV, 100*cfg.DiscardCV))
				case sa.MaxCV > cfg.NoisyCV:
					sa.Class = ClassFlagged
					sa.Reasons = append(sa.Reasons,
						fmt.Sprintf("%s: max CV %.1f%% exceeds noise threshold %.1f%%", res.Shape, 100*sa.MaxCV, 100*cfg.NoisyCV))
				default:
					sa.Class = ClassOK
				}
				if sa.MaxCV > a.MaxCV {
					a.MaxCV = sa.MaxCV
				}
				if severity(sa.Class) > severity(a.Class) {
					a.Class = sa.Class
				}
				a.Reasons = append(a.Reasons, sa.Reasons...)
				a.Shapes = append(a.Shapes, sa)
			}
		}
		out = append(out, a)
	}
	return out, nil
}

func sortedCVKeys(cv map[string]float64) []string {
	ks := make([]string, 0, len(cv))
	for k := range cv {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
