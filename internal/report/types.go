// Package report is the benchmark-governance pipeline: it ingests the
// repo's perf-trajectory files (BENCH_*.json, appended by
// `enmc-bench -perf`) and load-test reports (`enmc-loadgen -log-json`),
// applies a validity gate (interleaved-pass counts, per-metric
// coefficient of variation, machine-fingerprint matching), and renders
// the committed BENCHMARK.md — a deterministic, regenerable document
// whose staleness CI can detect with a byte diff.
//
// The package owns the canonical schema of both input corpora so the
// producers (cmd/enmc-bench, the report parser) cannot drift apart.
package report

import "strconv"

// Metric name keys used in PerfResult.CV. Kept as constants so the
// gate, the renderer, and the bench harness agree on spelling.
const (
	MetricScreen       = "screen_ns_op"
	MetricClassify     = "classify_ns_op"
	MetricClassifyInto = "classify_into_ns_op"
	MetricBatch        = "batch_ns"

	// Wire-codec metrics (`enmc-bench -wire` shapes): binary frame
	// and JSON encode/decode round trips of the cluster screen RPC.
	MetricWireEncode     = "wire_encode_ns_op"
	MetricWireDecode     = "wire_decode_ns_op"
	MetricWireJSONEncode = "wire_json_encode_ns_op"
	MetricWireJSONDecode = "wire_json_decode_ns_op"

	// Streaming-decode metrics (`enmc-bench -decode` shapes): one
	// screened autoregressive step, with and without the cross-step
	// candidate cache.
	MetricDecodeToken       = "decode_token_ns_op"
	MetricDecodeCachedToken = "decode_cached_token_ns_op"
)

// PerfSchemaVersion is the current BENCH_*.json record schema.
// Version history:
//
//	0 (field absent) — pre-governance records: min-over-passes timing
//	    only, no pass count, no noise statistics, no CPU model.
//	1 — adds passes, per-metric coefficient of variation across the
//	    interleaved passes, and the recording machine's CPU model.
const PerfSchemaVersion = 1

// PerfResult is the measured hot-path profile of one serving shape,
// one array element of a PerfRecord. ns/op values are the minimum
// over Passes interleaved timing passes (see cmd/enmc-bench/perf.go
// for why minimum, not mean).
type PerfResult struct {
	Shape            string  `json:"shape"`
	L                int     `json:"l"`
	D                int     `json:"d"`
	K                int     `json:"k"`
	M                int     `json:"m"`
	ScreenNsOp       float64 `json:"screen_ns_op"`
	ClassifyNsOp     float64 `json:"classify_ns_op"`
	ClassifyIntoNsOp float64 `json:"classify_into_ns_op"`
	AllocsOp         float64 `json:"allocs_op"` // steady-state ClassifyApproxInto
	BatchQPS         float64 `json:"batch_qps"` // ClassifyBatchVisitCtx, batch 8

	// Wire-codec measurements (`enmc-bench -wire` shapes): one screen
	// RPC round trip's encode+decode cost and payload size in each
	// codec, request and response summed. A result carrying these is a
	// wire shape — it renders in its own trend table, not the kernel
	// one — and the Δ the acceptance bar cares about (binary vs JSON)
	// is computed WITHIN one row, so it stays valid even across
	// machine-fingerprint changes.
	WireEncodeNsOp     float64 `json:"wire_encode_ns_op,omitempty"`
	WireDecodeNsOp     float64 `json:"wire_decode_ns_op,omitempty"`
	WireJSONEncodeNsOp float64 `json:"wire_json_encode_ns_op,omitempty"`
	WireJSONDecodeNsOp float64 `json:"wire_json_decode_ns_op,omitempty"`
	WireBinaryBytes    int     `json:"wire_binary_bytes,omitempty"`
	WireJSONBytes      int     `json:"wire_json_bytes,omitempty"`

	// Streaming-decode measurements (`enmc-bench -decode` shapes): one
	// screened autoregressive decode step with the candidate cache off
	// and on, plus the quality/locality companions that make the cached
	// number interpretable — the measured cache hit rate and windowed
	// candidate overlap behind it, and the screened-vs-full agreement
	// BLEU of whole decoded sequences. A result carrying these is a
	// decode shape and renders in its own trend table; the Δ that
	// matters (cached vs uncached) is computed WITHIN one row, so it
	// survives machine-fingerprint changes.
	DecodeTokenNsOp       float64 `json:"decode_token_ns_op,omitempty"`
	DecodeCachedTokenNsOp float64 `json:"decode_cached_token_ns_op,omitempty"`
	DecodeCacheHitRate    float64 `json:"decode_cache_hit_rate,omitempty"`
	DecodeOverlap         float64 `json:"decode_overlap,omitempty"`
	DecodeAgreementBLEU   float64 `json:"decode_agreement_bleu,omitempty"`

	// Governance fields (schema >= 1).
	Passes int `json:"passes,omitempty"` // interleaved timing passes behind the minima

	// CV maps metric name (Metric* constants) to the coefficient of
	// variation (stddev/mean) of that metric's per-pass minima — the
	// run's own noise disclosure. A high CV means the pass minima
	// disagreed, i.e. the host was too noisy for the numbers to be
	// trusted as a trend point.
	CV map[string]float64 `json:"cv,omitempty"`
}

// IsWire reports whether the result is a wire-codec shape rather than
// a kernel shape; the renderer routes the two to different tables.
func (r PerfResult) IsWire() bool { return r.WireEncodeNsOp > 0 }

// IsDecode reports whether the result is a streaming-decode shape;
// like wire shapes, these render in their own trend table.
func (r PerfResult) IsDecode() bool { return r.DecodeTokenNsOp > 0 }

// PerfRecord is one `enmc-bench -perf` invocation. A trajectory file
// (BENCH_*.json) holds a JSON array of them, oldest first; the trend
// tables in BENCHMARK.md are these records in file order.
type PerfRecord struct {
	Schema     int          `json:"schema,omitempty"` // 0 = legacy pre-governance
	Date       string       `json:"date"`
	Label      string       `json:"label"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	CPUModel   string       `json:"cpu_model,omitempty"` // schema >= 1
	Results    []PerfResult `json:"results"`
}

// Fingerprint summarizes the machine/toolchain identity of a record.
// Two records are trend-comparable only when their fingerprints are
// equal: cross-machine ns/op ratios measure the machines, not the
// code. Legacy records (no CPU model recorded) compare only among
// themselves — an empty CPUModel never matches a recorded one.
func (r PerfRecord) Fingerprint() string {
	return r.GoVersion + "|" + strconv.Itoa(r.GOMAXPROCS) + "|" + r.CPUModel
}

// Comparable reports whether a trend ratio between two records is
// valid under the cross-machine rule.
func Comparable(a, b PerfRecord) bool {
	return a.Fingerprint() == b.Fingerprint()
}

// LoadSchemaV1 and LoadSchemaV2 are the accepted
// `enmc-loadgen -log-json` schema tags. The parser rejects any other
// value (including absence): a report whose schema we do not
// recognize could be silently misread, which is exactly what the
// version field exists to prevent. v2 adds bytes-on-wire accounting
// (bytes_out/bytes_in and wire MB/s, total and per target); v1
// reports remain ingestible — their wire columns render as absent.
const (
	LoadSchemaV1 = "enmc-loadgen/v1"
	LoadSchemaV2 = "enmc-loadgen/v2"
)

// LoadTarget is the per-target breakdown inside a loadgen report.
type LoadTarget struct {
	Target           string   `json:"target"`
	Requests         int      `json:"requests"`
	OK               int      `json:"ok"`
	Errors           int      `json:"errors"`
	Partial          int      `json:"partial"`
	WithRequestID    int      `json:"with_request_id"`
	SampleRequestIDs []string `json:"sample_request_ids,omitempty"`
	RetryAfter429    int      `json:"retry_after_429"`
	RetryAfterValues []string `json:"retry_after_values,omitempty"`
	P50Ms            float64  `json:"p50_ms,omitempty"`
	P99Ms            float64  `json:"p99_ms,omitempty"`

	// Wire accounting (schema v2): request/response bytes this target
	// moved and its aggregate throughput over the run.
	BytesOut     int64   `json:"bytes_out,omitempty"`
	BytesIn      int64   `json:"bytes_in,omitempty"`
	WireMBPerSec float64 `json:"wire_mb_per_sec,omitempty"`
}

// LoadReport is one `enmc-loadgen -log-json` document — the canonical
// schema shared with cmd/enmc-loadgen's encoder.
type LoadReport struct {
	Schema          string         `json:"schema"`
	Scenario        string         `json:"scenario,omitempty"`
	Date            string         `json:"date,omitempty"`
	Requests        int            `json:"requests"`
	DurationSeconds float64        `json:"duration_seconds"`
	OK              int            `json:"ok"`
	Classifications int            `json:"classifications"`
	PerSecond       float64        `json:"classifications_per_sec"`
	Degraded        int            `json:"degraded"`
	Partial         int            `json:"partial"`
	Errors          map[string]int `json:"errors,omitempty"`
	P50Ms           float64        `json:"p50_ms,omitempty"`
	P90Ms           float64        `json:"p90_ms,omitempty"`
	P99Ms           float64        `json:"p99_ms,omitempty"`
	MaxMs           float64        `json:"max_ms,omitempty"`
	MaxSuccessGapMs float64        `json:"max_success_gap_ms"`

	// Wire accounting (schema v2): total request bytes sent, response
	// bytes received, and combined MB/s over the run — what makes the
	// JSON-vs-binary payload savings visible in the governed tables.
	BytesOut     int64   `json:"bytes_out,omitempty"`
	BytesIn      int64   `json:"bytes_in,omitempty"`
	WireMBPerSec float64 `json:"wire_mb_per_sec,omitempty"`

	// Decode is present only for `-decode` scenario runs (streaming
	// /v1/decode sessions). Additive: classify reports omit it, so
	// existing v2 documents are unchanged byte-for-byte.
	Decode *LoadDecode `json:"decode,omitempty"`

	// Tenants is present only for `-tenant-mix` runs: the per-tenant
	// QoS breakdown (who got served, who got throttled or shed, and at
	// what latency). Additive like Decode — single-tenant reports omit
	// it unchanged.
	Tenants []LoadTenant `json:"tenants,omitempty"`

	Targets []LoadTarget `json:"targets"`
}

// LoadTenant is one tenant's slice of a `-tenant-mix` loadgen run.
// Status429/Status503 split the rejections the QoS layer hands out
// (quota/shed vs draining/backend), the split the qos-smoke asserts
// on: batch tenants absorb the 429s, interactive tenants see none.
type LoadTenant struct {
	Tenant   string `json:"tenant"`
	Class    string `json:"class,omitempty"`
	Weight   int    `json:"weight,omitempty"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`

	Status429 int `json:"status_429"`
	Status503 int `json:"status_503"`
	// OtherErrors counts transport failures and any status outside
	// {200, 429, 503}.
	OtherErrors int `json:"other_errors,omitempty"`
	Degraded    int `json:"degraded,omitempty"`

	P50Ms float64 `json:"p50_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
}

// LoadDecode is the streaming-session breakdown of a `-decode`
// loadgen run: session and token accounting plus the two latency
// distributions that matter for a token stream — time to first token
// and the inter-token gap.
type LoadDecode struct {
	Sessions int `json:"sessions"`
	OK       int `json:"ok"`
	// DroppedStreams counts sessions whose stream ended without a
	// terminal done frame (transport cut mid-stream) — the number the
	// cluster failover smoke asserts is zero.
	DroppedStreams int     `json:"dropped_streams"`
	Evicted        int     `json:"evicted"`
	Tokens         int     `json:"tokens"`
	TokensPerSec   float64 `json:"tokens_per_sec"`

	TokensPerSessionMean float64 `json:"tokens_per_session_mean"`
	TokensPerSessionMin  int     `json:"tokens_per_session_min"`
	TokensPerSessionMax  int     `json:"tokens_per_session_max"`

	TTFTP50Ms float64 `json:"ttft_p50_ms"`
	TTFTP90Ms float64 `json:"ttft_p90_ms"`
	TTFTP99Ms float64 `json:"ttft_p99_ms"`
	TTFTMaxMs float64 `json:"ttft_max_ms"`

	GapP50Ms float64 `json:"gap_p50_ms"`
	GapP99Ms float64 `json:"gap_p99_ms"`
	GapMaxMs float64 `json:"gap_max_ms"`
}
