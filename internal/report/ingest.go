package report

// Corpus ingestion: glob the trajectory and load-test files, parse
// them strictly, and pin a deterministic ordering so the rendered
// report is byte-stable across regenerations. File names sort
// lexically and both corpora use dated names (BENCH_YYYY-MM-DD.json,
// <scenario>_YYYY-MM-DD.json), so lexical order is chronological
// order.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SourceRecord is one PerfRecord tagged with where it came from, so
// gate findings and disclosure rows can name their source.
type SourceRecord struct {
	File  string // path as globbed
	Index int    // position within the file's array, 0-based
	Rec   PerfRecord
}

// Ref is the record's stable human-readable identity in the report.
func (s SourceRecord) Ref() string {
	return fmt.Sprintf("%s#%d", filepath.Base(s.File), s.Index)
}

// SourceLoad is one loadgen report tagged with its file.
type SourceLoad struct {
	File string
	Rep  LoadReport
}

// expandGlobs resolves comma-separated glob patterns to a sorted,
// deduplicated file list. A pattern that matches nothing is not an
// error — callers decide whether an empty corpus is acceptable — but
// a malformed pattern is.
func expandGlobs(patterns string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		matches, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("bad glob %q: %w", pat, err)
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				files = append(files, m)
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

// LoadBench reads every trajectory file matched by the comma-separated
// glob patterns. Parsing is strict: a file that is not a well-formed
// JSON array of records (truncated writes included) rejects the whole
// corpus — a report silently built on half an input is worse than no
// report.
func LoadBench(patterns string) ([]SourceRecord, error) {
	files, err := expandGlobs(patterns)
	if err != nil {
		return nil, err
	}
	var out []SourceRecord
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var recs []PerfRecord
		dec := json.NewDecoder(bytes.NewReader(data))
		if err := dec.Decode(&recs); err != nil {
			return nil, fmt.Errorf("%s: malformed trajectory: %v", f, err)
		}
		if err := rejectTrailing(dec, f); err != nil {
			return nil, err
		}
		for i, r := range recs {
			if r.Date == "" {
				return nil, fmt.Errorf("%s#%d: record has no date", filepath.Base(f), i)
			}
			if len(r.Results) == 0 {
				return nil, fmt.Errorf("%s#%d: record has no results", filepath.Base(f), i)
			}
			out = append(out, SourceRecord{File: f, Index: i, Rec: r})
		}
	}
	return out, nil
}

// LoadLoadgen reads every loadgen report matched by the patterns and
// enforces the schema version: a missing or unrecognized schema tag
// rejects the corpus so a future loadgen format change can never be
// silently misread as today's fields.
func LoadLoadgen(patterns string) ([]SourceLoad, error) {
	files, err := expandGlobs(patterns)
	if err != nil {
		return nil, err
	}
	var out []SourceLoad
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var rep LoadReport
		dec := json.NewDecoder(bytes.NewReader(data))
		if err := dec.Decode(&rep); err != nil {
			return nil, fmt.Errorf("%s: malformed loadgen report: %v", f, err)
		}
		if err := rejectTrailing(dec, f); err != nil {
			return nil, err
		}
		if rep.Schema != LoadSchemaV1 && rep.Schema != LoadSchemaV2 {
			return nil, fmt.Errorf("%s: unsupported loadgen schema %q (want %q or %q)",
				filepath.Base(f), rep.Schema, LoadSchemaV1, LoadSchemaV2)
		}
		if rep.Requests <= 0 {
			return nil, fmt.Errorf("%s: loadgen report carries no requests", filepath.Base(f))
		}
		out = append(out, SourceLoad{File: f, Rep: rep})
	}
	// Deterministic table order: scenario, then date, then file name as
	// the final tiebreak (file list is already sorted, so this sort is
	// stable across regenerations regardless of glob grouping).
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rep.Scenario != b.Rep.Scenario {
			return a.Rep.Scenario < b.Rep.Scenario
		}
		if a.Rep.Date != b.Rep.Date {
			return a.Rep.Date < b.Rep.Date
		}
		return a.File < b.File
	})
	return out, nil
}

// rejectTrailing fails when a decoded document is followed by more
// content — the concatenated-document corruption a truncated rewrite
// plus append can produce.
func rejectTrailing(dec *json.Decoder, file string) error {
	if dec.More() {
		return fmt.Errorf("%s: trailing data after JSON document", file)
	}
	return nil
}
