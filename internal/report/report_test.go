package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops contents into dir under name and returns the path.
func writeFile(t *testing.T, dir, name, contents string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// goodRecord returns a schema-1 record that passes the gate.
func goodRecord(date, label, goVer, cpu string, passes int, cv float64) PerfRecord {
	return PerfRecord{
		Schema: 1, Date: date, Label: label, GoVersion: goVer, GOMAXPROCS: 1, CPUModel: cpu,
		Results: []PerfResult{{
			Shape: "wiki-lstm-33k", L: 33278, D: 1500, K: 375, M: 666,
			ScreenNsOp: 4e6, ClassifyNsOp: 5e6, ClassifyIntoNsOp: 5e6,
			AllocsOp: 0, BatchQPS: 170, Passes: passes,
			CV: map[string]float64{
				MetricScreen:       cv,
				MetricClassify:     cv / 2,
				MetricClassifyInto: cv / 2,
				MetricBatch:        cv / 2,
			},
		}},
	}
}

func marshalRecs(t *testing.T, recs ...PerfRecord) string {
	t.Helper()
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

func TestLoadBenchMalformedJSON(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":      "not json at all",
		"truncated":    `[{"date":"2026-08-06","label":"x","go_version":"go1.24.0","gomaxprocs":1,"results":[{"shape":"a"`,
		"wrong-shape":  `{"date":"2026-08-06"}`, // object, not array
		"trailing":     `[] []`,
		"no-date":      `[{"label":"x","go_version":"go1.24.0","gomaxprocs":1,"results":[{"shape":"a"}]}]`,
		"empty-record": `[{"date":"2026-08-06","label":"x","go_version":"go1.24.0","gomaxprocs":1,"results":[]}]`,
	}
	for name, contents := range cases {
		t.Run(name, func(t *testing.T) {
			sub := filepath.Join(dir, name)
			if err := os.Mkdir(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			writeFile(t, sub, "BENCH_bad.json", contents)
			if _, err := LoadBench(filepath.Join(sub, "*.json")); err == nil {
				t.Fatalf("%s: corrupt corpus was accepted", name)
			}
		})
	}
}

func TestGateRejectsTooFewPasses(t *testing.T) {
	rec := goodRecord("2026-08-07", "short run", "go1.24.0", "cpu-a", 3, 0.01)
	_, err := ApplyGate(GateConfig{}, []SourceRecord{{File: "BENCH_x.json", Rec: rec}})
	if err == nil {
		t.Fatal("schema-1 record with 3 passes passed the N>=5 gate")
	}
	if !strings.Contains(err.Error(), "passes") {
		t.Fatalf("rejection does not explain the pass count: %v", err)
	}
}

func TestGateRejectsMissingCV(t *testing.T) {
	rec := goodRecord("2026-08-07", "no cv", "go1.24.0", "cpu-a", 5, 0.01)
	rec.Results[0].CV = nil
	_, err := ApplyGate(GateConfig{}, []SourceRecord{{Rec: rec}})
	if err == nil {
		t.Fatal("schema-1 record without CV disclosure passed the gate")
	}
}

func TestGateRejectsUnknownSchema(t *testing.T) {
	rec := goodRecord("2026-08-07", "future", "go1.24.0", "cpu-a", 5, 0.01)
	rec.Schema = PerfSchemaVersion + 1
	_, err := ApplyGate(GateConfig{}, []SourceRecord{{Rec: rec}})
	if err == nil {
		t.Fatal("record from a future schema passed the gate")
	}
}

func TestGateClassesByCV(t *testing.T) {
	mk := func(cv float64) SourceRecord {
		return SourceRecord{Rec: goodRecord("2026-08-07", "x", "go1.24.0", "cpu-a", 5, cv)}
	}
	legacy := SourceRecord{Rec: PerfRecord{
		Date: "2026-08-06", Label: "old", GoVersion: "go1.24.0", GOMAXPROCS: 1,
		Results: []PerfResult{{Shape: "wiki-lstm-33k", ScreenNsOp: 1, ClassifyIntoNsOp: 1}},
	}}
	asmts, err := ApplyGate(GateConfig{}, []SourceRecord{legacy, mk(0.02), mk(0.2), mk(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{ClassLegacy, ClassOK, ClassFlagged, ClassDiscarded}
	for i, a := range asmts {
		if a.Class != want[i] {
			t.Errorf("record %d: class %v, want %v (maxCV %.2f)", i, a.Class, want[i], a.MaxCV)
		}
	}
	if asmts[3].Class.Admitted() {
		t.Error("discarded record still admitted to trends")
	}
	if !asmts[2].Class.Admitted() || !asmts[0].Class.Admitted() {
		t.Error("flagged/legacy records must stay admitted")
	}
}

// A record clean on one shape and stormy on another keeps the clean
// measurement in trends: the gate judges noise per shape, and the
// record-level verdict is the worst shape.
func TestGatePerShapeAdmission(t *testing.T) {
	rec := goodRecord("2026-08-07", "mixed", "go1.24.0", "cpu-a", 5, 0.02)
	rec.Results = append(rec.Results, PerfResult{
		Shape: "amazon-670k", L: 670091, D: 512, K: 128, M: 13401,
		ScreenNsOp: 36e6, ClassifyNsOp: 68e6, ClassifyIntoNsOp: 56e6,
		BatchQPS: 15, Passes: 5,
		CV: map[string]float64{MetricScreen: 0.52, MetricClassify: 0.41},
	})
	asmts, err := ApplyGate(GateConfig{}, []SourceRecord{{Rec: rec}})
	if err != nil {
		t.Fatal(err)
	}
	a := asmts[0]
	if a.Class != ClassDiscarded {
		t.Fatalf("record verdict %v, want worst-shape discarded", a.Class)
	}
	if got := a.ShapeClass("wiki-lstm-33k").Class; got != ClassOK {
		t.Errorf("clean shape classed %v, want ok", got)
	}
	if got := a.ShapeClass("amazon-670k").Class; got != ClassDiscarded {
		t.Errorf("stormy shape classed %v, want discarded", got)
	}

	dir := t.TempDir()
	writeFile(t, dir, "BENCH_mixed.json", marshalRecs(t, rec))
	rep, err := Build(GateConfig{}, filepath.Join(dir, "*.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	if !strings.Contains(out, "### wiki-lstm-33k") {
		t.Error("clean shape missing from trend tables")
	}
	if strings.Contains(out, "### amazon-670k") {
		t.Error("discarded shape still rendered a trend table")
	}
	if !strings.Contains(out, "amazon-670k: max CV 52.0%") {
		t.Error("disclosure missing the per-shape discard reason")
	}
}

func TestMixedGoVersionRefusedInTrend(t *testing.T) {
	dir := t.TempDir()
	a := goodRecord("2026-08-06", "first", "go1.22.0", "cpu-a", 5, 0.01)
	b := goodRecord("2026-08-07", "second", "go1.24.0", "cpu-a", 5, 0.01)
	writeFile(t, dir, "BENCH_2026-08-06.json", marshalRecs(t, a, b))
	rep, err := Build(GateConfig{}, filepath.Join(dir, "BENCH_*.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	if !strings.Contains(out, "n/c") {
		t.Fatal("trend table compared records across go versions; want n/c refusal")
	}
	if strings.Contains(out, "1.00×") {
		t.Fatal("a cross-machine ratio was rendered")
	}

	// Same fingerprint → the ratio must appear.
	c := goodRecord("2026-08-08", "third", "go1.24.0", "cpu-a", 5, 0.01)
	writeFile(t, dir, "BENCH_2026-08-06.json", marshalRecs(t, a, b, c))
	rep, err = Build(GateConfig{}, filepath.Join(dir, "BENCH_*.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	if out := rep.Render(); !strings.Contains(out, "1.00×") {
		t.Fatal("same-fingerprint adjacent records did not get a trend ratio")
	}
}

func TestCPUModelMismatchRefused(t *testing.T) {
	a := goodRecord("2026-08-06", "first", "go1.24.0", "cpu-a", 5, 0.01)
	b := goodRecord("2026-08-07", "second", "go1.24.0", "cpu-b", 5, 0.01)
	if Comparable(a, b) {
		t.Fatal("records on different CPUs reported comparable")
	}
	// Legacy records (no CPU recorded) never match a recorded one.
	b.CPUModel = ""
	if Comparable(a, b) {
		t.Fatal("record without CPU model compared against one with it")
	}
}

func TestDeterministicRendering(t *testing.T) {
	dir := t.TempDir()
	// Shapes intentionally in non-alphabetical order inside the record.
	rec := goodRecord("2026-08-06", "multi-shape", "go1.24.0", "cpu-a", 5, 0.01)
	rec.Results = append(rec.Results, PerfResult{
		Shape: "amazon-670k", L: 670091, D: 512, K: 128, M: 13401,
		ScreenNsOp: 3e7, ClassifyNsOp: 5e7, ClassifyIntoNsOp: 5e7, BatchQPS: 19,
		Passes: 5, CV: map[string]float64{MetricScreen: 0.01},
	})
	writeFile(t, dir, "BENCH_2026-08-06.json", marshalRecs(t, rec))
	loads := filepath.Join(dir, "loadgen")
	if err := os.Mkdir(loads, 0o755); err != nil {
		t.Fatal(err)
	}
	mkLoad := func(name, scenario, date string) {
		writeFile(t, loads, name, `{"schema":"enmc-loadgen/v1","scenario":"`+scenario+`","date":"`+date+
			`","requests":100,"duration_seconds":5,"ok":100,"classifications":100,"classifications_per_sec":20,`+
			`"degraded":0,"partial":0,"p50_ms":1,"p90_ms":2,"p99_ms":3,"max_ms":4,"max_success_gap_ms":50,"targets":[]}`)
	}
	// File names chosen so lexical file order differs from scenario order.
	mkLoad("z-first.json", "alpha-scenario", "2026-08-06")
	mkLoad("a-second.json", "zeta-scenario", "2026-08-06")

	build := func() string {
		rep, err := Build(GateConfig{}, filepath.Join(dir, "BENCH_*.json"), filepath.Join(loads, "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	first, second := build(), build()
	if first != second {
		t.Fatal("two renderings of the same corpus differ")
	}
	// Shape sections alphabetical.
	if strings.Index(first, "### amazon-670k") > strings.Index(first, "### wiki-lstm-33k") {
		t.Fatal("shape sections not in sorted order")
	}
	// Load scenarios sorted by scenario name, not file name.
	if strings.Index(first, "alpha-scenario") > strings.Index(first, "zeta-scenario") {
		t.Fatal("load-test rows not sorted by scenario")
	}
}

func TestLoadgenSchemaRejected(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"unknown-version": `{"schema":"enmc-loadgen/v99","requests":10,"ok":10,"targets":[]}`,
		"missing-schema":  `{"requests":10,"ok":10,"targets":[]}`,
		"malformed":       `{"schema":"enmc-loadgen/v1","requests":`,
		"no-requests":     `{"schema":"enmc-loadgen/v1","requests":0,"ok":0,"targets":[]}`,
	}
	for name, contents := range cases {
		t.Run(name, func(t *testing.T) {
			sub := filepath.Join(dir, name)
			if err := os.Mkdir(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			writeFile(t, sub, "run.json", contents)
			if _, err := LoadLoadgen(filepath.Join(sub, "*.json")); err == nil {
				t.Fatalf("%s: invalid loadgen report was accepted", name)
			}
		})
	}
}

func TestLoadgenValidAccepted(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "run.json",
		`{"schema":"enmc-loadgen/v1","scenario":"s","date":"2026-08-08","requests":10,"ok":10,"targets":[{"target":"h:1","requests":10,"ok":10,"errors":0,"partial":0,"with_request_id":10,"retry_after_429":0}]}`)
	loads, err := LoadLoadgen(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 1 || loads[0].Rep.Scenario != "s" || len(loads[0].Rep.Targets) != 1 {
		t.Fatalf("parsed report wrong: %+v", loads)
	}
}

func TestEmptyBenchCorpusRejected(t *testing.T) {
	if _, err := ApplyGate(GateConfig{}, nil); err == nil {
		t.Fatal("empty corpus passed the gate")
	}
	dir := t.TempDir()
	if _, err := Build(GateConfig{}, filepath.Join(dir, "BENCH_*.json"), ""); err == nil {
		t.Fatal("Build with zero matched trajectory files succeeded")
	}
}

func TestCheckStaleReport(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "BENCHMARK.md", "line one\nline two\n")
	if err := Check("line one\nline two\n", path); err != nil {
		t.Fatalf("current report reported stale: %v", err)
	}
	err := Check("line one\nline CHANGED\n", path)
	if err == nil {
		t.Fatal("stale report not detected")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("stale error does not locate the divergence: %v", err)
	}
	if err := Check("x", filepath.Join(dir, "missing.md")); err == nil {
		t.Fatal("missing committed report not treated as stale")
	}
	// Pure length difference (common prefix identical).
	if err := Check("line one\nline two\nline three\n", path); err == nil {
		t.Fatal("longer regeneration not detected as stale")
	}
}

// TestRenderDisclosure pins the disclosure table's key behaviors: the
// machine fingerprint, the gate verdicts, and the flagged marker in
// the trend table.
func TestRenderDisclosure(t *testing.T) {
	dir := t.TempDir()
	legacy := PerfRecord{
		Date: "2026-08-05", Label: "hand-written snapshot", GoVersion: "go1.24.0", GOMAXPROCS: 1,
		Results: []PerfResult{{Shape: "wiki-lstm-33k", ScreenNsOp: 8e6, ClassifyNsOp: 9e6, ClassifyIntoNsOp: 9e6}},
	}
	noisy := goodRecord("2026-08-07", "noisy host", "go1.24.0", "Example CPU @ 2.10GHz", 5, 0.2)
	writeFile(t, dir, "BENCH_2026-08-05.json", marshalRecs(t, legacy, noisy))
	rep, err := Build(GateConfig{}, filepath.Join(dir, "BENCH_*.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{
		"legacy", "flagged", "unrecorded", "Example CPU @ 2.10GHz", "20.0%", "†",
		"## Validity and machine-noise disclosure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestTenantTableRendered(t *testing.T) {
	rep := LoadReport{
		Schema: LoadSchemaV2, Scenario: "qos-smoke", Date: "2026-08-08",
		Requests: 100, OK: 80,
		Tenants: []LoadTenant{
			{Tenant: "alice", Class: "interactive", Weight: 8, Requests: 80, OK: 80, P50Ms: 2.5, P99Ms: 9.1},
			{Tenant: "bob", Class: "batch", Weight: 2, Requests: 20, OK: 0, Status429: 20},
		},
	}
	r := &Report{Loads: []SourceLoad{{File: "run.json", Rep: rep}}}
	var b strings.Builder
	r.tenantLoadTable(&b, r.Loads)
	out := b.String()
	for _, want := range []string{"| alice | interactive |", "| bob | batch |", "| 20 | 0 | 20 | 0 | 0 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tenant table missing %q:\n%s", want, out)
		}
	}

	// No tenants array → no table at all (single-tenant runs are
	// byte-identical to before).
	rep.Tenants = nil
	var b2 strings.Builder
	(&Report{}).tenantLoadTable(&b2, []SourceLoad{{Rep: rep}})
	if b2.Len() != 0 {
		t.Fatalf("tenant table rendered for a tenant-less report:\n%s", b2.String())
	}
}
