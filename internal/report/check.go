package report

// The stale-report gate: byte-compare a fresh rendering against the
// committed document and say *where* they diverge, so a CI failure is
// actionable without downloading artifacts.

import (
	"fmt"
	"os"
	"strings"
)

// Check compares rendered against the file at path. nil means the
// committed report is current. Any divergence (including a missing
// file) returns an error naming the first differing line.
func Check(rendered, path string) error {
	committed, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("stale report: cannot read %s: %v (run `make report`)", path, err)
	}
	if string(committed) == rendered {
		return nil
	}
	gotLines := strings.Split(string(committed), "\n")
	wantLines := strings.Split(rendered, "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			return fmt.Errorf("stale report: %s line %d differs from regenerated output\n  committed:   %q\n  regenerated: %q\nrun `make report` and commit the result",
				path, i+1, truncLine(gotLines[i]), truncLine(wantLines[i]))
		}
	}
	return fmt.Errorf("stale report: %s has %d lines, regenerated output has %d; run `make report` and commit the result",
		path, len(gotLines), len(wantLines))
}

func truncLine(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}
