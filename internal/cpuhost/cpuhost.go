// Package cpuhost models the CPU baseline of the evaluation — an
// Intel Xeon Platinum 8280 (28 cores @ 2.7 GHz, 6 × DDR4-2666
// channels, 128 GB/s, Section 6.2) — with a roofline model: execution
// time is the maximum of compute time at peak FLOP rate and transfer
// time at peak bandwidth, plus a fixed per-kernel software overhead.
// The paper's own Fig. 5(b) argues extreme classification is
// bandwidth-bound on exactly this roofline, so the model reproduces
// the CPU side of every performance figure.
package cpuhost

import (
	"enmc/internal/core"
	"enmc/internal/quant"
)

// Config describes the host processor.
type Config struct {
	Cores        int
	ClockGHz     float64
	FlopsPerCore float64 // FP32 FLOPs per cycle per core (FMA counted as 2)
	MemBWGBs     float64
	// KernelOverheadSec is the fixed software cost per offloaded
	// kernel (framework dispatch, page faults, synchronization); it
	// dominates tiny-batch latencies and is why NMP batch-1 speedups
	// are so large in Fig. 13.
	KernelOverheadSec float64
	// IntSpeedup is how much faster the CPU executes one quantized
	// MAC relative to an FP32 MAC (VNNI-style byte ops; modest).
	IntSpeedup float64
}

// Xeon8280 returns the paper's CPU baseline. Peak FP32:
// 28 cores × 2.7 GHz × 64 FLOPs/cycle (2×AVX-512 FMA) ≈ 4.8 TFLOP/s.
func Xeon8280() Config {
	return Config{
		Cores:             28,
		ClockGHz:          2.7,
		FlopsPerCore:      64,
		MemBWGBs:          128,
		KernelOverheadSec: 25e-6,
		IntSpeedup:        2,
	}
}

// PeakFlops returns peak FP32 FLOP/s.
func (c Config) PeakFlops() float64 {
	return float64(c.Cores) * c.ClockGHz * 1e9 * c.FlopsPerCore
}

// Time returns the roofline execution time for one kernel with the
// given operation tally.
func (c Config) Time(op core.OpCount) float64 {
	intAs := op.IntMACs
	if c.IntSpeedup > 0 {
		intAs /= c.IntSpeedup
	}
	flops := 2*(op.FP32MACs+intAs) + op.AddOps + 4*op.SFUOps // exp ≈ 4 FLOPs
	compute := flops / c.PeakFlops()
	transfer := op.Bytes / (c.MemBWGBs * 1e9)
	t := compute
	if transfer > t {
		t = transfer
	}
	return t + c.KernelOverheadSec
}

// TimeFull returns the time of full classification for a batch: the
// weight stream is shared across the batch (GEMM), compute scales
// with batch size.
func (c Config) TimeFull(l, d, batch int) float64 {
	per := core.FullClassificationCost(l, d)
	op := per.ScaleBy(float64(batch))
	op.Bytes = per.Bytes // weights reused across the batch
	return c.Time(op)
}

// TimeScreened returns the time of approximate-screening
// classification (screen + candidates-only) for a batch. Screening
// weights are reused across the batch; candidate rows are gathered
// per inference.
func (c Config) TimeScreened(l, d, k, m, batch int, bits quant.Bits) float64 {
	screen := core.ScreeningCost(l, d, k, bits)
	screenOp := screen.ScaleBy(float64(batch))
	screenOp.Bytes = screen.Bytes
	cand := core.CandidateCost(m, d).ScaleBy(float64(batch))
	// Candidate rows are a random gather; scattered row reads reach
	// roughly 60% of stream bandwidth on the host.
	cand.Bytes /= 0.6
	screenOp.Add(cand)
	return c.Time(screenOp)
}

// Roofline returns (attained GFLOP/s, operational intensity) for a
// kernel — the Fig. 5(b) coordinates.
func (c Config) Roofline(op core.OpCount) (gflops, intensity float64) {
	t := c.Time(op)
	return op.TotalOps() / t / 1e9, op.Intensity()
}

// GPUConfig models the GPU side of the paper's Fig. 3 motivation: a
// device with fast HBM but limited capacity, connected to host memory
// over PCIe. A classifier that fits in device memory streams at HBM
// bandwidth; anything larger pays PCIe bandwidth for the overflow —
// the inter-device data movement the paper says GPUs "suffer from
// when executing the memory-intensive classification layer".
type GPUConfig struct {
	MemBytes          int64   // device memory capacity
	HBMGBs            float64 // device memory bandwidth
	PCIeGBs           float64 // host link bandwidth
	PeakTFlops        float64 // FP32 peak
	KernelOverheadSec float64
}

// V100 returns a Tesla-V100-class device (16 GB HBM2 @ 900 GB/s,
// PCIe 3 x16, 14 FP32 TFLOP/s).
func V100() GPUConfig {
	return GPUConfig{
		MemBytes:          16 << 30,
		HBMGBs:            900,
		PCIeGBs:           16,
		PeakTFlops:        14,
		KernelOverheadSec: 10e-6,
	}
}

// TimeFull returns the GPU's full-classification time for a batch:
// resident weights stream from HBM, the overflow crosses PCIe every
// batch (it cannot stay resident), compute runs at peak.
func (g GPUConfig) TimeFull(l, d, batch int) float64 {
	weightBytes := float64(l) * float64(d) * 4
	resident := weightBytes
	if resident > float64(g.MemBytes) {
		resident = float64(g.MemBytes)
	}
	overflow := weightBytes - resident
	transfer := resident/(g.HBMGBs*1e9) + overflow/(g.PCIeGBs*1e9)
	compute := 2 * weightBytes / 4 * float64(batch) / (g.PeakTFlops * 1e12)
	t := transfer
	if compute > t {
		t = compute
	}
	return t + g.KernelOverheadSec
}
