package cpuhost

import (
	"testing"

	"enmc/internal/core"
	"enmc/internal/quant"
)

func TestPeakFlops(t *testing.T) {
	c := Xeon8280()
	// 28 × 2.7e9 × 64 ≈ 4.8 TFLOP/s.
	if p := c.PeakFlops(); p < 4.5e12 || p > 5.1e12 {
		t.Fatalf("peak = %v", p)
	}
}

func TestClassificationIsMemoryBound(t *testing.T) {
	c := Xeon8280()
	op := core.FullClassificationCost(670091, 512)
	transfer := op.Bytes / (c.MemBWGBs * 1e9)
	got := c.Time(op)
	// The roofline must be bandwidth-limited: time ≈ transfer +
	// overhead, well below compute-at-1%-efficiency scenarios.
	if got < transfer {
		t.Fatalf("time %v below pure transfer %v", got, transfer)
	}
	if got > transfer*1.5+c.KernelOverheadSec {
		t.Fatalf("classification not memory-bound: %v vs transfer %v", got, transfer)
	}
}

func TestScreenedFasterThanFull(t *testing.T) {
	c := Xeon8280()
	l, d, k, m := 267744, 512, 128, 5000
	full := c.TimeFull(l, d, 1)
	screened := c.TimeScreened(l, d, k, m, 1, quant.INT4)
	speedup := full / screened
	// Paper: approximate screening gives ≈7.3× on the CPU baseline.
	if speedup < 3 || speedup > 30 {
		t.Fatalf("CPU AS speedup %v out of plausible range", speedup)
	}
}

func TestBatchAmortizesWeightTraffic(t *testing.T) {
	c := Xeon8280()
	t1 := c.TimeFull(100000, 512, 1)
	t4 := c.TimeFull(100000, 512, 4)
	perInf1 := t1
	perInf4 := t4 / 4
	if perInf4 >= perInf1 {
		t.Fatalf("batching did not amortize: %v vs %v", perInf4, perInf1)
	}
}

func TestOverheadDominatesTinyKernels(t *testing.T) {
	c := Xeon8280()
	tiny := c.Time(core.OpCount{FP32MACs: 100, Bytes: 1000})
	if tiny < c.KernelOverheadSec {
		t.Fatalf("tiny kernel %v below overhead", tiny)
	}
	if tiny > 2*c.KernelOverheadSec {
		t.Fatalf("tiny kernel %v should be overhead-dominated", tiny)
	}
}

func TestRooflinePoints(t *testing.T) {
	c := Xeon8280()
	// Low-intensity kernel attains bandwidth-limited GFLOP/s.
	op := core.FullClassificationCost(500000, 512)
	gf, oi := c.Roofline(op)
	if oi > 1 {
		t.Fatalf("classification intensity %v should be < 1 op/byte", oi)
	}
	bwLimit := c.MemBWGBs * oi // GFLOP/s ceiling at this intensity
	if gf > bwLimit*1.05 {
		t.Fatalf("attained %v GFLOP/s above roofline %v", gf, bwLimit)
	}
}

func TestIntSpeedupApplied(t *testing.T) {
	fast := Xeon8280()
	slow := Xeon8280()
	slow.IntSpeedup = 1
	// Compute-bound integer kernel (no memory traffic).
	op := core.OpCount{IntMACs: 1e12}
	if fast.Time(op) >= slow.Time(op) {
		t.Fatal("integer speedup not applied")
	}
}

func TestGPUCapacityCliff(t *testing.T) {
	g := V100()
	d := 512
	// Below capacity: HBM-speed, far faster than the CPU.
	small := g.TimeFull(1_000_000, d, 1) // ~2 GB
	cpu := Xeon8280().TimeFull(1_000_000, d, 1)
	if small >= cpu {
		t.Fatalf("in-memory GPU (%v) not faster than CPU (%v)", small, cpu)
	}
	// Far beyond capacity: PCIe-bound, slower than the CPU.
	big := g.TimeFull(100_000_000, d, 1) // ~190 GB
	cpuBig := Xeon8280().TimeFull(100_000_000, d, 1)
	if big <= cpuBig {
		t.Fatalf("overflowing GPU (%v) should lose to CPU (%v)", big, cpuBig)
	}
	// The cliff: per-byte cost jumps sharply once capacity is crossed.
	atCap := g.TimeFull(8_000_000, d, 1) // ~16 GB
	past := g.TimeFull(16_000_000, d, 1) // ~31 GB
	if past < atCap*5 {
		t.Fatalf("no capacity cliff: %v vs %v", past, atCap)
	}
}
