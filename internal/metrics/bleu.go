package metrics

import "math"

// BLEU computes corpus-level BLEU-4 (uniform n-gram weights, brevity
// penalty) between candidate and reference token sequences, the
// standard machine-translation metric used in Fig. 11(a). Token ids
// are arbitrary ints; sequences pair up by index.
func BLEU(candidates, references [][]int) float64 {
	if len(candidates) != len(references) {
		panic("metrics: BLEU corpus size mismatch")
	}
	if len(candidates) == 0 {
		return math.NaN()
	}
	const maxN = 4
	matches := make([]float64, maxN)
	totals := make([]float64, maxN)
	var candLen, refLen float64

	for i := range candidates {
		cand, ref := candidates[i], references[i]
		candLen += float64(len(cand))
		refLen += float64(len(ref))
		for n := 1; n <= maxN; n++ {
			refCounts := countNGrams(ref, n)
			candCounts := countNGrams(cand, n)
			for gram, c := range candCounts {
				r := refCounts[gram]
				if c < r {
					matches[n-1] += float64(c)
				} else {
					matches[n-1] += float64(r)
				}
			}
			if len(cand) >= n {
				totals[n-1] += float64(len(cand) - n + 1)
			}
		}
	}

	var logSum float64
	for n := 0; n < maxN; n++ {
		if totals[n] == 0 || matches[n] == 0 {
			return 0
		}
		logSum += math.Log(matches[n] / totals[n])
	}
	bp := 1.0
	if candLen < refLen {
		bp = math.Exp(1 - refLen/candLen)
	}
	return bp * math.Exp(logSum/maxN)
}

// countNGrams tallies the n-grams of seq, keyed by a string encoding
// of the ids (safe: ids are separated unambiguously).
func countNGrams(seq []int, n int) map[string]int {
	out := make(map[string]int)
	for i := 0; i+n <= len(seq); i++ {
		out[encodeGram(seq[i:i+n])]++
	}
	return out
}

func encodeGram(gram []int) string {
	b := make([]byte, 0, len(gram)*5)
	for _, g := range gram {
		for g > 0x7f {
			b = append(b, byte(g&0x7f|0x80))
			g >>= 7
		}
		b = append(b, byte(g), 0xff)
	}
	return string(b)
}
