package metrics

import (
	"math"
	"testing"
)

func TestPerplexityUniform(t *testing.T) {
	// Uniform logits over V classes → perplexity V.
	logits := [][]float32{make([]float32, 10), make([]float32, 10)}
	got := Perplexity(logits, []int{0, 3})
	if math.Abs(got-10) > 1e-6 {
		t.Fatalf("uniform perplexity = %v, want 10", got)
	}
}

func TestPerplexityConfident(t *testing.T) {
	z := make([]float32, 10)
	z[4] = 50 // near-delta on the right label
	got := Perplexity([][]float32{z}, []int{4})
	if got > 1.0001 {
		t.Fatalf("confident perplexity = %v, want ≈1", got)
	}
	wrong := Perplexity([][]float32{z}, []int{5})
	if wrong < 1e10 {
		t.Fatalf("wrong-label perplexity = %v, should explode", wrong)
	}
}

func TestPerplexityValidation(t *testing.T) {
	if !math.IsNaN(Perplexity(nil, nil)) {
		t.Fatal("empty perplexity should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Perplexity([][]float32{{1}}, []int{0, 1})
}

func TestTopKAgreement(t *testing.T) {
	approx := []int{1, 2, 3}
	exact := [][]int{{1, 9}, {8, 9}, {9, 3}}
	got := TopKAgreement(approx, exact)
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("agreement = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	approx := [][]int{{1, 2, 3}, {4, 5, 6}}
	exact := [][]int{{1, 2, 9}, {7, 8, 9}}
	got := PrecisionAtK(approx, exact, 3)
	if math.Abs(got-(2.0/3+0)/2) > 1e-9 {
		t.Fatalf("P@3 = %v", got)
	}
	// k smaller than list: only the head counts.
	got = PrecisionAtK(approx, exact, 1)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P@1 = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 2, 3}, []int{1, 0, 3}) != 2.0/3 {
		t.Fatal("accuracy")
	}
}

func TestBLEUIdentical(t *testing.T) {
	c := [][]int{{1, 2, 3, 4, 5, 6}}
	got := BLEU(c, c)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("self-BLEU = %v, want 1", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	got := BLEU([][]int{{1, 2, 3, 4}}, [][]int{{5, 6, 7, 8}})
	if got != 0 {
		t.Fatalf("disjoint BLEU = %v, want 0", got)
	}
}

func TestBLEUPartial(t *testing.T) {
	// One token changed out of eight: BLEU must be strictly between
	// 0 and 1, and higher than a half-changed sequence.
	ref := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	one := BLEU([][]int{{1, 2, 3, 4, 5, 6, 7, 99}}, ref)
	half := BLEU([][]int{{1, 99, 3, 98, 5, 97, 7, 96}}, ref)
	if !(one > 0 && one < 1) {
		t.Fatalf("one-sub BLEU = %v", one)
	}
	if half >= one {
		t.Fatalf("half-sub BLEU %v not below one-sub %v", half, one)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	short := BLEU([][]int{{1, 2, 3, 4, 5}}, ref)
	full := BLEU([][]int{{1, 2, 3, 4, 5, 6, 7, 8}}, ref)
	if short >= full {
		t.Fatalf("brevity penalty missing: short %v >= full %v", short, full)
	}
}

func TestBLEUClipping(t *testing.T) {
	// Repeating a reference word must not inflate precision.
	ref := [][]int{{1, 2, 3, 4, 5, 6}}
	spam := BLEU([][]int{{1, 1, 1, 1, 1, 1}}, ref)
	if spam > 0.2 {
		t.Fatalf("clipped BLEU = %v, repetition rewarded", spam)
	}
}

func TestBLEUCorpusPooling(t *testing.T) {
	// Corpus BLEU pools n-gram counts; two half-right sentences score
	// the same as pooled stats, not averaged sentence BLEU of 0.
	refs := [][]int{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}
	cands := [][]int{{1, 2, 3, 4, 5}, {11, 12, 13, 14, 15}}
	got := BLEU(cands, refs)
	if !(got > 0 && got < 1) {
		t.Fatalf("corpus BLEU = %v", got)
	}
}

func TestBLEUEmptyCorpus(t *testing.T) {
	if !math.IsNaN(BLEU(nil, nil)) {
		t.Fatal("empty corpus should be NaN")
	}
}
