// Package metrics implements the quality measures of the paper's
// algorithm-level evaluation (Fig. 11 and Fig. 12): perplexity for
// language modeling, corpus BLEU for translation, precision@k for
// multi-label recommendation, and top-k agreement between an
// approximate classifier and the exact one.
package metrics

import (
	"math"

	"enmc/internal/activation"
)

// Perplexity returns exp(mean cross-entropy) of the given pre-softmax
// logit vectors against integer labels. logits[i] scores sample i.
func Perplexity(logits [][]float32, labels []int) float64 {
	if len(logits) != len(labels) {
		panic("metrics: Perplexity length mismatch")
	}
	if len(logits) == 0 {
		return math.NaN()
	}
	var nll float64
	for i, z := range logits {
		lse := activation.LogSumExp(z)
		nll += lse - float64(z[labels[i]])
	}
	return math.Exp(nll / float64(len(logits)))
}

// TopKAgreement returns the fraction of samples whose approximate
// top-1 class appears in the exact classifier's top-k set. With k=1
// this is exact-match accuracy against the full model.
func TopKAgreement(approxTop1 []int, exactTopK [][]int) float64 {
	if len(approxTop1) != len(exactTopK) {
		panic("metrics: TopKAgreement length mismatch")
	}
	if len(approxTop1) == 0 {
		return math.NaN()
	}
	hits := 0
	for i, a := range approxTop1 {
		for _, e := range exactTopK[i] {
			if a == e {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(approxTop1))
}

// PrecisionAtK returns mean |approx_i ∩ exact_i| / k over samples,
// the multi-label metric used for the Amazon-670K workload.
func PrecisionAtK(approx, exact [][]int, k int) float64 {
	if len(approx) != len(exact) {
		panic("metrics: PrecisionAtK length mismatch")
	}
	if len(approx) == 0 || k <= 0 {
		return math.NaN()
	}
	var total float64
	for i := range approx {
		ex := make(map[int]bool, len(exact[i]))
		for _, e := range exact[i] {
			ex[e] = true
		}
		hits := 0
		a := approx[i]
		if len(a) > k {
			a = a[:k]
		}
		for _, v := range a {
			if ex[v] {
				hits++
			}
		}
		total += float64(hits) / float64(k)
	}
	return total / float64(len(approx))
}

// Accuracy returns the fraction of predictions equal to labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	hits := 0
	for i := range pred {
		if pred[i] == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}
