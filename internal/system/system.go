// Package system runs whole-system simulations: a host with several
// memory channels of ENMC (or baseline-NMP) DIMMs, 8 ranks per
// channel as in Table 3. The compiler splits classification rows
// evenly across all ranks; ranks execute identical programs against
// their own devices, so the system simulates one representative rank
// cycle-accurately and extrapolates — with optional row sampling for
// the 100M-category workloads, whose steady-state streaming behaviour
// a measurement window captures exactly (see DESIGN.md §1).
package system

import (
	"fmt"

	"enmc/internal/compiler"
	"enmc/internal/energy"
	"enmc/internal/enmc"
	"enmc/internal/nmp"
	"enmc/internal/telemetry"
)

// Config describes the simulated system.
type Config struct {
	Channels        int
	RanksPerChannel int
	Design          nmp.Design
	Logic           energy.LogicPower
	DRAM            energy.DRAMEnergy
	// SampleRows caps the rows simulated per rank; a larger share is
	// cut to this window and the results scaled linearly. 0 disables
	// sampling.
	SampleRows int
	// Tracer, when non-nil, receives the representative rank's
	// structured execution spans (screen/filter/exact/DRAM phases) in
	// simulated time.
	Tracer *telemetry.Tracer
}

// Default returns the Table 3 system (8 channels × 8 ranks) around a
// design, with a 16K-row sampling window.
func Default(design nmp.Design) Config {
	return Config{
		Channels:        8,
		RanksPerChannel: 8,
		Design:          design,
		Logic:           design.Logic,
		DRAM:            energy.DDR4Energy(),
		SampleRows:      16384,
	}
}

// TotalRanks returns the engine count.
func (c Config) TotalRanks() int { return c.Channels * c.RanksPerChannel }

// Result summarizes a system run.
type Result struct {
	Design  string
	Mode    compiler.Mode
	Task    compiler.Task
	Cycles  int64   // per-rank cycles (ranks run in parallel)
	Seconds float64 // wall time of the batched offload
	// PerInferenceSeconds divides by batch.
	PerInferenceSeconds float64
	// ScaleFactor is the sampling extrapolation applied (1 = exact).
	ScaleFactor float64
	// RankStats are one rank's (scaled) activity counters.
	RankStats enmc.Stats
	// Energy is the whole system's energy for the run.
	Energy energy.Breakdown
}

// Run compiles and executes the task on the configured system.
func (c Config) Run(task compiler.Task, mode compiler.Mode) (Result, error) {
	if c.Channels <= 0 || c.RanksPerChannel <= 0 {
		return Result{}, fmt.Errorf("system: non-positive topology %dx%d", c.Channels, c.RanksPerChannel)
	}
	share := task.Split(c.TotalRanks())
	factor := 1.0
	simShare := share
	if c.SampleRows > 0 && share.Rows > c.SampleRows {
		factor = float64(share.Rows) / float64(c.SampleRows)
		simShare.Rows = c.SampleRows
		simShare.Candidates = int(float64(share.Candidates)/factor + 0.5)
		if simShare.Candidates < 1 && share.Candidates > 0 {
			simShare.Candidates = 1
		}
	}

	prog, err := compiler.Compile(task, c.Design.Hw, c.Design.Target, simShare, mode)
	if err != nil {
		return Result{}, err
	}
	eng, err := enmc.New(c.Design.Hw)
	if err != nil {
		return Result{}, err
	}
	if c.Tracer != nil {
		eng.SetTracer(c.Tracer)
	}
	if _, err := eng.Run(prog.Init); err != nil {
		return Result{}, err
	}
	res, err := eng.Run(prog.Ops)
	if err != nil {
		return Result{}, err
	}

	out := Result{
		Design:      c.Design.Target.Name,
		Mode:        mode,
		Task:        task,
		Cycles:      int64(float64(res.Cycles) * factor),
		ScaleFactor: factor,
		RankStats:   res.Stats.Scale(factor),
	}
	out.Seconds = c.Design.Hw.DRAM.CyclesToSeconds(out.Cycles)
	out.PerInferenceSeconds = out.Seconds / float64(task.Batch)
	perRank := energy.Compute(out.RankStats, out.Seconds, c.Logic, c.DRAM)
	out.Energy = perRank.Scale(float64(c.TotalRanks()))
	return out, nil
}
