package system

import (
	"testing"

	"enmc/internal/compiler"
	"enmc/internal/nmp"
)

func testTask() compiler.Task {
	return compiler.Task{Categories: 262144, Hidden: 512, Reduced: 128, Candidates: 4096, Batch: 1}
}

func TestRunBasic(t *testing.T) {
	cfg := Default(nmp.ENMC())
	res, err := cfg.Run(testTask(), compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Energy.TotalJ() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.Design != "ENMC" {
		t.Fatalf("design = %q", res.Design)
	}
}

func TestTopologyValidated(t *testing.T) {
	cfg := Default(nmp.ENMC())
	cfg.Channels = 0
	if _, err := cfg.Run(testTask(), compiler.ModeScreened); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestSamplingMatchesExactWithinTolerance(t *testing.T) {
	task := testTask()
	exact := Default(nmp.ENMC())
	exact.SampleRows = 0
	sampled := Default(nmp.ENMC())
	sampled.SampleRows = 1024 // share.Rows = 4096 → 4× extrapolation

	re, err := exact.Run(task, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sampled.Run(task, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ScaleFactor <= 1 {
		t.Fatalf("sampling not applied: factor %v", rs.ScaleFactor)
	}
	ratio := float64(rs.Cycles) / float64(re.Cycles)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("sampled extrapolation off by %vx (sampled %d, exact %d)", ratio, rs.Cycles, re.Cycles)
	}
}

// TestDesignOrdering reproduces the Fig. 13 ranking: ENMC fastest,
// then TensorDIMM, NDA, Chameleon — all running the screened
// pipeline.
func TestDesignOrdering(t *testing.T) {
	task := testTask()
	task.Batch = 2
	times := map[string]float64{}
	for _, d := range nmp.All() {
		cfg := Default(d)
		res, err := cfg.Run(task, compiler.ModeScreened)
		if err != nil {
			t.Fatalf("%s: %v", d.Target.Name, err)
		}
		times[d.Target.Name] = res.Seconds
	}
	if !(times["ENMC"] < times["TensorDIMM"] &&
		times["TensorDIMM"] < times["NDA"] &&
		times["NDA"] < times["Chameleon"]) {
		t.Fatalf("design ordering wrong: %+v", times)
	}
}

// TestScreenedVsFullGap: full classification on TensorDIMM must be
// many times slower than ENMC's screened pipeline (the Fig. 14/15
// comparison).
func TestScreenedVsFullGap(t *testing.T) {
	task := testTask()
	enmcRes, err := Default(nmp.ENMC()).Run(task, compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	tdRes, err := Default(nmp.TensorDIMM()).Run(task, compiler.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tdRes.Seconds / enmcRes.Seconds
	if ratio < 4 {
		t.Fatalf("full/screened gap %v, want ≥ 4", ratio)
	}
	// And the energy gap should be large too (Fig. 14: ≈5×).
	eRatio := tdRes.Energy.TotalJ() / enmcRes.Energy.TotalJ()
	if eRatio < 2 {
		t.Fatalf("energy gap %v, want ≥ 2", eRatio)
	}
}

// TestTensorDIMMLargeBeatsTensorDIMMOnBatch: bigger buffers avoid
// restreaming, so TD-Large is faster at batch > 1 in full mode.
func TestTensorDIMMLargeBeatsTensorDIMMOnBatch(t *testing.T) {
	task := testTask()
	task.Batch = 4
	td, err := Default(nmp.TensorDIMM()).Run(task, compiler.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	tdl, err := Default(nmp.TensorDIMMLarge()).Run(task, compiler.ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if tdl.Seconds >= td.Seconds {
		t.Fatalf("TD-Large %v not faster than TD %v at batch 4", tdl.Seconds, td.Seconds)
	}
}

func TestStatsScale(t *testing.T) {
	cfg := Default(nmp.ENMC())
	cfg.SampleRows = 1024
	res, err := cfg.Run(testTask(), compiler.ModeScreened)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankStats.DRAM.BytesRead <= 0 {
		t.Fatal("scaled stats lost traffic")
	}
	// Busy fraction must stay ≤ 1 after scaling.
	if res.RankStats.ScreenerBusy > res.RankStats.DRAM.Cycles+res.Cycles {
		t.Fatal("scaled busy cycles exceed scaled runtime")
	}
}
