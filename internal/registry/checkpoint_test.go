package registry

import (
	"testing"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

func ckptFixture(t *testing.T) (*Store, *workload.Instance, TrainSpec) {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.Generate(
		workload.Spec{Name: "ckpt-test", Categories: 48, Hidden: 16, LatentRank: 4, ZipfS: 1},
		workload.GenOptions{Seed: 61, Train: 96, Valid: 4, Test: 4})
	spec := TrainSpec{
		Version: "v1",
		Cfg: core.Config{
			Categories: 48, Hidden: 16, Reduced: 6, Precision: quant.INT4, Seed: 71,
		},
		Opt:             core.TrainOptions{Seed: 72},
		TotalEpochs:     4,
		CheckpointEvery: 2,
		ProbeCount:      8,
	}
	return store, inst, spec
}

// TestTrainRunCompletes: an uninterrupted run publishes the version,
// ships the held-out probe, and leaves no checkpoint behind.
func TestTrainRunCompletes(t *testing.T) {
	store, inst, spec := ckptFixture(t)
	m, published, err := store.TrainRun(inst.Classifier, inst.Train, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !published {
		t.Fatal("run did not publish")
	}
	if m.Train.Epochs != 4 || m.Train.Resumed {
		t.Fatalf("train meta = %+v", m.Train)
	}
	if m.Train.Samples != len(inst.Train)-8 {
		t.Fatalf("trained on %d samples, want %d (probe held out)", m.Train.Samples, len(inst.Train)-8)
	}
	if store.HasCheckpoint("v1") {
		t.Fatal("checkpoint survived publication")
	}
	loaded, err := store.Load("v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Probe) != 8 {
		t.Fatalf("probe = %d features", len(loaded.Probe))
	}
	// The probe is the sample tail, never trained on.
	tail := inst.Train[len(inst.Train)-8:]
	for i := range tail {
		for j := range tail[i] {
			if loaded.Probe[i][j] != tail[i][j] {
				t.Fatalf("probe %d differs from sample tail", i)
			}
		}
	}
}

// TestTrainRunInterruptResume: StopAfter interrupts mid-run leaving a
// checkpoint and no published version; a second call resumes from the
// checkpoint, completes the remaining epochs, publishes, and cleans
// up.
func TestTrainRunInterruptResume(t *testing.T) {
	store, inst, spec := ckptFixture(t)
	spec.StopAfter = 2

	_, published, err := store.TrainRun(inst.Classifier, inst.Train, spec)
	if err != nil {
		t.Fatal(err)
	}
	if published {
		t.Fatal("interrupted run published")
	}
	if !store.HasCheckpoint("v1") {
		t.Fatal("no checkpoint after interruption")
	}
	if _, err := store.Load("v1"); err == nil {
		t.Fatal("unpublished version loadable")
	}
	st, _, err := store.readCheckpoint("v1")
	if err != nil {
		t.Fatal(err)
	}
	if st.EpochsDone != 2 || st.TotalEpochs != 4 {
		t.Fatalf("checkpoint state = %+v", st)
	}

	// Resume: finishes and publishes.
	spec.StopAfter = 0
	m, published, err := store.TrainRun(inst.Classifier, inst.Train, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !published || !m.Train.Resumed {
		t.Fatalf("resume: published=%v meta=%+v", published, m.Train)
	}
	if store.HasCheckpoint("v1") {
		t.Fatal("checkpoint survived resumed publication")
	}
	if _, err := store.Load("v1"); err != nil {
		t.Fatal(err)
	}
}

// TestTrainRunConfigMismatch: resuming with a different screener
// config must be refused, not silently restarted.
func TestTrainRunConfigMismatch(t *testing.T) {
	store, inst, spec := ckptFixture(t)
	spec.StopAfter = 2
	if _, _, err := store.TrainRun(inst.Classifier, inst.Train, spec); err != nil {
		t.Fatal(err)
	}
	spec.StopAfter = 0
	spec.Cfg.Reduced = 8
	if _, _, err := store.TrainRun(inst.Classifier, inst.Train, spec); err == nil {
		t.Fatal("config mismatch resume accepted")
	}
}

// TestTrainRunAlreadyPublished: a published version cannot be
// retrained.
func TestTrainRunAlreadyPublished(t *testing.T) {
	store, inst, spec := ckptFixture(t)
	if _, _, err := store.TrainRun(inst.Classifier, inst.Train, spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.TrainRun(inst.Classifier, inst.Train, spec); err == nil {
		t.Fatal("retrain of published version accepted")
	}
}
