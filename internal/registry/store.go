// Package registry is the model lifecycle subsystem: a versioned
// on-disk store of trained ENMC artifacts plus an in-process manager
// that loads candidate versions off the request path, gates them
// behind a canary validation (top-K agreement against the serving
// model on a held-out probe set), and hot-swaps the serving backend
// with zero dropped requests — in-flight batches finish on the old
// version, which is retired only after its last reference drains.
//
// On-disk layout under a registry root:
//
//	<root>/<version>/manifest.json   — shapes, precision, seq, parent,
//	                                   SHA-256 + size per artifact
//	<root>/<version>/classifier.bin  — core.Classifier (ENMCCLS1)
//	<root>/<version>/screener.bin    — core.Screener  (ENMCSCR1)
//	<root>/<version>/probe.bin       — held-out probe features
//	                                   (ENMCFEA1, optional)
//	<root>/.tmp-*                    — in-flight publishes (atomic
//	                                   os.Rename into place)
//	<root>/.ckpt/<version>/          — interrupted training runs
//	                                   (see checkpoint.go)
//
// A version directory is immutable once published: Publish stages
// into a temp dir and renames, so readers never observe a partial
// version, and Load re-hashes every artifact against the manifest so
// a corrupted or tampered file is rejected before it can serve.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"enmc/internal/core"
	"enmc/internal/quant"
)

// Artifact file names inside a version directory.
const (
	ManifestFile   = "manifest.json"
	ClassifierFile = "classifier.bin"
	ScreenerFile   = "screener.bin"
	ProbeFile      = "probe.bin"
)

// FileInfo pins one artifact's identity in the manifest.
type FileInfo struct {
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// TrainMeta records how a version was produced, for provenance.
type TrainMeta struct {
	Epochs    int     `json:"epochs,omitempty"`
	Samples   int     `json:"samples,omitempty"`
	FinalLoss float64 `json:"final_loss,omitempty"`
	Resumed   bool    `json:"resumed,omitempty"`
}

// Manifest describes one published model version.
type Manifest struct {
	// Version is the directory name; any path-safe string.
	Version string `json:"version"`
	// Seq totally orders versions within a root (Latest = max Seq);
	// Publish assigns the next Seq when left zero.
	Seq int `json:"seq"`
	// Parent names the version this one was trained from ("" for a
	// from-scratch run).
	Parent string `json:"parent,omitempty"`
	// CreatedUnix is the publish time in Unix seconds.
	CreatedUnix int64 `json:"created_unix"`

	// Model shapes and screener quantization, duplicated from the
	// binary artifacts so operators (and the manager's compatibility
	// check) can read them without decoding weights.
	Categories int    `json:"categories"`
	Hidden     int    `json:"hidden"`
	Reduced    int    `json:"reduced"`
	Precision  int    `json:"precision_bits"`
	PerTensor  bool   `json:"per_tensor,omitempty"`
	Seed       uint64 `json:"seed"`

	Files map[string]FileInfo `json:"files"`
	Train TrainMeta           `json:"train,omitempty"`
}

// PrecisionString renders the screener precision, e.g. "INT4".
func (m Manifest) PrecisionString() string { return quant.Bits(m.Precision).String() }

// Loaded is a fully verified, decoded model version ready to serve.
type Loaded struct {
	Manifest   Manifest
	Classifier *core.Classifier
	Screener   *core.Screener
	// Probe is the held-out probe feature set shipped with the
	// version (nil when the version has none).
	Probe [][]float32
}

// Store is a versioned model registry rooted at one directory.
type Store struct {
	root string
}

// Open opens (creating if needed) a registry root.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("registry: empty root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the registry root directory.
func (s *Store) Root() string { return s.root }

// Dir returns the directory a version lives in.
func (s *Store) Dir(version string) string { return filepath.Join(s.root, version) }

func validVersion(v string) error {
	if v == "" || strings.HasPrefix(v, ".") || strings.ContainsAny(v, `/\`) {
		return fmt.Errorf("registry: invalid version name %q", v)
	}
	return nil
}

// Publish writes a new immutable version: artifacts are staged into a
// temp directory, hashed into the manifest, and renamed into place in
// one atomic step — a crashed publish leaves only a .tmp-* directory
// that never becomes visible to Versions/Load. probe may be nil.
// m.Seq, when zero, is assigned one past the current latest.
func (s *Store) Publish(m Manifest, cls *core.Classifier, scr *core.Screener, probe [][]float32) (Manifest, error) {
	if err := validVersion(m.Version); err != nil {
		return m, err
	}
	if cls == nil || scr == nil {
		return m, fmt.Errorf("registry: nil classifier or screener")
	}
	if _, err := os.Stat(s.Dir(m.Version)); err == nil {
		return m, fmt.Errorf("registry: version %q already published", m.Version)
	}
	if m.CreatedUnix == 0 {
		m.CreatedUnix = time.Now().Unix()
	}
	if m.Seq == 0 {
		vs, err := s.Versions()
		if err != nil {
			return m, err
		}
		for _, v := range vs {
			if v.Seq >= m.Seq {
				m.Seq = v.Seq + 1
			}
		}
		if m.Seq == 0 {
			m.Seq = 1
		}
	}
	m.Categories = scr.Cfg.Categories
	m.Hidden = scr.Cfg.Hidden
	m.Reduced = scr.Cfg.Reduced
	m.Precision = int(scr.Cfg.Precision)
	m.PerTensor = scr.Cfg.PerTensor
	m.Seed = scr.Cfg.Seed
	m.Files = map[string]FileInfo{}

	tmp, err := os.MkdirTemp(s.root, ".tmp-"+m.Version+"-")
	if err != nil {
		return m, fmt.Errorf("registry: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	write := func(name string, emit func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		h := sha256.New()
		if err := emit(io.MultiWriter(f, h)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, err := os.Stat(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		m.Files[name] = FileInfo{SHA256: hex.EncodeToString(h.Sum(nil)), Size: st.Size()}
		return nil
	}
	if err := write(ClassifierFile, func(w io.Writer) error { _, err := cls.WriteTo(w); return err }); err != nil {
		return m, fmt.Errorf("registry: writing classifier: %w", err)
	}
	if err := write(ScreenerFile, func(w io.Writer) error { _, err := scr.WriteTo(w); return err }); err != nil {
		return m, fmt.Errorf("registry: writing screener: %w", err)
	}
	if len(probe) > 0 {
		if err := write(ProbeFile, func(w io.Writer) error { _, err := core.WriteFeatures(w, probe); return err }); err != nil {
			return m, fmt.Errorf("registry: writing probe: %w", err)
		}
	}

	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return m, err
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestFile), append(buf, '\n'), 0o644); err != nil {
		return m, fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, s.Dir(m.Version)); err != nil {
		return m, fmt.Errorf("registry: publishing %q: %w", m.Version, err)
	}
	return m, nil
}

// ReadManifest reads one version's manifest without touching the
// (large) artifacts.
func (s *Store) ReadManifest(version string) (Manifest, error) {
	var m Manifest
	if err := validVersion(version); err != nil {
		return m, err
	}
	buf, err := os.ReadFile(filepath.Join(s.Dir(version), ManifestFile))
	if err != nil {
		return m, fmt.Errorf("registry: version %q: %w", version, err)
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		return m, fmt.Errorf("registry: version %q: bad manifest: %w", version, err)
	}
	if m.Version != version {
		return m, fmt.Errorf("registry: manifest in %q names version %q", version, m.Version)
	}
	return m, nil
}

// Versions lists every published version, ordered by Seq (ties by
// name). Hidden directories (.tmp-*, .ckpt) are skipped.
func (s *Store) Versions() ([]Manifest, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		m, err := s.ReadManifest(e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}

// Latest returns the manifest with the highest Seq.
func (s *Store) Latest() (Manifest, error) {
	vs, err := s.Versions()
	if err != nil {
		return Manifest{}, err
	}
	if len(vs) == 0 {
		return Manifest{}, fmt.Errorf("registry: no versions under %s", s.root)
	}
	return vs[len(vs)-1], nil
}

// Verify re-hashes every artifact named in the manifest against its
// recorded checksum and size, without decoding.
func (s *Store) Verify(version string) error {
	m, err := s.ReadManifest(version)
	if err != nil {
		return err
	}
	for name, want := range m.Files {
		if err := s.checkFile(version, name, want); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) checkFile(version, name string, want FileInfo) error {
	f, err := os.Open(filepath.Join(s.Dir(version), name))
	if err != nil {
		return fmt.Errorf("registry: version %q: %w", version, err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("registry: version %q: hashing %s: %w", version, name, err)
	}
	if n != want.Size {
		return fmt.Errorf("registry: version %q: %s is %d bytes, manifest says %d", version, name, n, want.Size)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != want.SHA256 {
		return fmt.Errorf("registry: version %q: %s checksum mismatch (corrupted artifact)", version, name)
	}
	return nil
}

// Load verifies and decodes a version. Every artifact is re-hashed
// against the manifest before decoding, so a corrupted file can never
// reach the serving path.
func (s *Store) Load(version string) (*Loaded, error) {
	m, err := s.ReadManifest(version)
	if err != nil {
		return nil, err
	}
	read := func(name string, required bool, decode func(io.Reader) error) error {
		want, ok := m.Files[name]
		if !ok {
			if required {
				return fmt.Errorf("registry: version %q: manifest lists no %s", version, name)
			}
			return nil
		}
		if err := s.checkFile(version, name, want); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(s.Dir(version), name))
		if err != nil {
			return fmt.Errorf("registry: version %q: %w", version, err)
		}
		defer f.Close()
		if err := decode(f); err != nil {
			return fmt.Errorf("registry: version %q: decoding %s: %w", version, name, err)
		}
		return nil
	}

	out := &Loaded{Manifest: m}
	if err := read(ClassifierFile, true, func(r io.Reader) error {
		cls, err := core.ReadClassifier(r)
		out.Classifier = cls
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(ScreenerFile, true, func(r io.Reader) error {
		scr, err := core.ReadScreener(r)
		out.Screener = scr
		return err
	}); err != nil {
		return nil, err
	}
	if err := read(ProbeFile, false, func(r io.Reader) error {
		probe, err := core.ReadFeatures(r)
		out.Probe = probe
		return err
	}); err != nil {
		return nil, err
	}

	if out.Classifier.Categories() != m.Categories || out.Classifier.Hidden() != m.Hidden {
		return nil, fmt.Errorf("registry: version %q: classifier %dx%d does not match manifest %dx%d",
			version, out.Classifier.Categories(), out.Classifier.Hidden(), m.Categories, m.Hidden)
	}
	if out.Screener.Cfg.Categories != m.Categories || out.Screener.Cfg.Hidden != m.Hidden ||
		out.Screener.Cfg.Reduced != m.Reduced {
		return nil, fmt.Errorf("registry: version %q: screener shape does not match manifest", version)
	}
	return out, nil
}
