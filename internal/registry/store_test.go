package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

// trained builds a small real model (classifier + trained screener +
// samples) for store tests.
func trained(t *testing.T, seed uint64) (*core.Classifier, *core.Screener, [][]float32) {
	t.Helper()
	inst := workload.Generate(
		workload.Spec{Name: "registry-test", Categories: 48, Hidden: 16, LatentRank: 4, ZipfS: 1},
		workload.GenOptions{Seed: seed, Train: 96, Valid: 4, Test: 4})
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: 48, Hidden: 16, Reduced: 6, Precision: quant.INT4, Seed: seed + 1,
	}, core.TrainOptions{Epochs: 2, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	return inst.Classifier, scr, inst.Train
}

// TestPublishLoadRoundTrip: a published version loads back with
// verified checksums and a bit-identical screener.
func TestPublishLoadRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cls, scr, samples := trained(t, 7)
	probe := samples[:8]

	m, err := store.Publish(Manifest{Version: "v1", Parent: ""}, cls, scr, probe)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 1 || m.Categories != 48 || m.Hidden != 16 || m.Reduced != 6 || m.Precision != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Files) != 3 {
		t.Fatalf("files = %v", m.Files)
	}
	for name, fi := range m.Files {
		if len(fi.SHA256) != 64 || fi.Size == 0 {
			t.Fatalf("file %s: %+v", name, fi)
		}
	}

	if err := store.Verify("v1"); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load("v1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Manifest.Version != "v1" || len(loaded.Probe) != 8 {
		t.Fatalf("loaded = %+v", loaded.Manifest)
	}
	// Screen outputs must be bit-identical to the published screener.
	want := scr.Screen(samples[0])
	got := loaded.Screener.Screen(samples[0])
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("screen logit %d: %v != %v", i, got[i], want[i])
		}
	}

	// Double publish is refused; invalid names are refused.
	if _, err := store.Publish(Manifest{Version: "v1"}, cls, scr, nil); err == nil {
		t.Fatal("double publish accepted")
	}
	for _, bad := range []string{"", ".hidden", "a/b", `a\b`} {
		if _, err := store.Publish(Manifest{Version: bad}, cls, scr, nil); err == nil {
			t.Fatalf("version %q accepted", bad)
		}
	}
}

// TestVersionsAndLatest: Seq assignment and ordering.
func TestVersionsAndLatest(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cls, scr, _ := trained(t, 11)
	for _, v := range []string{"alpha", "beta", "gamma"} {
		if _, err := store.Publish(Manifest{Version: v}, cls, scr, nil); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("versions = %d", len(vs))
	}
	for i, v := range vs {
		if v.Seq != i+1 {
			t.Fatalf("version %q seq = %d, want %d", v.Version, v.Seq, i+1)
		}
	}
	latest, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != "gamma" {
		t.Fatalf("latest = %q", latest.Version)
	}
}

// TestCorruptedArtifactRejected: flip one byte in a published
// artifact — Verify and Load must both reject with a checksum error,
// and truncation must be caught by the size check.
func TestCorruptedArtifactRejected(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cls, scr, samples := trained(t, 13)
	if _, err := store.Publish(Manifest{Version: "v1"}, cls, scr, samples[:4]); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(store.Dir("v1"), ScreenerFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), buf...)
	corrupted[len(corrupted)/2] ^= 0xff
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.Verify("v1"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Verify on corrupted artifact: %v", err)
	}
	if _, err := store.Load("v1"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Load on corrupted artifact: %v", err)
	}

	// Truncation trips the size check.
	if err := os.WriteFile(path, buf[:len(buf)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("v1"); err == nil {
		t.Fatal("truncated artifact loaded")
	}

	// Restore: loads again.
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("v1"); err != nil {
		t.Fatal(err)
	}
}

// TestManifestTamperRejected: a manifest whose version field does not
// match its directory, or naming a missing artifact, is rejected; a
// crashed publish (.tmp-* dir) stays invisible.
func TestManifestTamperRejected(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cls, scr, _ := trained(t, 17)
	if _, err := store.Publish(Manifest{Version: "v1"}, cls, scr, nil); err != nil {
		t.Fatal(err)
	}

	// A leftover staging dir must not surface as a version.
	if err := os.MkdirAll(filepath.Join(store.Root(), ".tmp-crashed"), 0o755); err != nil {
		t.Fatal(err)
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("versions = %d, staging dir leaked", len(vs))
	}

	// Manifest naming the wrong version.
	buf, err := os.ReadFile(filepath.Join(store.Dir("v1"), ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(buf), `"version": "v1"`, `"version": "v2"`, 1)
	if bad == string(buf) {
		t.Fatal("replace failed")
	}
	if err := os.WriteFile(filepath.Join(store.Dir("v1"), ManifestFile), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadManifest("v1"); err == nil {
		t.Fatal("mismatched manifest version accepted")
	}
	if err := os.WriteFile(filepath.Join(store.Dir("v1"), ManifestFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	// Missing artifact.
	if err := os.Remove(filepath.Join(store.Dir("v1"), ClassifierFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("v1"); err == nil {
		t.Fatal("missing artifact loaded")
	}
}
