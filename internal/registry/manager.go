package registry

import (
	"context"
	"fmt"
	"sync"

	"enmc/internal/core"
	"enmc/internal/server"
	"enmc/internal/telemetry"
	"enmc/internal/xrand"
)

// Lifecycle instruments on the default telemetry registry. The
// serving layer reads swap_total and canary_rejected by name (the
// registry is get-or-create) so /v1/model can report them without a
// package cycle.
var (
	mReloadTotal   = telemetry.Default().Counter("registry.reload_total")
	mSwapTotal     = telemetry.Default().Counter("registry.swap_total")
	mCanaryReject  = telemetry.Default().Counter("registry.canary_rejected")
	mLoadFailed    = telemetry.Default().Counter("registry.load_failed")
	mRetiredTotal  = telemetry.Default().Counter("registry.retired_total")
	mPinnedLoaded  = telemetry.Default().Counter("registry.pinned_loaded")
	mActiveVersion = telemetry.Default().Gauge("registry.active_version")
	mCanaryAgree   = telemetry.Default().Gauge("registry.canary_agreement")
)

// Options tunes the lifecycle manager.
type Options struct {
	// ProbeTopK is the K in the canary's top-K agreement (default 5,
	// clamped to the class count).
	ProbeTopK int
	// AgreementFloor rejects a candidate whose mean top-K agreement
	// with the serving model drops below this fraction (default 0.9).
	// 0 keeps the default; negative disables the gate.
	AgreementFloor float64
	// ProbeBudget is the screening budget m used when classifying the
	// probe set (default 4×ProbeTopK).
	ProbeBudget int
	// Probe overrides the held-out probe features; when nil the
	// manager uses the active version's shipped probe set, or
	// synthesizes ProbeCount deterministic Gaussian probes.
	Probe [][]float32
	// ProbeCount sizes the synthesized fallback probe set (default 64).
	ProbeCount int
	// ProbeSeed seeds the synthesized probes (default 1).
	ProbeSeed uint64
	// Tracer receives registry.load / registry.canary / registry.swap
	// spans on TrackRegistry; nil falls back to the global tracer.
	Tracer *telemetry.Tracer
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...interface{})
}

func (o *Options) defaults() {
	if o.ProbeTopK <= 0 {
		o.ProbeTopK = 5
	}
	if o.AgreementFloor == 0 {
		o.AgreementFloor = 0.9
	}
	if o.ProbeBudget <= 0 {
		o.ProbeBudget = 4 * o.ProbeTopK
	}
	if o.ProbeCount <= 0 {
		o.ProbeCount = 64
	}
	if o.ProbeSeed == 0 {
		o.ProbeSeed = 1
	}
}

// CanaryError reports a candidate rejected by the canary gate. The
// previous version keeps serving (Reload returns it as active).
type CanaryError struct {
	Version   string
	Agreement float64
	Floor     float64
}

func (e *CanaryError) Error() string {
	return fmt.Sprintf("registry: version %q rejected by canary: top-K agreement %.3f below floor %.3f",
		e.Version, e.Agreement, e.Floor)
}

// Manager owns the serving model's lifecycle: it loads versions from
// a Store off the request path, canary-validates candidates against
// the serving model, and swaps the server.Swappable backend with the
// drain ordering the serving layer guarantees.
type Manager struct {
	store *Store
	opt   Options
	sw    *server.Swappable

	mu     sync.Mutex // serializes Reload; the swap itself is atomic
	active Manifest
	cur    *Loaded
	probe  [][]float32

	// pinMu guards the pinned-version cache separately from mu so a
	// first-touch pin load (checksum decode of a full model) never
	// stalls Reload or Active.
	pinMu  sync.Mutex
	pinned map[string]server.Backend
}

// NewManager loads the initial version ("" = latest), installs it in
// a fresh Swappable, and returns the manager. The Swappable is the
// server backend; Reload is the server's ReloadFunc.
func NewManager(store *Store, version string, opt Options) (*Manager, error) {
	opt.defaults()
	if store == nil {
		return nil, fmt.Errorf("registry: nil store")
	}
	if version == "" {
		latest, err := store.Latest()
		if err != nil {
			return nil, err
		}
		version = latest.Version
	}
	loaded, err := store.Load(version)
	if err != nil {
		mLoadFailed.Inc()
		return nil, err
	}
	backend, err := server.NewLocal(loaded.Classifier, loaded.Screener)
	if err != nil {
		return nil, err
	}
	sw, err := server.NewSwappable(backend, loaded.Manifest.Version)
	if err != nil {
		return nil, err
	}
	m := &Manager{store: store, opt: opt, sw: sw, active: loaded.Manifest, cur: loaded}
	m.probe = m.probeSet(loaded)
	mActiveVersion.Set(float64(loaded.Manifest.Seq))
	m.logf("registry: serving version %q (seq %d, %s)", loaded.Manifest.Version, loaded.Manifest.Seq, loaded.Manifest.PrecisionString())
	return m, nil
}

// Swappable returns the serving backend wrapper.
func (m *Manager) Swappable() *server.Swappable { return m.sw }

// Active returns the manifest of the serving version.
func (m *Manager) Active() Manifest {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// probeSet picks the canary probe features: explicit option, then the
// version's shipped held-out set, then a deterministic synthetic set.
func (m *Manager) probeSet(loaded *Loaded) [][]float32 {
	if len(m.opt.Probe) > 0 {
		return m.opt.Probe
	}
	if len(loaded.Probe) > 0 {
		return loaded.Probe
	}
	rng := xrand.New(m.opt.ProbeSeed)
	d := loaded.Classifier.Hidden()
	probe := make([][]float32, m.opt.ProbeCount)
	for i := range probe {
		h := make([]float32, d)
		for j := range h {
			h[j] = rng.NormFloat32()
		}
		probe[i] = h
	}
	return probe
}

// Reload implements server.ReloadFunc: load the requested version
// ("" = newest), canary-validate it against the serving model, and
// hot-swap. On any failure the previous version keeps serving and the
// returned active version names it.
func (m *Manager) Reload(ctx context.Context, version string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mReloadTotal.Inc()
	tr := m.opt.Tracer
	if tr == nil {
		tr = telemetry.Global()
	}

	if version == "" {
		latest, err := m.store.Latest()
		if err != nil {
			return m.active.Version, err
		}
		version = latest.Version
	}
	if version == m.active.Version {
		m.logf("registry: reload: version %q already active", version)
		return m.active.Version, nil
	}
	if err := ctx.Err(); err != nil {
		return m.active.Version, err
	}

	// Load (checksum-verified decode) happens entirely off the request
	// path — the serving backend is untouched until Swap.
	loadStart := tr.Now()
	loaded, err := m.store.Load(version)
	tr.AddSince("registry.load."+version, telemetry.TrackRegistry, loadStart)
	if err != nil {
		mLoadFailed.Inc()
		m.logf("registry: reload %q: load rejected: %v", version, err)
		return m.active.Version, err
	}

	// Canary gate: classify the held-out probe set on both models and
	// require the candidate's top-K to agree with the serving model's.
	if m.opt.AgreementFloor > 0 {
		canaryStart := tr.Now()
		agree := m.agreement(ctx, loaded)
		tr.AddSince("registry.canary."+version, telemetry.TrackRegistry, canaryStart)
		mCanaryAgree.Set(agree)
		if agree < m.opt.AgreementFloor {
			mCanaryReject.Inc()
			err := &CanaryError{Version: version, Agreement: agree, Floor: m.opt.AgreementFloor}
			m.logf("registry: reload %q: %v (still serving %q)", version, err, m.active.Version)
			return m.active.Version, err
		}
		m.logf("registry: reload %q: canary passed (agreement %.3f >= %.3f)", version, agree, m.opt.AgreementFloor)
	}

	backend, err := server.NewLocal(loaded.Classifier, loaded.Screener)
	if err != nil {
		mLoadFailed.Inc()
		return m.active.Version, err
	}
	swapStart := tr.Now()
	prev, err := m.sw.Swap(backend, version, func(retired string) {
		mRetiredTotal.Inc()
		m.logf("registry: version %q retired (last in-flight batch drained)", retired)
	})
	tr.AddSince("registry.swap."+version, telemetry.TrackRegistry, swapStart)
	if err != nil {
		m.logf("registry: reload %q: swap rejected: %v", version, err)
		return m.active.Version, err
	}
	m.active = loaded.Manifest
	m.cur = loaded
	m.probe = m.probeSet(loaded)
	mSwapTotal.Inc()
	mActiveVersion.Set(float64(loaded.Manifest.Seq))
	m.logf("registry: swapped %q -> %q (seq %d)", prev, version, loaded.Manifest.Seq)
	return version, nil
}

// pinnedLocal is a version-tagged Local backend for tenant pinning:
// it reports the pinned version through server's Versioned interface
// so pinned responses carry the model_version actually served.
type pinnedLocal struct {
	server.Backend
	version string
}

func (p *pinnedLocal) ModelVersion() string { return p.version }

// BackendFor implements server.Config.PinnedBackend: it resolves a
// model version into a servable backend for tenants pinned to that
// version. The active version resolves to the serving Swappable (the
// hot path — pin and swap coincide); any other published version is
// loaded from the store on first use and cached for the manager's
// lifetime. The cache is bounded by the number of distinct pinned
// versions in the tenant config, which is operator-controlled.
func (m *Manager) BackendFor(version string) (server.Backend, error) {
	if version == "" {
		return m.sw, nil
	}
	m.mu.Lock()
	activeVer := m.active.Version
	m.mu.Unlock()
	if version == activeVer {
		return m.sw, nil
	}
	m.pinMu.Lock()
	defer m.pinMu.Unlock()
	if b, ok := m.pinned[version]; ok {
		return b, nil
	}
	loaded, err := m.store.Load(version)
	if err != nil {
		mLoadFailed.Inc()
		return nil, fmt.Errorf("registry: pinned version %q: %w", version, err)
	}
	backend, err := server.NewLocal(loaded.Classifier, loaded.Screener)
	if err != nil {
		return nil, fmt.Errorf("registry: pinned version %q: %w", version, err)
	}
	if m.pinned == nil {
		m.pinned = make(map[string]server.Backend)
	}
	b := &pinnedLocal{Backend: backend, version: version}
	m.pinned[version] = b
	mPinnedLoaded.Inc()
	m.logf("registry: pinned version %q loaded (seq %d)", version, loaded.Manifest.Seq)
	return b, nil
}

// agreement computes the canary statistic: the mean over the probe
// set of |topK(candidate) ∩ topK(serving)| / K, both models screened
// under the same budget.
func (m *Manager) agreement(ctx context.Context, cand *Loaded) float64 {
	k := m.opt.ProbeTopK
	if l := cand.Classifier.Categories(); k > l {
		k = l
	}
	budget := m.opt.ProbeBudget
	if budget < k {
		budget = k
	}
	if len(m.probe) == 0 {
		return 1
	}
	var sum float64
	n := 0
	for _, h := range m.probe {
		if ctx.Err() != nil {
			break
		}
		curTop := core.ClassifyApprox(m.cur.Classifier, m.cur.Screener, h, core.TopM(budget)).TopPredictions(k)
		candTop := core.ClassifyApprox(cand.Classifier, cand.Screener, h, core.TopM(budget)).TopPredictions(k)
		in := make(map[int]bool, k)
		for _, c := range curTop {
			in[c] = true
		}
		hits := 0
		for _, c := range candTop {
			if in[c] {
				hits++
			}
		}
		sum += float64(hits) / float64(k)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func (m *Manager) logf(format string, args ...interface{}) {
	if m.opt.Logf != nil {
		m.opt.Logf(format, args...)
	}
}
