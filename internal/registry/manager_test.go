package registry

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/server"
	"enmc/internal/telemetry"
	"enmc/internal/workload"
)

// publishGeneration trains a screener on the instance and publishes
// it; epochs differentiates model quality between versions.
func publishGeneration(t *testing.T, store *Store, version, parent string, inst *workload.Instance, epochs int, seed uint64) {
	t.Helper()
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, core.Config{
		Categories: inst.Classifier.Categories(), Hidden: inst.Classifier.Hidden(),
		Reduced: 8, Precision: quant.INT4, Seed: seed,
	}, core.TrainOptions{Epochs: epochs, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(Manifest{Version: version, Parent: parent}, inst.Classifier, scr, inst.Valid); err != nil {
		t.Fatal(err)
	}
}

// publishGarbage publishes a model whose classifier disagrees with
// the serving one (independent random weights), so its canary
// agreement is near-zero.
func publishGarbage(t *testing.T, store *Store, version string, categories, hidden int, seed uint64) {
	t.Helper()
	bad := workload.Generate(
		workload.Spec{Name: "garbage", Categories: categories, Hidden: hidden, LatentRank: 4, ZipfS: 1},
		workload.GenOptions{Seed: seed, Train: 64, Valid: 4, Test: 4})
	scr, _, err := core.TrainScreener(bad.Classifier, bad.Train, core.Config{
		Categories: categories, Hidden: hidden, Reduced: 8, Precision: quant.INT4, Seed: seed + 1,
	}, core.TrainOptions{Epochs: 1, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(Manifest{Version: version}, bad.Classifier, scr, nil); err != nil {
		t.Fatal(err)
	}
}

func managerFixture(t *testing.T) (*Store, *workload.Instance, *Manager) {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.Generate(
		workload.Spec{Name: "mgr-test", Categories: 64, Hidden: 24, LatentRank: 6, ZipfS: 1},
		workload.GenOptions{Seed: 41, Train: 128, Valid: 16, Test: 8})
	publishGeneration(t, store, "v1", "", inst, 3, 100)
	mgr, err := NewManager(store, "", Options{ProbeTopK: 3, AgreementFloor: 0.5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return store, inst, mgr
}

// TestManagerReloadAndCanaryAccept: a same-family candidate passes
// the canary and swaps; metrics and the Swappable version advance.
func TestManagerReloadAndCanaryAccept(t *testing.T) {
	store, inst, mgr := managerFixture(t)
	if v := mgr.Swappable().ModelVersion(); v != "v1" {
		t.Fatalf("initial version = %q", v)
	}

	baseSwaps := telemetry.Default().Counter("registry.swap_total").Value()
	publishGeneration(t, store, "v2", "v1", inst, 4, 200)
	active, err := mgr.Reload(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if active != "v2" || mgr.Swappable().ModelVersion() != "v2" {
		t.Fatalf("active = %q, swappable = %q", active, mgr.Swappable().ModelVersion())
	}
	if got := telemetry.Default().Counter("registry.swap_total").Value(); got != baseSwaps+1 {
		t.Fatalf("swap_total = %d, want %d", got, baseSwaps+1)
	}
	if seq := telemetry.Default().Gauge("registry.active_version").Value(); seq != 2 {
		t.Fatalf("active_version gauge = %v", seq)
	}

	// Reloading the active version is a no-op, not an error.
	active, err = mgr.Reload(context.Background(), "v2")
	if err != nil || active != "v2" {
		t.Fatalf("no-op reload: %q, %v", active, err)
	}
}

// TestManagerCanaryReject: a low-agreement candidate is rejected, the
// old version keeps serving, and the rejection is counted.
func TestManagerCanaryReject(t *testing.T) {
	store, inst, mgr := managerFixture(t)
	baseRejects := telemetry.Default().Counter("registry.canary_rejected").Value()
	publishGarbage(t, store, "v2-bad", inst.Classifier.Categories(), inst.Classifier.Hidden(), 999)

	active, err := mgr.Reload(context.Background(), "v2-bad")
	var ce *CanaryError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CanaryError", err)
	}
	if ce.Agreement >= ce.Floor {
		t.Fatalf("agreement %v not below floor %v", ce.Agreement, ce.Floor)
	}
	if active != "v1" || mgr.Swappable().ModelVersion() != "v1" {
		t.Fatalf("after rejection: active = %q, swappable = %q", active, mgr.Swappable().ModelVersion())
	}
	if got := telemetry.Default().Counter("registry.canary_rejected").Value(); got != baseRejects+1 {
		t.Fatalf("canary_rejected = %d, want %d", got, baseRejects+1)
	}
	// The rejected model must still serve nothing: a probe classifies
	// on v1's backend.
	outs, err := mgr.Swappable().ClassifyBatch(context.Background(), inst.Test[:1], 4, 1)
	if err != nil || len(outs) != 1 {
		t.Fatalf("old version stopped serving: %v", err)
	}
}

// TestManagerCorruptedLoadReject: a bad checksum fails the load phase
// — load_failed increments and the old version keeps serving.
func TestManagerCorruptedLoadReject(t *testing.T) {
	store, inst, mgr := managerFixture(t)
	publishGeneration(t, store, "v2", "v1", inst, 4, 300)
	path := filepath.Join(store.Dir("v2"), ScreenerFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/3] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	baseFailed := telemetry.Default().Counter("registry.load_failed").Value()
	active, err := mgr.Reload(context.Background(), "v2")
	if err == nil {
		t.Fatal("corrupted version swapped in")
	}
	if active != "v1" || mgr.Swappable().ModelVersion() != "v1" {
		t.Fatalf("after corrupted load: active = %q", active)
	}
	if got := telemetry.Default().Counter("registry.load_failed").Value(); got != baseFailed+1 {
		t.Fatalf("load_failed = %d, want %d", got, baseFailed+1)
	}
}

// TestManagerSwapUnderTraffic: concurrent classification through the
// Swappable while the manager swaps — zero errors, and the retire
// callback eventually fires for the old version.
func TestManagerSwapUnderTraffic(t *testing.T) {
	store, inst, mgr := managerFixture(t)
	publishGeneration(t, store, "v2", "v1", inst, 4, 400)

	baseRetired := telemetry.Default().Counter("registry.retired_total").Value()
	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := mgr.Swappable().ClassifyBatch(context.Background(), inst.Test[:2], 4, 2); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	if _, err := mgr.Reload(context.Background(), "v2"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d classification failures during swap", n)
	}
	if got := telemetry.Default().Counter("registry.retired_total").Value(); got != baseRetired+1 {
		t.Fatalf("retired_total = %d, want %d (old version not retired after drain)", got, baseRetired+1)
	}
}

// TestManagerTracerSpans: a reload records load/canary/swap spans on
// the registry track.
func TestManagerTracerSpans(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := workload.Generate(
		workload.Spec{Name: "mgr-trace", Categories: 48, Hidden: 16, LatentRank: 4, ZipfS: 1},
		workload.GenOptions{Seed: 51, Train: 96, Valid: 8, Test: 4})
	publishGeneration(t, store, "v1", "", inst, 3, 500)
	publishGeneration(t, store, "v2", "v1", inst, 4, 600)

	tr := telemetry.NewTracer()
	mgr, err := NewManager(store, "v1", Options{AgreementFloor: 0.3, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Reload(context.Background(), "v2"); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"registry.load.v2": false, "registry.canary.v2": false, "registry.swap.v2": false}
	for _, sp := range tr.Spans() {
		if _, ok := want[sp.Name]; ok {
			if sp.TID != telemetry.TrackRegistry {
				t.Fatalf("span %s on track %d, want %d", sp.Name, sp.TID, telemetry.TrackRegistry)
			}
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %s not recorded", name)
		}
	}
}

// TestManagerBackendFor: pinning resolves the active version to the
// serving Swappable, older published versions to cached version-tagged
// backends, and unknown versions to an error — and survives a swap
// (the old active becomes a pin-loadable version).
func TestManagerBackendFor(t *testing.T) {
	store, inst, mgr := managerFixture(t)

	// Empty and active pins take the hot path.
	b, err := mgr.BackendFor("")
	if err != nil || b != server.Backend(mgr.Swappable()) {
		t.Fatalf("BackendFor(\"\") = %T, %v; want the Swappable", b, err)
	}
	b, err = mgr.BackendFor("v1")
	if err != nil || b != server.Backend(mgr.Swappable()) {
		t.Fatalf("BackendFor(active) = %T, %v; want the Swappable", b, err)
	}

	// Swap to v2; v1 is now a pinned load.
	publishGeneration(t, store, "v2", "v1", inst, 4, 200)
	if _, err := mgr.Reload(context.Background(), "v2"); err != nil {
		t.Fatal(err)
	}
	basePins := telemetry.Default().Counter("registry.pinned_loaded").Value()
	old, err := mgr.BackendFor("v1")
	if err != nil {
		t.Fatal(err)
	}
	ver, ok := old.(interface{ ModelVersion() string })
	if !ok || ver.ModelVersion() != "v1" {
		t.Fatalf("pinned backend does not report version v1 (%T)", old)
	}
	if old.Hidden() != inst.Classifier.Hidden() {
		t.Fatalf("pinned backend hidden = %d", old.Hidden())
	}
	// Cached: second resolve is the same instance, no second load.
	again, err := mgr.BackendFor("v1")
	if err != nil || again != old {
		t.Fatalf("pin cache miss: %T %v", again, err)
	}
	if got := telemetry.Default().Counter("registry.pinned_loaded").Value(); got != basePins+1 {
		t.Fatalf("pinned_loaded = %d, want %d", got, basePins+1)
	}

	// The pinned backend actually classifies.
	out, err := old.ClassifyBatch(context.Background(), [][]float32{inst.Test[0]}, 8, 3)
	if err != nil || len(out) != 1 || len(out[0].TopK) == 0 {
		t.Fatalf("pinned classify: %v %+v", err, out)
	}

	// Unknown version is a load error, not a panic or a fallback.
	if _, err := mgr.BackendFor("v9"); err == nil {
		t.Fatal("BackendFor(unknown) succeeded")
	}
}
