package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"enmc/internal/core"
)

// Checkpointed training: a long distillation run periodically writes
// its screener state under <root>/.ckpt/<version>/ so an interrupted
// run resumes where it left off (core.TrainOptions.InitFrom warm
// start) instead of restarting. On completion the version is
// published atomically and the checkpoint is deleted — a checkpoint
// directory existing means "training in progress or interrupted",
// never "published".

const ckptDirName = ".ckpt"

// TrainSpec describes one checkpointed training run.
type TrainSpec struct {
	// Version names the registry version the run publishes.
	Version string
	// Parent is recorded in the manifest ("" for from-scratch).
	Parent string
	// Cfg and Opt configure the screener distillation. Opt.Epochs is
	// ignored; TotalEpochs governs.
	Cfg core.Config
	Opt core.TrainOptions
	// TotalEpochs is the full run length (default 5).
	TotalEpochs int
	// CheckpointEvery writes a checkpoint after this many epochs
	// (default 1).
	CheckpointEvery int
	// StopAfter, when positive, interrupts the run once at least this
	// many epochs are done — the deterministic "process died" hook the
	// resume path is tested (and demoed) with.
	StopAfter int
	// ProbeCount reserves this many samples from the tail of the
	// sample set as the held-out canary probe (default 32, clamped to
	// a quarter of the samples). Probes are excluded from training.
	ProbeCount int
}

func (s *TrainSpec) defaults() {
	if s.TotalEpochs <= 0 {
		s.TotalEpochs = 5
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 1
	}
	if s.ProbeCount <= 0 {
		s.ProbeCount = 32
	}
}

// ckptState is the resume metadata next to the screener checkpoint.
type ckptState struct {
	Version     string      `json:"version"`
	Parent      string      `json:"parent,omitempty"`
	EpochsDone  int         `json:"epochs_done"`
	TotalEpochs int         `json:"total_epochs"`
	LastLoss    float64     `json:"last_loss"`
	Resumed     bool        `json:"resumed"`
	Cfg         core.Config `json:"cfg"`
}

const (
	ckptStateFile    = "state.json"
	ckptScreenerFile = "screener.ckpt"
)

// CheckpointDir returns where a version's in-progress training state
// lives.
func (s *Store) CheckpointDir(version string) string {
	return filepath.Join(s.root, ckptDirName, version)
}

// HasCheckpoint reports whether an interrupted run exists for version.
func (s *Store) HasCheckpoint(version string) bool {
	_, err := os.Stat(filepath.Join(s.CheckpointDir(version), ckptStateFile))
	return err == nil
}

func (s *Store) readCheckpoint(version string) (*ckptState, *core.Screener, error) {
	dir := s.CheckpointDir(version)
	buf, err := os.ReadFile(filepath.Join(dir, ckptStateFile))
	if err != nil {
		return nil, nil, fmt.Errorf("registry: checkpoint %q: %w", version, err)
	}
	var st ckptState
	if err := json.Unmarshal(buf, &st); err != nil {
		return nil, nil, fmt.Errorf("registry: checkpoint %q: bad state: %w", version, err)
	}
	f, err := os.Open(filepath.Join(dir, ckptScreenerFile))
	if err != nil {
		return nil, nil, fmt.Errorf("registry: checkpoint %q: %w", version, err)
	}
	defer f.Close()
	scr, err := core.ReadScreener(f)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: checkpoint %q: decoding screener: %w", version, err)
	}
	return &st, scr, nil
}

func (s *Store) writeCheckpoint(st *ckptState, scr *core.Screener) error {
	dir := s.CheckpointDir(st.Version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	// Screener first, state last: a state file present implies a
	// matching screener image; a crash between the writes leaves the
	// previous consistent pair (or nothing) behind.
	tmp := filepath.Join(dir, ckptScreenerFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if _, err := scr.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("registry: writing checkpoint screener: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptScreenerFile)); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	stTmp := filepath.Join(dir, ckptStateFile+".tmp")
	if err := os.WriteFile(stTmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(stTmp, filepath.Join(dir, ckptStateFile))
}

// TrainRun runs (or resumes) a checkpointed training run against the
// frozen classifier. It returns the published manifest when the run
// completes, or published=false when StopAfter interrupted it — call
// TrainRun again with the same spec to resume from the checkpoint.
func (s *Store) TrainRun(cls *core.Classifier, samples [][]float32, spec TrainSpec) (m Manifest, published bool, err error) {
	spec.defaults()
	if err := validVersion(spec.Version); err != nil {
		return m, false, err
	}
	if _, err := os.Stat(s.Dir(spec.Version)); err == nil {
		return m, false, fmt.Errorf("registry: version %q already published", spec.Version)
	}

	// Hold out the probe set from the sample tail before any
	// training, so published probes were never trained on and the
	// split is identical across resume boundaries.
	nProbe := spec.ProbeCount
	if max := len(samples) / 4; nProbe > max {
		nProbe = max
	}
	train := samples[:len(samples)-nProbe]
	probe := samples[len(samples)-nProbe:]
	if len(train) == 0 {
		return m, false, fmt.Errorf("registry: no training samples after probe holdout")
	}

	epochsDone := 0
	resumed := false
	var warm *core.Screener
	if s.HasCheckpoint(spec.Version) {
		st, scr, err := s.readCheckpoint(spec.Version)
		if err != nil {
			return m, false, err
		}
		if st.Cfg != spec.Cfg {
			return m, false, fmt.Errorf("registry: checkpoint %q was trained with config %+v, spec has %+v",
				spec.Version, st.Cfg, spec.Cfg)
		}
		epochsDone, warm, resumed = st.EpochsDone, scr, true
	}

	var lastLoss float64
	scr := warm
	for epochsDone < spec.TotalEpochs {
		chunk := spec.CheckpointEvery
		if rem := spec.TotalEpochs - epochsDone; chunk > rem {
			chunk = rem
		}
		opt := spec.Opt
		opt.Epochs = chunk
		// Each chunk shuffles differently (resume does not replay the
		// first chunk's order) but deterministically for a given spec.
		opt.Seed = spec.Opt.Seed + uint64(epochsDone)
		opt.InitFrom = scr
		if scr != nil {
			opt.InitProjected = false
		}
		next, stats, err := core.TrainScreener(cls, train, spec.Cfg, opt)
		if err != nil {
			return m, false, err
		}
		scr = next
		epochsDone += chunk
		if n := len(stats.EpochLoss); n > 0 {
			lastLoss = stats.EpochLoss[n-1]
		}
		if err := s.writeCheckpoint(&ckptState{
			Version: spec.Version, Parent: spec.Parent,
			EpochsDone: epochsDone, TotalEpochs: spec.TotalEpochs,
			LastLoss: lastLoss, Resumed: resumed, Cfg: spec.Cfg,
		}, scr); err != nil {
			return m, false, err
		}
		if spec.StopAfter > 0 && epochsDone >= spec.StopAfter && epochsDone < spec.TotalEpochs {
			return m, false, nil // interrupted; checkpoint holds the progress
		}
	}

	m, err = s.Publish(Manifest{
		Version: spec.Version,
		Parent:  spec.Parent,
		Train: TrainMeta{
			Epochs: spec.TotalEpochs, Samples: len(train),
			FinalLoss: lastLoss, Resumed: resumed,
		},
	}, cls, scr, probe)
	if err != nil {
		return m, false, err
	}
	// The version is live; the checkpoint is now stale state.
	if err := os.RemoveAll(s.CheckpointDir(spec.Version)); err != nil {
		return m, true, fmt.Errorf("registry: published but could not remove checkpoint: %w", err)
	}
	return m, true, nil
}
