// Package quant implements the fixed-point quantization used by the
// ENMC Screener. The paper runs the screening phase in INT4
// (Section 5.2, Table 3) after finding in Fig. 12(b) that 4-bit
// fixed-point preserves approximation quality; this package provides
// symmetric linear quantizers for INT2/INT4/INT8, packed INT4
// storage, and an integer MAC kernel that mirrors the hardware
// datapath: int8 operands, int32 accumulation, one dequantization per
// output element.
package quant

import (
	"fmt"

	"enmc/internal/tensor"
)

// Bits selects the quantization precision.
type Bits int

// Supported precisions. INT4 is the ENMC hardware configuration.
const (
	INT2 Bits = 2
	INT4 Bits = 4
	INT8 Bits = 8
)

func (b Bits) String() string { return fmt.Sprintf("INT%d", int(b)) }

// MaxLevel returns the largest representable magnitude for the
// precision, e.g. 7 for INT4 (symmetric range [-7, 7]; -8 is unused
// so the datapath stays symmetric like typical MAC arrays).
func (b Bits) MaxLevel() int32 {
	switch b {
	case INT2, INT4, INT8:
		return int32(1)<<(uint(b)-1) - 1
	default:
		panic(fmt.Sprintf("quant: unsupported precision %d bits", int(b)))
	}
}

// Vector is a quantized vector: q[i] ≈ round(x[i]/Scale).
type Vector struct {
	Bits  Bits
	Scale float32
	Q     []int8
}

// QuantizeVector quantizes x symmetrically at the given precision.
// A zero vector gets scale 1 so dequantization stays well-defined.
func QuantizeVector(x []float32, bits Bits) *Vector {
	maxLevel := bits.MaxLevel()
	maxAbs := tensor.MaxAbs(x)
	scale := maxAbs / float32(maxLevel)
	if scale == 0 {
		scale = 1
	}
	q := make([]int8, len(x))
	for i, v := range x {
		q[i] = clampRound(v/scale, maxLevel)
	}
	return &Vector{Bits: bits, Scale: scale, Q: q}
}

// Dequantize reconstructs the float32 vector.
func (v *Vector) Dequantize() []float32 {
	out := make([]float32, len(v.Q))
	for i, q := range v.Q {
		out[i] = float32(q) * v.Scale
	}
	return out
}

// Matrix is a quantized row-major matrix with per-row scales, the
// layout a weight-stationary MAC array consumes: each streamed row
// carries one scale word.
type Matrix struct {
	Bits       Bits
	Rows, Cols int
	Scales     []float32 // len Rows
	Q          []int8    // len Rows*Cols
}

// QuantizeMatrix quantizes m row-wise at the given precision.
func QuantizeMatrix(m *tensor.Matrix, bits Bits) *Matrix {
	qm := &Matrix{
		Bits:   bits,
		Rows:   m.Rows,
		Cols:   m.Cols,
		Scales: make([]float32, m.Rows),
		Q:      make([]int8, m.Rows*m.Cols),
	}
	maxLevel := bits.MaxLevel()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		scale := tensor.MaxAbs(row) / float32(maxLevel)
		if scale == 0 {
			scale = 1
		}
		qm.Scales[i] = scale
		qrow := qm.Q[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			qrow[j] = clampRound(v/scale, maxLevel)
		}
	}
	return qm
}

// QuantizeMatrixPerTensor quantizes with one shared scale, the
// cheaper hardware option; kept for the per-row vs per-tensor
// ablation.
func QuantizeMatrixPerTensor(m *tensor.Matrix, bits Bits) *Matrix {
	qm := &Matrix{
		Bits:   bits,
		Rows:   m.Rows,
		Cols:   m.Cols,
		Scales: make([]float32, m.Rows),
		Q:      make([]int8, m.Rows*m.Cols),
	}
	maxLevel := bits.MaxLevel()
	scale := tensor.MaxAbs(m.Data) / float32(maxLevel)
	if scale == 0 {
		scale = 1
	}
	for i := range qm.Scales {
		qm.Scales[i] = scale
	}
	for i, v := range m.Data {
		qm.Q[i] = clampRound(v/scale, maxLevel)
	}
	return qm
}

// Row returns quantized row i sharing storage.
func (m *Matrix) Row(i int) []int8 { return m.Q[i*m.Cols : (i+1)*m.Cols] }

// Dequantize reconstructs a float32 matrix.
func (m *Matrix) Dequantize() *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := m.Scales[i]
		src := m.Row(i)
		dst := out.Row(i)
		for j, q := range src {
			dst[j] = float32(q) * s
		}
	}
	return out
}

// Bytes reports the packed storage footprint of the quantized
// payload (excluding scales): Rows*Cols elements at Bits each.
func (m *Matrix) Bytes() int64 {
	return (int64(m.Rows)*int64(m.Cols)*int64(m.Bits) + 7) / 8
}

// MatVec computes dst = dequant(m)·dequant(x) using the integer
// datapath: per-row int32 accumulation of int8 products, then a
// single float multiply by (rowScale · xScale). This is bit-exact
// with what the Screener MAC array computes.
func (m *Matrix) MatVec(dst []float32, x *Vector) {
	if len(x.Q) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("quant: MatVec shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x.Q), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc int32
		for j, q := range row {
			acc += int32(q) * int32(x.Q[j])
		}
		dst[i] = float32(acc) * m.Scales[i] * x.Scale
	}
}

// DotInt32 exposes the raw integer accumulation for one row, used by
// the cycle simulator to count MAC operations faithfully.
func (m *Matrix) DotInt32(row int, x []int8) int32 {
	r := m.Row(row)
	if len(x) != len(r) {
		panic("quant: DotInt32 length mismatch")
	}
	var acc int32
	for j, q := range r {
		acc += int32(q) * int32(x[j])
	}
	return acc
}

func clampRound(v float32, maxLevel int32) int8 {
	var r int32
	if v >= 0 {
		r = int32(v + 0.5)
	} else {
		r = int32(v - 0.5)
	}
	if r > maxLevel {
		r = maxLevel
	}
	if r < -maxLevel {
		r = -maxLevel
	}
	return int8(r)
}

// PackINT4 packs int8 nibbles (each in [-8,7]) two per byte, low
// nibble first — the DRAM image format for screener weights.
func PackINT4(q []int8) []byte {
	out := make([]byte, (len(q)+1)/2)
	for i, v := range q {
		nib := byte(v) & 0x0f
		if i%2 == 0 {
			out[i/2] = nib
		} else {
			out[i/2] |= nib << 4
		}
	}
	return out
}

// UnpackINT4 reverses PackINT4; n is the element count.
func UnpackINT4(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := 0; i < n; i++ {
		var nib byte
		if i%2 == 0 {
			nib = packed[i/2] & 0x0f
		} else {
			nib = packed[i/2] >> 4
		}
		// Sign-extend the nibble.
		out[i] = int8(nib<<4) >> 4
	}
	return out
}

// PackINT2 packs 2-bit values (each in [-1, 1]) four per byte, lowest
// crumb first — the DRAM image format for INT2 screening weights.
// Values are stored as sign-magnitude crumbs: 00=0, 01=+1, 11=-1.
func PackINT2(q []int8) []byte {
	out := make([]byte, (len(q)+3)/4)
	for i, v := range q {
		var crumb byte
		switch {
		case v > 0:
			crumb = 0b01
		case v < 0:
			crumb = 0b11
		}
		out[i/4] |= crumb << (uint(i%4) * 2)
	}
	return out
}

// UnpackINT2 reverses PackINT2; n is the element count.
func UnpackINT2(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := 0; i < n; i++ {
		crumb := packed[i/4] >> (uint(i%4) * 2) & 0b11
		switch crumb {
		case 0b01:
			out[i] = 1
		case 0b11:
			out[i] = -1
		}
	}
	return out
}

// MatVecBatch computes dst[b] = dequant(m)·dequant(xs[b]) for a batch
// of vectors with a weight-stationary loop: each weight row is read
// once and applied to every batch element — the reuse pattern that
// makes batched screening traffic-free on the weight side (and the
// reason ENMC's batch-4 offloads take barely longer than batch-1).
func (m *Matrix) MatVecBatch(dst [][]float32, xs []*Vector) {
	if len(dst) != len(xs) {
		panic("quant: MatVecBatch batch size mismatch")
	}
	for b, x := range xs {
		if len(x.Q) != m.Cols || len(dst[b]) != m.Rows {
			panic(fmt.Sprintf("quant: MatVecBatch shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x.Q), len(dst[b])))
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		scale := m.Scales[i]
		for b, x := range xs {
			var acc int32
			for j, q := range row {
				acc += int32(q) * int32(x.Q[j])
			}
			dst[b][i] = float32(acc) * scale * x.Scale
		}
	}
}
