// Package quant implements the fixed-point quantization used by the
// ENMC Screener. The paper runs the screening phase in INT4
// (Section 5.2, Table 3) after finding in Fig. 12(b) that 4-bit
// fixed-point preserves approximation quality; this package provides
// symmetric linear quantizers for INT2/INT4/INT8, packed INT4
// storage, and an integer MAC kernel that mirrors the hardware
// datapath: int8 operands, int32 accumulation, one dequantization per
// output element.
package quant

import (
	"fmt"

	"enmc/internal/tensor"
)

// Bits selects the quantization precision.
type Bits int

// Supported precisions. INT4 is the ENMC hardware configuration.
const (
	INT2 Bits = 2
	INT4 Bits = 4
	INT8 Bits = 8
)

func (b Bits) String() string { return fmt.Sprintf("INT%d", int(b)) }

// MaxLevel returns the largest representable magnitude for the
// precision, e.g. 7 for INT4 (symmetric range [-7, 7]; -8 is unused
// so the datapath stays symmetric like typical MAC arrays).
func (b Bits) MaxLevel() int32 {
	switch b {
	case INT2, INT4, INT8:
		return int32(1)<<(uint(b)-1) - 1
	default:
		panic(fmt.Sprintf("quant: unsupported precision %d bits", int(b)))
	}
}

// Vector is a quantized vector: q[i] ≈ round(x[i]/Scale).
type Vector struct {
	Bits  Bits
	Scale float32
	Q     []int8

	// biased caches q + (MaxLevel+1) as uint64 scalars for the SWAR
	// GEMV kernel (INT2/INT4 only; nil otherwise). Maintained by
	// QuantizeVectorInto; vectors built by hand simply fall back to
	// the scalar kernel.
	biased []uint64
}

// QuantizeVector quantizes x symmetrically at the given precision.
// A zero vector gets scale 1 so dequantization stays well-defined.
func QuantizeVector(x []float32, bits Bits) *Vector {
	v := &Vector{}
	QuantizeVectorInto(v, x, bits)
	return v
}

// QuantizeVectorInto quantizes x into dst, reusing dst.Q when its
// capacity suffices — the destination-reuse variant the allocation-
// free classify path runs on. The result is identical to
// QuantizeVector.
func QuantizeVectorInto(dst *Vector, x []float32, bits Bits) {
	maxLevel := bits.MaxLevel()
	maxAbs := tensor.MaxAbs(x)
	scale := maxAbs / float32(maxLevel)
	if scale == 0 {
		scale = 1
	}
	if cap(dst.Q) < len(x) {
		dst.Q = make([]int8, len(x))
	}
	dst.Q = dst.Q[:len(x)]
	for i, v := range x {
		dst.Q[i] = clampRound(v/scale, maxLevel)
	}
	dst.Bits = bits
	dst.Scale = scale
	if bits <= INT4 {
		if cap(dst.biased) < len(x) {
			dst.biased = make([]uint64, len(x))
		}
		dst.biased = dst.biased[:len(x)]
		bias := int32(maxLevel) + 1
		for i, q := range dst.Q {
			dst.biased[i] = uint64(int32(q) + bias)
		}
	} else {
		dst.biased = nil
	}
}

// Dequantize reconstructs the float32 vector.
func (v *Vector) Dequantize() []float32 {
	out := make([]float32, len(v.Q))
	for i, q := range v.Q {
		out[i] = float32(q) * v.Scale
	}
	return out
}

// Matrix is a quantized row-major matrix with per-row scales, the
// layout a weight-stationary MAC array consumes: each streamed row
// carries one scale word.
type Matrix struct {
	Bits       Bits
	Rows, Cols int
	Scales     []float32 // len Rows
	Q          []int8    // len Rows*Cols

	// SWAR acceleration structure (INT2/INT4 only), built by
	// BuildAccel: panels packs each aligned 4-row group column-major —
	// panels[(i/4)*Cols+j] holds rows i..i+3 at column j as biased
	// (always-positive) 16-bit lanes — and rowSums holds per-row Σq for
	// the bias correction. Matrices assembled by hand (e.g. the
	// deserializer) may leave these nil; MatVec then falls back to the
	// scalar-blocked kernel.
	panels  []uint64
	rowSums []int32
}

// BuildAccel (re)builds the SWAR panel packing from Q. It is called
// by the quantizers and is safe to call on any fully-populated
// matrix; INT8 matrices have no packing (16-bit lanes would overflow)
// and reset it to nil.
func (m *Matrix) BuildAccel() {
	if m.Bits > INT4 {
		m.panels, m.rowSums = nil, nil
		return
	}
	m.rowSums = make([]int32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s int32
		for _, q := range m.Row(i) {
			s += int32(q)
		}
		m.rowSums[i] = s
	}
	bias := m.Bits.MaxLevel() + 1
	n := m.Cols
	m.panels = make([]uint64, (m.Rows/4)*n)
	for p := 0; p < m.Rows/4; p++ {
		r0, r1, r2, r3 := m.Row(4*p), m.Row(4*p+1), m.Row(4*p+2), m.Row(4*p+3)
		dst := m.panels[p*n : (p+1)*n]
		for j := 0; j < n; j++ {
			dst[j] = uint64(int32(r0[j])+bias) |
				uint64(int32(r1[j])+bias)<<16 |
				uint64(int32(r2[j])+bias)<<32 |
				uint64(int32(r3[j])+bias)<<48
		}
	}
}

// QuantizeMatrix quantizes m row-wise at the given precision.
func QuantizeMatrix(m *tensor.Matrix, bits Bits) *Matrix {
	qm := &Matrix{
		Bits:   bits,
		Rows:   m.Rows,
		Cols:   m.Cols,
		Scales: make([]float32, m.Rows),
		Q:      make([]int8, m.Rows*m.Cols),
	}
	maxLevel := bits.MaxLevel()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		scale := tensor.MaxAbs(row) / float32(maxLevel)
		if scale == 0 {
			scale = 1
		}
		qm.Scales[i] = scale
		qrow := qm.Q[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			qrow[j] = clampRound(v/scale, maxLevel)
		}
	}
	qm.BuildAccel()
	return qm
}

// QuantizeMatrixPerTensor quantizes with one shared scale, the
// cheaper hardware option; kept for the per-row vs per-tensor
// ablation.
func QuantizeMatrixPerTensor(m *tensor.Matrix, bits Bits) *Matrix {
	qm := &Matrix{
		Bits:   bits,
		Rows:   m.Rows,
		Cols:   m.Cols,
		Scales: make([]float32, m.Rows),
		Q:      make([]int8, m.Rows*m.Cols),
	}
	maxLevel := bits.MaxLevel()
	scale := tensor.MaxAbs(m.Data) / float32(maxLevel)
	if scale == 0 {
		scale = 1
	}
	for i := range qm.Scales {
		qm.Scales[i] = scale
	}
	for i, v := range m.Data {
		qm.Q[i] = clampRound(v/scale, maxLevel)
	}
	qm.BuildAccel()
	return qm
}

// Row returns quantized row i sharing storage.
func (m *Matrix) Row(i int) []int8 { return m.Q[i*m.Cols : (i+1)*m.Cols] }

// Dequantize reconstructs a float32 matrix.
func (m *Matrix) Dequantize() *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := m.Scales[i]
		src := m.Row(i)
		dst := out.Row(i)
		for j, q := range src {
			dst[j] = float32(q) * s
		}
	}
	return out
}

// Bytes reports the packed storage footprint of the quantized
// payload (excluding scales): Rows*Cols elements at Bits each.
func (m *Matrix) Bytes() int64 {
	return (int64(m.Rows)*int64(m.Cols)*int64(m.Bits) + 7) / 8
}

// MatVec computes dst = dequant(m)·dequant(x) using the integer
// datapath: per-row int32 accumulation of int8 products, then a
// single float multiply by (rowScale · xScale). This is bit-exact
// with what the Screener MAC array computes. The inner loop is a
// 4-row-blocked, 8-wide-unrolled kernel: the activation loads are
// amortized across four weight rows and the unroll breaks the
// accumulation dependency chain — integer addition is associative,
// so the result is bit-identical to the scalar loop.
func (m *Matrix) MatVec(dst []float32, x *Vector) {
	if len(x.Q) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("quant: MatVec shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x.Q), len(dst)))
	}
	m.matVecRange(dst, x, 0, m.Rows)
}

// MatVecRange computes dst[i] = dequant(m).Row(i)·dequant(x) for rows
// lo ≤ i < hi only, leaving the rest of dst untouched. dst is indexed
// globally (length m.Rows), so disjoint ranges can be filled from
// concurrent goroutines — the shard kernel of the intra-query
// parallel screening GEMV.
func (m *Matrix) MatVecRange(dst []float32, x *Vector, lo, hi int) {
	if len(x.Q) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("quant: MatVecRange shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x.Q), len(dst)))
	}
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("quant: MatVecRange rows [%d,%d) of %d", lo, hi, m.Rows))
	}
	m.matVecRange(dst, x, lo, hi)
}

// matVecRange dispatches to the fastest kernel available: the SWAR
// path needs the matrix panel packing and a biased vector cache (both
// INT2/INT4-only); anything else — INT8, hand-assembled operands —
// takes the scalar-blocked kernel. Both produce the same int32 row
// sums, so the choice is invisible in the output bits.
func (m *Matrix) matVecRange(dst []float32, x *Vector, lo, hi int) {
	if m.panels != nil && x.biased != nil && len(x.biased) == m.Cols {
		m.matVecRangeSWAR(dst, x, lo, hi)
		return
	}
	m.matVecRangeBlocked(dst, x, lo, hi)
}

// matVecRangeSWAR is the 4-rows-per-word GEMV kernel. Weights and
// activations are biased to be strictly positive (w' = w+bw,
// x' = x+bx with b = MaxLevel+1), four weight rows live in the 16-bit
// lanes of one uint64, and a single 64-bit multiply by the scalar x'
// then performs four MACs at once: lane products are at most 15·15
// and per-lane sums are flushed to int32 accumulators every 256
// columns, so lanes can never carry into each other. The bias is
// removed exactly afterwards — Σw'x' = Σwx + bx·Σw + bw·Σx + n·bw·bx,
// with Σw per row precomputed by BuildAccel — so the result is the
// same integer the scalar kernel accumulates, hence bit-identical
// output.
func (m *Matrix) matVecRangeSWAR(dst []float32, x *Vector, lo, hi int) {
	n := m.Cols
	xb := x.biased
	bw := m.Bits.MaxLevel() + 1
	bx := x.Bits.MaxLevel() + 1
	var sumX int32
	for _, q := range x.Q {
		sumX += int32(q)
	}
	xcorr := bw*sumX + int32(n)*bw*bx
	xs := x.Scale

	// Rows before the first aligned panel and past the last one run on
	// the scalar kernel.
	if r := lo & 3; r != 0 {
		edge := lo + 4 - r
		if edge > hi {
			edge = hi
		}
		m.matVecRangeBlocked(dst, x, lo, edge)
		lo = edge
	}
	aligned := m.Rows &^ 3
	if aligned > hi {
		aligned = hi
	}
	i := lo
	// Two panel groups (8 rows) per pass: the activation lane vector
	// is loaded once and feeds both panel streams, halving the load
	// traffic that bounds the single-group loop.
	for ; i+8 <= aligned; i += 8 {
		base := (i >> 2) * n
		pw0 := m.panels[base : base+n : base+n]
		pw1 := m.panels[base+n : base+2*n : base+2*n]
		var a0, a1, a2, a3, a4, a5, a6, a7 int32
		j := 0
		for j < n {
			end := j + 256
			if end > n {
				end = n
			}
			cw0 := pw0[j:end]
			cw1 := pw1[j:end][:len(cw0)]
			cx := xb[j:end][:len(cw0)]
			var accA0, accA1, accB0, accB1 uint64
			t := 0
			for ; t+8 <= len(cw0); t += 8 {
				x0, x1, x2, x3 := cx[t], cx[t+1], cx[t+2], cx[t+3]
				accA0 += cw0[t]*x0 + cw0[t+1]*x1 + cw0[t+2]*x2 + cw0[t+3]*x3
				accB0 += cw1[t]*x0 + cw1[t+1]*x1 + cw1[t+2]*x2 + cw1[t+3]*x3
				x4, x5, x6, x7 := cx[t+4], cx[t+5], cx[t+6], cx[t+7]
				accA1 += cw0[t+4]*x4 + cw0[t+5]*x5 + cw0[t+6]*x6 + cw0[t+7]*x7
				accB1 += cw1[t+4]*x4 + cw1[t+5]*x5 + cw1[t+6]*x6 + cw1[t+7]*x7
			}
			for ; t < len(cw0); t++ {
				accA0 += cw0[t] * cx[t]
				accB0 += cw1[t] * cx[t]
			}
			accA := accA0 + accA1
			accB := accB0 + accB1
			a0 += int32(accA & 0xffff)
			a1 += int32(accA >> 16 & 0xffff)
			a2 += int32(accA >> 32 & 0xffff)
			a3 += int32(accA >> 48 & 0xffff)
			a4 += int32(accB & 0xffff)
			a5 += int32(accB >> 16 & 0xffff)
			a6 += int32(accB >> 32 & 0xffff)
			a7 += int32(accB >> 48 & 0xffff)
			j = end
		}
		dst[i] = float32(a0-bx*m.rowSums[i]-xcorr) * m.Scales[i] * xs
		dst[i+1] = float32(a1-bx*m.rowSums[i+1]-xcorr) * m.Scales[i+1] * xs
		dst[i+2] = float32(a2-bx*m.rowSums[i+2]-xcorr) * m.Scales[i+2] * xs
		dst[i+3] = float32(a3-bx*m.rowSums[i+3]-xcorr) * m.Scales[i+3] * xs
		dst[i+4] = float32(a4-bx*m.rowSums[i+4]-xcorr) * m.Scales[i+4] * xs
		dst[i+5] = float32(a5-bx*m.rowSums[i+5]-xcorr) * m.Scales[i+5] * xs
		dst[i+6] = float32(a6-bx*m.rowSums[i+6]-xcorr) * m.Scales[i+6] * xs
		dst[i+7] = float32(a7-bx*m.rowSums[i+7]-xcorr) * m.Scales[i+7] * xs
	}
	for ; i+4 <= aligned; i += 4 {
		base := (i >> 2) * n
		pw := m.panels[base : base+n : base+n]
		var a0, a1, a2, a3 int32
		j := 0
		for j < n {
			end := j + 256
			if end > n {
				end = n
			}
			// Equal-length chunk slices so the compiler drops the
			// bounds checks; two accumulators break the add dependency
			// chain (each covers ≤128 columns, so lanes stay <2¹⁶ even
			// after the final lane-wise add).
			cw := pw[j:end]
			cx := xb[j:end][:len(cw)]
			var acc0, acc1 uint64
			t := 0
			for ; t+8 <= len(cw); t += 8 {
				acc0 += cw[t]*cx[t] + cw[t+1]*cx[t+1] + cw[t+2]*cx[t+2] + cw[t+3]*cx[t+3]
				acc1 += cw[t+4]*cx[t+4] + cw[t+5]*cx[t+5] + cw[t+6]*cx[t+6] + cw[t+7]*cx[t+7]
			}
			for ; t < len(cw); t++ {
				acc0 += cw[t] * cx[t]
			}
			acc := acc0 + acc1
			a0 += int32(acc & 0xffff)
			a1 += int32(acc >> 16 & 0xffff)
			a2 += int32(acc >> 32 & 0xffff)
			a3 += int32(acc >> 48 & 0xffff)
			j = end
		}
		dst[i] = float32(a0-bx*m.rowSums[i]-xcorr) * m.Scales[i] * xs
		dst[i+1] = float32(a1-bx*m.rowSums[i+1]-xcorr) * m.Scales[i+1] * xs
		dst[i+2] = float32(a2-bx*m.rowSums[i+2]-xcorr) * m.Scales[i+2] * xs
		dst[i+3] = float32(a3-bx*m.rowSums[i+3]-xcorr) * m.Scales[i+3] * xs
	}
	if i < hi {
		m.matVecRangeBlocked(dst, x, i, hi)
	}
}

// matVecRangeBlocked is the portable 4-row-blocked, 8-wide-unrolled
// scalar kernel: activation loads are amortized across four weight
// rows and the unroll breaks the accumulation dependency chain.
func (m *Matrix) matVecRangeBlocked(dst []float32, x *Vector, lo, hi int) {
	xq := x.Q
	n := len(xq)
	cols := m.Cols
	xs := x.Scale
	i := lo
	for ; i+4 <= hi; i += 4 {
		base := i * cols
		r0 := m.Q[base : base+n : base+n]
		r1 := m.Q[base+cols : base+cols+n : base+cols+n]
		r2 := m.Q[base+2*cols : base+2*cols+n : base+2*cols+n]
		r3 := m.Q[base+3*cols : base+3*cols+n : base+3*cols+n]
		var a0, a1, a2, a3 int32
		j := 0
		for ; j+8 <= n; j += 8 {
			x0, x1, x2, x3 := int32(xq[j]), int32(xq[j+1]), int32(xq[j+2]), int32(xq[j+3])
			x4, x5, x6, x7 := int32(xq[j+4]), int32(xq[j+5]), int32(xq[j+6]), int32(xq[j+7])
			a0 += int32(r0[j])*x0 + int32(r0[j+1])*x1 + int32(r0[j+2])*x2 + int32(r0[j+3])*x3 +
				int32(r0[j+4])*x4 + int32(r0[j+5])*x5 + int32(r0[j+6])*x6 + int32(r0[j+7])*x7
			a1 += int32(r1[j])*x0 + int32(r1[j+1])*x1 + int32(r1[j+2])*x2 + int32(r1[j+3])*x3 +
				int32(r1[j+4])*x4 + int32(r1[j+5])*x5 + int32(r1[j+6])*x6 + int32(r1[j+7])*x7
			a2 += int32(r2[j])*x0 + int32(r2[j+1])*x1 + int32(r2[j+2])*x2 + int32(r2[j+3])*x3 +
				int32(r2[j+4])*x4 + int32(r2[j+5])*x5 + int32(r2[j+6])*x6 + int32(r2[j+7])*x7
			a3 += int32(r3[j])*x0 + int32(r3[j+1])*x1 + int32(r3[j+2])*x2 + int32(r3[j+3])*x3 +
				int32(r3[j+4])*x4 + int32(r3[j+5])*x5 + int32(r3[j+6])*x6 + int32(r3[j+7])*x7
		}
		for ; j < n; j++ {
			xv := int32(xq[j])
			a0 += int32(r0[j]) * xv
			a1 += int32(r1[j]) * xv
			a2 += int32(r2[j]) * xv
			a3 += int32(r3[j]) * xv
		}
		dst[i] = float32(a0) * m.Scales[i] * xs
		dst[i+1] = float32(a1) * m.Scales[i+1] * xs
		dst[i+2] = float32(a2) * m.Scales[i+2] * xs
		dst[i+3] = float32(a3) * m.Scales[i+3] * xs
	}
	for ; i < hi; i++ {
		base := i * cols
		row := m.Q[base : base+n : base+n]
		var acc int32
		j := 0
		for ; j+8 <= n; j += 8 {
			acc += int32(row[j])*int32(xq[j]) + int32(row[j+1])*int32(xq[j+1]) +
				int32(row[j+2])*int32(xq[j+2]) + int32(row[j+3])*int32(xq[j+3]) +
				int32(row[j+4])*int32(xq[j+4]) + int32(row[j+5])*int32(xq[j+5]) +
				int32(row[j+6])*int32(xq[j+6]) + int32(row[j+7])*int32(xq[j+7])
		}
		for ; j < n; j++ {
			acc += int32(row[j]) * int32(xq[j])
		}
		dst[i] = float32(acc) * m.Scales[i] * xs
	}
}

// DotInt32 exposes the raw integer accumulation for one row, used by
// the cycle simulator to count MAC operations faithfully.
func (m *Matrix) DotInt32(row int, x []int8) int32 {
	r := m.Row(row)
	if len(x) != len(r) {
		panic("quant: DotInt32 length mismatch")
	}
	var acc int32
	for j, q := range r {
		acc += int32(q) * int32(x[j])
	}
	return acc
}

func clampRound(v float32, maxLevel int32) int8 {
	var r int32
	if v >= 0 {
		r = int32(v + 0.5)
	} else {
		r = int32(v - 0.5)
	}
	if r > maxLevel {
		r = maxLevel
	}
	if r < -maxLevel {
		r = -maxLevel
	}
	return int8(r)
}

// PackINT4 packs int8 nibbles (each in [-8,7]) two per byte, low
// nibble first — the DRAM image format for screener weights.
func PackINT4(q []int8) []byte {
	out := make([]byte, (len(q)+1)/2)
	for i, v := range q {
		nib := byte(v) & 0x0f
		if i%2 == 0 {
			out[i/2] = nib
		} else {
			out[i/2] |= nib << 4
		}
	}
	return out
}

// UnpackINT4 reverses PackINT4; n is the element count.
func UnpackINT4(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := 0; i < n; i++ {
		var nib byte
		if i%2 == 0 {
			nib = packed[i/2] & 0x0f
		} else {
			nib = packed[i/2] >> 4
		}
		// Sign-extend the nibble.
		out[i] = int8(nib<<4) >> 4
	}
	return out
}

// PackINT2 packs 2-bit values (each in [-1, 1]) four per byte, lowest
// crumb first — the DRAM image format for INT2 screening weights.
// Values are stored as sign-magnitude crumbs: 00=0, 01=+1, 11=-1.
func PackINT2(q []int8) []byte {
	out := make([]byte, (len(q)+3)/4)
	for i, v := range q {
		var crumb byte
		switch {
		case v > 0:
			crumb = 0b01
		case v < 0:
			crumb = 0b11
		}
		out[i/4] |= crumb << (uint(i%4) * 2)
	}
	return out
}

// UnpackINT2 reverses PackINT2; n is the element count.
func UnpackINT2(packed []byte, n int) []int8 {
	out := make([]int8, n)
	for i := 0; i < n; i++ {
		crumb := packed[i/4] >> (uint(i%4) * 2) & 0b11
		switch crumb {
		case 0b01:
			out[i] = 1
		case 0b11:
			out[i] = -1
		}
	}
	return out
}

// MatVecBatch computes dst[b] = dequant(m)·dequant(xs[b]) for a batch
// of vectors with a weight-stationary loop: each weight row is read
// once and applied to every batch element — the reuse pattern that
// makes batched screening traffic-free on the weight side (and the
// reason ENMC's batch-4 offloads take barely longer than batch-1).
func (m *Matrix) MatVecBatch(dst [][]float32, xs []*Vector) {
	if len(dst) != len(xs) {
		panic("quant: MatVecBatch batch size mismatch")
	}
	for b, x := range xs {
		if len(x.Q) != m.Cols || len(dst[b]) != m.Rows {
			panic(fmt.Sprintf("quant: MatVecBatch shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x.Q), len(dst[b])))
		}
	}
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		base := i * n
		r0 := m.Q[base : base+n : base+n]
		r1 := m.Q[base+n : base+2*n : base+2*n]
		r2 := m.Q[base+2*n : base+3*n : base+3*n]
		r3 := m.Q[base+3*n : base+4*n : base+4*n]
		s0, s1, s2, s3 := m.Scales[i], m.Scales[i+1], m.Scales[i+2], m.Scales[i+3]
		for b, x := range xs {
			xq := x.Q[:n:n]
			var a0, a1, a2, a3 int32
			j := 0
			for ; j+8 <= n; j += 8 {
				x0, x1, x2, x3 := int32(xq[j]), int32(xq[j+1]), int32(xq[j+2]), int32(xq[j+3])
				x4, x5, x6, x7 := int32(xq[j+4]), int32(xq[j+5]), int32(xq[j+6]), int32(xq[j+7])
				a0 += int32(r0[j])*x0 + int32(r0[j+1])*x1 + int32(r0[j+2])*x2 + int32(r0[j+3])*x3 +
					int32(r0[j+4])*x4 + int32(r0[j+5])*x5 + int32(r0[j+6])*x6 + int32(r0[j+7])*x7
				a1 += int32(r1[j])*x0 + int32(r1[j+1])*x1 + int32(r1[j+2])*x2 + int32(r1[j+3])*x3 +
					int32(r1[j+4])*x4 + int32(r1[j+5])*x5 + int32(r1[j+6])*x6 + int32(r1[j+7])*x7
				a2 += int32(r2[j])*x0 + int32(r2[j+1])*x1 + int32(r2[j+2])*x2 + int32(r2[j+3])*x3 +
					int32(r2[j+4])*x4 + int32(r2[j+5])*x5 + int32(r2[j+6])*x6 + int32(r2[j+7])*x7
				a3 += int32(r3[j])*x0 + int32(r3[j+1])*x1 + int32(r3[j+2])*x2 + int32(r3[j+3])*x3 +
					int32(r3[j+4])*x4 + int32(r3[j+5])*x5 + int32(r3[j+6])*x6 + int32(r3[j+7])*x7
			}
			for ; j < n; j++ {
				xv := int32(xq[j])
				a0 += int32(r0[j]) * xv
				a1 += int32(r1[j]) * xv
				a2 += int32(r2[j]) * xv
				a3 += int32(r3[j]) * xv
			}
			d := dst[b]
			d[i] = float32(a0) * s0 * x.Scale
			d[i+1] = float32(a1) * s1 * x.Scale
			d[i+2] = float32(a2) * s2 * x.Scale
			d[i+3] = float32(a3) * s3 * x.Scale
		}
	}
	for ; i < m.Rows; i++ {
		row := m.Row(i)
		scale := m.Scales[i]
		for b, x := range xs {
			xq := x.Q
			var acc int32
			for j, q := range row {
				acc += int32(q) * int32(xq[j])
			}
			dst[b][i] = float32(acc) * scale * x.Scale
		}
	}
}
