package quant

import (
	"testing"
	"testing/quick"

	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// refMatVec is the plain scalar GEMV (one row, one column at a time)
// the blocked/unrolled kernel must reproduce bit-for-bit: int32
// accumulation is associative, so any summation order gives the same
// integer, and the final float multiply is identical.
func refMatVec(m *Matrix, x *Vector) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = float32(m.DotInt32(i, x.Q)) * m.Scales[i] * x.Scale
	}
	return out
}

func randQuantized(r *xrand.RNG, rows, cols int, bits Bits) (*Matrix, *Vector) {
	w := tensor.NewMatrix(rows, cols)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	x := make([]float32, cols)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	return QuantizeMatrix(w, bits), QuantizeVector(x, bits)
}

// TestMatVecBitIdenticalToScalar sweeps odd shapes around the 4-row
// block and 8-wide unroll boundaries at every supported precision.
func TestMatVecBitIdenticalToScalar(t *testing.T) {
	r := xrand.New(21)
	for _, bits := range []Bits{INT2, INT4, INT8} {
		for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 37} {
			// 255/256/257/600 straddle the SWAR kernel's 256-column
			// chunk flush; 600 forces multiple chunks plus a tail.
			for _, cols := range []int{1, 3, 7, 8, 9, 15, 16, 17, 67, 255, 256, 257, 600} {
				qm, qx := randQuantized(r, rows, cols, bits)
				got := make([]float32, rows)
				qm.MatVec(got, qx)
				want := refMatVec(qm, qx)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v %dx%d row %d: blocked %v != scalar %v", bits, rows, cols, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMatVecRangeCoversAndIsDisjoint splits the rows into random
// ranges and checks the union reproduces the full kernel while rows
// outside each range stay untouched.
func TestMatVecRangeCoversAndIsDisjoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows := 1 + r.Intn(40)
		cols := 1 + r.Intn(40)
		qm, qx := randQuantized(r, rows, cols, INT4)
		want := make([]float32, rows)
		qm.MatVec(want, qx)

		const sentinel = float32(-1e30)
		got := make([]float32, rows)
		for i := range got {
			got[i] = sentinel
		}
		lo := 0
		for lo < rows {
			hi := lo + 1 + r.Intn(rows-lo)
			qm.MatVecRange(got, qx, lo, hi)
			lo = hi
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Empty range writes nothing.
		probe := make([]float32, rows)
		for i := range probe {
			probe[i] = sentinel
		}
		qm.MatVecRange(probe, qx, 0, 0)
		for _, v := range probe {
			if v != sentinel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVecRangePanicsOnBadRange(t *testing.T) {
	qm, qx := randQuantized(xrand.New(5), 8, 8, INT4)
	dst := make([]float32, 8)
	for _, bad := range [][2]int{{-1, 4}, {2, 9}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MatVecRange(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			qm.MatVecRange(dst, qx, bad[0], bad[1])
		}()
	}
}

// TestMatVecBatchBitIdenticalToPerVector checks the weight-stationary
// batch loop against per-vector MatVec on shapes that exercise the
// row-block and unroll tails.
func TestMatVecBatchBitIdenticalToPerVector(t *testing.T) {
	r := xrand.New(23)
	for _, bits := range []Bits{INT2, INT4, INT8} {
		for _, shape := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {6, 9}, {13, 33}} {
			rows, cols := shape[0], shape[1]
			w := tensor.NewMatrix(rows, cols)
			for i := range w.Data {
				w.Data[i] = r.NormFloat32()
			}
			qm := QuantizeMatrix(w, bits)
			batch := 1 + r.Intn(5)
			xs := make([]*Vector, batch)
			got := make([][]float32, batch)
			for b := range xs {
				x := make([]float32, cols)
				for i := range x {
					x[i] = r.NormFloat32()
				}
				xs[b] = QuantizeVector(x, bits)
				got[b] = make([]float32, rows)
			}
			qm.MatVecBatch(got, xs)
			for b, x := range xs {
				want := make([]float32, rows)
				qm.MatVec(want, x)
				for i := range want {
					if got[b][i] != want[i] {
						t.Fatalf("%v %dx%d batch %d row %d: got %v want %v", bits, rows, cols, b, i, got[b][i], want[i])
					}
				}
			}
		}
	}
}

// TestQuantizeVectorIntoReuse checks that a reused destination (grown
// then shrunk) produces exactly what a fresh quantization would.
func TestQuantizeVectorIntoReuse(t *testing.T) {
	r := xrand.New(29)
	var dst Vector
	for _, n := range []int{64, 8, 33, 1, 64} {
		x := make([]float32, n)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		QuantizeVectorInto(&dst, x, INT4)
		fresh := QuantizeVector(x, INT4)
		if dst.Scale != fresh.Scale || dst.Bits != fresh.Bits || len(dst.Q) != len(fresh.Q) {
			t.Fatalf("n=%d: header mismatch", n)
		}
		for i := range fresh.Q {
			if dst.Q[i] != fresh.Q[i] {
				t.Fatalf("n=%d: Q[%d] = %d, want %d", n, i, dst.Q[i], fresh.Q[i])
			}
		}
	}
	// Steady state must not allocate once the buffer has grown.
	x := make([]float32, 64)
	allocs := testing.AllocsPerRun(20, func() {
		QuantizeVectorInto(&dst, x, INT4)
	})
	if allocs != 0 {
		t.Fatalf("QuantizeVectorInto steady state allocates %v/op", allocs)
	}
}
