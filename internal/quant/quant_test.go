package quant

import (
	"math"
	"testing"
	"testing/quick"

	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

func TestMaxLevel(t *testing.T) {
	cases := map[Bits]int32{INT2: 1, INT4: 7, INT8: 127}
	for b, want := range cases {
		if got := b.MaxLevel(); got != want {
			t.Fatalf("%v MaxLevel = %d, want %d", b, got, want)
		}
	}
}

func TestMaxLevelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bits(3).MaxLevel()
}

func TestVectorRoundTripError(t *testing.T) {
	r := xrand.New(1)
	x := make([]float32, 256)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	for _, bits := range []Bits{INT4, INT8} {
		v := QuantizeVector(x, bits)
		back := v.Dequantize()
		// Max error is half a quantization step.
		maxErr := float64(v.Scale) * 0.5001
		for i := range x {
			if math.Abs(float64(x[i]-back[i])) > maxErr {
				t.Fatalf("%v round-trip error %v > %v", bits, x[i]-back[i], maxErr)
			}
		}
	}
}

func TestZeroVector(t *testing.T) {
	v := QuantizeVector(make([]float32, 8), INT4)
	if v.Scale != 1 {
		t.Fatalf("zero-vector scale = %v", v.Scale)
	}
	for _, q := range v.Q {
		if q != 0 {
			t.Fatal("zero vector quantized non-zero")
		}
	}
}

func TestMatVecMatchesDequantizedFloat(t *testing.T) {
	r := xrand.New(2)
	m := tensor.NewMatrix(12, 32)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	x := make([]float32, 32)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	qm := QuantizeMatrix(m, INT8)
	qx := QuantizeVector(x, INT8)

	got := make([]float32, 12)
	qm.MatVec(got, qx)

	want := make([]float32, 12)
	qm.Dequantize().MatVec(want, qx.Dequantize())
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("integer MatVec != dequantized float at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestINT8ApproximatesFloat(t *testing.T) {
	r := xrand.New(3)
	m := tensor.NewMatrix(50, 64)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	x := make([]float32, 64)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	want := make([]float32, 50)
	m.MatVec(want, x)
	got := make([]float32, 50)
	QuantizeMatrix(m, INT8).MatVec(got, QuantizeVector(x, INT8))
	if tensor.MSE(got, want) > 0.05 {
		t.Fatalf("INT8 GEMV too lossy: MSE %v", tensor.MSE(got, want))
	}
}

func TestPerRowBeatsPerTensorOnSkewedRows(t *testing.T) {
	r := xrand.New(4)
	m := tensor.NewMatrix(20, 32)
	for i := 0; i < m.Rows; i++ {
		scale := float32(1)
		if i%2 == 0 {
			scale = 100 // half the rows live on a much larger scale
		}
		for j := range m.Row(i) {
			m.Row(i)[j] = r.NormFloat32() * scale
		}
	}
	perRow := tensor.MSE(QuantizeMatrix(m, INT4).Dequantize().Data, m.Data)
	perTensor := tensor.MSE(QuantizeMatrixPerTensor(m, INT4).Dequantize().Data, m.Data)
	if perRow >= perTensor {
		t.Fatalf("per-row MSE %v not better than per-tensor %v", perRow, perTensor)
	}
}

func TestDotInt32MatchesMatVec(t *testing.T) {
	r := xrand.New(5)
	m := tensor.NewMatrix(4, 16)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	qm := QuantizeMatrix(m, INT4)
	x := make([]float32, 16)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	qx := QuantizeVector(x, INT4)
	dst := make([]float32, 4)
	qm.MatVec(dst, qx)
	for i := 0; i < 4; i++ {
		want := float32(qm.DotInt32(i, qx.Q)) * qm.Scales[i] * qx.Scale
		if dst[i] != want {
			t.Fatalf("row %d: MatVec %v != DotInt32 path %v", i, dst[i], want)
		}
	}
}

func TestPackUnpackINT4(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(65)
		q := make([]int8, n)
		for i := range q {
			q[i] = int8(r.Intn(15) - 7) // [-7, 7]
		}
		got := UnpackINT4(PackINT4(q), n)
		for i := range q {
			if got[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackINT4Sizes(t *testing.T) {
	if len(PackINT4(make([]int8, 5))) != 3 {
		t.Fatal("odd-length packing size")
	}
	if len(PackINT4(nil)) != 0 {
		t.Fatal("empty packing")
	}
}

func TestMatrixBytes(t *testing.T) {
	m := tensor.NewMatrix(10, 10)
	if QuantizeMatrix(m, INT4).Bytes() != 50 {
		t.Fatal("INT4 bytes")
	}
	if QuantizeMatrix(m, INT8).Bytes() != 100 {
		t.Fatal("INT8 bytes")
	}
	if QuantizeMatrix(m, INT2).Bytes() != 25 {
		t.Fatal("INT2 bytes")
	}
}

func TestClampSaturates(t *testing.T) {
	v := QuantizeVector([]float32{1000, -1000, 0.001}, INT4)
	if v.Q[0] != 7 || v.Q[1] != -7 {
		t.Fatalf("saturation failed: %v", v.Q)
	}
}

func TestPackUnpackINT2(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(67)
		q := make([]int8, n)
		for i := range q {
			q[i] = int8(r.Intn(3) - 1) // {-1, 0, 1}
		}
		got := UnpackINT2(PackINT2(q), n)
		for i := range q {
			if got[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if len(PackINT2(make([]int8, 5))) != 2 {
		t.Fatal("INT2 packing size")
	}
	// INT2 quantization output is always packable: levels are ±1/0.
	v := QuantizeVector([]float32{3, -2, 0.01, -0.4}, INT2)
	back := UnpackINT2(PackINT2(v.Q), 4)
	for i := range v.Q {
		if back[i] != v.Q[i] {
			t.Fatal("INT2 round trip through quantizer")
		}
	}
}
