// Package image builds the DRAM image of a rank's screener shard —
// the bytes the host writes into the ENMC DIMM's address space during
// initialization (Fig. 10 phase 1) — and functionally emulates the
// Screener datapath over that image: stream packed INT4 weight rows,
// multiply-accumulate in int32 against the quantized projected
// feature, dequantize once per output, add the bias, and threshold-
// filter candidates.
//
// The emulator exists as a correctness bridge between the repo's two
// halves: TestImageMatchesCore proves, bit for bit, that the byte
// layout the compiler assumes and the integer datapath the engine
// charges cycles for compute exactly what core.Screener.Screen
// computes in software. A timing simulator whose data layout cannot
// produce the algorithm's numbers is charging cycles for the wrong
// machine; this package rules that out.
package image

import (
	"encoding/binary"
	"fmt"
	"math"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/quant"
)

// RankImage is a byte-addressable slice of one rank's DRAM contents
// plus the shard geometry needed to interpret it.
type RankImage struct {
	Mem      []byte
	Layout   compiler.Layout
	RowStart int // first global class row stored on this rank
	Rows     int // rows stored
	K        int // reduced dimension
}

// BuildRank lays out rows [rowStart, rowStart+rows) of the screener
// into a rank image following the compiler's address map: packed INT4
// weights at ScrWBase (row-major, two nibbles per byte), then one
// float32 scale and one float32 bias per row; the quantized projected
// feature for hidden vector h goes at FeatBase. The screener must be
// INT4 (the hardware's format).
func BuildRank(scr *core.Screener, rowStart, rows int, h []float32) (*RankImage, *quant.Vector, error) {
	if scr.QW == nil {
		return nil, nil, fmt.Errorf("image: screener not frozen")
	}
	if scr.Cfg.Precision != quant.INT4 {
		return nil, nil, fmt.Errorf("image: DRAM image format is INT4, screener is %v", scr.Cfg.Precision)
	}
	if rowStart < 0 || rows <= 0 || rowStart+rows > scr.Cfg.Categories {
		return nil, nil, fmt.Errorf("image: shard [%d,%d) out of range", rowStart, rowStart+rows)
	}
	k := scr.Cfg.Reduced

	task := compiler.Task{
		Categories: scr.Cfg.Categories,
		Hidden:     scr.Cfg.Hidden,
		Reduced:    k,
		Candidates: 1,
		Batch:      1,
	}
	lay := compiler.LayoutFor(task, rows)

	// Quantize the projected feature exactly as Screen does.
	ph := scr.Project(h)
	qh := quant.QuantizeVector(ph, quant.INT4)

	featBytes := (k + 1) / 2
	size := int(lay.FeatBase) + featBytes
	img := &RankImage{
		Mem:      make([]byte, size),
		Layout:   lay,
		RowStart: rowStart,
		Rows:     rows,
		K:        k,
	}

	// Weights: packed nibbles, row-major over the shard.
	shard := make([]int8, 0, rows*k)
	for r := 0; r < rows; r++ {
		shard = append(shard, scr.QW.Row(rowStart+r)...)
	}
	copy(img.Mem[lay.ScrWBase:], quant.PackINT4(shard))

	// Scales then biases, contiguous after the packed weights.
	metaBase := int(lay.ScrWBase) + (rows*k+1)/2
	for r := 0; r < rows; r++ {
		binary.LittleEndian.PutUint32(img.Mem[metaBase+4*r:], math.Float32bits(scr.QW.Scales[rowStart+r]))
	}
	biasBase := metaBase + 4*rows
	for r := 0; r < rows; r++ {
		binary.LittleEndian.PutUint32(img.Mem[biasBase+4*r:], math.Float32bits(scr.Bt[rowStart+r]))
	}

	// Quantized feature.
	copy(img.Mem[lay.FeatBase:], quant.PackINT4(qh.Q))

	return img, qh, nil
}

// Screen emulates the Screener datapath over the image: for every
// stored row, an int32 accumulation of nibble products against the
// feature, one dequantizing multiply, a bias add — then the threshold
// filter over the results. Returned candidate indices are
// shard-local.
func (img *RankImage) Screen(featScale float32, threshold float32) (z []float32, candidates []int) {
	k := img.K
	lay := img.Layout
	feat := quant.UnpackINT4(img.Mem[lay.FeatBase:int(lay.FeatBase)+(k+1)/2], k)

	metaBase := int(lay.ScrWBase) + (img.Rows*k+1)/2
	biasBase := metaBase + 4*img.Rows

	z = make([]float32, img.Rows)
	weights := quant.UnpackINT4(img.Mem[lay.ScrWBase:int(lay.ScrWBase)+(img.Rows*k+1)/2], img.Rows*k)
	for r := 0; r < img.Rows; r++ {
		var acc int32
		row := weights[r*k : (r+1)*k]
		for j, w := range row {
			acc += int32(w) * int32(feat[j])
		}
		scale := math.Float32frombits(binary.LittleEndian.Uint32(img.Mem[metaBase+4*r:]))
		bias := math.Float32frombits(binary.LittleEndian.Uint32(img.Mem[biasBase+4*r:]))
		z[r] = float32(acc)*scale*featScale + bias
		if z[r] >= threshold {
			candidates = append(candidates, r)
		}
	}
	return z, candidates
}

// Bytes reports the image size.
func (img *RankImage) Bytes() int { return len(img.Mem) }

// FullImage extends a rank image with the FP32 classifier rows at
// FullWBase and the full-precision feature at its slot, so the
// Executor phase can be emulated too.
type FullImage struct {
	*RankImage
	Hidden int
}

// BuildFull lays out the rank's screener shard plus the corresponding
// FP32 classifier rows and the full-precision feature — the complete
// per-rank DRAM contents of Fig. 10 phase 1.
func BuildFull(cls *core.Classifier, scr *core.Screener, rowStart, rows int, h []float32) (*FullImage, *quant.Vector, error) {
	base, qh, err := BuildRank(scr, rowStart, rows, h)
	if err != nil {
		return nil, nil, err
	}
	d := cls.Hidden()
	if d != scr.Cfg.Hidden {
		return nil, nil, fmt.Errorf("image: classifier hidden %d != screener %d", d, scr.Cfg.Hidden)
	}
	// Grow the memory to cover FullW rows and the FP32 feature.
	featF32 := int(base.Layout.FeatBase) + (scr.Cfg.Reduced+1)/2
	need := featF32 + d*4
	if end := int(base.Layout.FullWBase) + rows*d*4; end > need {
		need = end
	}
	if need > len(base.Mem) {
		grown := make([]byte, need)
		copy(grown, base.Mem)
		base.Mem = grown
	}
	for r := 0; r < rows; r++ {
		row := cls.W.Row(rowStart + r)
		off := int(base.Layout.FullWBase) + r*d*4
		for j, v := range row {
			binary.LittleEndian.PutUint32(base.Mem[off+4*j:], math.Float32bits(v))
		}
	}
	for j, v := range h {
		binary.LittleEndian.PutUint32(base.Mem[featF32+4*j:], math.Float32bits(v))
	}
	return &FullImage{RankImage: base, Hidden: d}, qh, nil
}

// Candidates emulates the Executor phase: gather the FP32 weight rows
// of the shard-local candidate indices from the image and compute
// their exact logits against the full-precision feature. Bias comes
// from the screener's bias block (the classifier bias is folded into
// it at deployment; here the screener was distilled to carry it).
func (img *FullImage) Candidates(cands []int, bias []float32) []float32 {
	d := img.Hidden
	featF32 := int(img.Layout.FeatBase) + (img.K+1)/2
	h := make([]float32, d)
	for j := range h {
		h[j] = math.Float32frombits(binary.LittleEndian.Uint32(img.Mem[featF32+4*j:]))
	}
	out := make([]float32, len(cands))
	for i, c := range cands {
		off := int(img.Layout.FullWBase) + c*d*4
		var acc float32
		for j := 0; j < d; j++ {
			acc += math.Float32frombits(binary.LittleEndian.Uint32(img.Mem[off+4*j:])) * h[j]
		}
		out[i] = acc + bias[c]
	}
	return out
}
