package image

import (
	"testing"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/workload"
)

func trainedScreener(t *testing.T) (*core.Screener, *workload.Instance) {
	t.Helper()
	spec := workload.Spec{Name: "img", Categories: 512, Hidden: 128, LatentRank: 24, ZipfS: 1}
	inst := workload.Generate(spec, workload.GenOptions{Seed: 21, Train: 256, Valid: 16, Test: 16})
	cfg := core.Config{Categories: 512, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 4}
	scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return scr, inst
}

// TestImageMatchesCore is the correctness bridge: the DRAM image's
// emulated datapath must reproduce core.Screener.Screen bit for bit,
// shard by shard.
func TestImageMatchesCore(t *testing.T) {
	scr, inst := trainedScreener(t)
	for _, h := range inst.Test[:6] {
		want := scr.Screen(h)
		// Four shards of 128 rows each, like four ranks.
		for rowStart := 0; rowStart < 512; rowStart += 128 {
			img, qh, err := BuildRank(scr, rowStart, 128, h)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := img.Screen(qh.Scale, 1e30)
			for r := 0; r < 128; r++ {
				if got[r] != want[rowStart+r] {
					t.Fatalf("row %d: image datapath %v != core %v", rowStart+r, got[r], want[rowStart+r])
				}
			}
		}
	}
}

// TestThresholdFilterMatchesSelection: the image's comparator pass
// must agree with core's threshold selection on the same shard.
func TestThresholdFilterMatchesSelection(t *testing.T) {
	scr, inst := trainedScreener(t)
	h := inst.Test[0]
	z := scr.Screen(h)
	th := tensor.TopK(z, 20) // pick a threshold near the 20th value
	threshold := z[th[len(th)-1]]

	img, qh, err := BuildRank(scr, 0, 512, h)
	if err != nil {
		t.Fatal(err)
	}
	_, cands := img.Screen(qh.Scale, threshold)
	want := core.SelectCandidates(z, core.Threshold(threshold))
	if len(cands) != len(want) {
		t.Fatalf("candidate counts differ: %d vs %d", len(cands), len(want))
	}
	for i := range cands {
		if cands[i] != want[i] {
			t.Fatalf("candidate %d: %d vs %d", i, cands[i], want[i])
		}
	}
}

func TestBuildRankValidation(t *testing.T) {
	scr, inst := trainedScreener(t)
	if _, _, err := BuildRank(scr, -1, 10, inst.Test[0]); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, _, err := BuildRank(scr, 500, 100, inst.Test[0]); err == nil {
		t.Fatal("overflowing shard accepted")
	}
	// INT8 screener cannot be laid out in the INT4 image format.
	cfg := core.Config{Categories: 512, Hidden: 128, Reduced: 32, Precision: quant.INT8, Seed: 4}
	scr8, _, err := core.TrainScreener(inst.Classifier, inst.Train[:32], cfg, core.TrainOptions{Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildRank(scr8, 0, 10, inst.Test[0]); err == nil {
		t.Fatal("INT8 screener accepted into INT4 image")
	}
}

func TestImageSizeMatchesLayout(t *testing.T) {
	scr, inst := trainedScreener(t)
	img, _, err := BuildRank(scr, 0, 256, inst.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	// Weights (256×32 nibbles) + scales/bias (256×8) must fit below
	// FullWBase; the image extends to the feature region.
	wantMin := int(img.Layout.FeatBase)
	if img.Bytes() < wantMin {
		t.Fatalf("image %d bytes, layout needs ≥ %d", img.Bytes(), wantMin)
	}
}

// TestExecutorEmulationMatchesClassifier: the candidate phase over
// the image must reproduce the classifier's exact logits — but not in
// the naive order: tensor.Dot uses 4-way unrolled accumulation, so we
// compare against a plain serial dot product, which is what the image
// emulation computes.
func TestExecutorEmulationMatchesClassifier(t *testing.T) {
	scr, inst := trainedScreener(t)
	h := inst.Test[2]
	img, qh, err := BuildFull(inst.Classifier, scr, 0, 512, h)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := img.Screen(qh.Scale, 1e30)
	_ = z
	cands := []int{3, 100, 511, 0, 42}
	got := img.Candidates(cands, inst.Classifier.B)
	for i, c := range cands {
		var want float32
		row := inst.Classifier.W.Row(c)
		for j := range row {
			want += row[j] * h[j]
		}
		want += inst.Classifier.B[c]
		if got[i] != want {
			t.Fatalf("candidate %d: image %v vs serial %v", c, got[i], want)
		}
	}
}

// TestFullPipelineOverImage runs both phases over the image and
// checks the end decision agrees with core's software pipeline.
func TestFullPipelineOverImage(t *testing.T) {
	scr, inst := trainedScreener(t)
	agree := 0
	for _, h := range inst.Test[:8] {
		img, qh, err := BuildFull(inst.Classifier, scr, 0, 512, h)
		if err != nil {
			t.Fatal(err)
		}
		// Screen on the image, take top-25 via threshold on the 25th
		// value of the software screen (same budget as core).
		soft := core.ClassifyApprox(inst.Classifier, scr, h, core.TopM(25))
		zImg, _ := img.Screen(qh.Scale, 1e30)
		th := zImg[tensor.TopK(zImg, 25)[24]]
		_, cands := img.Screen(qh.Scale, th)
		exact := img.Candidates(cands, inst.Classifier.B)
		// The image pipeline's best candidate must match core's
		// prediction (both use exact logits for candidates).
		best, bestV := -1, float32(0)
		for i, c := range cands {
			if best < 0 || exact[i] > bestV {
				best, bestV = c, exact[i]
			}
		}
		if best == soft.Predict() {
			agree++
		}
	}
	if agree < 7 {
		t.Fatalf("image pipeline agreed with core on %d/8", agree)
	}
}
