package nmp

import (
	"math"
	"testing"
)

func TestAllDesignsValid(t *testing.T) {
	for _, d := range append(All(), TensorDIMMLarge()) {
		if err := d.Hw.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Target.Name, err)
		}
		if d.Target.Name == "" {
			t.Fatal("unnamed design")
		}
	}
}

func TestTable4Parity(t *testing.T) {
	// Table 4: all four comparison designs sit at a similar area and
	// power budget (±20% of ENMC).
	base := ENMC()
	for _, d := range All() {
		if d.AreaMM2 < base.AreaMM2*0.8 || d.AreaMM2 > base.AreaMM2*1.2 {
			t.Fatalf("%s area %v outside budget parity", d.Target.Name, d.AreaMM2)
		}
		if d.PowerMW < base.PowerMW*0.8 || d.PowerMW > base.PowerMW*1.2 {
			t.Fatalf("%s power %v outside budget parity", d.Target.Name, d.PowerMW)
		}
	}
}

func TestTable4Values(t *testing.T) {
	want := map[string][2]float64{
		"NDA":        {0.445, 293.6},
		"Chameleon":  {0.398, 249.0},
		"TensorDIMM": {0.457, 303.5},
		"ENMC":       {0.442, 285.4},
	}
	for _, d := range All() {
		w := want[d.Target.Name]
		if math.Abs(d.AreaMM2-w[0]) > 1e-9 || math.Abs(d.PowerMW-w[1]) > 1e-9 {
			t.Fatalf("%s: got (%v, %v), want %v", d.Target.Name, d.AreaMM2, d.PowerMW, w)
		}
	}
}

func TestOnlyENMCIsHeterogeneous(t *testing.T) {
	for _, d := range All() {
		isENMC := d.Target.Name == "ENMC"
		if d.Target.ScreenOnINT4 != isENMC {
			t.Fatalf("%s: ScreenOnINT4 = %v", d.Target.Name, d.Target.ScreenOnINT4)
		}
		if d.Target.DualModule != isENMC {
			t.Fatalf("%s: DualModule = %v", d.Target.Name, d.Target.DualModule)
		}
	}
}

func TestEffectiveLaneOrdering(t *testing.T) {
	// The calibrated GEMV throughputs must preserve the paper's
	// ranking: TensorDIMM > NDA > Chameleon.
	if !(TensorDIMM().Hw.FP32MACs > NDA().Hw.FP32MACs && NDA().Hw.FP32MACs > Chameleon().Hw.FP32MACs) {
		t.Fatal("baseline lane ordering violated")
	}
}

func TestTensorDIMMLarge(t *testing.T) {
	td, tdl := TensorDIMM(), TensorDIMMLarge()
	if tdl.Hw.BufBytes <= td.Hw.BufBytes {
		t.Fatal("TD-Large buffers not larger")
	}
	if !tdl.Target.WeightReuseAcrossBatch || td.Target.WeightReuseAcrossBatch {
		t.Fatal("batch-reuse flags wrong")
	}
	// Larger register-file buffers must cost more power.
	if tdl.Logic.TotalmW() <= td.Logic.TotalmW() {
		t.Fatal("TD-Large logic power not higher")
	}
}

func TestHomogeneousLogicPreservesTotal(t *testing.T) {
	p := homogeneousLogic(303.5)
	if math.Abs(p.TotalmW()-303.5) > 0.01 {
		t.Fatalf("rescaled total = %v", p.TotalmW())
	}
	if p.INT4MACmW != 0 {
		t.Fatal("homogeneous design should have no INT4 power")
	}
}
