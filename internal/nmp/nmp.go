// Package nmp defines the baseline near-memory designs ENMC is
// evaluated against (paper Section 6.2, Table 4): NDA, Chameleon,
// TensorDIMM, and the TensorDIMM-Large variant used by the energy and
// scalability studies. Each baseline is the same rank-level placement
// and DRAM substrate as ENMC but a different on-DIMM datapath, so the
// whole comparison reduces to a (compiler.Target, enmc.Config) pair
// executed by the same engine.
//
// Datapath calibration. Table 4 fixes all designs to a similar area
// and power budget; what differs is how much classification GEMV
// throughput that budget buys:
//
//   - TensorDIMM's 16-lane VPU is a wide vector datapath purpose-built
//     for streaming tensor ops — high effective GEMV throughput, but
//     only 3×512 B queues, so batched intermediates overflow to DRAM.
//   - NDA's CGRA spends area on switches and routing; fewer effective
//     FLOPs reach the GEMV.
//   - Chameleon's systolic array is shaped for matrix-matrix reuse;
//     on matrix-vector work most of the array idles.
//
// The effective FP32 lane counts below encode that ordering and were
// calibrated so the Fig. 13 speedup ratios land near the paper's
// (ENMC ≈ 2.7× TensorDIMM, ≈ 3.5× NDA, ≈ 5.6× Chameleon).
package nmp

import (
	"enmc/internal/compiler"
	"enmc/internal/dram"
	"enmc/internal/energy"
	"enmc/internal/enmc"
)

// Design bundles a baseline's compile target and hardware model.
type Design struct {
	Target compiler.Target
	Hw     enmc.Config
	// Logic is the design's on-DIMM logic power model.
	Logic energy.LogicPower
	// AreaMM2 and PowerMW restate Table 4 for the parity check.
	AreaMM2 float64
	PowerMW float64
}

func baseHw() enmc.Config {
	d := dram.DDR4_2400()
	d.Ranks = 1
	return enmc.Config{
		DRAM:        d,
		ClockRatio:  3, // 400 MHz logic
		INT4MACs:    1, // unused by homogeneous targets; engine requires > 0
		FP32MACs:    16,
		BufBytes:    256,
		FilterWidth: 16,
		SFUWidth:    4,
	}
}

// ENMC returns the paper's design (Table 3/Table 4 row "ENMC").
func ENMC() Design {
	hw := baseHw()
	hw.INT4MACs = 128
	hw.FP32MACs = 16
	hw.BufBytes = 256
	return Design{
		Target:  compiler.ENMCTarget(),
		Hw:      hw,
		Logic:   energy.ENMCLogic(),
		AreaMM2: 0.442,
		PowerMW: 285.4,
	}
}

// TensorDIMM models Kwon et al. (MICRO 2019): a 16-lane VPU with
// 3×512 B queues. Effective GEMV throughput 21 FP32 MACs/cycle (wide
// datapath, near-full streaming utilization); the small queues force
// weight restreaming across batch items.
func TensorDIMM() Design {
	hw := baseHw()
	hw.FP32MACs = 21
	hw.BufBytes = 512
	return Design{
		Target: compiler.Target{
			Name:                   "TensorDIMM",
			WeightReuseAcrossBatch: false,
		},
		Hw:      hw,
		Logic:   homogeneousLogic(303.5),
		AreaMM2: 0.457,
		PowerMW: 303.5,
	}
}

// TensorDIMMLarge is the scaled variant used in Fig. 14/15: the same
// VPU with 8× the buffering, enough to keep batched partial sums
// resident (weight reuse across the batch) — at proportionally higher
// buffer power.
func TensorDIMMLarge() Design {
	d := TensorDIMM()
	d.Target.Name = "TensorDIMM-Large"
	d.Target.WeightReuseAcrossBatch = true
	d.Hw.BufBytes = 4096
	// The paper's buffers are register files, whose power scales
	// roughly linearly with capacity: 4 KB is 16× the 256 B baseline.
	// The enlarged buffers dominate TD-Large's logic budget, which is
	// why it costs more energy than TensorDIMM in the paper's Fig. 14
	// despite running faster.
	d.Logic.ComputeBufW *= 16
	d.Logic.ControlBufW *= 16
	d.AreaMM2 = 0.61
	d.PowerMW = d.Logic.TotalmW()
	return d
}

// NDA models Farmahini-Farahani et al. (HPCA 2015): a 4×4 CGRA of
// functional units with 1 KB of local memory. Routing overhead caps
// effective GEMV throughput at 12 MACs/cycle.
func NDA() Design {
	hw := baseHw()
	hw.FP32MACs = 12
	hw.BufBytes = 1024
	return Design{
		Target: compiler.Target{
			Name:                   "NDA",
			WeightReuseAcrossBatch: false,
		},
		Hw:      hw,
		Logic:   homogeneousLogic(293.6),
		AreaMM2: 0.445,
		PowerMW: 293.6,
	}
}

// Chameleon models Asghari-Moghaddam et al. (MICRO 2016) with a 4×4
// systolic array: excellent for GEMM, but matrix-vector work streams
// a single vector through the array, idling most cells — effective
// 12 MACs/cycle.
func Chameleon() Design {
	hw := baseHw()
	hw.FP32MACs = 7
	hw.BufBytes = 1024
	return Design{
		Target: compiler.Target{
			Name:                   "Chameleon",
			WeightReuseAcrossBatch: false,
		},
		Hw:      hw,
		Logic:   homogeneousLogic(249.0),
		AreaMM2: 0.398,
		PowerMW: 249.0,
	}
}

// All returns the Fig. 13 comparison set in presentation order.
func All() []Design {
	return []Design{NDA(), Chameleon(), TensorDIMM(), ENMC()}
}

// homogeneousLogic rescales the ENMC block powers to a baseline's
// Table 4 total, folding the INT4 array's share into the FP32 array
// (homogeneous designs have no INT4 units).
func homogeneousLogic(totalmW float64) energy.LogicPower {
	p := energy.ENMCLogic()
	p.FP32MACmW += p.INT4MACmW
	p.INT4MACmW = 0
	f := totalmW / p.TotalmW()
	p.FP32MACmW *= f
	p.ComputeBufW *= f
	p.ControlBufW *= f
	p.CtrlmW *= f
	p.DRAMCtrlmW *= f
	return p
}
