package svdsoftmax

import (
	"math"
	"testing"

	"enmc/internal/core"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

func randSym(r *xrand.RNG, n int) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat32()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestJacobiDiagonalizes(t *testing.T) {
	r := xrand.New(1)
	a := randSym(r, 12)
	vals, v := jacobiEig(a, 0)
	// Check A·v_i = λ_i·v_i for every eigenpair.
	for col := 0; col < 12; col++ {
		vec := make([]float32, 12)
		for row := 0; row < 12; row++ {
			vec[row] = v.At(row, col)
		}
		av := make([]float32, 12)
		a.MatVec(av, vec)
		for row := 0; row < 12; row++ {
			want := float64(vals[col]) * float64(vec[row])
			if math.Abs(float64(av[row])-want) > 1e-3 {
				t.Fatalf("eigenpair %d violated at row %d: %v vs %v", col, row, av[row], want)
			}
		}
	}
}

func TestJacobiOrthogonalV(t *testing.T) {
	r := xrand.New(2)
	a := randSym(r, 10)
	_, v := jacobiEig(a, 0)
	vtv := tensor.MatMul(v.T(), v)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(vtv.At(i, j)-want)) > 1e-4 {
				t.Fatalf("VᵀV not identity at (%d,%d): %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestJacobiKnownEigenvalues(t *testing.T) {
	// diag(3, 1) rotated by 45°, eigenvalues must be {3, 1}.
	a := tensor.FromRows([][]float32{{2, 1}, {1, 2}})
	vals, _ := jacobiEig(a, 0)
	vals, _ = sortEig(vals, tensor.NewMatrix(2, 2))
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
}

func testClassifier(t *testing.T, l, d int) (*core.Classifier, [][]float32) {
	t.Helper()
	r := xrand.New(7)
	w := tensor.NewMatrix(l, d)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	// Give W decaying column energy so the SVD spectrum is skewed and
	// previews are informative (as trained embeddings are).
	for i := 0; i < l; i++ {
		row := w.Row(i)
		for j := range row {
			row[j] *= float32(1 / math.Sqrt(float64(j+1)))
		}
	}
	b := make([]float32, l)
	for i := range b {
		b[i] = 0.01 * r.NormFloat32()
	}
	cls, err := core.NewClassifier(w, b)
	if err != nil {
		t.Fatal(err)
	}
	var hs [][]float32
	for n := 0; n < 20; n++ {
		c := r.Intn(l)
		row := w.Row(c)
		norm := float32(tensor.Norm2(row))
		h := make([]float32, d)
		for j := range h {
			h[j] = 2*row[j]/norm + 0.4*r.NormFloat32()
		}
		hs = append(hs, h)
	}
	return cls, hs
}

func TestDecomposeReconstructsExactly(t *testing.T) {
	cls, hs := testClassifier(t, 60, 16)
	m, err := Decompose(cls)
	if err != nil {
		t.Fatal(err)
	}
	// Full-width classification through the factorization must equal
	// the original classifier (up to float error).
	for _, h := range hs[:5] {
		want := cls.Logits(h)
		res := m.Classify(h, 16, 60) // all classes refined
		for i := range want {
			if math.Abs(float64(res.Mixed[i]-want[i])) > 1e-2 {
				t.Fatalf("full-width mismatch at %d: %v vs %v", i, res.Mixed[i], want[i])
			}
		}
	}
}

func TestSingularValuesDescending(t *testing.T) {
	cls, _ := testClassifier(t, 50, 12)
	m, err := Decompose(cls)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.SingularValues); i++ {
		if m.SingularValues[i] > m.SingularValues[i-1]+1e-9 {
			t.Fatalf("singular values not sorted: %v", m.SingularValues)
		}
	}
}

func TestPreviewFindsTrueTop1(t *testing.T) {
	cls, hs := testClassifier(t, 200, 32)
	m, err := Decompose(cls)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, h := range hs {
		res := m.Classify(h, 8, 20) // quarter width, 10% refinement
		if res.Predict() == cls.Predict(h) {
			hits++
		}
	}
	if hits < len(hs)*7/10 {
		t.Fatalf("preview top-1 recall %d/%d too low", hits, len(hs))
	}
}

func TestDecomposeRejectsWideMatrices(t *testing.T) {
	cls, _ := testClassifier(t, 60, 16)
	wide, err := core.NewClassifier(cls.W.T(), make([]float32, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(wide); err == nil {
		t.Fatal("expected error for l < d")
	}
}

func TestPreviewWidthPanics(t *testing.T) {
	cls, _ := testClassifier(t, 30, 8)
	m, err := Decompose(cls)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	m.Preview(make([]float32, 8), 0)
}

func TestCostExceedsScreening(t *testing.T) {
	// Paper: SVD-softmax computation overhead ≈ 4× approximate
	// screening. At matched candidate budgets the FP32 preview plus
	// the d² rotation must cost several times the INT4 screen.
	svd := Cost(33278, 512, 128, 100)
	screen := core.ScreeningCost(33278, 512, 128, 4)
	ratio := svd.Bytes / screen.Bytes
	if ratio < 3 {
		t.Fatalf("SVD/AS traffic ratio %v, expected >3", ratio)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	cls, hs := testClassifier(t, 40, 10)
	m, err := Decompose(cls)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs[:5] {
		hr := m.Rotate(h)
		if math.Abs(tensor.Norm2(hr)-tensor.Norm2(h)) > 1e-3 {
			t.Fatalf("rotation changed norm: %v vs %v", tensor.Norm2(hr), tensor.Norm2(h))
		}
	}
}
