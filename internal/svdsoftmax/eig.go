// Package svdsoftmax implements the SVD-softmax approximation of
// Shim et al. (NeurIPS 2017), one of the two baselines ENMC compares
// its screening method against in Fig. 11. The classifier weight is
// factorized once offline as W = U·Σ·Vᵀ; at inference the hidden
// vector is rotated (h̃ = Vᵀ·h) and a low-width "preview" over the
// leading singular dimensions ranks all classes cheaply, after which
// the top-N classes are recomputed with full width.
//
// The factorization is computed from scratch with a cyclic Jacobi
// eigensolver on WᵀW — no external linear-algebra dependency.
package svdsoftmax

import (
	"math"
	"sort"

	"enmc/internal/tensor"
)

// jacobiEig computes the eigendecomposition A = V·diag(λ)·Vᵀ of a
// symmetric matrix using the cyclic Jacobi method. It returns the
// eigenvalues (unordered) and the orthogonal eigenvector matrix whose
// columns correspond to them. A is not modified.
func jacobiEig(a *tensor.Matrix, maxSweeps int) (eigvals []float64, v *tensor.Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("svdsoftmax: jacobiEig requires a square matrix")
	}
	// Work in float64 for convergence robustness.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = float64(a.At(i, j))
		}
	}
	vv := make([][]float64, n)
	for i := range vv {
		vv[i] = make([]float64, n)
		vv[i][i] = 1
	}

	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m[p][p], m[q][q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ) on both sides: M ← JᵀMJ.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vv[k][p], vv[k][q]
					vv[k][p] = c*vkp - s*vkq
					vv[k][q] = s*vkp + c*vkq
				}
			}
		}
	}

	eigvals = make([]float64, n)
	for i := 0; i < n; i++ {
		eigvals[i] = m[i][i]
	}
	v = tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v.Set(i, j, float32(vv[i][j]))
		}
	}
	return eigvals, v
}

// sortEig reorders (λ, V columns) by descending eigenvalue.
func sortEig(eigvals []float64, v *tensor.Matrix) ([]float64, *tensor.Matrix) {
	n := len(eigvals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return eigvals[idx[a]] > eigvals[idx[b]] })
	outVals := make([]float64, n)
	outV := tensor.NewMatrix(v.Rows, n)
	for newCol, oldCol := range idx {
		outVals[newCol] = eigvals[oldCol]
		for r := 0; r < v.Rows; r++ {
			outV.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return outVals, outV
}
