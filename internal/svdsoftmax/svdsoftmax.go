package svdsoftmax

import (
	"fmt"
	"math"

	"enmc/internal/core"
	"enmc/internal/tensor"
)

// Model is the offline-factorized classifier. B = W·V = U·Σ holds the
// rotated weight rows with columns ordered by descending singular
// value, so a prefix of each row carries most of the inner-product
// energy — that is what makes the low-width preview informative.
type Model struct {
	B              *tensor.Matrix // l×d rotated weights (U·Σ)
	V              *tensor.Matrix // d×d right singular vectors (columns)
	Bias           []float32
	SingularValues []float64
}

// Decompose factorizes the classifier. The cost is one d×d Jacobi
// eigendecomposition of WᵀW plus the l×d×d rotation B = W·V.
func Decompose(cls *core.Classifier) (*Model, error) {
	w := cls.W
	d := w.Cols
	if w.Rows < d {
		return nil, fmt.Errorf("svdsoftmax: needs l >= d, got %dx%d", w.Rows, d)
	}
	// WᵀW is symmetric positive semi-definite.
	wt := w.T()
	gram := tensor.MatMul(wt, w)
	eigvals, v := jacobiEig(gram, 0)
	eigvals, v = sortEig(eigvals, v)
	sv := make([]float64, d)
	for i, lam := range eigvals {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	b := tensor.MatMul(w, v)
	bias := make([]float32, len(cls.B))
	copy(bias, cls.B)
	return &Model{B: b, V: v, Bias: bias, SingularValues: sv}, nil
}

// Rotate computes h̃ = Vᵀ·h, the per-inference input transform.
func (m *Model) Rotate(h []float32) []float32 {
	d := m.V.Rows
	if len(h) != d {
		panic(fmt.Sprintf("svdsoftmax: Rotate dimension %d != %d", len(h), d))
	}
	out := make([]float32, d)
	// out[j] = Σ_i V[i][j]·h[i]
	for i := 0; i < d; i++ {
		hi := h[i]
		if hi == 0 {
			continue
		}
		row := m.V.Row(i)
		for j, vij := range row {
			out[j] += vij * hi
		}
	}
	return out
}

// Preview computes the width-w approximate logits for all classes:
// z̃_i = B[i,:w]·h̃[:w] + bias_i.
func (m *Model) Preview(hRot []float32, width int) []float32 {
	if width <= 0 || width > m.B.Cols {
		panic(fmt.Sprintf("svdsoftmax: preview width %d out of range (1..%d)", width, m.B.Cols))
	}
	l := m.B.Rows
	z := make([]float32, l)
	hw := hRot[:width]
	for i := 0; i < l; i++ {
		z[i] = tensor.Dot(m.B.Row(i)[:width], hw) + m.Bias[i]
	}
	return z
}

// Classify runs the full SVD-softmax pipeline: rotate, preview at the
// given width, take the top-N preview classes, recompute them at full
// width (which is exact, since B·Vᵀh = W·h), and merge.
func (m *Model) Classify(h []float32, width, topN int) *core.Result {
	hRot := m.Rotate(h)
	z := m.Preview(hRot, width)
	cands := tensor.TopK(z, topN)
	exact := make([]float32, len(cands))
	for j, c := range cands {
		exact[j] = tensor.Dot(m.B.Row(c), hRot) + m.Bias[c]
		z[c] = exact[j]
	}
	return &core.Result{Mixed: z, Candidates: cands, Exact: exact}
}

// Cost tallies one inference: the d² rotation, the l·w preview, and
// the topN·d refinement. The paper notes SVD-softmax's compute
// overhead is ≈4× the screening method's; that falls straight out of
// these counts (FP32 everywhere, and the d² rotation).
func Cost(l, d, width, topN int) core.OpCount {
	return core.OpCount{
		FP32MACs: float64(d)*float64(d) + float64(l)*float64(width) + float64(topN)*float64(d),
		AddOps:   float64(l),
		SFUOps:   float64(l),
		Bytes: float64(d)*float64(d)*4 + // V
			float64(l)*float64(width)*4 + // preview columns of B
			float64(topN)*float64(d)*4 + // refined rows
			float64(l)*4, // bias
	}
}
