package fgd

import (
	"testing"

	"enmc/internal/core"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

func testClassifier(t *testing.T, l, d int) (*core.Classifier, [][]float32) {
	t.Helper()
	r := xrand.New(21)
	w := tensor.NewMatrix(l, d)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	b := make([]float32, l)
	for i := range b {
		b[i] = 0.05 * r.NormFloat32()
	}
	cls, err := core.NewClassifier(w, b)
	if err != nil {
		t.Fatal(err)
	}
	var hs [][]float32
	for n := 0; n < 25; n++ {
		c := r.Intn(l)
		row := w.Row(c)
		norm := float32(tensor.Norm2(row))
		h := make([]float32, d)
		for j := range h {
			h[j] = 2.5*row[j]/norm + 0.3*r.NormFloat32()
		}
		hs = append(hs, h)
	}
	return cls, hs
}

func TestBuildValidates(t *testing.T) {
	cls, _ := testClassifier(t, 2, 4)
	one, err := core.NewClassifier(tensor.NewMatrix(1, 4), make([]float32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(one, BuildOptions{}); err == nil {
		t.Fatal("expected error for 1 class")
	}
	if _, err := Build(cls, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphConnectivity(t *testing.T) {
	cls, _ := testClassifier(t, 100, 8)
	idx, err := Build(cls, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// BFS from entry must reach every node.
	seen := make([]bool, 100)
	queue := []int32{int32(idx.entry)}
	seen[idx.entry] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range idx.neighbors[n] {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != 100 {
		t.Fatalf("graph disconnected: reached %d/100", count)
	}
}

func TestDegreesBounded(t *testing.T) {
	cls, _ := testClassifier(t, 200, 8)
	idx, err := Build(cls, BuildOptions{M: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for n, nbs := range idx.neighbors {
		if len(nbs) > 16 { // 2*M is the trim bound
			t.Fatalf("node %d degree %d exceeds 2M", n, len(nbs))
		}
	}
}

func TestSearchRecall(t *testing.T) {
	cls, hs := testClassifier(t, 300, 16)
	idx, err := Build(cls, BuildOptions{M: 12, EfConstruction: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, h := range hs {
		got := idx.Search(h, 10, 64)
		want := cls.Predict(h)
		for _, g := range got {
			if g == want {
				hits++
				break
			}
		}
	}
	if hits < len(hs)*8/10 {
		t.Fatalf("top-10 recall %d/%d too low", hits, len(hs))
	}
}

func TestSearchReturnsBestFirst(t *testing.T) {
	cls, hs := testClassifier(t, 150, 8)
	idx, err := Build(cls, BuildOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	full := cls.Logits(hs[0])
	got := idx.Search(hs[0], 5, 40)
	for i := 1; i < len(got); i++ {
		if full[got[i]] > full[got[i-1]]+1e-4 {
			t.Fatalf("results not in descending logit order: %v", got)
		}
	}
}

func TestEfImprovesRecall(t *testing.T) {
	cls, hs := testClassifier(t, 400, 16)
	idx, err := Build(cls, BuildOptions{M: 6, EfConstruction: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(ef int) int {
		hits := 0
		for _, h := range hs {
			want := cls.Predict(h)
			for _, g := range idx.Search(h, 5, ef) {
				if g == want {
					hits++
					break
				}
			}
		}
		return hits
	}
	low, high := recall(6), recall(128)
	if high < low {
		t.Fatalf("larger ef lowered recall: ef=6 %d vs ef=128 %d", low, high)
	}
}

func TestDistCompsCounted(t *testing.T) {
	cls, hs := testClassifier(t, 120, 8)
	idx, err := Build(cls, BuildOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	idx.Search(hs[0], 5, 32)
	if idx.DistComps == 0 {
		t.Fatal("distance computations not counted")
	}
	// Greedy search must visit far fewer nodes than brute force.
	if idx.DistComps >= 120 {
		t.Fatalf("search visited %d nodes, no better than brute force", idx.DistComps)
	}
	idx.ResetStats()
	if idx.DistComps != 0 {
		t.Fatal("ResetStats")
	}
}

func TestClassifyResult(t *testing.T) {
	cls, hs := testClassifier(t, 100, 8)
	idx, err := Build(cls, BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Classify(cls, hs[0], 8, 40)
	if len(res.Candidates) != 8 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	full := cls.Logits(hs[0])
	for j, c := range res.Candidates {
		if res.Mixed[c] != full[c] || res.Exact[j] != full[c] {
			t.Fatalf("candidate %d logit not exact", c)
		}
	}
	// Non-candidates share the floor value below all candidates.
	inCand := make(map[int]bool)
	for _, c := range res.Candidates {
		inCand[c] = true
	}
	for i, v := range res.Mixed {
		if !inCand[i] {
			for _, e := range res.Exact {
				if v >= e {
					t.Fatalf("floor %v not below exact %v", v, e)
				}
			}
		}
	}
}

func TestQueryDimensionPanics(t *testing.T) {
	cls, _ := testClassifier(t, 50, 8)
	idx, err := Build(cls, BuildOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.Search(make([]float32, 9), 3, 10)
}

func TestCostModel(t *testing.T) {
	c := Cost(1000, 512)
	if c.FP32MACs != 1000*514 {
		t.Fatalf("FGD MACs = %v", c.FP32MACs)
	}
	if c.Bytes != 1000*514*4 {
		t.Fatalf("FGD bytes = %v", c.Bytes)
	}
}
