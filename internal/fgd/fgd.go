// Package fgd implements the FGD baseline of Zhang et al. (NeurIPS
// 2018, "Navigating with Graph Representations for Fast and Scalable
// Decoding of Neural Language Models"), the second approximation
// method ENMC compares against in Fig. 11. FGD treats top-k softmax
// inference as maximum-inner-product search (MIPS) over the class
// weight vectors and answers it with a greedy walk on a navigable
// small-world graph built offline.
//
// The classic MIPS→nearest-neighbour reduction is used: every weight
// row is augmented with its bias and a padding coordinate that
// equalizes norms, and the query is augmented with (1, 0), after
// which inner-product order equals Euclidean-proximity order.
package fgd

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"enmc/internal/core"
	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

// BuildOptions configures graph construction.
type BuildOptions struct {
	// M is the maximum out-degree per node. Defaults to 12.
	M int
	// EfConstruction is the search beam used while inserting nodes.
	// Defaults to 48.
	EfConstruction int
	// Seed randomizes insertion order.
	Seed uint64
}

func (o *BuildOptions) defaults() {
	if o.M <= 0 {
		o.M = 12
	}
	if o.EfConstruction <= 0 {
		o.EfConstruction = 48
	}
}

// Index is a navigable small-world graph over the augmented class
// vectors.
type Index struct {
	aug       *tensor.Matrix // l×(d+2) augmented vectors
	neighbors [][]int32
	entry     int
	dim       int // original hidden dimension d
	// DistComps counts inner-product evaluations since the last
	// ResetStats, the unit FGD's cost model is expressed in.
	DistComps int64
}

// Build constructs the small-world graph from the classifier.
func Build(cls *core.Classifier, opts BuildOptions) (*Index, error) {
	opts.defaults()
	l, d := cls.Categories(), cls.Hidden()
	if l < 2 {
		return nil, fmt.Errorf("fgd: need at least 2 classes, got %d", l)
	}

	// Augment: row' = [w, bias, pad] with pad chosen so every row has
	// squared norm maxSq. Then h' = [h, 1, 0] gives
	// row'·h' = w·h + bias, and all rows share a norm, so MIPS order
	// is Euclidean order.
	maxSq := 0.0
	normsSq := make([]float64, l)
	for i := 0; i < l; i++ {
		n := tensor.Norm2(cls.W.Row(i))
		b := float64(cls.B[i])
		normsSq[i] = n*n + b*b
		if normsSq[i] > maxSq {
			maxSq = normsSq[i]
		}
	}
	aug := tensor.NewMatrix(l, d+2)
	for i := 0; i < l; i++ {
		dst := aug.Row(i)
		copy(dst, cls.W.Row(i))
		dst[d] = cls.B[i]
		dst[d+1] = float32(math.Sqrt(maxSq - normsSq[i]))
	}

	idx := &Index{
		aug:       aug,
		neighbors: make([][]int32, l),
		dim:       d,
	}

	rng := xrand.New(opts.Seed)
	order := rng.Perm(l)
	idx.entry = order[0]
	inserted := make([]int32, 0, l)
	inserted = append(inserted, int32(order[0]))

	q := make([]float32, d+2)
	for _, nodeI := range order[1:] {
		node := int32(nodeI)
		copy(q, aug.Row(nodeI))
		found := idx.searchAug(q, opts.M, opts.EfConstruction, inserted[0])
		idx.connect(node, found, opts.M)
		inserted = append(inserted, node)
	}
	idx.DistComps = 0
	return idx, nil
}

// connect links node bidirectionally to the found neighbours,
// trimming any list that exceeds maxDeg to the closest entries.
func (idx *Index) connect(node int32, found []int32, maxDeg int) {
	idx.neighbors[node] = append(idx.neighbors[node], found...)
	for _, nb := range found {
		idx.neighbors[nb] = append(idx.neighbors[nb], node)
		if len(idx.neighbors[nb]) > 2*maxDeg {
			idx.trim(nb, maxDeg)
		}
	}
	if len(idx.neighbors[node]) > 2*maxDeg {
		idx.trim(node, maxDeg)
	}
}

func (idx *Index) trim(node int32, maxDeg int) {
	base := idx.aug.Row(int(node))
	nbs := idx.neighbors[node]
	sort.Slice(nbs, func(a, b int) bool {
		return idx.dist(base, int(nbs[a])) < idx.dist(base, int(nbs[b]))
	})
	// Deduplicate while keeping order.
	seen := make(map[int32]bool, len(nbs))
	out := nbs[:0]
	for _, nb := range nbs {
		if !seen[nb] && nb != node {
			seen[nb] = true
			out = append(out, nb)
		}
		if len(out) == maxDeg {
			break
		}
	}
	idx.neighbors[node] = out
}

// dist is the negated augmented inner product: smaller = closer.
func (idx *Index) dist(q []float32, node int) float32 {
	idx.DistComps++
	return -tensor.Dot(q, idx.aug.Row(node))
}

// searchAug runs greedy best-first search over the graph and returns
// the k closest nodes found, closest first.
func (idx *Index) searchAug(q []float32, k, ef int, entry int32) []int32 {
	if ef < k {
		ef = k
	}
	visited := map[int32]bool{entry: true}
	entryDist := idx.dist(q, int(entry))

	// candidates: min-heap by distance (to expand);
	// results: max-heap by distance (to keep ef best).
	cand := &distHeap{min: true}
	res := &distHeap{min: false}
	heap.Push(cand, distNode{entry, entryDist})
	heap.Push(res, distNode{entry, entryDist})

	for cand.Len() > 0 {
		cur := heap.Pop(cand).(distNode)
		if res.Len() >= ef && cur.d > res.top().d {
			break
		}
		for _, nb := range idx.neighbors[cur.id] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			dd := idx.dist(q, int(nb))
			if res.Len() < ef || dd < res.top().d {
				heap.Push(cand, distNode{nb, dd})
				heap.Push(res, distNode{nb, dd})
				if res.Len() > ef {
					heap.Pop(res)
				}
			}
		}
	}

	out := make([]distNode, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(distNode)
	}
	if len(out) > k {
		out = out[:k]
	}
	ids := make([]int32, len(out))
	for i, dn := range out {
		ids[i] = dn.id
	}
	return ids
}

// Search returns the top-k class indices for hidden vector h (by
// approximate MIPS), best first. ef controls the search beam width;
// larger ef trades compute for recall — FGD's quality knob.
func (idx *Index) Search(h []float32, k, ef int) []int {
	if len(h) != idx.dim {
		panic(fmt.Sprintf("fgd: query dimension %d != %d", len(h), idx.dim))
	}
	q := make([]float32, idx.dim+2)
	copy(q, h)
	q[idx.dim] = 1
	ids := idx.searchAug(q, k, ef, int32(idx.entry))
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// ResetStats zeroes the distance-computation counter.
func (idx *Index) ResetStats() { idx.DistComps = 0 }

// Classify produces a core.Result: the searched top-k classes get
// exact logits; all other entries are filled with a floor value
// (FGD itself yields only the top-k, so the tail carries no
// information — the floor keeps softmax well-defined).
func (idx *Index) Classify(cls *core.Classifier, h []float32, k, ef int) *core.Result {
	cands := idx.Search(h, k, ef)
	exact := cls.LogitsRows(cands, h)
	floor := float32(math.Inf(1))
	for _, v := range exact {
		if v < floor {
			floor = v
		}
	}
	floor -= 5
	mixed := make([]float32, cls.Categories())
	for i := range mixed {
		mixed[i] = floor
	}
	for j, c := range cands {
		mixed[c] = exact[j]
	}
	return &core.Result{Mixed: mixed, Candidates: cands, Exact: exact}
}

// Cost estimates one FGD inference from measured distance
// computations: each is a (d+2)-wide FP32 dot against a weight row
// that must be fetched (graph search has no locality, so every probe
// is a fresh weight-row read, which is FGD's weakness on streaming
// hardware).
func Cost(distComps int64, d int) core.OpCount {
	return core.OpCount{
		FP32MACs: float64(distComps) * float64(d+2),
		Bytes:    float64(distComps) * float64(d+2) * 4,
	}
}

type distNode struct {
	id int32
	d  float32
}

type distHeap struct {
	min   bool
	nodes []distNode
}

func (h *distHeap) Len() int { return len(h.nodes) }
func (h *distHeap) Less(i, j int) bool {
	if h.min {
		return h.nodes[i].d < h.nodes[j].d
	}
	return h.nodes[i].d > h.nodes[j].d
}
func (h *distHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *distHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(distNode)) }
func (h *distHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	it := old[n-1]
	h.nodes = old[:n-1]
	return it
}
func (h *distHeap) top() distNode { return h.nodes[0] }
