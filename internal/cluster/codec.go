package cluster

// Binary wire codec v2 for the cluster screen RPC (/v1/shard/screen).
//
// PR 5's wire realized the O(m) gather traffic as JSON text: every
// float32 in a ScreenRequest batch was encoded as decimal ASCII and
// re-parsed on the worker, and every ScreenResponse decode allocated
// fresh slices — ~4-10× payload bloat plus encode/decode CPU on both
// sides of every RPC, hedges and failovers included. This codec packs
// the same structures as little-endian length-prefixed binary frames:
//
//	header (12 bytes, both kinds):
//	  [0:4]   magic "ENM2"
//	  [4]     wire version (2)
//	  [5]     frame kind (1 = screen request, 2 = screen response)
//	  [6:8]   reserved, must be zero
//	  [8:12]  uint32 payload length (bytes after the header)
//
//	request payload:
//	  uint32 m, uint32 nItems, uint32 hidden
//	  nItems×hidden float32 (raw IEEE-754 bits, row-major)
//
//	response payload:
//	  uint32 offset, uint32 classes
//	  uint16 versionLen + version bytes
//	  uint32 nItems, then nItems × uint32 candidate count
//	  Σcounts × (uint32 global class, float32 logit)
//	  uint32 nSpans, then per span:
//	    uint16 nameLen + bytes, uint16 catLen + bytes,
//	    int32 tid, int64 start, int64 dur
//
// Floats travel as raw bits, so NaN/Inf and every denormal round-trip
// bit-exactly — the merged cluster result over this codec is
// bit-identical to the JSON path (encoding/json emits the shortest
// round-tripping decimal for float32) and to single-node
// core.ClassifyApprox.
//
// Decoding is strict: wrong magic/version/kind, a payload length that
// disagrees with the body, counts that overflow or do not sum to the
// pair block, truncation at any field boundary, and trailing bytes
// all reject the frame — the binary path is no less defensive than
// the JSON one. Frames over MaxFrameBytes are refused before any
// allocation is sized from attacker-controlled counts.
//
// Encode appends into caller-supplied buffers and decode reuses a
// pooled WireScratch, so the steady-state RPC path allocates nothing
// on either side.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Content types negotiated on the screen RPC. The router sends its
// preferred codec as Content-Type and lists everything it can decode
// in Accept; the worker answers in the best codec both sides share.
const (
	ContentTypeJSON     = "application/json"
	ContentTypeScreenV2 = "application/x-enmc-screen-v2"

	// AcceptScreenV2 is the Accept header a binary-capable router
	// sends: prefer v2, always willing to fall back to JSON.
	AcceptScreenV2 = ContentTypeScreenV2 + ", " + ContentTypeJSON
)

// WireVersion is the frame version this codec speaks. A bump means a
// layout change; old peers negotiate down to JSON instead of
// misparsing.
const WireVersion = 2

const (
	frameMagic     = "ENM2"
	frameHeaderLen = 12

	frameKindRequest  = 1
	frameKindResponse = 2
)

// MaxFrameBytes bounds one screen frame in either direction (1 GiB).
// Both ends wrap their reads in io.LimitReader at this bound and the
// decoder refuses larger length prefixes, so a corrupt or hostile
// peer cannot make the other side buffer unbounded memory.
const MaxFrameBytes = 1 << 30

// Internal geometry ceilings: generous (far past any real serving
// shape) but small enough that count×size arithmetic cannot overflow
// or force a pathological allocation before the payload-length
// cross-check runs.
const (
	maxWireItems  = 1 << 24 // batch items per frame
	maxWireHidden = 1 << 24 // hidden dimension
)

type wireError struct{ msg string }

func (e *wireError) Error() string { return "cluster: wire: " + e.msg }

func wireErrorf(format string, args ...interface{}) error {
	return &wireError{msg: fmt.Sprintf(format, args...)}
}

// --- encoding ---

func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, frameMagic...)
	dst = append(dst, WireVersion, kind, 0, 0)
	return append(dst, 0, 0, 0, 0) // payload length, patched by finishFrame
}

// finishFrame patches the payload length of the frame that starts at
// `start` in dst.
func finishFrame(dst []byte, start int) ([]byte, error) {
	payload := len(dst) - start - frameHeaderLen
	if payload < 0 || payload > MaxFrameBytes {
		return nil, wireErrorf("frame payload %d bytes exceeds limit %d", payload, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(dst[start+8:], uint32(payload))
	return dst, nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendShortString(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, wireErrorf("string field %d bytes exceeds %d", len(s), math.MaxUint16)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// AppendScreenRequest encodes one ScreenRequest frame onto dst and
// returns the extended slice. Every batch row must have the same
// length; an empty batch encodes with hidden 0.
func AppendScreenRequest(dst []byte, m int, batch [][]float32) ([]byte, error) {
	if m < 0 || uint64(m) > math.MaxUint32 {
		return nil, wireErrorf("m %d out of range", m)
	}
	if len(batch) > maxWireItems {
		return nil, wireErrorf("batch of %d items exceeds limit %d", len(batch), maxWireItems)
	}
	hidden := 0
	if len(batch) > 0 {
		hidden = len(batch[0])
	}
	if hidden > maxWireHidden {
		return nil, wireErrorf("hidden dim %d exceeds limit %d", hidden, maxWireHidden)
	}
	start := len(dst)
	dst = appendHeader(dst, frameKindRequest)
	dst = appendU32(dst, uint32(m))
	dst = appendU32(dst, uint32(len(batch)))
	dst = appendU32(dst, uint32(hidden))
	for i, row := range batch {
		if len(row) != hidden {
			return nil, wireErrorf("batch item %d has %d features, item 0 has %d", i, len(row), hidden)
		}
		for _, f := range row {
			dst = appendU32(dst, math.Float32bits(f))
		}
	}
	return finishFrame(dst, start)
}

// AppendScreenResponse encodes one ScreenResponse frame onto dst and
// returns the extended slice.
func AppendScreenResponse(dst []byte, resp *ScreenResponse) ([]byte, error) {
	if resp.Offset < 0 || resp.Classes < 0 {
		return nil, wireErrorf("negative geometry offset=%d classes=%d", resp.Offset, resp.Classes)
	}
	if len(resp.Items) > maxWireItems {
		return nil, wireErrorf("%d reply items exceed limit %d", len(resp.Items), maxWireItems)
	}
	start := len(dst)
	dst = appendHeader(dst, frameKindResponse)
	dst = appendU32(dst, uint32(resp.Offset))
	dst = appendU32(dst, uint32(resp.Classes))
	var err error
	if dst, err = appendShortString(dst, resp.Version); err != nil {
		return nil, err
	}
	dst = appendU32(dst, uint32(len(resp.Items)))
	for _, item := range resp.Items {
		dst = appendU32(dst, uint32(len(item)))
	}
	for _, item := range resp.Items {
		for _, c := range item {
			if c.Class < 0 || uint64(c.Class) > math.MaxUint32 {
				return nil, wireErrorf("candidate class %d out of range", c.Class)
			}
			dst = appendU32(dst, uint32(c.Class))
			dst = appendU32(dst, math.Float32bits(c.Logit))
		}
	}
	dst = appendU32(dst, uint32(len(resp.Spans)))
	for _, sp := range resp.Spans {
		if dst, err = appendShortString(dst, sp.Name); err != nil {
			return nil, err
		}
		if dst, err = appendShortString(dst, sp.Cat); err != nil {
			return nil, err
		}
		dst = appendU32(dst, uint32(int32(sp.TID)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.Start))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.Dur))
	}
	return finishFrame(dst, start)
}

// --- decoding ---

// frameCursor walks a frame payload with bounds checking; every read
// past the end is a truncation error naming the field.
type frameCursor struct {
	data []byte
	off  int
}

func (c *frameCursor) remaining() int { return len(c.data) - c.off }

func (c *frameCursor) u32(field string) (uint32, error) {
	if c.remaining() < 4 {
		return 0, wireErrorf("truncated frame: %d bytes left reading %s", c.remaining(), field)
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v, nil
}

func (c *frameCursor) u64(field string) (uint64, error) {
	if c.remaining() < 8 {
		return 0, wireErrorf("truncated frame: %d bytes left reading %s", c.remaining(), field)
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v, nil
}

func (c *frameCursor) shortString(field string) (string, error) {
	if c.remaining() < 2 {
		return "", wireErrorf("truncated frame: %d bytes left reading %s length", c.remaining(), field)
	}
	n := int(binary.LittleEndian.Uint16(c.data[c.off:]))
	c.off += 2
	if c.remaining() < n {
		return "", wireErrorf("truncated frame: %s claims %d bytes, %d left", field, n, c.remaining())
	}
	s := string(c.data[c.off : c.off+n])
	c.off += n
	return s, nil
}

// checkHeader validates magic/version/kind and the payload length
// prefix against the actual body, returning the payload cursor.
func checkHeader(data []byte, wantKind byte) (frameCursor, error) {
	if len(data) < frameHeaderLen {
		return frameCursor{}, wireErrorf("frame of %d bytes is shorter than the %d-byte header", len(data), frameHeaderLen)
	}
	if string(data[:4]) != frameMagic {
		return frameCursor{}, wireErrorf("bad magic %q (want %q)", data[:4], frameMagic)
	}
	if data[4] != WireVersion {
		return frameCursor{}, wireErrorf("unsupported wire version %d (this codec speaks %d)", data[4], WireVersion)
	}
	if data[5] != wantKind {
		return frameCursor{}, wireErrorf("frame kind %d, want %d", data[5], wantKind)
	}
	if data[6] != 0 || data[7] != 0 {
		return frameCursor{}, wireErrorf("nonzero reserved header bytes")
	}
	payload := binary.LittleEndian.Uint32(data[8:])
	if payload > MaxFrameBytes {
		return frameCursor{}, wireErrorf("payload length %d exceeds limit %d", payload, MaxFrameBytes)
	}
	if int(payload) != len(data)-frameHeaderLen {
		return frameCursor{}, wireErrorf("payload length prefix %d disagrees with %d body bytes", payload, len(data)-frameHeaderLen)
	}
	return frameCursor{data: data, off: frameHeaderLen}, nil
}

// WireScratch is the pooled decode arena: batch rows, candidate
// items, and spans decode into slices carved out of these backing
// arrays, so a steady-state decode allocates nothing. The decoded
// views stay valid until Release returns the scratch to the pool.
type WireScratch struct {
	buf    []byte // frame read buffer (ReadFrame)
	floats []float32
	rows   [][]float32
	cands  []WireCandidate
	items  [][]WireCandidate
	spans  []SpanWire
	resp   ScreenResponse
}

var wireScratchPool = sync.Pool{New: func() interface{} { return new(WireScratch) }}

// GetWireScratch fetches a decode scratch from the pool.
func GetWireScratch() *WireScratch { return wireScratchPool.Get().(*WireScratch) }

// Release returns the scratch (and every slice decoded into it) to
// the pool. The caller must be done with all views.
func (s *WireScratch) Release() { wireScratchPool.Put(s) }

func (s *WireScratch) growFloats(n int) []float32 {
	if cap(s.floats) < n {
		s.floats = make([]float32, n)
	}
	return s.floats[:n]
}

func (s *WireScratch) growRows(n int) [][]float32 {
	if cap(s.rows) < n {
		s.rows = make([][]float32, n)
	}
	return s.rows[:n]
}

func (s *WireScratch) growCands(n int) []WireCandidate {
	if cap(s.cands) < n {
		s.cands = make([]WireCandidate, n)
	}
	return s.cands[:n]
}

func (s *WireScratch) growItems(n int) [][]WireCandidate {
	if cap(s.items) < n {
		s.items = make([][]WireCandidate, n)
	}
	return s.items[:n]
}

// ReadFrame reads one length-prefixed frame from r into the scratch
// buffer and returns the full frame bytes (header included). The
// reader is wrapped in io.LimitReader at MaxFrameBytes so a missing
// or lying length prefix cannot force an unbounded read, and the
// length prefix is validated before the payload is sized.
func (s *WireScratch) ReadFrame(r io.Reader) ([]byte, error) {
	lr := io.LimitReader(r, MaxFrameBytes+frameHeaderLen)
	if cap(s.buf) < frameHeaderLen {
		s.buf = make([]byte, frameHeaderLen, 4096)
	}
	head := s.buf[:frameHeaderLen]
	if _, err := io.ReadFull(lr, head); err != nil {
		return nil, wireErrorf("reading frame header: %v", err)
	}
	payload := binary.LittleEndian.Uint32(head[8:])
	if payload > MaxFrameBytes {
		return nil, wireErrorf("payload length %d exceeds limit %d", payload, MaxFrameBytes)
	}
	total := frameHeaderLen + int(payload)
	if cap(s.buf) < total {
		nb := make([]byte, total)
		copy(nb, head)
		s.buf = nb
	}
	s.buf = s.buf[:total]
	if _, err := io.ReadFull(lr, s.buf[frameHeaderLen:]); err != nil {
		return nil, wireErrorf("reading %d-byte payload: %v", payload, err)
	}
	return s.buf, nil
}

// DecodeScreenRequest decodes a request frame. The returned batch
// rows are views into the scratch.
func DecodeScreenRequest(data []byte, sc *WireScratch) (m int, batch [][]float32, err error) {
	cur, err := checkHeader(data, frameKindRequest)
	if err != nil {
		return 0, nil, err
	}
	mw, err := cur.u32("m")
	if err != nil {
		return 0, nil, err
	}
	nItems, err := cur.u32("nItems")
	if err != nil {
		return 0, nil, err
	}
	hidden, err := cur.u32("hidden")
	if err != nil {
		return 0, nil, err
	}
	if nItems > maxWireItems {
		return 0, nil, wireErrorf("%d batch items exceed limit %d", nItems, maxWireItems)
	}
	if hidden > maxWireHidden {
		return 0, nil, wireErrorf("hidden dim %d exceeds limit %d", hidden, maxWireHidden)
	}
	want := uint64(nItems) * uint64(hidden) * 4
	if uint64(cur.remaining()) != want {
		return 0, nil, wireErrorf("batch geometry %d×%d needs %d payload bytes, frame carries %d",
			nItems, hidden, want, cur.remaining())
	}
	floats := sc.growFloats(int(nItems) * int(hidden))
	for i := range floats {
		bits := binary.LittleEndian.Uint32(cur.data[cur.off:])
		cur.off += 4
		floats[i] = math.Float32frombits(bits)
	}
	batch = sc.growRows(int(nItems))
	for i := range batch {
		batch[i] = floats[i*int(hidden) : (i+1)*int(hidden) : (i+1)*int(hidden)]
	}
	return int(mw), batch, nil
}

// DecodeScreenResponse decodes a response frame into the scratch and
// returns a view valid until the scratch is released. Candidate
// counts are cross-checked against the pair block before any
// allocation is sized from them; a frame with bytes left after the
// span block is rejected.
func DecodeScreenResponse(data []byte, sc *WireScratch) (*ScreenResponse, error) {
	cur, err := checkHeader(data, frameKindResponse)
	if err != nil {
		return nil, err
	}
	offset, err := cur.u32("offset")
	if err != nil {
		return nil, err
	}
	classes, err := cur.u32("classes")
	if err != nil {
		return nil, err
	}
	version, err := cur.shortString("version")
	if err != nil {
		return nil, err
	}
	nItems, err := cur.u32("nItems")
	if err != nil {
		return nil, err
	}
	if nItems > maxWireItems {
		return nil, wireErrorf("%d reply items exceed limit %d", nItems, maxWireItems)
	}
	if uint64(cur.remaining()) < uint64(nItems)*4 {
		return nil, wireErrorf("truncated frame: %d bytes cannot hold %d candidate counts", cur.remaining(), nItems)
	}
	countsOff := cur.off
	var total uint64
	for i := 0; i < int(nItems); i++ {
		n, err := cur.u32("candidate count")
		if err != nil {
			return nil, err
		}
		total += uint64(n)
		if total*8 > uint64(len(data)) {
			// Cheap running overflow/oversize cut-off: the pair block can
			// never be larger than the frame itself.
			return nil, wireErrorf("candidate counts sum past the frame (%d pairs by item %d)", total, i)
		}
	}
	if uint64(cur.remaining()) < total*8 {
		return nil, wireErrorf("candidate counts sum to %d pairs (%d bytes), frame carries %d",
			total, total*8, cur.remaining())
	}
	cands := sc.growCands(int(total))
	for i := range cands {
		cls := binary.LittleEndian.Uint32(cur.data[cur.off:])
		bits := binary.LittleEndian.Uint32(cur.data[cur.off+4:])
		cur.off += 8
		cands[i] = WireCandidate{Class: int(cls), Logit: math.Float32frombits(bits)}
	}
	items := sc.growItems(int(nItems))
	pos := 0
	for i := range items {
		n := int(binary.LittleEndian.Uint32(data[countsOff+i*4:]))
		items[i] = cands[pos : pos+n : pos+n]
		pos += n
	}
	nSpans, err := cur.u32("nSpans")
	if err != nil {
		return nil, err
	}
	// Each span is at least 2+2+4+8+8 = 24 bytes; bound before sizing.
	if uint64(cur.remaining()) < uint64(nSpans)*24 {
		return nil, wireErrorf("truncated frame: %d bytes cannot hold %d spans", cur.remaining(), nSpans)
	}
	if cap(sc.spans) < int(nSpans) {
		sc.spans = make([]SpanWire, nSpans)
	}
	spans := sc.spans[:nSpans]
	for i := range spans {
		name, err := cur.shortString("span name")
		if err != nil {
			return nil, err
		}
		cat, err := cur.shortString("span cat")
		if err != nil {
			return nil, err
		}
		tid, err := cur.u32("span tid")
		if err != nil {
			return nil, err
		}
		start, err := cur.u64("span start")
		if err != nil {
			return nil, err
		}
		dur, err := cur.u64("span dur")
		if err != nil {
			return nil, err
		}
		spans[i] = SpanWire{Name: name, Cat: cat, TID: int(int32(tid)), Start: int64(start), Dur: int64(dur)}
	}
	if cur.remaining() != 0 {
		return nil, wireErrorf("%d trailing bytes after the span block", cur.remaining())
	}
	resp := &sc.resp
	*resp = ScreenResponse{
		Offset:  int(offset),
		Classes: int(classes),
		Version: version,
		Items:   items,
	}
	if nSpans > 0 {
		resp.Spans = spans
	}
	return resp, nil
}

// --- pooled encode buffers ---

// encBufPool holds request/response encode buffers. Pooled as
// pointers so the slice header does not allocate on Put.
var encBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetEncodeBuf fetches a reusable encode buffer (length 0).
func GetEncodeBuf() []byte { return (*(encBufPool.Get().(*[]byte)))[:0] }

// PutEncodeBuf returns an encode buffer to the pool. The caller must
// not touch the slice afterwards.
func PutEncodeBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	encBufPool.Put(&b)
}
