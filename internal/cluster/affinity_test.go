package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"

	"enmc/internal/decode"
	"enmc/internal/workload"
)

// TestAffinitySticky: once a session pins, every subsequent scatter
// for that session lands on the pinned replicas only.
func TestAffinitySticky(t *testing.T) {
	_, shards, _ := fixture(t)
	var hits [fixShards][2]atomic.Int64
	urls, _ := startWorkers(t, shards, 2, func(shard, rep int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/v1/shard/screen" {
				hits[shard][rep].Add(1)
			}
			h.ServeHTTP(w, req)
		})
	})
	r := dialT(t, RouterConfig{ShardMap: urls})
	inst, _, _ := fixture(t)
	aff := r.NewAffinity()
	batch := [][]float32{inst.Test[0]}

	if _, _, err := r.classifyBatchAffine(context.Background(), batch, 12, 4, aff); err != nil {
		t.Fatal(err)
	}
	pins := aff.Pins()
	for sh, p := range pins {
		if p < 0 {
			t.Fatalf("shard %d unpinned after first call", sh)
		}
	}
	// Ten more calls: only the pinned replica of each shard may serve.
	before := [fixShards][2]int64{}
	for sh := range hits {
		for rep := range hits[sh] {
			before[sh][rep] = hits[sh][rep].Load()
		}
	}
	for i := 0; i < 10; i++ {
		if _, _, err := r.classifyBatchAffine(context.Background(), batch, 12, 4, aff); err != nil {
			t.Fatal(err)
		}
	}
	for sh := range hits {
		for rep := range hits[sh] {
			served := hits[sh][rep].Load() - before[sh][rep]
			if rep == pins[sh] && served != 10 {
				t.Fatalf("shard %d pinned replica %d served %d/10", sh, rep, served)
			}
			if rep != pins[sh] && served != 0 {
				t.Fatalf("shard %d unpinned replica %d served %d requests", sh, rep, served)
			}
		}
	}
}

// TestAffinityRepinOnFailure: killing the pinned replica re-pins the
// session onto a survivor via the ordinary failover path, and the
// re-pin is counted.
func TestAffinityRepinOnFailure(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, srvs := startWorkers(t, shards, 2, nil)
	r := dialT(t, RouterConfig{ShardMap: urls})
	aff := r.NewAffinity()
	batch := [][]float32{inst.Test[0]}
	if _, _, err := r.classifyBatchAffine(context.Background(), batch, 12, 4, aff); err != nil {
		t.Fatal(err)
	}
	pinned := aff.Pins()[0]
	beforeRepin := mSessionRepin.Value()
	srvs[0][pinned].Close() // SIGKILL-equivalent for shard 0's pinned replica
	outs, part, err := r.classifyBatchAffine(context.Background(), batch, 12, 4, aff)
	if err != nil {
		t.Fatal(err)
	}
	if part.Partial {
		t.Fatalf("failover degraded to partial: %+v", part)
	}
	if len(outs[0].TopK) == 0 {
		t.Fatal("no candidates after failover")
	}
	if got := aff.Pins()[0]; got == pinned {
		t.Fatalf("shard 0 still pinned to dead replica %d", got)
	}
	if mSessionRepin.Value() != beforeRepin+1 {
		t.Fatalf("session_repin counter moved by %d, want 1", mSessionRepin.Value()-beforeRepin)
	}
}

// TestDecodeScorerOverCluster drives a full decode session through
// the router-backed scorer: tokens flow, the greedy choice matches
// the router's merged argmax, and the session's affinity pins.
func TestDecodeScorerOverCluster(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, _ := startWorkers(t, shards, 2, nil)
	r := dialT(t, RouterConfig{ShardMap: urls})

	ds := r.NewDecodeScorer()
	sc, err := ds.ScoreStep(context.Background(), inst.Test[0], 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Classes) == 0 || len(sc.Classes) != len(sc.LogProbs) {
		t.Fatalf("bad step score: %+v", sc)
	}
	outs, err := r.ClassifyBatch(context.Background(), [][]float32{inst.Test[0]}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Classes[0] != outs[0].Class {
		t.Fatalf("scorer greedy %d, router argmax %d", sc.Classes[0], outs[0].Class)
	}
	for i := 1; i < len(sc.LogProbs); i++ {
		if sc.LogProbs[i] > sc.LogProbs[i-1] {
			t.Fatalf("log-probs not descending: %v", sc.LogProbs)
		}
	}

	// Full streaming session over the cluster, greedy and beam.
	dec := workload.NewDecoderFor(inst.Classifier, 7, 16)
	svc := decode.NewService(decode.Config{TopM: 12}, dec, func() decode.Scorer { return r.NewDecodeScorer() })
	defer svc.Shutdown()
	for _, mode := range []decode.Mode{decode.Greedy, decode.Beam} {
		sess, err := svc.Open(mode, 3, inst.Test[1])
		if err != nil {
			t.Fatal(err)
		}
		frames := 0
		fin, err := sess.Run(context.Background(), dec.MaxLen(), func(decode.Token) error {
			frames++
			return nil
		})
		if err != nil || !fin {
			t.Fatalf("%s session: fin=%v err=%v", mode, fin, err)
		}
		if frames != dec.MaxLen() {
			t.Fatalf("%s session emitted %d frames, want %d", mode, frames, dec.MaxLen())
		}
		if err := svc.Close(sess.ID); err != nil {
			t.Fatal(err)
		}
	}
}
