package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/distributed"
	"enmc/internal/server"
	"enmc/internal/telemetry"
)

// RouterConfig tunes the scatter-gather router. Zero values take the
// documented defaults in Dial.
type RouterConfig struct {
	// ShardMap is the static topology: ShardMap[i] lists shard i's
	// replica base URLs (see ParseShardMap).
	ShardMap [][]string
	// Timeout bounds one RPC attempt to one replica (default 2s).
	Timeout time.Duration
	// MaxAttempts bounds the attempts per shard per query — the
	// first try plus retry/failover/hedge relaunches (default: one
	// per replica, minimum 2). Attempts cycle through the replica
	// order, so a single-replica shard gets a same-replica retry.
	MaxAttempts int
	// HedgeAfter launches a hedge attempt on another replica when
	// the first has not answered after this long (default 0:
	// disabled unless HedgeQuantile is set; with HedgeQuantile it is
	// the floor under the adaptive delay).
	HedgeAfter time.Duration
	// HedgeQuantile makes the hedge delay adaptive: hedge after this
	// quantile of the shard's recently observed RPC latency (e.g.
	// 0.9). 0 disables adaptation.
	HedgeQuantile float64
	// HealthInterval is the per-replica /readyz probe period
	// (default 500ms; negative disables probing).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default HealthInterval).
	HealthTimeout time.Duration
	// FailThreshold ejects a replica after this many consecutive
	// probe failures (default 3).
	FailThreshold int
	// ReadmitThreshold re-admits an ejected replica after this many
	// consecutive probe successes (default 2).
	ReadmitThreshold int
	// Client overrides the HTTP client (default: pooled transport).
	Client *http.Client
	// Tracer receives per-shard RPC spans on TrackClusterBase+i;
	// nil falls back to the global tracer at call time.
	Tracer *telemetry.Tracer
}

func (c *RouterConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
		if c.HealthTimeout <= 0 {
			c.HealthTimeout = 500 * time.Millisecond
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
}

// replica is one worker process serving a shard. healthy is owned by
// the probe loop (and optimistically true at start); the data path
// only reads it to order failover candidates — an ejected replica is
// still tried as a last resort, so recovery never waits on a probe.
type replica struct {
	url     string
	healthy atomic.Bool
}

// routerShard is the router's view of one row-slice: its replicas,
// the round-robin cursor, and a sliding latency window that feeds
// the adaptive hedge delay.
type routerShard struct {
	id      int
	offset  int
	classes int
	version atomic.Pointer[string]

	replicas []*replica
	next     atomic.Uint32
	lat      latWindow
}

// replicaOrder returns the failover sequence for one query: healthy
// replicas first, rotated by the round-robin cursor, then ejected
// ones as a last resort (so a shard whose probes all fail is still
// reachable the instant a worker comes back).
func (s *routerShard) replicaOrder() []*replica {
	n := len(s.replicas)
	start := int(s.next.Add(1)-1) % n
	order := make([]*replica, 0, n)
	var down []*replica
	for i := 0; i < n; i++ {
		rep := s.replicas[(start+i)%n]
		if rep.healthy.Load() {
			order = append(order, rep)
		} else {
			down = append(down, rep)
		}
	}
	return append(order, down...)
}

// Router scatter-gathers classification across networked shard
// workers and merges the global top-k. It implements server.Backend
// (plus the partial-result and version-skew extensions), so
// enmc-serve can put the full micro-batching/admission/degradation
// stack in front of a cluster unchanged.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	shards []*routerShard
	hidden int

	categories int
	stop       chan struct{}
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// Dial learns the shard map geometry from each shard's
// /v1/shard/info (trying replicas in order), validates that the
// slices tile the class space exactly, and starts the per-replica
// health probe loops.
func Dial(ctx context.Context, cfg RouterConfig) (*Router, error) {
	cfg.defaults()
	if len(cfg.ShardMap) == 0 {
		return nil, fmt.Errorf("cluster: empty shard map")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		}
	}
	r := &Router{cfg: cfg, client: client, stop: make(chan struct{})}
	for i, group := range cfg.ShardMap {
		if len(group) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		s := &routerShard{id: i, offset: -1}
		for _, u := range group {
			rep := &replica{url: u}
			rep.healthy.Store(true)
			s.replicas = append(s.replicas, rep)
		}
		var lastErr error
		for _, rep := range s.replicas {
			info, err := fetchInfo(ctx, client, rep.url, cfg.Timeout)
			if err != nil {
				lastErr = err
				continue
			}
			s.offset, s.classes = info.Offset, info.Classes
			v := info.Version
			s.version.Store(&v)
			if r.hidden == 0 {
				r.hidden = info.Hidden
			} else if info.Hidden != r.hidden {
				return nil, fmt.Errorf("cluster: shard %d hidden dim %d disagrees with %d", i, info.Hidden, r.hidden)
			}
			break
		}
		if s.offset < 0 {
			return nil, fmt.Errorf("cluster: shard %d: no replica reachable: %v", i, lastErr)
		}
		r.shards = append(r.shards, s)
	}

	// The row slices must tile [0, total) exactly: a gap would
	// silently drop classes, an overlap would double-count them.
	byOffset := append([]*routerShard(nil), r.shards...)
	sort.Slice(byOffset, func(a, b int) bool { return byOffset[a].offset < byOffset[b].offset })
	want := 0
	for _, s := range byOffset {
		if s.offset != want {
			return nil, fmt.Errorf("cluster: shard map does not tile the class space: shard %d covers [%d,%d), want offset %d",
				s.id, s.offset, s.offset+s.classes, want)
		}
		want += s.classes
	}
	r.categories = want

	if tr := r.tracer(); tr.Enabled() {
		// Process lanes for distributed captures: the router is PID 0,
		// shard i's remote spans land on PID 1+i (see rpcOnce).
		tr.SetProcessName(0, "enmc-serve router")
		for _, s := range r.shards {
			tr.SetThreadName(telemetry.TrackClusterBase+s.id, fmt.Sprintf("cluster shard %d rpc", s.id))
			tr.SetProcessName(1+s.id, fmt.Sprintf("enmc-shard %d", s.id))
		}
	}
	mShardsHealthy.Set(float64(len(r.shards)))
	if cfg.HealthInterval > 0 {
		for _, s := range r.shards {
			for _, rep := range s.replicas {
				r.wg.Add(1)
				go r.probeLoop(s, rep)
			}
		}
	}
	return r, nil
}

func fetchInfo(ctx context.Context, client *http.Client, base string, timeout time.Duration) (*ShardInfo, error) {
	ictx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ictx, http.MethodGet, base+"/v1/shard/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s/v1/shard/info: HTTP %d", base, resp.StatusCode)
	}
	var info ShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	if info.Classes <= 0 || info.Hidden <= 0 || info.Offset < 0 {
		return nil, fmt.Errorf("cluster: %s reported bad geometry %+v", base, info)
	}
	return &info, nil
}

// Close stops the health probe loops and releases idle connections.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.client.CloseIdleConnections()
}

// Hidden implements server.Backend.
func (r *Router) Hidden() int { return r.hidden }

// Categories implements server.Backend.
func (r *Router) Categories() int { return r.categories }

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// HealthyShards reports how many shards currently have at least one
// non-ejected replica.
func (r *Router) HealthyShards() int {
	n := 0
	for _, s := range r.shards {
		for _, rep := range s.replicas {
			if rep.healthy.Load() {
				n++
				break
			}
		}
	}
	return n
}

// ModelVersion implements server.Versioned: the uniform shard
// version, or the distinct versions joined with "," while a rolling
// update is in flight.
func (r *Router) ModelVersion() string {
	vs := r.distinctVersions()
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// VersionSkew implements server.SkewReporter.
func (r *Router) VersionSkew() bool { return len(r.distinctVersions()) > 1 }

func (r *Router) distinctVersions() []string {
	seen := map[string]bool{}
	var vs []string
	for _, s := range r.shards {
		v := ""
		if p := s.version.Load(); p != nil {
			v = *p
		}
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

func (r *Router) tracer() *telemetry.Tracer {
	if r.cfg.Tracer != nil {
		return r.cfg.Tracer
	}
	return telemetry.Global()
}

// ClassifyBatch implements server.Backend: the partial flag is
// dropped — serving layers that can surface it use
// ClassifyBatchPartial (the server does, via server.PartialBackend).
func (r *Router) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]server.Outcome, error) {
	outs, _, err := r.ClassifyBatchPartial(ctx, batch, m, topK)
	return outs, err
}

// ClassifyBatchPartial implements server.PartialBackend: scatter the
// batch across every shard concurrently, gather the per-shard exact
// candidate pairs, and merge the global top-k. When every replica of
// a shard fails, the query degrades instead of failing: the merged
// top-k of the surviving shards is returned with Partial set and the
// missing shard ids listed. Only all-shards-down (or cancellation)
// returns an error.
func (r *Router) ClassifyBatchPartial(ctx context.Context, batch [][]float32, m, topK int) ([]server.Outcome, server.Partial, error) {
	if len(batch) == 0 {
		return nil, server.Partial{}, nil
	}
	per := (m + len(r.shards) - 1) / len(r.shards)
	if per < 1 {
		per = 1
	}
	body, err := json.Marshal(ScreenRequest{Batch: batch, M: per})
	if err != nil {
		return nil, server.Partial{}, err
	}

	replies := make([]*ScreenResponse, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *routerShard) {
			defer wg.Done()
			replies[i], errs[i] = r.callShard(ctx, s, body, len(batch))
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, server.Partial{}, err
	}

	var missing []int
	var lastErr error
	for i, e := range errs {
		if e != nil {
			missing = append(missing, i)
			lastErr = e
		}
	}
	if len(missing) == len(r.shards) {
		return nil, server.Partial{}, fmt.Errorf("cluster: all %d shards unreachable: %w", len(r.shards), lastErr)
	}

	outs := make([]server.Outcome, len(batch))
	pool := make([]distributed.Candidate, 0, len(r.shards)*per)
	for i := range batch {
		pool = pool[:0]
		for _, rep := range replies {
			if rep == nil {
				continue
			}
			for _, c := range rep.Items[i] {
				pool = append(pool, distributed.Candidate{Class: c.Class, Logit: c.Logit})
			}
		}
		// MergeDedup, not Merge: wire replies are untrusted, and a
		// mis-wired shard map can double-cover a class row.
		merged := distributed.MergeDedup(pool, topK)
		ck := make([]server.Candidate, len(merged))
		for j, c := range merged {
			ck[j] = server.Candidate{Class: c.Class, Logit: c.Logit}
		}
		o := server.Outcome{TopK: ck}
		if len(merged) > 0 {
			o.Class = merged[0].Class
		}
		outs[i] = o
	}
	p := server.Partial{Partial: len(missing) > 0, MissingShards: missing}
	if p.Partial {
		mPartialResponses.Inc()
	}
	return outs, p, nil
}

// callShard runs one shard's scatter leg: try replicas in failover
// order with a per-attempt timeout, relaunching on error (bounded by
// MaxAttempts) and hedging onto the next replica when the attempt in
// flight is slower than the shard's recent latency suggests it
// should be. First success wins; losers are cancelled.
func (r *Router) callShard(ctx context.Context, s *routerShard, body []byte, nItems int) (*ScreenResponse, error) {
	order := s.replicaOrder()
	attempts := r.cfg.MaxAttempts
	if attempts <= 0 {
		attempts = len(order)
		if attempts < 2 {
			attempts = 2
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap any attempt still in flight when we return

	type attemptResult struct {
		resp *ScreenResponse
		err  error
	}
	ch := make(chan attemptResult, attempts)
	launched := 0
	launch := func() {
		rep := order[launched%len(order)]
		launched++
		go func() {
			resp, err := r.rpcOnce(cctx, s, rep, body, nItems)
			ch <- attemptResult{resp, err}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	if hd := r.hedgeDelay(s); hd > 0 && attempts > 1 {
		t := time.NewTimer(hd)
		defer t.Stop()
		hedgeC = t.C
	}

	inflight := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launched < attempts {
				mHedgeFired.Inc()
				launch()
				inflight++
			}
		case ar := <-ch:
			if ar.err == nil {
				return ar.resp, nil
			}
			lastErr = ar.err
			inflight--
			if launched < attempts {
				mFailoverTotal.Inc()
				launch()
				inflight++
			} else if inflight == 0 {
				return nil, lastErr
			}
		}
	}
}

// hedgeDelay picks the point past which a second attempt launches:
// the configured quantile of the shard's recent RPC latencies when
// adaptive hedging is on (floored by HedgeAfter), else the static
// HedgeAfter, else disabled.
func (r *Router) hedgeDelay(s *routerShard) time.Duration {
	d := r.cfg.HedgeAfter
	if r.cfg.HedgeQuantile > 0 {
		if q := s.lat.quantile(r.cfg.HedgeQuantile); q > d {
			d = q
		}
	}
	if d > r.cfg.Timeout {
		d = r.cfg.Timeout
	}
	return d
}

// rpcOnce is one attempt against one replica under the per-attempt
// timeout. Successful attempts feed the shard's latency window and
// record a span on the shard's trace lane; when the request context
// carries a trace, the trace ships to the worker on the wire headers
// and the worker's returned spans are rebased under this attempt's
// span on the shard's process lane (PID 1+id).
func (r *Router) rpcOnce(ctx context.Context, s *routerShard, rep *replica, body []byte, nItems int) (*ScreenResponse, error) {
	mShardRPCTotal.Inc()
	tr := r.tracer()
	tc, traced := telemetry.TraceCtxFrom(ctx)
	spanStart := tr.Now()
	actx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	start := time.Now()
	fail := func(err error) (*ScreenResponse, error) {
		mShardRPCErrors.Inc()
		if tr.Enabled() {
			tr.Add(telemetry.Span{
				Name: fmt.Sprintf("rpc %s FAIL", rep.url), Cat: "rpc",
				TID:   telemetry.TrackClusterBase + s.id,
				Start: spanStart, Dur: tr.Now() - spanStart, Trace: tc.TraceID,
			})
		}
		return nil, err
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep.url+"/v1/shard/screen", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traced {
		// This attempt is the worker's parent span: a fresh span ID
		// under the request's trace.
		telemetry.InjectTrace(req.Header, telemetry.TraceCtx{
			TraceID: tc.TraceID, SpanID: telemetry.NewSpanID(),
		})
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fail(fmt.Errorf("cluster: shard %d replica %s: HTTP %d", s.id, rep.url, resp.StatusCode))
	}
	var sr ScreenResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fail(fmt.Errorf("cluster: shard %d replica %s: bad reply: %w", s.id, rep.url, err))
	}
	if len(sr.Items) != nItems {
		return fail(fmt.Errorf("cluster: shard %d replica %s: %d items in reply, want %d", s.id, rep.url, len(sr.Items), nItems))
	}
	elapsed := time.Since(start)
	s.lat.observe(elapsed)
	mRPCNs.Observe(float64(elapsed))
	if tr.Enabled() {
		tr.Add(telemetry.Span{
			Name: fmt.Sprintf("rpc %s", rep.url), Cat: "rpc",
			TID:   telemetry.TrackClusterBase + s.id,
			Start: spanStart, Dur: tr.Now() - spanStart, Trace: tc.TraceID,
		})
		// Rebase the worker's spans (ticks since request receipt) onto
		// this attempt's start: nesting holds positionally, so one
		// capture shows the shard's screen pipeline under its RPC with
		// no cross-host clock agreement. The wire time skips request
		// decode/network, so worker spans sit a hair late inside the
		// RPC span — conservative, never overlapping outside it.
		for _, ws := range sr.Spans {
			tr.Add(telemetry.Span{
				Name: ws.Name, Cat: ws.Cat, PID: 1 + s.id, TID: ws.TID,
				Start: spanStart + ws.Start, Dur: ws.Dur, Trace: tc.TraceID,
			})
		}
	}
	s.version.Store(&sr.Version)
	return &sr, nil
}
