package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enmc/internal/distributed"
	"enmc/internal/server"
	"enmc/internal/telemetry"
)

// RouterConfig tunes the scatter-gather router. Zero values take the
// documented defaults in Dial.
type RouterConfig struct {
	// ShardMap is the static topology: ShardMap[i] lists shard i's
	// replica base URLs (see ParseShardMap).
	ShardMap [][]string
	// Timeout bounds one RPC attempt to one replica (default 2s).
	Timeout time.Duration
	// MaxAttempts bounds the attempts per shard per query — the
	// first try plus retry/failover/hedge relaunches (default: one
	// per replica, minimum 2). Attempts cycle through the replica
	// order, so a single-replica shard gets a same-replica retry.
	MaxAttempts int
	// HedgeAfter launches a hedge attempt on another replica when
	// the first has not answered after this long (default 0:
	// disabled unless HedgeQuantile is set; with HedgeQuantile it is
	// the floor under the adaptive delay).
	HedgeAfter time.Duration
	// HedgeQuantile makes the hedge delay adaptive: hedge after this
	// quantile of the shard's recently observed RPC latency (e.g.
	// 0.9). 0 disables adaptation.
	HedgeQuantile float64
	// HealthInterval is the per-replica /readyz probe period
	// (default 500ms; negative disables probing).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default HealthInterval).
	HealthTimeout time.Duration
	// FailThreshold ejects a replica after this many consecutive
	// probe failures (default 3).
	FailThreshold int
	// ReadmitThreshold re-admits an ejected replica after this many
	// consecutive probe successes (default 2).
	ReadmitThreshold int
	// WireJSON forces the scatter leg onto the JSON codec, never
	// offering the binary frame (the -wire json escape hatch). Off,
	// the router encodes binary and renegotiates per replica on 415
	// or 400 — see rpcOnce.
	WireJSON bool
	// Client overrides the HTTP client (default: pooled transport).
	Client *http.Client
	// Tracer receives per-shard RPC spans on TrackClusterBase+i;
	// nil falls back to the global tracer at call time.
	Tracer *telemetry.Tracer
}

func (c *RouterConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
		if c.HealthTimeout <= 0 {
			c.HealthTimeout = 500 * time.Millisecond
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
}

// replica is one worker process serving a shard. healthy is owned by
// the probe loop (and optimistically true at start); the data path
// only reads it to order failover candidates — an ejected replica is
// still tried as a last resort, so recovery never waits on a probe.
// jsonOnly pins the replica to the JSON codec after a failed binary
// negotiation (pre-v2 worker, or -wire json on the worker); it resets
// when the probe loop readmits the replica, so a restarted — possibly
// upgraded — worker gets re-offered the binary frame.
type replica struct {
	url      string
	healthy  atomic.Bool
	jsonOnly atomic.Bool
}

// routerShard is the router's view of one row-slice: its replicas,
// the round-robin cursor, and a sliding latency window that feeds
// the adaptive hedge delay.
type routerShard struct {
	id      int
	offset  int
	classes int
	version atomic.Pointer[string]

	replicas []*replica
	next     atomic.Uint32
	lat      latWindow
}

// orderPool recycles the failover-order backing arrays so the router
// fast path does not allocate one per shard per query.
var orderPool = sync.Pool{New: func() any {
	s := make([]*replica, 0, 8)
	return &s
}}

// replicaOrderInto appends the failover sequence for one query into
// order (reusing its backing array): healthy replicas first, rotated
// by the round-robin cursor, then ejected ones as a last resort (so a
// shard whose probes all fail is still reachable the instant a worker
// comes back). Two passes over a handful of replicas beat a second
// scratch slice.
func (s *routerShard) replicaOrderInto(order []*replica) []*replica {
	n := len(s.replicas)
	start := int(s.next.Add(1)-1) % n
	order = order[:0]
	for i := 0; i < n; i++ {
		if rep := s.replicas[(start+i)%n]; rep.healthy.Load() {
			order = append(order, rep)
		}
	}
	for i := 0; i < n; i++ {
		if rep := s.replicas[(start+i)%n]; !rep.healthy.Load() {
			order = append(order, rep)
		}
	}
	return order
}

// wireBody is the scatter payload shared by every shard, hedge, and
// failover retry of one micro-batch: the binary frame is encoded once
// into a pooled buffer, and the JSON rendering is produced lazily —
// only when some replica actually needs the fallback codec. The
// refcount returns the pooled buffer when the last reader is done;
// readers are counted per HTTP request body (see reqBody), because
// Body.Close is the only point the transport guarantees it has
// stopped reading.
type wireBody struct {
	bin  []byte
	refs atomic.Int32

	req      ScreenRequest
	jsonOnce sync.Once
	jsonBuf  []byte
	jsonErr  error
}

// acquire takes a ref the caller knows is safe: some live ref (the
// micro-batch's own, held until ClassifyBatchPartial returns) still
// pins the buffer. tryAcquire is the guarded form for paths with no
// such guarantee (GetBody replays): once refs hits 0 the pooled
// buffer may already belong to another micro-batch, so resurrecting
// the count would hand out foreign bytes — fail instead.
func (b *wireBody) acquire() { b.refs.Add(1) }

func (b *wireBody) tryAcquire() bool {
	for {
		n := b.refs.Load()
		if n <= 0 {
			return false
		}
		if b.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (b *wireBody) release() {
	if b.refs.Add(-1) == 0 && b.bin != nil {
		PutEncodeBuf(b.bin)
		b.bin = nil
	}
}

// json renders the JSON fallback body at most once. The buffer is
// GC-owned (not pooled): fallbacks are the rare path.
func (b *wireBody) json() ([]byte, error) {
	b.jsonOnce.Do(func() { b.jsonBuf, b.jsonErr = json.Marshal(b.req) })
	return b.jsonBuf, b.jsonErr
}

// reqBody hands a view of the shared scatter payload to the HTTP
// client. The transport closes every request body, even on errors,
// and may still be reading it after Do returns — so the wireBody ref
// is released on Close, never earlier.
type reqBody struct {
	*bytes.Reader
	wb   *wireBody
	once sync.Once
}

func (b *reqBody) Close() error {
	b.once.Do(b.wb.release)
	return nil
}

// Router scatter-gathers classification across networked shard
// workers and merges the global top-k. It implements server.Backend
// (plus the partial-result and version-skew extensions), so
// enmc-serve can put the full micro-batching/admission/degradation
// stack in front of a cluster unchanged.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	shards []*routerShard
	hidden int

	categories int
	stop       chan struct{}
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// Dial learns the shard map geometry from each shard's
// /v1/shard/info (trying replicas in order), validates that the
// slices tile the class space exactly, and starts the per-replica
// health probe loops.
func Dial(ctx context.Context, cfg RouterConfig) (*Router, error) {
	cfg.defaults()
	if len(cfg.ShardMap) == 0 {
		return nil, fmt.Errorf("cluster: empty shard map")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		}
	}
	r := &Router{cfg: cfg, client: client, stop: make(chan struct{})}
	for i, group := range cfg.ShardMap {
		if len(group) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		s := &routerShard{id: i, offset: -1}
		for _, u := range group {
			rep := &replica{url: u}
			rep.healthy.Store(true)
			s.replicas = append(s.replicas, rep)
		}
		var lastErr error
		for _, rep := range s.replicas {
			info, err := fetchInfo(ctx, client, rep.url, cfg.Timeout)
			if err != nil {
				lastErr = err
				continue
			}
			// A worker that advertises codecs but not "v2" never gets
			// offered the binary frame; one that advertises nothing
			// (pre-v2) is probed optimistically and falls back on 400.
			if len(info.Codecs) > 0 && !codecListed(info.Codecs, "v2") {
				rep.jsonOnly.Store(true)
			}
			s.offset, s.classes = info.Offset, info.Classes
			v := info.Version
			s.version.Store(&v)
			if r.hidden == 0 {
				r.hidden = info.Hidden
			} else if info.Hidden != r.hidden {
				return nil, fmt.Errorf("cluster: shard %d hidden dim %d disagrees with %d", i, info.Hidden, r.hidden)
			}
			break
		}
		if s.offset < 0 {
			return nil, fmt.Errorf("cluster: shard %d: no replica reachable: %v", i, lastErr)
		}
		r.shards = append(r.shards, s)
	}

	// The row slices must tile [0, total) exactly: a gap would
	// silently drop classes, an overlap would double-count them.
	byOffset := append([]*routerShard(nil), r.shards...)
	sort.Slice(byOffset, func(a, b int) bool { return byOffset[a].offset < byOffset[b].offset })
	want := 0
	for _, s := range byOffset {
		if s.offset != want {
			return nil, fmt.Errorf("cluster: shard map does not tile the class space: shard %d covers [%d,%d), want offset %d",
				s.id, s.offset, s.offset+s.classes, want)
		}
		want += s.classes
	}
	r.categories = want

	if tr := r.tracer(); tr.Enabled() {
		// Process lanes for distributed captures: the router is PID 0,
		// shard i's remote spans land on PID 1+i (see rpcOnce).
		tr.SetProcessName(0, "enmc-serve router")
		for _, s := range r.shards {
			tr.SetThreadName(telemetry.TrackClusterBase+s.id, fmt.Sprintf("cluster shard %d rpc", s.id))
			tr.SetProcessName(1+s.id, fmt.Sprintf("enmc-shard %d", s.id))
		}
	}
	mShardsHealthy.Set(float64(len(r.shards)))
	if cfg.HealthInterval > 0 {
		for _, s := range r.shards {
			for _, rep := range s.replicas {
				r.wg.Add(1)
				go r.probeLoop(s, rep)
			}
		}
	}
	return r, nil
}

func codecListed(codecs []string, want string) bool {
	for _, c := range codecs {
		if c == want {
			return true
		}
	}
	return false
}

func fetchInfo(ctx context.Context, client *http.Client, base string, timeout time.Duration) (*ShardInfo, error) {
	ictx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ictx, http.MethodGet, base+"/v1/shard/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s/v1/shard/info: HTTP %d", base, resp.StatusCode)
	}
	var info ShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	// Drain the trailing newline json.Encoder wrote: the decoder stops
	// at the closing brace, and a connection handed back with unread
	// bytes is torn down instead of reused.
	_, _ = io.Copy(io.Discard, resp.Body)
	if info.Classes <= 0 || info.Hidden <= 0 || info.Offset < 0 {
		return nil, fmt.Errorf("cluster: %s reported bad geometry %+v", base, info)
	}
	return &info, nil
}

// Close stops the health probe loops and releases idle connections.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.client.CloseIdleConnections()
}

// Hidden implements server.Backend.
func (r *Router) Hidden() int { return r.hidden }

// Categories implements server.Backend.
func (r *Router) Categories() int { return r.categories }

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// HealthyShards reports how many shards currently have at least one
// non-ejected replica.
func (r *Router) HealthyShards() int {
	n := 0
	for _, s := range r.shards {
		for _, rep := range s.replicas {
			if rep.healthy.Load() {
				n++
				break
			}
		}
	}
	return n
}

// ModelVersion implements server.Versioned: the uniform shard
// version, or the distinct versions joined with "," while a rolling
// update is in flight.
func (r *Router) ModelVersion() string {
	vs := r.distinctVersions()
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// VersionSkew implements server.SkewReporter.
func (r *Router) VersionSkew() bool { return len(r.distinctVersions()) > 1 }

func (r *Router) distinctVersions() []string {
	seen := map[string]bool{}
	var vs []string
	for _, s := range r.shards {
		v := ""
		if p := s.version.Load(); p != nil {
			v = *p
		}
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

func (r *Router) tracer() *telemetry.Tracer {
	if r.cfg.Tracer != nil {
		return r.cfg.Tracer
	}
	return telemetry.Global()
}

// ClassifyBatch implements server.Backend: the partial flag is
// dropped — serving layers that can surface it use
// ClassifyBatchPartial (the server does, via server.PartialBackend).
func (r *Router) ClassifyBatch(ctx context.Context, batch [][]float32, m, topK int) ([]server.Outcome, error) {
	outs, _, err := r.ClassifyBatchPartial(ctx, batch, m, topK)
	return outs, err
}

// ClassifyBatchPartial implements server.PartialBackend: scatter the
// batch across every shard concurrently, gather the per-shard exact
// candidate pairs, and merge the global top-k. When every replica of
// a shard fails, the query degrades instead of failing: the merged
// top-k of the surviving shards is returned with Partial set and the
// missing shard ids listed. Only all-shards-down (or cancellation)
// returns an error.
func (r *Router) ClassifyBatchPartial(ctx context.Context, batch [][]float32, m, topK int) ([]server.Outcome, server.Partial, error) {
	return r.classifyBatchAffine(ctx, batch, m, topK, nil)
}

// classifyBatchAffine is ClassifyBatchPartial with an optional decode
// session affinity: each shard tries the session's pinned replica
// first and re-pins to whichever replica actually answered.
func (r *Router) classifyBatchAffine(ctx context.Context, batch [][]float32, m, topK int, aff *Affinity) ([]server.Outcome, server.Partial, error) {
	if len(batch) == 0 {
		return nil, server.Partial{}, nil
	}
	per := (m + len(r.shards) - 1) / len(r.shards)
	if per < 1 {
		per = 1
	}
	// One encode per micro-batch, shared by every shard, hedge, and
	// retry. Binary is skipped entirely under -wire json; the JSON
	// rendering is lazy either way (wireBody.json).
	wb := &wireBody{req: ScreenRequest{Batch: batch, M: per}}
	wb.refs.Store(1)
	if !r.cfg.WireJSON {
		bin, err := AppendScreenRequest(GetEncodeBuf(), per, batch)
		if err != nil {
			return nil, server.Partial{}, err
		}
		wb.bin = bin
	}
	defer wb.release()

	replies := make([]*ScreenResponse, len(r.shards))
	scratches := make([]*WireScratch, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *routerShard) {
			defer wg.Done()
			replies[i], scratches[i], errs[i] = r.callShard(ctx, s, wb, len(batch), aff)
		}(i, s)
	}
	wg.Wait()
	// The winning replies may live in pooled decode scratch; the merge
	// loop below copies everything it keeps, so the scratch goes back
	// to the pool on every exit past this point.
	defer func() {
		for _, sc := range scratches {
			if sc != nil {
				sc.Release()
			}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, server.Partial{}, err
	}

	var missing []int
	var lastErr error
	for i, e := range errs {
		if e != nil {
			missing = append(missing, i)
			lastErr = e
		}
	}
	if len(missing) == len(r.shards) {
		return nil, server.Partial{}, fmt.Errorf("cluster: all %d shards unreachable: %w", len(r.shards), lastErr)
	}

	outs := make([]server.Outcome, len(batch))
	pool := make([]distributed.Candidate, 0, len(r.shards)*per)
	// One top-k backing array for the whole batch instead of one
	// allocation per item: MergeDedup returns at most topK, so the
	// arena never regrows and the three-index subslices stay stable.
	// The caller owns the returned Outcomes, so this cannot be pooled.
	ckAll := make([]server.Candidate, 0, len(batch)*topK)
	for i := range batch {
		pool = pool[:0]
		for _, rep := range replies {
			if rep == nil {
				continue
			}
			for _, c := range rep.Items[i] {
				pool = append(pool, distributed.Candidate{Class: c.Class, Logit: c.Logit})
			}
		}
		// MergeDedup, not Merge: wire replies are untrusted, and a
		// mis-wired shard map can double-cover a class row.
		merged := distributed.MergeDedup(pool, topK)
		start := len(ckAll)
		for _, c := range merged {
			ckAll = append(ckAll, server.Candidate{Class: c.Class, Logit: c.Logit})
		}
		o := server.Outcome{TopK: ckAll[start:len(ckAll):len(ckAll)]}
		if len(merged) > 0 {
			o.Class = merged[0].Class
		}
		outs[i] = o
	}
	p := server.Partial{Partial: len(missing) > 0, MissingShards: missing}
	if p.Partial {
		mPartialResponses.Inc()
	}
	return outs, p, nil
}

// callShard runs one shard's scatter leg: try replicas in failover
// order with a per-attempt timeout, relaunching on error (bounded by
// MaxAttempts) and hedging onto the next replica when the attempt in
// flight is slower than the shard's recent latency suggests it
// should be. First success wins; losers are cancelled, and any
// pooled decode scratch they produce is reaped back to the pool.
func (r *Router) callShard(ctx context.Context, s *routerShard, wb *wireBody, nItems int, aff *Affinity) (*ScreenResponse, *WireScratch, error) {
	op := orderPool.Get().(*[]*replica)
	order := s.replicaOrderInto(*op)
	defer func() {
		*op = order[:0]
		orderPool.Put(op)
	}()
	// Session affinity: front the pinned replica while it is healthy.
	// An ejected pin keeps the normal failover order — the success
	// path below re-pins the session to whoever answers.
	if p := aff.pin(s.id); p >= 0 && p < len(s.replicas) {
		if pinned := s.replicas[p]; pinned.healthy.Load() {
			for i, rep := range order {
				if rep == pinned {
					copy(order[1:i+1], order[:i])
					order[0] = pinned
					break
				}
			}
		}
	}
	attempts := r.cfg.MaxAttempts
	if attempts <= 0 {
		attempts = len(order)
		if attempts < 2 {
			attempts = 2
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap any attempt still in flight when we return

	type attemptResult struct {
		resp *ScreenResponse
		sc   *WireScratch
		rep  *replica
		err  error
	}
	ch := make(chan attemptResult, attempts)
	launched, done := 0, 0
	launch := func() {
		rep := order[launched%len(order)]
		launched++
		go func() {
			resp, sc, err := r.rpcOnce(cctx, s, rep, wb, nItems)
			ch <- attemptResult{resp, sc, rep, err}
		}()
	}
	launch()
	// Late finishers (cancelled hedges, loser attempts) may still
	// deliver a decoded response after we return; their scratch has to
	// go back to the pool or the pool churns under hedging load.
	reap := func() {
		if extra := launched - done; extra > 0 {
			go func() {
				for i := 0; i < extra; i++ {
					if ar := <-ch; ar.sc != nil {
						ar.sc.Release()
					}
				}
			}()
		}
	}

	var hedgeC <-chan time.Time
	if hd := r.hedgeDelay(s); hd > 0 && attempts > 1 {
		t := time.NewTimer(hd)
		defer t.Stop()
		hedgeC = t.C
	}

	inflight := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			reap()
			return nil, nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launched < attempts {
				mHedgeFired.Inc()
				launch()
				inflight++
			}
		case ar := <-ch:
			done++
			if ar.err == nil {
				if aff != nil {
					for idx, rep := range s.replicas {
						if rep == ar.rep {
							aff.record(s.id, idx)
							break
						}
					}
				}
				reap()
				return ar.resp, ar.sc, nil
			}
			lastErr = ar.err
			inflight--
			if launched < attempts {
				mFailoverTotal.Inc()
				launch()
				inflight++
			} else if inflight == 0 {
				return nil, nil, lastErr
			}
		}
	}
}

// hedgeDelay picks the point past which a second attempt launches:
// the configured quantile of the shard's recent RPC latencies when
// adaptive hedging is on (floored by HedgeAfter), else the static
// HedgeAfter, else disabled.
func (r *Router) hedgeDelay(s *routerShard) time.Duration {
	d := r.cfg.HedgeAfter
	if r.cfg.HedgeQuantile > 0 {
		if q := s.lat.quantile(r.cfg.HedgeQuantile); q > d {
			d = q
		}
	}
	if d > r.cfg.Timeout {
		d = r.cfg.Timeout
	}
	return d
}

// rpcOnce is one attempt against one replica under the per-attempt
// timeout. Successful attempts feed the shard's latency window and
// record a span on the shard's trace lane; when the request context
// carries a trace, the trace ships to the worker on the wire headers
// and the worker's returned spans are rebased under this attempt's
// span on the shard's process lane (PID 1+id).
//
// The returned WireScratch (nil for JSON replies) owns the decoded
// response's backing memory; the caller releases it once done with
// the response.
func (r *Router) rpcOnce(ctx context.Context, s *routerShard, rep *replica, wb *wireBody, nItems int) (*ScreenResponse, *WireScratch, error) {
	mShardRPCTotal.Inc()
	tr := r.tracer()
	tc, traced := telemetry.TraceCtxFrom(ctx)
	spanStart := tr.Now()
	actx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	start := time.Now()
	fail := func(err error) (*ScreenResponse, *WireScratch, error) {
		mShardRPCErrors.Inc()
		if tr.Enabled() {
			tr.Add(telemetry.Span{
				Name: fmt.Sprintf("rpc %s FAIL", rep.url), Cat: "rpc",
				TID:   telemetry.TrackClusterBase + s.id,
				Start: spanStart, Dur: tr.Now() - spanStart, Trace: tc.TraceID,
			})
		}
		return nil, nil, err
	}
	binary := wb.bin != nil && !rep.jsonOnly.Load()
	sr, sc, status, err := r.screenRPC(actx, s, rep, wb, nItems, binary, tc, traced)
	if err != nil && binary &&
		(status == http.StatusUnsupportedMediaType || status == http.StatusBadRequest) {
		// A pre-v2 worker answers 400 (its JSON decoder chokes on the
		// binary frame); a worker pinned by -wire json answers 415.
		// Renegotiate down inline — this consumes no failover attempt,
		// so negotiation is invisible to retry accounting. 415 is an
		// unambiguous codec refusal, so the replica is pinned jsonOnly
		// immediately; 400 is ambiguous (a v2 worker also answers 400
		// to a genuinely bad request, e.g. a feature-length mismatch),
		// so pin only if the same request then succeeds as JSON —
		// proof the frame, not the request, was refused. The pin
		// clears on health-probe readmission (see probeLoop), so a
		// worker that restarts upgraded gets re-offered the frame.
		mWireFallbacks.Inc()
		badFrame := status == http.StatusBadRequest
		if !badFrame {
			rep.jsonOnly.Store(true)
		}
		sr, sc, _, err = r.screenRPC(actx, s, rep, wb, nItems, false, tc, traced)
		if badFrame && err == nil {
			rep.jsonOnly.Store(true)
		}
	}
	if err != nil {
		return fail(err)
	}
	if len(sr.Items) != nItems {
		if sc != nil {
			sc.Release()
		}
		return fail(fmt.Errorf("cluster: shard %d replica %s: %d items in reply, want %d", s.id, rep.url, len(sr.Items), nItems))
	}
	elapsed := time.Since(start)
	s.lat.observe(elapsed)
	mRPCNs.Observe(float64(elapsed))
	if tr.Enabled() {
		tr.Add(telemetry.Span{
			Name: fmt.Sprintf("rpc %s", rep.url), Cat: "rpc",
			TID:   telemetry.TrackClusterBase + s.id,
			Start: spanStart, Dur: tr.Now() - spanStart, Trace: tc.TraceID,
		})
		// Rebase the worker's spans (ticks since request receipt) onto
		// this attempt's start: nesting holds positionally, so one
		// capture shows the shard's screen pipeline under its RPC with
		// no cross-host clock agreement. The wire time skips request
		// decode/network, so worker spans sit a hair late inside the
		// RPC span — conservative, never overlapping outside it.
		for _, ws := range sr.Spans {
			tr.Add(telemetry.Span{
				Name: ws.Name, Cat: ws.Cat, PID: 1 + s.id, TID: ws.TID,
				Start: spanStart + ws.Start, Dur: ws.Dur, Trace: tc.TraceID,
			})
		}
	}
	// Copy the version out of the response: on the binary path
	// sr.Version lives inside pooled WireScratch memory, and the next
	// decode into a recycled scratch would rewrite the field under
	// concurrent distinctVersions readers.
	v := sr.Version
	s.version.Store(&v)
	return sr, sc, nil
}

// screenRPC is one HTTP round trip to one replica in one codec. The
// non-zero status return lets rpcOnce tell a negotiation refusal
// (415/400) from a transport error. Bodies are read to EOF on every
// path so the connection goes back to the keep-alive pool.
func (r *Router) screenRPC(ctx context.Context, s *routerShard, rep *replica, wb *wireBody, nItems int, binary bool, tc telemetry.TraceCtx, traced bool) (*ScreenResponse, *WireScratch, int, error) {
	var payload []byte
	if binary {
		payload = wb.bin
	} else {
		var err error
		if payload, err = wb.json(); err != nil {
			return nil, nil, 0, err
		}
	}
	wb.acquire()
	rb := &reqBody{Reader: bytes.NewReader(payload), wb: wb}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/shard/screen", rb)
	if err != nil {
		_ = rb.Close()
		return nil, nil, 0, err
	}
	req.ContentLength = int64(len(payload))
	// GetBody keeps the transport's silent replay on a stale
	// keep-alive connection working with our custom ReadCloser. A late
	// replay after every ref is gone (refs 0 → buffer back in the
	// pool) must not resurrect the payload, hence tryAcquire.
	req.GetBody = func() (io.ReadCloser, error) {
		if !wb.tryAcquire() {
			return nil, errors.New("cluster: scatter payload already released")
		}
		return &reqBody{Reader: bytes.NewReader(payload), wb: wb}, nil
	}
	if binary {
		req.Header.Set("Content-Type", ContentTypeScreenV2)
		req.Header.Set("Accept", AcceptScreenV2)
	} else {
		req.Header.Set("Content-Type", ContentTypeJSON)
		req.Header.Set("Accept", ContentTypeJSON)
	}
	if traced {
		// This attempt is the worker's parent span: a fresh span ID
		// under the request's trace.
		telemetry.InjectTrace(req.Header, telemetry.TraceCtx{
			TraceID: tc.TraceID, SpanID: telemetry.NewSpanID(),
		})
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil, resp.StatusCode, fmt.Errorf("cluster: shard %d replica %s: HTTP %d", s.id, rep.url, resp.StatusCode)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeScreenV2) {
		sc := GetWireScratch()
		frame, err := sc.ReadFrame(resp.Body)
		if err != nil {
			sc.Release()
			return nil, nil, 0, fmt.Errorf("cluster: shard %d replica %s: bad reply: %w", s.id, rep.url, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		sr, err := DecodeScreenResponse(frame, sc)
		if err != nil {
			sc.Release()
			return nil, nil, 0, fmt.Errorf("cluster: shard %d replica %s: bad reply: %w", s.id, rep.url, err)
		}
		mWireBinaryRPCs.Inc()
		return sr, sc, http.StatusOK, nil
	}
	var sr ScreenResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, MaxFrameBytes)).Decode(&sr); err != nil {
		return nil, nil, 0, fmt.Errorf("cluster: shard %d replica %s: bad reply: %w", s.id, rep.url, err)
	}
	// The decoder stops at the closing brace; drain the trailing
	// newline (and anything else) so the transport sees EOF and the
	// connection is reused instead of torn down.
	_, _ = io.Copy(io.Discard, resp.Body)
	mWireJSONRPCs.Inc()
	return &sr, nil, http.StatusOK, nil
}
