package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

// --- round trips ---

func testRequestBatch() [][]float32 {
	return [][]float32{
		{1, -2.5, 3.25, 0},
		{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), -0},
		{1e-45, math.MaxFloat32, math.SmallestNonzeroFloat32, 0.1}, // denormal, extremes
	}
}

func testResponse() *ScreenResponse {
	return &ScreenResponse{
		Offset:  30,
		Classes: 30,
		Version: "v2026-08-06",
		Items: [][]WireCandidate{
			{{Class: 31, Logit: 0.5}, {Class: 59, Logit: float32(math.Inf(-1))}},
			{},
			{{Class: 42, Logit: float32(math.NaN())}},
		},
		Spans: []SpanWire{
			{Name: "screen", Cat: "pipeline", TID: 3, Start: 100, Dur: 2000},
			{Name: "exact", Start: 2100, Dur: 900},
		},
	}
}

// bitsEqual compares float32s as raw bits so NaN payloads count.
func bitsEqual(a, b float32) bool { return math.Float32bits(a) == math.Float32bits(b) }

func TestRequestRoundTrip(t *testing.T) {
	batch := testRequestBatch()
	frame, err := AppendScreenRequest(nil, 17, batch)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	m, got, err := DecodeScreenRequest(frame, sc)
	if err != nil {
		t.Fatal(err)
	}
	if m != 17 || len(got) != len(batch) {
		t.Fatalf("m=%d items=%d, want 17, %d", m, len(got), len(batch))
	}
	for i, row := range batch {
		if len(got[i]) != len(row) {
			t.Fatalf("item %d: %d features, want %d", i, len(got[i]), len(row))
		}
		for j := range row {
			if !bitsEqual(got[i][j], row[j]) {
				t.Fatalf("item %d[%d]: bits %08x, want %08x (NaN/Inf must round-trip bit-exactly)",
					i, j, math.Float32bits(got[i][j]), math.Float32bits(row[j]))
			}
		}
	}
}

func TestRequestRoundTripEmptyBatch(t *testing.T) {
	frame, err := AppendScreenRequest(nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	m, got, err := DecodeScreenRequest(frame, sc)
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 || len(got) != 0 {
		t.Fatalf("m=%d items=%d, want 4, 0", m, len(got))
	}
}

func TestRequestRaggedBatchRejected(t *testing.T) {
	if _, err := AppendScreenRequest(nil, 1, [][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch encoded")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	want := testResponse()
	frame, err := AppendScreenResponse(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	got, err := DecodeScreenResponse(frame, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != want.Offset || got.Classes != want.Classes || got.Version != want.Version {
		t.Fatalf("identity = %d/%d/%q, want %d/%d/%q",
			got.Offset, got.Classes, got.Version, want.Offset, want.Classes, want.Version)
	}
	if len(got.Items) != len(want.Items) {
		t.Fatalf("%d items, want %d", len(got.Items), len(want.Items))
	}
	for i, item := range want.Items {
		if len(got.Items[i]) != len(item) {
			t.Fatalf("item %d: %d candidates, want %d", i, len(got.Items[i]), len(item))
		}
		for j, c := range item {
			g := got.Items[i][j]
			if g.Class != c.Class || !bitsEqual(g.Logit, c.Logit) {
				t.Fatalf("item %d[%d] = (%d, %08x), want (%d, %08x)",
					i, j, g.Class, math.Float32bits(g.Logit), c.Class, math.Float32bits(c.Logit))
			}
		}
	}
	if len(got.Spans) != len(want.Spans) {
		t.Fatalf("%d spans, want %d", len(got.Spans), len(want.Spans))
	}
	for i, sp := range want.Spans {
		if got.Spans[i] != sp {
			t.Fatalf("span %d = %+v, want %+v", i, got.Spans[i], sp)
		}
	}
}

func TestResponseRoundTripEmpty(t *testing.T) {
	frame, err := AppendScreenResponse(nil, &ScreenResponse{})
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	got, err := DecodeScreenResponse(frame, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != 0 || len(got.Spans) != 0 || got.Version != "" {
		t.Fatalf("got %+v, want zero response", got)
	}
}

// --- adversarial frames ---

// TestDecodeTruncationEveryBoundary feeds every strict prefix of a
// valid frame to the decoder twice: verbatim (the length prefix now
// disagrees with the body) and with the length prefix patched to
// match the truncated body (so the per-field bounds checks must catch
// it). Every prefix must be rejected; only the full frame decodes.
func TestDecodeTruncationEveryBoundary(t *testing.T) {
	reqFrame, err := AppendScreenRequest(nil, 9, testRequestBatch())
	if err != nil {
		t.Fatal(err)
	}
	respFrame, err := AppendScreenResponse(nil, testResponse())
	if err != nil {
		t.Fatal(err)
	}
	decodeReq := func(data []byte) error {
		sc := GetWireScratch()
		defer sc.Release()
		_, _, err := DecodeScreenRequest(data, sc)
		return err
	}
	decodeResp := func(data []byte) error {
		sc := GetWireScratch()
		defer sc.Release()
		_, err := DecodeScreenResponse(data, sc)
		return err
	}
	for name, tc := range map[string]struct {
		frame  []byte
		decode func([]byte) error
	}{
		"request":  {reqFrame, decodeReq},
		"response": {respFrame, decodeResp},
	} {
		if err := tc.decode(tc.frame); err != nil {
			t.Fatalf("%s: full frame rejected: %v", name, err)
		}
		for n := 0; n < len(tc.frame); n++ {
			cut := append([]byte(nil), tc.frame[:n]...)
			if err := tc.decode(cut); err == nil {
				t.Fatalf("%s: %d-byte truncation accepted (of %d)", name, n, len(tc.frame))
			}
			if n >= frameHeaderLen {
				binary.LittleEndian.PutUint32(cut[8:], uint32(n-frameHeaderLen))
				if err := tc.decode(cut); err == nil {
					t.Fatalf("%s: %d-byte truncation with patched length accepted", name, n)
				}
			}
		}
	}
}

func TestDecodeBadHeader(t *testing.T) {
	frame, err := AppendScreenResponse(nil, testResponse())
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func([]byte)) error {
		c := append([]byte(nil), frame...)
		mutate(c)
		sc := GetWireScratch()
		defer sc.Release()
		_, err := DecodeScreenResponse(c, sc)
		return err
	}
	for name, tc := range map[string]struct {
		mutate func([]byte)
		want   string
	}{
		"magic":     {func(b []byte) { b[0] = 'X' }, "bad magic"},
		"version":   {func(b []byte) { b[4] = 3 }, "unsupported wire version"},
		"kind":      {func(b []byte) { b[5] = frameKindRequest }, "frame kind"},
		"reserved":  {func(b []byte) { b[6] = 1 }, "reserved"},
		"lengthLie": {func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 5) }, "disagrees"},
	} {
		err := mut(tc.mutate)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
	// A response frame handed to the request decoder is a kind error.
	sc := GetWireScratch()
	defer sc.Release()
	if _, _, err := DecodeScreenRequest(frame, sc); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("request decoder took a response frame: %v", err)
	}
}

// TestDecodeCountsOverflow: candidate counts near MaxUint32 would
// overflow naive int arithmetic into a small allocation; the decoder
// must reject them on the running sum, not crash or over-allocate.
func TestDecodeCountsOverflow(t *testing.T) {
	var payload []byte
	payload = appendU32(payload, 0) // offset
	payload = appendU32(payload, 4) // classes
	payload = binary.LittleEndian.AppendUint16(payload, 0)
	payload = appendU32(payload, 2) // nItems
	payload = appendU32(payload, math.MaxUint32)
	payload = appendU32(payload, math.MaxUint32)
	frame := appendHeader(nil, frameKindResponse)
	frame = append(frame, payload...)
	frame, err := finishFrame(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	_, err = DecodeScreenResponse(frame, sc)
	if err == nil || !strings.Contains(err.Error(), "sum past the frame") {
		t.Fatalf("err = %v, want counts-overflow rejection", err)
	}
}

// TestDecodeCountsDontSum: counts that fit the frame but disagree
// with the actual pair block length are rejected.
func TestDecodeCountsDontSum(t *testing.T) {
	resp := testResponse()
	frame, err := AppendScreenResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	// The count block starts after offset(4)+classes(4)+
	// versionLen(2)+version+nItems(4). Bump item 0's count by one.
	countsOff := frameHeaderLen + 4 + 4 + 2 + len(resp.Version) + 4
	n := binary.LittleEndian.Uint32(frame[countsOff:])
	binary.LittleEndian.PutUint32(frame[countsOff:], n+1)
	sc := GetWireScratch()
	defer sc.Release()
	if _, err := DecodeScreenResponse(frame, sc); err == nil {
		t.Fatal("counts disagreeing with the pair block accepted")
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	frame, err := AppendScreenResponse(nil, testResponse())
	if err != nil {
		t.Fatal(err)
	}
	frame = append(frame, 0xEE)
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(frame)-frameHeaderLen))
	sc := GetWireScratch()
	defer sc.Release()
	if _, err := DecodeScreenResponse(frame, sc); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes rejection", err)
	}
}

func TestDecodeOversizedFrame(t *testing.T) {
	frame := appendHeader(nil, frameKindResponse)
	binary.LittleEndian.PutUint32(frame[8:], MaxFrameBytes+1)
	sc := GetWireScratch()
	defer sc.Release()
	if _, err := DecodeScreenResponse(frame, sc); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want oversize rejection", err)
	}
	if _, err := sc.ReadFrame(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("ReadFrame: err = %v, want oversize rejection before sizing the buffer", err)
	}
}

func TestReadFrame(t *testing.T) {
	want, err := AppendScreenResponse(nil, testResponse())
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	got, err := sc.ReadFrame(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadFrame bytes differ from the encoded frame")
	}
	// A stream that ends mid-payload is a clean error, not a hang.
	if _, err := sc.ReadFrame(bytes.NewReader(want[:len(want)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := sc.ReadFrame(bytes.NewReader(want[:5])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := sc.ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// --- fuzz ---

// FuzzDecodeScreenResponse: the decoder must never panic, and any
// frame it accepts must re-encode to the identical bytes (the format
// has exactly one canonical encoding — no slack the decoder ignores).
func FuzzDecodeScreenResponse(f *testing.F) {
	if seed, err := AppendScreenResponse(nil, testResponse()); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-2])
		mut := append([]byte(nil), seed...)
		mut[4] = 9
		f.Add(mut)
	}
	if seed, err := AppendScreenResponse(nil, &ScreenResponse{}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(frameMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := GetWireScratch()
		defer sc.Release()
		resp, err := DecodeScreenResponse(data, sc)
		if err != nil {
			return
		}
		re, err := AppendScreenResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted frame did not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical frame accepted:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzDecodeScreenRequest: same canonical-round-trip property for the
// request direction.
func FuzzDecodeScreenRequest(f *testing.F) {
	if seed, err := AppendScreenRequest(nil, 9, testRequestBatch()); err == nil {
		f.Add(seed)
	}
	if seed, err := AppendScreenRequest(nil, 1, nil); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := GetWireScratch()
		defer sc.Release()
		m, batch, err := DecodeScreenRequest(data, sc)
		if err != nil {
			return
		}
		re, err := AppendScreenRequest(nil, m, batch)
		if err != nil {
			t.Fatalf("accepted frame did not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical frame accepted:\n in: %x\nout: %x", data, re)
		}
	})
}

// --- allocation guards (PR 3 pattern) ---

// TestCodecSteadyStateAllocs: with a warm scratch and a pooled encode
// buffer, one encode+decode round trip of either direction allocates
// nothing. This is the property the RPC hot path is built on.
func TestCodecSteadyStateAllocs(t *testing.T) {
	batch := testRequestBatch()
	resp := testResponse()
	resp.Version = "" // a non-empty version decodes into one string alloc
	resp.Spans = nil  // span names likewise
	sc := GetWireScratch()
	defer sc.Release()
	buf := GetEncodeBuf()
	defer PutEncodeBuf(buf)

	// Warm: size the scratch and the buffer once.
	var err error
	if buf, err = AppendScreenRequest(buf[:0], 7, batch); err != nil {
		t.Fatal(err)
	}
	if _, _, err = DecodeScreenRequest(buf, sc); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendScreenRequest(buf[:0], 7, batch)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err = DecodeScreenRequest(buf, sc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("request encode+decode allocates %.1f/op, want 0", n)
	}

	if buf, err = AppendScreenResponse(buf[:0], resp); err != nil {
		t.Fatal(err)
	}
	if _, err = DecodeScreenResponse(buf, sc); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendScreenResponse(buf[:0], resp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = DecodeScreenResponse(buf, sc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("response encode+decode allocates %.1f/op, want 0", n)
	}
}

// --- ReadFrame against a streaming reader ---

// onByteReader yields one byte per Read to make sure ReadFrame uses
// io.ReadFull semantics rather than assuming single-Read framing.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestReadFrameShortReads(t *testing.T) {
	want, err := AppendScreenRequest(nil, 3, testRequestBatch())
	if err != nil {
		t.Fatal(err)
	}
	sc := GetWireScratch()
	defer sc.Release()
	got, err := sc.ReadFrame(oneByteReader{bytes.NewReader(want)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadFrame over 1-byte reads differs")
	}
}
