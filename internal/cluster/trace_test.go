package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"enmc/internal/telemetry"
)

// TestWorkerSpansOnlyWhenTraced: a shard reply carries spans iff the
// request shipped a trace context — the untraced hot path pays
// nothing for tracing.
func TestWorkerSpansOnlyWhenTraced(t *testing.T) {
	inst, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(ScreenRequest{Batch: inst.Test[:2], M: 4})

	post := func(trace bool) ScreenResponse {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, "/v1/shard/screen", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if trace {
			telemetry.InjectTrace(req.Header, telemetry.NewTraceCtx())
		}
		rec := httptest.NewRecorder()
		w.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("screen: HTTP %d: %s", rec.Code, rec.Body.String())
		}
		if rec.Header().Get(telemetry.HeaderRequestID) == "" {
			t.Fatal("shard reply missing X-Request-Id")
		}
		var sr ScreenResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	if sr := post(false); len(sr.Spans) != 0 {
		t.Fatalf("untraced request returned %d spans", len(sr.Spans))
	}
	sr := post(true)
	if len(sr.Spans) == 0 {
		t.Fatal("traced request returned no spans")
	}
	names := map[string]bool{}
	for _, sp := range sr.Spans {
		if sp.Dur < 0 || sp.Start < 0 {
			t.Fatalf("span %q has negative timing %+v", sp.Name, sp)
		}
		names[sp.Name] = true
	}
	// The worker wraps the pipeline in a whole-request span; the core
	// pipeline contributes the screen stage.
	if !names["shard screen ×2"] {
		t.Fatalf("no whole-request span in %v", names)
	}
	if !names["screen"] {
		t.Fatalf("no core screen span in %v", names)
	}
}

// TestDistributedTraceCapture drives a traced query through the real
// router→worker HTTP path and asserts the merged capture is the shape
// the ISSUE demands: spans from at least two process lanes (router
// PID 0, shards PID 1+i) sharing one trace ID, with worker spans
// nested inside their RPC span.
func TestDistributedTraceCapture(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, _ := startWorkers(t, shards, 1, nil)

	tr := telemetry.NewTracer()
	r := dialT(t, RouterConfig{ShardMap: urls, Tracer: tr})

	tc := telemetry.NewTraceCtx()
	ctx := telemetry.WithTraceCtx(context.Background(), tc)
	if _, _, err := r.ClassifyBatchPartial(ctx, inst.Test[:1], 12, 3); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	pids := map[int]bool{}
	for _, sp := range spans {
		if sp.Trace != tc.TraceID {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, sp.Trace, tc.TraceID)
		}
		pids[sp.PID] = true
	}
	if !pids[0] {
		t.Fatal("no router-side (PID 0) spans")
	}
	remote := 0
	for pid := range pids {
		if pid > 0 {
			remote++
		}
	}
	if remote < 2 {
		t.Fatalf("spans from %d remote processes, want >= 2 (PIDs seen: %v)", remote, pids)
	}

	// Worker spans must nest inside their shard's RPC span: for each
	// remote PID, every span's [start, end] lies within some PID-0 rpc
	// span's interval.
	type iv struct{ lo, hi int64 }
	var rpcs []iv
	for _, sp := range spans {
		if sp.PID == 0 {
			rpcs = append(rpcs, iv{sp.Start, sp.Start + sp.Dur})
		}
	}
	for _, sp := range spans {
		if sp.PID == 0 {
			continue
		}
		ok := false
		for _, r := range rpcs {
			if sp.Start >= r.lo && sp.Start+sp.Dur <= r.hi {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("remote span %q [%d,%d] not nested in any rpc span %v",
				sp.Name, sp.Start, sp.Start+sp.Dur, rpcs)
		}
	}

	// The merged capture exports with per-process lanes named.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"enmc-serve router"`, `"enmc-shard 0"`, `"process_name"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestUntracedRouterSendsNoHeaders: without a trace context the RPC
// carries no trace headers, so workers stay on the global-tracer path.
func TestUntracedRouterSendsNoHeaders(t *testing.T) {
	inst, shards, _ := fixture(t)
	sawTrace := false
	urls, _ := startWorkers(t, shards, 1, func(_, _ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.Header.Get(telemetry.HeaderTraceID) != "" {
				sawTrace = true
			}
			h.ServeHTTP(rw, req)
		})
	})
	r := dialT(t, RouterConfig{ShardMap: urls, Tracer: telemetry.NewTracer()})
	if _, _, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 12, 3); err != nil {
		t.Fatal(err)
	}
	if sawTrace {
		t.Fatal("untraced query shipped trace headers")
	}
}

// TestWorkerMetricsEndpoint: the worker scrapes valid exposition too.
func TestWorkerMetricsEndpoint(t *testing.T) {
	_, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", rec.Code)
	}
	p, err := telemetry.ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("worker scrape does not parse: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("worker scrape invalid: %v", err)
	}
	if _, ok := p.Value("go_goroutines", nil); !ok {
		t.Error("runtime metrics missing from worker scrape")
	}

	req, _ = http.NewRequest(http.MethodGet, "/v1/slo", nil)
	rec = httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/slo: HTTP %d", rec.Code)
	}
	var sum telemetry.SLOSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.WindowSeconds <= 0 {
		t.Fatalf("worker SLO summary: %+v", sum)
	}
}
