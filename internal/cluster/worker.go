package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/telemetry"
)

var (
	mWorkerRequests = telemetry.Default().Counter("cluster.worker.screen_requests")
	mWorkerItems    = telemetry.Default().Counter("cluster.worker.screen_items")
	mWorkerTraced   = telemetry.Default().Counter("cluster.worker.traced_requests")
)

// Worker serves one shard's row-slice of the class space over HTTP:
// it screens locally with its own approximate screener, recomputes
// its local candidates exactly, and ships only the (class, logit)
// pairs back — the ENMC offload split at cluster scale.
//
// Endpoints:
//
//	POST /v1/shard/screen  — ScreenRequest in, ScreenResponse out
//	GET  /v1/shard/info    — shard geometry + model version
//	GET  /healthz          — liveness
//	GET  /readyz           — readiness (503 once Drain has begun;
//	                         the router's probe loop watches this)
type Worker struct {
	shard    distributed.Shard
	mux      *http.ServeMux
	draining atomic.Bool
	slo      *telemetry.SLO
	reqLog   atomic.Pointer[telemetry.RequestLog]
}

// NewWorker validates the shard and returns its HTTP worker.
func NewWorker(sh distributed.Shard) (*Worker, error) {
	if sh.Classifier == nil || sh.Screener == nil {
		return nil, fmt.Errorf("cluster: incomplete shard")
	}
	if sh.Offset < 0 {
		return nil, fmt.Errorf("cluster: negative shard offset %d", sh.Offset)
	}
	w := &Worker{shard: sh, slo: telemetry.NewSLO(telemetry.SLOConfig{})}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/v1/shard/screen", w.handleScreen)
	w.mux.HandleFunc("/v1/shard/info", w.handleInfo)
	w.mux.HandleFunc("/v1/slo", w.handleSLO)
	w.mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write([]byte("ok\n"))
	})
	w.mux.HandleFunc("/readyz", w.handleReadyz)
	w.mux.Handle("/metrics", telemetry.PrometheusHandler(telemetry.Default(),
		func() { w.slo.Publish(telemetry.Default()) }))
	return w, nil
}

// SetRequestLog installs (or, with nil, removes) the worker's
// structured request logger. Safe to call while serving.
func (w *Worker) SetRequestLog(l *telemetry.RequestLog) {
	w.reqLog.Store(l)
}

// Handler returns the worker's HTTP handler wrapped in the worker's
// observability middleware (request-ID echo, SLO observation,
// request logging on /v1/* paths).
func (w *Worker) Handler() http.Handler { return w.instrument(w.mux) }

// instrument is the worker-side analogue of the server middleware:
// health probes and scrapes pass through, shard RPCs get a request
// ID echoed, an SLO observation, and a structured log record.
func (w *Worker) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(rw, r)
			return
		}
		start := time.Now()
		reqID := r.Header.Get(telemetry.HeaderRequestID)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		rw.Header().Set(telemetry.HeaderRequestID, reqID)
		sr := &telemetry.StatusRecorder{ResponseWriter: rw}
		next.ServeHTTP(sr, r)
		latency := time.Since(start)
		w.slo.Observe(r.URL.Path, sr.Status(), latency)
		tc, _ := telemetry.ExtractTrace(r.Header)
		w.reqLog.Load().Log(telemetry.RequestEvent{
			RequestID:    reqID,
			TraceID:      tc.TraceID,
			Method:       r.Method,
			Path:         r.URL.Path,
			Status:       sr.Status(),
			Latency:      latency,
			ModelVersion: w.shard.Version,
		})
	})
}

// handleSLO reports the worker's rolling-window SLO: GET /v1/slo.
func (w *Worker) handleSLO(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(rw, http.StatusOK, w.slo.Summary())
}

// Info returns the shard's wire identity.
func (w *Worker) Info() ShardInfo {
	return ShardInfo{
		Offset:  w.shard.Offset,
		Classes: w.shard.Classifier.Categories(),
		Hidden:  w.shard.Classifier.Hidden(),
		Version: w.shard.Version,
	}
}

// Drain fails readiness so the router's health probes eject this
// replica before the process exits; in-flight screens complete.
func (w *Worker) Drain() { w.draining.Store(true) }

func (w *Worker) handleReadyz(rw http.ResponseWriter, _ *http.Request) {
	if w.draining.Load() {
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte("draining\n"))
		return
	}
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write([]byte("ready\n"))
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(rw, http.StatusOK, w.Info())
}

// handleScreen runs the shard-local screen→select→exact pipeline for
// every item in the batch on the core worker pool, honoring the
// request context so a router timeout aborts between items.
func (w *Worker) handleScreen(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	mWorkerRequests.Inc()
	var req ScreenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Batch) == 0 {
		writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}
	d := w.shard.Classifier.Hidden()
	for i, h := range req.Batch {
		if len(h) != d {
			writeError(rw, http.StatusBadRequest,
				fmt.Sprintf("item %d: feature length %d, want %d", i, len(h), d))
			return
		}
	}
	m := req.M
	if m < 1 {
		m = 1
	}
	if l := w.shard.Classifier.Categories(); m > l {
		m = l
	}

	resp := ScreenResponse{
		Offset:  w.shard.Offset,
		Classes: w.shard.Classifier.Categories(),
		Version: w.shard.Version,
		Items:   make([][]WireCandidate, len(req.Batch)),
	}

	// Trace propagation: when the router shipped a trace context, the
	// screen pipeline records into a fresh per-request tracer whose
	// epoch is request receipt — its span ticks are relative by
	// construction, so they return on the wire for the router to
	// rebase under this RPC's span (no clock sync; see SpanWire).
	// Untraced requests keep the zero-overhead global-tracer path.
	tc, traced := telemetry.ExtractTrace(r.Header)
	tr := telemetry.Global()
	if traced {
		mWorkerTraced.Inc()
		tr = telemetry.NewTracer()
	}
	reqStart := tr.Now()
	err := core.ClassifyBatchVisitCtx(r.Context(), w.shard.Classifier, w.shard.Screener,
		req.Batch, core.TopM(m), tr,
		func(i int, res *core.Result, _ *core.Scratch) {
			cands := make([]WireCandidate, len(res.Candidates))
			for j, c := range res.Candidates {
				cands[j] = WireCandidate{Class: w.shard.Offset + c, Logit: res.Exact[j]}
			}
			resp.Items[i] = cands
		})
	if err != nil {
		// Router gave up (timeout/cancel): the reply will not be read.
		writeError(rw, http.StatusGatewayTimeout, err.Error())
		return
	}
	if traced {
		tr.Add(telemetry.Span{
			Name: fmt.Sprintf("shard screen ×%d", len(req.Batch)), Cat: "shard",
			TID: telemetry.TrackPipeline, Start: reqStart, Dur: tr.Now() - reqStart,
			Trace: tc.TraceID,
		})
		for _, sp := range tr.Spans() {
			resp.Spans = append(resp.Spans, SpanWire{
				Name: sp.Name, Cat: sp.Cat, TID: sp.TID, Start: sp.Start, Dur: sp.Dur,
			})
		}
	}
	mWorkerItems.Add(int64(len(req.Batch)))
	writeJSON(rw, http.StatusOK, resp)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(rw http.ResponseWriter, code int, msg string) {
	writeJSON(rw, code, errorBody{Error: msg})
}

func writeJSON(rw http.ResponseWriter, code int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}
